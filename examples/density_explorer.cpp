/**
 * @file
 * Density explorer: sweep the quality-loss budget and map the
 * quality/density frontier that variable error correction reaches
 * (the design space behind Figure 11 and the Section 7.2.1
 * "alternative strategies" discussion).
 *
 * For each budget, the Section 7.2 optimiser derives an assignment;
 * the example reports the resulting density, the measured quality,
 * and where deterministic compression (a higher CRF) would land for
 * the same storage — the paper's approximation-vs-compression
 * comparison.
 */

#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "quality/psnr.h"
#include "sim/calibrate.h"
#include "sim/monte_carlo.h"
#include "video/synthetic.h"

int
main()
{
    using namespace videoapp;

    SyntheticSpec spec = standardSuite(0.4)[0];
    Video source = generateSynthetic(spec);
    std::printf("Exploring quality/density points for '%s'\n\n",
                spec.name.c_str());

    EncoderConfig enc_config;
    enc_config.crf = kCrfHigh;

    std::printf("%-12s %16s %14s %16s\n", "budget (dB)",
                "cells/pixel", "PSNR (dB)", "ECC overhead");

    for (double budget : {0.05, 0.1, 0.3, 1.0, 3.0}) {
        EccAssignment assignment = calibrateAssignment(
            {spec}, enc_config, 3, budget, 77);
        PreparedVideo prepared =
            prepareVideo(source, enc_config, assignment);

        ModeledChannel pcm(kPcmRawBer);
        double worst_psnr = 1e9;
        StorageOutcome outcome;
        for (int r = 0; r < 5; ++r) {
            Rng rng(200 + static_cast<u64>(r));
            outcome = storeAndRetrieve(prepared, pcm, rng);
            worst_psnr =
                std::min(worst_psnr, outcome.psnrVsReference);
        }
        std::printf("%-12.2f %16.4f %14.2f %15.1f%%\n", budget,
                    outcome.cellsPerPixel, worst_psnr,
                    100.0 * outcome.eccOverheadFraction);
    }

    // Where does pure compression land? Encode coarser until the
    // stored size matches the approximate design's footprint.
    std::printf("\nDeterministic compression reference points "
                "(precise storage, BCH-16 everywhere):\n");
    std::printf("%-8s %16s %14s\n", "CRF", "cells/pixel",
                "PSNR vs source");
    for (int crf : {kCrfHigh, kCrfHigh + 2, kCrfHigh + 4}) {
        EncoderConfig c;
        c.crf = crf;
        PreparedVideo prepared = prepareVideo(
            source, c, EccAssignment::uniform(kEccPrecise));
        double cells =
            densityCellsPerPixel(prepared, source.pixelCount());
        double psnr = cleanPsnr(source, prepared.enc);
        std::printf("%-8d %16.4f %14.2f\n", crf, cells, psnr);
    }
    std::printf("\n(The paper sizes its 0.3 dB budget so that "
                "approximation always beats encoding the video "
                "more coarsely for equal storage, Section 7.2.)\n");
    return 0;
}
