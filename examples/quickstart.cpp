/**
 * @file
 * Quickstart: the smallest end-to-end use of the VideoApp library.
 *
 *  1. Generate (or load) a raw video.
 *  2. Encode it with the H.264-flavoured codec.
 *  3. Analyse bit-level reliability requirements (importance).
 *  4. Partition into reliability streams and store them on a dense,
 *     error-prone MLC PCM substrate with variable error correction.
 *  5. Read everything back, decode, and measure quality & density.
 */

#include <cstdio>

#include "core/pipeline.h"
#include "quality/metrics.h"
#include "video/synthetic.h"

int
main()
{
    using namespace videoapp;

    // 1. A small synthetic clip (see video/yuv_io.h for loading raw
    //    I420 footage instead).
    SyntheticSpec spec = tinySpec(/*seed=*/2024);
    spec.width = 128;
    spec.height = 96;
    spec.frames = 36;
    Video source = generateSynthetic(spec);
    std::printf("Source: %dx%d, %zu frames\n", source.width(),
                source.height(), source.frames.size());

    // 2-4. Encode, analyse, partition under the paper's Table 1.
    EncoderConfig enc_config;
    enc_config.crf = kCrfStandard;  // "standard quality"
    PreparedVideo prepared = prepareVideo(
        source, enc_config, EccAssignment::paperTable1());

    std::printf("Encoded payload: %llu bits (%.2f bits/pixel), "
                "precise headers: %llu bits\n",
                static_cast<unsigned long long>(
                    prepared.enc.video.payloadBits()),
                static_cast<double>(
                    prepared.enc.video.payloadBits()) /
                    source.pixelCount(),
                static_cast<unsigned long long>(
                    prepared.headerBits()));
    std::printf("Importance range: %.1f .. %.1f\n",
                prepared.importance.minImportance(),
                prepared.importance.maxImportance());
    std::printf("Reliability streams:\n");
    for (const auto &[t, bits] : prepared.streams.bitLength)
        std::printf("  %-7s %10llu bits\n", EccScheme{t}.name().c_str(),
                    static_cast<unsigned long long>(bits));

    // 5. Store on the 8-level PCM substrate (raw BER 1e-3 at the
    //    3-month scrub interval) and read back.
    ModeledChannel pcm(kPcmRawBer);
    Rng rng(7);
    StorageOutcome outcome = storeAndRetrieve(prepared, pcm, rng);

    std::printf("\nAfter one scrub interval on MLC PCM:\n");
    std::printf("  PSNR vs clean decode: %.2f dB\n",
                outcome.psnrVsReference);
    std::printf("  density: %.4f cells/pixel "
                "(SLC would need %.4f)\n",
                outcome.cellsPerPixel,
                static_cast<double>(outcome.payloadBits +
                                    outcome.headerBits) /
                    source.pixelCount());
    std::printf("  ECC overhead: %.1f%% of stored bits\n",
                100.0 * outcome.eccOverheadFraction);

    QualityReport report =
        measureQuality(source, outcome.decoded, true);
    std::printf("  vs original: %s\n", report.toString().c_str());
    return 0;
}
