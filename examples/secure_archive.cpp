/**
 * @file
 * Encrypted approximate video archive (Section 5).
 *
 * DRM-style scenario: videos must be stored encrypted, yet the
 * archive wants MLC density with approximate storage. The example
 * partitions a video into reliability streams, encrypts each stream
 * separately with AES-CTR (IVs derived per stream from one master
 * IV), stores them approximately, and shows that quality matches
 * the unencrypted pipeline — then repeats with CBC to show why
 * chaining modes are incompatible.
 */

#include <cstdio>

#include "core/pipeline.h"
#include "video/synthetic.h"

int
main()
{
    using namespace videoapp;

    SyntheticSpec spec = standardSuite(0.4)[10]; // pedestrian_area
    Video source = generateSynthetic(spec);
    std::printf("Archiving '%s' (%dx%d, %zu frames), encrypted\n\n",
                spec.name.c_str(), source.width(), source.height(),
                source.frames.size());

    PreparedVideo prepared = prepareVideo(
        source, EncoderConfig{}, EccAssignment::paperTable1());
    ModeledChannel pcm(kPcmRawBer);

    Bytes key(32, 0); // AES-256
    for (std::size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<u8>(i * 17 + 3);
    AesBlock master_iv{};
    master_iv[0] = 0xA5;

    auto run = [&](const char *label,
                   std::optional<EncryptionConfig> enc_cfg) {
        double total = 0;
        const int runs = 5;
        for (int r = 0; r < runs; ++r) {
            Rng rng(100 + static_cast<u64>(r));
            StorageOutcome outcome =
                storeAndRetrieve(prepared, pcm, rng, enc_cfg);
            total += outcome.psnrVsReference;
        }
        std::printf("  %-28s mean PSNR vs clean: %6.2f dB\n", label,
                    total / runs);
    };

    run("unencrypted", std::nullopt);

    EncryptionConfig ctr{CipherMode::CTR, key, master_iv};
    run("AES-256-CTR (compatible)", ctr);

    EncryptionConfig ofb{CipherMode::OFB, key, master_iv};
    run("AES-256-OFB (compatible)", ofb);

    EncryptionConfig cbc{CipherMode::CBC, key, master_iv};
    run("AES-256-CBC (INCOMPATIBLE)", cbc);

    std::printf(
        "\nCTR/OFB confine each storage bit error to one plaintext "
        "bit, so the\napproximation analysis done before encryption "
        "stays valid (Section 5.2).\nCBC turns every flipped bit "
        "into a fully garbled 16-byte block, breaking\nthe "
        "importance-based protection guarantees.\n");
    return 0;
}
