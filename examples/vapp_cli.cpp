/**
 * @file
 * `vapp` — command-line front end to the VideoApp library for real
 * footage (raw planar I420 files, e.g. produced with
 * `ffmpeg -i in.mp4 -pix_fmt yuv420p out.yuv`).
 *
 * Commands:
 *   encode   <in.yuv> <w> <h> <out.vap>   encode + analyse + pivot
 *   decode   <in.vap> <out.yuv>           decode to raw I420
 *   analyze  <in.yuv> <w> <h>             print importance stats
 *   simulate <in.yuv> <w> <h>             full approximate-storage
 *                                         round trip on MLC PCM
 *
 * Archive commands (persistent VAPP containers, src/archive/):
 *   archive put   <a.vapp> <name> <in.yuv> <w> <h>   store a video
 *   archive get   <a.vapp> <name> <out.yuv>          retrieve+decode
 *   archive scrub <a.vapp>                           repair pass
 *   archive stat  <a.vapp>                           list contents
 *   archive rekey <a.vapp>                           rotate keys:
 *     decrypt every record with --key, re-encrypt under --new-key
 *     (--mode/--key-id/--encrypt-min-t describe the new policy)
 *
 * Serving commands (network store front end, src/server/):
 *   serve <a.vapp>                          run the store server
 *     (epoll event loop: --workers sizes the decode pool, not the
 *     connection count)
 *   remote get   <host:port> <name> <gop> <out.yuv>
 *   remote put   <host:port> <name> <in.yuv> <w> <h>
 *   remote stat  <host:port>
 *   remote scrub <host:port>
 *   remote health <host:port>
 *
 * Cluster commands (sharded archive tier, src/cluster/):
 *   cluster serve <a1.vapp> [a2.vapp ...]   run one shard per
 *     archive in this process, shard i on port --port + i; PUTs
 *     replicate precise metadata to --replicas ring successors,
 *     and --scrub-interval starts a budgeted background scrub on
 *     every shard (--scrub-budget bits/interval, aged at --raw-ber)
 *   cluster get  <seeds> <name> <gop> <out.yuv>   shard-aware GET
 *   cluster put  <seeds> <name> <in.yuv> <w> <h>  shard-aware PUT
 *   cluster stat <seeds>                     merged directory
 *     (<seeds> is host:port[,host:port...] of any live shards; the
 *     router learns the full ring via CLUSTER_INFO)
 *
 * Membership commands (rebalance tier, src/rebalance/): each boots
 * the named archives as an in-process cluster on ephemeral ports,
 * runs one epoch-versioned transition with records moving over the
 * live wire (CELL_PULL/CELL_PUSH), then flushes every archive:
 *   cluster add <new.vapp> <a1.vapp> [...]   ADD_SHARD: the new
 *     archive joins as the next shard id; ~1/N of the names
 *     migrate onto it
 *   cluster remove <shard-id> <a1.vapp> [...]  REMOVE_SHARD: drain
 *     the shard's records to their new owners, then drop it
 *   cluster rebuild <shard-id> <new.vapp> <srcdir> <w> <h>
 *     <a1.vapp> [...]  REBUILD_SHARD: the shard's archive is lost;
 *     re-populate <new.vapp> from surviving metadata replicas,
 *     re-encoding <srcdir>/<name>.yuv (WxH I420) under each
 *     record's stored crypto/policy (--key for encrypted records)
 *
 * `archive keycheck <a.vapp>` scans for retired key epochs after a
 * rotation (--key-id pins the expected epoch; exit 2 when stale or
 * inconsistent records remain).
 *
 * Common options: --crf N, --gop N, --bframes N, --slices N,
 * --cavlc, --no-deblock, --raw-ber X, --seed N, --conceal.
 * Archive options: --key HEX (AES key: encrypts on put, decrypts on
 * get), --mode ecb|cbc|ctr|ofb|cfb, --key-id N, --encrypt-min-t N
 * (selective encryption: only streams with BCH strength t >= N are
 * encrypted; 0 = encrypt everything), --new-key HEX (rekey only).
 * `get`/`scrub` age the device at --raw-ber first when the flag is
 * given (default: read the cells exactly as stored).
 * Serving options: --port N, --workers N, --queue N, --cache-mb N,
 * --shed-threshold K (serve/cluster serve: under queue pressure or
 * deadline risk, skip streams whose degradation class is >= K and
 * answer Status::Degraded; 0 = never shed); --deadline MS
 * (remote get).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "archive/archive_service.h"
#include "cluster/cluster_node.h"
#include "cluster/cluster_router.h"
#include "cluster/scrub_scheduler.h"
#include "rebalance/rebalance.h"
#include "core/pipeline.h"
#include "quality/metrics.h"
#include "server/vapp_client.h"
#include "server/vapp_server.h"
#include "sim/monte_carlo.h"
#include "video/yuv_io.h"

namespace videoapp {
namespace {

struct CliOptions
{
    EncoderConfig encoder;
    double rawBer = kPcmRawBer;
    /** Whether --raw-ber appeared (archive reads default to 0). */
    bool rawBerGiven = false;
    u64 seed = 1;
    bool conceal = false;
    Bytes key;
    /** Replacement key for `archive rekey` (--new-key). */
    Bytes newKey;
    CipherMode mode = CipherMode::CTR;
    u32 keyId = 0;
    int encryptMinT = 0;
    int shedThreshold = 0;
    u16 port = 7411;
    int workers = 4;
    std::size_t queueCapacity = 256;
    std::size_t cacheMb = 64;
    u32 deadlineMs = 0;
    u32 replicas = 2;
    u32 vnodes = 64;
    u32 scrubIntervalMs = 0;
    u64 scrubBudget = 0;
    int clientRetries = 3;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: vapp <command> [args] [options]\n"
        "  encode   <in.yuv> <w> <h> <out.vap>\n"
        "  decode   <in.vap> <out.yuv>\n"
        "  analyze  <in.yuv> <w> <h>\n"
        "  simulate <in.yuv> <w> <h>\n"
        "  archive put   <a.vapp> <name> <in.yuv> <w> <h>\n"
        "  archive get   <a.vapp> <name> <out.yuv>\n"
        "  archive scrub <a.vapp>\n"
        "  archive stat  <a.vapp>\n"
        "  archive rekey <a.vapp>\n"
        "  archive keycheck <a.vapp>\n"
        "  serve <a.vapp>\n"
        "  remote get    <host:port> <name> <gop> <out.yuv>\n"
        "  remote put    <host:port> <name> <in.yuv> <w> <h>\n"
        "  remote stat   <host:port>\n"
        "  remote scrub  <host:port>\n"
        "  remote health <host:port>\n"
        "  cluster serve <a1.vapp> [a2.vapp ...]\n"
        "  cluster get   <seeds> <name> <gop> <out.yuv>\n"
        "  cluster put   <seeds> <name> <in.yuv> <w> <h>\n"
        "  cluster stat  <seeds>\n"
        "  cluster add     <new.vapp> <a1.vapp> [a2.vapp ...]\n"
        "  cluster remove  <shard-id> <a1.vapp> [a2.vapp ...]\n"
        "  cluster rebuild <shard-id> <new.vapp> <srcdir> <w> <h>\n"
        "                  <a1.vapp> [a2.vapp ...]\n"
        "    (<seeds> = host:port[,host:port...])\n"
        "options: --crf N --gop N --bframes N --slices N --cavlc\n"
        "         --no-deblock --raw-ber X --seed N --conceal\n"
        "         --key HEX --mode ecb|cbc|ctr|ofb|cfb --key-id N\n"
        "         --encrypt-min-t N --new-key HEX\n"
        "         --port N --workers N --queue N --cache-mb N\n"
        "         --shed-threshold K\n"
        "         --deadline MS --replicas N --vnodes N\n"
        "         --scrub-interval MS --scrub-budget BITS\n"
        "         --retries N\n");
}

/** Parse "deadbeef.." into bytes; false on odd length/bad digit. */
bool
parseHex(const std::string &hex, Bytes &out)
{
    if (hex.size() % 2 != 0)
        return false;
    out.clear();
    out.reserve(hex.size() / 2);
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = nibble(hex[i]);
        int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<u8>(hi << 4 | lo));
    }
    return true;
}

bool
parseMode(const std::string &name, CipherMode &mode)
{
    if (name == "ecb")
        mode = CipherMode::ECB;
    else if (name == "cbc")
        mode = CipherMode::CBC;
    else if (name == "ctr")
        mode = CipherMode::CTR;
    else if (name == "ofb")
        mode = CipherMode::OFB;
    else if (name == "cfb")
        mode = CipherMode::CFB;
    else
        return false;
    return true;
}

/** Parse trailing --options; returns false on an unknown flag. */
bool
parseOptions(int argc, char **argv, int first, CliOptions &opts)
{
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](double fallback) {
            return i + 1 < argc ? std::atof(argv[++i]) : fallback;
        };
        auto nextStr = [&]() -> std::string {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--key") {
            if (!parseHex(nextStr(), opts.key)) {
                std::fprintf(stderr, "--key wants hex bytes\n");
                return false;
            }
        } else if (a == "--mode") {
            if (!parseMode(nextStr(), opts.mode)) {
                std::fprintf(
                    stderr,
                    "--mode wants ecb|cbc|ctr|ofb|cfb\n");
                return false;
            }
        } else if (a == "--new-key") {
            if (!parseHex(nextStr(), opts.newKey)) {
                std::fprintf(stderr, "--new-key wants hex bytes\n");
                return false;
            }
        } else if (a == "--key-id") {
            opts.keyId = static_cast<u32>(next(0));
        } else if (a == "--encrypt-min-t") {
            opts.encryptMinT = static_cast<int>(next(0));
        } else if (a == "--shed-threshold") {
            opts.shedThreshold = static_cast<int>(next(0));
        } else if (a == "--crf")
            opts.encoder.crf = static_cast<int>(next(24));
        else if (a == "--gop")
            opts.encoder.gop.gopSize = static_cast<int>(next(48));
        else if (a == "--bframes")
            opts.encoder.gop.bFrames = static_cast<int>(next(2));
        else if (a == "--slices")
            opts.encoder.slicesPerFrame = static_cast<int>(next(1));
        else if (a == "--cavlc")
            opts.encoder.entropy = EntropyKind::CAVLC;
        else if (a == "--no-deblock")
            opts.encoder.deblocking = false;
        else if (a == "--raw-ber") {
            opts.rawBer = next(kPcmRawBer);
            opts.rawBerGiven = true;
        }
        else if (a == "--seed")
            opts.seed = static_cast<u64>(next(1));
        else if (a == "--conceal")
            opts.conceal = true;
        else if (a == "--port")
            opts.port = static_cast<u16>(next(7411));
        else if (a == "--workers")
            opts.workers = static_cast<int>(next(4));
        else if (a == "--queue")
            opts.queueCapacity = static_cast<std::size_t>(next(256));
        else if (a == "--cache-mb")
            opts.cacheMb = static_cast<std::size_t>(next(64));
        else if (a == "--deadline")
            opts.deadlineMs = static_cast<u32>(next(0));
        else if (a == "--replicas")
            opts.replicas = static_cast<u32>(next(2));
        else if (a == "--vnodes")
            opts.vnodes = static_cast<u32>(next(64));
        else if (a == "--scrub-interval")
            opts.scrubIntervalMs = static_cast<u32>(next(0));
        else if (a == "--scrub-budget")
            opts.scrubBudget = static_cast<u64>(next(0));
        else if (a == "--retries")
            opts.clientRetries = static_cast<int>(next(3));
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

Video
loadOrDie(const std::string &path, int w, int h)
{
    Video v = loadI420(path, w, h);
    if (v.frames.empty()) {
        std::fprintf(stderr,
                     "error: cannot read %dx%d I420 from '%s'\n", w,
                     h, path.c_str());
        std::exit(1);
    }
    return v;
}

int
cmdEncode(const std::string &in, int w, int h, const std::string &out,
          const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    PreparedVideo prepared = prepareVideo(
        source, opts.encoder, EccAssignment::paperTable1());
    Bytes blob = serialize(prepared.enc.video);
    std::ofstream f(out, std::ios::binary);
    f.write(reinterpret_cast<const char *>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    if (!f) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    std::printf("%zu frames -> %zu bytes (%.3f bits/pixel), "
                "importance %.1f..%.1f, clean PSNR %.2f dB\n",
                source.frames.size(), blob.size(),
                8.0 * blob.size() / source.pixelCount(),
                prepared.importance.minImportance(),
                prepared.importance.maxImportance(),
                cleanPsnr(source, prepared.enc));
    return 0;
}

int
cmdDecode(const std::string &in, const std::string &out,
          const CliOptions &opts)
{
    std::ifstream f(in, std::ios::binary);
    Bytes blob((std::istreambuf_iterator<char>(f)),
               std::istreambuf_iterator<char>());
    auto video = deserialize(blob);
    if (!video) {
        std::fprintf(stderr, "error: '%s' is not a vap stream\n",
                     in.c_str());
        return 1;
    }
    DecodeOptions dopts;
    dopts.concealErrors = opts.conceal;
    Video decoded = decodeVideo(*video, dopts);
    if (!saveI420(decoded, out)) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    std::printf("decoded %zu frames (%dx%d) -> %s\n",
                decoded.frames.size(), decoded.width(),
                decoded.height(), out.c_str());
    return 0;
}

int
cmdAnalyze(const std::string &in, int w, int h,
           const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    EncodeResult enc = encodeVideo(source, opts.encoder);
    ImportanceMap importance = computeImportance(enc.side, enc.video);

    std::printf("frames: %zu, payload %llu bits, headers %llu bits\n",
                source.frames.size(),
                static_cast<unsigned long long>(
                    enc.video.payloadBits()),
                static_cast<unsigned long long>(
                    enc.video.headerBits()));
    std::printf("importance: min %.1f max %.1f\n",
                importance.minImportance(),
                importance.maxImportance());

    // Class histogram by storage share.
    std::map<int, u64> class_bits;
    u64 total_bits = 0;
    for (std::size_t f = 0; f < enc.side.frames.size(); ++f) {
        for (std::size_t m = 0; m < enc.side.frames[f].mbs.size();
             ++m) {
            int cls = ImportanceMap::classOf(
                importance.values[f][m]);
            class_bits[cls] += enc.side.frames[f].mbs[m].bitLength;
            total_bits += enc.side.frames[f].mbs[m].bitLength;
        }
    }
    std::printf("\n%-8s %12s %10s %10s\n", "class", "bits", "share",
                "Table-1");
    for (const auto &[cls, bits] : class_bits) {
        EccScheme s =
            EccAssignment::paperTable1().schemeForClass(cls);
        std::printf("%-8d %12llu %9.2f%% %10s\n", cls,
                    static_cast<unsigned long long>(bits),
                    100.0 * bits / total_bits, s.name().c_str());
    }
    return 0;
}

int
cmdSimulate(const std::string &in, int w, int h,
            const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    PreparedVideo prepared = prepareVideo(
        source, opts.encoder, EccAssignment::paperTable1());
    ModeledChannel channel(opts.rawBer);
    Rng rng(opts.seed);
    StorageOutcome outcome =
        storeAndRetrieve(prepared, channel, rng);
    QualityReport report =
        measureQuality(source, outcome.decoded, false);

    std::printf("raw BER %.1e on 8-level MLC PCM:\n", opts.rawBer);
    std::printf("  density       %.4f cells/pixel\n",
                outcome.cellsPerPixel);
    std::printf("  ECC overhead  %.1f%%\n",
                100.0 * outcome.eccOverheadFraction);
    std::printf("  PSNR vs clean %.2f dB\n",
                outcome.psnrVsReference);
    std::printf("  vs original   %s\n", report.toString().c_str());
    return 0;
}

/** Open an existing archive or explain why it cannot be read. */
bool
openOrComplain(ArchiveService &service, bool create_if_missing)
{
    ArchiveError err = service.open(create_if_missing);
    if (err != ArchiveError::None) {
        std::fprintf(stderr, "error: cannot open '%s': %s\n",
                     service.path().c_str(),
                     archiveErrorName(err));
        return false;
    }
    return true;
}

int
cmdArchivePut(const std::string &archive, const std::string &name,
              const std::string &in, int w, int h,
              const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    ArchiveService service(archive);
    if (!openOrComplain(service, true))
        return 1;

    PreparedVideo prepared = prepareVideo(
        source, opts.encoder, EccAssignment::paperTable1());

    ArchivePutOptions put;
    if (!opts.key.empty()) {
        EncryptionConfig enc;
        enc.mode = opts.mode;
        enc.key = opts.key;
        enc.keyId = opts.keyId;
        enc.encryptMinT = static_cast<u8>(opts.encryptMinT);
        // The master IV is a nonce, derived deterministically from
        // the seed and name so puts are reproducible; vary --seed
        // (or name) across puts under one key.
        Rng iv_rng(Rng::deriveSeed(
            opts.seed, std::hash<std::string>{}(name)));
        for (auto &b : enc.masterIv)
            b = static_cast<u8>(iv_rng.next());
        put.encryption = enc;
    }
    service.put(name, prepared, put);
    ArchiveError err = service.flush();
    if (err != ArchiveError::None) {
        std::fprintf(stderr, "error: cannot write '%s': %s\n",
                     archive.c_str(), archiveErrorName(err));
        return 1;
    }
    std::printf("stored '%s': %zu frames, %llu payload bytes in "
                "%llu cell bytes%s\n",
                name.c_str(), source.frames.size(),
                static_cast<unsigned long long>(
                    prepared.payloadBits() / 8),
                static_cast<unsigned long long>(
                    service.stat().back().cellBytes),
                opts.key.empty() ? "" : " (encrypted)");
    return 0;
}

int
cmdArchiveGet(const std::string &archive, const std::string &name,
              const std::string &out, const CliOptions &opts)
{
    ArchiveService service(archive);
    if (!openOrComplain(service, false))
        return 1;

    ArchiveGetOptions get;
    get.injectRawBer = opts.rawBerGiven ? opts.rawBer : 0.0;
    get.seed = opts.seed;
    get.conceal = opts.conceal;
    get.key = opts.key;
    ArchiveGetResult result = service.get(name, get);
    if (result.error != ArchiveError::None) {
        std::fprintf(stderr, "error: get '%s': %s\n", name.c_str(),
                     archiveErrorName(result.error));
        return 1;
    }
    if (!saveI420(result.decoded, out)) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    std::printf(
        "retrieved '%s': %zu frames (%dx%d) -> %s\n"
        "  blocks: %llu read, %llu corrected (%llu bits), "
        "%llu uncorrectable\n",
        name.c_str(), result.decoded.frames.size(),
        result.decoded.width(), result.decoded.height(),
        out.c_str(),
        static_cast<unsigned long long>(result.cells.blocksRead),
        static_cast<unsigned long long>(
            result.cells.blocksCorrected),
        static_cast<unsigned long long>(result.cells.bitsCorrected),
        static_cast<unsigned long long>(
            result.cells.blocksUncorrectable));
    return 0;
}

int
cmdArchiveScrub(const std::string &archive, const CliOptions &opts)
{
    ArchiveService service(archive);
    if (!openOrComplain(service, false))
        return 1;

    ScrubOptions scrub;
    scrub.ageRawBer = opts.rawBerGiven ? opts.rawBer : 0.0;
    scrub.seed = opts.seed;
    ScrubReport report = service.scrub(scrub);
    ArchiveError err = service.flush();
    if (err != ArchiveError::None) {
        std::fprintf(stderr, "error: cannot write '%s': %s\n",
                     archive.c_str(), archiveErrorName(err));
        return 1;
    }
    std::printf(
        "scrubbed %llu videos / %llu streams:\n"
        "  blocks: %llu read, %llu rewritten (%llu bits "
        "corrected), %llu uncorrectable\n"
        "  streams: %llu damaged, %llu miscorrected\n",
        static_cast<unsigned long long>(report.videos),
        static_cast<unsigned long long>(report.streams),
        static_cast<unsigned long long>(report.cells.blocksRead),
        static_cast<unsigned long long>(report.blocksRewritten),
        static_cast<unsigned long long>(report.cells.bitsCorrected),
        static_cast<unsigned long long>(
            report.cells.blocksUncorrectable),
        static_cast<unsigned long long>(report.streamsDamaged),
        static_cast<unsigned long long>(report.streamsMiscorrected));
    return 0;
}

int
cmdArchiveRekey(const std::string &archive, const CliOptions &opts)
{
    if (opts.newKey.empty()) {
        std::fprintf(stderr,
                     "error: rekey wants --new-key HEX (and --key "
                     "HEX for currently-encrypted records)\n");
        return 1;
    }
    ArchiveService service(archive);
    if (!openOrComplain(service, false))
        return 1;

    EncryptionConfig enc;
    enc.mode = opts.mode;
    enc.key = opts.newKey;
    enc.keyId = opts.keyId;
    enc.encryptMinT = static_cast<u8>(opts.encryptMinT);
    // Fresh master IV for the new epoch: rotating the key without
    // rotating the nonce would reuse keystreams across epochs.
    Rng iv_rng(Rng::deriveSeed(
        opts.seed, std::hash<std::string>{}(archive)));
    for (auto &b : enc.masterIv)
        b = static_cast<u8>(iv_rng.next());

    RekeyReport report = service.rekey(opts.key, enc);
    ArchiveError err = service.flush();
    if (err != ArchiveError::None) {
        std::fprintf(stderr, "error: cannot write '%s': %s\n",
                     archive.c_str(), archiveErrorName(err));
        return 1;
    }
    std::printf("re-keyed %llu video(s) to key-id %u "
                "(%llu streams re-encrypted, %llu key mismatches, "
                "%llu skipped)\n",
                static_cast<unsigned long long>(report.videos),
                opts.keyId,
                static_cast<unsigned long long>(
                    report.streamsRecrypted),
                static_cast<unsigned long long>(
                    report.keyMismatches),
                static_cast<unsigned long long>(report.skipped));
    return report.keyMismatches == 0 && report.skipped == 0 ? 0 : 1;
}

int
cmdArchiveStat(const std::string &archive)
{
    ArchiveService service(archive);
    if (!openOrComplain(service, false))
        return 1;

    std::printf("%-20s %9s %7s %8s %14s %14s %5s\n", "name", "dims",
                "frames", "streams", "payload B", "cell B", "enc");
    for (const auto &s : service.stat()) {
        char dims[16];
        std::snprintf(dims, sizeof dims, "%dx%d", s.width,
                      s.height);
        std::printf("%-20s %9s %7zu %8zu %14llu %14llu %5s\n",
                    s.name.c_str(), dims, s.frames, s.streamCount,
                    static_cast<unsigned long long>(s.payloadBytes),
                    static_cast<unsigned long long>(s.cellBytes),
                    s.encrypted ? "yes" : "no");
    }
    std::printf("%zu video(s)\n", service.videoCount());
    return 0;
}

int
cmdArchiveKeycheck(const std::string &archive,
                   const CliOptions &opts)
{
    ArchiveService service(archive);
    if (!openOrComplain(service, false))
        return 1;
    // --key-id pins the expected epoch; 0 (the default) takes the
    // newest key-id observed across the archive.
    KeyEpochReport report = service.verifyKeyEpochs(opts.keyId);
    std::printf("%llu video(s), %llu encrypted, newest key-id %u\n",
                static_cast<unsigned long long>(report.videos),
                static_cast<unsigned long long>(report.encrypted),
                report.newestKeyId);
    for (const std::string &name : report.staleNames)
        std::printf("  stale key epoch: %s\n", name.c_str());
    for (const std::string &name : report.inconsistentNames)
        std::printf("  crypto/policy key-id mismatch: %s\n",
                    name.c_str());
    if (report.clean()) {
        std::printf("key epochs clean\n");
        return 0;
    }
    std::printf("%zu stale, %zu inconsistent\n",
                report.staleNames.size(),
                report.inconsistentNames.size());
    return 2;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void
onServeSignal(int)
{
    g_serve_stop = 1;
}

int
cmdServe(const std::string &archive, const CliOptions &opts)
{
    ArchiveService service(archive);
    if (!openOrComplain(service, true))
        return 1;

    VappServerConfig config;
    config.port = opts.port;
    config.workers = opts.workers;
    config.queueCapacity = opts.queueCapacity;
    config.cacheBytes = opts.cacheMb << 20;
    config.shedThreshold = opts.shedThreshold;
    VappServer server(service, config);
    if (!server.start()) {
        std::fprintf(stderr, "error: cannot listen on port %u: %s\n",
                     opts.port, std::strerror(errno));
        return 1;
    }
    std::printf("serving '%s' on 127.0.0.1:%u "
                "(%d workers, queue %zu, cache %zu MiB)\n",
                archive.c_str(), server.port(), config.workers,
                config.queueCapacity, opts.cacheMb);
    std::fflush(stdout);

    std::signal(SIGINT, onServeSignal);
    std::signal(SIGTERM, onServeSignal);
    while (!g_serve_stop)
        ::pause();

    std::printf("\nshutting down...\n");
    server.stop();
    // Remote puts/scrubs mutated the in-memory archive: persist.
    ArchiveError err = service.flush();
    if (err != ArchiveError::None) {
        std::fprintf(stderr, "error: cannot write '%s': %s\n",
                     archive.c_str(), archiveErrorName(err));
        return 1;
    }
    return 0;
}

/** Split "host:port"; false on a missing/invalid port. */
bool
parseHostPort(const std::string &spec, std::string &host, u16 &port)
{
    std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon + 1 >= spec.size())
        return false;
    host = spec.substr(0, colon);
    int p = std::atoi(spec.c_str() + colon + 1);
    if (p <= 0 || p > 65535)
        return false;
    port = static_cast<u16>(p);
    return true;
}

bool
connectOrComplain(VappClient &client, const std::string &spec)
{
    std::string host;
    u16 port = 0;
    if (!parseHostPort(spec, host, port)) {
        std::fprintf(stderr, "error: bad address '%s' "
                             "(want host:port)\n",
                     spec.c_str());
        return false;
    }
    if (!client.connect(host, port)) {
        std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                     spec.c_str(), std::strerror(errno));
        return false;
    }
    return true;
}

int
cmdRemoteGet(const std::string &spec, const std::string &name,
             u32 gop, const std::string &out,
             const CliOptions &opts)
{
    VappClient client;
    if (!connectOrComplain(client, spec))
        return 1;

    GetFramesRequest request;
    request.name = name;
    request.gop = gop;
    request.injectRawBer = opts.rawBerGiven ? opts.rawBer : 0.0;
    request.seed = opts.seed;
    request.conceal = opts.conceal;
    request.key = opts.key;
    request.deadlineMs = opts.deadlineMs;
    auto response = client.getFrames(request);
    if (!response) {
        std::fprintf(stderr, "error: %s\n",
                     wireErrorName(client.lastError()));
        return 1;
    }
    if (response->status != Status::Ok &&
        response->status != Status::Partial &&
        response->status != Status::Degraded) {
        std::fprintf(stderr, "error: server answered %s\n",
                     statusName(response->status));
        return 1;
    }
    std::ofstream f(out, std::ios::binary);
    f.write(reinterpret_cast<const char *>(response->i420.data()),
            static_cast<std::streamsize>(response->i420.size()));
    if (!f) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    std::printf("GOP %u/%u of '%s': frames %u..%u (%ux%u) -> %s%s%s\n",
                gop, response->gopCount, name.c_str(),
                response->firstFrame,
                response->firstFrame + response->frameCount - 1,
                response->width, response->height, out.c_str(),
                response->fromCache ? " [cache]" : "",
                response->status == Status::Partial
                    ? " [partial]"
                    : "");
    if (response->status == Status::Degraded)
        std::printf("  [degraded: %u stream(s) shed, %llu bytes, "
                    "est -%.2f dB]\n",
                    response->streamsShed,
                    static_cast<unsigned long long>(
                        response->bytesShed),
                    response->shedDbEst);
    return 0;
}

int
cmdRemotePut(const std::string &spec, const std::string &name,
             const std::string &in, int w, int h,
             const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    VappClient client;
    if (!connectOrComplain(client, spec))
        return 1;

    PutRequest request;
    request.name = name;
    request.width = static_cast<u16>(w);
    request.height = static_cast<u16>(h);
    request.frameCount = static_cast<u32>(source.frames.size());
    request.i420 = packFramesI420(source, 0, source.frames.size());
    request.key = opts.key;
    request.cipherMode = static_cast<u8>(opts.mode);
    request.keyId = opts.keyId;
    request.encryptMinT = static_cast<u8>(opts.encryptMinT);
    request.ivSeed = opts.seed;
    auto response = client.put(request);
    if (!response) {
        std::fprintf(stderr, "error: %s\n",
                     wireErrorName(client.lastError()));
        return 1;
    }
    if (response->status != Status::Ok) {
        std::fprintf(stderr, "error: server answered %s\n",
                     statusName(response->status));
        return 1;
    }
    std::printf("stored '%s': %zu frames, %llu payload bytes in "
                "%llu cell bytes%s\n",
                name.c_str(), source.frames.size(),
                static_cast<unsigned long long>(
                    response->payloadBytes),
                static_cast<unsigned long long>(response->cellBytes),
                opts.key.empty() ? "" : " (encrypted)");
    return 0;
}

int
cmdRemoteStat(const std::string &spec)
{
    VappClient client;
    if (!connectOrComplain(client, spec))
        return 1;
    auto response = client.stat();
    if (!response || response->status != Status::Ok) {
        std::fprintf(stderr, "error: %s\n",
                     response
                         ? statusName(response->status)
                         : wireErrorName(client.lastError()));
        return 1;
    }
    std::printf("%-20s %9s %7s %8s %14s %14s %5s\n", "name", "dims",
                "frames", "streams", "payload B", "cell B", "enc");
    for (const auto &s : response->videos) {
        char dims[16];
        std::snprintf(dims, sizeof dims, "%dx%d", s.width,
                      s.height);
        std::printf("%-20s %9s %7zu %8zu %14llu %14llu %5s\n",
                    s.name.c_str(), dims, s.frames, s.streamCount,
                    static_cast<unsigned long long>(s.payloadBytes),
                    static_cast<unsigned long long>(s.cellBytes),
                    s.encrypted ? "yes" : "no");
    }
    std::printf("%zu video(s)\n", response->videos.size());
    return 0;
}

int
cmdRemoteScrub(const std::string &spec, const CliOptions &opts)
{
    VappClient client;
    if (!connectOrComplain(client, spec))
        return 1;
    ScrubRequest request;
    request.ageRawBer = opts.rawBerGiven ? opts.rawBer : 0.0;
    request.seed = opts.seed;
    auto response = client.scrub(request);
    if (!response || response->status != Status::Ok) {
        std::fprintf(stderr, "error: %s\n",
                     response
                         ? statusName(response->status)
                         : wireErrorName(client.lastError()));
        return 1;
    }
    std::printf(
        "scrubbed %llu videos / %llu streams:\n"
        "  blocks: %llu read, %llu rewritten (%llu bits "
        "corrected), %llu uncorrectable\n"
        "  streams: %llu damaged, %llu miscorrected\n",
        static_cast<unsigned long long>(response->videos),
        static_cast<unsigned long long>(response->streams),
        static_cast<unsigned long long>(response->blocksRead),
        static_cast<unsigned long long>(response->blocksRewritten),
        static_cast<unsigned long long>(response->bitsCorrected),
        static_cast<unsigned long long>(
            response->blocksUncorrectable),
        static_cast<unsigned long long>(response->streamsDamaged),
        static_cast<unsigned long long>(
            response->streamsMiscorrected));
    return 0;
}

int
cmdRemoteHealth(const std::string &spec)
{
    VappClient client;
    if (!connectOrComplain(client, spec))
        return 1;
    auto response = client.health();
    if (!response || response->status != Status::Ok) {
        std::fprintf(stderr, "error: %s\n",
                     response
                         ? statusName(response->status)
                         : wireErrorName(client.lastError()));
        return 1;
    }
    std::printf("queue: %u/%u (high water %u, rejected %llu)\n"
                "cache: %llu bytes in %llu GOPs\n"
                "coalesced gets: %llu\n"
                "shedding: %s, %llu degraded response(s)\n"
                "archive: %llu video(s)\n",
                response->queueDepth, response->queueCapacity,
                response->queueHighWater,
                static_cast<unsigned long long>(
                    response->queueRejected),
                static_cast<unsigned long long>(
                    response->cacheBytes),
                static_cast<unsigned long long>(
                    response->cacheEntries),
                static_cast<unsigned long long>(
                    response->coalescedGets),
                response->shedThreshold > 0 ? "on" : "off",
                static_cast<unsigned long long>(
                    response->shedResponses),
                static_cast<unsigned long long>(response->videos));
    return 0;
}

/** Parse "host:port[,host:port...]" into seed shards (ids are
 * placeholders — the router learns real ids via CLUSTER_INFO). */
bool
parseSeeds(const std::string &spec,
           std::vector<ClusterShard> &seeds)
{
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        std::string one = spec.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        ClusterShard shard;
        shard.id = static_cast<u32>(seeds.size());
        if (!parseHostPort(one, shard.host, shard.port))
            return false;
        seeds.push_back(std::move(shard));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return !seeds.empty();
}

/** Build a router over @p spec's seeds; nullopt after complaining. */
std::optional<ClusterRouter>
routerOrComplain(const std::string &spec, const CliOptions &opts)
{
    ClusterRouterConfig config;
    if (!parseSeeds(spec, config.seeds)) {
        std::fprintf(stderr,
                     "error: bad seed list '%s' "
                     "(want host:port[,host:port...])\n",
                     spec.c_str());
        return std::nullopt;
    }
    config.retry.maxRetries = opts.clientRetries;
    ClusterRouter router(std::move(config));
    if (!router.refresh()) {
        std::fprintf(stderr,
                     "error: no seed shard answered CLUSTER_INFO\n");
        return std::nullopt;
    }
    return router;
}

int
cmdClusterServe(const std::vector<std::string> &archives,
                const CliOptions &opts)
{
    const std::size_t count = archives.size();
    std::vector<std::unique_ptr<ArchiveService>> services;
    std::vector<std::unique_ptr<ClusterNode>> nodes;
    std::vector<std::unique_ptr<VappServer>> servers;
    std::vector<std::unique_ptr<ScrubScheduler>> scrubbers;
    for (std::size_t i = 0; i < count; ++i) {
        services.push_back(
            std::make_unique<ArchiveService>(archives[i]));
        if (!openOrComplain(*services.back(), true))
            return 1;
        ClusterNodeConfig node;
        node.selfId = static_cast<u32>(i);
        node.replicas = opts.replicas;
        node.vnodes = opts.vnodes;
        nodes.push_back(std::make_unique<ClusterNode>(
            *services.back(), node));
        VappServerConfig config;
        config.port = static_cast<u16>(opts.port + i);
        config.workers = opts.workers;
        config.queueCapacity = opts.queueCapacity;
        config.cacheBytes = opts.cacheMb << 20;
        config.shedThreshold = opts.shedThreshold;
        config.cluster = nodes.back().get();
        servers.push_back(std::make_unique<VappServer>(
            *services.back(), config));
        if (!servers.back()->start()) {
            std::fprintf(stderr,
                         "error: cannot listen on port %u: %s\n",
                         config.port, std::strerror(errno));
            return 1;
        }
    }
    std::vector<ClusterShard> shards;
    for (std::size_t i = 0; i < count; ++i)
        shards.push_back({static_cast<u32>(i), "127.0.0.1",
                          servers[i]->port()});
    for (auto &node : nodes)
        node->setTopology(shards, 1);
    for (std::size_t i = 0; i < count; ++i) {
        std::printf("shard %zu: '%s' on 127.0.0.1:%u\n", i,
                    archives[i].c_str(), servers[i]->port());
        if (opts.scrubIntervalMs > 0) {
            ScrubSchedulerConfig scrub;
            scrub.intervalMs = opts.scrubIntervalMs;
            scrub.correctionBudget = opts.scrubBudget;
            scrub.ageRawBer = opts.rawBerGiven ? opts.rawBer : 0.0;
            scrub.seed = opts.seed;
            scrubbers.push_back(std::make_unique<ScrubScheduler>(
                *services[i], scrub));
            // Scrubbing rewrites cells: drop stale cached decodes.
            VappServer *server = servers[i].get();
            scrubbers.back()->onScrubbed =
                [server](const std::string &name) {
                    server->cache().eraseVideo(name);
                };
            scrubbers.back()->start();
        }
    }
    std::printf("%zu-shard cluster up (replicas %u, vnodes %u%s)\n",
                count, opts.replicas, opts.vnodes,
                opts.scrubIntervalMs > 0 ? ", scrubbing" : "");
    std::fflush(stdout);

    std::signal(SIGINT, onServeSignal);
    std::signal(SIGTERM, onServeSignal);
    while (!g_serve_stop)
        ::pause();

    std::printf("\nshutting down...\n");
    for (auto &scrubber : scrubbers)
        scrubber->stop();
    for (auto &server : servers)
        server->stop();
    int status = 0;
    for (std::size_t i = 0; i < count; ++i) {
        ArchiveError err = services[i]->flush();
        if (err != ArchiveError::None) {
            std::fprintf(stderr, "error: cannot write '%s': %s\n",
                         archives[i].c_str(),
                         archiveErrorName(err));
            status = 1;
        }
    }
    return status;
}

int
cmdClusterGet(const std::string &seeds, const std::string &name,
              u32 gop, const std::string &out,
              const CliOptions &opts)
{
    auto router = routerOrComplain(seeds, opts);
    if (!router)
        return 1;
    GetFramesRequest request;
    request.name = name;
    request.gop = gop;
    request.injectRawBer = opts.rawBerGiven ? opts.rawBer : 0.0;
    request.seed = opts.seed;
    request.conceal = opts.conceal;
    request.key = opts.key;
    request.deadlineMs = opts.deadlineMs;
    auto response = router->getFrames(request);
    if (!response) {
        std::fprintf(stderr, "error: no shard could serve '%s'\n",
                     name.c_str());
        return 1;
    }
    if (response->status != Status::Ok &&
        response->status != Status::Partial &&
        response->status != Status::Degraded) {
        std::fprintf(stderr, "error: cluster answered %s\n",
                     statusName(response->status));
        return 1;
    }
    std::ofstream f(out, std::ios::binary);
    f.write(reinterpret_cast<const char *>(response->i420.data()),
            static_cast<std::streamsize>(response->i420.size()));
    if (!f) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    std::printf("GOP %u/%u of '%s' via shard %u: frames %u..%u "
                "(%ux%u) -> %s%s%s\n",
                gop, response->gopCount, name.c_str(),
                router->ownerOf(name), response->firstFrame,
                response->firstFrame + response->frameCount - 1,
                response->width, response->height, out.c_str(),
                response->status == Status::Partial ? " [partial]"
                                                    : "",
                response->status == Status::Degraded
                    ? " [degraded]"
                    : "");
    return 0;
}

int
cmdClusterPut(const std::string &seeds, const std::string &name,
              const std::string &in, int w, int h,
              const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    auto router = routerOrComplain(seeds, opts);
    if (!router)
        return 1;
    PutRequest request;
    request.name = name;
    request.width = static_cast<u16>(w);
    request.height = static_cast<u16>(h);
    request.frameCount = static_cast<u32>(source.frames.size());
    request.i420 = packFramesI420(source, 0, source.frames.size());
    request.key = opts.key;
    request.cipherMode = static_cast<u8>(opts.mode);
    request.keyId = opts.keyId;
    request.encryptMinT = static_cast<u8>(opts.encryptMinT);
    request.ivSeed = opts.seed;
    auto response = router->put(request);
    if (!response) {
        std::fprintf(stderr, "error: no shard accepted '%s'\n",
                     name.c_str());
        return 1;
    }
    if (response->status != Status::Ok) {
        std::fprintf(stderr, "error: cluster answered %s\n",
                     statusName(response->status));
        return 1;
    }
    std::printf("stored '%s' on shard %u: %zu frames, %llu payload "
                "bytes in %llu cell bytes%s\n",
                name.c_str(), router->ownerOf(name),
                source.frames.size(),
                static_cast<unsigned long long>(
                    response->payloadBytes),
                static_cast<unsigned long long>(response->cellBytes),
                opts.key.empty() ? "" : " (encrypted)");
    return 0;
}

int
cmdClusterStat(const std::string &seeds, const CliOptions &opts)
{
    auto router = routerOrComplain(seeds, opts);
    if (!router)
        return 1;
    auto response = router->stat();
    if (!response || response->status != Status::Ok) {
        std::fprintf(stderr, "error: cluster stat failed\n");
        return 1;
    }
    std::printf("%zu shard(s), ring epoch %llu\n",
                router->shardCount(),
                static_cast<unsigned long long>(router->epoch()));
    std::printf("%-20s %5s %9s %7s %8s %14s %14s %5s\n", "name",
                "shard", "dims", "frames", "streams", "payload B",
                "cell B", "enc");
    for (const auto &s : response->videos) {
        char dims[16];
        std::snprintf(dims, sizeof dims, "%dx%d", s.width,
                      s.height);
        std::printf("%-20s %5u %9s %7zu %8zu %14llu %14llu %5s\n",
                    s.name.c_str(), router->ownerOf(s.name), dims,
                    s.frames, s.streamCount,
                    static_cast<unsigned long long>(s.payloadBytes),
                    static_cast<unsigned long long>(s.cellBytes),
                    s.encrypted ? "yes" : "no");
    }
    std::printf("%zu video(s)\n", response->videos.size());
    return 0;
}

/** One in-process shard booted for a membership transition. */
struct LiveShard
{
    std::unique_ptr<ArchiveService> service;
    std::unique_ptr<ClusterNode> node;
    std::unique_ptr<VappServer> server;
    ClusterShard address;
};

/** Boot @p archive as shard @p id on an ephemeral port (transition
 * runs are transient; topology is installed afterwards). */
bool
bootShard(const std::string &archive, u32 id, const CliOptions &opts,
          bool create, LiveShard &out)
{
    out.service = std::make_unique<ArchiveService>(archive);
    if (!openOrComplain(*out.service, create))
        return false;
    ClusterNodeConfig node;
    node.selfId = id;
    node.replicas = opts.replicas;
    node.vnodes = opts.vnodes;
    out.node = std::make_unique<ClusterNode>(*out.service, node);
    VappServerConfig config;
    config.port = 0;
    config.workers = opts.workers;
    config.queueCapacity = opts.queueCapacity;
    config.cacheBytes = opts.cacheMb << 20;
    config.cluster = out.node.get();
    out.server =
        std::make_unique<VappServer>(*out.service, config);
    if (!out.server->start()) {
        std::fprintf(stderr, "error: cannot start shard %u: %s\n",
                     id, std::strerror(errno));
        return false;
    }
    out.address = {id, "127.0.0.1", out.server->port()};
    return true;
}

/** Stop every server, then flush every archive. */
int
settleShards(std::vector<LiveShard> &shards)
{
    for (LiveShard &s : shards)
        s.server->stop();
    int status = 0;
    for (LiveShard &s : shards) {
        ArchiveError err = s.service->flush();
        if (err != ArchiveError::None) {
            std::fprintf(stderr, "error: cannot write '%s': %s\n",
                         s.service->path().c_str(),
                         archiveErrorName(err));
            status = 1;
        }
    }
    return status;
}

void
printMigrationReport(const char *verb, const MigrationReport &r)
{
    std::printf("%s: ring epoch %llu -> %llu\n", verb,
                static_cast<unsigned long long>(r.fromEpoch),
                static_cast<unsigned long long>(r.toEpoch));
    std::printf("  ring diff predicted %zu move(s), planned %zu\n",
                r.predictedMoves, r.plannedMoves);
    std::printf("  moved %zu, already settled %zu, failed %zu, "
                "source copies erased %zu\n",
                r.movedRecords, r.skippedRecords, r.failedRecords,
                r.erasedAtSource);
}

int
cmdClusterAdd(const std::vector<std::string> &archives,
              const std::string &joining, const CliOptions &opts)
{
    std::vector<LiveShard> shards(archives.size() + 1);
    for (std::size_t i = 0; i < archives.size(); ++i)
        if (!bootShard(archives[i], static_cast<u32>(i), opts,
                       false, shards[i]))
            return 1;
    const u32 new_id = static_cast<u32>(archives.size());
    if (!bootShard(joining, new_id, opts, true, shards[new_id]))
        return 1;

    std::vector<ClusterShard> initial;
    std::vector<ManagedShard> managed;
    for (std::size_t i = 0; i < archives.size(); ++i) {
        initial.push_back(shards[i].address);
        managed.push_back({shards[i].address, shards[i].node.get()});
    }
    for (std::size_t i = 0; i < archives.size(); ++i)
        shards[i].node->setTopology(initial, 1);
    shards[new_id].node->setTopology({shards[new_id].address}, 1);

    RebalanceConfig config;
    config.vnodes = opts.vnodes;
    config.replicas = opts.replicas;
    MembershipManager manager(managed, 1, config);
    MigrationReport report = manager.addShard(
        {shards[new_id].address, shards[new_id].node.get()});
    printMigrationReport("ADD_SHARD", report);
    int status = settleShards(shards);
    return report.ok() ? status : 1;
}

int
cmdClusterRemove(const std::vector<std::string> &archives,
                 u32 victim, const CliOptions &opts)
{
    if (victim >= archives.size()) {
        std::fprintf(stderr, "error: no shard %u in a %zu-shard "
                             "cluster\n",
                     victim, archives.size());
        return 1;
    }
    std::vector<LiveShard> shards(archives.size());
    std::vector<ClusterShard> initial;
    std::vector<ManagedShard> managed;
    for (std::size_t i = 0; i < archives.size(); ++i) {
        if (!bootShard(archives[i], static_cast<u32>(i), opts,
                       false, shards[i]))
            return 1;
        initial.push_back(shards[i].address);
        managed.push_back({shards[i].address, shards[i].node.get()});
    }
    for (LiveShard &s : shards)
        s.node->setTopology(initial, 1);

    RebalanceConfig config;
    config.vnodes = opts.vnodes;
    config.replicas = opts.replicas;
    MembershipManager manager(managed, 1, config);
    MigrationReport report = manager.removeShard(victim);
    printMigrationReport("REMOVE_SHARD", report);
    int status = settleShards(shards);
    return report.ok() ? status : 1;
}

int
cmdClusterRebuild(const std::vector<std::string> &archives,
                  u32 victim, const std::string &replacement,
                  const std::string &srcdir, int w, int h,
                  const CliOptions &opts)
{
    if (victim >= archives.size()) {
        std::fprintf(stderr, "error: no shard %u in a %zu-shard "
                             "cluster\n",
                     victim, archives.size());
        return 1;
    }
    std::vector<LiveShard> shards(archives.size());
    std::vector<ClusterShard> initial;
    std::vector<ManagedShard> managed;
    for (std::size_t i = 0; i < archives.size(); ++i) {
        // The victim's archive is lost: its replacement path boots
        // empty and is re-populated from replicas + origin videos.
        const bool is_victim = i == victim;
        if (!bootShard(is_victim ? replacement : archives[i],
                       static_cast<u32>(i), opts, is_victim,
                       shards[i]))
            return 1;
        initial.push_back(shards[i].address);
        managed.push_back({shards[i].address, shards[i].node.get()});
    }
    for (LiveShard &s : shards)
        s.node->setTopology(initial, 1);

    RebalanceConfig config;
    config.vnodes = opts.vnodes;
    config.replicas = opts.replicas;
    MembershipManager manager(managed, 1, config);
    RebuildOriginFn origin = [&](const std::string &name,
                                 Video &video, Bytes &key) {
        video = loadI420(srcdir + "/" + name + ".yuv", w, h);
        if (video.frames.empty())
            return false;
        key = opts.key;
        return true;
    };
    RebuildReport report =
        manager.rebuildShard(managed[victim], origin);
    std::printf("REBUILD_SHARD %u: ring epoch -> %llu\n", victim,
                static_cast<unsigned long long>(report.toEpoch));
    std::printf("  %zu name(s) from surviving replicas: rebuilt "
                "%zu, failed %zu\n",
                report.names, report.rebuilt, report.failed);
    std::printf("  precise meta byte-exact %zu; cells: %zu "
                "stream(s) CRC-verified, %zu mismatched\n",
                report.metaRepaired, report.streamsCrcVerified,
                report.streamsCrcMismatched);
    int status = settleShards(shards);
    return report.ok() ? status : 1;
}

int
cmdCluster(int argc, char **argv, CliOptions &opts)
{
    std::string sub = argc >= 3 ? argv[2] : "";
    if (sub == "serve" && argc >= 4) {
        // Archives are the args up to the first --option.
        std::vector<std::string> archives;
        int i = 3;
        for (; i < argc && std::strncmp(argv[i], "--", 2) != 0; ++i)
            archives.push_back(argv[i]);
        if (!archives.empty() &&
            parseOptions(argc, argv, i, opts))
            return cmdClusterServe(archives, opts);
        if (archives.empty())
            usage();
        return 1;
    }
    if (sub == "get" && argc >= 7) {
        if (!parseOptions(argc, argv, 7, opts))
            return 1;
        return cmdClusterGet(argv[3], argv[4],
                             static_cast<u32>(std::atoi(argv[5])),
                             argv[6], opts);
    }
    if (sub == "put" && argc >= 8) {
        if (!parseOptions(argc, argv, 8, opts))
            return 1;
        return cmdClusterPut(argv[3], argv[4], argv[5],
                             std::atoi(argv[6]),
                             std::atoi(argv[7]), opts);
    }
    if (sub == "stat" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdClusterStat(argv[3], opts);
    }
    if (sub == "add" && argc >= 5) {
        std::vector<std::string> archives;
        int i = 4;
        for (; i < argc && std::strncmp(argv[i], "--", 2) != 0; ++i)
            archives.push_back(argv[i]);
        if (archives.empty() || !parseOptions(argc, argv, i, opts))
            return 1;
        return cmdClusterAdd(archives, argv[3], opts);
    }
    if (sub == "remove" && argc >= 5) {
        std::vector<std::string> archives;
        int i = 4;
        for (; i < argc && std::strncmp(argv[i], "--", 2) != 0; ++i)
            archives.push_back(argv[i]);
        if (archives.empty() || !parseOptions(argc, argv, i, opts))
            return 1;
        return cmdClusterRemove(
            archives, static_cast<u32>(std::atoi(argv[3])), opts);
    }
    if (sub == "rebuild" && argc >= 9) {
        std::vector<std::string> archives;
        int i = 8;
        for (; i < argc && std::strncmp(argv[i], "--", 2) != 0; ++i)
            archives.push_back(argv[i]);
        if (archives.empty() || !parseOptions(argc, argv, i, opts))
            return 1;
        return cmdClusterRebuild(
            archives, static_cast<u32>(std::atoi(argv[3])),
            argv[4], argv[5], std::atoi(argv[6]),
            std::atoi(argv[7]), opts);
    }
    usage();
    return 1;
}

int
cmdRemote(int argc, char **argv, CliOptions &opts)
{
    std::string sub = argc >= 3 ? argv[2] : "";
    if (sub == "get" && argc >= 7) {
        if (!parseOptions(argc, argv, 7, opts))
            return 1;
        return cmdRemoteGet(argv[3], argv[4],
                            static_cast<u32>(std::atoi(argv[5])),
                            argv[6], opts);
    }
    if (sub == "put" && argc >= 8) {
        if (!parseOptions(argc, argv, 8, opts))
            return 1;
        return cmdRemotePut(argv[3], argv[4], argv[5],
                            std::atoi(argv[6]), std::atoi(argv[7]),
                            opts);
    }
    if (sub == "stat" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdRemoteStat(argv[3]);
    }
    if (sub == "scrub" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdRemoteScrub(argv[3], opts);
    }
    if (sub == "health" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdRemoteHealth(argv[3]);
    }
    usage();
    return 1;
}

int
cmdArchive(int argc, char **argv, CliOptions &opts)
{
    std::string sub = argc >= 3 ? argv[2] : "";
    if (sub == "put" && argc >= 8) {
        if (!parseOptions(argc, argv, 8, opts))
            return 1;
        return cmdArchivePut(argv[3], argv[4], argv[5],
                             std::atoi(argv[6]), std::atoi(argv[7]),
                             opts);
    }
    if (sub == "get" && argc >= 6) {
        if (!parseOptions(argc, argv, 6, opts))
            return 1;
        return cmdArchiveGet(argv[3], argv[4], argv[5], opts);
    }
    if (sub == "scrub" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdArchiveScrub(argv[3], opts);
    }
    if (sub == "stat" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdArchiveStat(argv[3]);
    }
    if (sub == "rekey" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdArchiveRekey(argv[3], opts);
    }
    if (sub == "keycheck" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdArchiveKeycheck(argv[3], opts);
    }
    usage();
    return 1;
}

} // namespace
} // namespace videoapp

int
main(int argc, char **argv)
{
    using namespace videoapp;
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    CliOptions opts;

    if (cmd == "archive")
        return cmdArchive(argc, argv, opts);
    if (cmd == "remote")
        return cmdRemote(argc, argv, opts);
    if (cmd == "cluster")
        return cmdCluster(argc, argv, opts);
    if (cmd == "serve" && argc >= 3) {
        if (!parseOptions(argc, argv, 3, opts))
            return 1;
        return cmdServe(argv[2], opts);
    }
    if (cmd == "encode" && argc >= 6) {
        if (!parseOptions(argc, argv, 6, opts))
            return 1;
        return cmdEncode(argv[2], std::atoi(argv[3]),
                         std::atoi(argv[4]), argv[5], opts);
    }
    if (cmd == "decode" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdDecode(argv[2], argv[3], opts);
    }
    if (cmd == "analyze" && argc >= 5) {
        if (!parseOptions(argc, argv, 5, opts))
            return 1;
        return cmdAnalyze(argv[2], std::atoi(argv[3]),
                          std::atoi(argv[4]), opts);
    }
    if (cmd == "simulate" && argc >= 5) {
        if (!parseOptions(argc, argv, 5, opts))
            return 1;
        return cmdSimulate(argv[2], std::atoi(argv[3]),
                           std::atoi(argv[4]), opts);
    }
    usage();
    return 1;
}
