/**
 * @file
 * `vapp` — command-line front end to the VideoApp library for real
 * footage (raw planar I420 files, e.g. produced with
 * `ffmpeg -i in.mp4 -pix_fmt yuv420p out.yuv`).
 *
 * Commands:
 *   encode   <in.yuv> <w> <h> <out.vap>   encode + analyse + pivot
 *   decode   <in.vap> <out.yuv>           decode to raw I420
 *   analyze  <in.yuv> <w> <h>             print importance stats
 *   simulate <in.yuv> <w> <h>             full approximate-storage
 *                                         round trip on MLC PCM
 *
 * Common options: --crf N, --gop N, --bframes N, --slices N,
 * --cavlc, --no-deblock, --raw-ber X, --seed N, --conceal.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "quality/metrics.h"
#include "sim/monte_carlo.h"
#include "video/yuv_io.h"

namespace videoapp {
namespace {

struct CliOptions
{
    EncoderConfig encoder;
    double rawBer = kPcmRawBer;
    u64 seed = 1;
    bool conceal = false;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: vapp <command> [args] [options]\n"
        "  encode   <in.yuv> <w> <h> <out.vap>\n"
        "  decode   <in.vap> <out.yuv>\n"
        "  analyze  <in.yuv> <w> <h>\n"
        "  simulate <in.yuv> <w> <h>\n"
        "options: --crf N --gop N --bframes N --slices N --cavlc\n"
        "         --no-deblock --raw-ber X --seed N --conceal\n");
}

/** Parse trailing --options; returns false on an unknown flag. */
bool
parseOptions(int argc, char **argv, int first, CliOptions &opts)
{
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](double fallback) {
            return i + 1 < argc ? std::atof(argv[++i]) : fallback;
        };
        if (a == "--crf")
            opts.encoder.crf = static_cast<int>(next(24));
        else if (a == "--gop")
            opts.encoder.gop.gopSize = static_cast<int>(next(48));
        else if (a == "--bframes")
            opts.encoder.gop.bFrames = static_cast<int>(next(2));
        else if (a == "--slices")
            opts.encoder.slicesPerFrame = static_cast<int>(next(1));
        else if (a == "--cavlc")
            opts.encoder.entropy = EntropyKind::CAVLC;
        else if (a == "--no-deblock")
            opts.encoder.deblocking = false;
        else if (a == "--raw-ber")
            opts.rawBer = next(kPcmRawBer);
        else if (a == "--seed")
            opts.seed = static_cast<u64>(next(1));
        else if (a == "--conceal")
            opts.conceal = true;
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

Video
loadOrDie(const std::string &path, int w, int h)
{
    Video v = loadI420(path, w, h);
    if (v.frames.empty()) {
        std::fprintf(stderr,
                     "error: cannot read %dx%d I420 from '%s'\n", w,
                     h, path.c_str());
        std::exit(1);
    }
    return v;
}

int
cmdEncode(const std::string &in, int w, int h, const std::string &out,
          const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    PreparedVideo prepared = prepareVideo(
        source, opts.encoder, EccAssignment::paperTable1());
    Bytes blob = serialize(prepared.enc.video);
    std::ofstream f(out, std::ios::binary);
    f.write(reinterpret_cast<const char *>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    if (!f) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    std::printf("%zu frames -> %zu bytes (%.3f bits/pixel), "
                "importance %.1f..%.1f, clean PSNR %.2f dB\n",
                source.frames.size(), blob.size(),
                8.0 * blob.size() / source.pixelCount(),
                prepared.importance.minImportance(),
                prepared.importance.maxImportance(),
                cleanPsnr(source, prepared.enc));
    return 0;
}

int
cmdDecode(const std::string &in, const std::string &out,
          const CliOptions &opts)
{
    std::ifstream f(in, std::ios::binary);
    Bytes blob((std::istreambuf_iterator<char>(f)),
               std::istreambuf_iterator<char>());
    auto video = deserialize(blob);
    if (!video) {
        std::fprintf(stderr, "error: '%s' is not a vap stream\n",
                     in.c_str());
        return 1;
    }
    DecodeOptions dopts;
    dopts.concealErrors = opts.conceal;
    Video decoded = decodeVideo(*video, dopts);
    if (!saveI420(decoded, out)) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    std::printf("decoded %zu frames (%dx%d) -> %s\n",
                decoded.frames.size(), decoded.width(),
                decoded.height(), out.c_str());
    return 0;
}

int
cmdAnalyze(const std::string &in, int w, int h,
           const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    EncodeResult enc = encodeVideo(source, opts.encoder);
    ImportanceMap importance = computeImportance(enc.side, enc.video);

    std::printf("frames: %zu, payload %llu bits, headers %llu bits\n",
                source.frames.size(),
                static_cast<unsigned long long>(
                    enc.video.payloadBits()),
                static_cast<unsigned long long>(
                    enc.video.headerBits()));
    std::printf("importance: min %.1f max %.1f\n",
                importance.minImportance(),
                importance.maxImportance());

    // Class histogram by storage share.
    std::map<int, u64> class_bits;
    u64 total_bits = 0;
    for (std::size_t f = 0; f < enc.side.frames.size(); ++f) {
        for (std::size_t m = 0; m < enc.side.frames[f].mbs.size();
             ++m) {
            int cls = ImportanceMap::classOf(
                importance.values[f][m]);
            class_bits[cls] += enc.side.frames[f].mbs[m].bitLength;
            total_bits += enc.side.frames[f].mbs[m].bitLength;
        }
    }
    std::printf("\n%-8s %12s %10s %10s\n", "class", "bits", "share",
                "Table-1");
    for (const auto &[cls, bits] : class_bits) {
        EccScheme s =
            EccAssignment::paperTable1().schemeForClass(cls);
        std::printf("%-8d %12llu %9.2f%% %10s\n", cls,
                    static_cast<unsigned long long>(bits),
                    100.0 * bits / total_bits, s.name().c_str());
    }
    return 0;
}

int
cmdSimulate(const std::string &in, int w, int h,
            const CliOptions &opts)
{
    Video source = loadOrDie(in, w, h);
    PreparedVideo prepared = prepareVideo(
        source, opts.encoder, EccAssignment::paperTable1());
    ModeledChannel channel(opts.rawBer);
    Rng rng(opts.seed);
    StorageOutcome outcome =
        storeAndRetrieve(prepared, channel, rng);
    QualityReport report =
        measureQuality(source, outcome.decoded, false);

    std::printf("raw BER %.1e on 8-level MLC PCM:\n", opts.rawBer);
    std::printf("  density       %.4f cells/pixel\n",
                outcome.cellsPerPixel);
    std::printf("  ECC overhead  %.1f%%\n",
                100.0 * outcome.eccOverheadFraction);
    std::printf("  PSNR vs clean %.2f dB\n",
                outcome.psnrVsReference);
    std::printf("  vs original   %s\n", report.toString().c_str());
    return 0;
}

} // namespace
} // namespace videoapp

int
main(int argc, char **argv)
{
    using namespace videoapp;
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    CliOptions opts;

    if (cmd == "encode" && argc >= 6) {
        if (!parseOptions(argc, argv, 6, opts))
            return 1;
        return cmdEncode(argv[2], std::atoi(argv[3]),
                         std::atoi(argv[4]), argv[5], opts);
    }
    if (cmd == "decode" && argc >= 4) {
        if (!parseOptions(argc, argv, 4, opts))
            return 1;
        return cmdDecode(argv[2], argv[3], opts);
    }
    if (cmd == "analyze" && argc >= 5) {
        if (!parseOptions(argc, argv, 5, opts))
            return 1;
        return cmdAnalyze(argv[2], std::atoi(argv[3]),
                          std::atoi(argv[4]), opts);
    }
    if (cmd == "simulate" && argc >= 5) {
        if (!parseOptions(argc, argv, 5, opts))
            return 1;
        return cmdSimulate(argv[2], std::atoi(argv[3]),
                           std::atoi(argv[4]), opts);
    }
    usage();
    return 1;
}
