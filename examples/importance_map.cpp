/**
 * @file
 * Importance visualisation: encode a clip, run the VideoApp
 * analysis, and dump per-MB importance heat maps as PGM images
 * (one per frame, log-scaled) plus a text summary — handy for
 * seeing the Figure 2(c) scan-order wedge and the anchor/B-frame
 * polarisation with your own eyes.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "codec/encoder.h"
#include "graph/importance.h"
#include "video/synthetic.h"
#include "video/yuv_io.h"

int
main(int argc, char **argv)
{
    using namespace videoapp;

    std::string out_dir = argc > 1 ? argv[1] : "/tmp";

    SyntheticSpec spec = standardSuite(0.4)[1]; // crowd_run
    Video source = generateSynthetic(spec);
    EncoderConfig config;
    config.gop.gopSize = 16;
    config.gop.bFrames = 2;
    EncodeResult enc = encodeVideo(source, config);
    ImportanceMap importance = computeImportance(enc.side, enc.video);

    const int mbw = enc.video.mbWidth();
    const int mbh = enc.video.mbHeight();
    const double log_max =
        std::log2(std::max(importance.maxImportance(), 2.0));

    int dumped = 0;
    std::printf("%-7s %-5s %-9s %16s %14s\n", "encIdx", "type",
                "display", "max importance", "mean");
    for (std::size_t f = 0; f < enc.side.frames.size(); ++f) {
        double frame_max = 0, sum = 0;
        Plane map(mbw * 4, mbh * 4); // 4x4 px per MB for visibility
        for (int mby = 0; mby < mbh; ++mby) {
            for (int mbx = 0; mbx < mbw; ++mbx) {
                double v = importance.values[f][mby * mbw + mbx];
                frame_max = std::max(frame_max, v);
                sum += v;
                u8 shade = static_cast<u8>(
                    255.0 * std::log2(std::max(v, 1.0)) / log_max);
                for (int y = 0; y < 4; ++y)
                    for (int x = 0; x < 4; ++x)
                        map.at(mbx * 4 + x, mby * 4 + y) = shade;
            }
        }
        if (f < 8) {
            std::string path = out_dir + "/importance_f" +
                               std::to_string(f) + ".pgm";
            if (savePgm(map, path))
                ++dumped;
        }
        if (f < 12)
            std::printf("%-7zu %-5s %-9d %16.1f %14.1f\n", f,
                        frameTypeName(enc.side.frames[f].type),
                        enc.side.frames[f].displayIdx, frame_max,
                        sum / (mbw * mbh));
    }
    std::printf("\nWrote %d heat maps to %s/importance_f*.pgm "
                "(bright = important).\n",
                dumped, out_dir.c_str());
    std::printf("Expect: I/P frames bright with a top-left bias "
                "(the coding chain), B frames dark.\n");
    return 0;
}
