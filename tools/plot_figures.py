#!/usr/bin/env python3
"""Regenerate the paper's figures from bench CSV output.

Usage:
    mkdir -p out && VIDEOAPP_BENCH_CSV=out ./build/bench/fig03_flip_position
    (repeat for fig09/fig10/fig11, or run all benches)
    python3 tools/plot_figures.py out

Produces fig03.png, fig09.png, fig10.png, fig11.png next to the CSVs,
matching the layout of the paper's Figures 3, 9, 10 and 11.
Requires matplotlib.
"""

import csv
import os
import sys
from collections import defaultdict


def load(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def plot_fig03(rows, out):
    import matplotlib.pyplot as plt
    import numpy as np

    xs = sorted({int(r["mbx"]) for r in rows})
    ys = sorted({int(r["mby"]) for r in rows})
    grid = np.full((len(ys), len(xs)), np.nan)
    for r in rows:
        grid[int(r["mby"]), int(r["mbx"])] = float(r["psnr_db"])
    fig, ax = plt.subplots(figsize=(7, 4))
    im = ax.imshow(grid, cmap="viridis", origin="upper")
    ax.set_xlabel("MB x")
    ax.set_ylabel("MB y")
    ax.set_title("Fig. 3: frame PSNR (dB) after one bit flip, "
                 "by MB position")
    fig.colorbar(im, label="PSNR (dB)")
    fig.tight_layout()
    fig.savefig(out)
    print("wrote", out)


def plot_fig09(rows, out):
    import matplotlib.pyplot as plt

    by_bin = defaultdict(list)
    for r in rows:
        by_bin[int(r["bin"])].append(
            (float(r["error_rate"]), -float(r["loss_db"])))
    fig, ax = plt.subplots(figsize=(8, 5))
    for b in sorted(by_bin):
        pts = sorted(by_bin[b])
        ax.plot([p[0] for p in pts], [p[1] for p in pts],
                marker="o", markersize=3, label=f"bin {b}")
    ax.set_xscale("log")
    ax.set_xlabel("error probability")
    ax.set_ylabel("quality change (dB)")
    ax.set_title("Fig. 9(a): loss per equal-storage importance bin")
    ax.legend(fontsize=6, ncol=2)
    fig.tight_layout()
    fig.savefig(out)
    print("wrote", out)


def plot_fig10(rows, out):
    import matplotlib.pyplot as plt

    by_cls = defaultdict(list)
    for r in rows:
        by_cls[int(r["class"])].append(
            (float(r["error_rate"]), -float(r["loss_db"])))
    fig, ax = plt.subplots(figsize=(8, 5))
    for c in sorted(by_cls):
        pts = sorted(by_cls[c])
        ax.plot([p[0] for p in pts], [p[1] for p in pts],
                marker="s", markersize=3, label=f"class {c}")
    ax.set_xscale("log")
    ax.set_xlabel("error probability")
    ax.set_ylabel("cumulative quality change (dB)")
    ax.set_title("Fig. 10(a): cumulative loss per importance class")
    ax.legend(fontsize=6, ncol=2)
    fig.tight_layout()
    fig.savefig(out)
    print("wrote", out)


def plot_fig11(rows, out):
    import matplotlib.pyplot as plt

    by_design = defaultdict(list)
    for r in rows:
        by_design[r["design"]].append(
            (float(r["cells_per_pixel"]), float(r["psnr_db"])))
    fig, ax = plt.subplots(figsize=(7, 4))
    markers = {"Uniform": "o", "Variable": "^", "Ideal": "s"}
    for design, pts in by_design.items():
        pts.sort()
        ax.plot([p[0] for p in pts], [p[1] for p in pts],
                marker=markers.get(design, "x"), label=design)
    ax.set_xlabel("storage cells per encoded pixel")
    ax.set_ylabel("PSNR (dB)")
    ax.set_title("Fig. 11: density of uniform / variable / ideal "
                 "correction")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out)
    print("wrote", out)


def main():
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        print("matplotlib is required: pip install matplotlib",
              file=sys.stderr)
        sys.exit(2)
    directory = sys.argv[1] if len(sys.argv) > 1 else "."
    plotters = {
        "fig03": plot_fig03,
        "fig09": plot_fig09,
        "fig10": plot_fig10,
        "fig11": plot_fig11,
    }
    found = False
    for name, plot in plotters.items():
        path = os.path.join(directory, name + ".csv")
        if os.path.exists(path):
            found = True
            plot(load(path), os.path.join(directory, name + ".png"))
    if not found:
        print(f"no figure CSVs found in '{directory}'; run the "
              "benches with VIDEOAPP_BENCH_CSV set", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
