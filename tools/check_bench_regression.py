#!/usr/bin/env python3
"""Compare a fresh bench JSON against a committed baseline.

Supports the perf bench kinds (the "bench" field of the JSON):
``perf_pipeline`` (BENCH_pipeline.json), ``perf_archive``
(BENCH_archive.json) and ``perf_server`` (BENCH_server.json). The
two files must be of the same kind and produced with the same bench
config; mismatches are usage errors (exit 2), not regressions.

Two classes of fields are checked:

* HARD fields (exit 1 on violation): correctness flags and output
  counts that are deterministic for a fixed bench config — the
  parallel==sequential flag, per-thread payload/parity/cell totals,
  scrub repair counts, and the deterministic telemetry counters. A
  relative tolerance (--count-tolerance, default 2%) absorbs
  cross-platform libm jitter while still catching real behaviour
  changes.

* SOFT fields (warn, exit 0): wall-clock timings, throughput and
  speedups, which drift with runner load. --strict-timing promotes
  them to hard failures (--timing-tolerance, default 100% = 2x).

Malformed input never raises: a missing section or key in either
file is reported with a clear message (hard failure when the current
run lost something the baseline has; exit 2 when the file cannot be
interpreted at all).

Exit codes: 0 ok (possibly with warnings), 1 regression, 2 usage or
input error.

Regenerating a baseline after an intentional perf/behaviour change
(see EXPERIMENTS.md):

    VIDEOAPP_BENCH_SCALE=0.15 VIDEOAPP_BENCH_RUNS=2 \\
    VIDEOAPP_BENCH_VIDEOS=1 VIDEOAPP_THREADS=4 \\
    VIDEOAPP_BENCH_OUT=bench/baselines/BENCH_pipeline.baseline.json \\
    ./build/bench/perf_pipeline

and likewise BENCH_archive.baseline.json with ./build/bench/perf_archive.
"""

import argparse
import json
import sys

# Telemetry counters that are deterministic for a fixed bench config
# and therefore hard-checked, per bench kind. Scheduling-dependent
# counters (parallel.loops_* etc.) and everything under
# timers/histograms are soft: they describe how the work was
# executed, not what it computed. Counters a bench never touches
# stay 0 on both sides. perf_server hard-checks no counters: its
# telemetry (cache hit/miss splits, archive reads behind the cache,
# queue depths) depends on request interleaving under real
# concurrency — the schedule-derived response counts in its thread
# rows are the deterministic contract instead.
_STORAGE_HARD_COUNTERS = [
    "pipeline.videos_prepared",
    "pipeline.streams_stored",
    "storage.bch.blocks_decoded",
    "storage.bch.blocks_clean",
    "storage.bch.bits_corrected",
    "storage.bch.blocks_uncorrectable",
    "storage.channel.blocks_stored",
    "storage.channel.blocks_miscorrected",
    "storage.model.streams_stored",
    "storage.model.bits_damaged",
    "storage.cells.blocks_encoded",
    "sim.trials",
    "sim.bits_flipped",
    "archive.puts",
    "archive.gets",
    "archive.scrubs",
    "archive.streams_encoded",
    "archive.read.blocks_corrected",
    "archive.read.blocks_uncorrectable",
    "archive.scrub.blocks_read",
    "archive.scrub.blocks_rewritten",
    "archive.scrub.bits_corrected",
    "archive.scrub.blocks_uncorrectable",
    "archive.scrub.streams_miscorrected",
]

HARD_COUNTERS = {
    "perf_pipeline": _STORAGE_HARD_COUNTERS,
    "perf_archive": _STORAGE_HARD_COUNTERS,
    "perf_server": [],
}

# Per-kind row schemas: (hard keys, soft timing keys) of each entry
# in the "threads" array. For perf_server "threads" is the
# concurrent connection count and the hard keys are response counts
# fixed by the bench's per-client op schedule; the latency
# percentiles are soft like any other timing.
THREAD_ROW_KEYS = {
    "perf_pipeline": (
        ("payload_bits", "parity_bits"),
        ("prepare_s", "store_retrieve_s", "prepare_mb_per_s",
         "prepare_frames_per_s", "store_retrieve_mb_per_s"),
    ),
    "perf_archive": (
        ("payload_bytes", "cell_bytes", "scrub_blocks_rewritten",
         "scrub_bits_corrected"),
        ("put_s", "get_s", "scrub_s"),
    ),
    "perf_server": (
        ("gets_ok", "puts_ok", "scrubs_ok", "not_found",
         "responses_lost"),
        ("wall_s", "ops_per_s", "get_p50_us", "get_p99_us"),
    ),
}

# Additional per-kind row arrays beyond "threads", with their own
# (hard, soft) key schemas. perf_server's "skewed" section is the
# hot-key load (90% of GETs on one GOP): every op is a GET of a
# stored video, so gets_ok/responses_lost are schedule-determined
# and hard; throughput and latency drift with the runner. The
# "cluster" section only exists for `perf_server --shards N` runs
# (rows are keyed by shard count in their "threads" field); a run
# without the flag simply omits it, so the section is checked only
# when one of the two files carries it.
EXTRA_ROW_SECTIONS = {
    "perf_server": {
        "skewed": (
            ("gets_ok", "responses_lost"),
            ("wall_s", "ops_per_s", "get_p50_us", "get_p99_us"),
        ),
        "cluster": (
            ("gets_ok", "not_found", "responses_lost"),
            ("wall_s", "ops_per_s", "get_p50_us", "get_p99_us"),
        ),
        # The resize section only exists for `perf_server --shards N
        # --resize` runs (one row keyed by the post-transition shard
        # count). The video totals are fixed by the bench schedule
        # and the ring, so they are hard; the concurrent read
        # tallies and the transition wall time drift with the
        # runner. Zero lost videos is additionally enforced by the
        # resize_no_lost_videos flag below.
        "resize": (
            ("videos_total", "videos_moved", "videos_lost"),
            ("wall_s", "reads_ok", "read_gaps"),
        ),
        # Shed rows are keyed by shed threshold (0 = off, 1 = on) in
        # their "threads" field. Only the schedule-fixed totals are
        # hard; the full/degraded fidelity split depends on queue
        # timing under load and drifts with the runner, so it is
        # checked like a timing.
        "shed": (
            ("answered", "responses_lost"),
            ("wall_s", "ops_per_s", "get_p50_us", "get_p99_us",
             "full_p99_us", "full_fidelity", "degraded",
             "streams_shed"),
        ),
    },
}

# Per-kind correctness flags that must be true in the current run.
CORRECTNESS_FLAGS = {
    "perf_pipeline": ("parallel_equals_sequential",),
    "perf_archive": ("parallel_equals_sequential",
                     "round_trip_exact"),
    "perf_server": ("responses_all_accounted", "wire_matches_local",
                    "cache_hit_skips_decode",
                    "backpressure_returns_retry",
                    "coalescing_single_flight",
                    "shed_disabled_never_degrades",
                    "shed_under_pressure_degrades_tail"),
}

# Flags a bench only emits in some modes (perf_server --shards N,
# --resize): absent is fine, present-but-false is a failure. The
# resize trio is the live-membership gate: no video may be lost or
# byte-mismatched across a ring transition, the migration must move
# exactly the ring-diff prediction, and a killed shard must rebuild
# byte-exact.
OPTIONAL_FLAGS = {
    "perf_server": ("cluster_routed_get_matches_single",
                    "cluster_meta_repair_get_ok",
                    "cluster_scrub_budget_respected",
                    "resize_no_lost_videos",
                    "resize_moved_matches_ring_diff",
                    "resize_rebuild_byte_exact"),
}


class Report:
    def __init__(self):
        self.failures = []
        self.warnings = []

    def fail(self, message):
        self.failures.append(message)

    def warn(self, message):
        self.warnings.append(message)


def usage_error(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load(path, role):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        hint = ""
        if role == "baseline":
            hint = (
                "; no committed baseline exists for this bench yet "
                "— generate one with VIDEOAPP_BENCH_OUT="
                f"{path} and the bench binary (see the header of "
                "this script and EXPERIMENTS.md), then commit it"
            )
        usage_error(f"{role} file {path} does not exist{hint}")
    except (OSError, json.JSONDecodeError) as e:
        usage_error(f"cannot read {role} file {path}: {e}")
    if not isinstance(data, dict):
        usage_error(f"{path}: top level is not a JSON object")
    return data


def rel_diff(current, baseline):
    """Relative difference of two scalars, 0 when both are zero."""
    if baseline == 0 and current == 0:
        return 0.0
    denom = max(abs(baseline), 1e-12)
    return abs(current - baseline) / denom


def check_scalar(report, name, current, baseline, tolerance, hard):
    if current is None:
        report.fail(f"{name}: missing from current results")
        return
    if baseline is None:
        # New metric with no baseline entry: fine, note it.
        report.warn(f"{name}: not in baseline (new metric?)")
        return
    if not isinstance(current, (int, float)) or not isinstance(
            baseline, (int, float)):
        report.fail(
            f"{name}: not numeric (current {current!r}, baseline "
            f"{baseline!r})")
        return
    diff = rel_diff(current, baseline)
    if diff <= tolerance:
        return
    message = (
        f"{name}: current {current} vs baseline {baseline} "
        f"({diff * 100:.1f}% off, tolerance {tolerance * 100:.0f}%)"
    )
    if hard:
        report.fail(message)
    else:
        report.warn(message)


def check_kind(current, baseline, current_path, baseline_path):
    """The bench kind ("bench" field) must be present and equal."""
    kc = current.get("bench")
    kb = baseline.get("bench")
    # Pre-kind BENCH_pipeline.json files carry no "bench" field;
    # treat them as perf_pipeline so old baselines keep working.
    kc = kc if kc is not None else "perf_pipeline"
    kb = kb if kb is not None else "perf_pipeline"
    if kc != kb:
        usage_error(
            f"bench kinds differ: {current_path} is \"{kc}\" but "
            f"{baseline_path} is \"{kb}\"; compare a run against "
            "the baseline of the same bench binary")
    if kc not in THREAD_ROW_KEYS:
        usage_error(
            f"unknown bench kind \"{kc}\"; this checker knows "
            f"{sorted(THREAD_ROW_KEYS)} — update "
            "tools/check_bench_regression.py for the new bench")
    return kc


def check_config(current, baseline):
    ca, cb = current.get("config"), baseline.get("config")
    if ca is None or cb is None:
        usage_error(
            "one of the files has no \"config\" section; "
            "regenerate both with the current bench binary")
    if ca != cb:
        usage_error(
            f"bench configs differ (current {ca}, baseline {cb}); "
            "counts are only comparable at equal scale — rerun "
            "with the baseline's VIDEOAPP_BENCH_* settings or "
            "regenerate the baseline")


def check_correctness(report, kind, current):
    for flag in CORRECTNESS_FLAGS[kind]:
        value = current.get(flag)
        if value is None:
            report.fail(
                f"{flag}: missing from current results (the bench "
                "did not emit its correctness flag)")
        elif value is not True:
            report.fail(
                f"{flag} is not true: the bench detected a "
                "correctness violation")
    for flag in OPTIONAL_FLAGS.get(kind, ()):
        value = current.get(flag)
        if value is not None and value is not True:
            report.fail(
                f"{flag} is not true: the bench detected a "
                "correctness violation")


def thread_rows(report, data, which, section="threads",
                required=True):
    """A row array as {thread_count: row}, {} on damage. Each row is
    keyed by its "threads" field (the thread or connection count)."""
    rows = data.get(section)
    if rows is None:
        if required:
            report.fail(
                f"{section} section missing from {which} results")
        return {}
    if not isinstance(rows, list):
        report.fail(f"{section} section of {which} results is not a "
                    "list")
        return {}
    by_count = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or "threads" not in row:
            report.fail(
                f"{section}[{i}] of {which} results has no "
                "\"threads\" key; regenerate with the current "
                "bench binary")
            continue
        by_count[row["threads"]] = row
    return by_count


def check_row_section(report, section, keys, current, baseline,
                      count_tol, timing_tol, strict_timing):
    hard_keys, timing_keys = keys
    # A baseline predating the section altogether: note and move on
    # (the section becomes load-bearing once the baseline is
    # regenerated). A *current* run missing a section the baseline
    # has is a failure; a mode-dependent section (perf_server's
    # "cluster", only emitted under --shards) absent from both files
    # is simply not checked.
    rows_b = thread_rows(report, baseline, "baseline", section,
                         required=False)
    required = section == "threads" or bool(rows_b) or \
        section in current
    if not required:
        return
    rows_c = thread_rows(report, current, "current", section,
                         required=section == "threads" or
                         bool(rows_b))
    if not rows_b:
        report.warn(f"baseline has no usable {section} rows")
    for n in sorted(rows_b):
        if n not in rows_c:
            report.fail(
                f"{section}[{n}]: row missing from current run")
            continue
        rc, rb = rows_c[n], rows_b[n]
        for key in hard_keys:
            check_scalar(report, f"{section}[{n}].{key}",
                         rc.get(key), rb.get(key), count_tol,
                         hard=True)
        for key in timing_keys:
            check_scalar(report, f"{section}[{n}].{key}",
                         rc.get(key), rb.get(key), timing_tol,
                         hard=strict_timing)


def check_thread_rows(report, kind, current, baseline, count_tol,
                      timing_tol, strict_timing):
    check_row_section(report, "threads", THREAD_ROW_KEYS[kind],
                      current, baseline, count_tol, timing_tol,
                      strict_timing)
    for section, keys in EXTRA_ROW_SECTIONS.get(kind, {}).items():
        check_row_section(report, section, keys, current, baseline,
                          count_tol, timing_tol, strict_timing)


def check_bch(report, current, baseline, timing_tol, strict_timing):
    bc = current.get("bch_single_thread")
    bb = baseline.get("bch_single_thread")
    if bb is None:
        return
    if bc is None:
        report.fail("bch_single_thread section missing from "
                    "current results")
        return
    for key in ("packed_encode_s", "packed_decode_s"):
        check_scalar(report, f"bch_single_thread.{key}", bc.get(key),
                     bb.get(key), timing_tol, hard=strict_timing)


def check_telemetry(report, kind, current, baseline, count_tol):
    tc = current.get("telemetry")
    tb = baseline.get("telemetry")
    if tc is None:
        report.fail("telemetry section missing from current results")
        return
    if tb is None:
        report.warn("telemetry section missing from baseline")
        return
    sv_c = tc.get("schema_version")
    sv_b = tb.get("schema_version")
    if sv_c != sv_b:
        report.warn(
            f"telemetry schema_version changed "
            f"({sv_b} -> {sv_c}); counter comparison may be stale"
        )
    cc = tc.get("counters")
    cb = tb.get("counters")
    if not isinstance(cc, dict):
        report.fail("telemetry.counters missing from current "
                    "results")
        return
    if not isinstance(cb, dict):
        report.warn("telemetry.counters missing from baseline")
        return
    hard_counters = HARD_COUNTERS[kind]
    for name in hard_counters:
        # A counter neither side recorded stayed at zero (metrics
        # register on first increment).
        check_scalar(report, f"telemetry.counters.{name}",
                     cc.get(name, 0), cb.get(name, 0), count_tol,
                     hard=True)
    # Everything else (scheduling counters, new metrics): soft.
    for name in sorted(set(cc) | set(cb)):
        if name in hard_counters:
            continue
        check_scalar(report, f"telemetry.counters.{name}",
                     cc.get(name, 0), cb.get(name, 0), count_tol,
                     hard=False)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--current", required=True,
                        help="freshly produced bench JSON")
    parser.add_argument(
        "--baseline", required=True,
        help="committed bench/baselines/*.baseline.json")
    parser.add_argument(
        "--count-tolerance", type=float, default=0.02,
        help="relative tolerance for hard count/size fields "
             "(default 0.02)")
    parser.add_argument(
        "--timing-tolerance", type=float, default=1.0,
        help="relative tolerance for timing fields (default 1.0, "
             "i.e. 2x)")
    parser.add_argument(
        "--strict-timing", action="store_true",
        help="treat timing drift beyond tolerance as a failure "
             "instead of a warning")
    args = parser.parse_args()

    current = load(args.current, "current")
    baseline = load(args.baseline, "baseline")
    kind = check_kind(current, baseline, args.current, args.baseline)
    check_config(current, baseline)

    report = Report()
    # Timing fields are only comparable within one ISA level; a
    # VIDEOAPP_SIMD override (or older baseline without the field)
    # is worth flagging but is not a regression.
    sc, sb = current.get("simd_level"), baseline.get("simd_level")
    if sb is not None and sc != sb:
        report.warn(
            f"simd_level differs (current {sc}, baseline {sb}); "
            "timing comparison crosses ISA levels")
    check_correctness(report, kind, current)
    check_thread_rows(report, kind, current, baseline,
                      args.count_tolerance, args.timing_tolerance,
                      args.strict_timing)
    if kind == "perf_pipeline":
        check_bch(report, current, baseline, args.timing_tolerance,
                  args.strict_timing)
    check_telemetry(report, kind, current, baseline,
                    args.count_tolerance)

    for w in report.warnings:
        print(f"warning: {w}")
    for f in report.failures:
        print(f"FAIL: {f}")
    if report.failures:
        print(f"\n{len(report.failures)} regression(s) vs baseline "
              f"{args.baseline}")
        return 1
    print(f"ok: within tolerance of baseline {args.baseline} "
          f"({len(report.warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
