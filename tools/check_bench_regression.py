#!/usr/bin/env python3
"""Compare a fresh BENCH_pipeline.json against a committed baseline.

Two classes of fields are checked:

* HARD fields (exit 1 on violation): correctness and output-size
  metrics that are deterministic for a fixed bench config — the
  parallel==sequential flag, per-thread payload/parity bit totals,
  and the deterministic telemetry counters (BCH blocks decoded /
  bits corrected / uncorrectable, modeled-channel damage, trial and
  stream counts). A relative tolerance (--count-tolerance, default
  2%) absorbs cross-platform libm jitter while still catching real
  behaviour changes.

* SOFT fields (warn, exit 0): wall-clock timings, throughput and
  speedups, which drift with runner load. --strict-timing promotes
  them to hard failures (--timing-tolerance, default 100% = 2x).

The two files must have been produced with the same bench config
(scale / runs / videos); a mismatch is a usage error (exit 2), not a
regression, since counts are only comparable at equal scale.

Exit codes: 0 ok (possibly with warnings), 1 regression, 2 usage or
input error.

Regenerating the baseline after an intentional perf/behaviour change
(see EXPERIMENTS.md):

    VIDEOAPP_BENCH_SCALE=0.15 VIDEOAPP_BENCH_RUNS=2 \
    VIDEOAPP_BENCH_VIDEOS=1 VIDEOAPP_THREADS=4 \
    VIDEOAPP_BENCH_OUT=bench/baselines/BENCH_pipeline.baseline.json \
    ./build/bench/perf_pipeline
"""

import argparse
import json
import sys

# Telemetry counters that are deterministic for a fixed bench config
# and therefore hard-checked. Scheduling-dependent counters
# (parallel.loops_* etc.) and everything under timers/histograms are
# soft: they describe how the work was executed, not what it
# computed.
HARD_COUNTERS = [
    "pipeline.videos_prepared",
    "pipeline.streams_stored",
    "storage.bch.blocks_decoded",
    "storage.bch.blocks_clean",
    "storage.bch.bits_corrected",
    "storage.bch.blocks_uncorrectable",
    "storage.channel.blocks_stored",
    "storage.channel.blocks_miscorrected",
    "storage.model.streams_stored",
    "storage.model.bits_damaged",
    "sim.trials",
    "sim.bits_flipped",
]


class Report:
    def __init__(self):
        self.failures = []
        self.warnings = []

    def fail(self, message):
        self.failures.append(message)

    def warn(self, message):
        self.warnings.append(message)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def rel_diff(current, baseline):
    """Relative difference of two scalars, 0 when both are zero."""
    if baseline == 0 and current == 0:
        return 0.0
    denom = max(abs(baseline), 1e-12)
    return abs(current - baseline) / denom


def check_scalar(report, name, current, baseline, tolerance, hard):
    if current is None:
        report.fail(f"{name}: missing from current results")
        return
    if baseline is None:
        # New metric with no baseline entry: fine, note it.
        report.warn(f"{name}: not in baseline (new metric?)")
        return
    diff = rel_diff(current, baseline)
    if diff <= tolerance:
        return
    message = (
        f"{name}: current {current} vs baseline {baseline} "
        f"({diff * 100:.1f}% off, tolerance {tolerance * 100:.0f}%)"
    )
    if hard:
        report.fail(message)
    else:
        report.warn(message)


def check_config(current, baseline):
    ca, cb = current.get("config"), baseline.get("config")
    if ca is None or cb is None:
        print(
            "error: one of the files has no \"config\" section; "
            "regenerate both with the current perf_pipeline",
            file=sys.stderr,
        )
        sys.exit(2)
    if ca != cb:
        print(
            f"error: bench configs differ (current {ca}, baseline "
            f"{cb}); counts are only comparable at equal scale — "
            "rerun with the baseline's VIDEOAPP_BENCH_* settings "
            "or regenerate the baseline",
            file=sys.stderr,
        )
        sys.exit(2)


def check_correctness(report, current):
    if current.get("parallel_equals_sequential") is not True:
        report.fail(
            "parallel_equals_sequential is not true: parallel "
            "execution no longer matches sequential output"
        )


def check_thread_rows(report, current, baseline, count_tol,
                      timing_tol, strict_timing):
    rows_c = {r["threads"]: r for r in current.get("threads", [])}
    rows_b = {r["threads"]: r for r in baseline.get("threads", [])}
    for n in sorted(rows_b):
        if n not in rows_c:
            report.fail(f"threads[{n}]: row missing from current run")
            continue
        rc, rb = rows_c[n], rows_b[n]
        for key in ("payload_bits", "parity_bits"):
            check_scalar(report, f"threads[{n}].{key}", rc.get(key),
                         rb.get(key), count_tol, hard=True)
        for key in ("prepare_s", "store_retrieve_s"):
            check_scalar(report, f"threads[{n}].{key}", rc.get(key),
                         rb.get(key), timing_tol,
                         hard=strict_timing)


def check_bch(report, current, baseline, timing_tol, strict_timing):
    bc = current.get("bch_single_thread", {})
    bb = baseline.get("bch_single_thread", {})
    for key in ("packed_encode_s", "packed_decode_s"):
        check_scalar(report, f"bch_single_thread.{key}", bc.get(key),
                     bb.get(key), timing_tol, hard=strict_timing)


def check_telemetry(report, current, baseline, count_tol):
    tc = current.get("telemetry")
    tb = baseline.get("telemetry")
    if tc is None:
        report.fail("telemetry section missing from current results")
        return
    if tb is None:
        report.warn("telemetry section missing from baseline")
        return
    sv_c = tc.get("schema_version")
    sv_b = tb.get("schema_version")
    if sv_c != sv_b:
        report.warn(
            f"telemetry schema_version changed "
            f"({sv_b} -> {sv_c}); counter comparison may be stale"
        )
    cc = tc.get("counters", {})
    cb = tb.get("counters", {})
    for name in HARD_COUNTERS:
        # A counter neither side recorded stayed at zero (metrics
        # register on first increment).
        check_scalar(report, f"telemetry.counters.{name}",
                     cc.get(name, 0), cb.get(name, 0), count_tol,
                     hard=True)
    # Everything else (scheduling counters, new metrics): soft.
    for name in sorted(set(cc) | set(cb)):
        if name in HARD_COUNTERS:
            continue
        check_scalar(report, f"telemetry.counters.{name}",
                     cc.get(name, 0), cb.get(name, 0), count_tol,
                     hard=False)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_pipeline.json")
    parser.add_argument(
        "--baseline", required=True,
        help="committed bench/baselines/BENCH_pipeline.baseline.json")
    parser.add_argument(
        "--count-tolerance", type=float, default=0.02,
        help="relative tolerance for hard count/size fields "
             "(default 0.02)")
    parser.add_argument(
        "--timing-tolerance", type=float, default=1.0,
        help="relative tolerance for timing fields (default 1.0, "
             "i.e. 2x)")
    parser.add_argument(
        "--strict-timing", action="store_true",
        help="treat timing drift beyond tolerance as a failure "
             "instead of a warning")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    check_config(current, baseline)

    report = Report()
    check_correctness(report, current)
    check_thread_rows(report, current, baseline,
                      args.count_tolerance, args.timing_tolerance,
                      args.strict_timing)
    check_bch(report, current, baseline, args.timing_tolerance,
              args.strict_timing)
    check_telemetry(report, current, baseline, args.count_tolerance)

    for w in report.warnings:
        print(f"warning: {w}")
    for f in report.failures:
        print(f"FAIL: {f}")
    if report.failures:
        print(f"\n{len(report.failures)} regression(s) vs baseline "
              f"{args.baseline}")
        return 1
    print(f"ok: within tolerance of baseline {args.baseline} "
          f"({len(report.warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
