/**
 * @file
 * Figure 11 and the Section 7.3 headline numbers: storage density
 * (cells per encoded pixel) versus quality for three designs on the
 * 8-level MLC PCM substrate —
 *   Uniform:  every payload bit protected with BCH-16 (1e-16),
 *   Variable: VideoApp's importance-based assignment (Table 1),
 *   Ideal:    perfect error correction at zero overhead,
 * each at the paper's three quality targets (CRF 16 / 20 / 24).
 *
 * Also reports: fraction of ECC overhead eliminated (paper: 47%),
 * storage saved vs uniform (12.5%), density vs SLC (2.57x), and the
 * quality loss of the variable design (< 0.3 dB).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/pipeline.h"
#include "quality/psnr.h"
#include "sim/bench_config.h"
#include "sim/calibrate.h"
#include "sim/monte_carlo.h"

namespace videoapp {
namespace {

struct DesignPoint
{
    double cellsPerPixel = 0;
    double psnr = 0; // vs original, averaged over suite
    double parityBits = 0;
    double storedBits = 0;
};

void
run(const BenchConfig &config)
{
    const std::vector<int> crfs = {kCrfVeryHigh, kCrfHigh,
                                   kCrfStandard};

    std::printf("%-6s %-10s %16s %12s %14s\n", "CRF", "Design",
                "cells/pixel", "PSNR (dB)", "ECC overhead");
    CsvWriter csv(config, "fig11",
                  "crf,design,cells_per_pixel,psnr_db");

    for (int crf : crfs) {
        DesignPoint uniform, variable, ideal;
        double quality_loss_max = 0;
        u64 pixels_total = 0;

        // Step 1 of the paper's methodology (Section 6): profile
        // the suite at this quality target and derive the
        // scale-appropriate assignment under the 0.3 dB budget.
        EncoderConfig profile_config;
        profile_config.crf = crf;
        EccAssignment assignment = calibrateAssignment(
            config.suite(), profile_config, config.runs, 0.3,
            9000 + static_cast<u64>(crf));
        std::printf("  [CRF %d assignment: %s]\n", crf,
                    assignment.toString().c_str());

        int video_idx = 0;
        for (const SyntheticSpec &spec : config.suite()) {
            Video source = generateSynthetic(spec);
            EncoderConfig enc_config;
            enc_config.crf = crf;

            PreparedVideo prepared =
                prepareVideo(source, enc_config, assignment);
            u64 pixels = source.pixelCount();
            pixels_total += pixels;

            ModeledChannel channel(kPcmRawBer);

            // Variable: Table-1 protection, real error injection.
            // Runs are independent trials, each with a child
            // generator split from this video's master seed, so
            // they execute on the thread pool; the worst-PSNR
            // reduction happens in run order afterwards.
            const std::size_t runs =
                static_cast<std::size_t>(config.runs);
            std::vector<double> run_psnr(runs, 0.0);
            StorageOutcome var_outcome;
            parallelFor(runs, [&](std::size_t run) {
                Rng run_rng = Rng::forStream(
                    4000 + static_cast<u64>(video_idx), run);
                StorageOutcome o =
                    storeAndRetrieve(prepared, channel, run_rng);
                run_psnr[run] = psnrVideo(source, o.decoded);
                if (run + 1 == runs) // density figures: any run
                    var_outcome = std::move(o);
            });
            double worst_psnr_variable = 1e9;
            for (double psnr : run_psnr)
                worst_psnr_variable =
                    std::min(worst_psnr_variable, psnr);
            variable.cellsPerPixel +=
                var_outcome.cellsPerPixel * pixels;
            variable.psnr += worst_psnr_variable * pixels;
            variable.parityBits += var_outcome.parityBits;
            variable.storedBits += var_outcome.payloadBits +
                                   var_outcome.parityBits;

            double clean = cleanPsnr(source, prepared.enc);
            quality_loss_max =
                std::max(quality_loss_max,
                         clean - worst_psnr_variable);

            // Uniform: everything at BCH-16 — error-free output.
            repartition(prepared,
                        EccAssignment::uniform(kEccPrecise));
            double uni_cells =
                densityCellsPerPixel(prepared, pixels);
            uniform.cellsPerPixel += uni_cells * pixels;
            uniform.psnr += clean * pixels;
            u64 uni_payload = prepared.payloadBits();
            u64 uni_parity =
                parityBitsFor(uni_payload, kEccPrecise) +
                parityBitsFor(prepared.headerBits(), kEccPrecise);
            uniform.parityBits += uni_parity;
            uniform.storedBits += uni_payload +
                                  prepared.headerBits() + uni_parity;

            // Ideal: no parity, no errors.
            double ideal_cells =
                static_cast<double>(uni_payload +
                                    prepared.headerBits()) /
                3.0 / pixels;
            ideal.cellsPerPixel += ideal_cells * pixels;
            ideal.psnr += clean * pixels;
            ideal.storedBits +=
                uni_payload + prepared.headerBits();

            ++video_idx;
        }

        auto normalise = [&](DesignPoint &p) {
            p.cellsPerPixel /= pixels_total;
            p.psnr /= pixels_total;
        };
        normalise(uniform);
        normalise(variable);
        normalise(ideal);

        auto print = [&](const char *name, const DesignPoint &p) {
            std::printf("%-6d %-10s %16.4f %12.2f %13.1f%%\n", crf,
                        name, p.cellsPerPixel, p.psnr,
                        p.storedBits > 0
                            ? 100.0 * p.parityBits / p.storedBits
                            : 0.0);
            csv.row(std::to_string(crf) + "," + name + "," +
                    std::to_string(p.cellsPerPixel) + "," +
                    std::to_string(p.psnr));
        };
        print("Uniform", uniform);
        print("Variable", variable);
        print("Ideal", ideal);

        // Section 7.3 summary numbers for this CRF.
        double overhead_cut =
            1.0 - variable.parityBits / uniform.parityBits;
        double storage_saving =
            1.0 - variable.cellsPerPixel / uniform.cellsPerPixel;
        // SLC: 1 bit/cell, no ECC, payload+headers only.
        double slc_cells_per_pixel =
            ideal.cellsPerPixel * 3.0; // same bits at 1 bit/cell
        double vs_slc =
            slc_cells_per_pixel / variable.cellsPerPixel;
        std::printf(
            "  -> ECC overhead eliminated: %.1f%% (paper: 47%%); "
            "storage saved vs uniform: %.1f%% (paper: 12.5%%);\n"
            "     density vs SLC: %.2fx (paper: 2.57x); worst "
            "quality loss: %.3f dB (budget 0.3 dB)\n\n",
            100.0 * overhead_cut, 100.0 * storage_saving, vs_slc,
            quality_loss_max);
    }
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Figure 11: storage density of uniform / variable / ideal "
        "correction",
        config);
    run(config);
    return 0;
}
