/**
 * @file
 * Figure 3: frame PSNR after a single bit flip as a function of the
 * MB position within the frame.
 *
 * Reproduces the coding-error propagation pattern of Figure 2(c):
 * flips in MBs near the top-left corner damage everything after
 * them in scan order, so PSNR grows toward the bottom-right corner.
 * Like the paper, only inter frames without compensation feedback
 * are measured (the flip's own frame PSNR), averaged over many
 * frames per position.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/rng.h"
#include "quality/psnr.h"
#include "sim/bench_config.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

void
run(const BenchConfig &config)
{
    // A single sequence at a resolution that gives a readable grid.
    SyntheticSpec spec = standardSuite(
        std::max(config.scale, 0.5))[1]; // crowd_run: busy content
    spec.frames = std::max(16, spec.frames / 2);
    Video source = generateSynthetic(spec);

    EncoderConfig enc_config;
    enc_config.gop.gopSize = 1000; // one I frame, then P frames
    enc_config.gop.bFrames = 0;
    EncodeResult enc = encodeVideo(source, enc_config);

    const int mbw = enc.video.mbWidth();
    const int mbh = enc.video.mbHeight();
    std::vector<double> psnr_sum(
        static_cast<std::size_t>(mbw) * mbh, 0.0);
    std::vector<int> psnr_count(psnr_sum.size(), 0);

    Rng rng(77);
    // For each P frame, flip one bit inside each MB position and
    // measure the PSNR of that frame alone against the clean decode.
    int frames_used = 0;
    for (std::size_t f = 0; f < enc.side.frames.size(); ++f) {
        if (enc.side.frames[f].type != FrameType::P)
            continue;
        if (frames_used >= 8)
            break; // keep the default run quick
        ++frames_used;
        for (int mb = 0; mb < mbw * mbh; ++mb) {
            const MbRecord &rec = enc.side.frames[f].mbs[mb];
            if (rec.bitLength == 0)
                continue;
            EncodedVideo corrupted = enc.video;
            u64 bit = rec.bitOffset + rng.nextBelow(rec.bitLength);
            flipBit(corrupted.payloads[f], bit);
            Video decoded = decodeVideo(corrupted);
            int display = enc.side.frames[f].displayIdx;
            double psnr =
                psnrFrame(enc.reconFrames[display],
                          decoded.frames[display]);
            psnr_sum[mb] += psnr;
            ++psnr_count[mb];
        }
    }

    CsvWriter csv(config, "fig03", "mbx,mby,psnr_db");
    for (int y = 0; y < mbh; ++y)
        for (int x = 0; x < mbw; ++x) {
            int mb = y * mbw + x;
            if (psnr_count[mb])
                csv.row(std::to_string(x) + "," + std::to_string(y) +
                        "," +
                        std::to_string(psnr_sum[mb] /
                                       psnr_count[mb]));
        }

    std::printf("Average frame PSNR (dB) after one bit flip, by MB "
                "position (top-left = scan start):\n\n     ");
    for (int x = 0; x < mbw; ++x)
        std::printf("  x=%-3d", x);
    std::printf("\n");
    for (int y = 0; y < mbh; ++y) {
        std::printf("y=%-3d", y);
        for (int x = 0; x < mbw; ++x) {
            int mb = y * mbw + x;
            double v = psnr_count[mb]
                           ? psnr_sum[mb] / psnr_count[mb]
                           : 0.0;
            std::printf(" %6.1f", v);
        }
        std::printf("\n");
    }

    // Summarise the paper's qualitative claim.
    double top_left = psnr_count[0]
                          ? psnr_sum[0] / psnr_count[0]
                          : 0.0;
    int last = mbw * mbh - 1;
    double bottom_right = psnr_count[last]
                              ? psnr_sum[last] / psnr_count[last]
                              : 0.0;
    std::printf("\nTop-left MB flip PSNR %.1f dB vs bottom-right "
                "%.1f dB (paper: bottom-right flips cause much less "
                "damage).\n",
                top_left, bottom_right);
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Figure 3: frame PSNR vs position of the flipped bit",
        config);
    run(config);
    return 0;
}
