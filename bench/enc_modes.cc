/**
 * @file
 * Section 5 / Figure 7: which AES modes of operation are compatible
 * with approximate video storage.
 *
 * Measures, per mode: (1) equal-block leakage (requirement #1 —
 * secrecy), (2) single-ciphertext-bit-flip propagation (requirements
 * #2/#3 — error confinement), and (3) the end-to-end quality of the
 * encrypted approximate video pipeline at the PCM raw error rate
 * compared to the unencrypted pipeline.
 */

#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "crypto/modes.h"
#include "sim/bench_config.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

void
microProperties()
{
    Rng rng(71);
    Aes aes(Bytes(16, 0x5A));
    AesBlock iv{};
    for (std::size_t i = 0; i < iv.size(); ++i)
        iv[i] = static_cast<u8>(rng.next());

    // Plaintext with repeated blocks (video-like redundancy).
    Bytes plain;
    for (int i = 0; i < 256; ++i)
        for (int j = 0; j < 16; ++j)
            plain.push_back(static_cast<u8>(j + (i % 4)));

    std::printf("%-6s %18s %22s %22s\n", "Mode", "leakage",
                "bits damaged/flip", "confined to 1 bit");
    for (CipherMode mode :
         {CipherMode::ECB, CipherMode::CBC, CipherMode::CFB,
          CipherMode::OFB, CipherMode::CTR}) {
        double leakage = equalBlockLeakage(mode, aes, iv, plain);
        double damaged = 0;
        bool confined = true;
        const int flips = 20;
        for (int i = 0; i < flips; ++i) {
            BitPos pos = rng.nextBelow(plain.size() * 8);
            auto prop =
                analyzeFlipPropagation(mode, aes, iv, plain, pos);
            damaged += static_cast<double>(prop.damagedBits);
            confined &= prop.confinedToFlippedBit;
        }
        std::printf("%-6s %18.2f %22.1f %22s\n",
                    cipherModeName(mode).c_str(), leakage,
                    damaged / flips, confined ? "yes" : "NO");
    }
    std::printf("\n(Paper: ECB fails secrecy; CBC propagates; OFB "
                "and CTR meet all three requirements.)\n\n");
}

void
endToEnd(const BenchConfig &config)
{
    SyntheticSpec spec = config.suite()[0];
    Video source = generateSynthetic(spec);
    PreparedVideo prepared = prepareVideo(
        source, EncoderConfig{}, EccAssignment::paperTable1());

    ModeledChannel channel(kPcmRawBer);
    std::printf("End-to-end encrypted approximate storage (%s, raw "
                "BER %.0e, %d runs):\n\n",
                spec.name.c_str(), kPcmRawBer, config.runs);
    std::printf("%-12s %22s\n", "Pipeline", "mean PSNR vs clean");

    auto measure = [&](const char *name,
                       std::optional<EncryptionConfig> enc_cfg,
                       u64 seed) {
        double total = 0;
        for (int run = 0; run < config.runs; ++run) {
            Rng rng(seed + static_cast<u64>(run));
            StorageOutcome outcome = storeAndRetrieve(
                prepared, channel, rng, enc_cfg);
            total += outcome.psnrVsReference;
        }
        std::printf("%-12s %22.2f\n", name, total / config.runs);
    };

    measure("plain", std::nullopt, 500);
    for (CipherMode mode : {CipherMode::CTR, CipherMode::OFB,
                            CipherMode::CFB, CipherMode::CBC,
                            CipherMode::ECB}) {
        EncryptionConfig enc_cfg;
        enc_cfg.mode = mode;
        enc_cfg.key = Bytes(16, 0x77);
        measure(cipherModeName(mode).c_str(), enc_cfg, 500);
    }
    std::printf("\n(OFB/CTR match the unencrypted pipeline; "
                "CBC/ECB amplify every storage error across whole "
                "cipher blocks.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Section 5 / Figure 7: encryption modes over approximate "
        "storage",
        config);
    microProperties();
    endToEnd(config);
    return 0;
}
