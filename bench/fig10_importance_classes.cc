/**
 * @file
 * Figure 10: (a) cumulative quality loss as a function of the error
 * rate for importance classes (class i holds all MBs of importance
 * <= 2^i), and (b) cumulative storage per class.
 *
 * These curves are the measurement input to the Section 7.2 ECC
 * assignment optimiser (see bench/table1_ecc_assignment).
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "codec/encoder.h"
#include "graph/importance.h"
#include "sim/bench_config.h"
#include "sim/binning.h"
#include "sim/monte_carlo.h"

namespace videoapp {
namespace {

void
run(const BenchConfig &config)
{
    const std::vector<double> rates = {1e-12, 1e-10, 1e-8, 1e-6,
                                       1e-5, 1e-4, 1e-3, 1e-2};

    // Collect the union of occurring classes across the suite.
    std::map<int, std::vector<double>> loss; // class -> per-rate max
    std::map<int, double> storage;           // class -> max fraction

    int video_idx = 0;
    for (const SyntheticSpec &spec : config.suite()) {
        Video source = generateSynthetic(spec);
        EncodeResult enc = encodeVideo(source, EncoderConfig{});
        ImportanceMap importance =
            computeImportance(enc.side, enc.video);

        Rng rng(2000 + static_cast<u64>(video_idx));
        for (int cls : occurringClasses(enc, importance)) {
            BitRangeSet bits = classBits(enc, importance, cls);
            auto &row = loss[cls];
            row.resize(rates.size(), 0.0);
            for (std::size_t r = 0; r < rates.size(); ++r) {
                LossStats stats =
                    measureQualityLoss(source, enc, bits, rates[r],
                                       config.runs, rng);
                row[r] = std::max(row[r], stats.maxLossDb);
            }
            storage[cls] = std::max(
                storage[cls],
                cumulativeStorageFraction(enc, importance, cls));
        }
        ++video_idx;
        std::printf("  [processed %s]\n", spec.name.c_str());
    }

    CsvWriter csv(config, "fig10",
                  "class,error_rate,loss_db,cum_storage");
    for (const auto &[cls, row] : loss)
        for (std::size_t r = 0; r < rates.size(); ++r)
            csv.row(std::to_string(cls) + "," +
                    std::to_string(rates[r]) + "," +
                    std::to_string(row[r]) + "," +
                    std::to_string(storage[cls]));

    std::printf("\n(a) Cumulative worst-case quality change (dB); "
                "class i = MBs with importance <= 2^i:\n\n%-7s",
                "class");
    for (double r : rates)
        std::printf(" %9.0e", r);
    std::printf("\n");
    for (const auto &[cls, row] : loss) {
        std::printf("%-7d", cls);
        for (double v : row)
            std::printf(" %9.3f", -v);
        std::printf("\n");
    }

    std::printf("\n(b) Cumulative storage per class (%%):\n\n");
    for (const auto &[cls, fraction] : storage)
        std::printf("class %-4d %6.2f%%\n", cls, 100.0 * fraction);

    std::printf("\n(Curves shift right for lower classes — the "
                "paper's basis for giving them weaker ECC.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Figure 10: cumulative loss per importance class",
        config);
    run(config);
    return 0;
}
