/**
 * @file
 * Figure 8: storage overhead (%) and error correction capability
 * (resulting uncorrectable rate) of BCH-6..11 and BCH-16 on 512-bit
 * PCM blocks with raw bit error rate 1e-3.
 *
 * The analytic binomial-tail model is cross-checked against the real
 * GF(2^10) BCH codec by Monte Carlo at an elevated raw error rate
 * (block failures at 1e-3 are too rare to hit in a quick run).
 */

#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "storage/approx_store.h"
#include "storage/bch.h"
#include "storage/ecc_model.h"
#include "sim/bench_config.h"

namespace videoapp {
namespace {

void
printFigure8()
{
    std::printf("%-8s %14s %20s %24s\n", "Scheme",
                "Overhead (%)", "Block failure rate",
                "Uncorrectable bit rate");
    for (const EccScheme &scheme : figure8Schemes()) {
        std::printf("%-8s %14.2f %20.3e %24.3e\n",
                    scheme.name().c_str(), 100.0 * scheme.overhead(),
                    scheme.blockFailureRate(),
                    scheme.effectiveBitErrorRate());
    }
    std::printf("\nPaper reference points: BCH-6 ~1e-6 at 11.7%%, "
                "BCH-16 ~1e-16 at 31.3%%.\n");
}

void
crossCheckRealCodec()
{
    // At raw BER 8e-3 a BCH-2 block (532 bits) fails with
    // probability ~0.2; compare model vs the real decoder.
    const double raw = 8e-3;
    const EccScheme scheme{2};
    const int blocks = 400;

    double analytic = scheme.blockFailureRate(raw);

    const BchCode &code = cachedBchCode(scheme.t);
    Rng rng(1234);
    int failures = 0;
    for (int b = 0; b < blocks; ++b) {
        BitVec data(code.dataBits());
        for (auto &bit : data)
            bit = static_cast<u8>(rng.nextBelow(2));
        BitVec cw = code.encode(data);
        BitVec corrupted = cw;
        int injected = 0;
        for (auto &bit : corrupted) {
            if (rng.nextBool(raw)) {
                bit ^= 1;
                ++injected;
            }
        }
        auto result = code.decode(corrupted);
        bool failed = !result.ok || corrupted != cw;
        (void)injected;
        failures += failed ? 1 : 0;
    }
    double empirical = static_cast<double>(failures) / blocks;
    std::printf("\nCross-check (BCH-2 at raw %.0e, %d blocks): "
                "analytic block failure %.4f, real codec %.4f\n",
                raw, blocks, analytic, empirical);
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner("Figure 8: BCH overhead and capability "
                     "(512-bit blocks, raw BER 1e-3)",
                     config);
    printFigure8();
    crossCheckRealCodec();
    return 0;
}
