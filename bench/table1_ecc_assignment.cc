/**
 * @file
 * Table 1: the error correction assignment derived by the Section
 * 7.2 algorithm — measure the cumulative loss curves per importance
 * class (Figure 10 data), distribute the 0.3 dB budget by storage
 * share, and pick the weakest scheme per class. The derived table is
 * printed next to the paper's Table 1.
 */

#include <cstdio>

#include "core/ecc_assign.h"
#include "sim/bench_config.h"
#include "sim/calibrate.h"

namespace videoapp {
namespace {

constexpr double kBudgetDb = 0.3;

void
run(const BenchConfig &config)
{
    auto curves = measureClassCurves(config.suite(), EncoderConfig{},
                                     config.runs,
                                     defaultCalibrationRates(), 3000);

    std::printf("Measured class curves (storage share, loss@1e-3):\n");
    for (const auto &curve : curves) {
        double loss_1e3 = interpolateLoss(curve.points, 1e-3);
        std::printf("  class %-3d storage %5.1f%%  loss %7.3f dB\n",
                    curve.cls, 100.0 * curve.cumulativeStorage,
                    loss_1e3);
    }

    EccAssignment derived = optimizeAssignment(curves, kBudgetDb);

    std::printf("\nDerived assignment (budget %.1f dB):\n", kBudgetDb);
    int prev = 0;
    for (const auto &entry : derived.entries()) {
        EccScheme s = entry.scheme;
        std::printf("  importance class %2d-%-2d -> %-7s "
                    "(error rate %.1e, overhead %5.2f%%)\n",
                    prev, entry.maxClass, s.name().c_str(),
                    s.effectiveBitErrorRate(),
                    100.0 * s.overhead());
        prev = entry.maxClass + 1;
    }
    std::printf("  importance class %2d+   -> %-7s\n", prev,
                derived.fallback().name().c_str());

    std::printf("\nPaper Table 1 for comparison:\n"
                "  0-2   None    (1e-3)\n"
                "  3-10  BCH-6   (1e-6,  11.70%%)\n"
                "  11-13 BCH-7   (1e-7,  13.65%%)\n"
                "  14-16 BCH-8   (1e-8,  15.60%%)\n"
                "  17-20 BCH-9   (1e-9,  17.55%%)\n"
                "  21-26 BCH-10  (1e-10, 19.50%%)\n"
                "  frame headers BCH-16 (1e-16, 31.30%%)\n");
    std::printf("\n(Importance spans fewer classes at bench scale "
                "than at 720p/500 frames, and small frames are more "
                "sensitive per flip, so the derived thresholds "
                "differ; the weak-to-strong progression with "
                "importance is the reproduced result.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner("Table 1: budgeted ECC assignment", config);
    run(config);
    return 0;
}
