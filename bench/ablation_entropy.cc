/**
 * @file
 * Section 8 ablation: CABAC vs CAVLC. CABAC compresses better (the
 * paper quotes up to 15%) but is maximally error-intolerant; CAVLC
 * gives up compression for resilience. The paper studies CABAC to
 * be conservative; this bench quantifies both sides of that choice.
 */

#include <algorithm>
#include <cstdio>

#include "core/pipeline.h"
#include "graph/importance.h"
#include "quality/psnr.h"
#include "sim/bench_config.h"
#include "sim/binning.h"
#include "sim/monte_carlo.h"
#include "quality/bdrate.h"
#include "storage/error_injector.h"

namespace videoapp {
namespace {

/** BD-Rate of CAVLC against CABAC over a CRF sweep. */
void
bdRateComparison(const BenchConfig &config)
{
    Video source = generateSynthetic(config.suite()[0]);
    std::vector<RdPoint> cabac_curve, cavlc_curve;
    for (int crf : {16, 20, 24, 28}) {
        for (EntropyKind kind :
             {EntropyKind::CABAC, EntropyKind::CAVLC}) {
            EncoderConfig enc_config;
            enc_config.crf = crf;
            enc_config.entropy = kind;
            EncodeResult enc = encodeVideo(source, enc_config);
            RdPoint point{
                static_cast<double>(enc.video.payloadBits()),
                psnrVideo(source, decodeVideo(enc.video))};
            (kind == EntropyKind::CABAC ? cabac_curve : cavlc_curve)
                .push_back(point);
        }
    }
    auto rate = bdRate(cabac_curve, cavlc_curve);
    auto psnr = bdPsnr(cabac_curve, cavlc_curve);
    if (rate && psnr)
        std::printf("\nBD-Rate of CAVLC vs CABAC: %+.1f%% bits at "
                    "equal quality (BD-PSNR %+.2f dB; paper quotes "
                    "CABAC as 10-15%% more efficient)\n",
                    100.0 * *rate, *psnr);
}

/** Mean PSNR under whole-stream corruption, with/without
 * concealment. */
void
concealmentComparison(const BenchConfig &config)
{
    std::printf("\nError concealment (copy-from-reference when the "
                "decoder detects desync), PSNR vs clean at raw "
                "1e-3:\n\n%-8s %14s %16s %16s\n", "coder",
                "no conceal", "conceal", "concealed MBs");
    for (EntropyKind kind :
         {EntropyKind::CABAC, EntropyKind::CAVLC}) {
        Video source = generateSynthetic(config.suite()[0]);
        EncoderConfig enc_config;
        enc_config.entropy = kind;
        EncodeResult enc = encodeVideo(source, enc_config);
        Video clean = decodeVideo(enc.video);

        double plain_total = 0, conceal_total = 0;
        u64 concealed = 0, total_mbs = 0;
        Rng rng(7700);
        for (int r = 0; r < config.runs; ++r) {
            EncodedVideo corrupted = enc.video;
            for (auto &payload : corrupted.payloads)
                injectErrors(payload, 1e-3, rng);
            plain_total += psnrVideo(clean, decodeVideo(corrupted));
            DecodeOptions opt;
            opt.concealErrors = true;
            DecodeStats stats;
            conceal_total += psnrVideo(
                clean, decodeVideo(corrupted, opt, &stats));
            concealed += stats.concealedMbs;
            total_mbs = stats.totalMbs;
        }
        std::printf("%-8s %14.2f %16.2f %11llu/%llu\n",
                    entropyKindName(kind),
                    plain_total / config.runs,
                    conceal_total / config.runs,
                    static_cast<unsigned long long>(concealed /
                                                    config.runs),
                    static_cast<unsigned long long>(total_mbs));
    }
}

void
run(const BenchConfig &config)
{
    std::printf("%-8s %14s %16s %16s %16s\n", "coder",
                "payload bits", "loss@1e-5 (dB)", "loss@1e-4 (dB)",
                "loss@1e-3 (dB)");

    for (EntropyKind kind :
         {EntropyKind::CABAC, EntropyKind::CAVLC}) {
        u64 total_bits = 0;
        double loss[3] = {0, 0, 0};
        const double rates[3] = {1e-5, 1e-4, 1e-3};

        int video_idx = 0;
        for (const SyntheticSpec &spec : config.suite()) {
            Video source = generateSynthetic(spec);
            EncoderConfig enc_config;
            enc_config.entropy = kind;
            EncodeResult enc = encodeVideo(source, enc_config);
            ImportanceMap importance =
                computeImportance(enc.side, enc.video);
            total_bits += enc.video.payloadBits();

            BitRangeSet all = classBits(enc, importance, 64);
            Rng rng(7000 + static_cast<u64>(video_idx));
            for (int r = 0; r < 3; ++r) {
                LossStats stats =
                    measureQualityLoss(source, enc, all, rates[r],
                                       config.runs, rng);
                loss[r] = std::max(loss[r], stats.maxLossDb);
            }
            ++video_idx;
        }

        std::printf("%-8s %14llu %16.2f %16.2f %16.2f\n",
                    entropyKindName(kind),
                    static_cast<unsigned long long>(total_bits),
                    loss[0], loss[1], loss[2]);
    }
    std::printf("\n(CABAC compresses ~10%% better — the paper quotes "
                "10-15%% — which is why the study adopts it despite "
                "its error intolerance. Without resynchronisation "
                "markers both coders lose the rest of the slice on "
                "a flip; the concealment comparison below shows "
                "where CAVLC's practical resilience comes from.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner("Section 8 ablation: CABAC vs CAVLC", config);
    run(config);
    bdRateComparison(config);
    concealmentComparison(config);
    return 0;
}
