/**
 * @file
 * Performance of the VAPP serving layer (not a paper figure — an
 * engineering bench for the network store front end built on the
 * archive service).
 *
 * Measurements, written to BENCH_server.json:
 *  1. closed-loop loopback load at 16 and 64 concurrent
 *     connections, each client issuing a deterministic mix of
 *     GET_FRAMES / PUT / SCRUB / missing-name GETs, with wall time,
 *     throughput and client-observed GET latency percentiles.
 *  2. a skewed hot-key mode at 64 and 256 connections: 90% of GETs
 *     hammer one (video, GOP) — the workload single-flight
 *     coalescing and the zero-copy cache hit path exist for — with
 *     the same throughput/latency metrics.
 *  3. a shed-mode section: the same overloaded GET load (cache off,
 *     8-deep queue, 32 connections) with the importance-aware
 *     shed threshold off and on, reporting the fidelity split
 *     (full vs degraded, streams shed) and GET p50/p99 per row plus
 *     the p99 speedup shedding buys — and two hard flags: with the
 *     threshold off nothing ever degrades, and a deterministically
 *     saturated 4-deep queue sheds exactly the tail request.
 *  4. hard output counts per row: ok GETs, ok PUTs, ok SCRUBs,
 *     not-found responses and lost responses (always 0 — an
 *     admitted request never loses its response), all derived from
 *     the fixed per-client schedule.
 *  5. with --shards N --resize, a live-membership section: N shards
 *     serving 4 concurrent routed readers while a new shard joins
 *     and the migration engine moves records, followed by a
 *     kill-and-rebuild of one shard. Three hard flags gate it: zero
 *     lost or byte-mismatched videos, moved count equal to the ring
 *     diff prediction, and a byte-exact rebuild.
 *  6. five correctness flags: every request got a response
 *     (responses_all_accounted), wire GET frames are byte-identical
 *     to a local ArchiveService::get (wire_matches_local), a warm
 *     GET is served from the decoded-GOP cache without touching the
 *     archive read path (cache_hit_skips_decode), overflowing a
 *     paused small queue answers Status::Retry for exactly the
 *     overflow (backpressure_returns_retry), and N concurrent cold
 *     GETs of one GOP trigger exactly one archive decode
 *     (coalescing_single_flight).
 *
 * The JSON carries the bench config and a telemetry snapshot;
 * tools/check_bench_regression.py diffs it against
 * bench/baselines/BENCH_server.baseline.json in CI (latency soft,
 * counts and flags hard). VIDEOAPP_BENCH_OUT overrides the output
 * path.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "archive/archive_service.h"
#include "cluster/cluster_node.h"
#include "cluster/cluster_router.h"
#include "cluster/scrub_scheduler.h"
#include "rebalance/rebalance.h"
#include "common/telemetry.h"
#include "server/vapp_client.h"
#include "server/vapp_server.h"
#include "sim/bench_config.h"

namespace videoapp {
namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** One load row: all clients at a fixed connection count. */
struct LoadPoint
{
    int connections = 0;
    double wallSeconds = 0;
    double opsPerSecond = 0;
    double getP50Us = 0;
    double getP99Us = 0;
    // Hard-checked outputs (fixed by the per-client op schedule).
    u64 getsOk = 0;
    u64 putsOk = 0;
    u64 scrubsOk = 0;
    u64 notFound = 0;
    u64 responsesLost = 0;
};

std::string
scratchPath()
{
    const char *tmp = std::getenv("TMPDIR");
    return std::string(tmp ? tmp : "/tmp") + "/perf_server.vapp";
}

std::string
benchVideoName(std::size_t i)
{
    std::string name = "video";
    name += std::to_string(i);
    return name;
}

double
percentile(std::vector<double> &sorted_us, double p)
{
    if (sorted_us.empty())
        return 0;
    double rank = p * (sorted_us.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
    double frac = rank - lo;
    return sorted_us[lo] * (1 - frac) + sorted_us[hi] * frac;
}

/**
 * The deterministic per-client op schedule. Client @p client does
 * @p ops operations; op @p j is one of:
 *   - j % 8 == 6               GET of a name that does not exist
 *   - j % 8 == 3, client % 4 == 1   PUT of the client's own clip
 *   - j % 8 == 7, client == 0  SCRUB (no aging)
 *   - otherwise                GET of a stored video, cycling GOPs
 * so the ok/not-found totals per row are a pure function of
 * (connections, ops) and hard-checkable against the baseline.
 */
enum class OpKind { Get, GetMissing, Put, Scrub };

OpKind
scheduledOp(int client, int j)
{
    if (j % 8 == 6)
        return OpKind::GetMissing;
    if (j % 8 == 3 && client % 4 == 1)
        return OpKind::Put;
    if (j % 8 == 7 && client == 0)
        return OpKind::Scrub;
    return OpKind::Get;
}

struct ClientTally
{
    u64 getsOk = 0;
    u64 putsOk = 0;
    u64 scrubsOk = 0;
    u64 notFound = 0;
    u64 lost = 0;
    std::vector<double> getLatencyUs;
};

void
clientLoop(u16 port, int client, int ops, int videos, u32 gop_count,
           const std::vector<PutRequest> &put_templates,
           ClientTally &tally)
{
    VappClient c;
    if (!c.connect("127.0.0.1", port)) {
        tally.lost += static_cast<u64>(ops);
        return;
    }
    for (int j = 0; j < ops; ++j) {
        switch (scheduledOp(client, j)) {
          case OpKind::GetMissing: {
            GetFramesRequest get;
            get.name = "no-such-video";
            auto r = c.getFrames(get);
            if (!r)
                ++tally.lost;
            else if (r->status == Status::NotFound)
                ++tally.notFound;
            break;
          }
          case OpKind::Put: {
            PutRequest put =
                put_templates[client % put_templates.size()];
            put.name = "client" + std::to_string(client);
            auto r = c.put(put);
            if (!r)
                ++tally.lost;
            else if (r->status == Status::Ok)
                ++tally.putsOk;
            break;
          }
          case OpKind::Scrub: {
            ScrubRequest scrub;
            auto r = c.scrub(scrub);
            if (!r)
                ++tally.lost;
            else if (r->status == Status::Ok)
                ++tally.scrubsOk;
            break;
          }
          case OpKind::Get: {
            GetFramesRequest get;
            get.name = benchVideoName(
                static_cast<std::size_t>(client) % videos);
            get.gop = static_cast<u32>(j) % gop_count;
            double t0 = now();
            auto r = c.getFrames(get);
            double us = (now() - t0) * 1e6;
            if (!r)
                ++tally.lost;
            else if (r->status == Status::Ok ||
                     r->status == Status::Partial) {
                ++tally.getsOk;
                tally.getLatencyUs.push_back(us);
            }
            break;
          }
        }
    }
}

/**
 * The skewed hot-key schedule: 90% of ops GET (video0, gop0), the
 * rest cycle deterministically across the other videos and GOPs.
 * Every op is a GET of a stored video, so gets_ok is a pure function
 * of (connections, ops) and hard-checkable.
 */
void
skewedClientLoop(u16 port, int client, int ops, int videos,
                 u32 gop_count, ClientTally &tally)
{
    VappClient c;
    if (!c.connect("127.0.0.1", port)) {
        tally.lost += static_cast<u64>(ops);
        return;
    }
    for (int j = 0; j < ops; ++j) {
        GetFramesRequest get;
        if ((client + j) % 10 < 9) {
            get.name = benchVideoName(0);
            get.gop = 0;
        } else {
            get.name = benchVideoName(
                static_cast<std::size_t>(client + j) %
                static_cast<std::size_t>(videos));
            get.gop = static_cast<u32>(j) % gop_count;
        }
        double t0 = now();
        auto r = c.getFrames(get);
        double us = (now() - t0) * 1e6;
        if (!r)
            ++tally.lost;
        else if (r->status == Status::Ok ||
                 r->status == Status::Partial) {
            ++tally.getsOk;
            tally.getLatencyUs.push_back(us);
        }
    }
}

LoadPoint
mergeTallies(int connections, int ops, double wall_seconds,
             std::vector<ClientTally> &tallies)
{
    LoadPoint p;
    p.connections = connections;
    p.wallSeconds = wall_seconds;
    std::vector<double> latencies;
    for (const ClientTally &t : tallies) {
        p.getsOk += t.getsOk;
        p.putsOk += t.putsOk;
        p.scrubsOk += t.scrubsOk;
        p.notFound += t.notFound;
        p.responsesLost += t.lost;
        latencies.insert(latencies.end(), t.getLatencyUs.begin(),
                         t.getLatencyUs.end());
    }
    std::sort(latencies.begin(), latencies.end());
    p.getP50Us = percentile(latencies, 0.50);
    p.getP99Us = percentile(latencies, 0.99);
    u64 total_ops = static_cast<u64>(connections) *
                    static_cast<u64>(ops);
    p.opsPerSecond = p.wallSeconds > 0
                         ? static_cast<double>(total_ops) /
                               p.wallSeconds
                         : 0;
    return p;
}

LoadPoint
benchOneConnectionCount(u16 port, int connections, int ops,
                        int videos, u32 gop_count,
                        const std::vector<PutRequest> &put_templates)
{
    std::vector<ClientTally> tallies(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    double t0 = now();
    for (int i = 0; i < connections; ++i)
        threads.emplace_back([&, i] {
            clientLoop(port, i, ops, videos, gop_count,
                       put_templates, tallies[i]);
        });
    for (std::thread &t : threads)
        t.join();
    return mergeTallies(connections, ops, now() - t0, tallies);
}

LoadPoint
benchSkewedConnectionCount(u16 port, int connections, int ops,
                           int videos, u32 gop_count)
{
    std::vector<ClientTally> tallies(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    double t0 = now();
    for (int i = 0; i < connections; ++i)
        threads.emplace_back([&, i] {
            skewedClientLoop(port, i, ops, videos, gop_count,
                             tallies[i]);
        });
    for (std::thread &t : threads)
        t.join();
    return mergeTallies(connections, ops, now() - t0, tallies);
}

/** Wire GET frames == packFramesI420 over a local service get. */
bool
checkWireMatchesLocal(ArchiveService &service, u16 port, int videos)
{
    VappClient c;
    if (!c.connect("127.0.0.1", port))
        return false;
    for (int i = 0; i < videos; ++i) {
        const std::string name = benchVideoName(i);
        ArchiveGetResult local = service.get(name);
        if (local.error != ArchiveError::None)
            return false;
        auto ranges = gopRanges(local.frameHeaders,
                                local.decoded.frames.size());
        for (std::size_t g = 0; g < ranges.size(); ++g) {
            GetFramesRequest get;
            get.name = name;
            get.gop = static_cast<u32>(g);
            auto r = c.getFrames(get);
            if (!r || r->status != Status::Ok)
                return false;
            Bytes expected =
                packFramesI420(local.decoded, ranges[g].firstFrame,
                               ranges[g].frameCount);
            if (r->i420 != expected ||
                r->firstFrame != ranges[g].firstFrame ||
                r->frameCount != ranges[g].frameCount)
                return false;
        }
    }
    return true;
}

/** A warm GET is flagged fromCache and (when telemetry is compiled
 * in) leaves the archive.gets counter untouched. */
bool
checkCacheHitSkipsDecode(VappServer &server, u16 port)
{
    server.cache().clear();
    VappClient c;
    if (!c.connect("127.0.0.1", port))
        return false;
    GetFramesRequest get;
    get.name = benchVideoName(0);
    auto miss = c.getFrames(get);
    if (!miss || miss->status != Status::Ok || miss->fromCache)
        return false;
    u64 gets_before = 0;
    if (telemetry::kEnabled)
        gets_before = telemetry::globalRegistry()
                          .counter("archive.gets")
                          .value();
    auto hit = c.getFrames(get);
    if (!hit || hit->status != Status::Ok || !hit->fromCache ||
        hit->i420 != miss->i420)
        return false;
    if (telemetry::kEnabled &&
        telemetry::globalRegistry().counter("archive.gets").value() !=
            gets_before)
        return false;
    return true;
}

/**
 * Overflow a paused 4-deep queue with 8 pipelined GETs: exactly the
 * overflow half must answer Status::Retry, and after resuming the
 * drain the admitted half must answer normally.
 */
bool
checkBackpressureReturnsRetry(ArchiveService &service)
{
    VappServerConfig config;
    config.workers = 2;
    config.queueCapacity = 4;
    config.cacheBytes = 0;
    VappServer server(service, config);
    if (!server.start())
        return false;
    server.setDrainPaused(true);

    VappClient c;
    if (!c.connect("127.0.0.1", server.port()))
        return false;
    const int burst = 8;
    for (int i = 0; i < burst; ++i) {
        // Distinct (missing) names: identical cold GETs would
        // coalesce into one queue slot and never overflow.
        GetFramesRequest get;
        get.name = "no-such-video-" + std::to_string(i);
        if (!c.send(Opcode::GetFrames,
                    serializeGetFramesRequest(get)))
            return false;
    }
    // The reader admits sequentially, so the rejects are answered
    // first; wait for the queue to actually fill before resuming.
    double deadline = now() + 10;
    while (server.queueDepth() < config.queueCapacity &&
           now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    int retries = 0;
    int answered = 0;
    for (int i = 0; i < burst; ++i) {
        if (i == burst - static_cast<int>(config.queueCapacity))
            server.setDrainPaused(false);
        auto r = c.receive();
        if (!r)
            return false;
        ++answered;
        if (static_cast<Status>(r->kind) == Status::Retry)
            ++retries;
    }
    server.stop();
    return answered == burst &&
           retries == burst - static_cast<int>(config.queueCapacity);
}

/**
 * N pipelined cold GETs of one GOP must trigger exactly one archive
 * decode: the first becomes the single-flight leader, the rest are
 * answered from its result, byte-identically. Deterministic because
 * admission (and flight registration) is single-threaded on the
 * event loop and the worker drain is paused until all N landed.
 */
bool
checkSingleFlightCoalesces(VappServer &server, u16 port)
{
    server.cache().clear();
    server.setDrainPaused(true);
    const u64 coalesced_before = server.coalescedGets();
    u64 gets_before = 0;
    if (telemetry::kEnabled)
        gets_before = telemetry::globalRegistry()
                          .counter("archive.gets")
                          .value();

    const std::size_t burst = 6;
    std::vector<VappClient> clients(burst);
    GetFramesRequest get;
    get.name = benchVideoName(0);
    Bytes payload = serializeGetFramesRequest(get);
    for (VappClient &c : clients) {
        if (!c.connect("127.0.0.1", port) ||
            !c.send(Opcode::GetFrames, payload)) {
            server.setDrainPaused(false);
            return false;
        }
    }
    double deadline = now() + 10;
    while (server.coalescedGets() - coalesced_before < burst - 1 &&
           now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const bool coalesced =
        server.coalescedGets() - coalesced_before == burst - 1;
    server.setDrainPaused(false);

    Bytes first;
    bool all_equal = true;
    for (std::size_t i = 0; i < clients.size(); ++i) {
        auto raw = clients[i].receive();
        if (!raw)
            return false;
        GetFramesResponse response;
        if (!parseGetFramesResponse(raw->payload, response) ||
            response.status != Status::Ok)
            return false;
        if (i == 0)
            first = response.i420;
        else if (response.i420 != first)
            all_equal = false;
    }
    bool one_decode = true;
    if (telemetry::kEnabled)
        one_decode = telemetry::globalRegistry()
                             .counter("archive.gets")
                             .value() == gets_before + 1;
    return coalesced && all_equal && one_decode;
}

// --- importance-aware shedding ------------------------------------------

/** One shed-mode row: the same overloaded GET load at one
 * shed-threshold setting. */
struct ShedPoint
{
    int threshold = 0;
    double wallSeconds = 0;
    double opsPerSecond = 0;
    double p50Us = 0;
    /** p99 over every answered GET (degraded included): the latency
     * the load-shedding exists to protect. */
    double p99Us = 0;
    /** p99 over full-fidelity answers only. */
    double fullP99Us = 0;
    u64 answered = 0;
    u64 fullFidelity = 0;
    u64 degraded = 0;
    u64 streamsShed = 0;
    u64 lost = 0;
    u64 shedResponses = 0;
};

struct ShedTally
{
    u64 fullFidelity = 0;
    u64 degraded = 0;
    u64 streamsShed = 0;
    u64 lost = 0;
    std::vector<double> allLatencyUs;
    std::vector<double> fullLatencyUs;
};

void
shedClientLoop(u16 port, int client, int ops, u32 gop_count,
               ShedTally &tally)
{
    VappClient c;
    if (!c.connect("127.0.0.1", port)) {
        tally.lost += static_cast<u64>(ops);
        return;
    }
    // Backpressure overflow answers Retry; the client-side retry
    // policy absorbs it so every op resolves to a fidelity outcome.
    // Generous budget: the queue stays saturated for the whole run,
    // and a client that gives up would turn the schedule-fixed
    // responses_lost=0 contract into a timing accident.
    RetryPolicy policy;
    policy.maxRetries = 64;
    policy.initialBackoffMs = 1;
    policy.maxBackoffMs = 64;
    policy.jitterSeed = static_cast<u64>(client) + 1;
    c.setRetryPolicy(policy);
    for (int j = 0; j < ops; ++j) {
        // Per-client clips: distinct cold keys cannot coalesce in
        // the single-flight table, so every GET is real decode work
        // and the queue pressure the shed path exists for builds.
        GetFramesRequest get;
        get.name = "shedload-" + std::to_string(client);
        get.gop = static_cast<u32>(j) % gop_count;
        get.conceal = true;
        double t0 = now();
        auto r = c.getFrames(get);
        double us = (now() - t0) * 1e6;
        if (!r) {
            ++tally.lost;
            continue;
        }
        if (r->status == Status::Degraded) {
            ++tally.degraded;
            tally.streamsShed += r->streamsShed;
            tally.allLatencyUs.push_back(us);
        } else if (r->status == Status::Ok ||
                   r->status == Status::Partial) {
            ++tally.fullFidelity;
            tally.allLatencyUs.push_back(us);
            tally.fullLatencyUs.push_back(us);
        } else {
            ++tally.lost;
        }
    }
}

/**
 * The overloaded mixed-importance GET load at one threshold: its own
 * server with the cache off (every GET pays the decode) and a small
 * queue, so admission pressure is real. Per-response fidelity is
 * load-dependent (soft); answered/lost are schedule-fixed (hard).
 */
ShedPoint
benchShedMode(ArchiveService &service, int threshold,
              int connections, int ops,
              const PreparedVideo &scratch, u32 gop_count)
{
    VappServerConfig config;
    config.workers = 2;
    config.queueCapacity = 8;
    config.cacheBytes = 0;
    config.shedThreshold = threshold;
    VappServer server(service, config);
    ShedPoint point;
    point.threshold = threshold;
    if (!server.start()) {
        point.lost =
            static_cast<u64>(connections) * static_cast<u64>(ops);
        return point;
    }
    for (int i = 0; i < connections; ++i)
        if (service.put("shedload-" + std::to_string(i), scratch,
                        {}) != ArchiveError::None) {
            server.stop();
            point.lost = static_cast<u64>(connections) *
                         static_cast<u64>(ops);
            return point;
        }
    const u16 port = server.port();
    std::vector<ShedTally> tallies(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    double t0 = now();
    for (int i = 0; i < connections; ++i)
        threads.emplace_back([&, i] {
            shedClientLoop(port, i, ops, gop_count, tallies[i]);
        });
    for (std::thread &t : threads)
        t.join();
    point.wallSeconds = now() - t0;
    std::vector<double> all, full;
    for (const ShedTally &t : tallies) {
        point.fullFidelity += t.fullFidelity;
        point.degraded += t.degraded;
        point.streamsShed += t.streamsShed;
        point.lost += t.lost;
        all.insert(all.end(), t.allLatencyUs.begin(),
                   t.allLatencyUs.end());
        full.insert(full.end(), t.fullLatencyUs.begin(),
                    t.fullLatencyUs.end());
    }
    point.answered = point.fullFidelity + point.degraded;
    std::sort(all.begin(), all.end());
    std::sort(full.begin(), full.end());
    point.p50Us = percentile(all, 0.50);
    point.p99Us = percentile(all, 0.99);
    point.fullP99Us = percentile(full, 0.99);
    u64 total_ops = static_cast<u64>(connections) *
                    static_cast<u64>(ops);
    point.opsPerSecond =
        point.wallSeconds > 0
            ? static_cast<double>(total_ops) / point.wallSeconds
            : 0;
    point.shedResponses = server.shedResponses();
    server.stop();
    return point;
}

/**
 * Deterministic shed check, mirroring the backpressure one: with the
 * drain paused, fill a 4-deep queue with pipelined cold GETs — the
 * admission-pressure rule (queue 3/4 full) sheds exactly the last
 * one, which must answer Degraded with a nonzero shed count while
 * the other three stay full fidelity.
 */
bool
checkShedUnderPressure(ArchiveService &service,
                       const PreparedVideo &scratch)
{
    VappServerConfig config;
    config.workers = 2;
    config.queueCapacity = 4;
    config.cacheBytes = 0;
    config.shedThreshold = 1;
    VappServer server(service, config);
    if (!server.start())
        return false;
    server.setDrainPaused(true);

    // Four distinct cold keys (the bench may hold a single video, so
    // GOP numbers cannot be trusted to exist): identical cold GETs
    // would coalesce into one queue slot and never build pressure.
    const int burst = 4;
    for (int i = 0; i < burst; ++i)
        if (service.put("shed-probe-" + std::to_string(i), scratch,
                        {}) != ArchiveError::None) {
            server.stop();
            return false;
        }
    std::vector<VappClient> clients(burst);
    for (int i = 0; i < burst; ++i) {
        GetFramesRequest get;
        get.name = "shed-probe-" + std::to_string(i);
        get.conceal = true;
        if (!clients[i].connect("127.0.0.1", server.port()) ||
            !clients[i].send(Opcode::GetFrames,
                             serializeGetFramesRequest(get))) {
            server.stop();
            return false;
        }
    }
    double deadline = now() + 10;
    while (server.queueDepth() < static_cast<u64>(burst) &&
           now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (server.queueDepth() < static_cast<u64>(burst)) {
        server.stop();
        return false;
    }
    server.setDrainPaused(false);

    int ok = 0, degraded = 0;
    bool degraded_has_sheds = false;
    for (int i = 0; i < burst; ++i) {
        auto raw = clients[i].receive();
        if (!raw) {
            server.stop();
            return false;
        }
        GetFramesResponse response;
        if (!parseGetFramesResponse(raw->payload, response)) {
            server.stop();
            return false;
        }
        if (response.status == Status::Degraded) {
            ++degraded;
            degraded_has_sheds = response.streamsShed > 0 &&
                                 response.bytesShed > 0;
        } else if (response.status == Status::Ok) {
            ++ok;
        }
    }
    const u64 sheds = server.shedResponses();
    server.stop();
    return ok == burst - 1 && degraded == 1 &&
           degraded_has_sheds && sheds == 1;
}

// --- cluster mode (--shards N) -----------------------------------------

/** An in-process cluster: one archive + node + server per shard. */
struct ShardSet
{
    std::vector<std::unique_ptr<ArchiveService>> services;
    std::vector<std::unique_ptr<ClusterNode>> nodes;
    std::vector<std::unique_ptr<VappServer>> servers;
    std::vector<ClusterShard> shards;

    u32 replicas = 0;

    bool
    start(int count)
    {
        replicas = static_cast<u32>(std::min(2, count - 1));
        for (int i = 0; i < count; ++i) {
            std::string path = scratchPath() + ".shard" +
                               std::to_string(count) + "_" +
                               std::to_string(i);
            std::remove(path.c_str());
            services.push_back(
                std::make_unique<ArchiveService>(path));
            if (services.back()->open() != ArchiveError::None)
                return false;
            ClusterNodeConfig node;
            node.selfId = static_cast<u32>(i);
            node.replicas = replicas;
            nodes.push_back(std::make_unique<ClusterNode>(
                *services.back(), node));
            VappServerConfig config;
            config.cluster = nodes.back().get();
            servers.push_back(std::make_unique<VappServer>(
                *services.back(), config));
            if (!servers.back()->start())
                return false;
        }
        for (int i = 0; i < count; ++i)
            shards.push_back({static_cast<u32>(i), "127.0.0.1",
                              servers[static_cast<std::size_t>(i)]
                                  ->port()});
        for (auto &node : nodes)
            node->setTopology(shards, 1);
        return true;
    }

    /** Boot one more shard (id = current size) on a one-member
     * ring; the membership manager splices it in. */
    bool
    addOne()
    {
        const u32 id = static_cast<u32>(services.size());
        std::string path = scratchPath() + ".shard_join_" +
                           std::to_string(id);
        std::remove(path.c_str());
        services.push_back(std::make_unique<ArchiveService>(path));
        if (services.back()->open() != ArchiveError::None)
            return false;
        ClusterNodeConfig node;
        node.selfId = id;
        node.replicas = replicas;
        nodes.push_back(std::make_unique<ClusterNode>(
            *services.back(), node));
        VappServerConfig config;
        config.cluster = nodes.back().get();
        servers.push_back(std::make_unique<VappServer>(
            *services.back(), config));
        if (!servers.back()->start())
            return false;
        ClusterShard address = {id, "127.0.0.1",
                                servers.back()->port()};
        shards.push_back(address);
        nodes.back()->setTopology({address}, 1);
        return true;
    }

    std::vector<ManagedShard>
    managed(std::size_t count) const
    {
        std::vector<ManagedShard> out;
        for (std::size_t i = 0; i < count && i < nodes.size(); ++i)
            out.push_back({shards[i], nodes[i].get()});
        return out;
    }

    void
    stop()
    {
        for (auto &server : servers)
            if (server)
                server->stop();
        for (auto &service : services)
            if (service)
                std::remove(service->path().c_str());
    }
};

/** Mixed routed load: mostly GETs of stored videos cycling GOPs,
 * 1-in-8 a GET of a missing name — counts are schedule-fixed. */
void
clusterClientLoop(const std::vector<ClusterShard> &seeds, int client,
                  int ops, int videos, u32 gop_count,
                  ClientTally &tally)
{
    ClusterRouterConfig config;
    config.seeds = seeds;
    ClusterRouter router(config);
    for (int j = 0; j < ops; ++j) {
        GetFramesRequest get;
        if (j % 8 == 6) {
            get.name = "no-such-video";
            auto r = router.getFrames(get);
            if (!r)
                ++tally.lost;
            else if (r->status == Status::NotFound)
                ++tally.notFound;
            continue;
        }
        get.name = benchVideoName(
            static_cast<std::size_t>(client + j) %
            static_cast<std::size_t>(videos));
        get.gop = static_cast<u32>(j) % gop_count;
        double t0 = now();
        auto r = router.getFrames(get);
        double us = (now() - t0) * 1e6;
        if (!r)
            ++tally.lost;
        else if (r->status == Status::Ok ||
                 r->status == Status::Partial) {
            ++tally.getsOk;
            tally.getLatencyUs.push_back(us);
        }
    }
}

LoadPoint
benchClusterShardCount(const std::vector<ClusterShard> &seeds,
                       int connections, int ops, int videos,
                       u32 gop_count)
{
    std::vector<ClientTally> tallies(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    double t0 = now();
    for (int i = 0; i < connections; ++i)
        threads.emplace_back([&, i] {
            clusterClientLoop(seeds, i, ops, videos, gop_count,
                              tallies[i]);
        });
    for (std::thread &t : threads)
        t.join();
    return mergeTallies(connections, ops, now() - t0, tallies);
}

/** Routed GETs are byte-identical to a local read of the owner
 * shard's archive (the single-node contract, through the ring). */
bool
checkRoutedMatchesSingle(ShardSet &set, int videos)
{
    ClusterRouterConfig config;
    config.seeds = set.shards;
    ClusterRouter router(config);
    for (int i = 0; i < videos; ++i) {
        const std::string name = benchVideoName(i);
        const u32 owner = set.nodes[0]->ownerOf(name);
        ArchiveGetResult local = set.services[owner]->get(name);
        if (local.error != ArchiveError::None)
            return false;
        auto ranges = gopRanges(local.frameHeaders,
                                local.decoded.frames.size());
        for (std::size_t g = 0; g < ranges.size(); ++g) {
            GetFramesRequest get;
            get.name = name;
            get.gop = static_cast<u32>(g);
            auto r = router.getFrames(get);
            if (!r || r->status != Status::Ok)
                return false;
            Bytes expected = packFramesI420(
                local.decoded, ranges[g].firstFrame,
                ranges[g].frameCount);
            if (r->i420 != expected)
                return false;
        }
    }
    return true;
}

/** With the owner's precise record damaged, a routed GET must still
 * succeed by pulling the metadata replica back from a successor. */
bool
checkClusterMetaRepair(ShardSet &set)
{
    const std::string name = benchVideoName(0);
    const u32 owner = set.nodes[0]->ownerOf(name);
    if (!set.services[owner]->damageMetaForTest(name))
        return false;
    // A warm cache would mask the damaged record: force the read.
    set.servers[owner]->cache().clear();
    ClusterRouterConfig config;
    config.seeds = set.shards;
    ClusterRouter router(config);
    GetFramesRequest get;
    get.name = name;
    auto r = router.getFrames(get);
    if (!r || r->status != Status::Ok)
        return false;
    // The repair is durable: the owner reads clean again locally.
    return set.services[owner]->get(name).error ==
           ArchiveError::None;
}

/**
 * The budgeted scrub scheduler: after its learning sweep (per-video
 * costs unknown, may overshoot), every interval's corrected bits
 * must stay within the configured budget. Costs are measured first
 * with the same (BER, seed) the scheduler uses — the fixed seed
 * makes drift stationary, so predictions are exact.
 */
bool
checkScrubBudgetRespected(ShardSet &set)
{
    // Scrub the shard holding the most videos (ring placement may
    // leave small shards empty at bench scale).
    std::size_t shard = 0;
    for (std::size_t i = 1; i < set.services.size(); ++i)
        if (set.services[i]->videoCount() >
            set.services[shard]->videoCount())
            shard = i;
    ArchiveService &service = *set.services[shard];
    std::vector<std::string> names = service.videoNames();
    if (names.empty())
        return true;

    ScrubOptions options;
    options.ageRawBer = 1e-4;
    options.seed = 99;
    u64 total = 0, per_video_max = 0;
    for (const std::string &name : names) {
        ScrubReport report = service.scrubVideo(name, options);
        total += report.cells.bitsCorrected;
        per_video_max = std::max(per_video_max,
                                 report.cells.bitsCorrected);
    }

    ScrubSchedulerConfig config;
    config.ageRawBer = options.ageRawBer;
    config.seed = options.seed;
    config.correctionBudget =
        std::max<u64>(std::max<u64>(1, total / 2), per_video_max);
    ScrubScheduler scheduler(service, config);
    std::size_t guard = names.size() * 4 + 4;
    while (scheduler.videosScrubbed() < names.size() && guard-- > 0)
        scheduler.runInterval();
    for (int i = 0; i < 8; ++i) {
        const u64 before = scheduler.bitsCorrected();
        scheduler.runInterval();
        if (scheduler.bitsCorrected() - before >
            config.correctionBudget)
            return false;
    }
    return true;
}

struct ClusterResults
{
    /** One row per shard count (1 and N). */
    std::vector<std::pair<int, LoadPoint>> points;
    double speedup = 0;
    bool routedMatchesSingle = false;
    bool metaRepairOk = false;
    bool scrubBudgetRespected = false;
};

bool
runClusterSection(int shards, int ops, int videos,
                  const std::vector<PreparedVideo> &prepared,
                  ClusterResults &results)
{
    const int connections = 32;
    std::printf("\ncluster mode (%d shards, %d routed conns):\n",
                shards, connections);
    std::printf("%-8s %9s %11s %11s %11s %7s %9s %6s\n", "shards",
                "wall (s)", "ops/s", "p50 (us)", "p99 (us)", "gets",
                "notfound", "lost");
    for (int shard_count : {1, shards}) {
        ShardSet set;
        if (!set.start(shard_count)) {
            std::fprintf(stderr,
                         "error: cannot start %d-shard cluster\n",
                         shard_count);
            set.stop();
            return false;
        }
        // Placement-aware local puts (the wire PUT path is already
        // measured in the standard rows), then replicate metadata
        // exactly as a routed PUT would.
        for (int i = 0; i < videos; ++i) {
            const std::string name = benchVideoName(i);
            const u32 owner = set.nodes[0]->ownerOf(name);
            set.services[owner]->put(
                name, prepared[static_cast<std::size_t>(i)], {});
            set.nodes[owner]->replicateMeta(name);
        }
        // Warm every (video, GOP) so the load rows measure the
        // steady cache-hit serving state on every shard.
        u32 gop_count = 1;
        {
            ClusterRouterConfig config;
            config.seeds = set.shards;
            ClusterRouter router(config);
            for (int i = 0; i < videos; ++i) {
                GetFramesRequest get;
                get.name = benchVideoName(i);
                auto r = router.getFrames(get);
                if (!r || r->status != Status::Ok) {
                    set.stop();
                    return false;
                }
                gop_count = std::max<u32>(1, r->gopCount);
                for (u32 g = 1; g < r->gopCount; ++g) {
                    get.gop = g;
                    if (!router.getFrames(get)) {
                        set.stop();
                        return false;
                    }
                }
            }
        }
        LoadPoint point = benchClusterShardCount(
            set.shards, connections, ops, videos, gop_count);
        std::printf(
            "%-8d %9.3f %11.1f %11.1f %11.1f %7llu %9llu %6llu\n",
            shard_count, point.wallSeconds, point.opsPerSecond,
            point.getP50Us, point.getP99Us,
            static_cast<unsigned long long>(point.getsOk),
            static_cast<unsigned long long>(point.notFound),
            static_cast<unsigned long long>(point.responsesLost));
        results.points.emplace_back(shard_count, point);

        if (shard_count == shards) {
            results.routedMatchesSingle =
                checkRoutedMatchesSingle(set, videos);
            results.metaRepairOk = checkClusterMetaRepair(set);
            results.scrubBudgetRespected =
                checkScrubBudgetRespected(set);
        }
        set.stop();
    }
    const double single = results.points.front().second.opsPerSecond;
    const double multi = results.points.back().second.opsPerSecond;
    results.speedup = single > 0 ? multi / single : 0;
    std::printf("aggregate speedup vs single shard: %.2fx "
                "(soft, load-dependent)\n",
                results.speedup);
    std::printf("routed GET == owner-local read: %s\n",
                results.routedMatchesSingle ? "yes" : "NO (BUG)");
    std::printf("GET repairs damaged owner metadata: %s\n",
                results.metaRepairOk ? "yes" : "NO (BUG)");
    std::printf("scrub intervals stay under budget: %s\n",
                results.scrubBudgetRespected ? "yes" : "NO (BUG)");
    return true;
}

// --- resize mode (--shards N --resize) ---------------------------------

struct ResizeResults
{
    int shardsAfter = 0;
    int readers = 0;
    double transitionWallS = 0;
    u64 videosTotal = 0;
    u64 videosMoved = 0;
    u64 videosLost = 0;
    u64 readsOk = 0;
    u64 readGaps = 0;
    /** Hard flags the CI gate keys on. */
    bool noLostVideos = false;
    bool movedMatchesRingDiff = false;
    bool rebuildByteExact = false;
};

/**
 * Live resize under load: N shards serving concurrent routed reads
 * while a new shard joins and the migration engine moves records,
 * then a kill-and-rebuild of one shard. Hard outcomes: zero lost or
 * byte-mismatched videos, moved count equal to the ring diff, and a
 * byte-exact rebuild.
 */
bool
runResizeSection(int shards, int videos,
                 const std::vector<PreparedVideo> &prepared,
                 const std::vector<Video> &sources,
                 ResizeResults &results)
{
    results.shardsAfter = shards + 1;
    results.readers = 4;
    results.videosTotal = static_cast<u64>(videos);
    std::printf("\nresize mode (%d -> %d shards, %d readers):\n",
                shards, shards + 1, results.readers);

    ShardSet set;
    if (!set.start(shards)) {
        set.stop();
        return false;
    }
    for (int i = 0; i < videos; ++i) {
        const std::string name = benchVideoName(i);
        const u32 owner = set.nodes[0]->ownerOf(name);
        set.services[owner]->put(
            name, prepared[static_cast<std::size_t>(i)], {});
        set.nodes[owner]->replicateMeta(name);
    }

    // Reference bytes (GOP 0 of every video) pinned before any
    // membership change; every later read must reproduce them.
    std::vector<Bytes> refs(static_cast<std::size_t>(videos));
    {
        ClusterRouterConfig config;
        config.seeds = set.shards;
        ClusterRouter router(config);
        for (int i = 0; i < videos; ++i) {
            GetFramesRequest get;
            get.name = benchVideoName(i);
            auto r = router.getFrames(get);
            if (!r || r->status != Status::Ok) {
                set.stop();
                return false;
            }
            refs[static_cast<std::size_t>(i)] = std::move(r->i420);
        }
    }

    const std::vector<ClusterShard> seeds = set.shards;
    if (!set.addOne()) {
        set.stop();
        return false;
    }

    std::atomic<bool> stop{false};
    std::atomic<u64> reads_ok{0}, read_gaps{0}, mismatches{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < results.readers; ++t)
        readers.emplace_back([&, t] {
            ClusterRouterConfig config;
            config.seeds = seeds;
            ClusterRouter router(config);
            std::size_t turn = static_cast<std::size_t>(t);
            while (!stop.load(std::memory_order_relaxed)) {
                const std::size_t i =
                    turn++ % static_cast<std::size_t>(videos);
                GetFramesRequest get;
                get.name = benchVideoName(i);
                auto r = router.getFrames(get);
                if (!r) {
                    read_gaps.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
                if (r->status != Status::Ok)
                    continue;
                if (r->i420 == refs[i])
                    reads_ok.fetch_add(1,
                                       std::memory_order_relaxed);
                else
                    mismatches.fetch_add(
                        1, std::memory_order_relaxed);
            }
        });

    RebalanceConfig rebalance;
    rebalance.replicas = set.replicas;
    MembershipManager manager(
        set.managed(static_cast<std::size_t>(shards)), 1,
        rebalance);
    double t0 = now();
    MigrationReport report = manager.addShard(
        {set.shards[static_cast<std::size_t>(shards)],
         set.nodes[static_cast<std::size_t>(shards)].get()});
    results.transitionWallS = now() - t0;
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &t : readers)
        t.join();

    results.videosMoved =
        report.movedRecords + report.skippedRecords;
    results.readsOk = reads_ok.load();
    results.readGaps = read_gaps.load();
    results.movedMatchesRingDiff =
        report.ok() && report.plannedMoves == report.predictedMoves &&
        results.videosMoved == report.plannedMoves;

    // Quiesced verification: every video present and byte-exact
    // through a fresh router over the grown ring.
    u64 lost = mismatches.load();
    {
        ClusterRouterConfig config;
        config.seeds = set.shards;
        ClusterRouter router(config);
        for (int i = 0; i < videos; ++i) {
            GetFramesRequest get;
            get.name = benchVideoName(i);
            auto r = router.getFrames(get);
            if (!r || r->status != Status::Ok ||
                r->i420 != refs[static_cast<std::size_t>(i)])
                ++lost;
        }
    }
    results.videosLost = lost;
    results.noLostVideos = lost == 0;

    // Kill-and-rebuild: lose one shard's archive outright, boot a
    // replacement under the same id, and re-populate it from the
    // surviving replicas + re-encoded origins.
    const u32 victim = set.nodes.back()->ownerOf(benchVideoName(0));
    set.servers[victim]->stop();
    set.servers[victim].reset();
    set.nodes[victim].reset();
    std::string lost_path = set.services[victim]->path();
    set.services[victim].reset();
    std::remove(lost_path.c_str());

    std::string fresh_path = scratchPath() + ".shard_rebuild";
    std::remove(fresh_path.c_str());
    set.services[victim] =
        std::make_unique<ArchiveService>(fresh_path);
    bool rebuild_ok =
        set.services[victim]->open() == ArchiveError::None;
    if (rebuild_ok) {
        ClusterNodeConfig node;
        node.selfId = victim;
        node.replicas = set.replicas;
        set.nodes[victim] = std::make_unique<ClusterNode>(
            *set.services[victim], node);
        VappServerConfig config;
        config.cluster = set.nodes[victim].get();
        set.servers[victim] = std::make_unique<VappServer>(
            *set.services[victim], config);
        rebuild_ok = set.servers[victim]->start();
    }
    if (rebuild_ok) {
        set.shards[victim] = {victim, "127.0.0.1",
                              set.servers[victim]->port()};
        set.nodes[victim]->setTopology({set.shards[victim]}, 1);
        RebuildReport rebuilt = manager.rebuildShard(
            {set.shards[victim], set.nodes[victim].get()},
            [&](const std::string &name, Video &video, Bytes &) {
                for (int i = 0; i < videos; ++i)
                    if (name == benchVideoName(i)) {
                        video =
                            sources[static_cast<std::size_t>(i)];
                        return true;
                    }
                return false;
            });
        rebuild_ok = rebuilt.ok();
        if (rebuild_ok) {
            ClusterRouterConfig config;
            config.seeds = set.shards;
            ClusterRouter router(config);
            for (int i = 0; i < videos && rebuild_ok; ++i) {
                GetFramesRequest get;
                get.name = benchVideoName(i);
                auto r = router.getFrames(get);
                rebuild_ok =
                    r && r->status == Status::Ok &&
                    r->i420 == refs[static_cast<std::size_t>(i)];
            }
        }
    }
    results.rebuildByteExact = rebuild_ok;
    set.stop();

    std::printf("%-8s %9s %8s %7s %6s %9s %9s\n", "shards",
                "wall (s)", "videos", "moved", "lost", "reads ok",
                "gaps");
    std::printf(
        "%-8d %9.3f %8llu %7llu %6llu %9llu %9llu\n",
        results.shardsAfter, results.transitionWallS,
        static_cast<unsigned long long>(results.videosTotal),
        static_cast<unsigned long long>(results.videosMoved),
        static_cast<unsigned long long>(results.videosLost),
        static_cast<unsigned long long>(results.readsOk),
        static_cast<unsigned long long>(results.readGaps));
    std::printf("no lost or mismatched videos: %s\n",
                results.noLostVideos ? "yes" : "NO (BUG)");
    std::printf("moved == ring diff prediction: %s\n",
                results.movedMatchesRingDiff ? "yes" : "NO (BUG)");
    std::printf("killed shard rebuilt byte-exact: %s\n",
                results.rebuildByteExact ? "yes" : "NO (BUG)");
    return true;
}

std::string
outputPath()
{
    if (const char *out = std::getenv("VIDEOAPP_BENCH_OUT"))
        return out;
    return "BENCH_server.json";
}

void
writeRows(std::FILE *f, const std::vector<LoadPoint> &points)
{
    for (std::size_t i = 0; i < points.size(); ++i) {
        const LoadPoint &p = points[i];
        std::fprintf(
            f,
            "    {\"threads\": %d, \"wall_s\": %.6f, "
            "\"ops_per_s\": %.3f, \"get_p50_us\": %.1f, "
            "\"get_p99_us\": %.1f, \"gets_ok\": %llu, "
            "\"puts_ok\": %llu, \"scrubs_ok\": %llu, "
            "\"not_found\": %llu, \"responses_lost\": %llu}%s\n",
            p.connections, p.wallSeconds, p.opsPerSecond, p.getP50Us,
            p.getP99Us, static_cast<unsigned long long>(p.getsOk),
            static_cast<unsigned long long>(p.putsOk),
            static_cast<unsigned long long>(p.scrubsOk),
            static_cast<unsigned long long>(p.notFound),
            static_cast<unsigned long long>(p.responsesLost),
            i + 1 < points.size() ? "," : "");
    }
}

bool
writeJson(const BenchConfig &config,
          const std::vector<LoadPoint> &points,
          const std::vector<LoadPoint> &skewed,
          const std::vector<ShedPoint> &shed,
          double shed_p99_speedup, int ops_per_client,
          bool all_accounted, bool wire_matches_local,
          bool cache_hit_skips_decode, bool backpressure_retry,
          bool coalescing_single_flight, bool shed_disabled_clean,
          bool shed_pressure_ok, const ClusterResults *cluster,
          const ResizeResults *resize)
{
    const std::string path = outputPath();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr,
                     "error: cannot write bench results to '%s': %s\n"
                     "(set VIDEOAPP_BENCH_OUT to a writable path)\n",
                     path.c_str(), std::strerror(errno));
        return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"perf_server\",\n");
    std::fprintf(f,
                 "  \"config\": {\"scale\": %.3f, \"runs\": %d, "
                 "\"videos\": %d, \"ops_per_client\": %d},\n",
                 config.scale, config.runs, config.videos,
                 ops_per_client);
    std::fprintf(f, "  \"threads\": [\n");
    writeRows(f, points);
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"skewed\": [\n");
    writeRows(f, skewed);
    std::fprintf(f, "  ],\n");
    // Shed rows are keyed by shed threshold in their "threads"
    // field (the row key the regression checker indexes by);
    // fidelity splits and latency are load-dependent and soft.
    std::fprintf(f, "  \"shed\": [\n");
    for (std::size_t i = 0; i < shed.size(); ++i) {
        const ShedPoint &p = shed[i];
        std::fprintf(
            f,
            "    {\"threads\": %d, \"conns\": 32, "
            "\"wall_s\": %.6f, \"ops_per_s\": %.3f, "
            "\"get_p50_us\": %.1f, \"get_p99_us\": %.1f, "
            "\"full_p99_us\": %.1f, \"answered\": %llu, "
            "\"full_fidelity\": %llu, \"degraded\": %llu, "
            "\"streams_shed\": %llu, \"responses_lost\": %llu}%s\n",
            p.threshold, p.wallSeconds, p.opsPerSecond, p.p50Us,
            p.p99Us, p.fullP99Us,
            static_cast<unsigned long long>(p.answered),
            static_cast<unsigned long long>(p.fullFidelity),
            static_cast<unsigned long long>(p.degraded),
            static_cast<unsigned long long>(p.streamsShed),
            static_cast<unsigned long long>(p.lost),
            i + 1 < shed.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"shed_p99_speedup_vs_noshed\": %.3f,\n",
                 shed_p99_speedup);
    std::fprintf(f, "  \"shed_disabled_never_degrades\": %s,\n",
                 shed_disabled_clean ? "true" : "false");
    std::fprintf(f, "  \"shed_under_pressure_degrades_tail\": %s,\n",
                 shed_pressure_ok ? "true" : "false");
    if (cluster != nullptr) {
        // Cluster rows are keyed by shard count in their "threads"
        // field (the row key the regression checker indexes by);
        // "conns" records the constant routed-client count.
        std::fprintf(f, "  \"cluster\": [\n");
        for (std::size_t i = 0; i < cluster->points.size(); ++i) {
            const auto &[shard_count, p] = cluster->points[i];
            std::fprintf(
                f,
                "    {\"threads\": %d, \"conns\": %d, "
                "\"wall_s\": %.6f, \"ops_per_s\": %.3f, "
                "\"get_p50_us\": %.1f, \"get_p99_us\": %.1f, "
                "\"gets_ok\": %llu, \"not_found\": %llu, "
                "\"responses_lost\": %llu}%s\n",
                shard_count, p.connections, p.wallSeconds,
                p.opsPerSecond, p.getP50Us, p.getP99Us,
                static_cast<unsigned long long>(p.getsOk),
                static_cast<unsigned long long>(p.notFound),
                static_cast<unsigned long long>(p.responsesLost),
                i + 1 < cluster->points.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f,
                     "  \"cluster_speedup_vs_single\": %.3f,\n",
                     cluster->speedup);
        std::fprintf(f,
                     "  \"cluster_routed_get_matches_single\": "
                     "%s,\n",
                     cluster->routedMatchesSingle ? "true"
                                                  : "false");
        std::fprintf(f, "  \"cluster_meta_repair_get_ok\": %s,\n",
                     cluster->metaRepairOk ? "true" : "false");
        std::fprintf(f,
                     "  \"cluster_scrub_budget_respected\": %s,\n",
                     cluster->scrubBudgetRespected ? "true"
                                                   : "false");
    }
    if (resize != nullptr) {
        // The resize row is keyed by the post-transition shard
        // count in its "threads" field (the regression checker's
        // row key); video totals are schedule-fixed and hard, the
        // concurrent read tallies drift with the runner.
        std::fprintf(
            f,
            "  \"resize\": [\n"
            "    {\"threads\": %d, \"conns\": %d, "
            "\"wall_s\": %.6f, \"videos_total\": %llu, "
            "\"videos_moved\": %llu, \"videos_lost\": %llu, "
            "\"reads_ok\": %llu, \"read_gaps\": %llu}\n  ],\n",
            resize->shardsAfter, resize->readers,
            resize->transitionWallS,
            static_cast<unsigned long long>(resize->videosTotal),
            static_cast<unsigned long long>(resize->videosMoved),
            static_cast<unsigned long long>(resize->videosLost),
            static_cast<unsigned long long>(resize->readsOk),
            static_cast<unsigned long long>(resize->readGaps));
        std::fprintf(f, "  \"resize_no_lost_videos\": %s,\n",
                     resize->noLostVideos ? "true" : "false");
        std::fprintf(f,
                     "  \"resize_moved_matches_ring_diff\": %s,\n",
                     resize->movedMatchesRingDiff ? "true"
                                                  : "false");
        std::fprintf(f, "  \"resize_rebuild_byte_exact\": %s,\n",
                     resize->rebuildByteExact ? "true" : "false");
    }
    std::fprintf(f, "  \"responses_all_accounted\": %s,\n",
                 all_accounted ? "true" : "false");
    std::fprintf(f, "  \"wire_matches_local\": %s,\n",
                 wire_matches_local ? "true" : "false");
    std::fprintf(f, "  \"cache_hit_skips_decode\": %s,\n",
                 cache_hit_skips_decode ? "true" : "false");
    std::fprintf(f, "  \"backpressure_returns_retry\": %s,\n",
                 backpressure_retry ? "true" : "false");
    std::fprintf(f, "  \"coalescing_single_flight\": %s,\n",
                 coalescing_single_flight ? "true" : "false");
    std::string telemetry =
        telemetry::globalRegistry().snapshotJson(2);
    std::fprintf(f, "  \"telemetry\": %s\n}\n", telemetry.c_str());
    if (std::fclose(f) != 0) {
        std::fprintf(stderr, "error: failed to flush '%s': %s\n",
                     path.c_str(), std::strerror(errno));
        return false;
    }
    return true;
}

bool
run(const BenchConfig &config, int shards, bool resize)
{
    telemetry::globalRegistry().resetAll();

    const int videos = std::max(1, config.videos);
    const int ops = std::max(4, config.runs * 4);
    auto suite = standardSuite(config.scale);
    std::vector<Video> sources;
    std::vector<PreparedVideo> prepared;
    std::vector<PutRequest> put_templates;
    for (int i = 0; i < videos; ++i) {
        sources.push_back(generateSynthetic(
            suite[static_cast<std::size_t>(i) % suite.size()]));
        prepared.push_back(prepareVideo(sources.back(),
                                        EncoderConfig{},
                                        EccAssignment::paperTable1()));
        PutRequest put;
        put.width = static_cast<u16>(sources.back().width());
        put.height = static_cast<u16>(sources.back().height());
        put.frameCount =
            static_cast<u32>(sources.back().frames.size());
        put.i420 = packFramesI420(sources.back(), 0,
                                  sources.back().frames.size());
        put_templates.push_back(std::move(put));
    }

    ArchiveService service(scratchPath());
    std::remove(service.path().c_str());
    if (service.open() != ArchiveError::None) {
        std::fprintf(stderr, "error: cannot open scratch archive\n");
        return false;
    }
    for (int i = 0; i < videos; ++i)
        service.put(benchVideoName(i), prepared[i], {});

    VappServerConfig server_config;
    server_config.workers = 4;
    server_config.queueCapacity = 256;
    VappServer server(service, server_config);
    if (!server.start()) {
        std::fprintf(stderr, "error: cannot start server: %s\n",
                     std::strerror(errno));
        return false;
    }
    const u16 port = server.port();

    // One warm pass discovers the GOP count and fills the cache so
    // the load rows measure the steady serving state.
    u32 gop_count = 1;
    {
        VappClient c;
        if (!c.connect("127.0.0.1", port))
            return false;
        for (int i = 0; i < videos; ++i) {
            GetFramesRequest get;
            get.name = benchVideoName(i);
            auto r = c.getFrames(get);
            if (!r || r->status != Status::Ok)
                return false;
            gop_count = std::max<u32>(1, r->gopCount);
        }
    }

    auto printRow = [](const LoadPoint &p) {
        std::printf(
            "%-8d %9.3f %11.1f %11.1f %11.1f %7llu %7llu %7llu "
            "%9llu %6llu\n",
            p.connections, p.wallSeconds, p.opsPerSecond, p.getP50Us,
            p.getP99Us, static_cast<unsigned long long>(p.getsOk),
            static_cast<unsigned long long>(p.putsOk),
            static_cast<unsigned long long>(p.scrubsOk),
            static_cast<unsigned long long>(p.notFound),
            static_cast<unsigned long long>(p.responsesLost));
    };
    std::printf("%-8s %9s %11s %11s %11s %7s %7s %7s %9s %6s\n",
                "conns", "wall (s)", "ops/s", "p50 (us)", "p99 (us)",
                "gets", "puts", "scrubs", "notfound", "lost");
    std::vector<LoadPoint> points;
    for (int n : {16, 64}) {
        points.push_back(benchOneConnectionCount(
            port, n, ops, videos, gop_count, put_templates));
        printRow(points.back());
    }

    std::printf("\nskewed hot-key load (90%% one GOP):\n");
    std::vector<LoadPoint> skewed;
    for (int n : {64, 256}) {
        skewed.push_back(benchSkewedConnectionCount(
            port, n, ops, videos, gop_count));
        printRow(skewed.back());
    }

    bool all_accounted = true;
    for (const LoadPoint &p : points)
        if (p.responsesLost != 0)
            all_accounted = false;
    for (const LoadPoint &p : skewed)
        if (p.responsesLost != 0)
            all_accounted = false;
    std::printf("\nevery request answered: %s\n",
                all_accounted ? "yes" : "NO (BUG)");

    bool wire_matches_local =
        checkWireMatchesLocal(service, port, videos);
    std::printf("wire frames == local service get: %s\n",
                wire_matches_local ? "yes" : "NO (BUG)");

    bool cache_hit = checkCacheHitSkipsDecode(server, port);
    std::printf("cache hit skips the read path: %s\n",
                cache_hit ? "yes" : "NO (BUG)");

    bool coalescing = checkSingleFlightCoalesces(server, port);
    std::printf("concurrent cold GETs decode once: %s\n",
                coalescing ? "yes" : "NO (BUG)");

    server.stop();

    bool backpressure = checkBackpressureReturnsRetry(service);
    std::printf("full queue answers Retry: %s\n",
                backpressure ? "yes" : "NO (BUG)");

    // Importance-aware shedding: the same overloaded GET load with
    // shedding off and on. Cache off + tiny queue = real admission
    // pressure; fidelity splits are load-dependent (soft in the
    // baseline), answered/lost are schedule-fixed (hard).
    std::printf("\nshed mode (cache off, 8-deep queue, 32 conns):\n");
    std::printf("%-10s %9s %11s %11s %11s %11s %9s %9s %7s %6s\n",
                "threshold", "wall (s)", "ops/s", "p50 (us)",
                "p99 (us)", "full p99", "full", "degraded", "shed",
                "lost");
    std::vector<ShedPoint> shed_points;
    // Longer than the standard rows: the fidelity split and the tail
    // percentiles need enough samples to mean anything.
    const int shed_ops = ops * 4;
    for (int threshold : {0, 1}) {
        shed_points.push_back(benchShedMode(
            service, threshold, 32, shed_ops, prepared[0],
            gop_count));
        const ShedPoint &p = shed_points.back();
        std::printf(
            "%-10d %9.3f %11.1f %11.1f %11.1f %11.1f %9llu %9llu "
            "%7llu %6llu\n",
            p.threshold, p.wallSeconds, p.opsPerSecond, p.p50Us,
            p.p99Us, p.fullP99Us,
            static_cast<unsigned long long>(p.fullFidelity),
            static_cast<unsigned long long>(p.degraded),
            static_cast<unsigned long long>(p.streamsShed),
            static_cast<unsigned long long>(p.lost));
    }
    // The shed trade: requests that keep full fidelity (all of the
    // high-importance content) should see a better tail than the
    // same load with shedding off.
    const double shed_p99_speedup =
        shed_points[1].fullP99Us > 0
            ? shed_points[0].p99Us / shed_points[1].fullP99Us
            : 0;
    std::printf("full-fidelity p99 speedup with shedding on: %.2fx "
                "(soft, load-dependent)\n",
                shed_p99_speedup);
    bool shed_disabled_clean = shed_points[0].degraded == 0 &&
                               shed_points[0].shedResponses == 0;
    std::printf("threshold 0 never degrades: %s\n",
                shed_disabled_clean ? "yes" : "NO (BUG)");
    bool shed_pressure_ok =
        checkShedUnderPressure(service, prepared[0]);
    std::printf("saturated queue sheds exactly the tail: %s\n",
                shed_pressure_ok ? "yes" : "NO (BUG)");

    std::remove(service.path().c_str());

    ClusterResults cluster;
    bool cluster_ok = true;
    if (shards > 1) {
        const int cluster_ops = std::max(64, ops * 8);
        cluster_ok = runClusterSection(shards, cluster_ops, videos,
                                       prepared, cluster);
        if (cluster_ok)
            cluster_ok = cluster.routedMatchesSingle &&
                         cluster.metaRepairOk &&
                         cluster.scrubBudgetRespected;
    }

    ResizeResults resize_results;
    bool resize_ok = true;
    if (resize && shards > 1) {
        resize_ok = runResizeSection(shards, videos, prepared,
                                     sources, resize_results);
        if (resize_ok)
            resize_ok = resize_results.noLostVideos &&
                        resize_results.movedMatchesRingDiff &&
                        resize_results.rebuildByteExact;
    }

    if (!writeJson(config, points, skewed, shed_points,
                   shed_p99_speedup, ops, all_accounted,
                   wire_matches_local, cache_hit, backpressure,
                   coalescing, shed_disabled_clean, shed_pressure_ok,
                   shards > 1 && !cluster.points.empty() ? &cluster
                                                         : nullptr,
                   resize && shards > 1 ? &resize_results
                                        : nullptr))
        return false;
    std::printf("wrote %s\n", outputPath().c_str());
    return all_accounted && wire_matches_local && cache_hit &&
           backpressure && coalescing && shed_disabled_clean &&
           shed_pressure_ok && cluster_ok && resize_ok;
}

} // namespace
} // namespace videoapp

int
main(int argc, char **argv)
{
    using namespace videoapp;
    int shards = 1;
    bool resize = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            shards = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--resize") == 0) {
            resize = true;
        } else {
            std::fprintf(
                stderr,
                "usage: perf_server [--shards N] [--resize]\n");
            return 2;
        }
    }
    if (shards < 1) {
        std::fprintf(stderr, "error: --shards wants N >= 1\n");
        return 2;
    }
    if (resize && shards < 2) {
        std::fprintf(stderr,
                     "error: --resize wants --shards N >= 2\n");
        return 2;
    }
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "perf: VAPP store server (loopback load)", config);
    return run(config, shards, resize) ? 0 : 1;
}
