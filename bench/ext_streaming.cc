/**
 * @file
 * Extension experiment (paper related work): "Our methodology could
 * be also applied to video streaming, where different bits can be
 * transferred through network channels of different reliability."
 *
 * Simulates a two-channel transport: bits of importance class <= k
 * ride the lossy channel (a wireless-style residual bit error
 * rate), everything above rides the reliable channel. Sweeping k
 * maps the trade-off between reliable-channel usage and delivered
 * quality — unequal error protection for streaming, driven by the
 * same VideoApp importance analysis as the storage system.
 */

#include <cstdio>

#include "codec/encoder.h"
#include "graph/importance.h"
#include "quality/psnr.h"
#include "sim/bench_config.h"
#include "sim/binning.h"
#include "sim/monte_carlo.h"

namespace videoapp {
namespace {

void
run(const BenchConfig &config)
{
    const double lossy_ber = 3e-4; // residual error rate of the
                                   // unprotected channel
    SyntheticSpec spec = config.suite()[1];
    Video source = generateSynthetic(spec);
    EncodeResult enc = encodeVideo(source, EncoderConfig{});
    ImportanceMap importance = computeImportance(enc.side, enc.video);
    Video clean = decodeWithPayloads(enc, enc.video.payloads);
    double psnr_clean = psnrVideo(source, clean);

    std::printf("stream '%s', lossy channel BER %.0e, clean PSNR "
                "%.2f dB\n\n",
                spec.name.c_str(), lossy_ber, psnr_clean);
    std::printf("%-26s %18s %12s\n",
                "classes on lossy channel", "reliable share",
                "PSNR (dB)");

    auto classes = occurringClasses(enc, importance);
    // k = -1 means everything reliable.
    for (int idx = -1; idx < static_cast<int>(classes.size());
         idx += 2) {
        int k = idx < 0 ? -1 : classes[static_cast<std::size_t>(idx)];
        BitRangeSet lossy_bits =
            k < 0 ? BitRangeSet{} : classBits(enc, importance, k);
        double reliable_share =
            1.0 - static_cast<double>(lossy_bits.totalBits()) /
                      enc.video.payloadBits();

        double total = 0;
        Rng rng(9900 + static_cast<u64>(idx));
        for (int r = 0; r < config.runs; ++r) {
            std::vector<Bytes> payloads = enc.video.payloads;
            corruptPayloads(payloads, lossy_bits, lossy_ber, rng);
            Video received =
                decodeWithPayloads(enc, std::move(payloads));
            total += psnrVideo(source, received);
        }
        char label[32];
        if (k < 0)
            std::snprintf(label, sizeof(label), "none");
        else
            std::snprintf(label, sizeof(label), "<= 2^%d", k);
        std::printf("%-26s %17.1f%% %12.2f\n", label,
                    100.0 * reliable_share, total / config.runs);
    }

    std::printf("\n(Shipping only the low-importance bits over the "
                "lossy channel preserves most of the quality while "
                "freeing most of the reliable channel — unequal "
                "error protection at VideoApp's granularity, per the "
                "paper's streaming remark.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Extension: importance-partitioned two-channel streaming",
        config);
    run(config);
    return 0;
}
