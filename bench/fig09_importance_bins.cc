/**
 * @file
 * Figure 9: (a) quality loss as a function of error rate for 16
 * equal-storage bins of ascending importance, and (b) the maximum MB
 * importance per bin (log2).
 *
 * The paper's validation experiment (Section 7.1): errors are
 * injected into one bin at a time while every other bin stays
 * precise; the loss curves must be ordered exactly like the bins'
 * importance.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "codec/encoder.h"
#include "graph/importance.h"
#include "sim/bench_config.h"
#include "sim/binning.h"
#include "sim/monte_carlo.h"

namespace videoapp {
namespace {

constexpr int kBinCount = 16;

void
run(const BenchConfig &config)
{
    const std::vector<double> rates = {1e-8, 1e-7, 1e-6, 1e-5,
                                       1e-4, 1e-3, 1e-2};

    // Aggregate worst-case loss per (bin, rate) across the suite.
    std::vector<std::vector<double>> loss(
        kBinCount, std::vector<double>(rates.size(), 0.0));
    std::vector<double> max_importance(kBinCount, 0.0);

    int video_idx = 0;
    for (const SyntheticSpec &spec : config.suite()) {
        Video source = generateSynthetic(spec);
        EncodeResult enc = encodeVideo(source, EncoderConfig{});
        ImportanceMap importance =
            computeImportance(enc.side, enc.video);
        auto bins = buildImportanceBins(enc, importance, kBinCount);

        Rng rng(1000 + static_cast<u64>(video_idx));
        for (int b = 0; b < kBinCount; ++b) {
            max_importance[b] = std::max(max_importance[b],
                                         bins[b].maxImportance);
            for (std::size_t r = 0; r < rates.size(); ++r) {
                LossStats stats = measureQualityLoss(
                    source, enc, bins[b].bits, rates[r],
                    config.runs, rng);
                loss[b][r] =
                    std::max(loss[b][r], stats.maxLossDb);
            }
        }
        ++video_idx;
        std::printf("  [processed %s]\n", spec.name.c_str());
    }

    CsvWriter csv(config, "fig09",
                  "bin,error_rate,loss_db,max_importance_log2");
    for (int b = 0; b < kBinCount; ++b)
        for (std::size_t r = 0; r < rates.size(); ++r)
            csv.row(std::to_string(b) + "," +
                    std::to_string(rates[r]) + "," +
                    std::to_string(loss[b][r]) + "," +
                    std::to_string(std::log2(
                        std::max(max_importance[b], 1.0))));

    std::printf("\n(a) Worst-case quality change (dB) per bin and "
                "error rate:\n\n%-5s", "bin");
    for (double r : rates)
        std::printf(" %9.0e", r);
    std::printf("\n");
    for (int b = 0; b < kBinCount; ++b) {
        std::printf("%-5d", b);
        for (std::size_t r = 0; r < rates.size(); ++r)
            std::printf(" %9.3f", -loss[b][r]);
        std::printf("\n");
    }

    std::printf("\n(b) Maximum importance per bin (log2):\n\n");
    for (int b = 0; b < kBinCount; ++b)
        std::printf("bin %-3d log2(max importance) = %6.2f\n", b,
                    std::log2(std::max(max_importance[b], 1.0)));

    // The key ordering property of Figure 9(a).
    int inversions = 0;
    for (std::size_t r = 0; r < rates.size(); ++r)
        for (int b = 1; b < kBinCount; ++b)
            if (loss[b][r] + 1e-9 < loss[b - 1][r] &&
                loss[b - 1][r] > 0.05)
                ++inversions;
    std::printf("\nOrdering check: %d significant inversions out of "
                "%zu (bin, rate) pairs (paper: loss curves follow "
                "the bin importance order).\n",
                inversions, rates.size() * (kBinCount - 1));
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Figure 9: quality loss per equal-storage importance bin",
        config);
    run(config);
    return 0;
}
