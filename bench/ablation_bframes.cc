/**
 * @file
 * Section 8 ablation: encoding for approximability. Unreferenced
 * B-frames are dead ends for error propagation; biasing the encoder
 * toward more B-frames polarises the video into very important
 * (anchor) and unimportant (B) bits — ideal for approximation — but
 * can cost compression efficiency. The paper poses this trade-off
 * as an open question to the video community; this bench maps it.
 */

#include <cstdio>

#include "core/pipeline.h"
#include "graph/importance.h"
#include "sim/bench_config.h"
#include "sim/binning.h"

namespace videoapp {
namespace {

void
run(const BenchConfig &config)
{
    SyntheticSpec spec = config.suite()[0];
    Video source = generateSynthetic(spec);

    std::printf("%-22s %14s %18s %16s\n", "GOP shape",
                "payload bits", "unreferenced bits",
                "cells/pixel");

    struct Case
    {
        const char *name;
        int b_frames;
        bool b_refs;
    };
    for (const Case &c :
         {Case{"IPPP (no B)", 0, false},
          Case{"IBBP (2 B, no refs)", 2, false},
          Case{"IBBBBP (4 B, no refs)", 4, false},
          Case{"IBBP (2 B, B refs)", 2, true}}) {
        EncoderConfig enc_config;
        enc_config.gop.bFrames = c.b_frames;
        enc_config.gop.bRefs = c.b_refs;
        PreparedVideo prepared = prepareVideo(
            source, enc_config, EccAssignment::paperTable1());

        // Bits in frames no other frame references (error dead
        // ends).
        u64 unref_bits = 0;
        for (std::size_t f = 0;
             f < prepared.enc.side.frames.size(); ++f) {
            if (!prepared.enc.side.frames[f].isReference)
                unref_bits +=
                    prepared.enc.video.payloads[f].size() * 8;
        }

        double cells = densityCellsPerPixel(prepared,
                                            source.pixelCount());
        std::printf("%-22s %14llu %17.1f%% %16.4f\n", c.name,
                    static_cast<unsigned long long>(
                        prepared.enc.video.payloadBits()),
                    100.0 * unref_bits /
                        prepared.enc.video.payloadBits(),
                    cells);
    }
    std::printf("\n(More unreferenced B bits -> more of the stream "
                "in low importance classes -> weaker ECC -> higher "
                "density; but B-heavy GOPs may inflate the payload, "
                "the tension Section 8 describes.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Section 8 ablation: B-frame structure vs approximability",
        config);
    run(config);
    return 0;
}
