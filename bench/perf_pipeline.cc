/**
 * @file
 * Performance of the parallel trial layer and the word-packed BCH
 * hot path (not a paper figure — an engineering bench).
 *
 * Three measurements, written to BENCH_pipeline.json:
 *  1. prepare / store+retrieve wall time at 1/2/4/8 threads, with
 *     throughput (Mbit/s of stored payload) and speedup vs 1 thread.
 *  2. single-thread BCH codec: packed byte path (encodeBytes /
 *     decodeBytes) vs the bit-vector reference path on the same
 *     blocks.
 *  3. a determinism check: storeAndRetrieve with the same seed at 1
 *     and 4 threads must produce the identical outcome.
 *
 * Thread counts above the machine's core count still run (the pool
 * just oversubscribes), so the JSON is always four rows; speedups
 * saturate at the physical core count.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "sim/bench_config.h"
#include "storage/bch.h"

namespace videoapp {
namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct ThreadPoint
{
    int threads = 0;
    double prepareSeconds = 0;
    double storeRetrieveSeconds = 0;
    double mbitPerSecond = 0;
    double speedup = 0;
};

struct BchPoint
{
    double referenceEncodeSeconds = 0;
    double packedEncodeSeconds = 0;
    double referenceDecodeSeconds = 0;
    double packedDecodeSeconds = 0;
    double encodeSpeedup = 0;
    double decodeSpeedup = 0;
};

/** Identical storage outcome? (bitwise on every scalar). */
bool
sameOutcome(const StorageOutcome &a, const StorageOutcome &b)
{
    if (a.psnrVsReference != b.psnrVsReference ||
        a.cellsPerPixel != b.cellsPerPixel ||
        a.payloadBits != b.payloadBits ||
        a.parityBits != b.parityBits ||
        a.decoded.frames.size() != b.decoded.frames.size())
        return false;
    for (std::size_t f = 0; f < a.decoded.frames.size(); ++f) {
        const Frame &fa = a.decoded.frames[f];
        const Frame &fb = b.decoded.frames[f];
        for (int y = 0; y < fa.y().height(); ++y)
            for (int x = 0; x < fa.y().width(); ++x)
                if (fa.y().at(x, y) != fb.y().at(x, y))
                    return false;
    }
    return true;
}

std::vector<ThreadPoint>
benchPipeline(const BenchConfig &config, const Video &source)
{
    const std::vector<int> counts = {1, 2, 4, 8};
    std::vector<ThreadPoint> points;

    ModeledChannel channel(kPcmRawBer);
    const int iters = std::max(2, config.runs);

    for (int n : counts) {
        setThreadCount(n);
        ThreadPoint p;
        p.threads = n;

        double t0 = now();
        PreparedVideo prepared = prepareVideo(
            source, EncoderConfig{}, EccAssignment::paperTable1());
        p.prepareSeconds = now() - t0;

        u64 stored_bits = 0;
        t0 = now();
        for (int i = 0; i < iters; ++i) {
            Rng rng = Rng::forStream(5150, static_cast<u64>(i));
            StorageOutcome outcome =
                storeAndRetrieve(prepared, channel, rng);
            stored_bits += outcome.payloadBits + outcome.parityBits;
        }
        p.storeRetrieveSeconds = now() - t0;
        p.mbitPerSecond = p.storeRetrieveSeconds > 0
                              ? static_cast<double>(stored_bits) /
                                    p.storeRetrieveSeconds / 1e6
                              : 0;
        points.push_back(p);
    }

    for (ThreadPoint &p : points) {
        double base = points.front().storeRetrieveSeconds;
        p.speedup = p.storeRetrieveSeconds > 0
                        ? base / p.storeRetrieveSeconds
                        : 0;
    }
    setThreadCount(0); // back to the environment default
    return points;
}

BchPoint
benchBch()
{
    const int t = 6;
    const BchCode &code = cachedBchCode(t);
    const int blocks = 1500;

    // Pre-generate random blocks (identical inputs for both paths).
    Rng rng(31337);
    std::vector<Bytes> data(blocks,
                            Bytes(code.dataBits() / 8, 0));
    for (Bytes &block : data)
        for (u8 &byte : block)
            byte = static_cast<u8>(rng.nextBelow(256));

    BchPoint p;
    Bytes codeword(code.codewordBytes(), 0);

    // --- encode ---
    double t0 = now();
    for (const Bytes &block : data) {
        BitVec bits = unpackBits(block,
                                 static_cast<std::size_t>(
                                     code.dataBits()));
        BitVec cw = code.encodeReference(bits);
        (void)cw;
    }
    p.referenceEncodeSeconds = now() - t0;

    t0 = now();
    for (const Bytes &block : data)
        code.encodeBytes(block.data(), codeword.data());
    p.packedEncodeSeconds = now() - t0;

    // --- decode (t injected errors per block) ---
    std::vector<Bytes> corrupted(blocks);
    for (int b = 0; b < blocks; ++b) {
        code.encodeBytes(data[static_cast<std::size_t>(b)].data(),
                         codeword.data());
        Bytes cw = codeword;
        for (int e = 0; e < t; ++e) {
            u64 bit = rng.nextBelow(
                static_cast<u64>(code.codewordBits()));
            cw[bit / 8] ^= static_cast<u8>(0x80u >> (bit % 8));
        }
        corrupted[static_cast<std::size_t>(b)] = std::move(cw);
    }

    t0 = now();
    for (const Bytes &cw : corrupted) {
        BitVec bits = unpackBits(
            cw, static_cast<std::size_t>(code.codewordBits()));
        auto result = code.decodeReference(bits);
        (void)result;
    }
    p.referenceDecodeSeconds = now() - t0;

    t0 = now();
    for (Bytes cw : corrupted) {
        auto result = code.decodeBytes(cw.data());
        (void)result;
    }
    p.packedDecodeSeconds = now() - t0;

    p.encodeSpeedup = p.packedEncodeSeconds > 0
                          ? p.referenceEncodeSeconds /
                                p.packedEncodeSeconds
                          : 0;
    p.decodeSpeedup = p.packedDecodeSeconds > 0
                          ? p.referenceDecodeSeconds /
                                p.packedDecodeSeconds
                          : 0;
    return p;
}

bool
checkDeterminism(const Video &source)
{
    PreparedVideo prepared = prepareVideo(
        source, EncoderConfig{}, EccAssignment::paperTable1());
    ModeledChannel channel(kPcmRawBer);

    setThreadCount(1);
    Rng rng_seq(777);
    StorageOutcome sequential =
        storeAndRetrieve(prepared, channel, rng_seq);

    setThreadCount(4);
    Rng rng_par(777);
    StorageOutcome parallel =
        storeAndRetrieve(prepared, channel, rng_par);

    setThreadCount(0);
    return sameOutcome(sequential, parallel);
}

void
writeJson(const std::vector<ThreadPoint> &points, const BchPoint &bch,
          bool deterministic)
{
    std::FILE *f = std::fopen("BENCH_pipeline.json", "w");
    if (!f) {
        std::perror("BENCH_pipeline.json");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"perf_pipeline\",\n");
    std::fprintf(f, "  \"threads\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ThreadPoint &p = points[i];
        std::fprintf(f,
                     "    {\"threads\": %d, \"prepare_s\": %.6f, "
                     "\"store_retrieve_s\": %.6f, "
                     "\"mbit_per_s\": %.3f, \"speedup\": %.3f}%s\n",
                     p.threads, p.prepareSeconds,
                     p.storeRetrieveSeconds, p.mbitPerSecond,
                     p.speedup,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"bch_single_thread\": {\"reference_encode_s\": %.6f, "
        "\"packed_encode_s\": %.6f, \"encode_speedup\": %.3f, "
        "\"reference_decode_s\": %.6f, \"packed_decode_s\": %.6f, "
        "\"decode_speedup\": %.3f},\n",
        bch.referenceEncodeSeconds, bch.packedEncodeSeconds,
        bch.encodeSpeedup, bch.referenceDecodeSeconds,
        bch.packedDecodeSeconds, bch.decodeSpeedup);
    std::fprintf(f,
                 "  \"parallel_equals_sequential\": %s\n}\n",
                 deterministic ? "true" : "false");
    std::fclose(f);
}

void
run(const BenchConfig &config)
{
    Video source = generateSynthetic(config.suite()[0]);

    std::printf("%-8s %12s %18s %12s %9s\n", "threads",
                "prepare (s)", "store+retrieve (s)", "Mbit/s",
                "speedup");
    std::vector<ThreadPoint> points = benchPipeline(config, source);
    for (const ThreadPoint &p : points)
        std::printf("%-8d %12.3f %18.3f %12.2f %8.2fx\n", p.threads,
                    p.prepareSeconds, p.storeRetrieveSeconds,
                    p.mbitPerSecond, p.speedup);

    BchPoint bch = benchBch();
    std::printf("\nBCH-6 single-thread codec (1500 blocks):\n"
                "  encode: reference %.3f s, packed %.3f s "
                "(%.2fx)\n"
                "  decode: reference %.3f s, packed %.3f s "
                "(%.2fx)\n",
                bch.referenceEncodeSeconds, bch.packedEncodeSeconds,
                bch.encodeSpeedup, bch.referenceDecodeSeconds,
                bch.packedDecodeSeconds, bch.decodeSpeedup);

    bool deterministic = checkDeterminism(source);
    std::printf("\nparallel == sequential outcome: %s\n",
                deterministic ? "yes" : "NO (BUG)");

    writeJson(points, bch, deterministic);
    std::printf("wrote BENCH_pipeline.json\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "perf: parallel pipeline and word-packed BCH hot path",
        config);
    run(config);
    return 0;
}
