/**
 * @file
 * Performance of the parallel trial layer and the word-packed BCH
 * hot path (not a paper figure — an engineering bench).
 *
 * Three measurements, written to BENCH_pipeline.json:
 *  1. prepare / store+retrieve wall time at 1/2/4/8 threads, with
 *     throughput (Mbit/s of stored payload) and speedup vs 1 thread.
 *  2. single-thread BCH codec: packed byte path (encodeBytes /
 *     decodeBytes) vs the bit-vector reference path on the same
 *     blocks.
 *  3. a determinism check: storeAndRetrieve with the same seed at 1
 *     and 4 threads must produce the identical outcome.
 *
 * The JSON also carries the bench config and a full telemetry
 * snapshot (see src/common/telemetry.h); tools/check_bench_regression.py
 * diffs it against bench/baselines/BENCH_pipeline.baseline.json in CI.
 * VIDEOAPP_BENCH_OUT overrides the output path (default
 * BENCH_pipeline.json in the current directory).
 *
 * Thread counts above the machine's core count still run (the pool
 * just oversubscribes), so the JSON is always four rows; speedups
 * saturate at the physical core count.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/pipeline.h"
#include "sim/bench_config.h"
#include "simd/dispatch.h"
#include "storage/bch.h"

namespace videoapp {
namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct ThreadPoint
{
    int threads = 0;
    double prepareSeconds = 0;
    double storeRetrieveSeconds = 0;
    double mbitPerSecond = 0;
    double speedup = 0;
    // Per-stage throughput (soft fields in the CI gate): raw YUV
    // megabytes and frames through prepare, stored megabytes
    // through store+retrieve.
    double prepareMbPerSecond = 0;
    double prepareFramesPerSecond = 0;
    double storeRetrieveMbPerSecond = 0;
    // Output-size metrics (identical at every thread count by the
    // determinism contract; the CI gate hard-checks them).
    u64 payloadBits = 0;
    u64 parityBits = 0;
};

struct BchPoint
{
    double referenceEncodeSeconds = 0;
    double packedEncodeSeconds = 0;
    double referenceDecodeSeconds = 0;
    double packedDecodeSeconds = 0;
    double encodeSpeedup = 0;
    double decodeSpeedup = 0;
};

/** Identical storage outcome? (bitwise on every scalar). */
bool
sameOutcome(const StorageOutcome &a, const StorageOutcome &b)
{
    if (a.psnrVsReference != b.psnrVsReference ||
        a.cellsPerPixel != b.cellsPerPixel ||
        a.payloadBits != b.payloadBits ||
        a.parityBits != b.parityBits ||
        a.decoded.frames.size() != b.decoded.frames.size())
        return false;
    for (std::size_t f = 0; f < a.decoded.frames.size(); ++f) {
        const Frame &fa = a.decoded.frames[f];
        const Frame &fb = b.decoded.frames[f];
        for (int y = 0; y < fa.y().height(); ++y)
            for (int x = 0; x < fa.y().width(); ++x)
                if (fa.y().at(x, y) != fb.y().at(x, y))
                    return false;
    }
    return true;
}

std::vector<ThreadPoint>
benchPipeline(const BenchConfig &config, const Video &source)
{
    const std::vector<int> counts = {1, 2, 4, 8};
    std::vector<ThreadPoint> points;

    ModeledChannel channel(kPcmRawBer);
    const int iters = std::max(2, config.runs);

    // Raw YUV 4:2:0 megabytes fed through prepare (1.5 bytes/pixel).
    const double source_mb =
        static_cast<double>(source.pixelCount()) * 1.5 / 1e6;
    const double source_frames =
        static_cast<double>(source.frames.size());

    for (int n : counts) {
        setThreadCount(n);
        ThreadPoint p;
        p.threads = n;

        double t0 = now();
        PreparedVideo prepared = prepareVideo(
            source, EncoderConfig{}, EccAssignment::paperTable1());
        p.prepareSeconds = now() - t0;
        if (p.prepareSeconds > 0) {
            p.prepareMbPerSecond = source_mb / p.prepareSeconds;
            p.prepareFramesPerSecond =
                source_frames / p.prepareSeconds;
        }

        u64 stored_bits = 0;
        t0 = now();
        for (int i = 0; i < iters; ++i) {
            Rng rng = Rng::forStream(5150, static_cast<u64>(i));
            StorageOutcome outcome =
                storeAndRetrieve(prepared, channel, rng);
            stored_bits += outcome.payloadBits + outcome.parityBits;
            p.payloadBits = outcome.payloadBits;
            p.parityBits = outcome.parityBits;
        }
        p.storeRetrieveSeconds = now() - t0;
        p.mbitPerSecond = p.storeRetrieveSeconds > 0
                              ? static_cast<double>(stored_bits) /
                                    p.storeRetrieveSeconds / 1e6
                              : 0;
        p.storeRetrieveMbPerSecond = p.mbitPerSecond / 8.0;
        points.push_back(p);
    }

    for (ThreadPoint &p : points) {
        double base = points.front().storeRetrieveSeconds;
        p.speedup = p.storeRetrieveSeconds > 0
                        ? base / p.storeRetrieveSeconds
                        : 0;
    }
    setThreadCount(0); // back to the environment default
    return points;
}

BchPoint
benchBch()
{
    const int t = 6;
    const BchCode &code = cachedBchCode(t);
    const int blocks = 1500;

    // Pre-generate random blocks (identical inputs for both paths).
    Rng rng(31337);
    std::vector<Bytes> data(blocks,
                            Bytes(code.dataBits() / 8, 0));
    for (Bytes &block : data)
        for (u8 &byte : block)
            byte = static_cast<u8>(rng.nextBelow(256));

    BchPoint p;
    Bytes codeword(code.codewordBytes(), 0);

    // --- encode ---
    double t0 = now();
    for (const Bytes &block : data) {
        BitVec bits = unpackBits(block,
                                 static_cast<std::size_t>(
                                     code.dataBits()));
        BitVec cw = code.encodeReference(bits);
        (void)cw;
    }
    p.referenceEncodeSeconds = now() - t0;

    t0 = now();
    for (const Bytes &block : data)
        code.encodeBytes(block.data(), codeword.data());
    p.packedEncodeSeconds = now() - t0;

    // --- decode (t injected errors per block) ---
    std::vector<Bytes> corrupted(blocks);
    for (int b = 0; b < blocks; ++b) {
        code.encodeBytes(data[static_cast<std::size_t>(b)].data(),
                         codeword.data());
        Bytes cw = codeword;
        for (int e = 0; e < t; ++e) {
            u64 bit = rng.nextBelow(
                static_cast<u64>(code.codewordBits()));
            cw[bit / 8] ^= static_cast<u8>(0x80u >> (bit % 8));
        }
        corrupted[static_cast<std::size_t>(b)] = std::move(cw);
    }

    t0 = now();
    for (const Bytes &cw : corrupted) {
        BitVec bits = unpackBits(
            cw, static_cast<std::size_t>(code.codewordBits()));
        auto result = code.decodeReference(bits);
        (void)result;
    }
    p.referenceDecodeSeconds = now() - t0;

    t0 = now();
    for (Bytes cw : corrupted) {
        auto result = code.decodeBytes(cw.data());
        (void)result;
    }
    p.packedDecodeSeconds = now() - t0;

    p.encodeSpeedup = p.packedEncodeSeconds > 0
                          ? p.referenceEncodeSeconds /
                                p.packedEncodeSeconds
                          : 0;
    p.decodeSpeedup = p.packedDecodeSeconds > 0
                          ? p.referenceDecodeSeconds /
                                p.packedDecodeSeconds
                          : 0;
    return p;
}

bool
checkDeterminism(const Video &source)
{
    PreparedVideo prepared = prepareVideo(
        source, EncoderConfig{}, EccAssignment::paperTable1());
    ModeledChannel channel(kPcmRawBer);

    setThreadCount(1);
    Rng rng_seq(777);
    StorageOutcome sequential =
        storeAndRetrieve(prepared, channel, rng_seq);

    setThreadCount(4);
    Rng rng_par(777);
    StorageOutcome parallel =
        storeAndRetrieve(prepared, channel, rng_par);

    setThreadCount(0);
    return sameOutcome(sequential, parallel);
}

/** Output path: VIDEOAPP_BENCH_OUT or BENCH_pipeline.json in cwd. */
std::string
outputPath()
{
    if (const char *out = std::getenv("VIDEOAPP_BENCH_OUT"))
        return out;
    return "BENCH_pipeline.json";
}

bool
writeJson(const BenchConfig &config,
          const std::vector<ThreadPoint> &points, const BchPoint &bch,
          bool deterministic)
{
    const std::string path = outputPath();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr,
                     "error: cannot write bench results to '%s': %s\n"
                     "(set VIDEOAPP_BENCH_OUT to a writable path)\n",
                     path.c_str(), std::strerror(errno));
        return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"perf_pipeline\",\n");
    std::fprintf(f,
                 "  \"config\": {\"scale\": %.3f, \"runs\": %d, "
                 "\"videos\": %d},\n",
                 config.scale, config.runs, config.videos);
    std::fprintf(f, "  \"simd_level\": \"%s\",\n",
                 simd::simdLevelName(simd::simdActiveLevel()));
    std::fprintf(f, "  \"threads\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ThreadPoint &p = points[i];
        std::fprintf(
            f,
            "    {\"threads\": %d, \"prepare_s\": %.6f, "
            "\"store_retrieve_s\": %.6f, "
            "\"mbit_per_s\": %.3f, \"speedup\": %.3f, "
            "\"prepare_mb_per_s\": %.3f, "
            "\"prepare_frames_per_s\": %.3f, "
            "\"store_retrieve_mb_per_s\": %.3f, "
            "\"payload_bits\": %llu, \"parity_bits\": %llu}%s\n",
            p.threads, p.prepareSeconds, p.storeRetrieveSeconds,
            p.mbitPerSecond, p.speedup, p.prepareMbPerSecond,
            p.prepareFramesPerSecond, p.storeRetrieveMbPerSecond,
            static_cast<unsigned long long>(p.payloadBits),
            static_cast<unsigned long long>(p.parityBits),
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"bch_single_thread\": {\"reference_encode_s\": %.6f, "
        "\"packed_encode_s\": %.6f, \"encode_speedup\": %.3f, "
        "\"reference_decode_s\": %.6f, \"packed_decode_s\": %.6f, "
        "\"decode_speedup\": %.3f},\n",
        bch.referenceEncodeSeconds, bch.packedEncodeSeconds,
        bch.encodeSpeedup, bch.referenceDecodeSeconds,
        bch.packedDecodeSeconds, bch.decodeSpeedup);
    std::fprintf(f,
                 "  \"parallel_equals_sequential\": %s,\n",
                 deterministic ? "true" : "false");
    std::string telemetry =
        telemetry::globalRegistry().snapshotJson(2);
    std::fprintf(f, "  \"telemetry\": %s\n}\n", telemetry.c_str());
    if (std::fclose(f) != 0) {
        std::fprintf(stderr, "error: failed to flush '%s': %s\n",
                     path.c_str(), std::strerror(errno));
        return false;
    }
    return true;
}

bool
run(const BenchConfig &config)
{
    // Counters must reflect this bench run only (and be comparable
    // against the committed baseline), so start from zero.
    telemetry::globalRegistry().resetAll();

    Video source = generateSynthetic(config.suite()[0]);

    std::printf("simd level: %s\n\n",
                simd::simdLevelName(simd::simdActiveLevel()));
    std::printf("%-8s %12s %11s %18s %12s %9s\n", "threads",
                "prepare (s)", "prep MB/s", "store+retrieve (s)",
                "Mbit/s", "speedup");
    std::vector<ThreadPoint> points = benchPipeline(config, source);
    for (const ThreadPoint &p : points)
        std::printf("%-8d %12.3f %11.2f %18.3f %12.2f %8.2fx\n",
                    p.threads, p.prepareSeconds, p.prepareMbPerSecond,
                    p.storeRetrieveSeconds, p.mbitPerSecond,
                    p.speedup);

    BchPoint bch = benchBch();
    std::printf("\nBCH-6 single-thread codec (1500 blocks):\n"
                "  encode: reference %.3f s, packed %.3f s "
                "(%.2fx)\n"
                "  decode: reference %.3f s, packed %.3f s "
                "(%.2fx)\n",
                bch.referenceEncodeSeconds, bch.packedEncodeSeconds,
                bch.encodeSpeedup, bch.referenceDecodeSeconds,
                bch.packedDecodeSeconds, bch.decodeSpeedup);

    bool deterministic = checkDeterminism(source);
    std::printf("\nparallel == sequential outcome: %s\n",
                deterministic ? "yes" : "NO (BUG)");

    if (!writeJson(config, points, bch, deterministic))
        return false;
    std::printf("wrote %s\n", outputPath().c_str());
    return true;
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "perf: parallel pipeline and word-packed BCH hot path",
        config);
    return run(config) ? 0 : 1;
}
