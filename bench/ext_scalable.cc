/**
 * @file
 * Extension experiment (paper related work, Guo et al. comparison):
 * scalable layers as "another dimension of approximation".
 *
 * A two-layer encoding stores the base layer with VideoApp's
 * variable protection and the enhancement layer with progressively
 * weaker uniform schemes, measuring quality and density. Losing
 * enhancement bits degrades toward base quality instead of
 * catastrophic CABAC damage, so the enhancement tolerates orders of
 * magnitude weaker protection — combining the paper's within-layer
 * analysis with Guo et al.'s across-layer reliability classes.
 */

#include <cstdio>

#include "core/pipeline.h"
#include "core/svc.h"
#include "quality/psnr.h"
#include "sim/bench_config.h"
#include "storage/error_injector.h"

namespace videoapp {
namespace {

void
run(const BenchConfig &config)
{
    SyntheticSpec spec = config.suite()[0];
    Video source = generateSynthetic(spec);
    ScalableEncodeResult layers =
        encodeScalable(source, ScalableConfig::forQuality(20));

    Video clean = decodeScalable(layers.base.video,
                                 &layers.enhancement.video);
    double psnr_clean = psnrVideo(source, clean);
    Video base_only = decodeScalable(layers.base.video, nullptr);
    double psnr_base = psnrVideo(source, base_only);
    std::printf("clean two-layer PSNR %.2f dB; base-only %.2f dB\n\n",
                psnr_clean, psnr_base);

    u64 base_bits = layers.base.video.payloadBits();
    u64 enh_bits = layers.enhancement.video.payloadBits();
    std::printf("base %llu bits, enhancement %llu bits\n\n",
                static_cast<unsigned long long>(base_bits),
                static_cast<unsigned long long>(enh_bits));

    // Base protected variably (Table 1 class); enhancement swept
    // across uniform schemes from precise down to nothing.
    std::printf("%-22s %16s %14s\n", "enhancement ECC",
                "cells/pixel", "PSNR (dB)");
    for (int t : {16, 8, 4, 2, 0}) {
        EccScheme enh_scheme{t};
        double psnr_total = 0;
        for (int r = 0; r < config.runs; ++r) {
            Rng rng(9500 + static_cast<u64>(r));
            // Base: strong protection -> effectively clean.
            EncodedVideo base = layers.base.video;
            EncodedVideo enh = layers.enhancement.video;
            for (auto &payload : enh.payloads)
                injectErrorsProtected(payload, enh_scheme,
                                      kPcmRawBer, rng);
            Video decoded = decodeScalable(base, &enh);
            psnr_total += psnrVideo(source, decoded);
        }

        StorageAccountant acc(3);
        acc.addStream(base_bits, EccScheme{10}); // strongest Table-1
        acc.addStream(enh_bits, enh_scheme);
        acc.addPreciseBits(layers.base.video.headerBits() +
                           layers.enhancement.video.headerBits());
        std::printf("%-22s %16.4f %14.2f\n",
                    enh_scheme.name().c_str(),
                    acc.cellsPerPixel(source.pixelCount()),
                    psnr_total / config.runs);
    }

    std::printf("\n(Weakening the enhancement layer's protection "
                "buys density with bounded, graceful quality cost — "
                "the across-layer approximation dimension the paper "
                "says its method extends to.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Extension: scalable layers as a second approximation "
        "dimension",
        config);
    run(config);
    return 0;
}
