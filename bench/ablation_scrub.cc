/**
 * @file
 * Substrate ablation: scrubbing (refresh) interval of the MLC PCM.
 *
 * The paper adopts Guo et al.'s substrate tuned for a 3-month scrub
 * interval (raw BER 1e-3). Resistance drift grows with log time, so
 * longer retention raises the raw error rate and forces stronger
 * protection; shorter scrubbing buys density at the cost of refresh
 * traffic. This bench maps that retention/density trade-off with
 * the cell model and the calibrated assignment machinery.
 */

#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "core/pipeline.h"
#include "sim/bench_config.h"
#include "storage/dram.h"
#include "storage/pcm.h"

namespace videoapp {
namespace {

void
run(const BenchConfig &config)
{
    McPcm pcm; // calibrated: 1e-3 at the 3-month design point

    std::printf("%-16s %14s %22s %20s\n", "scrub interval",
                "raw BER", "weakest scheme@1e-6", "overhead");
    struct Point
    {
        const char *label;
        double seconds;
    };
    for (const Point &p :
         {Point{"1 hour", 3600.0}, Point{"1 day", 86400.0},
          Point{"1 week", 7 * 86400.0}, Point{"1 month", 30 * 86400.0},
          Point{"3 months", kDefaultScrubSeconds},
          Point{"1 year", 365.0 * 86400},
          Point{"5 years", 5 * 365.0 * 86400}}) {
        double raw = pcm.rawBitErrorRate(p.seconds);
        EccScheme needed = weakestSchemeFor(1e-6, raw);
        std::printf("%-16s %14.3e %22s %19.1f%%\n", p.label, raw,
                    needed.name().c_str(), 100.0 * needed.overhead());
    }

    // End-to-end: density/quality of the variable design at three
    // retention targets, reusing one prepared video.
    SyntheticSpec spec = config.suite()[0];
    Video source = generateSynthetic(spec);
    PreparedVideo prepared = prepareVideo(
        source, EncoderConfig{}, EccAssignment::paperTable1());

    std::printf("\n%-16s %16s %14s\n", "scrub interval",
                "cells/pixel", "PSNR vs clean");
    for (const Point &p :
         {Point{"1 week", 7 * 86400.0},
          Point{"3 months", kDefaultScrubSeconds},
          Point{"1 year", 365.0 * 86400}}) {
        double raw = pcm.rawBitErrorRate(p.seconds);
        ModeledChannel channel(raw);
        // Runs already use independent per-run seeds; execute them
        // on the pool and reduce PSNRs in run order.
        const std::size_t runs =
            static_cast<std::size_t>(config.runs);
        std::vector<double> run_psnr(runs, 0.0);
        StorageOutcome outcome;
        parallelFor(runs, [&](std::size_t r) {
            Rng rng(8800 + static_cast<u64>(r));
            StorageOutcome o =
                storeAndRetrieve(prepared, channel, rng);
            run_psnr[r] = o.psnrVsReference;
            if (r + 1 == runs) // density identical across runs
                outcome = std::move(o);
        });
        double total = 0;
        for (double psnr : run_psnr)
            total += psnr;
        std::printf("%-16s %16.4f %14.2f\n", p.label,
                    outcome.cellsPerPixel, total / config.runs);
    }
    std::printf("\n(Protection fixed at the 3-month calibration: "
                "shorter scrubbing leaves quality headroom, longer "
                "retention erodes it — the knob Guo et al. tuned "
                "and the paper inherited.)\n");

    // The MLC design trade-off (Section 2.2): level count vs raw
    // error rate at the same physical noise, and the ECC needed to
    // bring each back to the 1e-6 class.
    std::printf("\nLevels per cell vs reliability (same physical "
                "noise, 3-month scrub):\n\n");
    std::printf("%-12s %10s %14s %22s %14s\n", "levels",
                "bits/cell", "raw BER", "scheme for 1e-6",
                "net density");
    for (int bits = 1; bits <= 4; ++bits) {
        double raw =
            pcm.rawBitErrorRateForLevels(bits, kDefaultScrubSeconds);
        EccScheme needed = weakestSchemeFor(1e-6, raw);
        bool achievable =
            needed.effectiveBitErrorRate(raw) <= 1e-6;
        if (achievable) {
            double net = bits / (1.0 + needed.overhead());
            std::printf("%-12d %10d %14.3e %22s %13.2fx\n",
                        1 << bits, bits, raw,
                        needed.name().c_str(), net);
        } else {
            std::printf("%-12d %10d %14.3e %22s %14s\n", 1 << bits,
                        bits, raw, "(unprotectable)", "-");
        }
    }
    std::printf("\n(8 levels with ECC beats both the reliable SLC "
                "and the unprotectable 16-level point — the sweet "
                "spot the paper's substrate sits on.)\n");

    // Related-work substrate (Flikker/Sparkk): refresh-approximated
    // DRAM, where the knob is refresh power instead of cell density.
    ApproxDram dram;
    std::printf("\nApproximate DRAM (related work): refresh "
                "interval vs error rate and refresh power:\n\n");
    std::printf("%-16s %14s %16s %14s\n", "refresh", "raw BER",
                "refresh power", "PSNR@Table-1");
    for (const Point &p :
         {Point{"64 ms (JEDEC)", 0.064}, Point{"1 s", 1.0},
          Point{"10 s", 10.0}, Point{"100 s", 100.0}}) {
        double raw = dram.bitErrorRate(p.seconds);
        ModeledChannel channel(raw);
        const std::size_t runs =
            static_cast<std::size_t>(config.runs);
        std::vector<double> run_psnr(runs, 0.0);
        parallelFor(runs, [&](std::size_t r) {
            Rng rng(8900 + static_cast<u64>(r));
            run_psnr[r] = storeAndRetrieve(prepared, channel, rng)
                              .psnrVsReference;
        });
        double total = 0;
        for (double psnr : run_psnr)
            total += psnr;
        std::printf("%-16s %14.3e %15.4f%% %14.2f\n", p.label, raw,
                    100.0 * dram.refreshPowerFraction(p.seconds),
                    total / config.runs);
    }
    std::printf("\n(At 100 s refresh — 0.06%% of standard refresh "
                "power — the importance-partitioned protection "
                "still holds quality, the Flikker-style trade "
                "driven by VideoApp's analysis.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Substrate ablation: PCM scrub interval vs density/quality",
        config);
    run(config);
    return 0;
}
