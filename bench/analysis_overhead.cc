/**
 * @file
 * Section 4.3.1: time and space overheads of the VideoApp analysis.
 *
 * The paper reports a 2-3% time overhead relative to encoding
 * (topological sort dominating) and graph structures an order of
 * magnitude smaller than the raw video. Uses google-benchmark for
 * the timing comparison.
 */

#include <benchmark/benchmark.h>

#include "codec/encoder.h"
#include "core/pipeline.h"
#include "graph/importance.h"
#include "sim/bench_config.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

const Video &
benchVideo()
{
    static const Video video = [] {
        BenchConfig config = BenchConfig::fromEnv();
        return generateSynthetic(config.suite()[0]);
    }();
    return video;
}

const EncodeResult &
benchEncoding()
{
    static const EncodeResult enc =
        encodeVideo(benchVideo(), EncoderConfig{});
    return enc;
}

void
BM_Encode(benchmark::State &state)
{
    const Video &video = benchVideo();
    for (auto _ : state) {
        EncodeResult result = encodeVideo(video, EncoderConfig{});
        benchmark::DoNotOptimize(result.video.payloadBits());
    }
}
BENCHMARK(BM_Encode)->Unit(benchmark::kMillisecond);

void
BM_ImportanceAnalysis(benchmark::State &state)
{
    const EncodeResult &enc = benchEncoding();
    for (auto _ : state) {
        ImportanceMap map = computeImportance(enc.side, enc.video);
        benchmark::DoNotOptimize(map.maxImportance());
    }
}
BENCHMARK(BM_ImportanceAnalysis)->Unit(benchmark::kMillisecond);

void
BM_PivotsAndPartition(benchmark::State &state)
{
    const EncodeResult &enc = benchEncoding();
    ImportanceMap importance =
        computeImportance(enc.side, enc.video);
    for (auto _ : state) {
        EncodedVideo video = enc.video;
        assignPivots(video, enc.side, importance,
                     EccAssignment::paperTable1());
        StreamSet streams = extractStreams(video);
        benchmark::DoNotOptimize(streams.data.size());
    }
}
BENCHMARK(BM_PivotsAndPartition)->Unit(benchmark::kMillisecond);

/** Cost of each encoder feature relative to the full configuration. */
void
BM_EncodeFeature(benchmark::State &state)
{
    const Video &video = benchVideo();
    EncoderConfig config;
    switch (state.range(0)) {
      case 0: break; // full defaults
      case 1: config.subPel = SubPel::Full; break;
      case 2: config.subPel = SubPel::Half; break;
      case 3: config.intra4x4 = false; break;
      case 4: config.deblocking = false; break;
      case 5: config.partitionSearch = false; break;
      case 6: config.subPartitions = false; break;
      case 7: config.entropy = EntropyKind::CAVLC; break;
    }
    for (auto _ : state) {
        EncodeResult result = encodeVideo(video, config);
        benchmark::DoNotOptimize(result.video.payloadBits());
    }
    static const char *names[] = {
        "full",    "no-subpel",     "half-pel",     "no-intra4",
        "no-deblock", "no-partitions", "no-subparts", "cavlc"};
    state.SetLabel(names[state.range(0)]);
}
BENCHMARK(BM_EncodeFeature)
    ->DenseRange(0, 7)
    ->Unit(benchmark::kMillisecond);

void
BM_Decode(benchmark::State &state)
{
    const EncodeResult &enc = benchEncoding();
    for (auto _ : state) {
        Video decoded = decodeVideo(enc.video);
        benchmark::DoNotOptimize(decoded.frames.size());
    }
}
BENCHMARK(BM_Decode)->Unit(benchmark::kMillisecond);

/** Space accounting printed once after the timing runs. */
void
BM_GraphSpaceReport(benchmark::State &state)
{
    const EncodeResult &enc = benchEncoding();
    u64 dep_bytes = 0;
    u64 dep_count = 0;
    for (const auto &frame : enc.side.frames) {
        for (const auto &mb : frame.mbs) {
            dep_count += mb.deps.size();
            dep_bytes += mb.deps.size() * sizeof(CompDepRecord) +
                         sizeof(MbRecord);
        }
    }
    u64 raw_bytes = benchVideo().pixelCount() * 3 / 2;
    u64 coded_bytes = enc.video.payloadBits() / 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(dep_bytes);
    state.counters["graph_MB"] =
        static_cast<double>(dep_bytes) / (1 << 20);
    state.counters["raw_video_MB"] =
        static_cast<double>(raw_bytes) / (1 << 20);
    state.counters["coded_MB"] =
        static_cast<double>(coded_bytes) / (1 << 20);
    state.counters["graph_vs_raw"] =
        static_cast<double>(dep_bytes) / raw_bytes;
    state.counters["edges"] = static_cast<double>(dep_count);
}
BENCHMARK(BM_GraphSpaceReport)->Iterations(1);

} // namespace
} // namespace videoapp

BENCHMARK_MAIN();
