/**
 * @file
 * Performance of the VAPP archive service (not a paper figure — an
 * engineering bench for the persistent store built on the paper's
 * storage model).
 *
 * Measurements, written to BENCH_archive.json:
 *  1. put / get(inject 1e-3) / scrub(age 1e-3) wall time at 1/2/4/8
 *     pool threads over a small multi-video archive, with payload
 *     throughput and speedup vs 1 thread.
 *  2. hard output counts per row: stored payload/cell bytes and the
 *     scrub repair totals, which are deterministic for a fixed
 *     config and seed at any thread count.
 *  3. two correctness flags: put -> flush -> reopen -> get
 *     reproduces the stored bitstreams exactly (round_trip_exact),
 *     and the 4-thread run leaves the identical archive and repair
 *     counts as the 1-thread run (parallel_equals_sequential).
 *
 * The JSON carries the bench config and a telemetry snapshot;
 * tools/check_bench_regression.py diffs it against
 * bench/baselines/BENCH_archive.baseline.json in CI.
 * VIDEOAPP_BENCH_OUT overrides the output path.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "archive/archive_service.h"
#include "common/crc32.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "sim/bench_config.h"
#include "simd/dispatch.h"

namespace videoapp {
namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct ThreadPoint
{
    int threads = 0;
    double putSeconds = 0;
    double getSeconds = 0;
    double scrubSeconds = 0;
    double mbitPerSecond = 0;
    double speedup = 0;
    // Hard-checked outputs (identical at every thread count by the
    // determinism contract).
    u64 payloadBytes = 0;
    u64 cellBytes = 0;
    u64 scrubBlocksRewritten = 0;
    u64 scrubBitsCorrected = 0;
    /** CRC of the serialized post-scrub archive (determinism). */
    u32 archiveCrc = 0;
};

std::string
scratchPath(int threads)
{
    const char *tmp = std::getenv("TMPDIR");
    return std::string(tmp ? tmp : "/tmp") + "/perf_archive_" +
           std::to_string(threads) + ".vapp";
}

std::string
benchVideoName(std::size_t i)
{
    std::string name = "video";
    name += std::to_string(i);
    return name;
}

ThreadPoint
benchOneThreadCount(int threads, int iters,
                    const std::vector<PreparedVideo> &prepared)
{
    setThreadCount(threads);
    ThreadPoint p;
    p.threads = threads;
    const std::size_t videos = prepared.size();

    ArchiveService service(scratchPath(threads));
    std::remove(service.path().c_str());
    service.open();

    double t0 = now();
    for (int it = 0; it < iters; ++it) {
        parallelFor(videos, [&](std::size_t i) {
            service.put(benchVideoName(i), prepared[i], {});
        });
    }
    p.putSeconds = now() - t0;

    u64 get_bits = 0;
    t0 = now();
    for (int it = 0; it < iters; ++it) {
        std::vector<u64> bits(videos, 0);
        parallelFor(videos, [&](std::size_t i) {
            ArchiveGetOptions options;
            options.injectRawBer = 1e-3;
            options.seed = static_cast<u64>(it) * 100 + i;
            ArchiveGetResult got =
                service.get(benchVideoName(i), options);
            for (const auto &[t, data] : got.streams.data)
                bits[i] += data.size() * 8;
        });
        for (u64 b : bits)
            get_bits += b;
    }
    p.getSeconds = now() - t0;
    p.mbitPerSecond =
        p.getSeconds > 0
            ? static_cast<double>(get_bits) / p.getSeconds / 1e6
            : 0;

    t0 = now();
    for (int it = 0; it < iters; ++it) {
        ScrubOptions age;
        age.ageRawBer = 1e-3;
        age.seed = static_cast<u64>(it);
        ScrubReport report = service.scrub(age);
        p.scrubBlocksRewritten += report.blocksRewritten;
        p.scrubBitsCorrected += report.cells.bitsCorrected;
    }
    p.scrubSeconds = now() - t0;

    for (const ArchiveVideoStat &s : service.stat()) {
        p.payloadBytes += s.payloadBytes;
        p.cellBytes += s.cellBytes;
    }
    service.flush();
    Archive on_disk;
    if (readArchive(service.path(), on_disk) == ArchiveError::None)
        p.archiveCrc = crc32(serializeArchive(on_disk));
    std::remove(service.path().c_str());
    setThreadCount(0);
    return p;
}

/** put -> flush -> reopen -> get reproduces the exact bitstreams. */
bool
checkRoundTripExact(const std::vector<PreparedVideo> &prepared)
{
    std::string path = scratchPath(0);
    std::remove(path.c_str());
    {
        ArchiveService service(path);
        if (service.open() != ArchiveError::None)
            return false;
        for (std::size_t i = 0; i < prepared.size(); ++i)
            service.put(benchVideoName(i), prepared[i], {});
        if (service.flush() != ArchiveError::None)
            return false;
    }
    ArchiveService service(path);
    if (service.open(false) != ArchiveError::None)
        return false;
    bool exact = true;
    for (std::size_t i = 0; i < prepared.size(); ++i) {
        ArchiveGetResult got = service.get(benchVideoName(i));
        if (got.error != ArchiveError::None ||
            got.streams.data != prepared[i].streams.data)
            exact = false;
    }
    std::remove(path.c_str());
    return exact;
}

std::string
outputPath()
{
    if (const char *out = std::getenv("VIDEOAPP_BENCH_OUT"))
        return out;
    return "BENCH_archive.json";
}

bool
writeJson(const BenchConfig &config,
          const std::vector<ThreadPoint> &points,
          bool round_trip_exact, bool deterministic)
{
    const std::string path = outputPath();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr,
                     "error: cannot write bench results to '%s': %s\n"
                     "(set VIDEOAPP_BENCH_OUT to a writable path)\n",
                     path.c_str(), std::strerror(errno));
        return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"perf_archive\",\n");
    std::fprintf(f,
                 "  \"config\": {\"scale\": %.3f, \"runs\": %d, "
                 "\"videos\": %d},\n",
                 config.scale, config.runs, config.videos);
    std::fprintf(f, "  \"simd_level\": \"%s\",\n",
                 simd::simdLevelName(simd::simdActiveLevel()));
    std::fprintf(f, "  \"threads\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ThreadPoint &p = points[i];
        std::fprintf(
            f,
            "    {\"threads\": %d, \"put_s\": %.6f, "
            "\"get_s\": %.6f, \"scrub_s\": %.6f, "
            "\"mbit_per_s\": %.3f, \"speedup\": %.3f, "
            "\"payload_bytes\": %llu, \"cell_bytes\": %llu, "
            "\"scrub_blocks_rewritten\": %llu, "
            "\"scrub_bits_corrected\": %llu}%s\n",
            p.threads, p.putSeconds, p.getSeconds, p.scrubSeconds,
            p.mbitPerSecond, p.speedup,
            static_cast<unsigned long long>(p.payloadBytes),
            static_cast<unsigned long long>(p.cellBytes),
            static_cast<unsigned long long>(p.scrubBlocksRewritten),
            static_cast<unsigned long long>(p.scrubBitsCorrected),
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"round_trip_exact\": %s,\n",
                 round_trip_exact ? "true" : "false");
    std::fprintf(f, "  \"parallel_equals_sequential\": %s,\n",
                 deterministic ? "true" : "false");
    std::string telemetry =
        telemetry::globalRegistry().snapshotJson(2);
    std::fprintf(f, "  \"telemetry\": %s\n}\n", telemetry.c_str());
    if (std::fclose(f) != 0) {
        std::fprintf(stderr, "error: failed to flush '%s': %s\n",
                     path.c_str(), std::strerror(errno));
        return false;
    }
    return true;
}

bool
run(const BenchConfig &config)
{
    telemetry::globalRegistry().resetAll();

    const std::size_t videos = static_cast<std::size_t>(
        std::max(2, config.videos));
    const int iters = std::max(2, config.runs);
    auto suite = standardSuite(config.scale);
    std::vector<PreparedVideo> prepared;
    prepared.reserve(videos);
    for (std::size_t i = 0; i < videos; ++i) {
        Video source = generateSynthetic(suite[i % suite.size()]);
        prepared.push_back(prepareVideo(
            source, EncoderConfig{}, EccAssignment::paperTable1()));
    }

    std::printf("%-8s %9s %9s %9s %10s %9s\n", "threads",
                "put (s)", "get (s)", "scrub (s)", "Mbit/s",
                "speedup");
    std::vector<ThreadPoint> points;
    for (int n : {1, 2, 4, 8})
        points.push_back(benchOneThreadCount(n, iters, prepared));
    for (ThreadPoint &p : points) {
        const ThreadPoint &base = points.front();
        double total =
            p.putSeconds + p.getSeconds + p.scrubSeconds;
        double base_total = base.putSeconds + base.getSeconds +
                            base.scrubSeconds;
        p.speedup = total > 0 ? base_total / total : 0;
        std::printf("%-8d %9.3f %9.3f %9.3f %10.2f %8.2fx\n",
                    p.threads, p.putSeconds, p.getSeconds,
                    p.scrubSeconds, p.mbitPerSecond, p.speedup);
    }

    bool deterministic = true;
    for (const ThreadPoint &p : points) {
        const ThreadPoint &base = points.front();
        if (p.archiveCrc != base.archiveCrc ||
            p.payloadBytes != base.payloadBytes ||
            p.cellBytes != base.cellBytes ||
            p.scrubBlocksRewritten != base.scrubBlocksRewritten ||
            p.scrubBitsCorrected != base.scrubBitsCorrected)
            deterministic = false;
    }
    std::printf("\nparallel == sequential archive: %s\n",
                deterministic ? "yes" : "NO (BUG)");

    bool round_trip_exact = checkRoundTripExact(prepared);
    std::printf("put -> reopen -> get bit-exact: %s\n",
                round_trip_exact ? "yes" : "NO (BUG)");

    if (!writeJson(config, points, round_trip_exact, deterministic))
        return false;
    std::printf("wrote %s\n", outputPath().c_str());
    return round_trip_exact && deterministic;
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "perf: VAPP archive service (put/get/scrub)", config);
    return run(config) ? 0 : 1;
}
