/**
 * @file
 * Section 3 validation: how far a single bit flip propagates, and
 * how well VideoApp's importance predicts the damage.
 *
 * For a sample of MBs, flips one bit, decodes, counts damaged MBs
 * and damaged frames, and correlates the measured damage with the
 * MB's computed importance (the paper's premise that importance ~
 * damaged area ~ quality loss). Also demonstrates the paper's
 * motivating observation that one flip can damage a large stretch
 * of video (100-300 frames at 720p; proportionally here).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "graph/importance.h"
#include "sim/bench_config.h"

namespace videoapp {
namespace {

/** Count MBs whose luma differs between two videos, per frame. */
std::pair<u64, int>
countDamage(const Video &a, const Video &b)
{
    u64 damaged_mbs = 0;
    int damaged_frames = 0;
    int mbw = a.width() / kMbSize, mbh = a.height() / kMbSize;
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
        bool frame_dirty = false;
        for (int mby = 0; mby < mbh; ++mby) {
            for (int mbx = 0; mbx < mbw; ++mbx) {
                bool dirty = false;
                for (int y = 0; y < kMbSize && !dirty; ++y)
                    for (int x = 0; x < kMbSize && !dirty; ++x)
                        dirty = a.frames[f].y().at(mbx * 16 + x,
                                                   mby * 16 + y) !=
                                b.frames[f].y().at(mbx * 16 + x,
                                                   mby * 16 + y);
                damaged_mbs += dirty;
                frame_dirty |= dirty;
            }
        }
        damaged_frames += frame_dirty;
    }
    return {damaged_mbs, damaged_frames};
}

void
run(const BenchConfig &config)
{
    SyntheticSpec spec = config.suite()[0];
    Video source = generateSynthetic(spec);
    EncoderConfig enc_config;
    enc_config.gop.gopSize = std::max(24, spec.frames);
    EncodeResult enc = encodeVideo(source, enc_config);
    ImportanceMap importance =
        computeImportance(enc.side, enc.video);
    Video clean = decodeVideo(enc.video);

    // Each sample is an independent flip/decode/count trial: child
    // seeds are split from the master generator up front (one draw
    // per sample), the trials run on the thread pool, and the
    // aggregation below walks the results in sample order — so the
    // output is identical at any thread count.
    struct Sample
    {
        bool valid = false;
        std::size_t f = 0, m = 0;
        double imp = 0;
        u64 damagedMbs = 0;
        int damagedFrames = 0;
    };
    const std::size_t samples = 40;
    Rng rng(99);
    std::vector<u64> seeds(samples);
    for (u64 &s : seeds)
        s = rng.next();

    std::vector<Sample> results(samples);
    parallelFor(samples, [&](std::size_t s) {
        Rng sample_rng(seeds[s]);
        std::size_t f =
            sample_rng.nextBelow(enc.side.frames.size());
        const auto &mbs = enc.side.frames[f].mbs;
        std::size_t m = sample_rng.nextBelow(mbs.size());
        if (mbs[m].bitLength == 0)
            return;

        EncodedVideo corrupted = enc.video;
        u64 bit = mbs[m].bitOffset +
                  sample_rng.nextBelow(mbs[m].bitLength);
        flipBit(corrupted.payloads[f], bit);
        Video decoded = decodeVideo(corrupted);
        auto [damaged_mbs, damaged_frames] =
            countDamage(clean, decoded);

        Sample &out = results[s];
        out.valid = true;
        out.f = f;
        out.m = m;
        out.imp = importance.values[f][m];
        out.damagedMbs = damaged_mbs;
        out.damagedFrames = damaged_frames;
    });

    std::vector<double> log_importance, log_damage;
    u64 max_damaged_mbs = 0;
    int max_damaged_frames = 0;
    std::printf("%-8s %-6s %14s %14s %14s\n", "frame", "mb",
                "importance", "damaged MBs", "damaged frames");
    for (std::size_t s = 0; s < samples; ++s) {
        const Sample &r = results[s];
        if (!r.valid)
            continue;
        max_damaged_mbs = std::max(max_damaged_mbs, r.damagedMbs);
        max_damaged_frames =
            std::max(max_damaged_frames, r.damagedFrames);
        if (r.damagedMbs > 0) {
            log_importance.push_back(std::log2(r.imp));
            log_damage.push_back(
                std::log2(static_cast<double>(r.damagedMbs)));
        }
        if (s < 12)
            std::printf(
                "%-8zu %-6zu %14.1f %14llu %14d\n", r.f, r.m,
                r.imp,
                static_cast<unsigned long long>(r.damagedMbs),
                r.damagedFrames);
    }

    // Pearson correlation in log space.
    double corr = 0;
    if (log_importance.size() > 2) {
        double mx = 0, my = 0;
        for (std::size_t i = 0; i < log_importance.size(); ++i) {
            mx += log_importance[i];
            my += log_damage[i];
        }
        mx /= log_importance.size();
        my /= log_damage.size();
        double sxy = 0, sxx = 0, syy = 0;
        for (std::size_t i = 0; i < log_importance.size(); ++i) {
            double dx = log_importance[i] - mx;
            double dy = log_damage[i] - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        corr = sxy / std::sqrt(sxx * syy + 1e-12);
    }

    std::printf("\nWorst single flip damaged %llu MBs across %d of "
                "%zu frames (paper: one flip can damage 100-300 "
                "frames at 720p).\n",
                static_cast<unsigned long long>(max_damaged_mbs),
                max_damaged_frames, source.frames.size());
    std::printf("log-log correlation(importance, damaged MBs) = "
                "%.3f over %zu samples (paper: importance tracks "
                "damaged area).\n",
                corr, log_importance.size());
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner(
        "Section 3: single-bit-flip propagation vs. predicted "
        "importance",
        config);
    run(config);
    return 0;
}
