/**
 * @file
 * Section 8 ablation: slices per frame. Each slice gets its own
 * entropy context and prediction barrier, cutting coding-error
 * propagation at slice boundaries at the cost of extra bits. More
 * slices -> lower peak importance -> weaker ECC suffices -> denser
 * payload storage, but a larger bitstream and more precise header
 * bytes. The paper deliberately uses one slice per frame to stay
 * conservative and notes slicing would push the variable curve
 * toward the ideal one.
 *
 * Each slicing configuration is recalibrated with the Section 7.2
 * optimiser (importance distributions change with slicing, so a
 * fixed threshold table would mis-protect).
 */

#include <algorithm>
#include <cstdio>

#include "core/pipeline.h"
#include "graph/importance.h"
#include "sim/bench_config.h"
#include "sim/calibrate.h"

namespace videoapp {
namespace {

void
run(const BenchConfig &config)
{
    SyntheticSpec spec = config.suite()[0];
    Video source = generateSynthetic(spec);

    std::printf("%-8s %14s %16s %15s %17s %12s\n", "slices",
                "payload bits", "max importance", "ECC overhead",
                "payload cells/px", "PSNR@1e-3");

    for (int slices : {1, 2, 4}) {
        EncoderConfig enc_config;
        enc_config.slicesPerFrame = slices;

        EccAssignment assignment = calibrateAssignment(
            {spec}, enc_config, config.runs, 0.3,
            6100 + static_cast<u64>(slices));
        PreparedVideo prepared =
            prepareVideo(source, enc_config, assignment);

        // Payload-only accounting isolates the ECC effect from the
        // (scale-dependent) header cost.
        StorageAccountant acc(3);
        for (const auto &[t, data] : prepared.streams.data)
            acc.addStream(data.size() * 8, EccScheme{t});

        ModeledChannel channel(kPcmRawBer);
        double total_psnr = 0;
        for (int run = 0; run < config.runs; ++run) {
            Rng rng(6000 + static_cast<u64>(run));
            StorageOutcome outcome =
                storeAndRetrieve(prepared, channel, rng);
            total_psnr += outcome.psnrVsReference;
        }

        std::printf("%-8d %14llu %16.1f %14.1f%% %17.4f %12.2f\n",
                    slices,
                    static_cast<unsigned long long>(
                        prepared.enc.video.payloadBits()),
                    prepared.importance.maxImportance(),
                    100.0 * acc.eccOverheadFraction(),
                    acc.cellsPerPixel(source.pixelCount()),
                    total_psnr / config.runs);
    }
    std::printf("\n(More slices cut the coding chains: peak "
                "importance falls, the calibrated assignment "
                "weakens, and payload density moves toward the "
                "ideal curve — while the payload itself grows "
                "slightly, the Section 8 trade-off.)\n");
}

} // namespace
} // namespace videoapp

int
main()
{
    using namespace videoapp;
    BenchConfig config = BenchConfig::fromEnv();
    printBenchBanner("Section 8 ablation: slices per frame", config);
    run(config);
    return 0;
}
