/**
 * @file
 * Full-stack integration tests: the complete paper pipeline with
 * nothing modeled away — real video encode, real importance
 * analysis, real pivots and stream partitioning, AES-CTR
 * encryption, real GF(2^10) BCH encoding, cell-level MLC PCM noise
 * with drift, BCH syndrome decoding, decryption, reassembly, video
 * decode, and the quality metrics. If any layer lies about its
 * contract, this is where it surfaces.
 */

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "quality/metrics.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

class FullStack : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        source_ = generateSynthetic(tinySpec(111));
        EncoderConfig config;
        config.gop.gopSize = 10;
        config.gop.bFrames = 2;
        prepared_ = prepareVideo(source_, config,
                                 EccAssignment::paperTable1());
    }

    Video source_;
    PreparedVideo prepared_;
};

TEST_F(FullStack, RealBchOnCellLevelPcmAtScrubInterval)
{
    McPcm pcm;
    RealBchChannel channel(pcm, kDefaultScrubSeconds);
    Rng rng(1);
    StorageOutcome outcome =
        storeAndRetrieve(prepared_, channel, rng);
    // Table-1 protection on a 1e-3 substrate: the payload survives
    // essentially intact (None-class bits may flip, so allow small
    // loss but demand high fidelity).
    EXPECT_GT(outcome.psnrVsReference, 38.0);
    EXPECT_GT(outcome.cellsPerPixel, 0.0);

    QualityReport report =
        measureQuality(source_, outcome.decoded, true);
    EXPECT_GT(report.ssim, 0.9);
    EXPECT_GT(report.msssim, 0.9);
}

TEST_F(FullStack, EncryptedRealBchPipeline)
{
    McPcm pcm;
    RealBchChannel channel(pcm, kDefaultScrubSeconds);
    EncryptionConfig enc_config;
    enc_config.mode = CipherMode::CTR;
    enc_config.key = Bytes(32, 0x5F); // AES-256
    enc_config.masterIv[3] = 0x9C;

    Rng rng(2);
    StorageOutcome outcome =
        storeAndRetrieve(prepared_, channel, rng, enc_config);
    EXPECT_GT(outcome.psnrVsReference, 38.0);
}

TEST_F(FullStack, ModeledChannelAgreesWithRealStack)
{
    // The fast modeled channel used by the Monte Carlo benches must
    // match the real stack's quality within noise at the design
    // point.
    McPcm pcm;
    RealBchChannel real(pcm, kDefaultScrubSeconds);
    ModeledChannel modeled(pcm.rawBitErrorRate());

    double real_total = 0, modeled_total = 0;
    const int runs = 3;
    for (int r = 0; r < runs; ++r) {
        Rng rng_a(10 + static_cast<u64>(r));
        Rng rng_b(10 + static_cast<u64>(r));
        real_total +=
            storeAndRetrieve(prepared_, real, rng_a).psnrVsReference;
        modeled_total += storeAndRetrieve(prepared_, modeled, rng_b)
                             .psnrVsReference;
    }
    // Both should be near-lossless; agree within a few dB.
    EXPECT_NEAR(real_total / runs, modeled_total / runs, 8.0);
}

TEST_F(FullStack, DensityIndependentOfChannelNoise)
{
    // Density is an accounting property; two runs with different
    // seeds must report identical cells/pixel.
    ModeledChannel channel(kPcmRawBer);
    Rng rng_a(20), rng_b(21);
    double a =
        storeAndRetrieve(prepared_, channel, rng_a).cellsPerPixel;
    double b =
        storeAndRetrieve(prepared_, channel, rng_b).cellsPerPixel;
    EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(FullStack, SerializeStoreRetrieveDecodeFromDisk)
{
    // The container round trip composed with approximate storage:
    // serialise the stream, reload it, re-derive pivots-from-header
    // partitioning, and decode.
    Bytes blob = serialize(prepared_.enc.video);
    auto reloaded = deserialize(blob);
    ASSERT_TRUE(reloaded.has_value());

    // Partition the reloaded stream purely from its headers.
    StreamSet streams = extractStreams(*reloaded);
    u64 total = 0;
    for (const auto &[t, bits] : streams.bitLength)
        total += bits;
    EXPECT_EQ(total, reloaded->payloadBits());

    EncodedVideo merged = mergeStreams(*reloaded, streams);
    Video decoded = decodeVideo(merged);
    ASSERT_EQ(decoded.frames.size(), source_.frames.size());
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_EQ(decoded.frames[i].y().data(),
                  prepared_.enc.reconFrames[i].y().data());
}

} // namespace
} // namespace videoapp
