/**
 * @file
 * Direct reconstruction tests: prediction building (intra 16x16,
 * intra 4x4 sequencing, inter with missing references), residual
 * application, clamping, and the idempotence property the encoder's
 * intra4x4 flow relies on.
 */

#include <gtest/gtest.h>

#include "codec/intra4.h"
#include "codec/reconstruct.h"
#include "codec/transform.h"
#include "common/rng.h"

namespace videoapp {
namespace {

Frame
gradientFrame(int w, int h)
{
    Frame f(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            f.y().at(x, y) = static_cast<u8>((x * 3 + y * 5) % 256);
    return f;
}

TEST(Reconstruct, ChromaQpIdentityBelow30)
{
    for (int qp = 0; qp < 30; ++qp)
        EXPECT_EQ(chromaQp(qp), qp);
}

TEST(Reconstruct, InterMbWithMissingReferencePredictsGray)
{
    Frame recon(32, 32);
    MbCoding mb;
    mb.intra = false;
    mb.qp = 26;
    MotionInfo motion;
    motion.rect = {0, 0, 16, 16};
    motion.direction = BiDirection::L0;
    mb.motions.push_back(motion);

    reconstructMb(recon, mb, 0, 0, nullptr, nullptr, MbAvail{});
    // No reference: neutral gray everywhere, no crash.
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            EXPECT_EQ(recon.y().at(x, y), 128);
}

TEST(Reconstruct, InterMbCopiesReferenceAtZeroMv)
{
    Frame ref = gradientFrame(32, 32);
    Frame recon(32, 32);
    MbCoding mb;
    mb.intra = false;
    mb.qp = 26;
    MotionInfo motion;
    motion.rect = {0, 0, 16, 16};
    mb.motions.push_back(motion);

    reconstructMb(recon, mb, 1, 1, &ref, nullptr, MbAvail{});
    for (int y = 16; y < 32; ++y)
        for (int x = 16; x < 32; ++x)
            EXPECT_EQ(recon.y().at(x, y), ref.y().at(x, y));
}

TEST(Reconstruct, ResidualShiftsPrediction)
{
    Frame ref(32, 32);
    for (auto &p : ref.y().data())
        p = 100;
    Frame recon(32, 32);
    MbCoding mb;
    mb.intra = false;
    mb.qp = 20;
    MotionInfo motion;
    motion.rect = {0, 0, 16, 16};
    mb.motions.push_back(motion);
    // A flat residual of +8 on block 0 (quantise it first so the
    // reconstruction matches the codec's arithmetic).
    Residual4x4 res{};
    res.fill(8);
    mb.coeffs[0] = forwardQuant4x4(res, mb.qp, false);
    mb.coded[0] = true;

    reconstructMb(recon, mb, 0, 0, &ref, nullptr, MbAvail{});
    // Block 0 moved up by ~8; block 1 untouched.
    EXPECT_NEAR(recon.y().at(1, 1), 108, 3);
    EXPECT_EQ(recon.y().at(5, 0), 100);
}

TEST(Reconstruct, Intra4SequencingUsesEarlierBlocks)
{
    // MB with no outside neighbours: block (0,0) predicts DC=128;
    // later blocks predict from reconstructed earlier blocks.
    Frame recon(32, 32);
    MbCoding mb;
    mb.intra = true;
    mb.intra4 = true;
    mb.qp = 26;
    for (int blk = 0; blk < 16; ++blk)
        mb.intra4Modes[blk] =
            static_cast<u8>(Intra4Mode::DC);

    reconstructIntra4Luma(recon.y(), mb, 0, 0, MbAvail{}, nullptr);
    // First block: pure 128 DC. Later blocks average reconstructed
    // neighbours, which are all 128 too.
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            EXPECT_EQ(recon.y().at(x, y), 128);
}

TEST(Reconstruct, Intra4EncoderPathIsIdempotent)
{
    // Encoder: quantise against source (fills coeffs). A second run
    // with coefficients fixed must not change a single pixel.
    Frame source = gradientFrame(32, 32);
    Frame recon(32, 32);
    MbCoding mb;
    mb.intra = true;
    mb.intra4 = true;
    mb.qp = 24;
    Rng rng(5);
    for (int blk = 0; blk < 16; ++blk)
        mb.intra4Modes[blk] = static_cast<u8>(
            rng.nextBelow(kIntra4ModeCount));

    MbAvail avail; // no neighbours
    reconstructIntra4Luma(recon.y(), mb, 1, 1, avail, &source.y());
    std::vector<u8> first = recon.y().data();

    reconstructIntra4Luma(recon.y(), mb, 1, 1, avail, nullptr);
    EXPECT_EQ(recon.y().data(), first);
}

TEST(Reconstruct, Intra16VerticalFromReconstructedNeighbour)
{
    Frame recon(32, 32);
    for (int x = 0; x < 32; ++x)
        recon.y().at(x, 15) = static_cast<u8>(x + 50);
    MbCoding mb;
    mb.intra = true;
    mb.intraMode = IntraMode::Vertical;
    mb.qp = 26;
    MbAvail avail;
    avail.up = true;
    reconstructMb(recon, mb, 0, 1, nullptr, nullptr, avail);
    for (int y = 16; y < 32; ++y)
        for (int x = 0; x < 16; ++x)
            EXPECT_EQ(recon.y().at(x, y), x + 50);
}

TEST(Reconstruct, BiPredictionAveragesReferences)
{
    Frame ref0(32, 32), ref1(32, 32);
    for (auto &p : ref0.y().data())
        p = 60;
    for (auto &p : ref1.y().data())
        p = 100;
    Frame recon(32, 32);
    MbCoding mb;
    mb.intra = false;
    mb.qp = 26;
    mb.direction = BiDirection::Bi;
    MotionInfo motion;
    motion.rect = {0, 0, 16, 16};
    motion.direction = BiDirection::Bi;
    mb.motions.push_back(motion);

    reconstructMb(recon, mb, 0, 0, &ref0, &ref1, MbAvail{});
    EXPECT_EQ(recon.y().at(4, 4), 80);
}

} // namespace
} // namespace videoapp
