/**
 * @file
 * Codec component tests: transform/quant, arithmetic coder, syntax
 * layer, GOP planning, intra/inter prediction helpers, container
 * serialisation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "codec/arith.h"
#include "codec/container.h"
#include "codec/gop.h"
#include "codec/intra.h"
#include "codec/inter.h"
#include "codec/mb_grid.h"
#include "codec/rate_control.h"
#include "codec/reconstruct.h"
#include "codec/syntax.h"
#include "codec/transform.h"
#include "codec/types.h"
#include "common/rng.h"

namespace videoapp {
namespace {

// --- Transform -----------------------------------------------------------

TEST(Transform, RoundTripErrorBoundedByQp)
{
    Rng rng(1);
    for (int qp : {0, 8, 16, 24, 32, 40}) {
        double max_err = 0;
        for (int trial = 0; trial < 50; ++trial) {
            Residual4x4 res{};
            for (auto &v : res)
                v = static_cast<i16>(
                    static_cast<int>(rng.nextBelow(511)) - 255);
            Residual4x4 levels = forwardQuant4x4(res, qp, false);
            Residual4x4 back = inverseQuant4x4(levels, qp);
            for (int i = 0; i < 16; ++i)
                max_err = std::max(
                    max_err, std::abs(static_cast<double>(back[i]) -
                                      res[i]));
        }
        // Quantisation step roughly doubles every 6 QP; the error
        // must stay within ~one step (inter rounding offset is 1/6,
        // so the worst case slightly exceeds half a step).
        double step = 0.7 * std::pow(2.0, qp / 6.0);
        EXPECT_LT(max_err, std::max(3.5, 1.8 * step)) << "qp " << qp;
    }
}

TEST(Transform, ZeroResidualStaysZero)
{
    Residual4x4 zero{};
    Residual4x4 levels = forwardQuant4x4(zero, 26, true);
    EXPECT_FALSE(anyNonZero(levels));
    Residual4x4 back = inverseQuant4x4(levels, 26);
    for (i16 v : back)
        EXPECT_EQ(v, 0);
}

TEST(Transform, HigherQpCoarser)
{
    Residual4x4 res{};
    for (int i = 0; i < 16; ++i)
        res[i] = static_cast<i16>(10 + 5 * i);
    int nz_low = 0, nz_high = 0;
    Residual4x4 lo = forwardQuant4x4(res, 4, false);
    Residual4x4 hi = forwardQuant4x4(res, 44, false);
    for (int i = 0; i < 16; ++i) {
        nz_low += lo[i] != 0;
        nz_high += hi[i] != 0;
    }
    EXPECT_GT(nz_low, nz_high);
}

// --- Arithmetic coder -------------------------------------------------------

TEST(Arith, BypassRoundTrip)
{
    Rng rng(2);
    std::vector<u32> bits(2000);
    ArithEncoder enc;
    for (auto &b : bits) {
        b = static_cast<u32>(rng.nextBelow(2));
        enc.encodeBypass(b);
    }
    Bytes coded = enc.finish();
    ArithDecoder dec(coded, 0, coded.size());
    for (u32 b : bits)
        EXPECT_EQ(dec.decodeBypass(), b);
}

TEST(Arith, ContextRoundTripSkewed)
{
    // Highly skewed bits must round-trip and compress well.
    Rng rng(3);
    std::vector<u32> bits(20000);
    for (auto &b : bits)
        b = rng.nextBool(0.03) ? 1u : 0u;

    ArithEncoder enc;
    BinContext enc_ctx;
    for (u32 b : bits)
        enc.encodeBin(enc_ctx, b);
    Bytes coded = enc.finish();

    // ~0.03 entropy = 0.19 bits/symbol; allow generous slack.
    EXPECT_LT(coded.size() * 8, bits.size() / 2);

    ArithDecoder dec(coded, 0, coded.size());
    BinContext dec_ctx;
    for (u32 b : bits)
        ASSERT_EQ(dec.decodeBin(dec_ctx), b);
}

TEST(Arith, MultiContextRoundTrip)
{
    Rng rng(4);
    const int n_ctx = 8;
    std::vector<std::pair<int, u32>> symbols(30000);
    for (auto &[c, b] : symbols) {
        c = static_cast<int>(rng.nextBelow(n_ctx));
        b = rng.nextBool(0.1 + 0.1 * c) ? 1u : 0u;
    }
    ArithEncoder enc;
    std::vector<BinContext> ectx(n_ctx);
    for (auto [c, b] : symbols)
        enc.encodeBin(ectx[c], b);
    Bytes coded = enc.finish();

    ArithDecoder dec(coded, 0, coded.size());
    std::vector<BinContext> dctx(n_ctx);
    for (auto [c, b] : symbols)
        ASSERT_EQ(dec.decodeBin(dctx[c]), b);
}

TEST(Arith, DecoderTotalOnGarbage)
{
    Rng rng(5);
    Bytes garbage(1000);
    for (auto &b : garbage)
        b = static_cast<u8>(rng.next());
    ArithDecoder dec(garbage, 0, garbage.size());
    BinContext ctx;
    // Drain far more bins than the buffer could hold; must not hang
    // or fault, and must keep returning 0/1.
    for (int i = 0; i < 100000; ++i) {
        u32 b = dec.decodeBin(ctx);
        ASSERT_LE(b, 1u);
    }
}

TEST(Arith, EmptyWindowDecodesZeros)
{
    Bytes empty;
    ArithDecoder dec(empty, 0, 0);
    BinContext ctx;
    for (int i = 0; i < 100; ++i)
        EXPECT_LE(dec.decodeBin(ctx), 1u);
}

// --- Syntax layer -------------------------------------------------------------

class SyntaxParam : public ::testing::TestWithParam<EntropyKind>
{
};

TEST_P(SyntaxParam, FlagAndBypassRoundTrip)
{
    Rng rng(6);
    std::vector<u32> flags(5000);
    auto enc = makeSyntaxEncoder(GetParam());
    for (auto &f : flags) {
        f = static_cast<u32>(rng.nextBelow(2));
        enc->flag(ctx::kSig + static_cast<int>(rng.nextBelow(15)), f);
    }
    // Note: context ids must match decode order; replay with the
    // same RNG sequence.
    Bytes coded = enc->finishSlice();
    Rng rng2(6);
    auto dec = makeSyntaxDecoder(GetParam(), coded, 0, coded.size());
    for (u32 f : flags) {
        u32 expect_f = static_cast<u32>(rng2.nextBelow(2));
        int c = ctx::kSig + static_cast<int>(rng2.nextBelow(15));
        EXPECT_EQ(dec->flag(c), expect_f);
        EXPECT_EQ(expect_f, f);
    }
}

TEST_P(SyntaxParam, UegkRoundTripWideRange)
{
    std::vector<u32> values;
    for (u32 v : {0u, 1u, 2u, 5u, 7u, 8u, 9u, 20u, 100u, 1000u,
                  50000u})
        values.push_back(v);
    auto enc = makeSyntaxEncoder(GetParam());
    for (u32 v : values)
        enc->uegk(ctx::kLevel, ctx::kLevel + 1, 8, 2, v);
    Bytes coded = enc->finishSlice();
    auto dec = makeSyntaxDecoder(GetParam(), coded, 0, coded.size());
    for (u32 v : values)
        EXPECT_EQ(dec->uegk(ctx::kLevel, ctx::kLevel + 1, 8, 2), v);
}

TEST_P(SyntaxParam, SignedRoundTrip)
{
    std::vector<i32> values = {0, 1, -1, 3, -7, 15, -100, 512, -511};
    auto enc = makeSyntaxEncoder(GetParam());
    for (i32 v : values)
        enc->sevlc(ctx::kMvdX, ctx::kMvdX + 1, 8, 2, v);
    Bytes coded = enc->finishSlice();
    auto dec = makeSyntaxDecoder(GetParam(), coded, 0, coded.size());
    for (i32 v : values)
        EXPECT_EQ(dec->sevlc(ctx::kMvdX, ctx::kMvdX + 1, 8, 2), v);
}

TEST_P(SyntaxParam, DecodeOnGarbageIsBounded)
{
    Rng rng(7);
    Bytes garbage(400);
    for (auto &b : garbage)
        b = static_cast<u8>(rng.next());
    auto dec = makeSyntaxDecoder(GetParam(), garbage, 0,
                                 garbage.size());
    for (int i = 0; i < 20000; ++i) {
        u32 v = dec->uegk(ctx::kLevel, ctx::kLevel + 1, 14, 0);
        ASSERT_LE(v, 1u << 20);
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, SyntaxParam,
                         ::testing::Values(EntropyKind::CABAC,
                                           EntropyKind::CAVLC),
                         [](const auto &info) {
                             return entropyKindName(info.param);
                         });

TEST(Syntax, CabacBeatsRawBitsOnSkewedFlags)
{
    // 95/5 flags: CABAC must land well under 1 bit per flag while
    // CAVLC spends exactly 1.
    Rng rng(8);
    auto cabac = makeSyntaxEncoder(EntropyKind::CABAC);
    auto cavlc = makeSyntaxEncoder(EntropyKind::CAVLC);
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        u32 b = rng.nextBool(0.05) ? 1u : 0u;
        cabac->flag(ctx::kSkip, b);
        cavlc->flag(ctx::kSkip, b);
    }
    Bytes cabac_bytes = cabac->finishSlice();
    Bytes cavlc_bytes = cavlc->finishSlice();
    EXPECT_LT(cabac_bytes.size() * 2, cavlc_bytes.size());
}

// --- Types / geometry -----------------------------------------------------------

TEST(Types, MedianMvComponentwise)
{
    MotionVector a{1, 10}, b{5, -2}, c{3, 4};
    MotionVector m = medianMv(a, b, c);
    EXPECT_EQ(m.x, 3);
    EXPECT_EQ(m.y, 4);
}

TEST(Types, PartitionGeomCoversMb)
{
    for (int p = 0; p < kPartitionCount; ++p) {
        auto part = static_cast<Partition>(p);
        if (part == Partition::P8x8)
            continue;
        int area = 0;
        for (const auto &g : partitionGeom(part))
            area += g.width * g.height;
        EXPECT_EQ(area, 256) << p;
    }
    // 8x8 with every sub-partition also tiles exactly.
    for (int s = 0; s < kSubPartitionCount; ++s) {
        int area = 0;
        for (const auto &g : subPartitionGeom(
                 static_cast<SubPartition>(s), 8, 8)) {
            area += g.width * g.height;
            EXPECT_GE(g.x, 8);
            EXPECT_GE(g.y, 8);
        }
        EXPECT_EQ(area, 64) << s;
    }
}

// --- GOP -----------------------------------------------------------------------

TEST(Gop, ReferencesPrecedeUsers)
{
    for (int frames : {1, 2, 5, 30, 97}) {
        for (int nb : {0, 2, 3}) {
            GopConfig config{.gopSize = 12, .bFrames = nb};
            auto plan = planGop(frames, config);
            ASSERT_EQ(plan.size(), static_cast<std::size_t>(frames));
            std::vector<bool> seen_display(frames, false);
            for (std::size_t i = 0; i < plan.size(); ++i) {
                EXPECT_LT(plan[i].ref0, static_cast<int>(i));
                EXPECT_LT(plan[i].ref1, static_cast<int>(i));
                ASSERT_GE(plan[i].displayIdx, 0);
                ASSERT_LT(plan[i].displayIdx, frames);
                EXPECT_FALSE(seen_display[plan[i].displayIdx]);
                seen_display[plan[i].displayIdx] = true;
            }
        }
    }
}

TEST(Gop, IFramesAtGopBoundaries)
{
    GopConfig config{.gopSize = 10, .bFrames = 2};
    auto plan = planGop(35, config);
    for (const auto &p : plan) {
        if (p.displayIdx % 10 == 0) {
            EXPECT_EQ(p.type, FrameType::I) << p.displayIdx;
        }
        if (p.type == FrameType::I) {
            EXPECT_EQ(p.displayIdx % 10, 0) << p.displayIdx;
        }
        if (p.type == FrameType::B) {
            EXPECT_GE(p.ref0, 0);
            EXPECT_GE(p.ref1, 0);
        }
        if (p.type == FrameType::P) {
            EXPECT_GE(p.ref0, 0);
        }
    }
}

TEST(Gop, NoBFramesMeansIpppChain)
{
    GopConfig config{.gopSize = 8, .bFrames = 0};
    auto plan = planGop(16, config);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].displayIdx, static_cast<int>(i));
        EXPECT_NE(plan[i].type, FrameType::B);
    }
}

TEST(Gop, BRefsChainWhenEnabled)
{
    GopConfig config{.gopSize = 20, .bFrames = 3, .bRefs = true};
    auto plan = planGop(10, config);
    bool b_referenced = false;
    for (const auto &p : plan) {
        if (p.type == FrameType::B && p.ref0 >= 0 &&
            plan[p.ref0].type == FrameType::B)
            b_referenced = true;
    }
    EXPECT_TRUE(b_referenced);
}

// --- Rate control -------------------------------------------------------------

TEST(RateControl, FrameTypeOrdering)
{
    RateControl rc(24);
    EXPECT_LT(rc.frameBaseQp(FrameType::I),
              rc.frameBaseQp(FrameType::P));
    EXPECT_LT(rc.frameBaseQp(FrameType::P),
              rc.frameBaseQp(FrameType::B));
}

TEST(RateControl, ActivityRaisesQp)
{
    Plane flat(64, 64, 100);
    Plane busy(64, 64, 100);
    Rng rng(9);
    for (auto &p : busy.data())
        p = static_cast<u8>(rng.next());
    RateControl rc(24);
    double avg = 500.0;
    int qp_flat = rc.mbQp(FrameType::P, flat, 0, 0, avg);
    int qp_busy = rc.mbQp(FrameType::P, busy, 0, 0, avg);
    EXPECT_LT(qp_flat, qp_busy);
}

// --- Motion helpers ---------------------------------------------------------------

TEST(Inter, MotionSearchFindsExactShift)
{
    // Build a smooth reference (video-like, so the SAD landscape has
    // a gradient the diamond search can follow) and a source that is
    // the reference shifted by a known vector.
    Plane ref(128, 128);
    for (int y = 0; y < 128; ++y)
        for (int x = 0; x < 128; ++x)
            ref.at(x, y) = static_cast<u8>(
                128 + 60 * std::sin(x * 0.13) * std::cos(y * 0.09));
    Plane src(128, 128);
    const int shift_x = 5, shift_y = -3;
    for (int y = 0; y < 128; ++y)
        for (int x = 0; x < 128; ++x)
            src.at(x, y) = ref.atClamped(x + shift_x, y + shift_y);

    auto result = motionSearch(src, 48, 48, 16, 16, ref,
                               MotionVector{0, 0}, 16);
    // Vectors are in quarter-pel units.
    EXPECT_EQ(result.mv.x, 4 * shift_x);
    EXPECT_EQ(result.mv.y, 4 * shift_y);
    EXPECT_EQ(result.sad, 0);
}

TEST(Inter, ReferenceAreasSumToRectAreaForIntegerMvs)
{
    // Whole-pel vectors (multiples of 4) reference exactly w*h
    // pixels.
    for (MotionVector mv : {MotionVector{0, 0}, MotionVector{-8, 4},
                            MotionVector{20, -24},
                            MotionVector{300, 300}}) {
        auto areas = referenceAreas(32, 32, 16, 16, mv, 128, 128);
        int total = 0;
        for (const auto &a : areas) {
            total += a.pixels;
            EXPECT_GE(a.mbx, 0);
            EXPECT_LT(a.mbx, 8);
            EXPECT_GE(a.mby, 0);
            EXPECT_LT(a.mby, 8);
        }
        EXPECT_EQ(total, 256);
        EXPECT_LE(areas.size(), 4u);
    }
}

TEST(Inter, ReferenceAreasGrowWithSubPelFootprint)
{
    // A fractional component widens the region by the 6-tap
    // support (2 left/top, 3 right/bottom).
    auto areas = referenceAreas(32, 32, 16, 16, MotionVector{1, 0},
                                128, 128);
    int total = 0;
    for (const auto &a : areas)
        total += a.pixels;
    EXPECT_EQ(total, (16 + 5) * 16);
    auto both = referenceAreas(32, 32, 16, 16, MotionVector{1, 1},
                               128, 128);
    total = 0;
    for (const auto &a : both)
        total += a.pixels;
    EXPECT_EQ(total, (16 + 5) * (16 + 5));
}

TEST(Inter, HalfPelInterpolationMatchesSixTap)
{
    Plane ref(32, 32, 0);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            ref.at(x, y) = static_cast<u8>(10 * x);
    // Horizontal half position between x=10 and x=11 on a ramp:
    // the 6-tap filter reproduces the midpoint on linear content.
    int v = sampleHalfPel(ref, 2 * 10 + 1, 2 * 16);
    EXPECT_NEAR(v, 105, 1);
    // Integer positions read exact samples.
    EXPECT_EQ(sampleHalfPel(ref, 2 * 7, 2 * 5), ref.at(7, 5));
}

TEST(Inter, QuarterPelAveragesHalfSamples)
{
    Plane ref(32, 32, 0);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            ref.at(x, y) = static_cast<u8>(10 * x);
    // Quarter position between integer x=10 and half x=10.5 on a
    // linear ramp: ~102.5 -> rounds to 102/103.
    int v = sampleQuarterPel(ref, 4 * 10 + 1, 4 * 16);
    EXPECT_NEAR(v, 103, 1);
    // Whole positions fall through to the exact sample.
    EXPECT_EQ(sampleQuarterPel(ref, 4 * 7, 4 * 5), ref.at(7, 5));
    // Half positions fall through to the 6-tap value.
    EXPECT_EQ(sampleQuarterPel(ref, 4 * 10 + 2, 4 * 16),
              sampleHalfPel(ref, 2 * 10 + 1, 2 * 16));
}

TEST(Inter, AlignedReferenceHitsSingleMb)
{
    // 64 quarter-pel = 16 full pixels: exactly one MB down-right.
    auto areas = referenceAreas(32, 32, 16, 16, MotionVector{64, 64},
                                128, 128);
    ASSERT_EQ(areas.size(), 1u);
    EXPECT_EQ(areas[0].mbx, 3);
    EXPECT_EQ(areas[0].mby, 3);
    EXPECT_EQ(areas[0].pixels, 256);
}

// --- Intra helpers ------------------------------------------------------------------

TEST(Intra, DependencyWeightsSumToOne)
{
    for (int m = 0; m < kIntraModeCount; ++m) {
        auto mode = static_cast<IntraMode>(m);
        auto deps = intraDependencies(mode, true, true);
        double sum = 0;
        for (const auto &d : deps)
            sum += d.weight;
        EXPECT_NEAR(sum, 1.0, 1e-9) << m;
    }
    // No neighbours: DC from 128, no dependencies.
    EXPECT_TRUE(intraDependencies(IntraMode::DC, false, false)
                    .empty());
}

TEST(Intra, VerticalCopiesAboveRow)
{
    Plane recon(64, 64, 0);
    for (int x = 0; x < 16; ++x)
        recon.at(16 + x, 15) = static_cast<u8>(100 + x);
    auto pred = predictLuma16(recon, 1, 1, IntraMode::Vertical, true,
                              true);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            EXPECT_EQ(pred[y * 16 + x], 100 + x);
}

TEST(Intra, DcWithNoNeighboursIs128)
{
    Plane recon(64, 64, 7);
    auto pred = predictLuma16(recon, 0, 0, IntraMode::DC, false,
                              false);
    for (u8 v : pred)
        EXPECT_EQ(v, 128);
}

// --- MbGrid predictors ---------------------------------------------------------------

TEST(MbGrid, MedianPredictorUsesThreeNeighbours)
{
    MbGrid grid(4, 4);
    auto mark = [&](int x, int y, MotionVector mv) {
        MbState &s = grid.at(x, y);
        s.valid = true;
        s.mvL0 = mv;
    };
    mark(0, 1, {2, 2});  // left of (1,1)
    mark(1, 0, {8, 0});  // up
    mark(2, 0, {4, 6});  // up-right
    MotionVector pred = grid.predictMv(1, 1, 0, false);
    EXPECT_EQ(pred.x, 4);
    EXPECT_EQ(pred.y, 2);
}

TEST(MbGrid, OnlyLeftAvailableInheritsLeft)
{
    MbGrid grid(4, 4);
    MbState &s = grid.at(0, 0);
    s.valid = true;
    s.mvL0 = {9, -9};
    MotionVector pred = grid.predictMv(1, 0, 0, false);
    EXPECT_EQ(pred.x, 9);
    EXPECT_EQ(pred.y, -9);
}

TEST(MbGrid, CornerAvailabilityRules)
{
    MbGrid grid(4, 4);
    for (int x = 0; x < 4; ++x)
        for (int y = 0; y < 2; ++y)
            grid.at(x, y).valid = true;
    // MB (1,1): up-left = (0,0), up-right = (2,0).
    EXPECT_TRUE(grid.upLeftAvail(1, 1, 0));
    EXPECT_TRUE(grid.upRightAvail(1, 1, 0));
    // Rightmost column has no up-right.
    EXPECT_FALSE(grid.upRightAvail(3, 1, 0));
    // First column has no up-left.
    EXPECT_FALSE(grid.upLeftAvail(0, 1, 0));
    // Slice starting at row 1 blocks all up-ish neighbours.
    EXPECT_FALSE(grid.upLeftAvail(1, 1, 1));
    EXPECT_FALSE(grid.upRightAvail(1, 1, 1));
}

TEST(MbGrid, SliceBoundaryBlocksUpNeighbour)
{
    MbGrid grid(4, 4);
    grid.at(1, 1).valid = true;
    grid.at(1, 2).valid = true;
    // Row 2 starts a new slice: the MB above is off limits.
    EXPECT_FALSE(grid.upAvail(1, 2, 2));
    EXPECT_TRUE(grid.upAvail(1, 3, 2));
}

// --- Container ---------------------------------------------------------------------------

TEST(Container, SerializeDeserializeRoundTrip)
{
    EncodedVideo video;
    video.header.width = 64;
    video.header.height = 48;
    video.header.fps = 25.0;
    video.header.entropy = EntropyKind::CAVLC;
    video.header.frameCount = 2;
    video.header.slicesPerFrame = 2;

    FrameHeader fh;
    fh.displayIdx = 1;
    fh.type = FrameType::P;
    fh.qpBase = 28;
    fh.ref0 = 0;
    fh.slices.push_back({0, 6, 0, 33});
    fh.slices.push_back({6, 6, 33, 20});
    fh.pivots.push_back({0, 10});
    fh.pivots.push_back({100, 6});
    video.frameHeaders.push_back(fh);
    video.payloads.push_back(Bytes{1, 2, 3, 4, 5});

    Bytes blob = serialize(video);
    auto back = deserialize(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->header.width, 64);
    EXPECT_EQ(back->header.entropy, EntropyKind::CAVLC);
    EXPECT_NEAR(back->header.fps, 25.0, 1e-4);
    ASSERT_EQ(back->frameHeaders.size(), 1u);
    const FrameHeader &fh2 = back->frameHeaders[0];
    EXPECT_EQ(fh2.displayIdx, 1);
    EXPECT_EQ(fh2.type, FrameType::P);
    EXPECT_EQ(fh2.ref0, 0);
    EXPECT_EQ(fh2.ref1, -1);
    ASSERT_EQ(fh2.slices.size(), 2u);
    EXPECT_EQ(fh2.slices[1].byteOffset, 33u);
    ASSERT_EQ(fh2.pivots.size(), 2u);
    EXPECT_EQ(fh2.pivots[1].bitOffset, 100u);
    EXPECT_EQ(fh2.pivots[1].schemeT, 6);
    ASSERT_EQ(back->payloads.size(), 1u);
    EXPECT_EQ(back->payloads[0], (Bytes{1, 2, 3, 4, 5}));
}

TEST(Container, DeserializeRejectsGarbage)
{
    Bytes garbage{1, 2, 3};
    EXPECT_FALSE(deserialize(garbage).has_value());
    Bytes empty;
    EXPECT_FALSE(deserialize(empty).has_value());
}

TEST(Container, ChromaQpTableMatchesStandardShape)
{
    EXPECT_EQ(chromaQp(20), 20);
    EXPECT_EQ(chromaQp(29), 29);
    EXPECT_EQ(chromaQp(30), 29);
    EXPECT_EQ(chromaQp(51), 39);
    // Monotone non-decreasing.
    for (int qp = 1; qp <= 51; ++qp)
        EXPECT_GE(chromaQp(qp), chromaQp(qp - 1));
}

} // namespace
} // namespace videoapp
