/**
 * @file
 * Calibration pipeline tests: curve measurement monotonicity, the
 * derived assignments' budget compliance, and container fuzzing
 * (random blobs must never crash or be accepted).
 */

#include <gtest/gtest.h>

#include "codec/container.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "sim/calibrate.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

TEST(Calibrate, CurvesAreMonotoneInClassAndRate)
{
    SyntheticSpec spec = tinySpec(81);
    auto curves = measureClassCurves({spec}, EncoderConfig{}, 2,
                                     {1e-6, 1e-4, 1e-2}, 900);
    ASSERT_FALSE(curves.empty());
    double prev_storage = 0.0;
    std::vector<double> prev_loss;
    for (const auto &curve : curves) {
        EXPECT_GE(curve.cumulativeStorage, prev_storage);
        prev_storage = curve.cumulativeStorage;
        // Loss non-decreasing with rate within a class.
        for (std::size_t i = 1; i < curve.points.size(); ++i)
            EXPECT_GE(curve.points[i].lossDb,
                      curve.points[i - 1].lossDb);
        // And with class at equal rates.
        if (!prev_loss.empty()) {
            for (std::size_t i = 0; i < curve.points.size(); ++i)
                EXPECT_GE(curve.points[i].lossDb + 1e-12,
                          prev_loss[i]);
        }
        prev_loss.clear();
        for (const auto &p : curve.points)
            prev_loss.push_back(p.lossDb);
    }
    EXPECT_NEAR(curves.back().cumulativeStorage, 1.0, 1e-9);
}

TEST(Calibrate, DerivedAssignmentMonotoneStrength)
{
    SyntheticSpec spec = tinySpec(82);
    EccAssignment table =
        calibrateAssignment({spec}, EncoderConfig{}, 2, 0.3, 901);
    int prev_t = 0;
    for (const auto &entry : table.entries()) {
        EXPECT_GE(entry.scheme.t, prev_t);
        prev_t = entry.scheme.t;
    }
    EXPECT_GE(table.fallback().t, prev_t);
}

TEST(Calibrate, CalibratedPipelineRespectsBudget)
{
    // Run the calibrated assignment through the channel several
    // times: mean quality loss must stay near the budget (worst
    // case Monte Carlo noise allowed).
    SyntheticSpec spec = tinySpec(83);
    Video source = generateSynthetic(spec);
    EccAssignment table =
        calibrateAssignment({spec}, EncoderConfig{}, 3, 0.3, 902);
    PreparedVideo prepared =
        prepareVideo(source, EncoderConfig{}, table);

    ModeledChannel channel(kPcmRawBer);
    double total_loss = 0;
    const int runs = 6;
    for (int r = 0; r < runs; ++r) {
        Rng rng(910 + static_cast<u64>(r));
        StorageOutcome outcome =
            storeAndRetrieve(prepared, channel, rng);
        total_loss +=
            std::max(0.0, 100.0 - outcome.psnrVsReference);
    }
    EXPECT_LT(total_loss / runs, 2.0);
}

TEST(ContainerFuzz, RandomBlobsNeverCrash)
{
    Rng rng(84);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes blob(rng.nextBelow(600));
        for (auto &b : blob)
            b = static_cast<u8>(rng.next());
        auto video = deserialize(blob);
        if (video) {
            // Rarely a random blob passes the magic check; decoding
            // it must still be total.
            Video decoded = decodeVideo(*video);
            (void)decoded;
        }
    }
    SUCCEED();
}

TEST(ContainerFuzz, TruncatedRealStreamRejectedOrDecodable)
{
    Video source = generateSynthetic(tinySpec(85));
    EncodeResult enc = encodeVideo(source, EncoderConfig{});
    Bytes blob = serialize(enc.video);
    Rng rng(86);
    for (int trial = 0; trial < 30; ++trial) {
        std::size_t cut = 4 + rng.nextBelow(blob.size() - 4);
        Bytes truncated(blob.begin(),
                        blob.begin() +
                            static_cast<std::ptrdiff_t>(cut));
        auto video = deserialize(truncated);
        if (video) {
            Video decoded = decodeVideo(*video);
            EXPECT_LE(decoded.frames.size(),
                      source.frames.size());
        }
    }
}

TEST(ContainerFuzz, BitFlippedHeadersNeverCrashDecode)
{
    // The paper stores headers precisely, but a robust library must
    // not crash even if they are damaged.
    Video source = generateSynthetic(tinySpec(87));
    EncodeResult enc = encodeVideo(source, EncoderConfig{});
    Bytes blob = serialize(enc.video);
    Rng rng(88);
    for (int trial = 0; trial < 50; ++trial) {
        Bytes damaged = blob;
        for (int flips = 0; flips < 8; ++flips)
            flipBit(damaged, rng.nextBelow(damaged.size() * 8));
        auto video = deserialize(damaged);
        if (video) {
            Video decoded = decodeVideo(*video);
            (void)decoded;
        }
    }
    SUCCEED();
}

} // namespace
} // namespace videoapp
