/**
 * @file
 * SIMD-vs-scalar equivalence fuzz: every kernel in the dispatch
 * table must be bit-exact against the scalar oracle at every ISA
 * level the build machine supports, including edge-size inputs
 * (non-multiple-of-16 widths, single-pixel counts) and the extremes
 * of each kernel's documented input domain. Also pins the
 * thread-safety of first-use dispatch initialization (run under
 * TSan in CI).
 */

#include "simd/dispatch.h"
#include "simd/kernels.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/gf.h"

namespace videoapp {
namespace {

using simd::SimdKernels;
using simd::SimdLevel;

/** Every level the build machine can actually run. */
std::vector<SimdLevel>
availableLevels()
{
    std::vector<SimdLevel> out;
    for (SimdLevel level : {SimdLevel::Scalar, SimdLevel::Sse2,
                            SimdLevel::Avx2}) {
        if (simd::simdKernelsFor(level))
            out.push_back(level);
    }
    return out;
}

const SimdKernels &
oracle()
{
    return *simd::simdKernelsFor(SimdLevel::Scalar);
}

/** Run @p check against every non-scalar level (scalar is the oracle
 * and trivially matches itself). */
template <typename Check>
void
forEachLevel(Check check)
{
    for (SimdLevel level : availableLevels()) {
        const SimdKernels &k = *simd::simdKernelsFor(level);
        check(k, simd::simdLevelName(level));
    }
}

u8
randomU8(Rng &rng)
{
    return static_cast<u8>(rng.nextBelow(256));
}

std::vector<u8>
randomBytes(Rng &rng, std::size_t count)
{
    std::vector<u8> out(count);
    for (u8 &b : out)
        b = randomU8(rng);
    return out;
}

TEST(SimdDispatchTest, ActiveLevelIsSupported)
{
    EXPECT_LE(simd::simdActiveLevel(), simd::simdMaxSupportedLevel());
    EXPECT_NE(simd::simdKernels().forwardQuant4x4, nullptr);
    EXPECT_NE(simd::simdKernels().chienScan, nullptr);
}

TEST(SimdDispatchTest, ParseLevelNames)
{
    SimdLevel level;
    EXPECT_TRUE(simd::simdParseLevel("scalar", &level));
    EXPECT_EQ(level, SimdLevel::Scalar);
    EXPECT_TRUE(simd::simdParseLevel("sse2", &level));
    EXPECT_EQ(level, SimdLevel::Sse2);
    EXPECT_TRUE(simd::simdParseLevel("avx2", &level));
    EXPECT_EQ(level, SimdLevel::Avx2);
    EXPECT_FALSE(simd::simdParseLevel("auto", &level));
    EXPECT_FALSE(simd::simdParseLevel("", &level));
    EXPECT_FALSE(simd::simdParseLevel(nullptr, &level));
}

TEST(SimdDispatchTest, EveryLevelTableIsComplete)
{
    forEachLevel([](const SimdKernels &k, const char *) {
        EXPECT_NE(k.forwardQuant4x4, nullptr);
        EXPECT_NE(k.inverseQuant4x4, nullptr);
        EXPECT_NE(k.residual4x4, nullptr);
        EXPECT_NE(k.reconstruct4x4, nullptr);
        EXPECT_NE(k.sadRect, nullptr);
        EXPECT_NE(k.sad4x4, nullptr);
        EXPECT_NE(k.averageU8, nullptr);
        EXPECT_NE(k.halfHRow, nullptr);
        EXPECT_NE(k.halfVRowRaw, nullptr);
        EXPECT_NE(k.halfVRow, nullptr);
        EXPECT_NE(k.sixTapHRowI16, nullptr);
        EXPECT_NE(k.deblockEdge, nullptr);
        EXPECT_NE(k.foldSyndromes, nullptr);
        EXPECT_NE(k.chienScan, nullptr);
    });
}

/** First-use init racing from many threads, at every level (the
 * ctest TSan leg runs this with -R Simd). */
TEST(SimdDispatchTest, ConcurrentFirstUseIsSafe)
{
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::array<long, kThreads> sums{};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &sums] {
            Rng rng(0x5151u); // same data in every thread
            (void)t;
            std::vector<u8> a = randomBytes(rng, 256);
            std::vector<u8> b = randomBytes(rng, 256);
            long sum = 0;
            for (int iter = 0; iter < 50; ++iter) {
                // Race the active table and the per-level tables.
                const SimdKernels &active = simd::simdKernels();
                sum += active.sadRect(a.data(), 16, b.data(), 16, 16,
                                      16);
                for (SimdLevel level :
                     {SimdLevel::Scalar, SimdLevel::Sse2,
                      SimdLevel::Avx2}) {
                    const SimdKernels *k =
                        simd::simdKernelsFor(level);
                    if (k)
                        sum += k->sad4x4(a.data(), 16, b.data());
                }
                simd::simdNoteStage("test");
            }
            sums[static_cast<std::size_t>(t)] = sum;
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(sums[0], sums[static_cast<std::size_t>(t)]);
}

TEST(SimdKernelsTest, ForwardQuant4x4MatchesScalar)
{
    Rng rng(1);
    for (int iter = 0; iter < 2000; ++iter) {
        std::array<i16, 16> res;
        for (i16 &v : res) // domain: residuals of u8 pixels
            v = static_cast<i16>(
                static_cast<int>(rng.nextBelow(511)) - 255);
        int qp = static_cast<int>(rng.nextBelow(52));
        bool intra = rng.nextBelow(2) == 0;
        std::array<i16, 16> want;
        oracle().forwardQuant4x4(res.data(), qp, intra, want.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::array<i16, 16> got;
            k.forwardQuant4x4(res.data(), qp, intra, got.data());
            ASSERT_EQ(want, got) << name << " qp=" << qp;
        });
    }
}

TEST(SimdKernelsTest, InverseQuant4x4MatchesScalar)
{
    Rng rng(2);
    for (int iter = 0; iter < 2000; ++iter) {
        std::array<i16, 16> levels;
        for (i16 &v : levels) // domain: encoder clamps |level|<=2048
            v = static_cast<i16>(
                static_cast<int>(rng.nextBelow(4097)) - 2048);
        int qp = static_cast<int>(rng.nextBelow(52));
        std::array<i16, 16> want;
        oracle().inverseQuant4x4(levels.data(), qp, want.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::array<i16, 16> got;
            k.inverseQuant4x4(levels.data(), qp, got.data());
            ASSERT_EQ(want, got) << name << " qp=" << qp;
        });
    }
}

TEST(SimdKernelsTest, RoundTripQuantIsLevelIndependent)
{
    // forward -> inverse at each level equals the scalar round trip
    // (the end-to-end property the encoder relies on).
    Rng rng(3);
    for (int iter = 0; iter < 500; ++iter) {
        std::array<i16, 16> res;
        for (i16 &v : res)
            v = static_cast<i16>(
                static_cast<int>(rng.nextBelow(511)) - 255);
        int qp = static_cast<int>(rng.nextBelow(52));
        std::array<i16, 16> lv_want, rt_want;
        oracle().forwardQuant4x4(res.data(), qp, true, lv_want.data());
        oracle().inverseQuant4x4(lv_want.data(), qp, rt_want.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::array<i16, 16> lv, rt;
            k.forwardQuant4x4(res.data(), qp, true, lv.data());
            k.inverseQuant4x4(lv.data(), qp, rt.data());
            ASSERT_EQ(rt_want, rt) << name;
        });
    }
}

TEST(SimdKernelsTest, Residual4x4MatchesScalar)
{
    Rng rng(4);
    for (int iter = 0; iter < 1000; ++iter) {
        int src_stride = 4 + static_cast<int>(rng.nextBelow(29));
        int pred_stride = 4 + static_cast<int>(rng.nextBelow(29));
        std::vector<u8> src =
            randomBytes(rng, static_cast<std::size_t>(src_stride) * 4);
        std::vector<u8> pred = randomBytes(
            rng, static_cast<std::size_t>(pred_stride) * 4);
        std::array<i16, 16> want;
        oracle().residual4x4(src.data(), src_stride, pred.data(),
                             pred_stride, want.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::array<i16, 16> got;
            k.residual4x4(src.data(), src_stride, pred.data(),
                          pred_stride, got.data());
            ASSERT_EQ(want, got) << name;
        });
    }
}

TEST(SimdKernelsTest, Reconstruct4x4MatchesScalar)
{
    Rng rng(5);
    for (int iter = 0; iter < 1000; ++iter) {
        int pred_stride = 4 + static_cast<int>(rng.nextBelow(13));
        int dst_stride = 4 + static_cast<int>(rng.nextBelow(13));
        std::vector<u8> pred = randomBytes(
            rng, static_cast<std::size_t>(pred_stride) * 4);
        std::array<i16, 16> res;
        for (i16 &v : res) // full i16 range: clamp must hold anywhere
            v = static_cast<i16>(rng.nextBelow(65536));
        std::vector<u8> want(static_cast<std::size_t>(dst_stride) * 4,
                             0);
        std::vector<u8> got = want;
        oracle().reconstruct4x4(pred.data(), pred_stride, res.data(),
                                want.data(), dst_stride);
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::fill(got.begin(), got.end(), 0);
            k.reconstruct4x4(pred.data(), pred_stride, res.data(),
                             got.data(), dst_stride);
            ASSERT_EQ(want, got) << name;
        });
    }
}

TEST(SimdKernelsTest, SadRectMatchesScalarAtEverySize)
{
    Rng rng(6);
    for (int iter = 0; iter < 400; ++iter) {
        // Odd widths and single-pixel sizes are the edge cases.
        int w = 1 + static_cast<int>(rng.nextBelow(48));
        int h = 1 + static_cast<int>(rng.nextBelow(20));
        int a_stride = w + static_cast<int>(rng.nextBelow(9));
        int b_stride = w + static_cast<int>(rng.nextBelow(9));
        std::vector<u8> a = randomBytes(
            rng, static_cast<std::size_t>(a_stride) * h);
        std::vector<u8> b = randomBytes(
            rng, static_cast<std::size_t>(b_stride) * h);
        long want = oracle().sadRect(a.data(), a_stride, b.data(),
                                     b_stride, w, h);
        forEachLevel([&](const SimdKernels &k, const char *name) {
            ASSERT_EQ(want, k.sadRect(a.data(), a_stride, b.data(),
                                      b_stride, w, h))
                << name << " w=" << w << " h=" << h;
        });
    }
}

TEST(SimdKernelsTest, Sad4x4MatchesScalar)
{
    Rng rng(7);
    for (int iter = 0; iter < 1000; ++iter) {
        int stride = 4 + static_cast<int>(rng.nextBelow(29));
        std::vector<u8> src =
            randomBytes(rng, static_cast<std::size_t>(stride) * 4);
        std::vector<u8> pred = randomBytes(rng, 16);
        long want = oracle().sad4x4(src.data(), stride, pred.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            ASSERT_EQ(want, k.sad4x4(src.data(), stride, pred.data()))
                << name;
        });
    }
}

TEST(SimdKernelsTest, AverageU8MatchesScalarAtEveryCount)
{
    Rng rng(8);
    for (int count = 1; count <= 67; ++count) {
        std::vector<u8> a =
            randomBytes(rng, static_cast<std::size_t>(count));
        std::vector<u8> b =
            randomBytes(rng, static_cast<std::size_t>(count));
        std::vector<u8> want(static_cast<std::size_t>(count), 0);
        oracle().averageU8(a.data(), b.data(), count, want.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::vector<u8> got(static_cast<std::size_t>(count), 0);
            k.averageU8(a.data(), b.data(), count, got.data());
            ASSERT_EQ(want, got) << name << " count=" << count;
        });
        // In-place form used by bi-prediction averaging.
        std::vector<u8> in_place = a;
        oracle().averageU8(in_place.data(), b.data(), count,
                           in_place.data());
        ASSERT_EQ(want, in_place);
    }
}

TEST(SimdKernelsTest, HalfHRowMatchesScalar)
{
    Rng rng(9);
    for (int count = 1; count <= 33; ++count) {
        // The kernel reads src[-2 .. count+2].
        std::vector<u8> buf =
            randomBytes(rng, static_cast<std::size_t>(count) + 5);
        const u8 *src = buf.data() + 2;
        std::vector<u8> want(static_cast<std::size_t>(count), 0);
        oracle().halfHRow(src, count, want.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::vector<u8> got(static_cast<std::size_t>(count), 0);
            k.halfHRow(src, count, got.data());
            ASSERT_EQ(want, got) << name << " count=" << count;
        });
    }
}

TEST(SimdKernelsTest, HalfVRowsMatchScalar)
{
    Rng rng(10);
    for (int count = 1; count <= 33; ++count) {
        int stride = count + static_cast<int>(rng.nextBelow(5));
        // Rows -2 .. +3 around the sample row.
        std::vector<u8> buf = randomBytes(
            rng, static_cast<std::size_t>(stride) * 6);
        const u8 *src = buf.data() +
                        static_cast<std::size_t>(stride) * 2;
        std::vector<i16> want_raw(static_cast<std::size_t>(count), 0);
        std::vector<u8> want(static_cast<std::size_t>(count), 0);
        oracle().halfVRowRaw(src, stride, count, want_raw.data());
        oracle().halfVRow(src, stride, count, want.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::vector<i16> raw(static_cast<std::size_t>(count), 0);
            std::vector<u8> got(static_cast<std::size_t>(count), 0);
            k.halfVRowRaw(src, stride, count, raw.data());
            k.halfVRow(src, stride, count, got.data());
            ASSERT_EQ(want_raw, raw) << name << " count=" << count;
            ASSERT_EQ(want, got) << name << " count=" << count;
        });
    }
}

TEST(SimdKernelsTest, SixTapHRowI16MatchesScalar)
{
    Rng rng(11);
    for (int count = 1; count <= 33; ++count) {
        // Domain: raw vertical half-samples of u8 input lie in
        // [-2550, 10710]; include both extremes.
        std::vector<i16> buf(static_cast<std::size_t>(count) + 5);
        for (i16 &v : buf)
            v = static_cast<i16>(
                static_cast<long>(rng.nextBelow(10710 + 2550 + 1)) -
                2550);
        buf[0] = -2550;
        buf[buf.size() - 1] = 10710;
        const i16 *src = buf.data() + 2;
        std::vector<u8> want(static_cast<std::size_t>(count), 0);
        oracle().sixTapHRowI16(src, count, want.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::vector<u8> got(static_cast<std::size_t>(count), 0);
            k.sixTapHRowI16(src, count, got.data());
            ASSERT_EQ(want, got) << name << " count=" << count;
        });
    }
}

TEST(SimdKernelsTest, DeblockEdgeMatchesScalar)
{
    Rng rng(12);
    for (int iter = 0; iter < 1500; ++iter) {
        int count = 1 + static_cast<int>(rng.nextBelow(20));
        int alpha = static_cast<int>(rng.nextBelow(40));
        int beta = static_cast<int>(rng.nextBelow(19));
        int tc = 1 + static_cast<int>(rng.nextBelow(6));
        std::size_t n = static_cast<std::size_t>(count);
        std::vector<u8> p1 = randomBytes(rng, n);
        std::vector<u8> q1 = randomBytes(rng, n);
        // Keep many lanes near each other so the filter actually
        // fires (pure random rarely passes the alpha/beta gates).
        std::vector<u8> p0(n), q0(n);
        for (std::size_t i = 0; i < n; ++i) {
            p0[i] = randomU8(rng);
            q0[i] = static_cast<u8>(std::clamp(
                static_cast<int>(p0[i]) +
                    static_cast<int>(rng.nextBelow(17)) - 8,
                0, 255));
        }
        std::vector<u8> wp0 = p0, wq0 = q0;
        oracle().deblockEdge(p1.data(), wp0.data(), wq0.data(),
                             q1.data(), count, alpha, beta, tc);
        forEachLevel([&](const SimdKernels &k, const char *name) {
            std::vector<u8> gp0 = p0, gq0 = q0;
            k.deblockEdge(p1.data(), gp0.data(), gq0.data(),
                          q1.data(), count, alpha, beta, tc);
            ASSERT_EQ(wp0, gp0) << name << " count=" << count;
            ASSERT_EQ(wq0, gq0) << name << " count=" << count;
        });
    }
}

TEST(SimdKernelsTest, FoldSyndromesMatchesScalar)
{
    Rng rng(13);
    for (std::size_t row : {std::size_t{2}, std::size_t{6},
                            std::size_t{12}, std::size_t{24}}) {
        for (int iter = 0; iter < 40; ++iter) {
            std::size_t nbytes = 1 + rng.nextBelow(80);
            std::vector<u16> table(nbytes * 256 * row);
            for (u16 &v : table)
                v = static_cast<u16>(rng.nextBelow(1024));
            std::vector<u8> codeword = randomBytes(rng, nbytes);
            if (iter % 4 == 0) // zero bytes take the skip path
                for (std::size_t i = 0; i < nbytes; i += 2)
                    codeword[i] = 0;
            std::vector<u16> want(row, 0);
            oracle().foldSyndromes(codeword.data(), nbytes,
                                   table.data(), row, want.data());
            forEachLevel([&](const SimdKernels &k, const char *name) {
                std::vector<u16> got(row, 0);
                k.foldSyndromes(codeword.data(), nbytes, table.data(),
                                row, got.data());
                ASSERT_EQ(want, got)
                    << name << " row=" << row << " nbytes=" << nbytes;
            });
        }
    }
}

TEST(SimdKernelsTest, ChienScanMatchesScalar)
{
    // Real GF(1024) antilog table, widened and padded as the BCH
    // decoder does.
    std::vector<i32> alog(Gf1024::kOrder + 1, 0);
    const Gf1024 &gf = Gf1024::instance();
    for (int i = 0; i < Gf1024::kOrder; ++i)
        alog[static_cast<std::size_t>(i)] = gf.alphaPow(i);

    Rng rng(14);
    for (int iter = 0; iter < 400; ++iter) {
        int nterms = static_cast<int>(rng.nextBelow(13));
        std::vector<i32> acc(static_cast<std::size_t>(nterms));
        std::vector<i32> step(static_cast<std::size_t>(nterms));
        for (i32 &v : acc)
            v = static_cast<i32>(rng.nextBelow(1023));
        for (i32 &v : step)
            v = 1 + static_cast<i32>(rng.nextBelow(1022));
        // Constant 0 forces frequent roots (val is a XOR of field
        // elements); nonzero constants exercise the rare-root path.
        u16 constant = iter % 2 ? static_cast<u16>(rng.nextBelow(1024))
                                : 0;
        int n = 1 + static_cast<int>(rng.nextBelow(600));
        int max_roots = 1 + static_cast<int>(rng.nextBelow(8));

        std::vector<i32> want_acc = acc, got_acc;
        std::array<i32, 16> want_roots{}, got_roots{};
        int want = oracle().chienScan(
            want_acc.data(), step.data(), nterms, constant,
            alog.data(), n, max_roots, want_roots.data());
        forEachLevel([&](const SimdKernels &k, const char *name) {
            got_acc = acc;
            got_roots.fill(0);
            int got = k.chienScan(got_acc.data(), step.data(), nterms,
                                  constant, alog.data(), n, max_roots,
                                  got_roots.data());
            ASSERT_EQ(want, got) << name << " iter=" << iter;
            for (int i = 0; i < want; ++i)
                ASSERT_EQ(want_roots[static_cast<std::size_t>(i)],
                          got_roots[static_cast<std::size_t>(i)])
                    << name << " root " << i;
        });
    }
}

} // namespace
} // namespace videoapp
