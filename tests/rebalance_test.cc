/**
 * @file
 * Live membership tests: ADD_SHARD moves exactly the ring diff and
 * keeps every byte; REMOVE_SHARD drains the victim; stale-epoch
 * requests are refused with WRONG_EPOCH carrying the fresh ring and
 * routers self-heal across the bump; a 3->4 resize under concurrent
 * routed reads and writes loses nothing; a killed shard is rebuilt
 * byte-exact (precise metadata from replicas, approximate cells
 * re-encoded from the origin) with cell-CRC parity; and the
 * key-epoch GC scan flags stale and inconsistent key ids. (Suite
 * names contain "Cluster" so the TSan CI job picks them up.)
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive_service.h"
#include "cluster/cluster_node.h"
#include "cluster/cluster_router.h"
#include "cluster/hash_ring.h"
#include "common/telemetry.h"
#include "rebalance/rebalance.h"
#include "server/vapp_client.h"
#include "server/vapp_server.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "rebalance_test_" + name + ".vapp";
}

PutRequest
makePutRequest(const std::string &name, u64 seed)
{
    Video source = generateSynthetic(tinySpec(seed));
    PutRequest put;
    put.name = name;
    put.width = static_cast<u16>(source.width());
    put.height = static_cast<u16>(source.height());
    put.frameCount = static_cast<u32>(source.frames.size());
    put.i420 = packFramesI420(source, 0, source.frames.size());
    return put;
}

u64
counterValue(const char *name)
{
    return telemetry::globalRegistry().counter(name).value();
}

/** One live shard: archive + node + server, bootable mid-test. */
struct LiveShard
{
    std::string path;
    std::unique_ptr<ArchiveService> service;
    std::unique_ptr<ClusterNode> node;
    std::unique_ptr<VappServer> server;
    ClusterShard address;
};

constexpr u32 kVnodes = 64;

/** A cluster whose shard set can grow, shrink, and be rebuilt. */
class ClusterResize : public ::testing::Test
{
  protected:
    void
    bootShard(u32 id, u32 replicas)
    {
        const std::string test = ::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name();
        auto shard = std::make_unique<LiveShard>();
        shard->path = tempPath(test + "_s" + std::to_string(id));
        std::remove(shard->path.c_str());
        shard->service =
            std::make_unique<ArchiveService>(shard->path);
        ASSERT_EQ(shard->service->open(true), ArchiveError::None);
        ClusterNodeConfig node;
        node.selfId = id;
        node.replicas = replicas;
        node.vnodes = kVnodes;
        node.epoch = 1;
        shard->node = std::make_unique<ClusterNode>(*shard->service,
                                                    node);
        VappServerConfig config;
        config.port = 0;
        config.cluster = shard->node.get();
        shard->server =
            std::make_unique<VappServer>(*shard->service, config);
        ASSERT_TRUE(shard->server->start());
        shard->address = {id, "127.0.0.1", shard->server->port()};
        // A joining shard runs a one-member ring until the manager
        // splices it into the cluster.
        shard->node->setTopology({shard->address}, 1);
        shards_.push_back(std::move(shard));
    }

    void
    startCluster(u32 count, u32 replicas = 2)
    {
        replicas_ = replicas;
        for (u32 i = 0; i < count; ++i)
            bootShard(i, replicas);
        std::vector<ClusterShard> addresses;
        for (const auto &shard : shards_)
            addresses.push_back(shard->address);
        for (const auto &shard : shards_)
            shard->node->setTopology(addresses, 1);
    }

    void
    TearDown() override
    {
        for (auto &shard : shards_) {
            if (shard->server)
                shard->server->stop();
            if (!shard->path.empty())
                std::remove(shard->path.c_str());
        }
    }

    std::vector<ManagedShard>
    managed(std::size_t count) const
    {
        std::vector<ManagedShard> out;
        for (std::size_t i = 0; i < count && i < shards_.size(); ++i)
            out.push_back(
                {shards_[i]->address, shards_[i]->node.get()});
        return out;
    }

    RebalanceConfig
    rebalanceConfig() const
    {
        RebalanceConfig config;
        config.vnodes = kVnodes;
        config.replicas = replicas_;
        return config;
    }

    ClusterRouter
    routerOver(std::size_t count)
    {
        ClusterRouterConfig config;
        for (std::size_t i = 0; i < count && i < shards_.size(); ++i)
            config.seeds.push_back(shards_[i]->address);
        return ClusterRouter(config);
    }

    std::vector<std::unique_ptr<LiveShard>> shards_;
    u32 replicas_ = 2;
};

/** Names -> reference gop-0 responses captured before a transition;
 * every later read must reproduce them byte for byte. */
using References = std::map<std::string, GetFramesResponse>;

References
captureReferences(ClusterRouter &router,
                  const std::vector<std::string> &names,
                  const Bytes &key = {})
{
    References refs;
    for (const std::string &name : names) {
        GetFramesRequest get;
        get.name = name;
        get.gop = 0;
        get.key = key;
        auto response = router.getFrames(get);
        EXPECT_TRUE(response.has_value()) << name;
        if (response) {
            EXPECT_EQ(response->status, Status::Ok) << name;
            refs[name] = *response;
        }
    }
    return refs;
}

void
expectByteExact(ClusterRouter &router, const References &refs,
                const Bytes &key = {})
{
    for (const auto &[name, ref] : refs) {
        GetFramesRequest get;
        get.name = name;
        get.gop = 0;
        get.key = key;
        auto response = router.getFrames(get);
        ASSERT_TRUE(response.has_value()) << name;
        EXPECT_EQ(response->status, Status::Ok) << name;
        EXPECT_EQ(response->frameCount, ref.frameCount) << name;
        EXPECT_EQ(response->i420, ref.i420) << name;
    }
}

TEST_F(ClusterResize, AddShardMovesExactlyTheRingDiffByteExact)
{
    startCluster(3);
    ClusterRouter router = routerOver(3);

    std::vector<std::string> names;
    for (int i = 0; i < 12; ++i) {
        const std::string name = "grow-" + std::to_string(i);
        auto ack = router.put(makePutRequest(name, 100 + i));
        ASSERT_TRUE(ack.has_value()) << name;
        ASSERT_EQ(ack->status, Status::Ok) << name;
        names.push_back(name);
    }
    References refs = captureReferences(router, names);
    ASSERT_EQ(refs.size(), names.size());
    ASSERT_EQ(router.epoch(), 1u);

    bootShard(3, replicas_);
    MembershipManager manager(managed(3), 1, rebalanceConfig());
    MigrationReport report = manager.addShard(
        {shards_[3]->address, shards_[3]->node.get()});

    EXPECT_EQ(report.fromEpoch, 1u);
    EXPECT_EQ(report.toEpoch, 2u);
    EXPECT_EQ(report.failedRecords, 0u);
    // The survey-driven plan must equal what consistent hashing
    // predicts over the same names — the minimal moved set.
    EXPECT_EQ(report.plannedMoves, report.predictedMoves);
    EXPECT_GT(report.plannedMoves, 0u);
    EXPECT_EQ(report.movedRecords + report.skippedRecords,
              report.plannedMoves);
    EXPECT_EQ(report.erasedAtSource, report.plannedMoves);

    // Every record sits on (exactly) its new ring owner.
    HashRing after({0, 1, 2, 3}, kVnodes);
    std::size_t on_new_shard = 0;
    for (const std::string &name : names) {
        const u32 owner = after.ownerOf(name);
        for (u32 shard = 0; shard < 4; ++shard)
            EXPECT_EQ(shards_[shard]->service->contains(name),
                      shard == owner)
                << name << " shard " << shard;
        if (owner == 3)
            ++on_new_shard;
    }
    EXPECT_EQ(on_new_shard, report.plannedMoves);

    // The pre-resize router heals through WRONG_EPOCH mid-call and
    // reads every name byte-exact under the new placement.
    expectByteExact(router, refs);
    EXPECT_EQ(router.epoch(), 2u);

    // Nothing lost: the merged directory still lists every name.
    auto stat = router.stat();
    ASSERT_TRUE(stat.has_value());
    EXPECT_EQ(stat->videos.size(), names.size());
}

TEST_F(ClusterResize, RemoveShardDrainsTheVictim)
{
    startCluster(3);
    ClusterRouter router = routerOver(3);

    std::vector<std::string> names;
    for (int i = 0; i < 10; ++i) {
        const std::string name = "drain-" + std::to_string(i);
        auto ack = router.put(makePutRequest(name, 300 + i));
        ASSERT_TRUE(ack.has_value()) << name;
        ASSERT_EQ(ack->status, Status::Ok) << name;
        names.push_back(name);
    }
    References refs = captureReferences(router, names);

    constexpr u32 kVictim = 1;
    MembershipManager manager(managed(3), 1, rebalanceConfig());
    MigrationReport report = manager.removeShard(kVictim);

    EXPECT_EQ(report.toEpoch, 2u);
    EXPECT_EQ(report.failedRecords, 0u);
    EXPECT_EQ(report.plannedMoves, report.predictedMoves);
    EXPECT_EQ(manager.shardCount(), 2u);
    // Fully drained: the victim holds no owner copies and can be
    // retired.
    EXPECT_EQ(shards_[kVictim]->service->videoCount(), 0u);

    HashRing after({0, 2}, kVnodes);
    for (const std::string &name : names)
        EXPECT_TRUE(shards_[after.ownerOf(name)]->service->contains(
            name))
            << name;

    // Survivors pruned their cached connection to the departed peer.
    EXPECT_LE(shards_[0]->node->cachedPeerCount(), 1u);
    EXPECT_LE(shards_[2]->node->cachedPeerCount(), 1u);

    expectByteExact(router, refs);
    EXPECT_EQ(router.epoch(), 2u);
}

TEST_F(ClusterResize, WrongEpochCarriesTheFreshRingOnTheWire)
{
    startCluster(3);
    ClusterRouter router = routerOver(3);
    const std::string name = "epoch-probe";
    auto ack = router.put(makePutRequest(name, 900));
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->status, Status::Ok);

    // Bump every node to epoch 5 without changing membership.
    std::vector<ClusterShard> addresses;
    for (const auto &shard : shards_)
        addresses.push_back(shard->address);
    for (const auto &shard : shards_)
        shard->node->setTopology(addresses, 5);

    const u32 owner = HashRing({0, 1, 2}, kVnodes).ownerOf(name);
    VappClient client;
    ASSERT_TRUE(client.connect("127.0.0.1",
                               shards_[owner]->server->port()));

    GetFramesRequest get;
    get.name = name;
    get.gop = 0;

    // Stale epoch: refused, and the refusal body is the fresh ring.
    get.ringEpoch = 1;
    auto raw = client.callRaw(Opcode::GetFrames,
                              serializeGetFramesRequest(get));
    ASSERT_TRUE(raw.has_value());
    EXPECT_EQ(raw->kind, static_cast<u8>(Status::WrongEpoch));
    ClusterInfoResponse info;
    ASSERT_TRUE(parseClusterInfoResponse(raw->payload, info));
    EXPECT_EQ(info.status, Status::WrongEpoch);
    EXPECT_EQ(info.epoch, 5u);
    EXPECT_EQ(info.shards.size(), 3u);

    // Unstamped (legacy wire shape) and current-epoch requests are
    // served normally.
    get.ringEpoch = 0;
    auto legacy = client.getFrames(get);
    ASSERT_TRUE(legacy.has_value());
    EXPECT_EQ(legacy->status, Status::Ok);
    get.ringEpoch = 5;
    auto current = client.getFrames(get);
    ASSERT_TRUE(current.has_value());
    EXPECT_EQ(current->status, Status::Ok);

    // Stale PUTs bounce the same way: nothing is stored.
    PutRequest put = makePutRequest("epoch-put", 901);
    put.ringEpoch = 1;
    auto put_raw =
        client.callRaw(Opcode::Put, serializePutRequest(put));
    ASSERT_TRUE(put_raw.has_value());
    EXPECT_EQ(put_raw->kind, static_cast<u8>(Status::WrongEpoch));
    for (const auto &shard : shards_)
        EXPECT_FALSE(shard->service->contains("epoch-put"));
}

TEST_F(ClusterResize, ResizeUnderConcurrentLoadKeepsEveryByte)
{
    startCluster(3);
    ClusterRouter setup = routerOver(3);

    std::vector<std::string> names;
    for (int i = 0; i < 6; ++i) {
        const std::string name = "live-" + std::to_string(i);
        auto ack = setup.put(makePutRequest(name, 500 + i));
        ASSERT_TRUE(ack.has_value()) << name;
        ASSERT_EQ(ack->status, Status::Ok) << name;
        names.push_back(name);
    }
    References refs = captureReferences(setup, names);
    ASSERT_EQ(refs.size(), names.size());

    bootShard(3, replicas_);

    std::atomic<bool> stop{false};
    std::atomic<int> mismatches{0};
    std::atomic<int> full_reads{0};
    std::atomic<int> read_gaps{0};

    auto reader = [&](std::size_t offset) {
        ClusterRouter router = routerOver(3);
        std::size_t turn = offset;
        while (!stop.load(std::memory_order_relaxed)) {
            const std::string &name = names[turn++ % names.size()];
            GetFramesRequest get;
            get.name = name;
            get.gop = 0;
            auto response = router.getFrames(get);
            if (!response) {
                // Transient routing gaps are tolerated (and
                // counted); wrong bytes never are.
                read_gaps.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            if (response->status != Status::Ok)
                continue;
            const GetFramesResponse &ref = refs[name];
            if (response->i420 == ref.i420 &&
                response->frameCount == ref.frameCount)
                full_reads.fetch_add(1, std::memory_order_relaxed);
            else
                mismatches.fetch_add(1, std::memory_order_relaxed);
        }
    };

    std::vector<std::string> written;
    auto writer = [&] {
        ClusterRouter router = routerOver(3);
        for (int j = 0; j < 6; ++j) {
            const std::string name =
                "concurrent-" + std::to_string(j);
            PutRequest put = makePutRequest(name, 700 + j);
            for (int attempt = 0; attempt < 8; ++attempt) {
                auto ack = router.put(put);
                if (ack && ack->status == Status::Ok) {
                    written.push_back(name);
                    break;
                }
            }
        }
    };

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 3; ++t)
        threads.emplace_back(reader, t);
    threads.emplace_back(writer);

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    MembershipManager manager(managed(3), 1, rebalanceConfig());
    MigrationReport report = manager.addShard(
        {shards_[3]->address, shards_[3]->node.get()});
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(report.failedRecords, 0u);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_GT(full_reads.load(), 0);

    // Quiesced: every pre-existing and every acknowledged
    // concurrent write is present and byte-exact.
    ClusterRouter after = routerOver(4);
    expectByteExact(after, refs);
    EXPECT_EQ(written.size(), 6u);
    HashRing ring({0, 1, 2, 3}, kVnodes);
    for (const std::string &name : written) {
        EXPECT_TRUE(
            shards_[ring.ownerOf(name)]->service->contains(name))
            << name;
        GetFramesRequest get;
        get.name = name;
        get.gop = 0;
        auto response = after.getFrames(get);
        ASSERT_TRUE(response.has_value()) << name;
        EXPECT_EQ(response->status, Status::Ok) << name;
    }
    auto stat = after.stat();
    ASSERT_TRUE(stat.has_value());
    EXPECT_EQ(stat->videos.size(), names.size() + written.size());
}

TEST_F(ClusterResize, KilledShardRebuildsByteExact)
{
    startCluster(3);
    ClusterRouter router = routerOver(3);
    const Bytes key(16, 0x5A);

    // Mixed population: plaintext and encrypted records, all with
    // replicated precise metadata (replicas = 2 covers every peer).
    std::map<std::string, u64> seeds;
    std::map<std::string, bool> secret;
    for (int i = 0; i < 8; ++i) {
        const std::string name = "rebuild-" + std::to_string(i);
        PutRequest put = makePutRequest(name, 800 + i);
        if (i % 3 == 0) {
            put.key = key;
            put.cipherMode = static_cast<u8>(CipherMode::CTR);
            put.keyId = 7;
        }
        auto ack = router.put(put);
        ASSERT_TRUE(ack.has_value()) << name;
        ASSERT_EQ(ack->status, Status::Ok) << name;
        seeds[name] = 800 + i;
        secret[name] = i % 3 == 0;
    }

    References refs;
    for (const auto &[name, seed] : seeds) {
        GetFramesRequest get;
        get.name = name;
        get.gop = 0;
        if (secret[name])
            get.key = key;
        auto response = router.getFrames(get);
        ASSERT_TRUE(response.has_value()) << name;
        ASSERT_EQ(response->status, Status::Ok) << name;
        refs[name] = *response;
    }

    // Kill a shard that owns at least one record: server down,
    // archive gone.
    HashRing ring({0, 1, 2}, kVnodes);
    const u32 victim = ring.ownerOf("rebuild-0");
    std::size_t owned = 0;
    for (const auto &[name, seed] : seeds)
        if (ring.ownerOf(name) == victim)
            ++owned;
    ASSERT_GT(owned, 0u);
    MembershipManager manager(managed(3), 1, rebalanceConfig());
    shards_[victim]->server->stop();
    shards_[victim]->server.reset();
    shards_[victim]->node.reset();
    shards_[victim]->service.reset();
    std::remove(shards_[victim]->path.c_str());

    // Boot the replacement under the same shard id (new port).
    bootShard(victim, replicas_);
    LiveShard &fresh = *shards_.back();

    RebuildReport report = manager.rebuildShard(
        {fresh.address, fresh.node.get()},
        [&](const std::string &name, Video &video, Bytes &out_key) {
            auto seed = seeds.find(name);
            if (seed == seeds.end())
                return false;
            video = generateSynthetic(tinySpec(seed->second));
            if (secret[name])
                out_key = key;
            return true;
        });

    EXPECT_EQ(report.toEpoch, 2u);
    EXPECT_EQ(report.names, owned);
    EXPECT_EQ(report.rebuilt, owned);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.metaRepaired, owned);
    // Parity: regenerated approximate cells match the original
    // pristine cell CRCs bit for bit, for every stream.
    EXPECT_GT(report.streamsCrcVerified, 0u);
    EXPECT_EQ(report.streamsCrcMismatched, 0u);
    EXPECT_TRUE(report.ok());

    // Every read — including through the pre-kill router, which
    // must re-learn the replacement's address via WRONG_EPOCH — is
    // byte-identical to the pre-kill capture.
    for (const auto &[name, ref] : refs) {
        GetFramesRequest get;
        get.name = name;
        get.gop = 0;
        if (secret[name])
            get.key = key;
        auto response = router.getFrames(get);
        ASSERT_TRUE(response.has_value()) << name;
        EXPECT_EQ(response->status, Status::Ok) << name;
        EXPECT_EQ(response->i420, ref.i420) << name;
    }
    EXPECT_EQ(router.epoch(), 2u);
}

TEST_F(ClusterResize, ReplicaReadServesDegradedWhenOwnerIsDown)
{
    startCluster(3);
    ClusterRouter router = routerOver(3);
    const std::string name = "degraded-read";
    auto ack = router.put(makePutRequest(name, 950));
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->status, Status::Ok);

    const u64 replica_reads_before =
        counterValue("client.replica_reads");
    const u32 owner = HashRing({0, 1, 2}, kVnodes).ownerOf(name);
    shards_[owner]->server->stop();

    GetFramesRequest get;
    get.name = name;
    get.gop = 0;
    auto response = router.getFrames(get);
    ASSERT_TRUE(response.has_value());
    // The owner's cells are unreachable; a metadata-replica
    // successor serves shape-correct, shed-stream frames.
    EXPECT_EQ(response->status, Status::Degraded);
    EXPECT_GT(response->streamsShed, 0u);
    EXPECT_GT(response->frameCount, 0u);
    EXPECT_GT(response->shedDbEst, 0.0);
    if (telemetry::kEnabled)
        EXPECT_GT(counterValue("client.replica_reads"),
                  replica_reads_before);
}

// --- key-epoch GC -----------------------------------------------------

TEST(ClusterKeyEpochs, ScanFlagsStaleKeyIdsAndRekeyClearsThem)
{
    const std::string path = tempPath("keycheck");
    std::remove(path.c_str());
    ArchiveService service(path);
    ASSERT_EQ(service.open(true), ArchiveError::None);

    const Bytes old_key(16, 0x11);
    const Bytes new_key(16, 0x22);
    EncryptionConfig old_epoch;
    old_epoch.key = old_key;
    old_epoch.keyId = 1;
    EncryptionConfig new_epoch;
    new_epoch.key = new_key;
    new_epoch.keyId = 2;

    Video video = generateSynthetic(tinySpec(42));
    PreparedVideo prepared = prepareVideo(
        video, EncoderConfig{}, EccAssignment::paperTable1());
    ArchivePutOptions plain;
    ArchivePutOptions stale;
    stale.encryption = old_epoch;
    ArchivePutOptions current;
    current.encryption = new_epoch;
    ASSERT_EQ(service.put("plain", prepared, plain),
              ArchiveError::None);
    ASSERT_EQ(service.put("stale", prepared, stale),
              ArchiveError::None);
    ASSERT_EQ(service.put("current", prepared, current),
              ArchiveError::None);

    // A half-finished rotation: the newest key id becomes the
    // expectation and older records are flagged for GC.
    KeyEpochReport report = service.verifyKeyEpochs();
    EXPECT_EQ(report.videos, 3u);
    EXPECT_EQ(report.encrypted, 2u);
    EXPECT_EQ(report.newestKeyId, 2u);
    ASSERT_EQ(report.staleNames.size(), 1u);
    EXPECT_EQ(report.staleNames[0], "stale");
    EXPECT_TRUE(report.inconsistentNames.empty());
    EXPECT_FALSE(report.clean());

    // Pinning the expectation works the same way.
    EXPECT_FALSE(service.verifyKeyEpochs(2).clean());

    // Completing the rotation retires the old epoch.
    ASSERT_EQ(service.rekeyVideo("stale", old_key, new_epoch),
              ArchiveError::None);
    KeyEpochReport after = service.verifyKeyEpochs();
    EXPECT_TRUE(after.clean());
    EXPECT_EQ(after.newestKeyId, 2u);

    std::remove(path.c_str());
}

} // namespace
} // namespace videoapp
