/**
 * @file
 * In-loop deblocking filter tests: boundary strength rules, edge
 * smoothing behaviour, slice-boundary isolation, and the end-to-end
 * quality/parity effects.
 */

#include <gtest/gtest.h>

#include "codec/deblock.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "quality/psnr.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

MbCoding
interMb(MotionVector mv, bool coded = false)
{
    MbCoding mb;
    mb.intra = false;
    mb.qp = 30;
    MotionInfo motion;
    motion.rect = {0, 0, 16, 16};
    motion.mv = mv;
    mb.motions.push_back(motion);
    if (coded)
        mb.coded[0] = true;
    return mb;
}

TEST(BoundaryStrength, IntraStrongest)
{
    MbCoding intra;
    intra.intra = true;
    MbCoding inter = interMb({0, 0});
    EXPECT_EQ(boundaryStrength(intra, 3, inter, 0, true), 4);
    EXPECT_EQ(boundaryStrength(inter, 3, intra, 0, true), 4);
    EXPECT_EQ(boundaryStrength(intra, 1, intra, 2, false), 3);
}

TEST(BoundaryStrength, CodedResidualMedium)
{
    MbCoding a = interMb({0, 0}, true);
    MbCoding b = interMb({0, 0}, false);
    EXPECT_EQ(boundaryStrength(a, 0, b, 0, true), 2);
    EXPECT_EQ(boundaryStrength(b, 1, b, 2, false), 0);
}

TEST(BoundaryStrength, MotionDiscontinuityWeak)
{
    MbCoding a = interMb({4, 0});
    MbCoding b = interMb({0, 0});
    EXPECT_EQ(boundaryStrength(a, 3, b, 0, true), 1);
    MbCoding c = interMb({4, 0});
    EXPECT_EQ(boundaryStrength(a, 3, c, 0, true), 0);
}

TEST(Deblock, SmoothsIntraBlockEdge)
{
    // Two intra MBs side by side with a hard luma step at the MB
    // boundary: the filter must shrink the step.
    Frame frame(32, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 32; ++x)
            frame.y().at(x, y) = x < 16 ? 100 : 110;

    MbCoding intra;
    intra.intra = true;
    intra.qp = 32;
    std::vector<MbCoding> codings{intra, intra};

    int step_before = std::abs(frame.y().at(15, 8) -
                               frame.y().at(16, 8));
    deblockFrame(frame, codings, 2, 1, {0});
    int step_after = std::abs(frame.y().at(15, 8) -
                              frame.y().at(16, 8));
    EXPECT_LT(step_after, step_before);
}

TEST(Deblock, LeavesStrongRealEdgesAlone)
{
    // A step far above alpha(qp) is treated as a real image edge.
    Frame frame(32, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 32; ++x)
            frame.y().at(x, y) = x < 16 ? 30 : 220;
    MbCoding intra;
    intra.intra = true;
    intra.qp = 26;
    std::vector<MbCoding> codings{intra, intra};
    deblockFrame(frame, codings, 2, 1, {0});
    EXPECT_EQ(frame.y().at(15, 8), 30);
    EXPECT_EQ(frame.y().at(16, 8), 220);
}

TEST(Deblock, DoesNotCrossSliceBoundary)
{
    // Vertical step at the row-boundary between two slices must be
    // untouched; the same boundary inside one slice is filtered.
    auto make = [](int rows_per_slice) {
        Frame frame(16, 32);
        for (int y = 0; y < 32; ++y)
            for (int x = 0; x < 16; ++x)
                frame.y().at(x, y) = y < 16 ? 100 : 110;
        MbCoding intra;
        intra.intra = true;
        intra.qp = 32;
        std::vector<MbCoding> codings{intra, intra};
        std::vector<int> firsts;
        for (int r = 0; r < 2; r += rows_per_slice)
            firsts.push_back(r);
        deblockFrame(frame, codings, 1, 2, firsts);
        return std::abs(frame.y().at(8, 15) - frame.y().at(8, 16));
    };
    int two_slices = make(1); // slice boundary at row 1
    int one_slice = make(2);
    EXPECT_LT(one_slice, 10);
    EXPECT_EQ(two_slices, 10); // untouched across the boundary
}

TEST(Deblock, ImprovesEndToEndQualityAtHighQp)
{
    // At coarse quantisation blocking dominates; the filter must
    // gain measurable PSNR on the decoded output.
    Video source = generateSynthetic(tinySpec(61));
    EncoderConfig with, without;
    with.crf = 32;
    without.crf = 32;
    with.deblocking = true;
    without.deblocking = false;
    double psnr_with =
        psnrVideo(source, decodeVideo(encodeVideo(source, with).video));
    double psnr_without = psnrVideo(
        source, decodeVideo(encodeVideo(source, without).video));
    EXPECT_GT(psnr_with, psnr_without - 0.05);
}

TEST(Deblock, FlagRoundTripsThroughContainer)
{
    Video source = generateSynthetic(tinySpec(62));
    EncoderConfig config;
    config.deblocking = false;
    EncodeResult enc = encodeVideo(source, config);
    EXPECT_FALSE(enc.video.header.deblocking());
    Bytes blob = serialize(enc.video);
    auto back = deserialize(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->header.deblocking());

    config.deblocking = true;
    EncodeResult enc2 = encodeVideo(source, config);
    EXPECT_TRUE(enc2.video.header.deblocking());
}

TEST(Deblock, ParityHoldsWithFilterOff)
{
    Video source = generateSynthetic(tinySpec(63));
    EncoderConfig config;
    config.deblocking = false;
    EncodeResult enc = encodeVideo(source, config);
    Video decoded = decodeVideo(enc.video);
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_EQ(decoded.frames[i].y().data(),
                  enc.reconFrames[i].y().data());
}

} // namespace
} // namespace videoapp
