/**
 * @file
 * Storage substrate tests: GF(2^10) arithmetic, the BCH codec, the
 * analytic ECC model behind Figure 8, the MLC PCM cell model, error
 * injection, and the modeled-vs-real channel equivalence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitstream.h"
#include "common/rng.h"
#include "storage/approx_store.h"
#include "storage/bch.h"
#include "storage/ecc_model.h"
#include "storage/error_injector.h"
#include "storage/dram.h"
#include "storage/gf.h"
#include "storage/pcm.h"

namespace videoapp {
namespace {

// --- GF(2^10) ---------------------------------------------------------

TEST(Gf1024, GeneratorHasFullOrder)
{
    const auto &gf = Gf1024::instance();
    std::set<u16> seen;
    for (int i = 0; i < Gf1024::kOrder; ++i)
        seen.insert(gf.alphaPow(i));
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(Gf1024::kOrder));
    EXPECT_EQ(gf.alphaPow(0), 1);
    EXPECT_EQ(gf.alphaPow(Gf1024::kOrder), 1); // wraps
}

TEST(Gf1024, MulAndInverseAgree)
{
    const auto &gf = Gf1024::instance();
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        u16 a = static_cast<u16>(1 + rng.nextBelow(1023));
        u16 b = static_cast<u16>(1 + rng.nextBelow(1023));
        EXPECT_EQ(gf.mul(a, gf.inv(a)), 1);
        EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
        EXPECT_EQ(gf.mul(a, 0), 0);
        EXPECT_EQ(gf.mul(0, b), 0);
    }
}

TEST(Gf1024, MulMatchesCarrylessReference)
{
    // Reference: schoolbook carry-less multiply then reduce.
    auto ref_mul = [](u32 a, u32 b) {
        u32 prod = 0;
        for (int i = 0; i < 10; ++i)
            if ((b >> i) & 1)
                prod ^= a << i;
        for (int i = 19; i >= 10; --i)
            if ((prod >> i) & 1)
                prod ^= Gf1024::kPrimitivePoly << (i - 10);
        return prod;
    };
    const auto &gf = Gf1024::instance();
    Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        u16 a = static_cast<u16>(rng.nextBelow(1024));
        u16 b = static_cast<u16>(rng.nextBelow(1024));
        EXPECT_EQ(gf.mul(a, b), ref_mul(a, b));
    }
}

// --- BCH ---------------------------------------------------------------

class BchParam : public ::testing::TestWithParam<int>
{
};

TEST_P(BchParam, ParityBitsAreTenPerError)
{
    BchCode code(GetParam());
    EXPECT_EQ(code.parityBits(), 10 * GetParam());
    EXPECT_EQ(code.dataBits(), 512);
}

TEST_P(BchParam, CleanCodewordDecodesWithZeroCorrections)
{
    Rng rng(20 + GetParam());
    BchCode code(GetParam());
    BitVec data(code.dataBits());
    for (auto &b : data)
        b = static_cast<u8>(rng.nextBelow(2));
    BitVec cw = code.encode(data);
    auto result = code.decode(cw);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.corrected, 0);
    for (int i = 0; i < code.dataBits(); ++i)
        EXPECT_EQ(cw[i], data[i]);
}

TEST_P(BchParam, CorrectsUpToTErrors)
{
    const int t = GetParam();
    Rng rng(40 + t);
    BchCode code(t);
    for (int trial = 0; trial < 10; ++trial) {
        BitVec data(code.dataBits());
        for (auto &b : data)
            b = static_cast<u8>(rng.nextBelow(2));
        BitVec cw = code.encode(data);

        int errors = 1 + static_cast<int>(rng.nextBelow(t));
        std::set<int> positions;
        while (static_cast<int>(positions.size()) < errors)
            positions.insert(
                static_cast<int>(rng.nextBelow(cw.size())));
        BitVec corrupted = cw;
        for (int p : positions)
            corrupted[p] ^= 1;

        auto result = code.decode(corrupted);
        EXPECT_TRUE(result.ok);
        EXPECT_EQ(result.corrected, errors);
        EXPECT_EQ(corrupted, cw);
    }
}

TEST_P(BchParam, ExactlyTErrorsCorrected)
{
    const int t = GetParam();
    Rng rng(60 + t);
    BchCode code(t);
    BitVec data(code.dataBits());
    for (auto &b : data)
        b = static_cast<u8>(rng.nextBelow(2));
    BitVec cw = code.encode(data);

    std::set<int> positions;
    while (static_cast<int>(positions.size()) < t)
        positions.insert(static_cast<int>(rng.nextBelow(cw.size())));
    BitVec corrupted = cw;
    for (int p : positions)
        corrupted[p] ^= 1;
    auto result = code.decode(corrupted);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.corrected, t);
    EXPECT_EQ(corrupted, cw);
}

TEST_P(BchParam, BeyondCapacityNeverCrashesAndIsUsuallyDetected)
{
    const int t = GetParam();
    Rng rng(80 + t);
    BchCode code(t);
    int detected = 0;
    const int trials = 10;
    for (int trial = 0; trial < trials; ++trial) {
        BitVec data(code.dataBits());
        for (auto &b : data)
            b = static_cast<u8>(rng.nextBelow(2));
        BitVec cw = code.encode(data);
        std::set<int> positions;
        while (static_cast<int>(positions.size()) < t + 2)
            positions.insert(
                static_cast<int>(rng.nextBelow(cw.size())));
        BitVec corrupted = cw;
        for (int p : positions)
            corrupted[p] ^= 1;
        auto result = code.decode(corrupted);
        detected += result.ok ? 0 : 1;
    }
    // t+2 errors exceed capacity; the decoder must flag most cases.
    EXPECT_GE(detected, trials / 2);
}

INSTANTIATE_TEST_SUITE_P(Strengths, BchParam,
                         ::testing::Values(1, 2, 6, 7, 8, 9, 10, 11,
                                           16));

TEST(Bch, ErrorsInParityAreAlsoCorrected)
{
    Rng rng(5);
    BchCode code(6);
    BitVec data(code.dataBits());
    for (auto &b : data)
        b = static_cast<u8>(rng.nextBelow(2));
    BitVec cw = code.encode(data);
    BitVec corrupted = cw;
    // Flip three parity-region bits.
    corrupted[513] ^= 1;
    corrupted[530] ^= 1;
    corrupted[571] ^= 1;
    auto result = code.decode(corrupted);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.corrected, 3);
    EXPECT_EQ(corrupted, cw);
}

TEST(Bch, PackUnpackRoundTrip)
{
    Rng rng(6);
    BitVec bits(677);
    for (auto &b : bits)
        b = static_cast<u8>(rng.nextBelow(2));
    Bytes packed = packBits(bits);
    EXPECT_EQ(packed.size(), (bits.size() + 7) / 8);
    BitVec back = unpackBits(packed, bits.size());
    EXPECT_EQ(back, bits);
}

// --- packed hot path vs bit-serial reference ----------------------------

TEST(BchPacked, EncodeMatchesReferenceForAllStrengths)
{
    for (int t = 1; t <= 16; ++t) {
        const BchCode &code = cachedBchCode(t);
        Rng rng(600 + t);
        for (int trial = 0; trial < 5; ++trial) {
            Bytes data(static_cast<std::size_t>(code.dataBits()) / 8);
            for (u8 &b : data)
                b = static_cast<u8>(rng.nextBelow(256));

            BitVec ref_cw = code.encodeReference(unpackBits(
                data, static_cast<std::size_t>(code.dataBits())));

            Bytes packed_cw(code.codewordBytes(), 0xAA);
            code.encodeBytes(data.data(), packed_cw.data());
            EXPECT_EQ(packed_cw, packBits(ref_cw))
                << "t=" << t << " trial=" << trial;
        }
    }
}

TEST(BchPacked, DecodeMatchesReferenceForAllStrengths)
{
    // Random codewords with 0..t injected errors: the packed decoder
    // must agree with the bit-serial reference on the result flags,
    // the corrected count, and the corrected codeword itself.
    for (int t = 1; t <= 16; ++t) {
        const BchCode &code = cachedBchCode(t);
        Rng rng(700 + t);
        for (int trial = 0; trial < 5; ++trial) {
            Bytes data(static_cast<std::size_t>(code.dataBits()) / 8);
            for (u8 &b : data)
                b = static_cast<u8>(rng.nextBelow(256));
            Bytes cw(code.codewordBytes(), 0);
            code.encodeBytes(data.data(), cw.data());

            int errors = static_cast<int>(
                rng.nextBelow(static_cast<u64>(t) + 1));
            std::set<u64> positions;
            while (static_cast<int>(positions.size()) < errors)
                positions.insert(rng.nextBelow(
                    static_cast<u64>(code.codewordBits())));
            Bytes corrupted = cw;
            for (u64 p : positions)
                corrupted[p / 8] ^=
                    static_cast<u8>(0x80u >> (p % 8));

            BitVec ref_bits = unpackBits(
                corrupted,
                static_cast<std::size_t>(code.codewordBits()));
            auto ref = code.decodeReference(ref_bits);

            Bytes packed = corrupted;
            auto got = code.decodeBytes(packed.data());

            EXPECT_EQ(got.ok, ref.ok) << "t=" << t;
            EXPECT_EQ(got.corrected, ref.corrected) << "t=" << t;
            EXPECT_EQ(packed, packBits(ref_bits)) << "t=" << t;
            if (got.ok) {
                EXPECT_EQ(packed, cw) << "t=" << t;
            }
        }
    }
}

TEST(BchPacked, DecodeAgreesOnOverloadedBlocks)
{
    // Beyond-capacity patterns: both paths must take the identical
    // branch (detected-and-unchanged or miscorrected the same way).
    const BchCode &code = cachedBchCode(4);
    Rng rng(811);
    for (int trial = 0; trial < 10; ++trial) {
        Bytes data(static_cast<std::size_t>(code.dataBits()) / 8);
        for (u8 &b : data)
            b = static_cast<u8>(rng.nextBelow(256));
        Bytes cw(code.codewordBytes(), 0);
        code.encodeBytes(data.data(), cw.data());
        Bytes corrupted = cw;
        std::set<u64> positions;
        while (positions.size() < 7)
            positions.insert(rng.nextBelow(
                static_cast<u64>(code.codewordBits())));
        for (u64 p : positions)
            corrupted[p / 8] ^= static_cast<u8>(0x80u >> (p % 8));

        BitVec ref_bits = unpackBits(
            corrupted,
            static_cast<std::size_t>(code.codewordBits()));
        auto ref = code.decodeReference(ref_bits);
        auto got = code.decodeBytes(corrupted.data());
        EXPECT_EQ(got.ok, ref.ok);
        EXPECT_EQ(got.corrected, ref.corrected);
        EXPECT_EQ(corrupted, packBits(ref_bits));
    }
}

TEST(BchPacked, CachedCodeIsSharedPerStrength)
{
    const BchCode &a = cachedBchCode(6);
    const BchCode &b = cachedBchCode(6);
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &cachedBchCode(7));
    EXPECT_EQ(a.t(), 6);
    EXPECT_EQ(cachedBchCode(7).t(), 7);
}

// --- ECC analytic model (Figure 8) --------------------------------------

TEST(EccModel, OverheadsMatchFigure8)
{
    EXPECT_NEAR(EccScheme{6}.overhead(), 0.1172, 1e-4);
    EXPECT_NEAR(EccScheme{7}.overhead(), 0.1367, 1e-3);
    EXPECT_NEAR(EccScheme{8}.overhead(), 0.1563, 1e-3);
    EXPECT_NEAR(EccScheme{9}.overhead(), 0.1758, 1e-3);
    EXPECT_NEAR(EccScheme{10}.overhead(), 0.1953, 1e-3);
    EXPECT_NEAR(EccScheme{16}.overhead(), 0.3125, 1e-3);
    EXPECT_DOUBLE_EQ(kEccNone.overhead(), 0.0);
}

TEST(EccModel, FailureRatesDecreaseWithStrength)
{
    double prev = 1.0;
    for (const auto &scheme : figure8Schemes()) {
        double rate = scheme.blockFailureRate();
        EXPECT_LT(rate, prev) << scheme.name();
        prev = rate;
    }
    // BCH-6 at 1e-3 raw BER yields ~1e-6-class uncorrectable rates.
    double ber6 = EccScheme{6}.effectiveBitErrorRate();
    EXPECT_GT(ber6, 1e-9);
    EXPECT_LT(ber6, 1e-7);
    // BCH-16 reaches the precise-storage class.
    EXPECT_LT(EccScheme{16}.effectiveBitErrorRate(), 1e-16);
}

TEST(EccModel, WeakestSchemeForTargets)
{
    EXPECT_TRUE(weakestSchemeFor(1e-2).isNone());
    EXPECT_TRUE(weakestSchemeFor(1e-3).isNone());
    EccScheme mid = weakestSchemeFor(1e-6);
    EXPECT_GE(mid.t, 4);
    EXPECT_LE(mid.t, 6);
    EccScheme strong = weakestSchemeFor(1e-16);
    EXPECT_LE(strong.t, 16);
    EXPECT_GE(strong.t, 12);
    // Monotone: tighter targets need at least as strong a scheme.
    EXPECT_LE(weakestSchemeFor(1e-6).t, weakestSchemeFor(1e-10).t);
}

// --- PCM ---------------------------------------------------------------

TEST(Pcm, CalibratedRawBerAtScrubInterval)
{
    McPcm pcm;
    EXPECT_NEAR(pcm.rawBitErrorRate(), 1e-3, 1e-4);
}

TEST(Pcm, ErrorRateGrowsWithAge)
{
    McPcm pcm;
    double young = pcm.rawBitErrorRate(3600.0);
    double scrub = pcm.rawBitErrorRate(kDefaultScrubSeconds);
    double old_age = pcm.rawBitErrorRate(10 * kDefaultScrubSeconds);
    EXPECT_LT(young, scrub);
    EXPECT_LT(scrub, old_age);
}

TEST(Pcm, EmpiricalBerMatchesAnalytic)
{
    McPcm pcm;
    Rng rng(77);
    Bytes data(64 * 1024);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    Bytes read = pcm.storeAndRead(data, kDefaultScrubSeconds, rng);
    ASSERT_EQ(read.size(), data.size());
    std::size_t flips = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        flips += static_cast<std::size_t>(
            __builtin_popcount(data[i] ^ read[i]));
    double ber = static_cast<double>(flips) / (data.size() * 8);
    // 512K bits at 1e-3 -> ~524 errors; allow generous Monte Carlo
    // slack plus model mismatch from edge levels.
    EXPECT_NEAR(ber, 1e-3, 4e-4);
}

TEST(Pcm, GrayAdjacencyProperty)
{
    for (u32 level = 0; level + 1 < 8; ++level) {
        u32 a = grayEncode(level);
        u32 b = grayEncode(level + 1);
        EXPECT_EQ(__builtin_popcount(a ^ b), 1) << level;
    }
    for (u32 v = 0; v < 8; ++v)
        EXPECT_EQ(grayDecode(grayEncode(v)), v);
}

TEST(Pcm, CellsForRoundsUp)
{
    McPcm pcm;
    EXPECT_EQ(pcm.cellsFor(3), 1u);
    EXPECT_EQ(pcm.cellsFor(4), 2u);
    EXPECT_EQ(pcm.cellsFor(0), 0u);
    EXPECT_EQ(SlcPcm::cellsFor(7), 7u);
}

TEST(Pcm, MoreLevelsMoreErrorsAtSamePhysicalNoise)
{
    // Section 2.2's design trade-off: packing more levels into the
    // same resistance window raises the error rate steeply.
    McPcm pcm; // calibrated as 8-level (3 bits)
    double slc = pcm.rawBitErrorRateForLevels(1, kDefaultScrubSeconds);
    double b2 = pcm.rawBitErrorRateForLevels(2, kDefaultScrubSeconds);
    double b3 = pcm.rawBitErrorRateForLevels(3, kDefaultScrubSeconds);
    double b4 = pcm.rawBitErrorRateForLevels(4, kDefaultScrubSeconds);
    EXPECT_LT(slc, 1e-12);         // SLC: effectively precise
    EXPECT_LT(b2, b3 / 100);       // each extra bit costs decades
    EXPECT_LT(b3, b4 / 10);
    EXPECT_NEAR(b3, pcm.rawBitErrorRate(), 1e-6); // self-consistent
}

// --- Approximate DRAM (related-work substrate) ------------------------------

TEST(Dram, CalibrationAnchors)
{
    ApproxDram dram;
    EXPECT_NEAR(std::log10(dram.bitErrorRate(kDramStandardRefresh)),
                -15.0, 0.2);
    EXPECT_NEAR(std::log10(dram.bitErrorRate(100.0)), -4.0, 0.2);
}

TEST(Dram, ErrorRateMonotoneInRefreshInterval)
{
    ApproxDram dram;
    double prev = 0;
    for (double t : {0.064, 0.5, 2.0, 10.0, 60.0, 300.0}) {
        double ber = dram.bitErrorRate(t);
        EXPECT_GE(ber, prev);
        prev = ber;
    }
    EXPECT_DOUBLE_EQ(dram.bitErrorRate(0.0), 0.0);
}

TEST(Dram, RefreshPowerScalesInversely)
{
    ApproxDram dram;
    EXPECT_DOUBLE_EQ(dram.refreshPowerFraction(kDramStandardRefresh),
                     1.0);
    EXPECT_NEAR(dram.refreshPowerFraction(0.64), 0.1, 1e-12);
}

TEST(Dram, StoreAndReadInjectsAtModelRate)
{
    ApproxDram dram;
    Rng rng(31);
    Bytes data(32 * 1024, 0xA5);
    // Pick an interval with a convenient error rate (~1e-4).
    Bytes read = dram.storeAndRead(data, 100.0, rng);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        flips += static_cast<std::size_t>(
            __builtin_popcount(data[i] ^ read[i]));
    double expected = data.size() * 8 * dram.bitErrorRate(100.0);
    EXPECT_NEAR(static_cast<double>(flips), expected,
                5 * std::sqrt(expected) + 3);
}

// --- Error injection -----------------------------------------------------

TEST(ErrorInjector, RateZeroInjectsNothing)
{
    Rng rng(1);
    Bytes data(1024, 0xAB);
    Bytes orig = data;
    auto flips = injectErrors(data, 0.0, rng);
    EXPECT_TRUE(flips.empty());
    EXPECT_EQ(data, orig);
}

TEST(ErrorInjector, MeanMatchesRate)
{
    Rng rng(2);
    double total = 0;
    const int runs = 200;
    for (int r = 0; r < runs; ++r) {
        Bytes data(4096, 0);
        total += static_cast<double>(
            injectErrors(data, 1e-3, rng).size());
    }
    double expected = 4096 * 8 * 1e-3; // 32.8 per run
    EXPECT_NEAR(total / runs, expected, 2.0);
}

TEST(ErrorInjector, RangeRestrictionHolds)
{
    Rng rng(3);
    Bytes data(1024, 0);
    auto flips = injectErrorsInRange(data, 1000, 2000, 0.05, rng);
    EXPECT_FALSE(flips.empty());
    for (BitPos p : flips) {
        EXPECT_GE(p, 1000u);
        EXPECT_LT(p, 2000u);
    }
    // Bits outside the range must be untouched.
    for (std::size_t bit = 0; bit < 1000; ++bit)
        EXPECT_EQ(getBit(data, bit), 0u);
    for (std::size_t bit = 2000; bit < 8192; ++bit)
        EXPECT_EQ(getBit(data, bit), 0u);
}

TEST(ErrorInjector, ExactCountDistinct)
{
    Rng rng(4);
    Bytes data(128, 0);
    auto flips = injectErrorCount(data, 50, rng);
    EXPECT_EQ(flips.size(), 50u);
    std::set<BitPos> unique(flips.begin(), flips.end());
    EXPECT_EQ(unique.size(), 50u);
    std::size_t set_bits = 0;
    for (u8 b : data)
        set_bits += static_cast<std::size_t>(__builtin_popcount(b));
    EXPECT_EQ(set_bits, 50u);
}

TEST(ErrorInjector, ProtectedStreamMostlyClean)
{
    Rng rng(5);
    Bytes data(64 * 1024, 0x5C);
    Bytes orig = data;
    // BCH-10 at 1e-3: block failure ~1e-10, so 1k blocks stay clean.
    auto flips = injectErrorsProtected(data, EccScheme{10}, 1e-3, rng);
    EXPECT_TRUE(flips.empty());
    EXPECT_EQ(data, orig);
}

TEST(ErrorInjector, UnprotectedEqualsRawRate)
{
    Rng rng(6);
    Bytes data(16 * 1024, 0);
    auto flips = injectErrorsProtected(data, kEccNone, 1e-3, rng);
    double expected = 16 * 1024 * 8 * 1e-3;
    EXPECT_NEAR(static_cast<double>(flips.size()), expected,
                5 * std::sqrt(expected));
}

// --- Channels -------------------------------------------------------------

TEST(Channels, RealChannelCorrectsEverythingAtModerateRate)
{
    // At raw 1e-3 with BCH-16, essentially no block fails; the real
    // codec must return the exact payload.
    Rng rng(7);
    Bytes data(2048);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    RealBchChannel channel(1e-3);
    Bytes out = channel.roundTrip(data, EccScheme{16}, rng);
    EXPECT_EQ(out, data);
}

TEST(Channels, RealChannelPassesErrorsWhenUnprotected)
{
    Rng rng(8);
    Bytes data(8192, 0);
    RealBchChannel channel(1e-2);
    Bytes out = channel.roundTrip(data, kEccNone, rng);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        flips += static_cast<std::size_t>(
            __builtin_popcount(data[i] ^ out[i]));
    double expected = 8192 * 8 * 1e-2;
    EXPECT_NEAR(static_cast<double>(flips), expected,
                5 * std::sqrt(expected));
}

TEST(Channels, ModeledMatchesRealStatistically)
{
    // Use a high raw rate so BCH-2 blocks fail often enough to
    // compare distributions in reasonable time.
    const double raw = 8e-3;
    const EccScheme scheme{2};
    Rng rng_model(9), rng_real(10);
    ModeledChannel model(raw);
    RealBchChannel real(raw);

    auto run = [&](const StorageChannel &ch, Rng &rng) {
        double damaged = 0;
        const int runs = 30;
        for (int r = 0; r < runs; ++r) {
            Bytes data(1024, 0); // 16 blocks
            Bytes out = ch.roundTrip(data, scheme, rng);
            for (std::size_t i = 0; i < data.size(); ++i)
                damaged += __builtin_popcount(data[i] ^ out[i]);
        }
        return damaged / runs;
    };

    double m = run(model, rng_model);
    double r = run(real, rng_real);
    // Block failure ~2.6% at these settings -> ~0.4 failed blocks
    // per run, ~1.3 damaged payload bits on average. The two channels
    // must agree within Monte Carlo noise.
    EXPECT_GT(m, 0.1);
    EXPECT_GT(r, 0.1);
    EXPECT_NEAR(m, r, std::max(m, r));
}

TEST(Channels, PcmBackedChannelRoundTrips)
{
    Rng rng(11);
    McPcm pcm;
    RealBchChannel channel(pcm, kDefaultScrubSeconds);
    Bytes data(1024);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    // BCH-16 over PCM at the scrub interval: error-free payload.
    Bytes out = channel.roundTrip(data, EccScheme{16}, rng);
    EXPECT_EQ(out, data);
}

// --- Accounting -------------------------------------------------------------

TEST(Accounting, ParityBitsRoundUpPerBlock)
{
    EXPECT_EQ(parityBitsFor(512, EccScheme{6}), 60u);
    EXPECT_EQ(parityBitsFor(513, EccScheme{6}), 120u);
    EXPECT_EQ(parityBitsFor(0, EccScheme{6}), 0u);
    EXPECT_EQ(parityBitsFor(1 << 20, kEccNone), 0u);
}

TEST(Accounting, CellsPerPixelMatchesHandComputation)
{
    StorageAccountant acc(3);
    acc.addStream(512 * 100, EccScheme{6}); // 51200 + 6000 parity
    acc.addPreciseBits(512);                // + 512 + 160
    EXPECT_EQ(acc.payloadBits(), 51200u + 512u);
    EXPECT_EQ(acc.parityBits(), 6000u + 160u);
    u64 bits = 51200 + 6000 + 512 + 160;
    EXPECT_EQ(acc.cells(), (bits + 2) / 3);
    EXPECT_NEAR(acc.cellsPerPixel(10000),
                static_cast<double>((bits + 2) / 3) / 10000, 1e-12);
}

TEST(Accounting, UniformBch16MatchesPaperOverhead)
{
    // Uniform correction on MLC: 31.3% overhead (Figure 8 / §7.3).
    StorageAccountant acc(3);
    acc.addStream(512 * 1000, EccScheme{16});
    EXPECT_NEAR(acc.eccOverheadFraction(), 0.3125 / 1.3125, 1e-3);
}

} // namespace
} // namespace videoapp
