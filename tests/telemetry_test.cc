/**
 * @file
 * Telemetry subsystem tests: exact concurrent counter sums from
 * parallelFor workers, log-histogram bucket boundaries, snapshot
 * JSON determinism across thread counts, and the disabled-mode
 * variants compiling to stateless no-ops.
 *
 * Enabled-mode behaviour is tested through BasicCounter<true> etc.
 * explicitly, so these tests pass in both -DVIDEOAPP_TELEMETRY=ON
 * and OFF builds.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/telemetry.h"

namespace videoapp {
namespace telemetry {
namespace {

// --- disabled mode is a stateless no-op --------------------------------

static_assert(sizeof(BasicCounter<false>) == 1,
              "disabled counter must carry no state");
static_assert(sizeof(BasicHistogram<false>) == 1,
              "disabled histogram must carry no state");
static_assert(sizeof(BasicTimer<false>) == 1,
              "disabled timer must carry no state");
static_assert(sizeof(BasicScopedTimer<false>) == 1,
              "disabled scoped timer must carry no state");
static_assert(sizeof(BasicCounter<true>) >=
                  kCounterShards * 64,
              "enabled counter must be shard-padded");

TEST(TelemetryDisabled, OperationsAreNoOpsAndReadZero)
{
    BasicCounter<false> counter;
    counter.add();
    counter.add(1000);
    EXPECT_EQ(counter.value(), 0u);

    BasicHistogram<false> hist;
    hist.record(7);
    hist.record(1u << 20);
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0u);
    EXPECT_EQ(hist.bucketCount(3), 0u);

    BasicTimer<false> timer;
    {
        BasicScopedTimer<false> scope(timer);
    }
    timer.add(12345);
    EXPECT_EQ(timer.calls(), 0u);
    EXPECT_EQ(timer.totalNanoseconds(), 0u);
    EXPECT_DOUBLE_EQ(timer.totalSeconds(), 0.0);
}

TEST(TelemetryDisabled, RegistrySnapshotsEmptyMetrics)
{
    BasicRegistry<false> registry;
    registry.counter("a.b").add(9);
    registry.timer("t").add(9);
    registry.histogram("h").record(9);
    std::string json = registry.snapshotJson();
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"a.b\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"t\": {\"calls\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"h\": {\"count\": 0"), std::string::npos);
}

// --- counters ----------------------------------------------------------

TEST(TelemetryCounter, SingleThreadAddsAreExact)
{
    BasicCounter<true> counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(TelemetryCounter, ConcurrentIncrementsFromParallelForSumExactly)
{
    setThreadCount(4);
    BasicCounter<true> counter;
    const std::size_t n = 100000;
    parallelFor(n, [&](std::size_t i) { counter.add(i % 3 + 1); });
    u64 expected = 0;
    for (std::size_t i = 0; i < n; ++i)
        expected += i % 3 + 1;
    EXPECT_EQ(counter.value(), expected);
    setThreadCount(0);
}

TEST(TelemetryCounter, ConcurrentIncrementsFromRawThreadsSumExactly)
{
    BasicCounter<true> counter;
    const int threads = 8;
    const int per_thread = 50000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i)
                counter.add();
        });
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(counter.value(),
              static_cast<u64>(threads) * per_thread);
}

// --- histogram buckets -------------------------------------------------

TEST(TelemetryHistogram, BucketBoundaries)
{
    using H = BasicHistogram<true>;
    // Bucket 0 is exactly zero; bucket b covers [2^(b-1), 2^b - 1].
    EXPECT_EQ(H::bucketOf(0), 0);
    EXPECT_EQ(H::bucketOf(1), 1);
    EXPECT_EQ(H::bucketOf(2), 2);
    EXPECT_EQ(H::bucketOf(3), 2);
    EXPECT_EQ(H::bucketOf(4), 3);
    EXPECT_EQ(H::bucketOf(7), 3);
    EXPECT_EQ(H::bucketOf(8), 4);
    EXPECT_EQ(H::bucketOf(std::numeric_limits<u64>::max()), 64);

    EXPECT_EQ(H::bucketUpperBound(0), 0u);
    EXPECT_EQ(H::bucketUpperBound(1), 1u);
    EXPECT_EQ(H::bucketUpperBound(2), 3u);
    EXPECT_EQ(H::bucketUpperBound(3), 7u);
    EXPECT_EQ(H::bucketUpperBound(64),
              std::numeric_limits<u64>::max());

    // Every boundary value lands in a bucket whose bound contains it.
    for (int b = 1; b < 64; ++b) {
        u64 lo = u64{1} << (b - 1);
        u64 hi = H::bucketUpperBound(b);
        EXPECT_EQ(H::bucketOf(lo), b) << "low edge of bucket " << b;
        EXPECT_EQ(H::bucketOf(hi), b) << "high edge of bucket " << b;
    }
}

TEST(TelemetryHistogram, RecordCountsAndSums)
{
    BasicHistogram<true> hist;
    hist.record(0);
    hist.record(1);
    hist.record(2);
    hist.record(3);
    hist.record(1024);
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_EQ(hist.sum(), 1030u);
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(2), 2u);
    EXPECT_EQ(hist.bucketCount(11), 1u); // 1024 = 2^10
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0u);
}

// --- timers ------------------------------------------------------------

TEST(TelemetryTimer, ScopedTimerAccumulates)
{
    BasicTimer<true> timer;
    {
        BasicScopedTimer<true> scope(timer);
    }
    {
        BasicScopedTimer<true> scope(timer);
    }
    EXPECT_EQ(timer.calls(), 2u);
    // Monotonic clock: elapsed time is never negative.
    EXPECT_GE(timer.totalSeconds(), 0.0);
}

// --- registry / snapshot -----------------------------------------------

TEST(TelemetryRegistry, LookupInternsByName)
{
    BasicRegistry<true> registry;
    BasicCounter<true> &a = registry.counter("x");
    BasicCounter<true> &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    BasicCounter<true> &c = registry.counter("y");
    EXPECT_NE(&a, &c);
}

TEST(TelemetryRegistry, ResetAllZeroesEverything)
{
    BasicRegistry<true> registry;
    registry.counter("c").add(5);
    registry.timer("t").add(5);
    registry.histogram("h").record(5);
    registry.resetAll();
    EXPECT_EQ(registry.counter("c").value(), 0u);
    EXPECT_EQ(registry.timer("t").calls(), 0u);
    EXPECT_EQ(registry.histogram("h").count(), 0u);
}

/** Fill @p registry with a deterministic workload at @p threads. */
std::string
snapshotAtThreadCount(int threads)
{
    setThreadCount(threads);
    BasicRegistry<true> registry;
    BasicCounter<true> &blocks = registry.counter("z.blocks");
    BasicCounter<true> &bits = registry.counter("a.bits");
    BasicHistogram<true> &sizes = registry.histogram("m.sizes");
    parallelFor(5000, [&](std::size_t i) {
        blocks.add(1);
        bits.add(i % 7);
        sizes.record(i % 1000);
    });
    setThreadCount(0);
    return registry.snapshotJson(2);
}

TEST(TelemetryRegistry, SnapshotJsonDeterministicAcrossThreadCounts)
{
    std::string one = snapshotAtThreadCount(1);
    std::string four = snapshotAtThreadCount(4);
    std::string eight = snapshotAtThreadCount(8);
    EXPECT_EQ(one, four);
    EXPECT_EQ(one, eight);
    // Keys must appear sorted regardless of registration order.
    EXPECT_LT(one.find("\"a.bits\""), one.find("\"z.blocks\""));
    EXPECT_NE(one.find("\"schema_version\": 1"), std::string::npos);
}

TEST(TelemetryRegistry, SnapshotShapeMatchesSchema)
{
    BasicRegistry<true> registry;
    registry.counter("c1").add(3);
    registry.timer("t1").add(1500000000); // 1.5 s
    registry.histogram("h1").record(0);
    registry.histogram("h1").record(5);
    std::string json = registry.snapshotJson();

    EXPECT_NE(json.find("\"c1\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"calls\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"total_s\": 1.500000000"),
              std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"sum\": 5"), std::string::npos);
    // Bucket 0 (le 0) and bucket 3 (le 7) each saw one sample.
    EXPECT_NE(json.find("{\"le\": 0, \"count\": 1}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"le\": 7, \"count\": 1}"),
              std::string::npos);
}

TEST(TelemetryRegistry, GlobalRegistryIsASingleton)
{
    EXPECT_EQ(&globalRegistry(), &globalRegistry());
    // The build-selected variant matches the compile-time switch.
    EXPECT_EQ(kEnabled, VIDEOAPP_TELEMETRY != 0);
}

// --- macros ------------------------------------------------------------

TEST(TelemetryMacros, CountScopeAndHistCompileAndRespectMode)
{
    u64 before = globalRegistry()
                     .counter("test.macro_counter")
                     .value();
    VA_TELEM_COUNT("test.macro_counter", 2);
    {
        VA_TELEM_SCOPE("test.macro_timer");
        VA_TELEM_HIST("test.macro_hist", 42);
    }
    u64 after =
        globalRegistry().counter("test.macro_counter").value();
    if (kEnabled)
        EXPECT_EQ(after, before + 2);
    else
        EXPECT_EQ(after, 0u);
}

} // namespace
} // namespace telemetry
} // namespace videoapp
