/**
 * @file
 * VAPP archive subsystem tests: cell-image export/read/scrub parity
 * with the in-memory BCH channel, container serialization and its
 * hostile-input error paths (fuzzed), the ArchiveService put/get/
 * scrub API across process "restarts" (reopen), decode parity with
 * the in-memory pipeline at equal seeds, and concurrency
 * determinism (suite names contain "Archive" so the TSan CI job
 * picks them up).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "archive/archive_service.h"
#include "archive/vapp_container.h"
#include "common/crc32.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "quality/psnr.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

u64
counterValue(const char *name)
{
    return telemetry::globalRegistry().counter(name).value();
}

Bytes
randomBytes(std::size_t n, u64 seed)
{
    Rng rng(seed);
    Bytes out(n);
    for (auto &b : out)
        b = static_cast<u8>(rng.next());
    return out;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "archive_test_" + name + ".vapp";
}

/** "v<i>" (built without the char* + string&& operator+ overload,
 * which trips GCC 12's -Wrestrict false positive under -Werror). */
std::string
videoName(std::size_t i)
{
    std::string name = "v";
    name += std::to_string(i);
    return name;
}

PreparedVideo
makePrepared(u64 seed)
{
    Video source = generateSynthetic(tinySpec(seed));
    EncoderConfig config;
    config.gop.gopSize = 8;
    config.gop.bFrames = 2;
    return prepareVideo(source, config,
                        EccAssignment::paperTable1());
}

bool
videosEqual(const Video &a, const Video &b)
{
    if (a.frames.size() != b.frames.size())
        return false;
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        if (a.frames[i].y().data() != b.frames[i].y().data() ||
            a.frames[i].u().data() != b.frames[i].u().data() ||
            a.frames[i].v().data() != b.frames[i].v().data())
            return false;
    }
    return true;
}

EncryptionConfig
testEncryption()
{
    EncryptionConfig enc;
    enc.mode = CipherMode::CTR;
    enc.key = Bytes(32, 0x5F);
    enc.masterIv[5] = 0xA7;
    enc.keyId = 42;
    return enc;
}

// --- cell images ------------------------------------------------------

TEST(ArchiveCellImage, CleanRoundTripAllSchemes)
{
    for (int t : {0, 2, 6, 16, 31}) {
        Bytes data = randomBytes(777, 10 + static_cast<u64>(t));
        CellImage image = exportCellImage(data, EccScheme{t});
        EXPECT_EQ(image.schemeT, t);
        EXPECT_EQ(image.payloadBytes, data.size());
        if (t == 0)
            EXPECT_EQ(image.cells, data);
        else
            EXPECT_GT(image.cells.size(), data.size());

        CellReadStats stats;
        Bytes read = readCellImage(image, &stats);
        EXPECT_EQ(read, data) << "t=" << t;
        EXPECT_EQ(stats.blocksCorrected, 0u);
        EXPECT_EQ(stats.blocksUncorrectable, 0u);
        if (t > 0) {
            EXPECT_EQ(stats.blocksRead, (data.size() + 63) / 64);
        }
    }
}

TEST(ArchiveCellImage, DegradeReadMatchesRealChannel)
{
    // export + degrade + read must be bit-identical to the
    // in-memory RealBchChannel round trip at the same seed: the
    // archive *is* the modeled device.
    RealBchChannel channel(1e-3);
    for (int t : {0, 2, 6}) {
        Bytes data = randomBytes(3000, 77 + static_cast<u64>(t));
        Rng rng_mem(99);
        Bytes in_memory =
            channel.roundTrip(data, EccScheme{t}, rng_mem);

        CellImage image = exportCellImage(data, EccScheme{t});
        Rng rng_arch(99);
        degradeCellImage(image, 1e-3, rng_arch);
        Bytes from_cells = readCellImage(image);
        EXPECT_EQ(from_cells, in_memory) << "t=" << t;
    }
}

TEST(ArchiveCellImage, ScrubRewritesCorrectedBlocks)
{
    Bytes data = randomBytes(4096, 5);
    CellImage image = exportCellImage(data, EccScheme{6});
    Bytes pristine = image.cells;

    Rng rng(3);
    degradeCellImage(image, 1e-3, rng);
    EXPECT_NE(image.cells, pristine);

    CellReadStats stats;
    Bytes read = scrubCellImage(image, &stats);
    EXPECT_EQ(read, data);
    EXPECT_GT(stats.blocksCorrected, 0u);
    EXPECT_GT(stats.bitsCorrected, 0u);
    EXPECT_EQ(stats.blocksUncorrectable, 0u);
    // The scrub pass restored the device content.
    EXPECT_EQ(image.cells, pristine);

    CellReadStats clean;
    readCellImage(image, &clean);
    EXPECT_EQ(clean.blocksCorrected, 0u);
}

TEST(ArchiveCellImage, UncorrectableBlocksKeepRawErrors)
{
    Bytes data = randomBytes(2048, 6);
    CellImage image = exportCellImage(data, EccScheme{2});
    Rng rng(4);
    degradeCellImage(image, 0.05, rng); // far beyond t=2
    CellReadStats stats;
    Bytes read = readCellImage(image, &stats);
    EXPECT_GT(stats.blocksUncorrectable, 0u);
    EXPECT_NE(read, data); // errors pass through, no crash
    EXPECT_EQ(read.size(), data.size());
}

TEST(ArchiveCellImage, PcmDegradeAges)
{
    Bytes data = randomBytes(1024, 8);
    CellImage image = exportCellImage(data, EccScheme{6});
    Bytes pristine = image.cells;
    McPcm pcm;
    Rng rng(9);
    degradeCellImage(image, pcm, kDefaultScrubSeconds, rng);
    EXPECT_EQ(image.cells.size(), pristine.size());
    CellReadStats stats;
    Bytes read = readCellImage(image, &stats);
    EXPECT_EQ(read.size(), data.size());
    EXPECT_EQ(stats.blocksUncorrectable, 0u);
    EXPECT_EQ(read, data);
}

// --- container format -------------------------------------------------

Archive
makeArchive()
{
    Archive archive;
    PreparedVideo a = makePrepared(31);
    PreparedVideo b = makePrepared(32);
    archive.videos["plain"] = recordFromPrepared(a, std::nullopt);
    archive.videos["secret"] =
        recordFromPrepared(b, testEncryption());
    return archive;
}

TEST(ArchiveContainer, SerializeParseRoundTrip)
{
    Archive archive = makeArchive();
    Bytes blob = serializeArchive(archive);
    Archive parsed;
    ASSERT_EQ(parseArchive(blob, parsed), ArchiveError::None);

    ASSERT_EQ(parsed.videos.size(), archive.videos.size());
    for (const auto &[name, record] : archive.videos) {
        ASSERT_TRUE(parsed.videos.count(name));
        const VideoRecord &got = parsed.videos.at(name);
        EXPECT_EQ(serializeHeaders(got.layout),
                  serializeHeaders(record.layout));
        ASSERT_EQ(got.layout.payloads.size(),
                  record.layout.payloads.size());
        for (std::size_t i = 0; i < got.layout.payloads.size(); ++i)
            EXPECT_EQ(got.layout.payloads[i].size(),
                      record.layout.payloads[i].size());
        ASSERT_EQ(got.crypto.has_value(),
                  record.crypto.has_value());
        if (record.crypto) {
            EXPECT_EQ(got.crypto->mode, record.crypto->mode);
            EXPECT_EQ(got.crypto->keyId, record.crypto->keyId);
            EXPECT_EQ(got.crypto->masterIv,
                      record.crypto->masterIv);
        }
        ASSERT_EQ(got.streams.size(), record.streams.size());
        for (std::size_t i = 0; i < got.streams.size(); ++i) {
            const StreamRecord &g = got.streams[i];
            const StreamRecord &w = record.streams[i];
            EXPECT_EQ(g.schemeT, w.schemeT);
            EXPECT_EQ(g.bitLength, w.bitLength);
            EXPECT_EQ(g.trueBytes, w.trueBytes);
            EXPECT_EQ(g.cellsCrc, w.cellsCrc);
            EXPECT_EQ(g.image.cells, w.image.cells);
            EXPECT_EQ(g.image.payloadBytes, w.image.payloadBytes);
            EXPECT_EQ(g.image.schemeT, w.image.schemeT);
        }
    }

    // Serialization is canonical: round-tripping reproduces the
    // exact bytes.
    EXPECT_EQ(serializeArchive(parsed), blob);
}

TEST(ArchiveContainer, EmptyArchiveRoundTrip)
{
    Archive archive;
    Bytes blob = serializeArchive(archive);
    Archive parsed;
    ASSERT_EQ(parseArchive(blob, parsed), ArchiveError::None);
    EXPECT_TRUE(parsed.videos.empty());
    // Writers emit the oldest version that can represent the
    // archive: nothing held for peers -> the version 2 layout.
    EXPECT_EQ(parsed.version, 2u);
}

TEST(ArchiveContainer, ReplicaSectionRoundTripsAndGatesVersion)
{
    Archive archive = makeArchive();
    EXPECT_EQ(serializeArchive(archive)[7], 2u);

    // Holding a replica blob for a peer bumps the file to version 3
    // and the blobs survive the round trip byte-exact.
    archive.replicas["peer-a"] = Bytes{1, 2, 3, 4, 5};
    archive.replicas["peer-b"] =
        serializeRecordMeta(archive.videos.begin()->second);
    Bytes blob = serializeArchive(archive);
    EXPECT_EQ(blob[7], 3u);

    Archive parsed;
    ASSERT_EQ(parseArchive(blob, parsed), ArchiveError::None);
    EXPECT_EQ(parsed.version, 3u);
    EXPECT_EQ(parsed.replicas, archive.replicas);
    EXPECT_EQ(parsed.videos.size(), archive.videos.size());
    EXPECT_EQ(serializeArchive(parsed), blob);

    // The section lives inside the CRC-protected directory, so
    // every truncation of a version-3 file still fails cleanly.
    for (std::size_t len = 0; len < blob.size();
         len += 1 + len / 13) {
        Bytes cut(blob.begin(),
                  blob.begin() + static_cast<std::ptrdiff_t>(len));
        Archive out;
        EXPECT_NE(parseArchive(cut, out), ArchiveError::None)
            << "prefix length " << len;
    }
}

TEST(ArchiveContainer, BadMagicRejected)
{
    Bytes blob = serializeArchive(makeArchive());
    blob[0] ^= 0xFF;
    Archive parsed;
    EXPECT_EQ(parseArchive(blob, parsed), ArchiveError::BadMagic);
}

TEST(ArchiveContainer, NewerVersionRejected)
{
    Bytes blob = serializeArchive(makeArchive());
    blob[4] = 0xFF; // version is big-endian at bytes 4..7
    Archive parsed;
    EXPECT_EQ(parseArchive(blob, parsed), ArchiveError::BadVersion);
}

TEST(ArchiveContainer, ShortReadsRejected)
{
    Bytes blob = serializeArchive(makeArchive());
    Archive parsed;
    EXPECT_EQ(parseArchive(Bytes{}, parsed),
              ArchiveError::ShortRead);
    Bytes tiny(blob.begin(), blob.begin() + 10);
    EXPECT_EQ(parseArchive(tiny, parsed), ArchiveError::ShortRead);
}

TEST(ArchiveContainer, EveryTruncationFailsCleanly)
{
    Bytes blob = serializeArchive(makeArchive());
    // Every prefix must parse to an error (never crash, never
    // succeed: the directory lives at the end of the file).
    for (std::size_t len = 0; len < blob.size();
         len += 1 + len / 13) {
        Bytes cut(blob.begin(),
                  blob.begin() + static_cast<std::ptrdiff_t>(len));
        Archive parsed;
        EXPECT_NE(parseArchive(cut, parsed), ArchiveError::None)
            << "prefix length " << len;
    }
}

TEST(ArchiveContainer, SuperblockCorruptionDetected)
{
    Bytes blob = serializeArchive(makeArchive());
    blob[9] ^= 0x01; // directory offset, covered by superblock CRC
    Archive parsed;
    EXPECT_EQ(parseArchive(blob, parsed),
              ArchiveError::CrcMismatch);
}

TEST(ArchiveContainer, RecordMetaCorruptionDetected)
{
    Bytes blob = serializeArchive(makeArchive());
    blob[36] ^= 0x01; // inside the first record's precise meta
    Archive parsed;
    EXPECT_EQ(parseArchive(blob, parsed),
              ArchiveError::CrcMismatch);
}

TEST(ArchiveContainer, CellCorruptionIsNotAnError)
{
    // Approximate payload bits carry no checksum by design: a
    // degraded image must load fine (that's the storage model).
    Bytes blob = serializeArchive(makeArchive());
    std::size_t dir_offset = 0;
    for (int i = 8; i < 16; ++i)
        dir_offset = dir_offset << 8 | blob[i];
    ASSERT_GT(dir_offset, 33u);
    blob[dir_offset - 1] ^= 0xFF; // last cell byte of last record
    Archive parsed;
    EXPECT_EQ(parseArchive(blob, parsed), ArchiveError::None);
}

TEST(ArchiveContainer, MissingFileIsIo)
{
    Archive parsed;
    EXPECT_EQ(readArchive(tempPath("does_not_exist"), parsed),
              ArchiveError::Io);
}

TEST(ArchiveContainer, FileRoundTrip)
{
    Archive archive = makeArchive();
    std::string path = tempPath("file_round_trip");
    ASSERT_EQ(writeArchive(archive, path), ArchiveError::None);
    Archive reread;
    ASSERT_EQ(readArchive(path, reread), ArchiveError::None);
    EXPECT_EQ(serializeArchive(reread), serializeArchive(archive));
    std::remove(path.c_str());
}

TEST(ArchiveFuzz, ByteFlipsNeverCrashTheParser)
{
    Bytes blob = serializeArchive(makeArchive());
    Rng rng(2024);
    for (int iter = 0; iter < 400; ++iter) {
        Bytes mutated = blob;
        int flips = 1 + static_cast<int>(rng.nextBelow(8));
        for (int f = 0; f < flips; ++f) {
            std::size_t pos = rng.nextBelow(mutated.size());
            mutated[pos] ^= static_cast<u8>(1 + rng.nextBelow(255));
        }
        if (rng.nextBool(0.25))
            mutated.resize(rng.nextBelow(mutated.size() + 1));
        Archive parsed;
        parseArchive(mutated, parsed); // any error is fine
    }
}

// --- the service ------------------------------------------------------

TEST(ArchiveService_, PutFlushReopenGetIsExact)
{
    std::string path = tempPath("reopen");
    PreparedVideo plain = makePrepared(51);
    PreparedVideo secret = makePrepared(52);
    EncryptionConfig enc = testEncryption();
    {
        ArchiveService service(path);
        ASSERT_EQ(service.open(), ArchiveError::None);
        ArchivePutOptions with_key;
        with_key.encryption = enc;
        EXPECT_EQ(service.put("plain", plain, {}),
                  ArchiveError::None);
        EXPECT_EQ(service.put("secret", secret, with_key),
                  ArchiveError::None);
        ASSERT_EQ(service.flush(), ArchiveError::None);
    }

    // "Process restart": a fresh service instance on the same file.
    ArchiveService service(path);
    ASSERT_EQ(service.open(false), ArchiveError::None);
    ASSERT_EQ(service.videoCount(), 2u);

    ArchiveGetResult got = service.get("plain");
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_EQ(got.streams.data, plain.streams.data);
    EXPECT_EQ(got.streams.bitLength, plain.streams.bitLength);
    EXPECT_EQ(got.cells.blocksUncorrectable, 0u);
    EXPECT_TRUE(videosEqual(
        got.decoded,
        decodeStreams(plain.enc.video, plain.streams)));

    ArchiveGetOptions with_key;
    with_key.key = enc.key;
    ArchiveGetResult sec = service.get("secret", with_key);
    ASSERT_EQ(sec.error, ArchiveError::None);
    EXPECT_EQ(sec.streams.data, secret.streams.data);
    std::remove(path.c_str());
}

TEST(ArchiveService_, HeldReplicasSurviveFlushAndReopen)
{
    // Replica blobs held for ring peers must be durable: rebuilding
    // a dead shard reads them from *restarted* survivors, so a blob
    // that only lives in memory is no replica at all.
    std::string path = tempPath("replica_reopen");
    PreparedVideo own = makePrepared(53);
    Bytes peer_blob;
    {
        ArchiveService service(path);
        ASSERT_EQ(service.open(), ArchiveError::None);
        ASSERT_EQ(service.put("mine", own, {}), ArchiveError::None);
        peer_blob = service.exportMeta("mine");
        ASSERT_FALSE(peer_blob.empty());
        ASSERT_EQ(service.putReplicaMeta("peer-vid", peer_blob),
                  ArchiveError::None);
        ASSERT_EQ(service.flush(), ArchiveError::None);
    }

    ArchiveService service(path);
    ASSERT_EQ(service.open(false), ArchiveError::None);
    EXPECT_EQ(service.videoCount(), 1u);
    ASSERT_EQ(service.replicaNames(),
              std::vector<std::string>{"peer-vid"});
    EXPECT_EQ(service.replicaMeta("peer-vid"), peer_blob);

    // And a second flush/reopen keeps them (the held set is
    // re-snapshotted every flush, not only on the first).
    ASSERT_EQ(service.flush(), ArchiveError::None);
    ArchiveService again(path);
    ASSERT_EQ(again.open(false), ArchiveError::None);
    EXPECT_EQ(again.replicaMeta("peer-vid"), peer_blob);
    std::remove(path.c_str());
}

TEST(ArchiveService_, ErrorPaths)
{
    std::string path = tempPath("errors");
    std::remove(path.c_str());
    ArchiveService service(path);
    EXPECT_EQ(service.open(false), ArchiveError::Io);
    ASSERT_EQ(service.open(true), ArchiveError::None);

    EXPECT_EQ(service.get("nope").error, ArchiveError::NotFound);
    EXPECT_EQ(service.remove("nope"), ArchiveError::NotFound);

    PreparedVideo secret = makePrepared(53);
    ArchivePutOptions with_key;
    with_key.encryption = testEncryption();
    ASSERT_EQ(service.put("secret", secret, with_key),
              ArchiveError::None);
    EXPECT_EQ(service.get("secret").error,
              ArchiveError::KeyRequired);

    EXPECT_EQ(service.remove("secret"), ArchiveError::None);
    EXPECT_EQ(service.videoCount(), 0u);
}

TEST(ArchiveService_, GetMissingIsTypedNotFound)
{
    // Regression guard for the serving layer: a miss must be the
    // typed ArchiveError::NotFound with an empty result, never a
    // throw or a zero-frame "success" (the server maps it to the
    // wire's Status::NotFound).
    ArchiveService service(tempPath("notfound"));
    ASSERT_EQ(service.open(true), ArchiveError::None);

    ArchiveGetResult missing = service.get("absent");
    EXPECT_EQ(missing.error, ArchiveError::NotFound);
    EXPECT_TRUE(missing.decoded.frames.empty());
    EXPECT_TRUE(missing.streams.data.empty());
    EXPECT_TRUE(missing.frameHeaders.empty());
    EXPECT_EQ(missing.cells.blocksRead, 0u);

    // A removed record reverts to the same typed miss.
    PreparedVideo video = makePrepared(99);
    ASSERT_EQ(service.put("gone", video, {}), ArchiveError::None);
    ASSERT_EQ(service.remove("gone"), ArchiveError::None);
    EXPECT_EQ(service.get("gone").error, ArchiveError::NotFound);
}

TEST(ArchiveService_, GetReportsPreciseFrameHeaders)
{
    // The serving layer derives GOP boundaries from these headers;
    // they must match the prepared video's exactly.
    ArchiveService service(tempPath("headers"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    PreparedVideo video = makePrepared(98);
    ASSERT_EQ(service.put("v", video, {}), ArchiveError::None);

    ArchiveGetResult got = service.get("v");
    ASSERT_EQ(got.error, ArchiveError::None);
    const auto &expect = video.enc.video.frameHeaders;
    ASSERT_EQ(got.frameHeaders.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got.frameHeaders[i].displayIdx,
                  expect[i].displayIdx);
        EXPECT_EQ(got.frameHeaders[i].type, expect[i].type);
    }
}

TEST(ArchiveService_, StatReportsTheDirectory)
{
    ArchiveService service(tempPath("stat"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    PreparedVideo video = makePrepared(54);
    ArchivePutOptions with_key;
    with_key.encryption = testEncryption();
    ASSERT_EQ(service.put("v", video, with_key),
              ArchiveError::None);

    auto stats = service.stat();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].name, "v");
    EXPECT_EQ(stats[0].width, video.enc.video.header.width);
    EXPECT_EQ(stats[0].height, video.enc.video.header.height);
    EXPECT_EQ(stats[0].frames, video.enc.video.frameHeaders.size());
    EXPECT_EQ(stats[0].streamCount, video.streams.data.size());
    EXPECT_GT(stats[0].payloadBytes, 0u);
    EXPECT_GE(stats[0].cellBytes, stats[0].payloadBytes);
    EXPECT_TRUE(stats[0].encrypted);
}

TEST(ArchiveService_, ScrubRepairsAndReportsDamage)
{
    ArchiveService service(tempPath("scrub"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    PreparedVideo video = makePrepared(55);
    ASSERT_EQ(service.put("v", video, {}), ArchiveError::None);

    // Clean archive: nothing to repair.
    ScrubReport clean = service.scrub();
    EXPECT_EQ(clean.videos, 1u);
    EXPECT_EQ(clean.streams, video.streams.data.size());
    EXPECT_EQ(clean.blocksRewritten, 0u);
    EXPECT_EQ(clean.cells.blocksUncorrectable, 0u);
    EXPECT_EQ(clean.streamsMiscorrected, 0u);

    // Age at the paper's raw BER, then scrub: protected blocks are
    // repaired and rewritten...
    ScrubOptions age;
    age.ageRawBer = 1e-3;
    age.seed = 7;
    ScrubReport aged = service.scrub(age);
    EXPECT_GT(aged.blocksRewritten, 0u);
    EXPECT_EQ(aged.cells.blocksUncorrectable, 0u);

    // ...so an immediate re-scrub finds a fully restored device.
    ScrubReport after = service.scrub();
    EXPECT_EQ(after.blocksRewritten, 0u);
    EXPECT_EQ(after.streamsDamaged, 0u);

    // The aged unprotected (t=0) stream decodes to different bits
    // than stored, but get still succeeds.
    ArchiveGetResult got = service.get("v");
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_EQ(got.decoded.frames.size(),
              video.enc.video.frameHeaders.size());
}

TEST(ArchiveParity, InjectedGetMatchesInMemoryPipeline)
{
    // Acceptance bar from the issue: with injection at raw BER
    // 1e-3, archive get must land within 0.1 dB of the in-memory
    // pipeline. The RNG mirroring actually makes it bit-identical.
    PreparedVideo video = makePrepared(61);
    const double ber = 1e-3;
    const u64 seed = 17;

    RealBchChannel channel(ber);
    Rng rng(seed);
    StorageOutcome in_memory =
        storeAndRetrieve(video, channel, rng);

    ArchiveService service(tempPath("parity"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    ASSERT_EQ(service.put("v", video, {}), ArchiveError::None);
    ArchiveGetOptions inject;
    inject.injectRawBer = ber;
    inject.seed = seed;
    ArchiveGetResult got = service.get("v", inject);
    ASSERT_EQ(got.error, ArchiveError::None);

    EXPECT_TRUE(videosEqual(got.decoded, in_memory.decoded));

    Video reference;
    reference.frames = video.enc.reconFrames;
    double psnr = psnrVideo(reference, got.decoded);
    EXPECT_NEAR(psnr, in_memory.psnrVsReference, 0.1);
}

TEST(ArchiveParity, EncryptedInjectedGetMatchesInMemoryPipeline)
{
    PreparedVideo video = makePrepared(62);
    EncryptionConfig enc = testEncryption();
    const double ber = 1e-3;
    const u64 seed = 23;

    RealBchChannel channel(ber);
    Rng rng(seed);
    StorageOutcome in_memory =
        storeAndRetrieve(video, channel, rng, enc);

    ArchiveService service(tempPath("parity_enc"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    ArchivePutOptions put;
    put.encryption = enc;
    ASSERT_EQ(service.put("v", video, put), ArchiveError::None);
    ArchiveGetOptions inject;
    inject.injectRawBer = ber;
    inject.seed = seed;
    inject.key = enc.key;
    ArchiveGetResult got = service.get("v", inject);
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_TRUE(videosEqual(got.decoded, in_memory.decoded));
}

TEST(ArchiveFuzz, RandomVideoRoundTrips)
{
    // The issue's container fuzz: random videos -> put -> reopen ->
    // get is bit-exact with injection off and decodable with it on.
    std::string path = tempPath("video_fuzz");
    const int kVideos = 4;
    std::vector<PreparedVideo> prepared;
    {
        ArchiveService service(path);
        ASSERT_EQ(service.open(), ArchiveError::None);
        for (int i = 0; i < kVideos; ++i) {
            prepared.push_back(
                makePrepared(100 + static_cast<u64>(i) * 13));
            ArchivePutOptions options;
            if (i % 2) {
                EncryptionConfig enc = testEncryption();
                enc.mode =
                    i % 4 == 1 ? CipherMode::OFB : CipherMode::CTR;
                options.encryption = enc;
            }
            ASSERT_EQ(service.put("video" + std::to_string(i),
                                  prepared.back(), options),
                      ArchiveError::None);
        }
        ASSERT_EQ(service.flush(), ArchiveError::None);
    }

    ArchiveService service(path);
    ASSERT_EQ(service.open(false), ArchiveError::None);
    for (int i = 0; i < kVideos; ++i) {
        ArchiveGetOptions options;
        if (i % 2)
            options.key = testEncryption().key;
        std::string name = "video" + std::to_string(i);
        ArchiveGetResult exact = service.get(name, options);
        ASSERT_EQ(exact.error, ArchiveError::None) << name;
        EXPECT_EQ(exact.streams.data, prepared[i].streams.data)
            << name;

        options.injectRawBer = 1e-3;
        options.seed = 200 + static_cast<u64>(i);
        options.conceal = true;
        ArchiveGetResult noisy = service.get(name, options);
        ASSERT_EQ(noisy.error, ArchiveError::None) << name;
        EXPECT_EQ(noisy.decoded.frames.size(),
                  prepared[i].enc.video.frameHeaders.size());
    }
    std::remove(path.c_str());
}

// --- stream policy in the container -----------------------------------

TEST(ArchivePolicy, PutRecordsPolicyAndContainerRoundTripsIt)
{
    PreparedVideo prepared = makePrepared(63);
    EncryptionConfig enc = testEncryption();
    enc.encryptMinT = 6; // leave the weakest streams plaintext

    Archive archive;
    archive.videos["v"] = recordFromPrepared(prepared, enc);
    const VideoRecord &record = archive.videos.at("v");
    ASSERT_TRUE(record.policy.has_value());
    ASSERT_EQ(record.policy->entries.size(),
              prepared.streams.data.size());
    EXPECT_EQ(record.policy->keyId, enc.keyId);
    EXPECT_EQ(record.policy->encryptMinT, enc.encryptMinT);
    for (const auto &[t, bytes] : prepared.streams.data)
        EXPECT_EQ(record.policy->encrypts(t), t >= 6) << "t=" << t;
    EXPECT_TRUE(record.crypto.has_value());

    Bytes blob = serializeArchive(archive);
    Archive parsed;
    ASSERT_EQ(parseArchive(blob, parsed), ArchiveError::None);
    ASSERT_TRUE(parsed.videos.at("v").policy.has_value());
    EXPECT_EQ(*parsed.videos.at("v").policy, *record.policy);
    EXPECT_EQ(serializeArchive(parsed), blob);

    // Unencrypted records carry an all-plaintext policy.
    Archive plain;
    plain.videos["p"] = recordFromPrepared(prepared, std::nullopt);
    ASSERT_TRUE(plain.videos.at("p").policy.has_value());
    EXPECT_FALSE(plain.videos.at("p").policy->anyEncrypted());
}

TEST(ArchivePolicy, PolicyMismatchingStreamTableRejected)
{
    PreparedVideo prepared = makePrepared(64);
    Archive archive;
    archive.videos["v"] =
        recordFromPrepared(prepared, testEncryption());

    // A policy that does not cover the stream table one-to-one must
    // be refused at parse time: every consumer trusts the mapping.
    archive.videos.at("v").policy->entries.pop_back();
    Bytes blob = serializeArchive(archive);
    Archive parsed;
    EXPECT_EQ(parseArchive(blob, parsed), ArchiveError::Malformed);
}

TEST(ArchivePolicy, SelectiveEncryptionReducesAesBytes)
{
    PreparedVideo prepared = makePrepared(65);
    ArchiveService service(tempPath("selective"));
    ASSERT_EQ(service.open(), ArchiveError::None);

    EncryptionConfig full = testEncryption();
    ArchivePutOptions put_full;
    put_full.encryption = full;
    u64 enc_before = counterValue("archive.bytes_encrypted");
    ASSERT_EQ(service.put("full", prepared, put_full),
              ArchiveError::None);
    u64 full_bytes =
        counterValue("archive.bytes_encrypted") - enc_before;

    EncryptionConfig selective = testEncryption();
    selective.encryptMinT = 6;
    ArchivePutOptions put_sel;
    put_sel.encryption = selective;
    enc_before = counterValue("archive.bytes_encrypted");
    u64 plain_before = counterValue("archive.bytes_plaintext");
    ASSERT_EQ(service.put("sel", prepared, put_sel),
              ArchiveError::None);
    u64 sel_bytes =
        counterValue("archive.bytes_encrypted") - enc_before;
    u64 sel_plain =
        counterValue("archive.bytes_plaintext") - plain_before;

    if (telemetry::kEnabled) {
        // The telemetry-reported AES reduction: the low-importance
        // streams moved from the encrypted to the plaintext column.
        EXPECT_LT(sel_bytes, full_bytes);
        EXPECT_GT(sel_plain, 0u);
        EXPECT_EQ(sel_bytes + sel_plain, full_bytes);
    }

    // Selective records still gate on the key and read back exactly.
    EXPECT_EQ(service.get("sel").error, ArchiveError::KeyRequired);
    ArchiveGetOptions with_key;
    with_key.key = selective.key;
    ArchiveGetResult got = service.get("sel", with_key);
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_EQ(got.streams.data, prepared.streams.data);
}

TEST(ArchiveService_, StaleKeyIsTypedKeyMismatch)
{
    PreparedVideo prepared = makePrepared(66);
    ArchiveService service(tempPath("stale_key"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    EncryptionConfig enc = testEncryption();
    ArchivePutOptions put;
    put.encryption = enc;
    ASSERT_EQ(service.put("v", prepared, put), ArchiveError::None);

    // A rotated/stale key is a typed error (and a counted one), not
    // a garbage decode surfacing as some downstream failure.
    u64 mismatches = counterValue("archive.key_mismatches");
    ArchiveGetOptions wrong;
    wrong.key = Bytes(32, 0x11);
    EXPECT_EQ(service.get("v", wrong).error,
              ArchiveError::KeyMismatch);
    if (telemetry::kEnabled)
        EXPECT_EQ(counterValue("archive.key_mismatches"),
                  mismatches + 1);

    ArchiveGetOptions right;
    right.key = enc.key;
    EXPECT_EQ(service.get("v", right).error, ArchiveError::None);
}

// --- re-key scrub -----------------------------------------------------

/** The rotation target used by the rekey tests. */
EncryptionConfig
rotatedEncryption()
{
    EncryptionConfig enc;
    enc.mode = CipherMode::CTR;
    enc.key = Bytes(32, 0xA3);
    enc.masterIv[2] = 0x19;
    enc.keyId = 43;
    return enc;
}

TEST(ArchiveRekey, RotateKeyMatchesFreshPutBitExactly)
{
    PreparedVideo prepared = makePrepared(67);
    EncryptionConfig old_enc = testEncryption();
    EncryptionConfig new_enc = rotatedEncryption();

    // Rotated archive: put under the old key, re-key in place.
    std::string rotated_path = tempPath("rekey_rotated");
    ArchiveService rotated(rotated_path);
    ASSERT_EQ(rotated.open(), ArchiveError::None);
    ArchivePutOptions put_old;
    put_old.encryption = old_enc;
    ASSERT_EQ(rotated.put("v", prepared, put_old),
              ArchiveError::None);
    RekeyReport report = rotated.rekey(old_enc.key, new_enc);
    EXPECT_EQ(report.videos, 1u);
    EXPECT_EQ(report.streamsRecrypted,
              prepared.streams.data.size());
    EXPECT_EQ(report.keyMismatches, 0u);
    EXPECT_EQ(report.skipped, 0u);

    // Reference archive: a fresh put under the new config. The
    // re-key pass reconstructs exact payloads through BCH, so the
    // two files must be byte-identical — zero precise-data loss.
    std::string fresh_path = tempPath("rekey_fresh");
    ArchiveService fresh(fresh_path);
    ASSERT_EQ(fresh.open(), ArchiveError::None);
    ArchivePutOptions put_new;
    put_new.encryption = new_enc;
    ASSERT_EQ(fresh.put("v", prepared, put_new),
              ArchiveError::None);

    ASSERT_EQ(rotated.flush(), ArchiveError::None);
    ASSERT_EQ(fresh.flush(), ArchiveError::None);
    Archive a, b;
    ASSERT_EQ(readArchive(rotated_path, a), ArchiveError::None);
    ASSERT_EQ(readArchive(fresh_path, b), ArchiveError::None);
    EXPECT_EQ(serializeArchive(a), serializeArchive(b));

    // Reopen after flush ("restart"): byte-exact under the new key,
    // typed mismatch under the old.
    ArchiveService reopened(rotated_path);
    ASSERT_EQ(reopened.open(false), ArchiveError::None);
    ArchiveGetOptions new_key;
    new_key.key = new_enc.key;
    ArchiveGetResult got = reopened.get("v", new_key);
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_EQ(got.streams.data, prepared.streams.data);
    ArchiveGetOptions old_key;
    old_key.key = old_enc.key;
    EXPECT_EQ(reopened.get("v", old_key).error,
              ArchiveError::KeyMismatch);

    // With injection on, the rotated and fresh archives read bit-
    // identically at equal seeds — comfortably inside the 0.1 dB
    // acceptance bar.
    ArchiveGetOptions inject;
    inject.key = new_enc.key;
    inject.injectRawBer = 1e-3;
    inject.seed = 29;
    ArchiveGetResult noisy_rotated = reopened.get("v", inject);
    ArchiveGetResult noisy_fresh = fresh.get("v", inject);
    ASSERT_EQ(noisy_rotated.error, ArchiveError::None);
    ASSERT_EQ(noisy_fresh.error, ArchiveError::None);
    EXPECT_TRUE(videosEqual(noisy_rotated.decoded,
                            noisy_fresh.decoded));
    Video reference;
    reference.frames = prepared.enc.reconFrames;
    EXPECT_NEAR(psnrVideo(reference, noisy_rotated.decoded),
                psnrVideo(reference, noisy_fresh.decoded), 0.1);

    std::remove(rotated_path.c_str());
    std::remove(fresh_path.c_str());
}

TEST(ArchiveRekey, EncryptsPlaintextRecordsInPlace)
{
    PreparedVideo prepared = makePrepared(68);
    ArchiveService service(tempPath("rekey_plain"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    ASSERT_EQ(service.put("v", prepared, {}), ArchiveError::None);

    // Re-keying an unencrypted archive is "apply the new config in
    // place": plaintext records come out encrypted.
    EncryptionConfig new_enc = rotatedEncryption();
    RekeyReport report = service.rekey(Bytes{}, new_enc);
    EXPECT_EQ(report.videos, 1u);
    EXPECT_EQ(report.keyMismatches, 0u);

    EXPECT_EQ(service.get("v").error, ArchiveError::KeyRequired);
    ArchiveGetOptions with_key;
    with_key.key = new_enc.key;
    ArchiveGetResult got = service.get("v", with_key);
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_EQ(got.streams.data, prepared.streams.data);
}

TEST(ArchiveRekey, WrongOldKeyIsCountedNotApplied)
{
    PreparedVideo prepared = makePrepared(69);
    EncryptionConfig old_enc = testEncryption();
    ArchiveService service(tempPath("rekey_wrong"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    ArchivePutOptions put;
    put.encryption = old_enc;
    ASSERT_EQ(service.put("v", prepared, put), ArchiveError::None);

    RekeyReport report =
        service.rekey(Bytes(32, 0x77), rotatedEncryption());
    EXPECT_EQ(report.videos, 0u);
    EXPECT_EQ(report.keyMismatches, 1u);

    // The record was left untouched: still readable under the old
    // key.
    ArchiveGetOptions with_key;
    with_key.key = old_enc.key;
    ArchiveGetResult got = service.get("v", with_key);
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_EQ(got.streams.data, prepared.streams.data);
}

TEST(ArchiveRekey, SelectiveTargetNarrowsEncryption)
{
    PreparedVideo prepared = makePrepared(70);
    EncryptionConfig old_enc = testEncryption();
    ArchiveService service(tempPath("rekey_selective"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    ArchivePutOptions put;
    put.encryption = old_enc;
    ASSERT_EQ(service.put("v", prepared, put), ArchiveError::None);

    EncryptionConfig new_enc = rotatedEncryption();
    new_enc.encryptMinT = 6;
    RekeyReport report = service.rekey(old_enc.key, new_enc);
    EXPECT_EQ(report.videos, 1u);

    ArchiveGetOptions with_key;
    with_key.key = new_enc.key;
    ArchiveGetResult got = service.get("v", with_key);
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_EQ(got.streams.data, prepared.streams.data);

    // The stored policy reflects the narrowed treatment.
    ASSERT_EQ(service.flush(), ArchiveError::None);
    Archive on_disk;
    ASSERT_EQ(readArchive(service.path(), on_disk),
              ArchiveError::None);
    const VideoRecord &record = on_disk.videos.at("v");
    ASSERT_TRUE(record.policy.has_value());
    EXPECT_EQ(record.policy->encryptMinT, 6u);
    EXPECT_EQ(record.policy->keyId, new_enc.keyId);
    for (const auto &[t, bytes] : prepared.streams.data)
        EXPECT_EQ(record.policy->encrypts(t), t >= 6) << "t=" << t;
    std::remove(service.path().c_str());
}

// --- importance-aware shedding ----------------------------------------

TEST(ArchiveShed, ThresholdSkipsLowImportanceStreams)
{
    PreparedVideo prepared = makePrepared(85);
    ArchiveService service(tempPath("shed"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    ASSERT_EQ(service.put("v", prepared, {}), ArchiveError::None);
    const std::size_t n = prepared.streams.data.size();
    ASSERT_GT(n, 1u);
    const int top_t = prepared.streams.data.rbegin()->first;

    // Shed everything but class 0: only the most important stream
    // is read; the rest are zero-filled placeholders.
    ArchiveGetOptions aggressive;
    aggressive.shedDegradeClass = 1;
    aggressive.conceal = true;
    ArchiveGetResult shed = service.get("v", aggressive);
    ASSERT_EQ(shed.error, ArchiveError::None);
    EXPECT_EQ(shed.streamsShed, n - 1);
    EXPECT_GT(shed.bytesShed, 0u);
    // Class 0 is never shed: the top stream is byte-exact.
    EXPECT_EQ(shed.streams.data.at(top_t),
              prepared.streams.data.at(top_t));
    // Frame structure comes from precise metadata and survives.
    EXPECT_EQ(shed.decoded.frames.size(),
              prepared.enc.video.frameHeaders.size());

    // A threshold past every class sheds nothing and stays exact.
    ArchiveGetOptions lenient;
    lenient.shedDegradeClass = static_cast<int>(n);
    ArchiveGetResult full = service.get("v", lenient);
    ASSERT_EQ(full.error, ArchiveError::None);
    EXPECT_EQ(full.streamsShed, 0u);
    EXPECT_EQ(full.streams.data, prepared.streams.data);

    // Threshold 0 = shedding off.
    ArchiveGetResult off = service.get("v");
    ASSERT_EQ(off.error, ArchiveError::None);
    EXPECT_EQ(off.streamsShed, 0u);
    EXPECT_EQ(off.streams.data, prepared.streams.data);
}

TEST(ArchiveShed, MidThresholdKeepsImportantPrefix)
{
    // The tiny clip only populates two reliability streams; a mid
    // threshold needs at least three, so render a busier sequence
    // (more pixels, sensor noise) that spreads the importance
    // histogram across a third ECC class.
    SyntheticSpec spec = tinySpec(86);
    spec.width = 96;
    spec.height = 96;
    spec.frames = 24;
    spec.noiseSigma = 2.0;
    Video source = generateSynthetic(spec);
    EncoderConfig config;
    config.gop.gopSize = 8;
    config.gop.bFrames = 2;
    PreparedVideo prepared = prepareVideo(
        source, config, EccAssignment::paperTable1());
    ArchiveService service(tempPath("shed_mid"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    ASSERT_EQ(service.put("v", prepared, {}), ArchiveError::None);
    const std::size_t n = prepared.streams.data.size();
    ASSERT_GT(n, 2u);

    ArchiveGetOptions mid;
    mid.shedDegradeClass = 2;
    mid.conceal = true;
    ArchiveGetResult got = service.get("v", mid);
    ASSERT_EQ(got.error, ArchiveError::None);
    EXPECT_EQ(got.streamsShed, n - 2);
    // The two most important (highest t) streams are intact.
    auto it = prepared.streams.data.rbegin();
    for (int kept = 0; kept < 2; ++kept, ++it)
        EXPECT_EQ(got.streams.data.at(it->first), it->second)
            << "t=" << it->first;
}

// --- concurrency ------------------------------------------------------

class ArchiveConcurrency : public ::testing::Test
{
  protected:
    void TearDown() override { setThreadCount(0); }
};

struct RunResult
{
    Bytes archiveBytes;
    std::vector<Bytes> decodedLuma;
    ScrubReport scrub;
};

/** Concurrent puts, injected gets, then an aging scrub, all on the
 * pool; returns everything observable for determinism checks. */
RunResult
runConcurrentScenario(int threads)
{
    setThreadCount(threads);
    const int kVideos = 5;
    std::vector<PreparedVideo> prepared;
    for (int i = 0; i < kVideos; ++i)
        prepared.push_back(
            makePrepared(300 + static_cast<u64>(i) * 7));

    ArchiveService service(
        tempPath("concurrent_" + std::to_string(threads)));
    EXPECT_EQ(service.open(), ArchiveError::None);

    parallelFor(kVideos, [&](std::size_t i) {
        service.put(videoName(i), prepared[i], {});
    });

    RunResult result;
    result.decodedLuma.resize(kVideos);
    parallelFor(kVideos, [&](std::size_t i) {
        ArchiveGetOptions options;
        options.injectRawBer = 1e-3;
        options.seed = 400 + i;
        ArchiveGetResult got =
            service.get(videoName(i), options);
        EXPECT_EQ(got.error, ArchiveError::None);
        for (const Frame &f : got.decoded.frames)
            result.decodedLuma[i].insert(
                result.decodedLuma[i].end(), f.y().data().begin(),
                f.y().data().end());
    });

    ScrubOptions age;
    age.ageRawBer = 1e-3;
    age.seed = 500;
    result.scrub = service.scrub(age);

    // Serialize through flush + readback for the on-disk bytes.
    EXPECT_EQ(service.flush(), ArchiveError::None);
    Archive on_disk;
    EXPECT_EQ(readArchive(service.path(), on_disk),
              ArchiveError::None);
    result.archiveBytes = serializeArchive(on_disk);
    std::remove(service.path().c_str());
    return result;
}

TEST_F(ArchiveConcurrency, DeterministicAcrossThreadCounts)
{
    RunResult serial = runConcurrentScenario(1);
    RunResult parallel = runConcurrentScenario(4);

    EXPECT_EQ(serial.archiveBytes, parallel.archiveBytes);
    ASSERT_EQ(serial.decodedLuma.size(),
              parallel.decodedLuma.size());
    for (std::size_t i = 0; i < serial.decodedLuma.size(); ++i)
        EXPECT_EQ(serial.decodedLuma[i], parallel.decodedLuma[i])
            << "video " << i;
    EXPECT_EQ(serial.scrub.blocksRewritten,
              parallel.scrub.blocksRewritten);
    EXPECT_EQ(serial.scrub.cells.bitsCorrected,
              parallel.scrub.cells.bitsCorrected);
    EXPECT_EQ(serial.scrub.streamsDamaged,
              parallel.scrub.streamsDamaged);
    EXPECT_EQ(serial.scrub.streamsMiscorrected,
              parallel.scrub.streamsMiscorrected);
}

TEST_F(ArchiveConcurrency, MixedOperationsAreThreadSafe)
{
    // No determinism claim here: puts, gets, scrubs, stats and
    // removes race on purpose so TSan can watch the locking.
    setThreadCount(4);
    const int kVideos = 4;
    std::vector<PreparedVideo> prepared;
    for (int i = 0; i < kVideos; ++i)
        prepared.push_back(
            makePrepared(600 + static_cast<u64>(i) * 3));

    ArchiveService service(tempPath("mixed"));
    ASSERT_EQ(service.open(), ArchiveError::None);
    for (int i = 0; i < kVideos; ++i)
        service.put(videoName(i), prepared[i], {});

    parallelFor(24, [&](std::size_t i) {
        std::string name = videoName(i % kVideos);
        switch (i % 4) {
        case 0:
            service.put(name, prepared[i % kVideos], {});
            break;
        case 1: {
            ArchiveGetOptions options;
            options.injectRawBer = 1e-3;
            options.seed = i;
            service.get(name, options);
            break;
        }
        case 2: {
            ScrubOptions age;
            age.ageRawBer = 1e-4;
            age.seed = i;
            service.scrub(age);
            break;
        }
        default:
            service.stat();
            break;
        }
    });

    // Every video is still present and decodable.
    EXPECT_EQ(service.videoCount(),
              static_cast<std::size_t>(kVideos));
    for (int i = 0; i < kVideos; ++i) {
        ArchiveGetResult got =
            service.get(videoName(i));
        EXPECT_EQ(got.error, ArchiveError::None);
    }
}

} // namespace
} // namespace videoapp
