/**
 * @file
 * Error concealment tests: clean streams are untouched, heavily
 * corrupted slices are concealed from the co-located reference, and
 * concealment improves quality under corruption.
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/rng.h"
#include "quality/psnr.h"
#include "storage/error_injector.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

class ConcealParam : public ::testing::TestWithParam<EntropyKind>
{
  protected:
    EncodeResult
    encode(u64 seed)
    {
        Video source = generateSynthetic(tinySpec(seed));
        EncoderConfig config;
        config.entropy = GetParam();
        config.gop.gopSize = 10;
        source_ = std::move(source);
        return encodeVideo(source_, config);
    }

    Video source_;
};

TEST_P(ConcealParam, CleanStreamUnchangedByConcealment)
{
    EncodeResult enc = encode(71);
    DecodeOptions conceal;
    conceal.concealErrors = true;
    DecodeStats stats;
    Video with = decodeVideo(enc.video, conceal, &stats);
    Video without = decodeVideo(enc.video);
    ASSERT_EQ(with.frames.size(), without.frames.size());
    for (std::size_t i = 0; i < with.frames.size(); ++i)
        EXPECT_EQ(with.frames[i].y().data(),
                  without.frames[i].y().data());
    EXPECT_EQ(stats.concealedMbs, 0u);
    EXPECT_GT(stats.totalMbs, 0u);
}

TEST_P(ConcealParam, HeavyCorruptionTriggersConcealment)
{
    // Corruption detection is probabilistic (a desynced arithmetic
    // decoder can emit well-formed-looking garbage for a while), so
    // aggregate over several corruption draws.
    EncodeResult enc = encode(72);
    Rng rng(5);
    u64 concealed_total = 0;
    for (int trial = 0; trial < 10; ++trial) {
        EncodedVideo corrupted = enc.video;
        for (auto &payload : corrupted.payloads)
            injectErrors(payload, 0.05, rng);
        DecodeOptions conceal;
        conceal.concealErrors = true;
        DecodeStats stats;
        Video decoded = decodeVideo(corrupted, conceal, &stats);
        ASSERT_EQ(decoded.frames.size(), source_.frames.size());
        EXPECT_LE(stats.concealedMbs, stats.totalMbs);
        concealed_total += stats.concealedMbs;
    }
    EXPECT_GT(concealed_total, 0u);
}

TEST_P(ConcealParam, ConcealmentImprovesQualityUnderCorruption)
{
    EncodeResult enc = encode(73);
    Video clean = decodeVideo(enc.video);

    double with_total = 0, without_total = 0;
    Rng rng(6);
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
        EncodedVideo corrupted = enc.video;
        for (auto &payload : corrupted.payloads)
            injectErrors(payload, 5e-3, rng);
        DecodeOptions conceal;
        conceal.concealErrors = true;
        with_total += psnrVideo(clean,
                                decodeVideo(corrupted, conceal));
        without_total += psnrVideo(clean, decodeVideo(corrupted));
    }
    // Concealment replaces garbage with plausible content; on
    // average it must not hurt and should usually help.
    EXPECT_GE(with_total, without_total - 2.0 * trials);
    EXPECT_GT(with_total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ConcealParam,
                         ::testing::Values(EntropyKind::CABAC,
                                           EntropyKind::CAVLC),
                         [](const auto &info) {
                             return entropyKindName(info.param);
                         });

} // namespace
} // namespace videoapp
