/**
 * @file
 * StreamPolicy tests: building the per-stream treatment record from
 * an importance partition, the canonical serialization and its
 * hostile-input rejection paths, and the versioning contract (suite
 * names contain "Policy" so the TSan CI job picks them up).
 */

#include <gtest/gtest.h>

#include "policy/stream_policy.h"

namespace videoapp {
namespace {

const std::vector<int> kTable1Ts = {0, 2, 6, 16, 31};

// --- building ---------------------------------------------------------

TEST(PolicyBuild, FullEncryptionCoversEveryStream)
{
    StreamPolicy policy = buildStreamPolicy(
        kTable1Ts, StreamCipher::AesCtr, 7, 0);
    EXPECT_EQ(policy.version, kStreamPolicyVersion);
    EXPECT_EQ(policy.keyId, 7u);
    EXPECT_EQ(policy.encryptMinT, 0u);
    ASSERT_EQ(policy.entries.size(), kTable1Ts.size());
    for (std::size_t i = 0; i < kTable1Ts.size(); ++i) {
        EXPECT_EQ(policy.entries[i].schemeT, kTable1Ts[i]);
        EXPECT_EQ(policy.entries[i].cipher, StreamCipher::AesCtr);
        EXPECT_TRUE(policy.encrypts(kTable1Ts[i]));
    }
    EXPECT_TRUE(policy.anyEncrypted());
}

TEST(PolicyBuild, SelectiveThresholdLeavesLowStreamsPlaintext)
{
    // encryptMinT = 6: the t=0 and t=2 streams stay in the clear,
    // the three most-protected (most important) streams pay for AES.
    StreamPolicy policy = buildStreamPolicy(
        kTable1Ts, StreamCipher::AesOfb, 3, 6);
    EXPECT_FALSE(policy.encrypts(0));
    EXPECT_FALSE(policy.encrypts(2));
    EXPECT_TRUE(policy.encrypts(6));
    EXPECT_TRUE(policy.encrypts(16));
    EXPECT_TRUE(policy.encrypts(31));
    EXPECT_TRUE(policy.anyEncrypted());
    EXPECT_EQ(policy.encryptMinT, 6u);

    // A threshold above every stream encrypts nothing.
    StreamPolicy none = buildStreamPolicy(
        kTable1Ts, StreamCipher::AesCtr, 3, 58);
    EXPECT_FALSE(none.anyEncrypted());
}

TEST(PolicyBuild, PlaintextCipherEncryptsNothing)
{
    StreamPolicy policy = buildStreamPolicy(
        kTable1Ts, StreamCipher::Plaintext, 0, 0);
    EXPECT_FALSE(policy.anyEncrypted());
    for (int t : kTable1Ts)
        EXPECT_FALSE(policy.encrypts(t));
}

TEST(PolicyBuild, DegradeClassesRankMostImportantFirst)
{
    StreamPolicy policy = buildStreamPolicy(
        kTable1Ts, StreamCipher::AesCtr, 1, 0);
    // Ascending t is ascending importance: the strongest stream is
    // class 0 (shed last), the weakest is class n-1 (shed first).
    EXPECT_EQ(policy.degradeClassOf(31), 0u);
    EXPECT_EQ(policy.degradeClassOf(16), 1u);
    EXPECT_EQ(policy.degradeClassOf(6), 2u);
    EXPECT_EQ(policy.degradeClassOf(2), 3u);
    EXPECT_EQ(policy.degradeClassOf(0), 4u);
    // Unknown streams rank class 0: never shed by mistake.
    EXPECT_EQ(policy.degradeClassOf(42), 0u);
    EXPECT_EQ(policy.entryFor(42), nullptr);
}

// --- serialization ----------------------------------------------------

TEST(PolicyWire, RoundTripIsExactAndCanonical)
{
    StreamPolicy policy = buildStreamPolicy(
        kTable1Ts, StreamCipher::AesCtr, 99, 6);
    Bytes blob;
    appendStreamPolicy(blob, policy);

    StreamPolicy parsed;
    std::size_t pos = 0;
    ASSERT_TRUE(parseStreamPolicy(blob.data(), blob.size(), pos,
                                  parsed));
    EXPECT_EQ(pos, blob.size());
    EXPECT_EQ(parsed, policy);

    // Canonical: re-serializing reproduces the exact bytes.
    Bytes again;
    appendStreamPolicy(again, parsed);
    EXPECT_EQ(again, blob);
}

TEST(PolicyWire, EveryTruncationFailsWithoutCommittingPos)
{
    StreamPolicy policy = buildStreamPolicy(
        kTable1Ts, StreamCipher::AesOfb, 5, 0);
    Bytes blob;
    appendStreamPolicy(blob, policy);
    for (std::size_t len = 0; len < blob.size(); ++len) {
        StreamPolicy parsed;
        std::size_t pos = 0;
        EXPECT_FALSE(
            parseStreamPolicy(blob.data(), len, pos, parsed))
            << "prefix length " << len;
        EXPECT_EQ(pos, 0u) << "prefix length " << len;
    }
}

TEST(PolicyWire, NewerVersionRejected)
{
    StreamPolicy policy = buildStreamPolicy(
        kTable1Ts, StreamCipher::AesCtr, 1, 0);
    Bytes blob;
    appendStreamPolicy(blob, policy);
    // Version is the leading big-endian u16: a future revision must
    // be refused, never misread.
    blob[0] = 0xFF;
    StreamPolicy parsed;
    std::size_t pos = 0;
    EXPECT_FALSE(
        parseStreamPolicy(blob.data(), blob.size(), pos, parsed));
}

TEST(PolicyWire, HostileEntriesRejected)
{
    StreamPolicy policy = buildStreamPolicy(
        kTable1Ts, StreamCipher::AesCtr, 1, 0);

    // Out-of-range cipher code.
    {
        StreamPolicy bad = policy;
        bad.entries[1].cipher = static_cast<StreamCipher>(9);
        Bytes blob;
        appendStreamPolicy(blob, bad);
        StreamPolicy parsed;
        std::size_t pos = 0;
        EXPECT_FALSE(parseStreamPolicy(blob.data(), blob.size(),
                                       pos, parsed));
    }
    // Non-ascending schemeT (duplicate).
    {
        StreamPolicy bad = policy;
        bad.entries[1].schemeT = bad.entries[0].schemeT;
        Bytes blob;
        appendStreamPolicy(blob, bad);
        StreamPolicy parsed;
        std::size_t pos = 0;
        EXPECT_FALSE(parseStreamPolicy(blob.data(), blob.size(),
                                       pos, parsed));
    }
    // schemeT beyond the BCH family (t > 58).
    {
        StreamPolicy bad = policy;
        bad.entries.back().schemeT = 59;
        Bytes blob;
        appendStreamPolicy(blob, bad);
        StreamPolicy parsed;
        std::size_t pos = 0;
        EXPECT_FALSE(parseStreamPolicy(blob.data(), blob.size(),
                                       pos, parsed));
    }
}

TEST(PolicyWire, CipherModeMapping)
{
    EXPECT_EQ(streamCipherOf(CipherMode::CTR),
              StreamCipher::AesCtr);
    EXPECT_EQ(streamCipherOf(CipherMode::OFB),
              StreamCipher::AesOfb);
    EXPECT_EQ(streamCipherOf(CipherMode::ECB),
              StreamCipher::AesLegacy);
    EXPECT_EQ(streamCipherOf(CipherMode::CBC),
              StreamCipher::AesLegacy);
    EXPECT_EQ(streamCipherOf(CipherMode::CFB),
              StreamCipher::AesLegacy);
}

} // namespace
} // namespace videoapp
