/**
 * @file
 * AES core tests against FIPS-197 / SP 800-38A vectors, mode
 * round-trips, and the Section 5 error-propagation properties that
 * decide which modes are compatible with approximate storage.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/modes.h"
#include "crypto/stream_crypto.h"

namespace videoapp {
namespace {

Bytes
fromHex(const std::string &hex)
{
    Bytes out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
        unsigned v;
        std::sscanf(hex.c_str() + i, "%2x", &v);
        out.push_back(static_cast<u8>(v));
    }
    return out;
}

AesBlock
blockFromHex(const std::string &hex)
{
    Bytes b = fromHex(hex);
    AesBlock out{};
    for (std::size_t i = 0; i < kAesBlockSize && i < b.size(); ++i)
        out[i] = b[i];
    return out;
}

std::string
toHex(const u8 *data, std::size_t n)
{
    std::string out;
    char buf[3];
    for (std::size_t i = 0; i < n; ++i) {
        std::snprintf(buf, sizeof(buf), "%02x", data[i]);
        out += buf;
    }
    return out;
}

// --- FIPS-197 Appendix C known-answer tests -------------------------

TEST(Aes, Fips197Aes128)
{
    Bytes key = fromHex("000102030405060708090a0b0c0d0e0f");
    AesBlock pt = blockFromHex("00112233445566778899aabbccddeeff");
    Aes aes(key);
    AesBlock ct = aes.encryptBlock(pt);
    EXPECT_EQ(toHex(ct.data(), 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
    EXPECT_EQ(aes.decryptBlock(ct), pt);
}

TEST(Aes, Fips197Aes192)
{
    Bytes key = fromHex("000102030405060708090a0b0c0d0e0f1011121314151617");
    AesBlock pt = blockFromHex("00112233445566778899aabbccddeeff");
    Aes aes(key);
    AesBlock ct = aes.encryptBlock(pt);
    EXPECT_EQ(toHex(ct.data(), 16), "dda97ca4864cdfe06eaf70a0ec0d7191");
    EXPECT_EQ(aes.rounds(), 12);
    EXPECT_EQ(aes.decryptBlock(ct), pt);
}

TEST(Aes, Fips197Aes256)
{
    Bytes key = fromHex(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f");
    AesBlock pt = blockFromHex("00112233445566778899aabbccddeeff");
    Aes aes(key);
    AesBlock ct = aes.encryptBlock(pt);
    EXPECT_EQ(toHex(ct.data(), 16), "8ea2b7ca516745bfeafc49904b496089");
    EXPECT_EQ(aes.rounds(), 14);
    EXPECT_EQ(aes.decryptBlock(ct), pt);
}

// --- SP 800-38A mode vectors (first block each) ----------------------

const char *kNistKey = "2b7e151628aed2a6abf7158809cf4f3c";
const char *kNistPlain1 = "6bc1bee22e409f96e93d7e117393172a";

TEST(Modes, Sp80038aEcbFirstBlock)
{
    Aes aes(fromHex(kNistKey));
    Bytes ct = encrypt(CipherMode::ECB, aes, AesBlock{},
                       fromHex(kNistPlain1));
    EXPECT_EQ(toHex(ct.data(), 16), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Modes, Sp80038aCbcFirstBlock)
{
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("000102030405060708090a0b0c0d0e0f");
    Bytes ct = encrypt(CipherMode::CBC, aes, iv, fromHex(kNistPlain1));
    EXPECT_EQ(toHex(ct.data(), 16), "7649abac8119b246cee98e9b12e9197d");
}

TEST(Modes, Sp80038aOfbFirstBlock)
{
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("000102030405060708090a0b0c0d0e0f");
    Bytes ct = encrypt(CipherMode::OFB, aes, iv, fromHex(kNistPlain1));
    EXPECT_EQ(toHex(ct.data(), 16), "3b3fd92eb72dad20333449f8e83cfb4a");
}

TEST(Modes, Sp80038aCtrFirstBlock)
{
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    Bytes ct = encrypt(CipherMode::CTR, aes, iv, fromHex(kNistPlain1));
    EXPECT_EQ(toHex(ct.data(), 16), "874d6191b620e3261bef6864990db6ce");
}

// --- Round trips ------------------------------------------------------

class ModeRoundTrip : public ::testing::TestWithParam<CipherMode>
{
};

TEST_P(ModeRoundTrip, EncryptDecryptIdentity)
{
    Rng rng(99);
    Aes aes(fromHex(kNistKey));
    AesBlock iv{};
    for (auto &b : iv)
        b = static_cast<u8>(rng.next());

    for (int size : {16, 64, 256, 4096}) {
        Bytes plain(size);
        for (auto &b : plain)
            b = static_cast<u8>(rng.next());
        Bytes ct = encrypt(GetParam(), aes, iv, plain);
        ASSERT_EQ(ct.size(), plain.size());
        EXPECT_NE(ct, plain);
        Bytes back = decrypt(GetParam(), aes, iv, ct);
        EXPECT_EQ(back, plain);
    }
}

TEST_P(ModeRoundTrip, StreamCryptorRoundTripOddSizes)
{
    Rng rng(123);
    Bytes key = fromHex(kNistKey);
    AesBlock master{};
    StreamCryptor cryptor(GetParam(), key, master);
    for (std::size_t size : {1u, 15u, 17u, 100u, 1000u}) {
        Bytes plain(size);
        for (auto &b : plain)
            b = static_cast<u8>(rng.next());
        Bytes ct = cryptor.encryptStream(3, plain);
        Bytes back = cryptor.decryptStream(3, ct, plain.size());
        EXPECT_EQ(back, plain);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeRoundTrip,
                         ::testing::Values(CipherMode::ECB,
                                           CipherMode::CBC,
                                           CipherMode::OFB,
                                           CipherMode::CTR,
                                           CipherMode::CFB),
                         [](const auto &info) {
                             return cipherModeName(info.param);
                         });

// --- Section 5 requirements ------------------------------------------

Bytes
randomPlain(std::size_t size, Rng &rng)
{
    Bytes plain(size);
    for (auto &b : plain)
        b = static_cast<u8>(rng.next());
    return plain;
}

TEST(Section5, OfbConfinesFlipToOneBit)
{
    Rng rng(7);
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("00112233445566778899aabbccddeeff");
    Bytes plain = randomPlain(1024, rng);
    for (BitPos pos : {0u, 100u, 5000u, 8191u}) {
        auto prop = analyzeFlipPropagation(CipherMode::OFB, aes, iv,
                                           plain, pos);
        EXPECT_TRUE(prop.confinedToFlippedBit) << "bit " << pos;
        EXPECT_EQ(prop.damagedBits, 1u);
        EXPECT_EQ(prop.damagedBlocks, 1u);
    }
}

TEST(Section5, CtrConfinesFlipToOneBit)
{
    Rng rng(8);
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    Bytes plain = randomPlain(1024, rng);
    for (BitPos pos : {5u, 333u, 4096u, 8000u}) {
        auto prop = analyzeFlipPropagation(CipherMode::CTR, aes, iv,
                                           plain, pos);
        EXPECT_TRUE(prop.confinedToFlippedBit) << "bit " << pos;
    }
}

TEST(Modes, Sp80038aCfbFirstBlock)
{
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("000102030405060708090a0b0c0d0e0f");
    Bytes ct = encrypt(CipherMode::CFB, aes, iv, fromHex(kNistPlain1));
    EXPECT_EQ(toHex(ct.data(), 16), "3b3fd92eb72dad20333449f8e83cfb4a");
}

TEST(Section5, CfbFlipsOneBitButGarblesNextBlock)
{
    // CFB fails requirement #2 differently from CBC: the flipped
    // ciphertext bit flips the same plaintext bit, but the NEXT
    // block decrypts to garbage.
    Rng rng(11);
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("000102030405060708090a0b0c0d0e0f");
    Bytes plain = randomPlain(1024, rng);
    auto prop = analyzeFlipPropagation(CipherMode::CFB, aes, iv,
                                       plain, 2048);
    EXPECT_FALSE(prop.confinedToFlippedBit);
    EXPECT_EQ(prop.damagedBlocks, 2u);
    EXPECT_GT(prop.damagedBits, 30u);
    EXPECT_FALSE(StreamCryptor::approximationCompatible(
        CipherMode::CFB));
}

TEST(Section5, EcbDamagesWholeBlockOnly)
{
    Rng rng(9);
    Aes aes(fromHex(kNistKey));
    Bytes plain = randomPlain(1024, rng);
    auto prop = analyzeFlipPropagation(CipherMode::ECB, aes,
                                       AesBlock{}, plain, 1000);
    EXPECT_FALSE(prop.confinedToFlippedBit);
    EXPECT_EQ(prop.damagedBlocks, 1u);   // contained within a block
    EXPECT_GT(prop.damagedBits, 30u);    // but the block is garbled
}

TEST(Section5, CbcPropagatesAcrossBlocks)
{
    Rng rng(10);
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("000102030405060708090a0b0c0d0e0f");
    Bytes plain = randomPlain(1024, rng);
    // Flip in a middle block: that block garbles and the flip echoes
    // into the next block at the same offset.
    auto prop = analyzeFlipPropagation(CipherMode::CBC, aes, iv, plain,
                                       2048);
    EXPECT_FALSE(prop.confinedToFlippedBit);
    EXPECT_EQ(prop.damagedBlocks, 2u);
    EXPECT_GT(prop.damagedBits, 30u);
}

TEST(Section5, EcbLeaksEqualBlocks)
{
    // 64 copies of the same block: ECB must map them identically.
    Bytes plain;
    for (int i = 0; i < 64; ++i)
        for (int j = 0; j < 16; ++j)
            plain.push_back(static_cast<u8>(j));
    Aes aes(fromHex(kNistKey));
    AesBlock iv = blockFromHex("0f0e0d0c0b0a09080706050403020100");
    EXPECT_DOUBLE_EQ(equalBlockLeakage(CipherMode::ECB, aes, iv, plain),
                     1.0);
    EXPECT_DOUBLE_EQ(equalBlockLeakage(CipherMode::CBC, aes, iv, plain),
                     0.0);
    EXPECT_DOUBLE_EQ(equalBlockLeakage(CipherMode::OFB, aes, iv, plain),
                     0.0);
    EXPECT_DOUBLE_EQ(equalBlockLeakage(CipherMode::CTR, aes, iv, plain),
                     0.0);
}

TEST(Section5, ApproximationCompatibilityClassification)
{
    EXPECT_FALSE(StreamCryptor::approximationCompatible(CipherMode::ECB));
    EXPECT_FALSE(StreamCryptor::approximationCompatible(CipherMode::CBC));
    EXPECT_TRUE(StreamCryptor::approximationCompatible(CipherMode::OFB));
    EXPECT_TRUE(StreamCryptor::approximationCompatible(CipherMode::CTR));
}

TEST(StreamCryptor, DerivedIvsDistinctPerStream)
{
    StreamCryptor cryptor(CipherMode::CTR, fromHex(kNistKey),
                          AesBlock{});
    AesBlock iv0 = cryptor.deriveIv(0);
    AesBlock iv1 = cryptor.deriveIv(1);
    AesBlock iv2 = cryptor.deriveIv(2);
    EXPECT_NE(iv0, iv1);
    EXPECT_NE(iv1, iv2);
    EXPECT_NE(iv0, iv2);
    // Deterministic.
    EXPECT_EQ(cryptor.deriveIv(1), iv1);
}

TEST(StreamCryptor, IndependentStreamsDoNotShareKeystream)
{
    StreamCryptor cryptor(CipherMode::CTR, fromHex(kNistKey),
                          AesBlock{});
    Bytes zeros(256, 0);
    Bytes c0 = cryptor.encryptStream(0, zeros);
    Bytes c1 = cryptor.encryptStream(1, zeros);
    EXPECT_NE(c0, c1);
}

} // namespace
} // namespace videoapp
