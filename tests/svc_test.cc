/**
 * @file
 * Scalable (layered) coding tests: residual round trip, enhancement
 * refinement, graceful degradation when the enhancement layer is
 * corrupted or dropped, and the cross-layer approximation property
 * (enhancement bits tolerate much weaker protection).
 */

#include <gtest/gtest.h>

#include "core/svc.h"
#include "common/rng.h"
#include "quality/psnr.h"
#include "storage/error_injector.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

class SvcFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        source_ = generateSynthetic(tinySpec(91));
        result_ = encodeScalable(source_,
                                 ScalableConfig::forQuality(20));
    }

    Video source_;
    ScalableEncodeResult result_;
};

TEST(Svc, ResidualRoundTripIsLosslessWithinClamp)
{
    // b approximates a (like a base-layer reconstruction does), so
    // residuals stay far from the clamp and the round trip is exact.
    Video a = generateSynthetic(tinySpec(92));
    Video b = a;
    Rng rng(95);
    for (auto &frame : b.frames)
        for (auto &p : frame.y().data())
            p = static_cast<u8>(std::clamp<int>(
                p + static_cast<int>(rng.nextBelow(21)) - 10, 0,
                255));
    Video residual = residualVideo(a, b);
    Video back = applyResidual(b, residual);
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        EXPECT_EQ(back.frames[i].y().data(), a.frames[i].y().data());
        EXPECT_EQ(back.frames[i].u().data(), a.frames[i].u().data());
        EXPECT_EQ(back.frames[i].v().data(), a.frames[i].v().data());
    }
}

TEST_F(SvcFixture, EnhancementRefinesBase)
{
    Video base_only = decodeScalable(result_.base.video, nullptr);
    Video refined = decodeScalable(result_.base.video,
                                   &result_.enhancement.video);
    double psnr_base = psnrVideo(source_, base_only);
    double psnr_refined = psnrVideo(source_, refined);
    EXPECT_GT(psnr_refined, psnr_base + 2.0);
}

TEST_F(SvcFixture, CorruptEnhancementDegradesGracefully)
{
    // Heavy corruption of the enhancement layer must never drop the
    // output far below base quality (errors are confined to the
    // residual domain).
    Video base_only = decodeScalable(result_.base.video, nullptr);
    double psnr_base = psnrVideo(source_, base_only);

    Rng rng(7);
    EncodedVideo corrupted = result_.enhancement.video;
    for (auto &payload : corrupted.payloads)
        injectErrors(payload, 1e-3, rng);
    Video refined = decodeScalable(result_.base.video, &corrupted);
    double psnr_corrupt = psnrVideo(source_, refined);
    EXPECT_GT(psnr_corrupt, psnr_base - 9.0);
}

TEST_F(SvcFixture, BaseCorruptionHurtsMoreThanEnhancement)
{
    // The cross-layer dimension: the same error rate applied to the
    // base layer costs more quality than applied to the
    // enhancement (averaged over a few draws).
    double base_damage = 0, enh_damage = 0;
    Video clean = decodeScalable(result_.base.video,
                                 &result_.enhancement.video);
    for (u64 seed = 0; seed < 4; ++seed) {
        Rng rng_a(100 + seed), rng_b(100 + seed);
        EncodedVideo bad_base = result_.base.video;
        for (auto &p : bad_base.payloads)
            injectErrors(p, 3e-4, rng_a);
        EncodedVideo bad_enh = result_.enhancement.video;
        for (auto &p : bad_enh.payloads)
            injectErrors(p, 3e-4, rng_b);

        base_damage += psnrVideo(
            clean, decodeScalable(bad_base,
                                  &result_.enhancement.video));
        enh_damage += psnrVideo(
            clean, decodeScalable(result_.base.video, &bad_enh));
    }
    EXPECT_LT(base_damage, enh_damage);
}

TEST_F(SvcFixture, LayerSizesAreSane)
{
    EXPECT_GT(result_.base.video.payloadBits(), 0u);
    EXPECT_GT(result_.enhancement.video.payloadBits(), 0u);
    // Two layers cost more than one encoding at the target quality,
    // but not absurdly more.
    EncoderConfig single;
    single.crf = 20;
    EncodeResult one = encodeVideo(source_, single);
    EXPECT_LT(result_.totalPayloadBits(),
              4 * one.video.payloadBits());
}

TEST_F(SvcFixture, MismatchedLayersFallBackToBase)
{
    // An enhancement stream with different dimensions is rejected.
    Video other = generateSynthetic(tinySpec(94));
    SyntheticSpec small;
    small.width = 32;
    small.height = 32;
    small.frames = static_cast<int>(other.frames.size());
    Video small_video = generateSynthetic(small);
    EncodeResult wrong = encodeVideo(small_video, EncoderConfig{});
    Video decoded =
        decodeScalable(result_.base.video, &wrong.video);
    Video base_only = decodeScalable(result_.base.video, nullptr);
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_EQ(decoded.frames[i].y().data(),
                  base_only.frames[i].y().data());
}

} // namespace
} // namespace videoapp
