/**
 * @file
 * Core VideoApp tests: ECC assignment tables, the budgeted
 * optimiser, pivot derivation, stream partitioning round trips, and
 * the end-to-end approximate storage pipeline (with and without
 * encryption).
 */

#include <gtest/gtest.h>

#include "core/ecc_assign.h"
#include "core/partition.h"
#include "core/pipeline.h"
#include "quality/psnr.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

// --- Assignment tables ------------------------------------------------------

TEST(EccAssignment, PaperTable1Boundaries)
{
    EccAssignment table = EccAssignment::paperTable1();
    EXPECT_TRUE(table.schemeForClass(0).isNone());
    EXPECT_TRUE(table.schemeForClass(2).isNone());
    EXPECT_EQ(table.schemeForClass(3).t, 6);
    EXPECT_EQ(table.schemeForClass(10).t, 6);
    EXPECT_EQ(table.schemeForClass(11).t, 7);
    EXPECT_EQ(table.schemeForClass(13).t, 7);
    EXPECT_EQ(table.schemeForClass(14).t, 8);
    EXPECT_EQ(table.schemeForClass(16).t, 8);
    EXPECT_EQ(table.schemeForClass(17).t, 9);
    EXPECT_EQ(table.schemeForClass(20).t, 9);
    EXPECT_EQ(table.schemeForClass(21).t, 10);
    EXPECT_EQ(table.schemeForClass(26).t, 10);
    EXPECT_EQ(table.schemeForClass(30).t, 10);
}

TEST(EccAssignment, SchemeForImportanceUsesLog2Classes)
{
    EccAssignment table = EccAssignment::paperTable1();
    EXPECT_TRUE(table.schemeFor(1.0).isNone());  // class 0
    EXPECT_TRUE(table.schemeFor(4.0).isNone());  // class 2
    EXPECT_EQ(table.schemeFor(5.0).t, 6);        // class 3
    EXPECT_EQ(table.schemeFor(1024.0).t, 6);     // class 10
    EXPECT_EQ(table.schemeFor(1025.0).t, 7);     // class 11
}

TEST(EccAssignment, UniformIgnoresImportance)
{
    EccAssignment uniform = EccAssignment::uniform(kEccPrecise);
    EXPECT_EQ(uniform.schemeFor(1.0).t, 16);
    EXPECT_EQ(uniform.schemeFor(1e6).t, 16);
}

TEST(EccAssignment, ToStringMentionsSchemes)
{
    std::string text = EccAssignment::paperTable1().toString();
    EXPECT_NE(text.find("None"), std::string::npos);
    EXPECT_NE(text.find("BCH-10"), std::string::npos);
}

// --- Optimiser -----------------------------------------------------------------

TEST(Optimizer, InterpolatesLogLinear)
{
    std::vector<ClassCurvePoint> points = {{1e-6, 0.1}, {1e-4, 0.5},
                                           {1e-2, 2.0}};
    EXPECT_NEAR(interpolateLoss(points, 1e-5), 0.3, 1e-9);
    EXPECT_NEAR(interpolateLoss(points, 1e-4), 0.5, 1e-12);
    // Below range: scales linearly toward zero.
    EXPECT_NEAR(interpolateLoss(points, 1e-7), 0.01, 1e-9);
    // Above range: saturates.
    EXPECT_NEAR(interpolateLoss(points, 1.0), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(interpolateLoss({}, 1e-3), 0.0);
}

TEST(Optimizer, ErrorTolerantClassGetsNoEcc)
{
    // One class occupying all storage whose loss is negligible even
    // at the raw error rate: the optimiser must choose None.
    std::vector<ClassCurve> curves = {
        {2, {{1e-6, 0.0}, {1e-3, 0.001}}, 1.0}};
    EccAssignment table = optimizeAssignment(curves, 0.3);
    EXPECT_TRUE(table.schemeForClass(2).isNone());
}

TEST(Optimizer, SensitiveClassGetsStrongEcc)
{
    // A class that loses 5 dB at 1e-8 needs a very strong scheme.
    std::vector<ClassCurve> curves = {
        {20,
         {{1e-12, 0.001}, {1e-10, 0.1}, {1e-8, 5.0}, {1e-3, 30.0}},
         1.0}};
    EccAssignment table = optimizeAssignment(curves, 0.3);
    EXPECT_GE(table.schemeForClass(20).t, 9);
}

TEST(Optimizer, BudgetSplitByStorageShare)
{
    // Two classes; the first occupies 90% of storage and tolerates
    // errors, the second is sensitive. The optimiser must protect
    // them differently.
    std::vector<ClassCurve> curves = {
        {3, {{1e-6, 0.0}, {1e-3, 0.01}}, 0.9},
        {20, {{1e-10, 0.05}, {1e-6, 1.0}, {1e-3, 20.0}}, 1.0},
    };
    EccAssignment table = optimizeAssignment(curves, 0.3);
    EXPECT_LT(table.schemeForClass(3).t, table.schemeForClass(20).t);
}

TEST(Optimizer, LargerBudgetWeakensSchemes)
{
    std::vector<ClassCurve> curves = {
        {10, {{1e-10, 0.01}, {1e-6, 0.2}, {1e-3, 5.0}}, 1.0}};
    EccAssignment tight = optimizeAssignment(curves, 0.05);
    EccAssignment loose = optimizeAssignment(curves, 1.0);
    EXPECT_GE(tight.schemeForClass(10).t,
              loose.schemeForClass(10).t);
}

TEST(Optimizer, ConservativeNeverWeakerThanCompressionWin)
{
    // A class whose approximation cost is tiny relative to the
    // storage it frees gets a weak scheme; one whose cost exceeds
    // the compression equivalent stays strongly protected.
    std::vector<ClassCurve> tolerant = {
        {3, {{1e-6, 0.0}, {1e-3, 0.005}}, 1.0}};
    EccAssignment a = optimizeAssignmentConservative(tolerant);
    EXPECT_LE(a.schemeForClass(3).t, 6);

    std::vector<ClassCurve> sensitive = {
        {20, {{1e-12, 0.2}, {1e-8, 8.0}, {1e-3, 30.0}}, 1.0}};
    EccAssignment b = optimizeAssignmentConservative(sensitive);
    EXPECT_GE(b.schemeForClass(20).t, 10);
}

TEST(Optimizer, ConservativeMonotoneAcrossClasses)
{
    std::vector<ClassCurve> curves = {
        {2, {{1e-6, 0.0}, {1e-3, 0.01}}, 0.5},
        {10, {{1e-8, 0.1}, {1e-4, 2.0}, {1e-3, 10.0}}, 1.0},
    };
    EccAssignment table = optimizeAssignmentConservative(curves);
    EXPECT_LE(table.schemeForClass(2).t, table.schemeForClass(10).t);
    int prev = 0;
    for (const auto &entry : table.entries()) {
        EXPECT_GE(entry.scheme.t, prev);
        prev = entry.scheme.t;
    }
}

TEST(Optimizer, SteeperCompressionSlopeAllowsMoreApproximation)
{
    // If compression is expensive (loses a lot of quality per byte),
    // approximation wins more often -> weaker schemes acceptable.
    std::vector<ClassCurve> curves = {
        {8, {{1e-8, 0.05}, {1e-5, 0.5}, {1e-3, 5.0}}, 1.0}};
    EccAssignment cheap_cmp =
        optimizeAssignmentConservative(curves, 1.0);
    EccAssignment dear_cmp =
        optimizeAssignmentConservative(curves, 16.0);
    EXPECT_GE(cheap_cmp.schemeForClass(8).t,
              dear_cmp.schemeForClass(8).t);
}

// --- Pivots and partitioning -------------------------------------------------------

class PartitionFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        source_ = generateSynthetic(tinySpec(41));
        EncoderConfig config;
        config.gop.gopSize = 10;
        config.gop.bFrames = 2;
        prepared_ = prepareVideo(source_, config,
                                 EccAssignment::paperTable1());
    }

    Video source_;
    PreparedVideo prepared_;
};

TEST_F(PartitionFixture, PivotsPresentAndSorted)
{
    for (const auto &fh : prepared_.enc.video.frameHeaders) {
        ASSERT_FALSE(fh.pivots.empty());
        for (std::size_t p = 1; p < fh.pivots.size(); ++p)
            EXPECT_LT(fh.pivots[p - 1].bitOffset,
                      fh.pivots[p].bitOffset);
    }
}

TEST_F(PartitionFixture, PivotCountBoundedBySchemesPerSlice)
{
    // Monotone importance: at most one pivot per scheme per slice.
    for (const auto &fh : prepared_.enc.video.frameHeaders)
        EXPECT_LE(fh.pivots.size(), 7u * fh.slices.size());
}

TEST_F(PartitionFixture, PivotSchemesWeakenWithinSlice)
{
    for (const auto &fh : prepared_.enc.video.frameHeaders) {
        // Group pivots by slice and check non-increasing strength.
        for (const auto &slice : fh.slices) {
            u64 begin = static_cast<u64>(slice.byteOffset) * 8;
            u64 end = begin + static_cast<u64>(slice.byteLength) * 8;
            int prev_t = 17;
            for (const auto &p : fh.pivots) {
                if (p.bitOffset < begin || p.bitOffset >= end)
                    continue;
                EXPECT_LE(static_cast<int>(p.schemeT), prev_t);
                prev_t = p.schemeT;
            }
        }
    }
}

TEST_F(PartitionFixture, StreamsPartitionAllPayloadBits)
{
    u64 stream_bits = 0;
    for (const auto &[t, bits] : prepared_.streams.bitLength)
        stream_bits += bits;
    EXPECT_EQ(stream_bits, prepared_.enc.video.payloadBits());
}

TEST_F(PartitionFixture, ExtractMergeRoundTrip)
{
    EncodedVideo merged =
        mergeStreams(prepared_.enc.video, prepared_.streams);
    ASSERT_EQ(merged.payloads.size(),
              prepared_.enc.video.payloads.size());
    for (std::size_t f = 0; f < merged.payloads.size(); ++f)
        EXPECT_EQ(merged.payloads[f],
                  prepared_.enc.video.payloads[f])
            << "frame " << f;
}

TEST_F(PartitionFixture, UniformAssignmentYieldsSingleStream)
{
    repartition(prepared_, EccAssignment::uniform(kEccPrecise));
    EXPECT_EQ(prepared_.streams.data.size(), 1u);
    EXPECT_EQ(prepared_.streams.data.begin()->first, 16);
}

TEST_F(PartitionFixture, CorruptionInStreamLandsInRightPayloadBits)
{
    // Flip the first bit of the weakest stream; after merging, the
    // changed payload bit must belong to a segment assigned to that
    // scheme.
    auto weakest = prepared_.streams.data.begin(); // lowest t
    ASSERT_FALSE(weakest->second.empty());
    StreamSet corrupted = prepared_.streams;
    flipBit(corrupted.data[weakest->first], 0);
    EncodedVideo merged =
        mergeStreams(prepared_.enc.video, corrupted);

    int diffs = 0;
    for (std::size_t f = 0; f < merged.payloads.size(); ++f)
        diffs += merged.payloads[f] !=
                 prepared_.enc.video.payloads[f];
    EXPECT_EQ(diffs, 1);
}

TEST_F(PartitionFixture, CorruptedPivotsNeverCrashExtraction)
{
    // Damaged headers (out-of-range offsets, shuffled schemes) must
    // leave extraction and merging total — worst case is misplaced
    // bits, never a fault.
    Rng rng(49);
    for (int trial = 0; trial < 20; ++trial) {
        EncodedVideo mangled = prepared_.enc.video;
        for (auto &fh : mangled.frameHeaders) {
            for (auto &p : fh.pivots) {
                if (rng.nextBool(0.3))
                    p.bitOffset = rng.next() % (1u << 20);
                if (rng.nextBool(0.3))
                    p.schemeT = static_cast<u8>(rng.nextBelow(40));
            }
        }
        StreamSet streams = extractStreams(mangled);
        EncodedVideo merged = mergeStreams(mangled, streams);
        Video decoded = decodeVideo(merged);
        ASSERT_EQ(decoded.frames.size(), source_.frames.size());
    }
}

TEST_F(PartitionFixture, MergeWithMissingStreamFillsZeros)
{
    // A storage system that lost an entire reliability stream must
    // still reassemble (zero-filled) and decode.
    StreamSet incomplete = prepared_.streams;
    incomplete.data.erase(incomplete.data.begin());
    EncodedVideo merged =
        mergeStreams(prepared_.enc.video, incomplete);
    Video decoded = decodeVideo(merged);
    ASSERT_EQ(decoded.frames.size(), source_.frames.size());
}

// --- Pipeline -----------------------------------------------------------------------

TEST_F(PartitionFixture, ErrorFreeChannelIsLossless)
{
    ModeledChannel channel(0.0);
    Rng rng(1);
    StorageOutcome outcome =
        storeAndRetrieve(prepared_, channel, rng);
    EXPECT_DOUBLE_EQ(outcome.psnrVsReference, kPsnrCap);
    EXPECT_GT(outcome.cellsPerPixel, 0.0);
}

TEST_F(PartitionFixture, VariableDenserThanUniform)
{
    double variable = densityCellsPerPixel(
        prepared_, source_.pixelCount());
    repartition(prepared_, EccAssignment::uniform(kEccPrecise));
    double uniform = densityCellsPerPixel(
        prepared_, source_.pixelCount());
    EXPECT_LT(variable, uniform);
}

TEST_F(PartitionFixture, QualityLossSmallAtRawBer)
{
    ModeledChannel channel(kPcmRawBer);
    Rng rng(2);
    StorageOutcome outcome =
        storeAndRetrieve(prepared_, channel, rng);
    // Table 1 protection keeps quality near-lossless; with the tiny
    // test video even one failure run is visible, so just require
    // sane output.
    EXPECT_GT(outcome.psnrVsReference, 30.0);
    EXPECT_GT(outcome.eccOverheadFraction, 0.0);
    EXPECT_LT(outcome.eccOverheadFraction, 0.3125 / 1.3125);
}

TEST_F(PartitionFixture, EncryptedCtrPipelineLossless)
{
    ModeledChannel channel(0.0);
    Rng rng(3);
    EncryptionConfig enc_config;
    enc_config.mode = CipherMode::CTR;
    enc_config.key = Bytes(16, 0x42);
    StorageOutcome outcome =
        storeAndRetrieve(prepared_, channel, rng, enc_config);
    EXPECT_DOUBLE_EQ(outcome.psnrVsReference, kPsnrCap);
}

TEST_F(PartitionFixture, EncryptedCtrMatchesPlainUnderErrors)
{
    // Requirement #3 of Section 5.1: approximating ciphertext must
    // cost the same quality as approximating plaintext. Compare
    // error statistics over a few seeds.
    ModeledChannel channel(3e-3);
    double plain_total = 0, ctr_total = 0;
    for (u64 seed = 0; seed < 4; ++seed) {
        Rng rng_a(seed + 10), rng_b(seed + 10);
        StorageOutcome plain =
            storeAndRetrieve(prepared_, channel, rng_a);
        EncryptionConfig enc_config;
        enc_config.mode = CipherMode::CTR;
        enc_config.key = Bytes(16, 0x11);
        StorageOutcome ctr = storeAndRetrieve(prepared_, channel,
                                              rng_b, enc_config);
        plain_total += plain.psnrVsReference;
        ctr_total += ctr.psnrVsReference;
    }
    // Same channel statistics: averages within a few dB.
    EXPECT_NEAR(plain_total / 4, ctr_total / 4, 6.0);
}

TEST_F(PartitionFixture, CbcEncryptionAmplifiesDamage)
{
    // CBC fails requirement #2: each flipped ciphertext bit garbles
    // a whole block. At the same channel error rate the CBC
    // pipeline must be clearly worse than CTR on average.
    ModeledChannel channel(3e-3);
    double ctr_total = 0, cbc_total = 0;
    for (u64 seed = 0; seed < 6; ++seed) {
        Rng rng_a(seed + 50), rng_b(seed + 50);
        EncryptionConfig ctr_config;
        ctr_config.mode = CipherMode::CTR;
        ctr_config.key = Bytes(16, 0x33);
        EncryptionConfig cbc_config;
        cbc_config.mode = CipherMode::CBC;
        cbc_config.key = Bytes(16, 0x33);
        ctr_total += storeAndRetrieve(prepared_, channel, rng_a,
                                      ctr_config)
                         .psnrVsReference;
        cbc_total += storeAndRetrieve(prepared_, channel, rng_b,
                                      cbc_config)
                         .psnrVsReference;
    }
    EXPECT_GT(ctr_total, cbc_total);
}

TEST(Pipeline, HeaderBitsCountedInDensity)
{
    Video source = generateSynthetic(tinySpec(42));
    PreparedVideo prepared = prepareVideo(
        source, EncoderConfig{}, EccAssignment::paperTable1());
    double with_headers =
        densityCellsPerPixel(prepared, source.pixelCount());
    // Manually computing payload-only density must give less.
    StorageAccountant acc(3);
    for (const auto &[t, data] : prepared.streams.data)
        acc.addStream(data.size() * 8, EccScheme{t});
    EXPECT_LT(acc.cellsPerPixel(source.pixelCount()), with_headers);
}

} // namespace
} // namespace videoapp
