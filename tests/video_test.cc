/**
 * @file
 * Tests for frames, synthetic sequence generation, and raw video I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "video/frame.h"
#include "video/synthetic.h"
#include "video/yuv_io.h"

namespace videoapp {
namespace {

TEST(Frame, DimensionsAndChromaSubsampling)
{
    Frame f(64, 48);
    EXPECT_EQ(f.width(), 64);
    EXPECT_EQ(f.height(), 48);
    EXPECT_EQ(f.u().width(), 32);
    EXPECT_EQ(f.u().height(), 24);
    EXPECT_EQ(f.v().width(), 32);
    EXPECT_EQ(f.pixelCount(), 64u * 48u);
}

TEST(Plane, ClampedAccessAtEdges)
{
    Plane p(4, 4);
    p.at(0, 0) = 10;
    p.at(3, 3) = 20;
    EXPECT_EQ(p.atClamped(-5, -5), 10);
    EXPECT_EQ(p.atClamped(100, 100), 20);
    EXPECT_EQ(p.atClamped(0, 0), 10);
}

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticSpec spec = tinySpec(9);
    Video a = generateSynthetic(spec);
    Video b = generateSynthetic(spec);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < a.frames.size(); ++i)
        EXPECT_EQ(a.frames[i].y().data(), b.frames[i].y().data());
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    Video a = generateSynthetic(tinySpec(1));
    Video b = generateSynthetic(tinySpec(2));
    EXPECT_NE(a.frames[0].y().data(), b.frames[0].y().data());
}

TEST(Synthetic, TemporalCoherenceWithoutCut)
{
    // Adjacent frames of a panning scene must be much more similar
    // than distant ones — the property motion compensation exploits.
    SyntheticSpec spec = tinySpec(3);
    Video v = generateSynthetic(spec);
    auto sad = [&](const Frame &a, const Frame &b) {
        long total = 0;
        for (std::size_t i = 0; i < a.y().data().size(); ++i)
            total += std::abs(static_cast<int>(a.y().data()[i]) -
                              static_cast<int>(b.y().data()[i]));
        return total;
    };
    long near = sad(v.frames[5], v.frames[6]);
    long far = sad(v.frames[0], v.frames[15]);
    EXPECT_LT(near, far);
}

TEST(Synthetic, SceneCutBreaksSimilarity)
{
    SyntheticSpec spec = tinySpec(4);
    spec.sceneCutAt = 10;
    spec.sprites = 0;
    Video v = generateSynthetic(spec);
    auto sad = [&](const Frame &a, const Frame &b) {
        long total = 0;
        for (std::size_t i = 0; i < a.y().data().size(); ++i)
            total += std::abs(static_cast<int>(a.y().data()[i]) -
                              static_cast<int>(b.y().data()[i]));
        return total;
    };
    long before = sad(v.frames[8], v.frames[9]);
    long across = sad(v.frames[9], v.frames[10]);
    EXPECT_GT(across, 3 * before);
}

TEST(Synthetic, StandardSuiteHas14Sequences)
{
    auto suite = standardSuite(0.25);
    EXPECT_EQ(suite.size(), 14u);
    for (const auto &spec : suite) {
        EXPECT_EQ(spec.width % 16, 0) << spec.name;
        EXPECT_EQ(spec.height % 16, 0) << spec.name;
        EXPECT_GE(spec.frames, 12) << spec.name;
        EXPECT_FALSE(spec.name.empty());
    }
}

TEST(Synthetic, SuiteNamesUnique)
{
    auto suite = standardSuite(0.25);
    std::set<std::string> names;
    for (const auto &spec : suite)
        names.insert(spec.name);
    EXPECT_EQ(names.size(), suite.size());
}

TEST(YuvIo, SaveLoadRoundTrip)
{
    Video v = generateSynthetic(tinySpec(5));
    std::string path = ::testing::TempDir() + "/va_roundtrip.yuv";
    ASSERT_TRUE(saveI420(v, path));
    Video back = loadI420(path, v.width(), v.height());
    ASSERT_EQ(back.frames.size(), v.frames.size());
    for (std::size_t i = 0; i < v.frames.size(); ++i) {
        EXPECT_EQ(back.frames[i].y().data(), v.frames[i].y().data());
        EXPECT_EQ(back.frames[i].u().data(), v.frames[i].u().data());
        EXPECT_EQ(back.frames[i].v().data(), v.frames[i].v().data());
    }
    std::remove(path.c_str());
}

TEST(YuvIo, LoadRejectsBadDimensions)
{
    Video v = loadI420("/nonexistent", 64, 64);
    EXPECT_TRUE(v.frames.empty());
    Video odd = loadI420("/nonexistent", 63, 64);
    EXPECT_TRUE(odd.frames.empty());
}

TEST(YuvIo, TruncatedFileDropsPartialFrame)
{
    // A file cut mid-frame must yield only the complete frames,
    // never a torn or half-read one.
    Video v = generateSynthetic(tinySpec(6));
    ASSERT_GE(v.frames.size(), 2u);
    std::string path = ::testing::TempDir() + "/va_truncated.yuv";
    ASSERT_TRUE(saveI420(v, path));

    std::size_t frame_bytes =
        v.frames[0].y().data().size() +
        v.frames[0].u().data().size() +
        v.frames[0].v().data().size();
    // Cut in the luma plane, then in each chroma plane, of frame 2.
    for (std::size_t cut_in_frame :
         {frame_bytes / 3, v.frames[0].y().data().size() + 1,
          frame_bytes - 1}) {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> all((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
        all.resize(frame_bytes + cut_in_frame);
        std::string cut_path =
            ::testing::TempDir() + "/va_truncated_cut.yuv";
        std::ofstream out(cut_path, std::ios::binary);
        out.write(all.data(),
                  static_cast<std::streamsize>(all.size()));
        out.close();

        Video back = loadI420(cut_path, v.width(), v.height());
        ASSERT_EQ(back.frames.size(), 1u)
            << "cut at frame offset " << cut_in_frame;
        EXPECT_EQ(back.frames[0].y().data(),
                  v.frames[0].y().data());
        EXPECT_EQ(back.frames[0].v().data(),
                  v.frames[0].v().data());
        std::remove(cut_path.c_str());
    }
    std::remove(path.c_str());
}

TEST(YuvIo, EmptyFileYieldsNoFrames)
{
    std::string path = ::testing::TempDir() + "/va_empty.yuv";
    { std::ofstream out(path, std::ios::binary); }
    Video v = loadI420(path, 64, 48);
    EXPECT_TRUE(v.frames.empty());
    std::remove(path.c_str());
}

TEST(YuvIo, ZeroAndNegativeDimensionsRejected)
{
    std::string path = ::testing::TempDir() + "/va_dims.yuv";
    {
        std::ofstream out(path, std::ios::binary);
        std::vector<char> junk(4096, 0x42);
        out.write(junk.data(),
                  static_cast<std::streamsize>(junk.size()));
    }
    EXPECT_TRUE(loadI420(path, 0, 16).frames.empty());
    EXPECT_TRUE(loadI420(path, 16, 0).frames.empty());
    EXPECT_TRUE(loadI420(path, -16, 16).frames.empty());
    EXPECT_TRUE(loadI420(path, 16, -16).frames.empty());
    std::remove(path.c_str());
}

TEST(YuvIo, PgmDump)
{
    Plane p(16, 16, 200);
    std::string path = ::testing::TempDir() + "/va_dump.pgm";
    ASSERT_TRUE(savePgm(p, path));
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P5");
    std::remove(path.c_str());
}

} // namespace
} // namespace videoapp
