/**
 * @file
 * Configuration-space fuzzing: random combinations of every encoder
 * knob must preserve the two codec contracts — bit-exact
 * encoder/decoder parity on clean streams, and crash-free bounded
 * decoding on corrupted ones. This is the test that catches
 * cross-feature interactions (slices x B-refs x deblocking x
 * half-pel x entropy backend x ABR ...).
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "graph/importance.h"
#include "storage/error_injector.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

EncoderConfig
randomConfig(Rng &rng)
{
    EncoderConfig config;
    config.crf = 14 + static_cast<int>(rng.nextBelow(22));
    config.targetKbps =
        rng.nextBool(0.3)
            ? 20 + static_cast<int>(rng.nextBelow(200))
            : 0;
    config.gop.gopSize = 3 + static_cast<int>(rng.nextBelow(30));
    config.gop.bFrames = static_cast<int>(rng.nextBelow(4));
    config.gop.bRefs = rng.nextBool(0.5);
    config.entropy = rng.nextBool(0.5) ? EntropyKind::CABAC
                                       : EntropyKind::CAVLC;
    config.slicesPerFrame = 1 + static_cast<int>(rng.nextBelow(4));
    config.searchRange = 4 + static_cast<int>(rng.nextBelow(20));
    config.partitionSearch = rng.nextBool(0.8);
    config.subPartitions = rng.nextBool(0.7);
    config.allowSkip = rng.nextBool(0.9);
    config.deblocking = rng.nextBool(0.7);
    config.subPel = static_cast<SubPel>(rng.nextBelow(3));
    config.intra4x4 = rng.nextBool(0.7);
    return config;
}

TEST(CodecFuzz, RandomConfigsKeepParity)
{
    Rng rng(4242);
    for (int trial = 0; trial < 20; ++trial) {
        EncoderConfig config = randomConfig(rng);
        Video source =
            generateSynthetic(tinySpec(1000 + trial));
        EncodeResult enc = encodeVideo(source, config);
        Video decoded = decodeVideo(enc.video);
        ASSERT_EQ(decoded.frames.size(), source.frames.size());
        for (std::size_t i = 0; i < decoded.frames.size(); ++i) {
            ASSERT_EQ(decoded.frames[i].y().data(),
                      enc.reconFrames[i].y().data())
                << "trial " << trial << " frame " << i;
            ASSERT_EQ(decoded.frames[i].u().data(),
                      enc.reconFrames[i].u().data());
            ASSERT_EQ(decoded.frames[i].v().data(),
                      enc.reconFrames[i].v().data());
        }
    }
}

TEST(CodecFuzz, RandomConfigsSurviveCorruption)
{
    Rng rng(5353);
    for (int trial = 0; trial < 10; ++trial) {
        EncoderConfig config = randomConfig(rng);
        Video source =
            generateSynthetic(tinySpec(2000 + trial));
        EncodeResult enc = encodeVideo(source, config);
        for (int run = 0; run < 3; ++run) {
            EncodedVideo corrupted = enc.video;
            for (auto &payload : corrupted.payloads)
                injectErrors(payload, 3e-3, rng);
            DecodeOptions options;
            options.concealErrors = rng.nextBool(0.5);
            Video decoded = decodeVideo(corrupted, options);
            ASSERT_EQ(decoded.frames.size(),
                      source.frames.size());
        }
    }
}

TEST(CodecFuzz, RandomConfigsKeepAnalysisInvariants)
{
    // Importance must stay >= 1 and scan-order monotone per slice
    // regardless of configuration; streaming must match batch.
    Rng rng(6464);
    for (int trial = 0; trial < 8; ++trial) {
        EncoderConfig config = randomConfig(rng);
        Video source =
            generateSynthetic(tinySpec(3000 + trial));
        EncodeResult enc = encodeVideo(source, config);
        ImportanceMap batch =
            computeImportance(enc.side, enc.video);
        ImportanceMap streaming =
            computeImportanceStreaming(enc.side, enc.video);
        for (std::size_t f = 0; f < batch.values.size(); ++f) {
            for (std::size_t m = 0; m < batch.values[f].size();
                 ++m) {
                ASSERT_GE(batch.values[f][m], 1.0);
                ASSERT_NEAR(batch.values[f][m],
                            streaming.values[f][m],
                            1e-6 * (1.0 + batch.values[f][m]));
            }
            for (const auto &slice :
                 enc.video.frameHeaders[f].slices) {
                for (u32 m = slice.firstMb;
                     m + 1 < slice.firstMb + slice.mbCount; ++m)
                    ASSERT_GT(batch.values[f][m],
                              batch.values[f][m + 1]);
            }
        }
    }
}

TEST(CodecFuzz, RandomConfigsPartitionRoundTrip)
{
    Rng rng(7575);
    for (int trial = 0; trial < 8; ++trial) {
        EncoderConfig config = randomConfig(rng);
        Video source =
            generateSynthetic(tinySpec(4000 + trial));
        PreparedVideo prepared = prepareVideo(
            source, config, EccAssignment::paperTable1());
        EncodedVideo merged =
            mergeStreams(prepared.enc.video, prepared.streams);
        for (std::size_t f = 0; f < merged.payloads.size(); ++f)
            ASSERT_EQ(merged.payloads[f],
                      prepared.enc.video.payloads[f])
                << "trial " << trial << " frame " << f;
    }
}

TEST(CodecFuzz, EncodingIsDeterministic)
{
    // Identical input + config must produce byte-identical streams
    // (reproducibility contract: no hidden global state or time
    // dependence anywhere in the encoder).
    Rng rng(8686);
    for (int trial = 0; trial < 5; ++trial) {
        EncoderConfig config = randomConfig(rng);
        Video source = generateSynthetic(tinySpec(5000 + trial));
        EncodeResult a = encodeVideo(source, config);
        EncodeResult b = encodeVideo(source, config);
        ASSERT_EQ(a.video.payloads.size(), b.video.payloads.size());
        for (std::size_t i = 0; i < a.video.payloads.size(); ++i)
            ASSERT_EQ(a.video.payloads[i], b.video.payloads[i]);
        ASSERT_EQ(serialize(a.video), serialize(b.video));
    }
}

TEST(CodecFuzz, RandomResolutionsKeepParity)
{
    // Non-square and odd MB-count resolutions, including single-row
    // and single-column grids.
    Rng rng(9797);
    const std::pair<int, int> dims[] = {
        {16, 16}, {16, 128}, {128, 16}, {48, 112}, {144, 32},
        {96, 96}};
    int trial = 0;
    for (auto [w, h] : dims) {
        EncoderConfig config = randomConfig(rng);
        SyntheticSpec spec = tinySpec(6000 + trial++);
        spec.width = w;
        spec.height = h;
        spec.frames = 8;
        Video source = generateSynthetic(spec);
        EncodeResult enc = encodeVideo(source, config);
        Video decoded = decodeVideo(enc.video);
        ASSERT_EQ(decoded.frames.size(), source.frames.size());
        for (std::size_t i = 0; i < decoded.frames.size(); ++i) {
            ASSERT_EQ(decoded.frames[i].y().data(),
                      enc.reconFrames[i].y().data())
                << w << "x" << h << " frame " << i;
        }
    }
}

} // namespace
} // namespace videoapp
