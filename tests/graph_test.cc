/**
 * @file
 * Dependency graph and importance computation tests, including the
 * paper's structural theorems: importance >= 1, strict monotone
 * decrease in scan order within a slice (the pivot property), and
 * the I > P > B importance ordering that follows from reference
 * structure.
 */

#include <gtest/gtest.h>

#include "codec/encoder.h"
#include "graph/importance.h"
#include "graph/topo_sort.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

// --- Topological machinery ------------------------------------------------

TEST(TopoSort, SortsChain)
{
    WeightedDag dag(4);
    dag.addEdge(0, 1, 1.0f);
    dag.addEdge(1, 2, 1.0f);
    dag.addEdge(2, 3, 1.0f);
    auto order = topologicalSort(dag);
    ASSERT_EQ(order.size(), 4u);
    std::vector<int> position(4);
    for (int i = 0; i < 4; ++i)
        position[order[i]] = i;
    EXPECT_LT(position[0], position[1]);
    EXPECT_LT(position[1], position[2]);
    EXPECT_LT(position[2], position[3]);
}

TEST(TopoSort, DetectsCycle)
{
    WeightedDag dag(3);
    dag.addEdge(0, 1, 1.0f);
    dag.addEdge(1, 2, 1.0f);
    dag.addEdge(2, 0, 1.0f);
    EXPECT_TRUE(topologicalSort(dag).empty());
}

TEST(TopoSort, AccumulateMatchesPaperExample)
{
    // Figure 4's shape: G has incoming edges from C (1/4 + 1/8 = 3/8
    // aggregated), B (1/4), A... build a small version: node 0 feeds
    // node 2 with weight 0.5 and node 1 with weight 0.5; node 1
    // feeds node 2 with weight 0.5.
    WeightedDag dag(3);
    dag.addEdge(0, 1, 0.5f);
    dag.addEdge(0, 2, 0.5f);
    dag.addEdge(1, 2, 0.5f);
    std::vector<double> init(3, 1.0);
    auto importance = accumulateImportance(dag, init);
    // node2 = 1; node1 = 1 + 0.5*1 = 1.5; node0 = 1 + 0.5*1.5 +
    // 0.5*1 = 2.25.
    EXPECT_DOUBLE_EQ(importance[2], 1.0);
    EXPECT_DOUBLE_EQ(importance[1], 1.5);
    EXPECT_DOUBLE_EQ(importance[0], 2.25);
}

TEST(TopoSort, ChainAccumulatesLinearly)
{
    const int n = 10;
    WeightedDag dag(n);
    for (int i = 0; i + 1 < n; ++i)
        dag.addEdge(i, i + 1, 1.0f);
    std::vector<double> init(n, 1.0);
    auto importance = accumulateImportance(dag, init);
    // Weight-1 chain: node i sees all n-i downstream nodes.
    for (int i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(importance[i], n - i);
}

// --- Importance on real encodings -----------------------------------------

class ImportanceFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        source_ = generateSynthetic(tinySpec(31));
        EncoderConfig config;
        config.gop.gopSize = 10;
        config.gop.bFrames = 2;
        enc_ = encodeVideo(source_, config);
        importance_ = computeImportance(enc_.side, enc_.video);
    }

    Video source_;
    EncodeResult enc_;
    ImportanceMap importance_;
};

TEST_F(ImportanceFixture, EveryMbAtLeastOne)
{
    for (const auto &frame : importance_.values)
        for (double v : frame)
            EXPECT_GE(v, 1.0);
}

TEST_F(ImportanceFixture, StrictlyDecreasingInScanOrderWithinSlice)
{
    // The Section 4.4 theorem that makes pivots possible.
    for (std::size_t f = 0; f < enc_.video.frameHeaders.size(); ++f) {
        for (const auto &slice : enc_.video.frameHeaders[f].slices) {
            for (u32 m = slice.firstMb;
                 m + 1 < slice.firstMb + slice.mbCount; ++m) {
                EXPECT_GT(importance_.values[f][m],
                          importance_.values[f][m + 1])
                    << "frame " << f << " mb " << m;
            }
        }
    }
}

TEST_F(ImportanceFixture, UnreferencedBFramesLeastImportant)
{
    // Default GOP: B frames are never referenced, so their MBs'
    // importance comes only from the in-frame coding chain; anchors
    // accumulate cross-frame compensation importance on top.
    double max_b = 0.0, max_anchor = 0.0;
    for (std::size_t f = 0; f < enc_.side.frames.size(); ++f) {
        double frame_max = 0.0;
        for (double v : importance_.values[f])
            frame_max = std::max(frame_max, v);
        if (enc_.side.frames[f].type == FrameType::B)
            max_b = std::max(max_b, frame_max);
        else
            max_anchor = std::max(max_anchor, frame_max);
    }
    EXPECT_GT(max_anchor, max_b);
    // B-frame importance is bounded by the in-frame chain (plus a
    // modest allowance for intra MBs inside the B frame, which add
    // spatial compensation weight).
    EXPECT_LE(max_b, 2.0 * enc_.video.mbPerFrame());
}

TEST_F(ImportanceFixture, EarlierAnchorsMoreImportant)
{
    // Within a GOP, each anchor transitively feeds all later ones:
    // the first anchor's top MB must dominate the last anchor's.
    std::vector<std::size_t> anchors;
    for (std::size_t f = 0; f < enc_.side.frames.size(); ++f)
        if (enc_.side.frames[f].type != FrameType::B)
            anchors.push_back(f);
    ASSERT_GE(anchors.size(), 3u);
    double first = importance_.values[anchors.front()][0];
    double last = importance_.values[anchors.back()][0];
    EXPECT_GT(first, last);
}

TEST_F(ImportanceFixture, CompensationBoundedByTotal)
{
    ImportanceMap comp =
        computeCompensationImportance(enc_.side, enc_.video);
    for (std::size_t f = 0; f < comp.values.size(); ++f)
        for (std::size_t m = 0; m < comp.values[f].size(); ++m)
            EXPECT_LE(comp.values[f][m],
                      importance_.values[f][m] + 1e-9);
}

TEST_F(ImportanceFixture, ImportanceSpreadIsWide)
{
    // The paper observes importance from 1 to 2^26 at 720p/500
    // frames; at test scale the spread is smaller but must still
    // span orders of magnitude for the partitioning to matter.
    EXPECT_GT(importance_.maxImportance(),
              importance_.minImportance() * 50);
    EXPECT_GE(importance_.minImportance(), 1.0);
}

TEST(ImportanceClass, ClassOfPowers)
{
    EXPECT_EQ(ImportanceMap::classOf(1.0), 0);
    EXPECT_EQ(ImportanceMap::classOf(2.0), 1);
    EXPECT_EQ(ImportanceMap::classOf(2.1), 2);
    EXPECT_EQ(ImportanceMap::classOf(4.0), 2);
    EXPECT_EQ(ImportanceMap::classOf(1 << 20), 20);
    EXPECT_EQ(ImportanceMap::classOf(0.5), 0);
}

class StreamingParam
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{
};

TEST_P(StreamingParam, StreamingEqualsBatch)
{
    // The Section 4.3.1 windowed evaluation must agree exactly with
    // the whole-graph algorithm, across GOP shapes.
    auto [gop, bframes, brefs] = GetParam();
    Video source = generateSynthetic(tinySpec(33));
    EncoderConfig config;
    config.gop.gopSize = gop;
    config.gop.bFrames = bframes;
    config.gop.bRefs = brefs;
    EncodeResult enc = encodeVideo(source, config);

    ImportanceMap batch = computeImportance(enc.side, enc.video);
    ImportanceMap streaming =
        computeImportanceStreaming(enc.side, enc.video);

    ASSERT_EQ(batch.values.size(), streaming.values.size());
    for (std::size_t f = 0; f < batch.values.size(); ++f) {
        ASSERT_EQ(batch.values[f].size(),
                  streaming.values[f].size());
        for (std::size_t m = 0; m < batch.values[f].size(); ++m)
            EXPECT_NEAR(batch.values[f][m], streaming.values[f][m],
                        1e-6 * (1.0 + batch.values[f][m]))
                << "frame " << f << " mb " << m;
    }
}

INSTANTIATE_TEST_SUITE_P(
    GopShapes, StreamingParam,
    ::testing::Values(std::make_tuple(5, 0, false),
                      std::make_tuple(6, 2, false),
                      std::make_tuple(6, 2, true),
                      std::make_tuple(8, 3, false),
                      std::make_tuple(100, 2, false)));

TEST(ImportanceSlices, MoreSlicesLowerPeakImportance)
{
    // Slices cut the coding chain (Section 8): the same video coded
    // with 4 slices per frame must show lower maximum importance.
    Video source = generateSynthetic(tinySpec(32));
    EncoderConfig one, four;
    one.slicesPerFrame = 1;
    four.slicesPerFrame = 4;
    EncodeResult r1 = encodeVideo(source, one);
    EncodeResult r4 = encodeVideo(source, four);
    double m1 =
        computeImportance(r1.side, r1.video).maxImportance();
    double m4 =
        computeImportance(r4.side, r4.video).maxImportance();
    EXPECT_LT(m4, m1);
}

} // namespace
} // namespace videoapp
