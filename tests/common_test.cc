/**
 * @file
 * Unit tests for the common substrate: bit I/O, RNG, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitstream.h"
#include "common/rng.h"
#include "common/stats.h"

namespace videoapp {
namespace {

TEST(BitWriter, PacksMsbFirst)
{
    BitWriter w;
    w.writeBits(0b1011, 4);
    w.writeBits(0b0001, 4);
    Bytes b = w.take();
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0], 0xB1);
}

TEST(BitWriter, BitCountTracksPartialBytes)
{
    BitWriter w;
    EXPECT_EQ(w.bitCount(), 0u);
    w.writeBit(1);
    EXPECT_EQ(w.bitCount(), 1u);
    w.writeBits(0, 10);
    EXPECT_EQ(w.bitCount(), 11u);
}

TEST(BitStream, RoundTripValues)
{
    BitWriter w;
    Rng rng(42);
    std::vector<std::pair<u32, int>> values;
    for (int i = 0; i < 1000; ++i) {
        int count = 1 + static_cast<int>(rng.nextBelow(24));
        u32 v = static_cast<u32>(rng.next()) &
                ((count == 32) ? ~0u : ((1u << count) - 1));
        values.emplace_back(v, count);
        w.writeBits(v, count);
    }
    Bytes bytes = w.take();
    BitReader r(bytes);
    for (auto [v, count] : values)
        EXPECT_EQ(r.readBits(count), v);
}

TEST(BitReader, PastEndReturnsZeros)
{
    Bytes b{0xFF};
    BitReader r(b);
    EXPECT_EQ(r.readBits(8), 0xFFu);
    EXPECT_EQ(r.readBits(16), 0u);
    EXPECT_TRUE(r.exhausted());
}

TEST(BitReader, StartOffsetHonored)
{
    Bytes b{0b10110001, 0b01000000};
    BitReader r(b, 4);
    EXPECT_EQ(r.readBits(6), 0b000101u);
}

TEST(FlipBit, TogglesAndIgnoresOutOfRange)
{
    Bytes b{0x00, 0x00};
    flipBit(b, 0);
    EXPECT_EQ(b[0], 0x80);
    flipBit(b, 15);
    EXPECT_EQ(b[1], 0x01);
    flipBit(b, 15);
    EXPECT_EQ(b[1], 0x00);
    flipBit(b, 99); // no-op
    EXPECT_EQ(getBit(b, 0), 1u);
    EXPECT_EQ(getBit(b, 99), 0u);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBelowBounds)
{
    Rng rng(11);
    std::set<u64> seen;
    for (int i = 0; i < 3000; ++i) {
        u64 v = rng.nextBelow(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u); // all values hit
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.nextGaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, BinomialSmallMeanMatches)
{
    Rng rng(9);
    const u64 n = 1000;
    const double p = 0.002; // mean 2
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.nextBinomial(n, p)));
    EXPECT_NEAR(stats.mean(), n * p, 0.05);
    EXPECT_NEAR(stats.variance(), n * p * (1 - p), 0.15);
}

TEST(Rng, BinomialLargeMeanMatches)
{
    Rng rng(13);
    const u64 n = 100000;
    const double p = 0.01; // mean 1000 -> normal approximation path
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(static_cast<double>(rng.nextBinomial(n, p)));
    EXPECT_NEAR(stats.mean(), 1000.0, 2.0);
    EXPECT_NEAR(stats.stddev(), std::sqrt(n * p * (1 - p)), 1.0);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(1);
    EXPECT_EQ(rng.nextBinomial(100, 0.0), 0u);
    EXPECT_EQ(rng.nextBinomial(100, 1.0), 100u);
    EXPECT_EQ(rng.nextBinomial(0, 0.5), 0u);
}

TEST(Stats, BinomialTailMatchesExactEnumeration)
{
    // P(X > 1) for Bin(3, 0.5) = (3 + 1) / 8 = 0.5.
    EXPECT_NEAR(binomialTailAbove(3, 0.5, 1), 0.5, 1e-12);
    // P(X > 0) = 1 - (1-p)^n.
    EXPECT_NEAR(binomialTailAbove(10, 0.1, 0),
                1.0 - std::pow(0.9, 10), 1e-12);
    // Degenerate cases.
    EXPECT_EQ(binomialTailAbove(10, 0.0, 0), 0.0);
    EXPECT_EQ(binomialTailAbove(10, 0.5, 10), 0.0);
    EXPECT_EQ(binomialTailAbove(10, 0.5, -1), 1.0);
}

TEST(Stats, BinomialTailHandlesTinyProbabilities)
{
    // 572-bit BCH-6 block at 1e-3 raw BER: known to be ~2e-6.
    double tail = binomialTailAbove(572, 1e-3, 6);
    EXPECT_GT(tail, 1e-7);
    EXPECT_LT(tail, 1e-5);
    // Deep tail should be tiny but positive.
    double deep = binomialTailAbove(672, 1e-3, 16);
    EXPECT_GT(deep, 0.0);
    EXPECT_LT(deep, 1e-15);
}

TEST(Stats, RunningStatsBasics)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, MeanOfVector)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

} // namespace
} // namespace videoapp
