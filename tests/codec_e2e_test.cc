/**
 * @file
 * End-to-end codec tests: encoder/decoder parity, quality vs. CRF,
 * CABAC/CAVLC comparison, and the crash-proof-decode contract under
 * random corruption.
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/rng.h"
#include "quality/psnr.h"
#include "storage/error_injector.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

bool
framesIdentical(const Frame &a, const Frame &b)
{
    return a.y().data() == b.y().data() &&
           a.u().data() == b.u().data() &&
           a.v().data() == b.v().data();
}

class CodecParam
    : public ::testing::TestWithParam<std::tuple<EntropyKind, int>>
{
  protected:
    EncoderConfig
    config() const
    {
        EncoderConfig c;
        c.entropy = std::get<0>(GetParam());
        c.crf = std::get<1>(GetParam());
        c.gop.gopSize = 10;
        c.gop.bFrames = 2;
        return c;
    }
};

TEST_P(CodecParam, DecoderReproducesEncoderReconstruction)
{
    Video source = generateSynthetic(tinySpec(11));
    EncodeResult result = encodeVideo(source, config());
    Video decoded = decodeVideo(result.video);

    ASSERT_EQ(decoded.frames.size(), source.frames.size());
    ASSERT_EQ(result.reconFrames.size(), source.frames.size());
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_TRUE(framesIdentical(decoded.frames[i],
                                    result.reconFrames[i]))
            << "frame " << i;
}

TEST_P(CodecParam, ReconstructionQualityReasonable)
{
    Video source = generateSynthetic(tinySpec(12));
    EncodeResult result = encodeVideo(source, config());
    Video decoded = decodeVideo(result.video);
    double psnr = psnrVideo(source, decoded);
    // Lossy but sane: >28 dB at CRF 28 and below on this content.
    EXPECT_GT(psnr, 28.0);
    EXPECT_LT(psnr, kPsnrCap);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CodecParam,
    ::testing::Combine(::testing::Values(EntropyKind::CABAC,
                                         EntropyKind::CAVLC),
                       ::testing::Values(16, 24, 28)),
    [](const auto &info) {
        return std::string(entropyKindName(std::get<0>(info.param))) +
               "Crf" + std::to_string(std::get<1>(info.param));
    });

TEST(CodecE2e, LowerCrfGivesHigherQualityAndMoreBits)
{
    Video source = generateSynthetic(tinySpec(13));
    EncoderConfig high, low;
    high.crf = 16;
    low.crf = 30;
    EncodeResult r_high = encodeVideo(source, high);
    EncodeResult r_low = encodeVideo(source, low);

    double psnr_high = psnrVideo(source, decodeVideo(r_high.video));
    double psnr_low = psnrVideo(source, decodeVideo(r_low.video));
    EXPECT_GT(psnr_high, psnr_low + 2.0);
    EXPECT_GT(r_high.video.payloadBits(),
              r_low.video.payloadBits());
}

TEST(CodecE2e, AbrTracksBitrateTarget)
{
    Video source = generateSynthetic(tinySpec(27));
    // CRF-only size first, then target half of it via ABR.
    EncoderConfig crf_only;
    crf_only.crf = 20;
    u64 crf_bits = encodeVideo(source, crf_only).video.payloadBits();

    double seconds = source.frames.size() / source.fps;
    int target_kbps = static_cast<int>(crf_bits / seconds / 1000.0 / 2);
    EncoderConfig abr = crf_only;
    abr.targetKbps = std::max(target_kbps, 1);
    u64 abr_bits = encodeVideo(source, abr).video.payloadBits();

    // The reactive controller must push the size toward the target
    // (within a generous factor: the clip is very short).
    EXPECT_LT(abr_bits, crf_bits);
    double achieved_kbps = abr_bits / seconds / 1000.0;
    EXPECT_LT(achieved_kbps, abr.targetKbps * 2.0);
}

TEST(CodecE2e, AbrStreamStillDecodesToParity)
{
    Video source = generateSynthetic(tinySpec(28));
    EncoderConfig abr;
    abr.crf = 22;
    abr.targetKbps = 40;
    EncodeResult enc = encodeVideo(source, abr);
    Video decoded = decodeVideo(enc.video);
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_TRUE(framesIdentical(decoded.frames[i],
                                    enc.reconFrames[i]));
}

TEST(CodecE2e, CabacCompressesBetterThanCavlc)
{
    Video source = generateSynthetic(tinySpec(14));
    EncoderConfig cabac, cavlc;
    cabac.entropy = EntropyKind::CABAC;
    cavlc.entropy = EntropyKind::CAVLC;
    u64 cabac_bits =
        encodeVideo(source, cabac).video.payloadBits();
    u64 cavlc_bits =
        encodeVideo(source, cavlc).video.payloadBits();
    EXPECT_LT(cabac_bits, cavlc_bits);
}

TEST(CodecE2e, CompressionBeatsRawStorage)
{
    Video source = generateSynthetic(tinySpec(15));
    EncoderConfig config;
    EncodeResult result = encodeVideo(source, config);
    u64 raw_bits = source.pixelCount() * 12; // 4:2:0 = 12 bpp
    EXPECT_LT(result.video.payloadBits(), raw_bits / 4);
}

TEST(CodecE2e, InterFramesCheaperThanIntra)
{
    Video source = generateSynthetic(tinySpec(16));
    EncoderConfig config;
    config.gop.gopSize = 10;
    config.gop.bFrames = 0;
    EncodeResult result = encodeVideo(source, config);
    u64 i_bits = 0, p_bits = 0, i_count = 0, p_count = 0;
    for (std::size_t f = 0; f < result.side.frames.size(); ++f) {
        if (result.side.frames[f].type == FrameType::I) {
            i_bits += result.video.payloads[f].size();
            ++i_count;
        } else {
            p_bits += result.video.payloads[f].size();
            ++p_count;
        }
    }
    ASSERT_GT(i_count, 0u);
    ASSERT_GT(p_count, 0u);
    EXPECT_LT(static_cast<double>(p_bits) / p_count,
              static_cast<double>(i_bits) / i_count);
}

TEST(CodecE2e, SideInfoCoversEveryMbWithConsistentRanges)
{
    Video source = generateSynthetic(tinySpec(17));
    EncoderConfig config;
    config.gop.bFrames = 2;
    EncodeResult result = encodeVideo(source, config);

    for (std::size_t f = 0; f < result.side.frames.size(); ++f) {
        const FrameRecord &frame = result.side.frames[f];
        u64 payload_bits = result.video.payloads[f].size() * 8;
        ASSERT_EQ(frame.mbs.size(),
                  static_cast<std::size_t>(
                      result.video.mbPerFrame()));
        u64 prev_end = 0;
        for (const MbRecord &mb : frame.mbs) {
            EXPECT_GE(mb.bitOffset, prev_end);
            EXPECT_LE(mb.bitOffset + mb.bitLength, payload_bits);
            prev_end = mb.bitOffset + mb.bitLength;
            for (const auto &dep : mb.deps) {
                EXPECT_GE(dep.refFrame, 0);
                EXPECT_LE(dep.refFrame, static_cast<i32>(f));
                EXPECT_LT(dep.refMb, result.video.mbPerFrame());
                EXPECT_GT(dep.weight, 0.0f);
                EXPECT_LE(dep.weight, 1.0f);
            }
        }
    }
}

TEST(CodecE2e, InterMbIncomingWeightsSumToOne)
{
    Video source = generateSynthetic(tinySpec(18));
    EncoderConfig config;
    EncodeResult result = encodeVideo(source, config);
    for (const auto &frame : result.side.frames) {
        for (const auto &mb : frame.mbs) {
            if (mb.intra || mb.deps.empty())
                continue;
            double sum = 0;
            for (const auto &dep : mb.deps)
                sum += dep.weight;
            EXPECT_NEAR(sum, 1.0, 1e-4);
        }
    }
}

TEST(CodecE2e, SlicedEncodingDecodesIdentically)
{
    Video source = generateSynthetic(tinySpec(19));
    EncoderConfig config;
    config.slicesPerFrame = 3;
    EncodeResult result = encodeVideo(source, config);
    Video decoded = decodeVideo(result.video);
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_TRUE(framesIdentical(decoded.frames[i],
                                    result.reconFrames[i]));
}

TEST(CodecE2e, SerializedStreamDecodesIdentically)
{
    Video source = generateSynthetic(tinySpec(20));
    EncodeResult result = encodeVideo(source, EncoderConfig{});
    Bytes blob = serialize(result.video);
    auto parsed = deserialize(blob);
    ASSERT_TRUE(parsed.has_value());
    Video decoded = decodeVideo(*parsed);
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_TRUE(framesIdentical(decoded.frames[i],
                                    result.reconFrames[i]));
}

TEST(CodecE2e, HeaderBitsAreTinyFractionOfStream)
{
    Video source = generateSynthetic(tinySpec(21));
    EncodeResult result = encodeVideo(source, EncoderConfig{});
    double fraction =
        static_cast<double>(result.video.headerBits()) /
        result.video.payloadBits();
    // The paper reports < 0.1% for 720p; a 64x64 20-frame test clip
    // carries proportionally far more header. The paper-scale check
    // runs on the full suite in bench/fig11_density.
    EXPECT_LT(fraction, 0.2);
}

class CorruptionParam : public ::testing::TestWithParam<EntropyKind>
{
};

TEST_P(CorruptionParam, DecoderNeverCrashesOnRandomCorruption)
{
    Video source = generateSynthetic(tinySpec(22));
    EncoderConfig config;
    config.entropy = GetParam();
    EncodeResult result = encodeVideo(source, config);

    Rng rng(23);
    for (int trial = 0; trial < 30; ++trial) {
        EncodedVideo corrupted = result.video;
        for (auto &payload : corrupted.payloads)
            injectErrors(payload, 1e-3, rng);
        Video decoded = decodeVideo(corrupted);
        ASSERT_EQ(decoded.frames.size(), source.frames.size());
    }
}

TEST_P(CorruptionParam, SingleFlipCausesBoundedDamage)
{
    Video source = generateSynthetic(tinySpec(24));
    EncoderConfig config;
    config.entropy = GetParam();
    EncodeResult result = encodeVideo(source, config);
    Video reference = decodeVideo(result.video);

    Rng rng(25);
    int damaged_runs = 0;
    for (int trial = 0; trial < 10; ++trial) {
        EncodedVideo corrupted = result.video;
        // Flip one bit in a random frame payload.
        std::size_t f = rng.nextBelow(corrupted.payloads.size());
        if (corrupted.payloads[f].empty())
            continue;
        flipBit(corrupted.payloads[f],
                rng.nextBelow(corrupted.payloads[f].size() * 8));
        Video decoded = decodeVideo(corrupted);
        double psnr = psnrVideo(reference, decoded);
        if (psnr < kPsnrCap - 1e-9)
            ++damaged_runs;
        EXPECT_GT(psnr, 5.0); // damaged, not random noise everywhere
    }
    // Most single flips must visibly damage a CABAC/CAVLC stream.
    EXPECT_GE(damaged_runs, 5);
}

INSTANTIATE_TEST_SUITE_P(Backends, CorruptionParam,
                         ::testing::Values(EntropyKind::CABAC,
                                           EntropyKind::CAVLC),
                         [](const auto &info) {
                             return entropyKindName(info.param);
                         });

class SuiteContentParam : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteContentParam, ParityAcrossContentClasses)
{
    // The synthetic suite spans pans, zooms, sprites, noise and
    // scene cuts; parity must hold on all content classes, not just
    // the tiny test clip.
    auto suite = standardSuite(0.15);
    SyntheticSpec spec = suite[static_cast<std::size_t>(GetParam())];
    spec.frames = 10;
    Video source = generateSynthetic(spec);
    EncodeResult enc = encodeVideo(source, EncoderConfig{});
    Video decoded = decodeVideo(enc.video);
    for (std::size_t i = 0; i < decoded.frames.size(); ++i) {
        ASSERT_EQ(decoded.frames[i].y().data(),
                  enc.reconFrames[i].y().data())
            << spec.name << " frame " << i;
    }
    // And quality must be sane on every content class.
    EXPECT_GT(psnrVideo(source, decoded), 24.0) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, SuiteContentParam,
                         ::testing::Values(0, 2, 3, 8, 11, 13),
                         [](const auto &info) {
                             return standardSuite(
                                        0.15)[static_cast<std::size_t>(
                                        info.param)]
                                 .name;
                         });

TEST(CodecE2e, AllIntraGopWorks)
{
    // gopSize = 1: every frame is an I frame (an "intra-only"
    // archival profile); no compensation edges should exist.
    Video source = generateSynthetic(tinySpec(29));
    EncoderConfig config;
    config.gop.gopSize = 1;
    EncodeResult enc = encodeVideo(source, config);
    for (const auto &frame : enc.side.frames)
        EXPECT_EQ(frame.type, FrameType::I);
    Video decoded = decodeVideo(enc.video);
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_EQ(decoded.frames[i].y().data(),
                  enc.reconFrames[i].y().data());
    // Cross-frame deps must be absent.
    for (const auto &frame : enc.side.frames)
        for (const auto &mb : frame.mbs)
            for (const auto &dep : mb.deps)
                EXPECT_EQ(dep.refFrame, frame.encIdx);
}

TEST(CodecE2e, BFramesExceedingTailHandled)
{
    // More B frames than remaining content.
    Video source = generateSynthetic(tinySpec(30));
    source.frames.resize(5, Frame(source.width(), source.height()));
    EncoderConfig config;
    config.gop.bFrames = 7;
    EncodeResult enc = encodeVideo(source, config);
    Video decoded = decodeVideo(enc.video);
    ASSERT_EQ(decoded.frames.size(), 5u);
    for (std::size_t i = 0; i < decoded.frames.size(); ++i)
        EXPECT_EQ(decoded.frames[i].y().data(),
                  enc.reconFrames[i].y().data());
}

TEST(CodecE2e, BFramesAreNotReferencedByDefault)
{
    Video source = generateSynthetic(tinySpec(26));
    EncoderConfig config;
    config.gop.bFrames = 2;
    EncodeResult result = encodeVideo(source, config);
    // No cross-frame dependency may point at a B frame (intra deps
    // inside a B frame are fine).
    for (const auto &frame : result.side.frames) {
        for (const auto &mb : frame.mbs) {
            for (const auto &dep : mb.deps) {
                if (dep.refFrame == frame.encIdx)
                    continue;
                EXPECT_NE(result.side
                              .frames[static_cast<std::size_t>(
                                  dep.refFrame)]
                              .type,
                          FrameType::B);
            }
        }
    }
}

} // namespace
} // namespace videoapp
