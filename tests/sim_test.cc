/**
 * @file
 * Simulation harness tests: bit-range sets, equal-storage bins,
 * class bits, and the Monte Carlo loss measurement — including the
 * headline validation that higher-importance bins cause more damage
 * (the property behind Figure 9).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/bench_config.h"
#include "sim/binning.h"
#include "common/bitstream.h"
#include "sim/calibrate.h"
#include "quality/psnr.h"
#include "sim/monte_carlo.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

TEST(BitRangeSet, LocateWalksRanges)
{
    BitRangeSet set;
    set.add(0, 10, 20);  // 10 bits
    set.add(2, 100, 105); // 5 bits
    set.add(5, 0, 1);     // 1 bit
    EXPECT_EQ(set.totalBits(), 16u);

    auto [f0, b0] = set.locate(0);
    EXPECT_EQ(f0, 0u);
    EXPECT_EQ(b0, 10u);
    auto [f1, b1] = set.locate(9);
    EXPECT_EQ(f1, 0u);
    EXPECT_EQ(b1, 19u);
    auto [f2, b2] = set.locate(10);
    EXPECT_EQ(f2, 2u);
    EXPECT_EQ(b2, 100u);
    auto [f3, b3] = set.locate(15);
    EXPECT_EQ(f3, 5u);
    EXPECT_EQ(b3, 0u);
}

TEST(BitRangeSet, EmptyRangeIgnored)
{
    BitRangeSet set;
    set.add(0, 5, 5);
    EXPECT_TRUE(set.empty());
}

class SimFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        source_ = generateSynthetic(tinySpec(51));
        EncoderConfig config;
        config.gop.gopSize = 10;
        config.gop.bFrames = 2;
        enc_ = encodeVideo(source_, config);
        importance_ = computeImportance(enc_.side, enc_.video);
    }

    Video source_;
    EncodeResult enc_;
    ImportanceMap importance_;
};

TEST_F(SimFixture, BinsEqualStorageAndOrderedImportance)
{
    auto bins = buildImportanceBins(enc_, importance_, 8);
    ASSERT_EQ(bins.size(), 8u);

    u64 total = 0;
    for (const auto &bin : bins)
        total += bin.bits.totalBits();
    EXPECT_EQ(total, enc_.video.payloadBits());

    // Roughly equal storage (one MB granularity slack).
    u64 per_bin = total / 8;
    for (const auto &bin : bins) {
        EXPECT_GT(bin.bits.totalBits(), per_bin / 3);
        EXPECT_LT(bin.bits.totalBits(), per_bin * 3);
    }
    // Strictly ordered max importance.
    for (std::size_t b = 1; b < bins.size(); ++b)
        EXPECT_GE(bins[b].maxImportance, bins[b - 1].maxImportance);
}

TEST_F(SimFixture, ClassBitsAreCumulative)
{
    auto classes = occurringClasses(enc_, importance_);
    ASSERT_GE(classes.size(), 3u);
    u64 prev = 0;
    for (int cls : classes) {
        u64 bits = classBits(enc_, importance_, cls).totalBits();
        EXPECT_GE(bits, prev);
        prev = bits;
    }
    // The top class covers everything.
    EXPECT_EQ(prev, enc_.video.payloadBits());
    EXPECT_NEAR(cumulativeStorageFraction(enc_, importance_,
                                          classes.back()),
                1.0, 1e-12);
}

TEST_F(SimFixture, ZeroRateMeansZeroLoss)
{
    auto bins = buildImportanceBins(enc_, importance_, 4);
    Rng rng(1);
    LossStats stats = measureQualityLoss(source_, enc_,
                                         bins[0].bits, 0.0, 3, rng);
    EXPECT_DOUBLE_EQ(stats.maxLossDb, 0.0);
}

TEST_F(SimFixture, HighImportanceBinsHurtMore)
{
    // The Figure 9 validation at test scale: corrupting the most
    // important bin at a fixed rate must cause more quality loss
    // than corrupting the least important bin.
    auto bins = buildImportanceBins(enc_, importance_, 8);
    Rng rng_low(2), rng_high(2);
    const double rate = 3e-4;
    const int runs = 6;
    LossStats low = measureQualityLoss(
        source_, enc_, bins.front().bits, rate, runs, rng_low);
    LossStats high = measureQualityLoss(
        source_, enc_, bins.back().bits, rate, runs, rng_high);
    EXPECT_GT(high.meanLossDb, low.meanLossDb);
}

TEST_F(SimFixture, LossGrowsWithErrorRate)
{
    BitRangeSet all = classBits(enc_, importance_, 64);
    Rng rng(3);
    LossStats light =
        measureQualityLoss(source_, enc_, all, 1e-5, 4, rng);
    LossStats heavy =
        measureQualityLoss(source_, enc_, all, 1e-3, 4, rng);
    EXPECT_GE(heavy.meanLossDb, light.meanLossDb);
    EXPECT_GT(heavy.meanLossDb, 0.0);
}

TEST_F(SimFixture, LowRateScalingShrinksLoss)
{
    // In the scaled regime the reported loss is multiplied by the
    // probability of any flip, so it must drop with the rate.
    BitRangeSet all = classBits(enc_, importance_, 64);
    Rng rng_a(4), rng_b(4);
    LossStats r9 =
        measureQualityLoss(source_, enc_, all, 1e-9, 3, rng_a);
    LossStats r12 =
        measureQualityLoss(source_, enc_, all, 1e-12, 3, rng_b);
    EXPECT_GT(r9.meanLossDb, r12.meanLossDb);
    EXPECT_LT(r12.meanLossDb, 0.01);
}

TEST_F(SimFixture, CorruptPayloadsRespectsTargets)
{
    auto bins = buildImportanceBins(enc_, importance_, 4);
    std::vector<Bytes> payloads = enc_.video.payloads;
    Rng rng(5);
    auto flips = corruptPayloads(payloads, bins[1].bits, 0.01, rng);
    EXPECT_FALSE(flips.empty());
    // Every flip must fall inside one of the bin's ranges.
    for (auto [frame, bit] : flips) {
        bool inside = false;
        for (const auto &r : bins[1].bits.ranges())
            if (r.frame == frame && bit >= r.begin && bit < r.end)
                inside = true;
        EXPECT_TRUE(inside) << "frame " << frame << " bit " << bit;
    }
}

TEST_F(SimFixture, CleanPsnrMatchesDirectComputation)
{
    double direct = cleanPsnr(source_, enc_);
    EXPECT_GT(direct, 25.0);
    EXPECT_LT(direct, kPsnrCap);
}

TEST(Figure3Property, EarlyScanFlipsHurtMoreThanLateOnes)
{
    // The Figure 2(c)/Figure 3 wedge as an invariant: a flip in the
    // first MB of a P frame damages (at least as much as) a flip in
    // the last MB, averaged over frames and trials.
    SyntheticSpec spec = tinySpec(57);
    Video source = generateSynthetic(spec);
    EncoderConfig config;
    config.gop.gopSize = 1000; // one I frame then P frames
    config.gop.bFrames = 0;
    EncodeResult enc = encodeVideo(source, config);
    Video clean = decodeWithPayloads(enc, enc.video.payloads);

    Rng rng(58);
    double first_damage = 0, last_damage = 0;
    int samples = 0;
    for (std::size_t f = 1; f < enc.side.frames.size() && samples < 6;
         ++f) {
        const auto &mbs = enc.side.frames[f].mbs;
        const MbRecord &first = mbs.front();
        const MbRecord &last = mbs.back();
        if (first.bitLength == 0 || last.bitLength == 0)
            continue;
        ++samples;

        auto damage = [&](const MbRecord &mb) {
            std::vector<Bytes> payloads = enc.video.payloads;
            flipBit(payloads[f],
                    mb.bitOffset + rng.nextBelow(mb.bitLength));
            Video decoded =
                decodeWithPayloads(enc, std::move(payloads));
            return kPsnrCap - psnrVideo(clean, decoded);
        };
        first_damage += damage(first);
        last_damage += damage(last);
    }
    ASSERT_GT(samples, 2);
    EXPECT_GE(first_damage, last_damage);
    EXPECT_GT(first_damage, 0.0);
}

TEST(BenchConfig, EnvOverridesParsed)
{
    setenv("VIDEOAPP_BENCH_SCALE", "0.7", 1);
    setenv("VIDEOAPP_BENCH_RUNS", "9", 1);
    setenv("VIDEOAPP_BENCH_VIDEOS", "2", 1);
    setenv("VIDEOAPP_BENCH_CSV", "/tmp/somewhere", 1);
    BenchConfig config = BenchConfig::fromEnv();
    EXPECT_NEAR(config.scale, 0.7, 1e-12);
    EXPECT_EQ(config.runs, 9);
    EXPECT_EQ(config.videos, 2);
    EXPECT_EQ(config.csvDir, "/tmp/somewhere");
    EXPECT_EQ(config.suite().size(), 2u);
    unsetenv("VIDEOAPP_BENCH_SCALE");
    unsetenv("VIDEOAPP_BENCH_RUNS");
    unsetenv("VIDEOAPP_BENCH_VIDEOS");
    unsetenv("VIDEOAPP_BENCH_CSV");
}

TEST(BenchConfig, CsvWriterNoopWhenDisabled)
{
    BenchConfig config; // csvDir empty
    CsvWriter csv(config, "nope", "a,b");
    EXPECT_FALSE(csv.enabled());
    csv.row("1,2"); // must be a harmless no-op
}

TEST(BenchConfig, CsvWriterWritesRows)
{
    BenchConfig config;
    config.csvDir = ::testing::TempDir();
    {
        CsvWriter csv(config, "va_csv_test", "x,y");
        ASSERT_TRUE(csv.enabled());
        csv.row("1,2");
        csv.row("3,4");
    }
    std::ifstream in(config.csvDir + "/va_csv_test.csv");
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::remove((config.csvDir + "/va_csv_test.csv").c_str());
}

TEST(Calibrate, DeterministicForSeed)
{
    SyntheticSpec spec = tinySpec(55);
    auto a = measureClassCurves({spec}, EncoderConfig{}, 2,
                                {1e-5, 1e-3}, 77);
    auto b = measureClassCurves({spec}, EncoderConfig{}, 2,
                                {1e-5, 1e-3}, 77);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cls, b[i].cls);
        for (std::size_t p = 0; p < a[i].points.size(); ++p)
            EXPECT_DOUBLE_EQ(a[i].points[p].lossDb,
                             b[i].points[p].lossDb);
    }
}

TEST(HeaderFraction, ShrinksTowardPaperScaleClaim)
{
    // The paper reports precise headers < 0.1% of storage at
    // 720p/500 frames. Header cost per frame is ~constant while
    // payload grows with resolution, so the fraction must fall as
    // the clip grows; check the trend at two scales.
    auto fraction = [](int w, int h, int frames) {
        SyntheticSpec spec = tinySpec(56);
        spec.width = w;
        spec.height = h;
        spec.frames = frames;
        Video source = generateSynthetic(spec);
        EncodeResult enc = encodeVideo(source, EncoderConfig{});
        return static_cast<double>(enc.video.headerBits()) /
               (enc.video.payloadBits() + enc.video.headerBits());
    };
    double small = fraction(64, 64, 12);
    double large = fraction(192, 128, 24);
    EXPECT_LT(large, small);
    EXPECT_LT(large, 0.12);
}

} // namespace
} // namespace videoapp
