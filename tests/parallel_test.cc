/**
 * @file
 * Thread pool and determinism tests: parallelFor semantics (coverage,
 * nesting, exceptions, pool sizing), RNG stream splitting, and the
 * contract that parallel execution is bit-identical to sequential for
 * the Monte Carlo and storage pipelines.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "sim/binning.h"
#include "sim/monte_carlo.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

// --- parallelFor semantics ---------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    setThreadCount(4);
    const std::size_t n = 1000;
    std::unique_ptr<std::atomic<int>[]> hits(
        new std::atomic<int>[n]());
    parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    setThreadCount(0);
}

TEST(ParallelFor, ZeroAndSingleIteration)
{
    std::atomic<int> calls{0};
    parallelFor(0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, NestedCallsRunInline)
{
    setThreadCount(4);
    std::atomic<int> total{0};
    parallelFor(8, [&](std::size_t) {
        parallelFor(16, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 8 * 16);
    setThreadCount(0);
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    setThreadCount(4);
    EXPECT_THROW(parallelFor(64,
                             [&](std::size_t i) {
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<int> calls{0};
    parallelFor(32, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 32);
    setThreadCount(0);
}

TEST(ParallelFor, SetThreadCountControlsPool)
{
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3);
    setThreadCount(1);
    EXPECT_EQ(threadCount(), 1);
    std::atomic<int> calls{0};
    parallelFor(10, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 10);
    setThreadCount(0); // back to environment/hardware default
    EXPECT_GE(threadCount(), 1);
}

// --- RNG stream splitting ----------------------------------------------

TEST(RngSplit, DeriveSeedIsDeterministic)
{
    EXPECT_EQ(Rng::deriveSeed(42, 0), Rng::deriveSeed(42, 0));
    EXPECT_EQ(Rng::deriveSeed(0, 7), Rng::deriveSeed(0, 7));
}

TEST(RngSplit, StreamsAndMastersAreDistinct)
{
    std::set<u64> seeds;
    for (u64 master = 0; master < 8; ++master)
        for (u64 stream = 0; stream < 64; ++stream)
            seeds.insert(Rng::deriveSeed(master, stream));
    EXPECT_EQ(seeds.size(), 8u * 64u);
}

TEST(RngSplit, ForStreamMatchesDerivedSeed)
{
    Rng direct(Rng::deriveSeed(99, 3));
    Rng split = Rng::forStream(99, 3);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(direct.next(), split.next());
}

// --- parallel == sequential for the pipelines --------------------------

class DeterminismFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        source_ = generateSynthetic(tinySpec(51));
        EncoderConfig config;
        config.gop.gopSize = 10;
        config.gop.bFrames = 2;
        enc_ = encodeVideo(source_, config);
        importance_ = computeImportance(enc_.side, enc_.video);
    }

    void
    TearDown() override
    {
        setThreadCount(0);
    }

    Video source_;
    EncodeResult enc_;
    ImportanceMap importance_;
};

TEST_F(DeterminismFixture, MeasureQualityLossIsThreadCountInvariant)
{
    BitRangeSet all = classBits(enc_, importance_, 64);
    ASSERT_FALSE(all.empty());

    setThreadCount(1);
    Rng rng_seq(5);
    LossStats sequential = measureQualityLoss(source_, enc_, all,
                                              1e-3, 6, rng_seq);

    setThreadCount(4);
    Rng rng_par(5);
    LossStats parallel = measureQualityLoss(source_, enc_, all,
                                            1e-3, 6, rng_par);

    EXPECT_EQ(sequential.runs, parallel.runs);
    EXPECT_DOUBLE_EQ(sequential.maxLossDb, parallel.maxLossDb);
    EXPECT_DOUBLE_EQ(sequential.meanLossDb, parallel.meanLossDb);
    // The caller's generator must advance identically too.
    EXPECT_EQ(rng_seq.next(), rng_par.next());
}

TEST_F(DeterminismFixture, StoreAndRetrieveIsThreadCountInvariant)
{
    PreparedVideo prepared = prepareVideo(
        source_, EncoderConfig{}, EccAssignment::paperTable1());
    ModeledChannel channel(kPcmRawBer);

    setThreadCount(1);
    Rng rng_seq(777);
    StorageOutcome sequential =
        storeAndRetrieve(prepared, channel, rng_seq);

    setThreadCount(4);
    Rng rng_par(777);
    StorageOutcome parallel =
        storeAndRetrieve(prepared, channel, rng_par);

    EXPECT_DOUBLE_EQ(sequential.psnrVsReference,
                     parallel.psnrVsReference);
    EXPECT_EQ(sequential.payloadBits, parallel.payloadBits);
    EXPECT_EQ(sequential.parityBits, parallel.parityBits);
    EXPECT_DOUBLE_EQ(sequential.cellsPerPixel,
                     parallel.cellsPerPixel);
    ASSERT_EQ(sequential.decoded.frames.size(),
              parallel.decoded.frames.size());
    for (std::size_t f = 0; f < sequential.decoded.frames.size();
         ++f) {
        const Plane &a = sequential.decoded.frames[f].y();
        const Plane &b = parallel.decoded.frames[f].y();
        for (int y = 0; y < a.height(); ++y)
            for (int x = 0; x < a.width(); ++x)
                ASSERT_EQ(a.at(x, y), b.at(x, y))
                    << "frame " << f << " (" << x << "," << y << ")";
    }
    EXPECT_EQ(rng_seq.next(), rng_par.next());
}

TEST_F(DeterminismFixture, ImportanceIsThreadCountInvariant)
{
    setThreadCount(1);
    ImportanceMap sequential =
        computeImportance(enc_.side, enc_.video);
    setThreadCount(4);
    ImportanceMap parallel =
        computeImportance(enc_.side, enc_.video);

    ASSERT_EQ(sequential.values.size(), parallel.values.size());
    for (std::size_t f = 0; f < sequential.values.size(); ++f) {
        ASSERT_EQ(sequential.values[f].size(),
                  parallel.values[f].size());
        for (std::size_t m = 0; m < sequential.values[f].size(); ++m)
            ASSERT_EQ(sequential.values[f][m], parallel.values[f][m])
                << "frame " << f << " mb " << m;
    }
}

} // namespace
} // namespace videoapp
