/**
 * @file
 * Direct macroblock-syntax tests: encode/decode round trips for
 * crafted MbCodings across frame types, partitions, directions and
 * both entropy backends; metadata prediction chains; and bounded
 * behaviour on corrupted bitstreams.
 */

#include <gtest/gtest.h>

#include "codec/mb_grid.h"
#include "codec/mb_syntax.h"
#include "common/rng.h"
#include "storage/error_injector.h"

namespace videoapp {
namespace {

/** Build rects for a coding the same way the codec does. */
std::vector<PartitionGeom>
rectsFor(const MbCoding &mb)
{
    if (mb.partition != Partition::P8x8)
        return partitionGeom(mb.partition);
    std::vector<PartitionGeom> rects;
    for (int i = 0; i < 4; ++i) {
        auto sub = subPartitionGeom(mb.subs[i], (i % 2) * 8,
                                    (i / 2) * 8);
        rects.insert(rects.end(), sub.begin(), sub.end());
    }
    return rects;
}

/** Fill coherent motions for a crafted coding. */
void
fillMotions(MbCoding &mb, Rng &rng)
{
    mb.motions.clear();
    for (const auto &rect : rectsFor(mb)) {
        MotionInfo motion;
        motion.rect = rect;
        motion.direction = mb.direction;
        motion.mv = {static_cast<i16>(
                         static_cast<int>(rng.nextBelow(33)) - 16),
                     static_cast<i16>(
                         static_cast<int>(rng.nextBelow(33)) - 16)};
        motion.mvL1 = {static_cast<i16>(
                           static_cast<int>(rng.nextBelow(33)) - 16),
                       static_cast<i16>(
                           static_cast<int>(rng.nextBelow(33)) - 16)};
        mb.motions.push_back(motion);
    }
}

/** Random sparse coefficients (encoder-legal). */
void
fillCoeffs(MbCoding &mb, Rng &rng, double density)
{
    for (int blk = 0; blk < 24; ++blk) {
        bool any = false;
        for (int i = 0; i < 16; ++i) {
            if (rng.nextBool(density)) {
                int mag = 1 + static_cast<int>(rng.nextBelow(40));
                mb.coeffs[blk][i] = static_cast<i16>(
                    rng.nextBool(0.5) ? mag : -mag);
                any = true;
            } else {
                mb.coeffs[blk][i] = 0;
            }
        }
        mb.coded[blk] = any;
        if (!any)
            mb.coeffs[blk] = {};
    }
}

bool
sameCoding(const MbCoding &a, const MbCoding &b, FrameType type)
{
    if (a.skip != b.skip)
        return false;
    if (a.skip)
        return true;
    if (a.intra != b.intra || a.qp != b.qp)
        return false;
    if (a.intra)
        return a.intraMode == b.intraMode &&
               a.coded == b.coded && a.coeffs == b.coeffs;
    if (a.partition != b.partition)
        return false;
    if (type == FrameType::B && a.direction != b.direction)
        return false;
    if (a.motions.size() != b.motions.size())
        return false;
    for (std::size_t i = 0; i < a.motions.size(); ++i) {
        if (a.direction != BiDirection::L1 &&
            !(a.motions[i].mv == b.motions[i].mv))
            return false;
        if (type == FrameType::B &&
            a.direction != BiDirection::L0 &&
            !(a.motions[i].mvL1 == b.motions[i].mvL1))
            return false;
    }
    return a.coded == b.coded && a.coeffs == b.coeffs;
}

class MbSyntaxParam : public ::testing::TestWithParam<EntropyKind>
{
  protected:
    /** Round trip a sequence of MBs through one slice. */
    void
    roundTrip(FrameType type, const std::vector<MbCoding> &mbs,
              int mbw = 8)
    {
        auto enc = makeSyntaxEncoder(GetParam());
        MbGrid enc_grid(mbw, 8);
        int enc_qp = 26;
        for (std::size_t i = 0; i < mbs.size(); ++i) {
            MbPosition pos{static_cast<int>(i) % mbw,
                           static_cast<int>(i) / mbw, 0, type};
            encodeMb(*enc, mbs[i], pos, enc_grid, enc_qp);
        }
        Bytes coded = enc->finishSlice();

        auto dec = makeSyntaxDecoder(GetParam(), coded, 0,
                                     coded.size());
        MbGrid dec_grid(mbw, 8);
        int dec_qp = 26;
        for (std::size_t i = 0; i < mbs.size(); ++i) {
            MbPosition pos{static_cast<int>(i) % mbw,
                           static_cast<int>(i) / mbw, 0, type};
            MbCoding back = decodeMb(*dec, pos, dec_grid, dec_qp);
            EXPECT_TRUE(sameCoding(mbs[i], back, type))
                << "mb " << i << " backend "
                << entropyKindName(GetParam());
        }
        EXPECT_FALSE(dec->sawCorruption());
    }
};

TEST_P(MbSyntaxParam, IntraMbsRoundTrip)
{
    Rng rng(1);
    std::vector<MbCoding> mbs;
    for (int m = 0; m < kIntraModeCount * 2; ++m) {
        MbCoding mb;
        mb.intra = true;
        mb.intraMode = static_cast<IntraMode>(m % kIntraModeCount);
        mb.qp = 20 + m;
        fillCoeffs(mb, rng, 0.2);
        mbs.push_back(mb);
    }
    roundTrip(FrameType::I, mbs);
}

TEST_P(MbSyntaxParam, InterPartitionsRoundTrip)
{
    Rng rng(2);
    std::vector<MbCoding> mbs;
    for (int p = 0; p < kPartitionCount; ++p) {
        MbCoding mb;
        mb.partition = static_cast<Partition>(p);
        if (mb.partition == Partition::P8x8)
            for (int s = 0; s < 4; ++s)
                mb.subs[s] = static_cast<SubPartition>(
                    rng.nextBelow(kSubPartitionCount));
        mb.qp = 26;
        fillMotions(mb, rng);
        fillCoeffs(mb, rng, 0.1);
        mbs.push_back(mb);
    }
    roundTrip(FrameType::P, mbs);
}

TEST_P(MbSyntaxParam, SkipMbsRoundTrip)
{
    std::vector<MbCoding> mbs;
    for (int i = 0; i < 6; ++i) {
        MbCoding mb;
        mb.skip = true;
        mb.qp = 26;
        MotionInfo motion;
        motion.rect = {0, 0, 16, 16};
        // Skip uses the predicted MV: with an all-skip history the
        // predictor is zero everywhere, keeping the chain coherent.
        motion.mv = {0, 0};
        mb.motions.push_back(motion);
        mbs.push_back(mb);
    }
    roundTrip(FrameType::P, mbs);
}

TEST_P(MbSyntaxParam, BDirectionsRoundTrip)
{
    Rng rng(3);
    std::vector<MbCoding> mbs;
    for (BiDirection dir : {BiDirection::L0, BiDirection::L1,
                            BiDirection::Bi}) {
        MbCoding mb;
        mb.direction = dir;
        mb.partition = Partition::P16x8;
        mb.qp = 28;
        fillMotions(mb, rng);
        fillCoeffs(mb, rng, 0.15);
        mbs.push_back(mb);
    }
    roundTrip(FrameType::B, mbs);
}

TEST_P(MbSyntaxParam, QpChainFollowsDeltas)
{
    Rng rng(4);
    std::vector<MbCoding> mbs;
    int qps[] = {26, 30, 30, 22, 51, 0, 26};
    for (int qp : qps) {
        MbCoding mb;
        mb.intra = true;
        mb.intraMode = IntraMode::DC;
        mb.qp = qp;
        fillCoeffs(mb, rng, 0.1);
        mbs.push_back(mb);
    }
    roundTrip(FrameType::I, mbs);
}

TEST_P(MbSyntaxParam, ExtremeCoefficientsRoundTrip)
{
    MbCoding mb;
    mb.intra = true;
    mb.qp = 26;
    mb.coded[0] = true;
    mb.coeffs[0][0] = 2048;   // encoder cap
    mb.coeffs[0][15] = -2048; // last zigzag position
    mb.coded[23] = true;
    mb.coeffs[23][7] = 1;
    roundTrip(FrameType::I, {mb});
}

TEST_P(MbSyntaxParam, DecodeCorruptSliceIsBoundedAndTotal)
{
    // Encode a real slice, corrupt it heavily, decode the same MB
    // count; everything must stay in range.
    Rng rng(5);
    std::vector<MbCoding> mbs;
    for (int i = 0; i < 16; ++i) {
        MbCoding mb;
        mb.intra = true;
        mb.intraMode = static_cast<IntraMode>(
            rng.nextBelow(kIntraModeCount));
        mb.qp = 26;
        fillCoeffs(mb, rng, 0.3);
        mbs.push_back(mb);
    }
    auto enc = makeSyntaxEncoder(GetParam());
    MbGrid enc_grid(4, 4);
    int enc_qp = 26;
    for (std::size_t i = 0; i < mbs.size(); ++i) {
        MbPosition pos{static_cast<int>(i) % 4,
                       static_cast<int>(i) / 4, 0, FrameType::I};
        encodeMb(*enc, mbs[i], pos, enc_grid, enc_qp);
    }
    Bytes coded = enc->finishSlice();

    for (int trial = 0; trial < 20; ++trial) {
        Bytes corrupted = coded;
        injectErrors(corrupted, 0.05, rng);
        auto dec = makeSyntaxDecoder(GetParam(), corrupted, 0,
                                     corrupted.size());
        MbGrid dec_grid(4, 4);
        int dec_qp = 26;
        for (std::size_t i = 0; i < mbs.size(); ++i) {
            MbPosition pos{static_cast<int>(i) % 4,
                           static_cast<int>(i) / 4, 0, FrameType::I};
            MbCoding back = decodeMb(*dec, pos, dec_grid, dec_qp);
            EXPECT_GE(back.qp, kMinQp);
            EXPECT_LE(back.qp, kMaxQp);
            for (int blk = 0; blk < 24; ++blk)
                for (i16 c : back.coeffs[blk])
                    EXPECT_LE(std::abs(static_cast<int>(c)), 2048);
            for (const auto &motion : back.motions) {
                EXPECT_LE(std::abs(static_cast<int>(motion.mv.x)),
                          1024);
                EXPECT_LE(std::abs(static_cast<int>(motion.mv.y)),
                          1024);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, MbSyntaxParam,
                         ::testing::Values(EntropyKind::CABAC,
                                           EntropyKind::CAVLC),
                         [](const auto &info) {
                             return entropyKindName(info.param);
                         });

TEST(MbSyntax, PredictorChainWithinMb)
{
    // For rect index > 0 the predictor is the previous rect's MV.
    MbGrid grid(4, 4);
    MbPosition pos{1, 1, 0, FrameType::P};
    MbCoding mb;
    mb.partition = Partition::P16x8;
    MotionInfo first;
    first.rect = {0, 0, 16, 8};
    first.mv = {14, -6};
    mb.motions.push_back(first);
    MotionVector pred = mvPredictorForRect(grid, pos, 1, mb, false);
    EXPECT_EQ(pred.x, 14);
    EXPECT_EQ(pred.y, -6);
}

} // namespace
} // namespace videoapp
