/**
 * @file
 * VAPP serving layer tests: the bounded priority queue's ordering,
 * backpressure and drain semantics; the decoded-GOP cache's budget,
 * keying and invalidation; wire-protocol round trips and hostile
 * input fuzzing (truncations, bad magic/version, oversized lengths,
 * CRC flips); and loopback server tests — wire responses must match
 * local ArchiveService reads byte for byte, cache hits must skip the
 * read path (observed via telemetry), a full queue must answer
 * Status::Retry, and a mixed concurrent load must lose no responses
 * (suite names contain "Server" so the TSan CI job picks them up).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive_service.h"
#include "common/telemetry.h"
#include "server/frame_cache.h"
#include "server/request_queue.h"
#include "server/vapp_client.h"
#include "server/vapp_server.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "server_test_" + name + ".vapp";
}

PreparedVideo
makePrepared(u64 seed)
{
    Video source = generateSynthetic(tinySpec(seed));
    EncoderConfig config;
    config.gop.gopSize = 8;
    config.gop.bFrames = 2;
    return prepareVideo(source, config,
                        EccAssignment::paperTable1());
}

u64
counterValue(const char *name)
{
    return telemetry::globalRegistry().counter(name).value();
}

// --- request queue ----------------------------------------------------

TEST(ServerQueue, ServeDrainsBeforeMaintain)
{
    RequestQueue<int> queue(8);
    ASSERT_TRUE(queue.tryPush(QueueClass::Maintain, 100));
    ASSERT_TRUE(queue.tryPush(QueueClass::Serve, 1));
    ASSERT_TRUE(queue.tryPush(QueueClass::Maintain, 101));
    ASSERT_TRUE(queue.tryPush(QueueClass::Serve, 2));

    // Serve jobs first (FIFO within the class), then Maintain.
    EXPECT_EQ(queue.pop(), 1);
    EXPECT_EQ(queue.pop(), 2);
    EXPECT_EQ(queue.pop(), 100);
    EXPECT_EQ(queue.pop(), 101);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(ServerQueue, RejectsWhenFullAndCountsPerClass)
{
    RequestQueue<int> queue(2);
    EXPECT_TRUE(queue.tryPush(QueueClass::Serve, 1));
    EXPECT_TRUE(queue.tryPush(QueueClass::Maintain, 2));
    // Capacity spans both classes: the third job of either class is
    // refused without blocking.
    EXPECT_FALSE(queue.tryPush(QueueClass::Serve, 3));
    EXPECT_FALSE(queue.tryPush(QueueClass::Maintain, 4));
    EXPECT_FALSE(queue.tryPush(QueueClass::Maintain, 5));

    EXPECT_EQ(queue.rejected(QueueClass::Serve), 1u);
    EXPECT_EQ(queue.rejected(QueueClass::Maintain), 2u);
    EXPECT_EQ(queue.rejectedTotal(), 3u);
    EXPECT_EQ(queue.highWater(), 2u);

    // Draining frees capacity again.
    EXPECT_EQ(queue.pop(), 1);
    EXPECT_TRUE(queue.tryPush(QueueClass::Serve, 6));
}

TEST(ServerQueue, DrainsAfterCloseThenEnds)
{
    RequestQueue<int> queue(4);
    ASSERT_TRUE(queue.tryPush(QueueClass::Serve, 1));
    ASSERT_TRUE(queue.tryPush(QueueClass::Maintain, 2));
    queue.close();
    EXPECT_FALSE(queue.tryPush(QueueClass::Serve, 3));
    // Admitted jobs still come out; then pop() reports the end.
    EXPECT_EQ(queue.pop(), 1);
    EXPECT_EQ(queue.pop(), 2);
    EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(ServerQueue, DrainPauseGatesPopUntilResumed)
{
    RequestQueue<int> queue(4);
    queue.setDrainPaused(true);
    ASSERT_TRUE(queue.tryPush(QueueClass::Serve, 7));

    std::atomic<bool> popped{false};
    std::thread consumer([&] {
        auto job = queue.pop();
        EXPECT_EQ(job, 7);
        popped.store(true);
    });
    // The consumer must stay blocked while paused even though a job
    // is queued — that is what makes backpressure deterministic.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(popped.load());

    queue.setDrainPaused(false);
    consumer.join();
    EXPECT_TRUE(popped.load());
}

TEST(ServerQueue, CloseOverridesPause)
{
    RequestQueue<int> queue(4);
    queue.setDrainPaused(true);
    ASSERT_TRUE(queue.tryPush(QueueClass::Serve, 9));
    queue.close();
    // Shutdown always drains, pause notwithstanding.
    EXPECT_EQ(queue.pop(), 9);
    EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(ServerQueue, PopBatchDrainsInPriorityOrderUpToMax)
{
    RequestQueue<int> queue(8);
    ASSERT_TRUE(queue.tryPush(QueueClass::Maintain, 100));
    ASSERT_TRUE(queue.tryPush(QueueClass::Serve, 1));
    ASSERT_TRUE(queue.tryPush(QueueClass::Serve, 2));
    ASSERT_TRUE(queue.tryPush(QueueClass::Maintain, 101));

    // One lock acquisition takes Serve first, then Maintain, capped
    // at max.
    std::vector<int> batch = queue.popBatch(3);
    EXPECT_EQ(batch, (std::vector<int>{1, 2, 100}));
    EXPECT_EQ(queue.size(), 1u);
    batch = queue.popBatch(3);
    EXPECT_EQ(batch, (std::vector<int>{101}));

    // After close() an empty batch signals the end of the stream.
    queue.close();
    EXPECT_TRUE(queue.popBatch(4).empty());
}

// --- frame cache ------------------------------------------------------

DecodedGop
gopOfSize(std::size_t bytes, u8 fill = 0xAB)
{
    DecodedGop gop;
    gop.width = 64;
    gop.height = 64;
    gop.frameCount = 1;
    gop.gopCount = 1;
    gop.i420 = Bytes(bytes, fill);
    return gop;
}

/** A cached entry's payload is a serialized wire response. */
GetFramesResponse
parseCached(const CachedGopPtr &gop)
{
    GetFramesResponse response;
    EXPECT_TRUE(gop);
    if (gop)
        EXPECT_TRUE(parseGetFramesResponse(gop->payload, response));
    return response;
}

TEST(ServerCache, HitReturnsWhatWasPut)
{
    FrameCache cache(1u << 20);
    GopKey key{"v", 2, 0};
    cache.put(key, gopOfSize(1000, 0x11));

    CachedGopPtr hit = cache.get(key);
    ASSERT_TRUE(hit);
    GetFramesResponse response = parseCached(hit);
    EXPECT_EQ(response.i420, Bytes(1000, 0x11));
    // The entry is wire-ready: marked as a cache hit, CRC memoized.
    EXPECT_TRUE(response.fromCache);
    EXPECT_EQ(verifyPayload(hit->payload, hit->payloadCrc),
              WireError::None);
    EXPECT_EQ(cache.hits(), 1u);

    EXPECT_FALSE(cache.get(GopKey{"v", 3, 0}));
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServerCache, BudgetBoundsBytesAndEvictsLru)
{
    // Budget for ~2 entries per shard; inserting far more must keep
    // the cache within budget by evicting, never by refusing.
    const std::size_t entry = 4096;
    const std::size_t charged =
        makeCachedGop(gopOfSize(entry))->chargedBytes();
    FrameCache cache(FrameCache::kShards * 2 * charged);
    for (u32 g = 0; g < 64; ++g)
        cache.put(GopKey{"v", g, 0}, gopOfSize(entry));

    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.entries(), 2u * FrameCache::kShards);
    EXPECT_LE(cache.bytes(), FrameCache::kShards * 2 * charged);
    // Something must have survived, too.
    EXPECT_GT(cache.entries(), 0u);
}

TEST(ServerCache, ReplacingAKeyKeepsAccountsExact)
{
    FrameCache cache(1u << 20);
    GopKey key{"v", 0, 0};
    cache.put(key, gopOfSize(1000));
    cache.put(key, gopOfSize(3000, 0x22));
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(),
              makeCachedGop(gopOfSize(3000, 0x22))->chargedBytes());
    CachedGopPtr hit = cache.get(key);
    ASSERT_TRUE(hit);
    EXPECT_EQ(parseCached(hit).i420, Bytes(3000, 0x22));
}

TEST(ServerCache, PinnedEntrySurvivesEviction)
{
    FrameCache cache(1u << 20);
    GopKey key{"v", 0, 0};
    cache.put(key, gopOfSize(500, 0x33));
    CachedGopPtr pin = cache.get(key);
    ASSERT_TRUE(pin);

    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    // A response in flight keeps its bytes alive past eviction —
    // this is what lets the event loop write entries with zero
    // copies and no cache-wide lock.
    EXPECT_EQ(parseCached(pin).i420, Bytes(500, 0x33));
    EXPECT_EQ(verifyPayload(pin->payload, pin->payloadCrc),
              WireError::None);
}

TEST(ServerCache, OversizedEntriesAreSkipped)
{
    FrameCache cache(1024); // shard budget ~129 bytes
    cache.put(GopKey{"v", 0, 0}, gopOfSize(4096));
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ServerCache, KeyIdSeparatesReads)
{
    // The same GOP decoded under two keys must never alias: a client
    // without the key must not be served plaintext cached under it.
    FrameCache cache(1u << 20);
    cache.put(GopKey{"v", 0, 1}, gopOfSize(100, 0x01));
    cache.put(GopKey{"v", 0, 2}, gopOfSize(100, 0x02));

    CachedGopPtr k1 = cache.get(GopKey{"v", 0, 1});
    CachedGopPtr k2 = cache.get(GopKey{"v", 0, 2});
    ASSERT_TRUE(k1 && k2);
    EXPECT_EQ(parseCached(k1).i420[0], 0x01);
    EXPECT_EQ(parseCached(k2).i420[0], 0x02);
    EXPECT_FALSE(cache.get(GopKey{"v", 0, 0}));
}

TEST(ServerCache, EraseVideoAndClear)
{
    FrameCache cache(1u << 20);
    for (u32 g = 0; g < 4; ++g) {
        cache.put(GopKey{"a", g, 0}, gopOfSize(100));
        cache.put(GopKey{"b", g, 7}, gopOfSize(100));
    }
    ASSERT_EQ(cache.entries(), 8u);

    cache.eraseVideo("a"); // all GOPs, all key ids
    EXPECT_EQ(cache.entries(), 4u);
    EXPECT_FALSE(cache.get(GopKey{"a", 0, 0}));
    EXPECT_TRUE(cache.get(GopKey{"b", 0, 7}));

    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
}

// --- wire protocol ----------------------------------------------------

TEST(ServerWire, FrameRoundTrip)
{
    Bytes payload = {1, 2, 3, 4, 5};
    Bytes frame = encodeFrame(static_cast<u8>(Opcode::GetFrames),
                              0xDEADBEEF, payload);
    ASSERT_EQ(frame.size(), kWireHeaderBytes + payload.size() + 4);

    WireFrameHeader header;
    ASSERT_EQ(parseFrameHeader(frame.data(), frame.size(), header),
              WireError::None);
    EXPECT_EQ(header.kind, static_cast<u8>(Opcode::GetFrames));
    EXPECT_EQ(header.requestId, 0xDEADBEEFu);
    ASSERT_EQ(header.payloadLength, payload.size());

    Bytes body(frame.begin() + kWireHeaderBytes,
               frame.end() - 4);
    u32 crc = static_cast<u32>(frame[frame.size() - 4]) << 24 |
              static_cast<u32>(frame[frame.size() - 3]) << 16 |
              static_cast<u32>(frame[frame.size() - 2]) << 8 |
              static_cast<u32>(frame[frame.size() - 1]);
    EXPECT_EQ(body, payload);
    EXPECT_EQ(verifyPayload(body, crc), WireError::None);
}

TEST(ServerWire, RequestsRoundTrip)
{
    GetFramesRequest get;
    get.name = "clip";
    get.gop = 3;
    get.injectRawBer = 1e-3;
    get.seed = 99;
    get.conceal = true;
    get.key = {1, 2, 3};
    get.deadlineMs = 250;
    GetFramesRequest get2;
    ASSERT_TRUE(parseGetFramesRequest(
        serializeGetFramesRequest(get), get2));
    EXPECT_EQ(get2.name, get.name);
    EXPECT_EQ(get2.gop, get.gop);
    EXPECT_EQ(get2.injectRawBer, get.injectRawBer);
    EXPECT_EQ(get2.seed, get.seed);
    EXPECT_EQ(get2.conceal, get.conceal);
    EXPECT_EQ(get2.key, get.key);
    EXPECT_EQ(get2.deadlineMs, get.deadlineMs);

    PutRequest put;
    put.name = "clip";
    put.width = 32;
    put.height = 32;
    put.frameCount = 2;
    put.i420 = Bytes(32 * 32 * 3 / 2 * 2, 0x55);
    put.key = Bytes(16, 0x7E);
    PutRequest put2;
    put.cipherMode = 3;
    put.keyId = 9;
    put.ivSeed = 77;
    ASSERT_TRUE(parsePutRequest(serializePutRequest(put), put2));
    EXPECT_EQ(put2.name, put.name);
    EXPECT_EQ(put2.width, put.width);
    EXPECT_EQ(put2.height, put.height);
    EXPECT_EQ(put2.frameCount, put.frameCount);
    EXPECT_EQ(put2.i420, put.i420);
    EXPECT_EQ(put2.key, put.key);
    EXPECT_EQ(put2.cipherMode, put.cipherMode);
    EXPECT_EQ(put2.keyId, put.keyId);
    EXPECT_EQ(put2.ivSeed, put.ivSeed);

    ScrubRequest scrub;
    scrub.ageRawBer = 2e-4;
    scrub.seed = 5;
    ScrubRequest scrub2;
    ASSERT_TRUE(
        parseScrubRequest(serializeScrubRequest(scrub), scrub2));
    EXPECT_EQ(scrub2.ageRawBer, scrub.ageRawBer);
    EXPECT_EQ(scrub2.seed, scrub.seed);
}

TEST(ServerWire, MalformedRequestsRejected)
{
    PutRequest put;
    put.name = "v";
    put.width = 30; // not a multiple of 16
    put.height = 32;
    put.frameCount = 1;
    put.i420 = Bytes(30 * 32 * 3 / 2, 0);
    PutRequest out;
    EXPECT_FALSE(parsePutRequest(serializePutRequest(put), out));

    put.width = 32;
    put.i420 = Bytes(7, 0); // size disagrees with dims
    EXPECT_FALSE(parsePutRequest(serializePutRequest(put), out));

    GetFramesRequest get;
    get.name = "v";
    get.injectRawBer = 2.0; // not a probability
    GetFramesRequest gout;
    EXPECT_FALSE(parseGetFramesRequest(
        serializeGetFramesRequest(get), gout));
}

TEST(ServerWire, ResponsesRoundTrip)
{
    GetFramesResponse get;
    get.status = Status::Partial;
    get.width = 64;
    get.height = 64;
    get.firstFrame = 8;
    get.frameCount = 8;
    get.gopCount = 3;
    get.fromCache = true;
    get.blocksCorrected = 17;
    get.blocksUncorrectable = 2;
    get.i420 = Bytes(640, 0x3C);
    GetFramesResponse get2;
    ASSERT_TRUE(parseGetFramesResponse(
        serializeGetFramesResponse(get), get2));
    EXPECT_EQ(get2.status, get.status);
    EXPECT_EQ(get2.firstFrame, get.firstFrame);
    EXPECT_EQ(get2.frameCount, get.frameCount);
    EXPECT_EQ(get2.gopCount, get.gopCount);
    EXPECT_EQ(get2.fromCache, get.fromCache);
    EXPECT_EQ(get2.blocksCorrected, get.blocksCorrected);
    EXPECT_EQ(get2.blocksUncorrectable, get.blocksUncorrectable);
    EXPECT_EQ(get2.i420, get.i420);

    StatResponse stat;
    stat.status = Status::Ok;
    ArchiveVideoStat v;
    v.name = "clip";
    v.width = 64;
    v.height = 64;
    v.frames = 20;
    v.streamCount = 4;
    v.payloadBytes = 1234;
    v.cellBytes = 2345;
    v.encrypted = true;
    stat.videos.push_back(v);
    StatResponse stat2;
    ASSERT_TRUE(
        parseStatResponse(serializeStatResponse(stat), stat2));
    ASSERT_EQ(stat2.videos.size(), 1u);
    EXPECT_EQ(stat2.videos[0].name, "clip");
    EXPECT_EQ(stat2.videos[0].frames, 20u);
    EXPECT_EQ(stat2.videos[0].payloadBytes, 1234u);
    EXPECT_TRUE(stat2.videos[0].encrypted);

    ScrubResponse scrub;
    scrub.status = Status::Ok;
    scrub.videos = 2;
    scrub.streams = 8;
    scrub.blocksRead = 100;
    scrub.blocksRewritten = 3;
    scrub.bitsCorrected = 7;
    scrub.blocksUncorrectable = 1;
    scrub.streamsMiscorrected = 1;
    scrub.streamsDamaged = 1;
    ScrubResponse scrub2;
    ASSERT_TRUE(
        parseScrubResponse(serializeScrubResponse(scrub), scrub2));
    EXPECT_EQ(scrub2.blocksRead, 100u);
    EXPECT_EQ(scrub2.streamsMiscorrected, 1u);

    HealthResponse health;
    health.status = Status::Ok;
    health.queueDepth = 3;
    health.queueCapacity = 256;
    health.queueHighWater = 17;
    health.queueRejected = 4;
    health.cacheBytes = 1 << 20;
    health.cacheEntries = 9;
    health.videos = 2;
    HealthResponse health2;
    ASSERT_TRUE(parseHealthResponse(
        serializeHealthResponse(health), health2));
    EXPECT_EQ(health2.queueCapacity, 256u);
    EXPECT_EQ(health2.queueRejected, 4u);
    EXPECT_EQ(health2.cacheEntries, 9u);

    // A bare-status error payload parses under every typed parser.
    Bytes retry = serializeStatusOnly(Status::Retry);
    GetFramesResponse gerr;
    PutResponse perr;
    StatResponse serr;
    ScrubResponse scerr;
    HealthResponse herr;
    EXPECT_TRUE(parseGetFramesResponse(retry, gerr));
    EXPECT_TRUE(parsePutResponse(retry, perr));
    EXPECT_TRUE(parseStatResponse(retry, serr));
    EXPECT_TRUE(parseScrubResponse(retry, scerr));
    EXPECT_TRUE(parseHealthResponse(retry, herr));
    EXPECT_EQ(gerr.status, Status::Retry);
    EXPECT_EQ(herr.status, Status::Retry);
}

std::vector<FrameHeader>
headersOf(const std::vector<std::pair<u16, FrameType>> &frames)
{
    std::vector<FrameHeader> headers;
    for (auto [display, type] : frames) {
        FrameHeader h;
        h.displayIdx = display;
        h.type = type;
        headers.push_back(h);
    }
    return headers;
}

TEST(ServerWire, GopRangesFollowIFrames)
{
    // Encode order IPBB IPBB with I-frames at display 0 and 4.
    auto headers = headersOf({{0, FrameType::I},
                              {3, FrameType::P},
                              {1, FrameType::B},
                              {2, FrameType::B},
                              {4, FrameType::I},
                              {7, FrameType::P},
                              {5, FrameType::B},
                              {6, FrameType::B}});
    auto ranges = gopRanges(headers, 8);
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0].firstFrame, 0u);
    EXPECT_EQ(ranges[0].frameCount, 4u);
    EXPECT_EQ(ranges[1].firstFrame, 4u);
    EXPECT_EQ(ranges[1].frameCount, 4u);

    // A leading non-I prefix folds into the first GOP.
    auto open = headersOf({{0, FrameType::P},
                           {1, FrameType::P},
                           {2, FrameType::I},
                           {3, FrameType::P}});
    auto open_ranges = gopRanges(open, 4);
    ASSERT_EQ(open_ranges.size(), 1u);
    EXPECT_EQ(open_ranges[0].firstFrame, 0u);
    EXPECT_EQ(open_ranges[0].frameCount, 4u);

    EXPECT_TRUE(gopRanges({}, 0).empty());
}

TEST(ServerWire, PackFramesI420Layout)
{
    Video video;
    video.frames.emplace_back(16, 16);
    video.frames.emplace_back(16, 16);
    video.frames[0].y().at(0, 0) = 11;
    video.frames[0].u().at(0, 0) = 22;
    video.frames[0].v().at(0, 0) = 33;
    video.frames[1].y().at(0, 0) = 44;

    Bytes packed = packFramesI420(video, 0, 2);
    const std::size_t frame_bytes = 16 * 16 * 3 / 2;
    ASSERT_EQ(packed.size(), 2 * frame_bytes);
    EXPECT_EQ(packed[0], 11);
    EXPECT_EQ(packed[16 * 16], 22);
    EXPECT_EQ(packed[16 * 16 + 8 * 8], 33);
    EXPECT_EQ(packed[frame_bytes], 44);

    Bytes second = packFramesI420(video, 1, 1);
    ASSERT_EQ(second.size(), frame_bytes);
    EXPECT_EQ(second[0], 44);
}

// --- wire fuzzing -----------------------------------------------------

TEST(ServerWireFuzz, EveryTruncationFailsCleanly)
{
    Bytes frame = encodeFrame(static_cast<u8>(Opcode::Stat), 7,
                              Bytes{9, 8, 7});
    for (std::size_t n = 0; n < kWireHeaderBytes; ++n) {
        WireFrameHeader header;
        EXPECT_EQ(parseFrameHeader(frame.data(), n, header),
                  WireError::ShortRead);
    }
}

TEST(ServerWireFuzz, BadMagicVersionKindAndOversized)
{
    Bytes good = encodeFrame(static_cast<u8>(Opcode::Health), 1,
                             Bytes{});
    WireFrameHeader header;

    Bytes bad = good;
    bad[0] ^= 0xFF; // magic
    EXPECT_EQ(parseFrameHeader(bad.data(), bad.size(), header),
              WireError::BadMagic);

    bad = good;
    bad[4] = 0x7F; // version hi byte: a far-future revision
    // Re-CRC so only the version is wrong.
    // (parseFrameHeader checks CRC first on purpose: a frame that
    // fails its checksum tells us nothing about its version.)
    EXPECT_NE(parseFrameHeader(bad.data(), bad.size(), header),
              WireError::None);

    bad = good;
    bad[7] = 0xEE; // kind byte outside both enums, CRC now stale
    EXPECT_NE(parseFrameHeader(bad.data(), bad.size(), header),
              WireError::None);
}

TEST(ServerWireFuzz, HeaderBitFlipsNeverParseAsValid)
{
    Bytes frame = encodeFrame(static_cast<u8>(Opcode::Put), 42,
                              Bytes(64, 0xA5));
    // Flip every bit of the header: the CRC (or a field check) must
    // catch every one — no flipped header may parse as valid.
    for (std::size_t byte = 0; byte < kWireHeaderBytes; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            Bytes bad = frame;
            bad[byte] ^= static_cast<u8>(1 << bit);
            WireFrameHeader header;
            EXPECT_NE(
                parseFrameHeader(bad.data(), bad.size(), header),
                WireError::None)
                << "byte " << byte << " bit " << bit;
        }
    }
}

TEST(ServerWireFuzz, PayloadCrcFlipsDetected)
{
    Bytes payload(256, 0x5A);
    Bytes frame = encodeFrame(static_cast<u8>(Opcode::Put), 1,
                              payload);
    u32 crc = static_cast<u32>(frame[frame.size() - 4]) << 24 |
              static_cast<u32>(frame[frame.size() - 3]) << 16 |
              static_cast<u32>(frame[frame.size() - 2]) << 8 |
              static_cast<u32>(frame[frame.size() - 1]);
    EXPECT_EQ(verifyPayload(payload, crc), WireError::None);

    for (std::size_t i = 0; i < payload.size(); i += 37) {
        Bytes bad = payload;
        bad[i] ^= 0x01;
        EXPECT_EQ(verifyPayload(bad, crc), WireError::BadCrc);
    }
    EXPECT_EQ(verifyPayload(payload, crc ^ 1), WireError::BadCrc);
}

TEST(ServerWireFuzz, RandomBytesNeverCrashThePayloadParsers)
{
    Rng rng(2026);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes junk(rng.nextBelow(160), 0);
        for (auto &b : junk)
            b = static_cast<u8>(rng.next());
        GetFramesRequest get;
        PutRequest put;
        ScrubRequest scrub;
        GetFramesResponse gresp;
        PutResponse presp;
        StatResponse sresp;
        ScrubResponse scresp;
        HealthResponse hresp;
        parseGetFramesRequest(junk, get);
        parsePutRequest(junk, put);
        parseScrubRequest(junk, scrub);
        parseGetFramesResponse(junk, gresp);
        parsePutResponse(junk, presp);
        parseStatResponse(junk, sresp);
        parseScrubResponse(junk, scresp);
        parseHealthResponse(junk, hresp);
    }
    SUCCEED();
}

TEST(ServerWireFuzz, MigrationMessagesRoundTripAndRejectDamage)
{
    CellPullRequest pull;
    pull.name = "migrating/clip";
    CellPullResponse pulled;
    pulled.status = Status::Ok;
    pulled.record = Bytes(97, 0x3C);
    CellPushRequest push;
    push.name = "migrating/clip";
    push.record = Bytes(61, 0xD2);
    push.overwrite = true;
    CellPushResponse adopted;
    adopted.status = Status::Ok;
    adopted.adopted = true;

    CellPullRequest pull2;
    ASSERT_TRUE(
        parseCellPullRequest(serializeCellPullRequest(pull), pull2));
    EXPECT_EQ(pull2.name, pull.name);
    CellPullResponse pulled2;
    ASSERT_TRUE(parseCellPullResponse(
        serializeCellPullResponse(pulled), pulled2));
    EXPECT_EQ(pulled2.status, Status::Ok);
    EXPECT_EQ(pulled2.record, pulled.record);
    CellPushRequest push2;
    ASSERT_TRUE(
        parseCellPushRequest(serializeCellPushRequest(push), push2));
    EXPECT_EQ(push2.name, push.name);
    EXPECT_EQ(push2.record, push.record);
    EXPECT_TRUE(push2.overwrite);
    CellPushResponse adopted2;
    ASSERT_TRUE(parseCellPushResponse(
        serializeCellPushResponse(adopted), adopted2));
    EXPECT_TRUE(adopted2.adopted);

    // Every truncation of every migration payload fails cleanly.
    const Bytes payloads[] = {
        serializeCellPullRequest(pull),
        serializeCellPullResponse(pulled),
        serializeCellPushRequest(push),
    };
    for (const Bytes &payload : payloads) {
        for (std::size_t n = 0; n < payload.size(); ++n) {
            Bytes cut(payload.begin(), payload.begin() + n);
            CellPullRequest a;
            CellPullResponse b;
            CellPushRequest c;
            if (&payload == &payloads[0])
                EXPECT_FALSE(parseCellPullRequest(cut, a)) << n;
            if (&payload == &payloads[1])
                EXPECT_FALSE(parseCellPullResponse(cut, b)) << n;
            if (&payload == &payloads[2])
                EXPECT_FALSE(parseCellPushRequest(cut, c)) << n;
        }
    }

    // Random junk must never crash the migration parsers.
    Rng rng(4049);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes junk(rng.nextBelow(160), 0);
        for (auto &b : junk)
            b = static_cast<u8>(rng.next());
        CellPullRequest a;
        CellPullResponse b;
        CellPushRequest c;
        CellPushResponse d;
        parseCellPullRequest(junk, a);
        parseCellPullResponse(junk, b);
        parseCellPushRequest(junk, c);
        parseCellPushResponse(junk, d);
    }
}

TEST(ServerWireFuzz, EpochStampedRequestTailsRoundTrip)
{
    // Default (unstamped) requests keep the pre-resize wire shape:
    // serialize -> parse yields epoch 0 and no replica grant.
    GetFramesRequest legacy;
    legacy.name = "clip";
    GetFramesRequest legacy2;
    ASSERT_TRUE(parseGetFramesRequest(
        serializeGetFramesRequest(legacy), legacy2));
    EXPECT_EQ(legacy2.ringEpoch, 0u);
    EXPECT_FALSE(legacy2.allowReplica);

    GetFramesRequest stamped;
    stamped.name = "clip";
    stamped.gop = 3;
    stamped.ringEpoch = 17;
    stamped.allowReplica = true;
    Bytes wire = serializeGetFramesRequest(stamped);
    GetFramesRequest stamped2;
    ASSERT_TRUE(parseGetFramesRequest(wire, stamped2));
    EXPECT_EQ(stamped2.ringEpoch, 17u);
    EXPECT_TRUE(stamped2.allowReplica);
    // A truncated epoch tail must not parse as a stamped request.
    for (std::size_t cut = 1; cut <= 8; ++cut) {
        Bytes shorter(wire.begin(), wire.end() - cut);
        GetFramesRequest out;
        if (parseGetFramesRequest(shorter, out))
            EXPECT_EQ(out.ringEpoch, 0u) << cut;
    }

    PutRequest put;
    put.name = "clip";
    put.width = 16;
    put.height = 16;
    put.frameCount = 1;
    put.i420 = Bytes(16 * 16 * 3 / 2, 0x30);
    put.ringEpoch = 23;
    PutRequest put2;
    ASSERT_TRUE(parsePutRequest(serializePutRequest(put), put2));
    EXPECT_EQ(put2.ringEpoch, 23u);
    PutRequest unstamped;
    unstamped.name = put.name;
    unstamped.width = put.width;
    unstamped.height = put.height;
    unstamped.frameCount = put.frameCount;
    unstamped.i420 = put.i420;
    PutRequest unstamped2;
    ASSERT_TRUE(
        parsePutRequest(serializePutRequest(unstamped), unstamped2));
    EXPECT_EQ(unstamped2.ringEpoch, 0u);
}

// --- incremental deframing --------------------------------------------

TEST(ServerDeframer, ByteAtATimeDeliveryReassembles)
{
    Bytes f1 = encodeFrame(static_cast<u8>(Opcode::Stat), 11,
                           Bytes{1, 2, 3});
    Bytes f2 = encodeFrame(static_cast<u8>(Opcode::Health), 12,
                           Bytes{});
    Bytes stream = f1;
    stream.insert(stream.end(), f2.begin(), f2.end());

    // The cruellest TCP segmentation: one byte per readiness event.
    FrameDeframer deframer;
    std::vector<FrameDeframer::Decoded> frames;
    for (u8 byte : stream) {
        deframer.feed(&byte, 1);
        FrameDeframer::Decoded out;
        while (deframer.next(out) == FrameDeframer::Result::Frame)
            frames.push_back(out);
        EXPECT_FALSE(deframer.fatal());
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].header.requestId, 11u);
    EXPECT_EQ(frames[0].payload, (Bytes{1, 2, 3}));
    EXPECT_EQ(frames[1].header.requestId, 12u);
    EXPECT_TRUE(frames[1].payload.empty());
    EXPECT_EQ(deframer.buffered(), 0u);
}

TEST(ServerDeframer, MultipleFramesInOneFeed)
{
    Bytes f1 = encodeFrame(static_cast<u8>(Opcode::Stat), 1,
                           Bytes(200, 0x5A));
    Bytes f2 = encodeFrame(static_cast<u8>(Opcode::Stat), 2,
                           Bytes{7});
    Bytes stream = f1;
    stream.insert(stream.end(), f2.begin(), f2.end());
    // ... plus a torn prefix of a third frame.
    Bytes f3 = encodeFrame(static_cast<u8>(Opcode::Stat), 3,
                           Bytes{8, 9});
    stream.insert(stream.end(), f3.begin(), f3.begin() + 10);

    FrameDeframer deframer;
    deframer.feed(stream.data(), stream.size());
    FrameDeframer::Decoded out;
    ASSERT_EQ(deframer.next(out), FrameDeframer::Result::Frame);
    EXPECT_EQ(out.header.requestId, 1u);
    ASSERT_EQ(deframer.next(out), FrameDeframer::Result::Frame);
    EXPECT_EQ(out.header.requestId, 2u);
    EXPECT_EQ(deframer.next(out), FrameDeframer::Result::NeedMore);
    // Completing the torn frame releases it.
    deframer.feed(f3.data() + 10, f3.size() - 10);
    ASSERT_EQ(deframer.next(out), FrameDeframer::Result::Frame);
    EXPECT_EQ(out.header.requestId, 3u);
    EXPECT_EQ(out.payload, (Bytes{8, 9}));
}

TEST(ServerDeframer, PayloadCrcErrorIsRecoverable)
{
    Bytes bad = encodeFrame(static_cast<u8>(Opcode::Stat), 21,
                            Bytes{1, 2, 3});
    bad[bad.size() - 1] ^= 0xFF; // corrupt the payload CRC
    Bytes good = encodeFrame(static_cast<u8>(Opcode::Stat), 22,
                             Bytes{4});
    Bytes stream = bad;
    stream.insert(stream.end(), good.begin(), good.end());

    FrameDeframer deframer;
    deframer.feed(stream.data(), stream.size());
    FrameDeframer::Decoded out;
    // The corrupt frame reports an error but keeps the request id
    // (for the BadRequest echo) and consumes cleanly...
    ASSERT_EQ(deframer.next(out), FrameDeframer::Result::Error);
    EXPECT_FALSE(deframer.fatal());
    EXPECT_EQ(deframer.error(), WireError::BadCrc);
    EXPECT_EQ(out.header.requestId, 21u);
    // ... so the next frame on the stream still parses.
    ASSERT_EQ(deframer.next(out), FrameDeframer::Result::Frame);
    EXPECT_EQ(out.header.requestId, 22u);
}

TEST(ServerDeframer, HeaderDamageIsFatalAndLatches)
{
    FrameDeframer deframer;
    Bytes junk(40, 0xFF);
    deframer.feed(junk.data(), junk.size());
    FrameDeframer::Decoded out;
    ASSERT_EQ(deframer.next(out), FrameDeframer::Result::Error);
    EXPECT_TRUE(deframer.fatal());

    // Once framing is lost it stays lost: even valid bytes appended
    // later must never be interpreted as frames.
    Bytes good = encodeFrame(static_cast<u8>(Opcode::Health), 1,
                             Bytes{});
    deframer.feed(good.data(), good.size());
    EXPECT_EQ(deframer.next(out), FrameDeframer::Result::Error);
    EXPECT_TRUE(deframer.fatal());
}

// --- loopback server --------------------------------------------------

/** Archive + server + helpers shared by the loopback tests. */
class ServerLoopback : public ::testing::Test
{
  protected:
    void
    startServer(VappServerConfig config = {})
    {
        path_ = tempPath(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name());
        std::remove(path_.c_str());
        service_ = std::make_unique<ArchiveService>(path_);
        ASSERT_EQ(service_->open(true), ArchiveError::None);
        config.port = 0;
        server_ = std::make_unique<VappServer>(*service_, config);
        ASSERT_TRUE(server_->start());
    }

    void
    TearDown() override
    {
        if (server_)
            server_->stop();
        std::remove(path_.c_str());
    }

    VappClient
    client()
    {
        VappClient c;
        EXPECT_TRUE(c.connect("127.0.0.1", server_->port()));
        return c;
    }

    /** Raw client socket for hostile-bytes tests. */
    int
    rawConnect()
    {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server_->port());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) < 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }

    std::string path_;
    std::unique_ptr<ArchiveService> service_;
    std::unique_ptr<VappServer> server_;
};

TEST_F(ServerLoopback, GetMatchesLocalServiceByteForByte)
{
    startServer();
    PreparedVideo prepared = makePrepared(71);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    // The local reference read (deterministic, exact).
    ArchiveGetResult local = service_->get("clip");
    ASSERT_EQ(local.error, ArchiveError::None);
    auto ranges = gopRanges(local.frameHeaders,
                            local.decoded.frames.size());
    ASSERT_GT(ranges.size(), 1u);

    VappClient c = client();
    for (u32 g = 0; g < ranges.size(); ++g) {
        GetFramesRequest request;
        request.name = "clip";
        request.gop = g;
        auto response = c.getFrames(request);
        ASSERT_TRUE(response.has_value());
        ASSERT_EQ(response->status, Status::Ok);
        EXPECT_EQ(response->gopCount, ranges.size());
        EXPECT_EQ(response->firstFrame, ranges[g].firstFrame);
        EXPECT_EQ(response->frameCount, ranges[g].frameCount);
        // The acceptance bar: wire frames are byte-identical to the
        // local ArchiveService read.
        EXPECT_EQ(response->i420,
                  packFramesI420(local.decoded,
                                 ranges[g].firstFrame,
                                 ranges[g].frameCount));
    }
}

TEST_F(ServerLoopback, CacheHitSkipsTheReadPath)
{
    startServer();
    PreparedVideo prepared = makePrepared(72);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    VappClient c = client();
    GetFramesRequest request;
    request.name = "clip";
    request.gop = 0;

    u64 gets_before = counterValue("archive.gets");
    auto miss = c.getFrames(request);
    ASSERT_TRUE(miss.has_value());
    ASSERT_EQ(miss->status, Status::Ok);
    EXPECT_FALSE(miss->fromCache);

    // The second read must come from the cache: identical bytes and
    // — the proof it skipped BCH/decrypt/decode — no archive read.
    u64 gets_after_miss = counterValue("archive.gets");
    auto hit = c.getFrames(request);
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ(hit->status, Status::Ok);
    EXPECT_TRUE(hit->fromCache);
    EXPECT_EQ(hit->i420, miss->i420);
    if (telemetry::kEnabled) {
        EXPECT_EQ(gets_after_miss, gets_before + 1);
        EXPECT_EQ(counterValue("archive.gets"), gets_after_miss);
    }

    // A whole-video decode warms every GOP, so another GOP is a hit
    // too.
    request.gop = 1;
    auto other = c.getFrames(request);
    ASSERT_TRUE(other.has_value());
    EXPECT_TRUE(other->fromCache);
}

TEST_F(ServerLoopback, InjectedGetMatchesLocalBitExactly)
{
    startServer();
    PreparedVideo prepared = makePrepared(73);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    ArchiveGetOptions options;
    options.injectRawBer = 1e-3;
    options.seed = 2024;
    ArchiveGetResult local = service_->get("clip", options);
    ASSERT_EQ(local.error, ArchiveError::None);
    auto ranges = gopRanges(local.frameHeaders,
                            local.decoded.frames.size());

    VappClient c = client();
    GetFramesRequest request;
    request.name = "clip";
    request.gop = 0;
    request.injectRawBer = 1e-3;
    request.seed = 2024;
    auto response = c.getFrames(request);
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(response->status == Status::Ok ||
                response->status == Status::Partial);
    // Same seed, same BER: the stochastic read reproduces bit for
    // bit over the wire, and is never served from cache.
    EXPECT_FALSE(response->fromCache);
    EXPECT_EQ(response->i420,
              packFramesI420(local.decoded, ranges[0].firstFrame,
                             ranges[0].frameCount));
    EXPECT_EQ(response->blocksCorrected,
              local.cells.blocksCorrected);
    EXPECT_EQ(response->blocksUncorrectable,
              local.cells.blocksUncorrectable);

    auto again = c.getFrames(request);
    ASSERT_TRUE(again.has_value());
    EXPECT_FALSE(again->fromCache);
}

TEST_F(ServerLoopback, NotFoundAndKeyRequiredMapToTheWire)
{
    startServer();
    PreparedVideo secret = makePrepared(74);
    ArchivePutOptions with_key;
    EncryptionConfig enc;
    enc.mode = CipherMode::CTR;
    enc.key = Bytes(32, 0x42);
    enc.keyId = 7;
    with_key.encryption = enc;
    ASSERT_EQ(service_->put("secret", secret, with_key),
              ArchiveError::None);

    VappClient c = client();
    GetFramesRequest request;
    request.name = "nope";
    auto missing = c.getFrames(request);
    ASSERT_TRUE(missing.has_value());
    EXPECT_EQ(missing->status, Status::NotFound);

    request.name = "secret";
    auto locked = c.getFrames(request);
    ASSERT_TRUE(locked.has_value());
    EXPECT_EQ(locked->status, Status::KeyRequired);

    request.key = enc.key;
    auto opened = c.getFrames(request);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->status, Status::Ok);

    // A GOP index past the end is a miss too.
    request.gop = 1000;
    auto past = c.getFrames(request);
    ASSERT_TRUE(past.has_value());
    EXPECT_EQ(past->status, Status::NotFound);
}

TEST_F(ServerLoopback, RemotePutRoundTripsThroughTheArchive)
{
    startServer();
    Video source = generateSynthetic(tinySpec(75));

    VappClient c = client();
    PutRequest put;
    put.name = "pushed";
    put.width = static_cast<u16>(source.width());
    put.height = static_cast<u16>(source.height());
    put.frameCount = static_cast<u32>(source.frames.size());
    put.i420 = packFramesI420(source, 0, source.frames.size());
    auto stored = c.put(put);
    ASSERT_TRUE(stored.has_value());
    ASSERT_EQ(stored->status, Status::Ok);
    EXPECT_GT(stored->payloadBytes, 0u);
    EXPECT_GE(stored->cellBytes, stored->payloadBytes);

    // The server's own encode is deterministic: a wire get of the
    // pushed video matches a local read of what the server stored.
    ArchiveGetResult local = service_->get("pushed");
    ASSERT_EQ(local.error, ArchiveError::None);
    auto ranges = gopRanges(local.frameHeaders,
                            local.decoded.frames.size());
    GetFramesRequest request;
    request.name = "pushed";
    auto response = c.getFrames(request);
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, Status::Ok);
    EXPECT_EQ(response->i420,
              packFramesI420(local.decoded, ranges[0].firstFrame,
                             ranges[0].frameCount));

    auto listing = c.stat();
    ASSERT_TRUE(listing.has_value());
    ASSERT_EQ(listing->videos.size(), 1u);
    EXPECT_EQ(listing->videos[0].name, "pushed");
}

TEST_F(ServerLoopback, HostileBytesGetCleanErrorsNeverCrashes)
{
    startServer();

    // Garbage that is not even a frame header: one BadRequest, then
    // the server hangs up (the stream cannot resync).
    int fd = rawConnect();
    ASSERT_GE(fd, 0);
    Bytes junk(64, 0xFF);
    ASSERT_EQ(::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(junk.size()));
    u8 buf[64];
    ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    EXPECT_GT(got, 0); // the BadRequest answer
    // ... and then EOF.
    while (got > 0)
        got = ::recv(fd, buf, sizeof buf, 0);
    EXPECT_EQ(got, 0);
    ::close(fd);

    // A frame whose payload CRC lies: BadRequest, but the connection
    // survives (framing stayed intact) and keeps serving.
    fd = rawConnect();
    ASSERT_GE(fd, 0);
    Bytes frame = encodeFrame(static_cast<u8>(Opcode::Stat), 5,
                              Bytes{});
    frame[frame.size() - 1] ^= 0xFF;
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    // Read exactly one response frame: its kind must be BadRequest.
    u8 header[kWireHeaderBytes];
    std::size_t off = 0;
    while (off < sizeof header) {
        ssize_t n = ::recv(fd, header + off, sizeof header - off, 0);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
    WireFrameHeader parsed;
    ASSERT_EQ(parseFrameHeader(header, sizeof header, parsed),
              WireError::None);
    EXPECT_EQ(parsed.kind, static_cast<u8>(Status::BadRequest));
    EXPECT_EQ(parsed.requestId, 5u);

    // An unknown opcode on the same connection: also BadRequest,
    // also survivable — drain that response's payload first.
    std::vector<u8> drain(parsed.payloadLength + 4);
    off = 0;
    while (off < drain.size()) {
        ssize_t n =
            ::recv(fd, drain.data() + off, drain.size() - off, 0);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
    Bytes odd = encodeFrame(99, 6, Bytes{});
    ASSERT_EQ(::send(fd, odd.data(), odd.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(odd.size()));
    off = 0;
    while (off < sizeof header) {
        ssize_t n = ::recv(fd, header + off, sizeof header - off, 0);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
    ASSERT_EQ(parseFrameHeader(header, sizeof header, parsed),
              WireError::None);
    EXPECT_EQ(parsed.kind, static_cast<u8>(Status::BadRequest));
    EXPECT_EQ(parsed.requestId, 6u);
    ::close(fd);

    // The server is still perfectly healthy.
    VappClient c = client();
    auto health = c.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->status, Status::Ok);
}

TEST_F(ServerLoopback, FullQueueAnswersRetry)
{
    VappServerConfig config;
    config.queueCapacity = 4;
    config.workers = 2;
    startServer(config);
    PreparedVideo prepared = makePrepared(76);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    // Freeze the workers so admissions pile up deterministically:
    // capacity jobs queue, the overflow must bounce with Retry. A
    // far-off deadline keeps these requests out of single-flight
    // coalescing (which would fold them into one queue slot) without
    // ever expiring.
    server_->setDrainPaused(true);
    const std::size_t total = 9; // capacity 4 + 5 overflow
    std::vector<std::unique_ptr<VappClient>> clients;
    GetFramesRequest request;
    request.name = "clip";
    request.deadlineMs = 60000;
    Bytes payload = serializeGetFramesRequest(request);
    for (std::size_t i = 0; i < total; ++i) {
        clients.push_back(std::make_unique<VappClient>());
        ASSERT_TRUE(
            clients.back()->connect("127.0.0.1", server_->port()));
        ASSERT_TRUE(
            clients.back()->send(Opcode::GetFrames, payload));
    }

    // Wait until every request was either admitted or rejected.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (server_->queueDepth() + server_->queueRejected() <
               total &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(server_->queueDepth(), 4u);
    EXPECT_EQ(server_->queueRejected(), 5u);

    server_->setDrainPaused(false);
    std::size_t retries = 0, served = 0;
    for (auto &c : clients) {
        auto raw = c->receive();
        ASSERT_TRUE(raw.has_value());
        if (raw->kind == static_cast<u8>(Status::Retry))
            ++retries;
        else if (raw->kind == static_cast<u8>(Status::Ok))
            ++served;
    }
    // Exactly the overflow got the backpressure signal; every
    // admitted request got its real answer — nothing lost.
    EXPECT_EQ(retries, 5u);
    EXPECT_EQ(served, 4u);
}

TEST_F(ServerLoopback, DeadlineExpiredWhileQueuedIsShed)
{
    VappServerConfig config;
    config.workers = 1;
    startServer(config);
    PreparedVideo prepared = makePrepared(77);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    server_->setDrainPaused(true);
    VappClient c = client();
    GetFramesRequest request;
    request.name = "clip";
    request.deadlineMs = 1;
    ASSERT_TRUE(c.send(Opcode::GetFrames,
                       serializeGetFramesRequest(request)));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server_->setDrainPaused(false);

    auto raw = c.receive();
    ASSERT_TRUE(raw.has_value());
    EXPECT_EQ(raw->kind, static_cast<u8>(Status::Deadline));

    // Without a deadline the same queue wait is fine.
    request.deadlineMs = 0;
    auto ok = c.getFrames(request);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->status, Status::Ok);
}

TEST_F(ServerLoopback, HealthAnswersWhileSaturated)
{
    VappServerConfig config;
    config.queueCapacity = 2;
    startServer(config);
    PreparedVideo prepared = makePrepared(78);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    server_->setDrainPaused(true);
    GetFramesRequest request;
    request.name = "clip";
    // Bypass coalescing (see FullQueueAnswersRetry).
    request.deadlineMs = 60000;
    Bytes payload = serializeGetFramesRequest(request);
    VappClient pipelined = client();
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(pipelined.send(Opcode::GetFrames, payload));

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (server_->queueDepth() + server_->queueRejected() < 4 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // HEALTH bypasses the queue, so it answers even now.
    VappClient probe = client();
    auto health = probe.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->status, Status::Ok);
    EXPECT_EQ(health->queueDepth, 2u);
    EXPECT_EQ(health->queueCapacity, 2u);
    EXPECT_GE(health->queueRejected, 2u);
    EXPECT_EQ(health->videos, 1u);

    server_->setDrainPaused(false);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(pipelined.receive().has_value());
}

TEST_F(ServerLoopback, ScrubInvalidatesTheCache)
{
    startServer();
    PreparedVideo prepared = makePrepared(79);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    VappClient c = client();
    GetFramesRequest request;
    request.name = "clip";
    ASSERT_TRUE(c.getFrames(request).has_value());
    EXPECT_GT(server_->cache().entries(), 0u);

    ScrubRequest scrub;
    auto report = c.scrub(scrub);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->status, Status::Ok);
    EXPECT_EQ(report->videos, 1u);
    EXPECT_EQ(server_->cache().entries(), 0u);

    auto fresh = c.getFrames(request);
    ASSERT_TRUE(fresh.has_value());
    EXPECT_FALSE(fresh->fromCache);
}

TEST_F(ServerLoopback, SingleFlightColdGetsCoalesce)
{
    VappServerConfig config;
    config.workers = 2;
    startServer(config);
    PreparedVideo prepared = makePrepared(80);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    // Freeze the workers, then land N identical cold GETs: the
    // first becomes the decode leader (one queue slot), the rest
    // attach as waiters — deterministically, because flight
    // registration happens at admission on the one event-loop
    // thread, not in the worker race.
    server_->setDrainPaused(true);
    const std::size_t total = 5;
    std::vector<std::unique_ptr<VappClient>> clients;
    GetFramesRequest request;
    request.name = "clip";
    Bytes payload = serializeGetFramesRequest(request);
    for (std::size_t i = 0; i < total; ++i) {
        clients.push_back(std::make_unique<VappClient>());
        ASSERT_TRUE(
            clients.back()->connect("127.0.0.1", server_->port()));
        ASSERT_TRUE(
            clients.back()->send(Opcode::GetFrames, payload));
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (server_->coalescedGets() < total - 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(server_->coalescedGets(), total - 1);
    EXPECT_EQ(server_->queueDepth(), 1u);

    u64 gets_before = counterValue("archive.gets");
    server_->setDrainPaused(false);

    std::vector<GetFramesResponse> responses;
    std::size_t fresh = 0;
    for (auto &c : clients) {
        auto raw = c->receive();
        ASSERT_TRUE(raw.has_value());
        GetFramesResponse response;
        ASSERT_TRUE(
            parseGetFramesResponse(raw->payload, response));
        ASSERT_EQ(response.status, Status::Ok);
        if (!response.fromCache)
            ++fresh;
        responses.push_back(std::move(response));
    }
    // One decode served all five: the leader's fresh response plus
    // four byte-identical responses off the shared cache entry.
    EXPECT_EQ(fresh, 1u);
    for (std::size_t i = 1; i < responses.size(); ++i) {
        EXPECT_EQ(responses[i].i420, responses[0].i420);
        EXPECT_EQ(responses[i].firstFrame, responses[0].firstFrame);
        EXPECT_EQ(responses[i].frameCount,
                  responses[0].frameCount);
    }
    if (telemetry::kEnabled) {
        EXPECT_EQ(counterValue("archive.gets"), gets_before + 1);
        EXPECT_GE(counterValue("server.coalesced"), total - 1);
    }
}

TEST_F(ServerLoopback, PartialWritesResumeViaEpollout)
{
    VappServerConfig config;
    config.sndbufBytes = 4096; // tiny: force EAGAIN mid-response
    startServer(config);
    PreparedVideo prepared = makePrepared(81);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    ArchiveGetResult local = service_->get("clip");
    ASSERT_EQ(local.error, ArchiveError::None);
    auto ranges = gopRanges(local.frameHeaders,
                            local.decoded.frames.size());
    ASSERT_FALSE(ranges.empty());

    // A client that reads nothing for a while: with tiny socket
    // buffers on both ends the ~48 KiB response cannot fit in
    // flight, so the server must park the write mid-frame and
    // continue it when EPOLLOUT reports the socket drained.
    u64 stalls_before = counterValue("server.write_stalls");
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rcvbuf = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                 sizeof rcvbuf);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);

    GetFramesRequest request;
    request.name = "clip";
    Bytes frame =
        encodeFrame(static_cast<u8>(Opcode::GetFrames), 77,
                    serializeGetFramesRequest(request));
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    // Give the server time to decode and slam into the full socket.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    auto read_all = [fd](u8 *data, std::size_t size) {
        std::size_t off = 0;
        while (off < size) {
            ssize_t n = ::recv(fd, data + off, size - off, 0);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    };
    u8 header[kWireHeaderBytes];
    ASSERT_TRUE(read_all(header, sizeof header));
    WireFrameHeader parsed;
    ASSERT_EQ(parseFrameHeader(header, sizeof header, parsed),
              WireError::None);
    EXPECT_EQ(parsed.kind, static_cast<u8>(Status::Ok));
    EXPECT_EQ(parsed.requestId, 77u);
    Bytes body(parsed.payloadLength);
    u8 crc_buf[4];
    ASSERT_TRUE(read_all(body.data(), body.size()));
    ASSERT_TRUE(read_all(crc_buf, sizeof crc_buf));
    ::close(fd);

    // The reassembled response survived the stall byte for byte.
    u32 crc = static_cast<u32>(crc_buf[0]) << 24 |
              static_cast<u32>(crc_buf[1]) << 16 |
              static_cast<u32>(crc_buf[2]) << 8 |
              static_cast<u32>(crc_buf[3]);
    EXPECT_EQ(verifyPayload(body, crc), WireError::None);
    GetFramesResponse response;
    ASSERT_TRUE(parseGetFramesResponse(body, response));
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_EQ(response.i420,
              packFramesI420(local.decoded, ranges[0].firstFrame,
                             ranges[0].frameCount));
    if (telemetry::kEnabled)
        EXPECT_GT(counterValue("server.write_stalls"),
                  stalls_before);
}

TEST_F(ServerLoopback, ServerShutdownYieldsTypedConnectionClosed)
{
    startServer();
    PreparedVideo prepared = makePrepared(82);
    ASSERT_EQ(service_->put("clip", prepared, {}),
              ArchiveError::None);

    VappClient c = client();
    GetFramesRequest request;
    request.name = "clip";
    auto first = c.getFrames(request);
    ASSERT_TRUE(first.has_value());

    // Kill the server between frames: the next call must surface a
    // typed ConnectionClosed — never a silent short read — so a
    // pipelined caller can tell "the server went away, reconnect
    // and retry" from "a response was torn mid-frame".
    server_->stop();
    auto second = c.getFrames(request);
    EXPECT_FALSE(second.has_value());
    EXPECT_EQ(c.lastError(), WireError::ConnectionClosed);
}

// --- importance-aware load shedding -----------------------------------

/** Same loopback harness, separate suite name so the TSan job's
 * "Shed" regex picks these up. */
using ServerShed = ServerLoopback;

TEST_F(ServerShed, QueuePressureDegradesOnlyTheOverloadedTail)
{
    VappServerConfig config;
    config.queueCapacity = 4;
    config.workers = 2;
    config.shedThreshold = 1;
    startServer(config);
    for (u64 i = 0; i < 5; ++i)
        ASSERT_EQ(service_->put("clip" + std::to_string(i),
                                makePrepared(90 + i), {}),
                  ArchiveError::None);

    // Warm the cache for clip0 while the pool still drains.
    VappClient warm = client();
    GetFramesRequest request;
    request.gop = 0;
    request.conceal = true;
    request.name = "clip0";
    auto warmed = warm.getFrames(request);
    ASSERT_TRUE(warmed.has_value());
    ASSERT_EQ(warmed->status, Status::Ok);

    // Freeze the drain so admissions stack up. Distinct names keep
    // the requests out of single-flight coalescing (waiters do not
    // consume queue slots). Admission depths run 0,1,2,3 — only the
    // last one reaches 3/4 of capacity and is flagged for shedding.
    server_->setDrainPaused(true);
    std::vector<std::unique_ptr<VappClient>> clients;
    for (int i = 1; i <= 4; ++i) {
        request.name = "clip" + std::to_string(i);
        clients.push_back(std::make_unique<VappClient>());
        ASSERT_TRUE(
            clients.back()->connect("127.0.0.1", server_->port()));
        ASSERT_TRUE(clients.back()->send(
            Opcode::GetFrames, serializeGetFramesRequest(request)));
    }
    auto wait_deadline = std::chrono::steady_clock::now() +
                         std::chrono::seconds(10);
    while (server_->queueDepth() < 4 &&
           std::chrono::steady_clock::now() < wait_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server_->queueDepth(), 4u);

    // Cache hits stay full-fidelity even under pressure: the hit is
    // answered inline before the shed decision ever runs.
    request.name = "clip0";
    auto hit = warm.getFrames(request);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->status, Status::Ok);
    EXPECT_TRUE(hit->fromCache);

    server_->setDrainPaused(false);
    std::size_t ok = 0;
    int degraded_clip = -1;
    for (std::size_t i = 0; i < clients.size(); ++i) {
        auto raw = clients[i]->receive();
        ASSERT_TRUE(raw.has_value());
        GetFramesResponse response;
        ASSERT_TRUE(
            parseGetFramesResponse(raw->payload, response));
        if (response.status == Status::Degraded) {
            degraded_clip = static_cast<int>(i) + 1;
            // Fidelity loss is flagged and quantified.
            EXPECT_GT(response.streamsShed, 0u);
            EXPECT_GT(response.bytesShed, 0u);
            EXPECT_GT(response.shedDbEst, 0.0);
            EXPECT_FALSE(response.fromCache);
            EXPECT_FALSE(response.i420.empty());
        } else {
            EXPECT_EQ(response.status, Status::Ok);
            EXPECT_EQ(response.streamsShed, 0u);
            ++ok;
        }
    }
    EXPECT_EQ(ok, 3u);
    ASSERT_NE(degraded_clip, -1);
    EXPECT_EQ(server_->shedResponses(), 1u);

    // A degraded answer must never seed the cache: the next read of
    // that clip decodes fresh and comes back full-fidelity.
    VappClient again = client();
    request.name = "clip" + std::to_string(degraded_clip);
    auto full = again.getFrames(request);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(full->status, Status::Ok);
    EXPECT_EQ(full->streamsShed, 0u);

    // HEALTH surfaces both the knob and the running count.
    auto health = again.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->shedThreshold, 1u);
    EXPECT_EQ(health->shedResponses, 1u);
}

TEST_F(ServerShed, DeadlineRiskShedsInsteadOfMissing)
{
    VappServerConfig config;
    config.workers = 1;
    config.shedThreshold = 1;
    startServer(config);
    ASSERT_EQ(service_->put("clip", makePrepared(96), {}),
              ArchiveError::None);

    // Hold the job queued past half its deadline (but well short of
    // the whole deadline): the worker must choose degraded-on-time
    // over full-fidelity-late.
    server_->setDrainPaused(true);
    VappClient c = client();
    GetFramesRequest request;
    request.name = "clip";
    request.conceal = true;
    request.deadlineMs = 3000;
    ASSERT_TRUE(c.send(Opcode::GetFrames,
                       serializeGetFramesRequest(request)));
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1600));
    server_->setDrainPaused(false);

    auto raw = c.receive();
    ASSERT_TRUE(raw.has_value());
    GetFramesResponse response;
    ASSERT_TRUE(parseGetFramesResponse(raw->payload, response));
    EXPECT_EQ(response.status, Status::Degraded);
    EXPECT_GT(response.streamsShed, 0u);

    // The same deadline with an idle queue is met at full fidelity.
    auto relaxed = c.getFrames(request);
    ASSERT_TRUE(relaxed.has_value());
    EXPECT_EQ(relaxed->status, Status::Ok);
    EXPECT_EQ(relaxed->streamsShed, 0u);
}

TEST_F(ServerShed, DisabledThresholdNeverDegrades)
{
    VappServerConfig config;
    config.queueCapacity = 4;
    config.workers = 2;
    startServer(config); // shedThreshold left 0
    for (u64 i = 0; i < 4; ++i)
        ASSERT_EQ(service_->put("clip" + std::to_string(i),
                                makePrepared(120 + i), {}),
                  ArchiveError::None);

    server_->setDrainPaused(true);
    std::vector<std::unique_ptr<VappClient>> clients;
    for (int i = 0; i < 4; ++i) {
        GetFramesRequest request;
        request.name = "clip" + std::to_string(i);
        clients.push_back(std::make_unique<VappClient>());
        ASSERT_TRUE(
            clients.back()->connect("127.0.0.1", server_->port()));
        ASSERT_TRUE(clients.back()->send(
            Opcode::GetFrames, serializeGetFramesRequest(request)));
    }
    auto wait_deadline = std::chrono::steady_clock::now() +
                         std::chrono::seconds(10);
    while (server_->queueDepth() < 4 &&
           std::chrono::steady_clock::now() < wait_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server_->setDrainPaused(false);

    for (auto &c : clients) {
        auto raw = c->receive();
        ASSERT_TRUE(raw.has_value());
        GetFramesResponse response;
        ASSERT_TRUE(
            parseGetFramesResponse(raw->payload, response));
        EXPECT_EQ(response.status, Status::Ok);
        EXPECT_EQ(response.streamsShed, 0u);
    }
    EXPECT_EQ(server_->shedResponses(), 0u);
}

// --- concurrency ------------------------------------------------------

TEST(ServerConcurrency, MixedLoopbackLoadLosesNothing)
{
    std::string path = tempPath("concurrency");
    std::remove(path.c_str());
    ArchiveService service(path);
    ASSERT_EQ(service.open(true), ArchiveError::None);

    VappServerConfig config;
    config.port = 0;
    config.workers = 4;
    VappServer server(service, config);
    ASSERT_TRUE(server.start());

    // N clients, each on its own connection: one put, then gets of
    // its own video interleaved with everyone's scrubs and stats.
    const int clients = 6;
    const int gets_per_client = 3;
    std::vector<Video> sources;
    for (int i = 0; i < clients; ++i)
        sources.push_back(generateSynthetic(
            tinySpec(300 + static_cast<u64>(i))));

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&, i] {
            VappClient c;
            if (!c.connect("127.0.0.1", server.port())) {
                ++failures;
                return;
            }
            const Video &source = sources[static_cast<size_t>(i)];
            PutRequest put;
            put.name = "clip" + std::to_string(i);
            put.width = static_cast<u16>(source.width());
            put.height = static_cast<u16>(source.height());
            put.frameCount =
                static_cast<u32>(source.frames.size());
            put.i420 =
                packFramesI420(source, 0, source.frames.size());
            auto stored = c.put(put);
            if (!stored || stored->status != Status::Ok) {
                ++failures;
                return;
            }
            for (int g = 0; g < gets_per_client; ++g) {
                GetFramesRequest request;
                request.name = put.name;
                auto response = c.getFrames(request);
                if (!response ||
                    response->status != Status::Ok) {
                    ++failures;
                    return;
                }
                if (i % 2 == 0) {
                    auto listing = c.stat();
                    if (!listing ||
                        listing->status != Status::Ok)
                        ++failures;
                } else {
                    ScrubRequest scrub;
                    auto report = c.scrub(scrub);
                    if (!report ||
                        report->status != Status::Ok)
                        ++failures;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    // Every request got its response and every video survived the
    // chaos with deterministic contents: a fresh read through the
    // service matches a fresh read over the wire.
    EXPECT_EQ(failures.load(), 0);
    ASSERT_EQ(service.videoCount(),
              static_cast<std::size_t>(clients));
    VappClient check;
    ASSERT_TRUE(check.connect("127.0.0.1", server.port()));
    for (int i = 0; i < clients; ++i) {
        std::string name = "clip" + std::to_string(i);
        ArchiveGetResult local = service.get(name);
        ASSERT_EQ(local.error, ArchiveError::None);
        auto ranges = gopRanges(local.frameHeaders,
                                local.decoded.frames.size());
        GetFramesRequest request;
        request.name = name;
        auto response = check.getFrames(request);
        ASSERT_TRUE(response.has_value());
        ASSERT_EQ(response->status, Status::Ok);
        EXPECT_EQ(response->i420,
                  packFramesI420(local.decoded,
                                 ranges[0].firstFrame,
                                 ranges[0].frameCount));
    }

    server.stop();
    std::remove(path.c_str());
}

} // namespace
} // namespace videoapp
