/**
 * @file
 * Intra 4x4 prediction tests: mode formulas on known inputs,
 * availability rules, mode prediction, dependency weights, syntax
 * round trip, and the end-to-end compression benefit.
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/intra4.h"
#include "quality/psnr.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

Intra4Neighbors
rampNeighbors()
{
    // above = 10,20,...,80; left = 100,110,120,130; corner = 5.
    Intra4Neighbors n;
    for (int i = 0; i < 8; ++i)
        n.above[static_cast<std::size_t>(i)] =
            static_cast<u8>(10 * (i + 1));
    for (int i = 0; i < 4; ++i)
        n.left[static_cast<std::size_t>(i)] =
            static_cast<u8>(100 + 10 * i);
    n.corner = 5;
    n.aboveAvail = true;
    n.leftAvail = true;
    n.cornerAvail = true;
    return n;
}

TEST(Intra4, VerticalCopiesAboveRow)
{
    u8 out[16];
    predictIntra4(rampNeighbors(), Intra4Mode::Vertical, out);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            EXPECT_EQ(out[y * 4 + x], 10 * (x + 1));
}

TEST(Intra4, HorizontalCopiesLeftColumn)
{
    u8 out[16];
    predictIntra4(rampNeighbors(), Intra4Mode::Horizontal, out);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            EXPECT_EQ(out[y * 4 + x], 100 + 10 * y);
}

TEST(Intra4, DcAveragesAvailableBorders)
{
    u8 out[16];
    predictIntra4(rampNeighbors(), Intra4Mode::DC, out);
    // (10+20+30+40 + 100+110+120+130 + 4) / 8 = 70.5 -> 70
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], 70);

    Intra4Neighbors none;
    predictIntra4(none, Intra4Mode::DC, out);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], 128);
}

TEST(Intra4, DiagonalDownLeftFollowsStandardTaps)
{
    u8 out[16];
    predictIntra4(rampNeighbors(), Intra4Mode::DiagDownLeft, out);
    // pred[0][0] = (A + 2B + C + 2) >> 2 = (10+40+30+2)>>2 = 20.
    EXPECT_EQ(out[0], 20);
    // Corner pixel (3,3) = (G + 3H + 2) >> 2 = (70+240+2)>>2 = 78.
    EXPECT_EQ(out[15], 78);
}

TEST(Intra4, DiagonalDownRightDiagonalUsesCorner)
{
    u8 out[16];
    predictIntra4(rampNeighbors(), Intra4Mode::DiagDownRight, out);
    // Main diagonal = (A + 2M + I + 2) >> 2 = (10+10+100+2)>>2 = 30.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[i * 4 + i], 30);
}

TEST(Intra4, UnavailableModeFallsBackToDc)
{
    Intra4Neighbors n = rampNeighbors();
    n.leftAvail = false;
    u8 out[16];
    predictIntra4(n, Intra4Mode::Horizontal, out);
    // Falls back to DC over the above row: (10+20+30+40+2)/4 = 25.
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], 25);
}

TEST(Intra4, AvailabilityRules)
{
    Intra4Neighbors n = rampNeighbors();
    EXPECT_TRUE(intra4ModeAvailable(Intra4Mode::DiagDownRight, n));
    n.cornerAvail = false;
    EXPECT_FALSE(intra4ModeAvailable(Intra4Mode::DiagDownRight, n));
    EXPECT_TRUE(intra4ModeAvailable(Intra4Mode::DC, n));
    n.aboveAvail = false;
    EXPECT_FALSE(intra4ModeAvailable(Intra4Mode::Vertical, n));
    EXPECT_TRUE(intra4ModeAvailable(Intra4Mode::HorizontalUp, n));
}

TEST(Intra4, ModePredictionIsMinRule)
{
    EXPECT_EQ(predictIntra4Mode(true, Intra4Mode::Horizontal, true,
                                Intra4Mode::Vertical),
              Intra4Mode::Vertical);
    EXPECT_EQ(predictIntra4Mode(false, Intra4Mode::Horizontal, true,
                                Intra4Mode::VerticalLeft),
              Intra4Mode::DC);
    EXPECT_EQ(predictIntra4Mode(false, Intra4Mode::DC, false,
                                Intra4Mode::DC),
              Intra4Mode::DC);
}

TEST(Intra4, DependencyWeightsSumToOne)
{
    MbCoding mb;
    mb.intra = true;
    mb.intra4 = true;
    for (int blk = 0; blk < 16; ++blk)
        mb.intra4Modes[blk] = static_cast<u8>(blk % kIntra4ModeCount);
    auto deps = intra4Dependencies(mb, true, true, true, true);
    ASSERT_FALSE(deps.empty());
    double sum = 0;
    for (const auto &d : deps)
        sum += d.weight;
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // No neighbours at all: no dependencies.
    EXPECT_TRUE(
        intra4Dependencies(mb, false, false, false, false).empty());
}

TEST(Intra4, GatherReplicatesAboveRightWhenUnavailable)
{
    Plane recon(32, 32, 0);
    for (int x = 0; x < 32; ++x)
        recon.at(x, 7) = static_cast<u8>(x);
    Intra4Neighbors n =
        gatherIntra4Neighbors(recon, 8, 8, true, true, true, false);
    EXPECT_EQ(n.above[3], 11);
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(n.above[static_cast<std::size_t>(i)], 11);
    Intra4Neighbors with =
        gatherIntra4Neighbors(recon, 8, 8, true, true, true, true);
    EXPECT_EQ(with.above[4], 12);
    EXPECT_EQ(with.above[7], 15);
}

// --- End to end -----------------------------------------------------------

TEST(Intra4, ImprovesIntraCompressionOnDetailedContent)
{
    // Busy content with fine detail: intra4x4 must shrink I frames
    // or improve quality at the same size.
    SyntheticSpec spec = tinySpec(96);
    spec.textureCells = 12;
    spec.noiseSigma = 2.0;
    Video source = generateSynthetic(spec);

    EncoderConfig with, without;
    with.gop.gopSize = 4; // intra heavy
    without.gop.gopSize = 4;
    with.intra4x4 = true;
    without.intra4x4 = false;

    EncodeResult r_with = encodeVideo(source, with);
    EncodeResult r_without = encodeVideo(source, without);
    double psnr_with =
        psnrVideo(source, decodeVideo(r_with.video));
    double psnr_without =
        psnrVideo(source, decodeVideo(r_without.video));

    // Rate-distortion win: either fewer bits at no quality loss or
    // better quality at no size increase (allow small tolerances).
    double bits_ratio =
        static_cast<double>(r_with.video.payloadBits()) /
        r_without.video.payloadBits();
    EXPECT_TRUE((bits_ratio < 1.02 && psnr_with > psnr_without) ||
                (bits_ratio < 0.98 &&
                 psnr_with > psnr_without - 0.2))
        << "bits ratio " << bits_ratio << " psnr " << psnr_with
        << " vs " << psnr_without;
}

TEST(Intra4, EncoderActuallyChoosesIntra4)
{
    SyntheticSpec spec = tinySpec(97);
    spec.noiseSigma = 2.0;
    Video source = generateSynthetic(spec);
    EncoderConfig config;
    config.gop.gopSize = 4;
    EncodeResult enc = encodeVideo(source, config);

    // Count intra4 MBs via the grid-visible state: re-decode and
    // inspect nothing — instead check bit savings indirectly by
    // requiring at least some intra MBs exist and the stream decodes
    // to parity (the fuzz suite covers parity; here we check usage).
    int intra_mbs = 0;
    for (const auto &frame : enc.side.frames)
        for (const auto &mb : frame.mbs)
            intra_mbs += mb.intra;
    EXPECT_GT(intra_mbs, 0);
}

} // namespace
} // namespace videoapp
