/**
 * @file
 * Cluster tier tests: consistent-hash ring determinism, balance and
 * successor sets; a 3-shard loopback cluster whose routed reads are
 * byte-identical to a single-node server; one-hop forwarding of
 * mis-targeted requests; precise-metadata replication on PUT and
 * metadata-only repair on GET when the owner's precise record is
 * damaged (including with one successor shard killed); PUT
 * invalidating cached GOPs on both single-node and routed paths;
 * bounded client retry under backpressure; and the budgeted scrub
 * scheduler's deferral/overrun behavior. (Suite names contain
 * "Cluster" so the TSan CI job picks them up.)
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive_service.h"
#include "cluster/cluster_node.h"
#include "cluster/cluster_router.h"
#include "cluster/hash_ring.h"
#include "cluster/scrub_scheduler.h"
#include "common/telemetry.h"
#include "server/vapp_client.h"
#include "server/vapp_server.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "cluster_test_" + name + ".vapp";
}

PreparedVideo
makePrepared(u64 seed)
{
    Video source = generateSynthetic(tinySpec(seed));
    EncoderConfig config;
    config.gop.gopSize = 8;
    config.gop.bFrames = 2;
    return prepareVideo(source, config,
                        EccAssignment::paperTable1());
}

PutRequest
makePutRequest(const std::string &name, u64 seed)
{
    Video source = generateSynthetic(tinySpec(seed));
    PutRequest put;
    put.name = name;
    put.width = static_cast<u16>(source.width());
    put.height = static_cast<u16>(source.height());
    put.frameCount = static_cast<u32>(source.frames.size());
    put.i420 = packFramesI420(source, 0, source.frames.size());
    return put;
}

u64
counterValue(const char *name)
{
    return telemetry::globalRegistry().counter(name).value();
}

// --- hash ring --------------------------------------------------------

TEST(ClusterRing, PlacementIsDeterministicAcrossInstances)
{
    HashRing a({0, 1, 2}, 64);
    HashRing b({2, 0, 1, 1}, 64); // order and duplicates irrelevant
    ASSERT_EQ(a.shardCount(), 3u);
    ASSERT_EQ(b.shardCount(), 3u);
    for (int i = 0; i < 500; ++i) {
        const std::string name = "video-" + std::to_string(i);
        EXPECT_EQ(a.ownerOf(name), b.ownerOf(name));
        EXPECT_EQ(a.successors(name, 2), b.successors(name, 2));
    }
}

TEST(ClusterRing, PlacementIsRoughlyBalanced)
{
    HashRing ring({0, 1, 2}, 64);
    std::vector<int> hits(3, 0);
    const int names = 3000;
    for (int i = 0; i < names; ++i)
        ++hits[ring.ownerOf("clip/" + std::to_string(i))];
    // Virtual nodes keep the split within a loose band of fair
    // share (1000 each); a broken ring sends everything to one.
    for (int shard = 0; shard < 3; ++shard) {
        EXPECT_GT(hits[shard], names / 6);
        EXPECT_LT(hits[shard], names * 3 / 5);
    }
}

TEST(ClusterRing, SuccessorsAreDistinctAndExcludeTheOwner)
{
    HashRing ring({0, 1, 2, 3}, 32);
    for (int i = 0; i < 200; ++i) {
        const std::string name = "v" + std::to_string(i);
        const u32 owner = ring.ownerOf(name);
        std::vector<u32> successors = ring.successors(name, 2);
        ASSERT_EQ(successors.size(), 2u);
        std::set<u32> seen(successors.begin(), successors.end());
        EXPECT_EQ(seen.size(), 2u);
        EXPECT_EQ(seen.count(owner), 0u);
    }
    // More replicas than peers exist: every other shard, no more.
    EXPECT_EQ(ring.successors("v0", 99).size(), 3u);
}

TEST(ClusterRing, RemovingAShardOnlyMovesItsNames)
{
    HashRing full({0, 1, 2}, 64);
    HashRing reduced({0, 1}, 64);
    int moved = 0;
    const int names = 2000;
    for (int i = 0; i < names; ++i) {
        const std::string name = "n" + std::to_string(i);
        const u32 before = full.ownerOf(name);
        const u32 after = reduced.ownerOf(name);
        if (before != 2)
            // Names not owned by the removed shard must not move —
            // the consistent-hashing property.
            EXPECT_EQ(after, before);
        else
            ++moved;
    }
    EXPECT_GT(moved, 0);
}

// --- loopback cluster -------------------------------------------------

constexpr u32 kShards = 3;

/** Three archive shards, each a VappServer + ClusterNode. */
class ClusterLoopback : public ::testing::Test
{
  protected:
    void
    startCluster(u32 replicas = 2, VappServerConfig base = {})
    {
        const std::string test = ::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name();
        for (u32 i = 0; i < kShards; ++i) {
            paths_[i] = tempPath(test + "_s" + std::to_string(i));
            std::remove(paths_[i].c_str());
            services_[i] =
                std::make_unique<ArchiveService>(paths_[i]);
            ASSERT_EQ(services_[i]->open(true),
                      ArchiveError::None);
            ClusterNodeConfig node;
            node.selfId = i;
            node.replicas = replicas;
            node.vnodes = 64;
            node.epoch = 1;
            nodes_[i] = std::make_unique<ClusterNode>(
                *services_[i], node);
            VappServerConfig config = base;
            config.port = 0;
            config.cluster = nodes_[i].get();
            servers_[i] = std::make_unique<VappServer>(
                *services_[i], config);
            ASSERT_TRUE(servers_[i]->start());
        }
        shards_.clear();
        for (u32 i = 0; i < kShards; ++i)
            shards_.push_back(
                {i, "127.0.0.1", servers_[i]->port()});
        for (u32 i = 0; i < kShards; ++i)
            nodes_[i]->setTopology(shards_, 1);
    }

    void
    TearDown() override
    {
        for (u32 i = 0; i < kShards; ++i) {
            if (servers_[i])
                servers_[i]->stop();
            if (!paths_[i].empty())
                std::remove(paths_[i].c_str());
        }
    }

    ClusterRouter
    router()
    {
        ClusterRouterConfig config;
        config.seeds = shards_;
        return ClusterRouter(config);
    }

    VappClient
    clientTo(u32 shard)
    {
        VappClient c;
        EXPECT_TRUE(
            c.connect("127.0.0.1", servers_[shard]->port()));
        return c;
    }

    std::string paths_[kShards];
    std::unique_ptr<ArchiveService> services_[kShards];
    std::unique_ptr<ClusterNode> nodes_[kShards];
    std::unique_ptr<VappServer> servers_[kShards];
    std::vector<ClusterShard> shards_;
};

TEST_F(ClusterLoopback, RouterLearnsTopologyFromOneSeed)
{
    startCluster();
    ClusterRouterConfig config;
    config.seeds = {shards_[0]}; // one live entry point suffices
    ClusterRouter r(config);
    ASSERT_TRUE(r.refresh());
    EXPECT_TRUE(r.ready());
    EXPECT_EQ(r.shardCount(), kShards);
    EXPECT_EQ(r.epoch(), 1u);
    // The router and every node agree on placement byte for byte.
    for (int i = 0; i < 100; ++i) {
        const std::string name = "clip" + std::to_string(i);
        EXPECT_EQ(r.ownerOf(name), nodes_[0]->ownerOf(name));
    }
}

TEST_F(ClusterLoopback, ClusterInfoOnStandaloneServerIsAnError)
{
    // A server without a cluster peer must refuse CLUSTER_INFO.
    std::string path = tempPath("standalone");
    std::remove(path.c_str());
    ArchiveService service(path);
    ASSERT_EQ(service.open(true), ArchiveError::None);
    VappServer server(service, {});
    ASSERT_TRUE(server.start());
    VappClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(c.send(Opcode::ClusterInfo, Bytes{}));
    auto raw = c.receive();
    ASSERT_TRUE(raw.has_value());
    EXPECT_EQ(raw->kind, static_cast<u8>(Status::Error));
    server.stop();
    std::remove(path.c_str());
}

TEST_F(ClusterLoopback, RoutedGetMatchesSingleNodeByteForByte)
{
    startCluster();
    // Reference: the same video stored in a standalone server.
    std::string ref_path = tempPath("reference");
    std::remove(ref_path.c_str());
    ArchiveService reference(ref_path);
    ASSERT_EQ(reference.open(true), ArchiveError::None);
    VappServer ref_server(reference, {});
    ASSERT_TRUE(ref_server.start());
    VappClient ref_client;
    ASSERT_TRUE(
        ref_client.connect("127.0.0.1", ref_server.port()));

    ClusterRouter r = router();
    for (u64 seed : {201, 202, 203}) {
        const std::string name = "clip" + std::to_string(seed);
        PutRequest put = makePutRequest(name, seed);
        auto routed_put = r.put(put);
        ASSERT_TRUE(routed_put.has_value());
        ASSERT_EQ(routed_put->status, Status::Ok);
        auto ref_put = ref_client.put(put);
        ASSERT_TRUE(ref_put.has_value());
        ASSERT_EQ(ref_put->status, Status::Ok);
        // Identical bytes in -> identical archive accounting.
        EXPECT_EQ(routed_put->payloadBytes, ref_put->payloadBytes);
        EXPECT_EQ(routed_put->cellBytes, ref_put->cellBytes);

        GetFramesRequest request;
        request.name = name;
        request.gop = 0;
        auto first = r.getFrames(request);
        ASSERT_TRUE(first.has_value());
        ASSERT_EQ(first->status, Status::Ok);
        for (u32 g = 0; g < first->gopCount; ++g) {
            request.gop = g;
            auto routed = r.getFrames(request);
            auto ref = ref_client.getFrames(request);
            ASSERT_TRUE(routed.has_value());
            ASSERT_TRUE(ref.has_value());
            ASSERT_EQ(routed->status, Status::Ok);
            ASSERT_EQ(ref->status, Status::Ok);
            // The acceptance bar: a routed GET against the 3-shard
            // cluster is byte-identical to the single-node read.
            EXPECT_EQ(routed->i420, ref->i420);
            EXPECT_EQ(routed->firstFrame, ref->firstFrame);
            EXPECT_EQ(routed->frameCount, ref->frameCount);
        }
    }
    // The directory merge sees every clip exactly once.
    auto listing = r.stat();
    ASSERT_TRUE(listing.has_value());
    EXPECT_EQ(listing->videos.size(), 3u);
    ref_server.stop();
    std::remove(ref_path.c_str());
}

TEST_F(ClusterLoopback, MisdirectedRequestIsForwardedOneHop)
{
    startCluster();
    ClusterRouter r = router();
    const std::string name = "forwarded-clip";
    auto stored = r.put(makePutRequest(name, 303));
    ASSERT_TRUE(stored.has_value());
    ASSERT_EQ(stored->status, Status::Ok);

    const u32 owner = nodes_[0]->ownerOf(name);
    const u32 wrong = (owner + 1) % kShards;
    const u64 forwards_before = counterValue("server.forwards");

    // A client that ignores placement and asks the wrong shard
    // still gets the right answer, one hop later.
    VappClient naive = clientTo(wrong);
    GetFramesRequest request;
    request.name = name;
    auto via_wrong = naive.getFrames(request);
    ASSERT_TRUE(via_wrong.has_value());
    ASSERT_EQ(via_wrong->status, Status::Ok);

    VappClient direct = clientTo(owner);
    auto via_owner = direct.getFrames(request);
    ASSERT_TRUE(via_owner.has_value());
    ASSERT_EQ(via_owner->status, Status::Ok);
    EXPECT_EQ(via_wrong->i420, via_owner->i420);
    if (telemetry::kEnabled)
        EXPECT_GT(counterValue("server.forwards"),
                  forwards_before);
    // Only the owner holds the record; the wrong shard never did.
    EXPECT_EQ(services_[wrong]->videoCount(), 0u);
}

TEST_F(ClusterLoopback, PutReplicatesPreciseMetaToSuccessors)
{
    startCluster(/*replicas=*/2);
    ClusterRouter r = router();
    const std::string name = "replicated-clip";
    auto stored = r.put(makePutRequest(name, 304));
    ASSERT_TRUE(stored.has_value());
    ASSERT_EQ(stored->status, Status::Ok);

    const u32 owner = nodes_[0]->ownerOf(name);
    std::vector<u32> successors = nodes_[owner]->successorsOf(name);
    ASSERT_EQ(successors.size(), 2u);
    // Replication is synchronous within the PUT: by response time
    // every successor holds the validated precise-meta blob, and
    // it matches the owner's export byte for byte.
    const Bytes exported = services_[owner]->exportMeta(name);
    ASSERT_FALSE(exported.empty());
    for (u32 s : successors) {
        EXPECT_NE(s, owner);
        EXPECT_EQ(services_[s]->replicaMeta(name), exported);
    }
    // The cells live on the owner alone (single-copy approximate
    // data): successors hold metadata only.
    for (u32 i = 0; i < kShards; ++i)
        EXPECT_EQ(services_[i]->videoCount(),
                  i == owner ? 1u : 0u);
}

TEST_F(ClusterLoopback, DamagedOwnerMetaRepairsFromReplicaOnGet)
{
    // No GOP cache: every GET must read the precise record, so the
    // damaged-metadata path actually executes.
    VappServerConfig base;
    base.cacheBytes = 0;
    startCluster(/*replicas=*/2, base);
    ClusterRouter r = router();
    const std::string name = "repairable-clip";
    auto stored = r.put(makePutRequest(name, 305));
    ASSERT_TRUE(stored.has_value());
    ASSERT_EQ(stored->status, Status::Ok);

    GetFramesRequest request;
    request.name = name;
    auto before = r.getFrames(request);
    ASSERT_TRUE(before.has_value());
    ASSERT_EQ(before->status, Status::Ok);

    const u32 owner = nodes_[0]->ownerOf(name);
    const u64 repairs_before =
        counterValue("archive.meta_repairs");
    ASSERT_TRUE(services_[owner]->damageMetaForTest(name));
    // The damaged precise record would fail every read; the owner
    // pulls the replica blob back, re-anchors, and serves — bytes
    // identical to the pre-damage read.
    auto after = r.getFrames(request);
    ASSERT_TRUE(after.has_value());
    ASSERT_EQ(after->status, Status::Ok);
    EXPECT_EQ(after->i420, before->i420);
    if (telemetry::kEnabled) {
        EXPECT_GT(counterValue("archive.meta_repairs"),
                  repairs_before);
        EXPECT_GT(counterValue("server.get.meta_repaired"), 0u);
    }
    // The repair is durable: a direct local read is clean again.
    EXPECT_EQ(services_[owner]->get(name).error,
              ArchiveError::None);
}

TEST_F(ClusterLoopback, MetaRepairSurvivesAKilledSuccessor)
{
    VappServerConfig base;
    base.cacheBytes = 0; // force the GET through the precise record
    startCluster(/*replicas=*/2, base);
    ClusterRouter r = router();
    const std::string name = "resilient-clip";
    auto stored = r.put(makePutRequest(name, 306));
    ASSERT_TRUE(stored.has_value());
    ASSERT_EQ(stored->status, Status::Ok);

    GetFramesRequest request;
    request.name = name;
    auto before = r.getFrames(request);
    ASSERT_TRUE(before.has_value());
    ASSERT_EQ(before->status, Status::Ok);

    const u32 owner = nodes_[0]->ownerOf(name);
    std::vector<u32> successors = nodes_[owner]->successorsOf(name);
    ASSERT_EQ(successors.size(), 2u);
    // Kill the first successor; the replica on the second still
    // repairs the owner's damaged record.
    servers_[successors[0]]->stop();
    ASSERT_TRUE(services_[owner]->damageMetaForTest(name));
    auto after = r.getFrames(request);
    ASSERT_TRUE(after.has_value());
    ASSERT_EQ(after->status, Status::Ok);
    EXPECT_EQ(after->i420, before->i420);
    // The surviving replica really did the repair.
    EXPECT_EQ(services_[owner]->get(name).error,
              ArchiveError::None);

    // The merged directory still answers from the live shards.
    auto listing = r.stat();
    ASSERT_TRUE(listing.has_value());
    EXPECT_EQ(listing->videos.size(), 1u);
}

TEST_F(ClusterLoopback, RePutInvalidatesCachedGopsWhenRouted)
{
    startCluster();
    ClusterRouter r = router();
    const std::string name = "mutable-clip";
    ASSERT_TRUE(r.put(makePutRequest(name, 401)).has_value());

    GetFramesRequest request;
    request.name = name;
    auto first = r.getFrames(request);
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->status, Status::Ok);
    // Warm the cache, then replace the video under the same name.
    auto warm = r.getFrames(request);
    ASSERT_TRUE(warm.has_value());
    EXPECT_TRUE(warm->fromCache);

    ASSERT_TRUE(r.put(makePutRequest(name, 402)).has_value());
    auto replaced = r.getFrames(request);
    ASSERT_TRUE(replaced.has_value());
    ASSERT_EQ(replaced->status, Status::Ok);
    // Stale cached GOPs of the old content must not be served.
    EXPECT_FALSE(replaced->fromCache);
    EXPECT_NE(replaced->i420, first->i420);

    const u32 owner = nodes_[0]->ownerOf(name);
    ArchiveGetResult local = services_[owner]->get(name);
    ASSERT_EQ(local.error, ArchiveError::None);
    auto ranges = gopRanges(local.frameHeaders,
                            local.decoded.frames.size());
    EXPECT_EQ(replaced->i420,
              packFramesI420(local.decoded, ranges[0].firstFrame,
                             ranges[0].frameCount));
}

// --- single-node cache invalidation (same bar, no cluster) ------------

TEST(ClusterSingleNode, RePutInvalidatesCachedGops)
{
    std::string path = tempPath("single_reput");
    std::remove(path.c_str());
    ArchiveService service(path);
    ASSERT_EQ(service.open(true), ArchiveError::None);
    VappServer server(service, {});
    ASSERT_TRUE(server.start());
    VappClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", server.port()));

    ASSERT_TRUE(c.put(makePutRequest("clip", 411)).has_value());
    GetFramesRequest request;
    request.name = "clip";
    auto first = c.getFrames(request);
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->status, Status::Ok);
    auto warm = c.getFrames(request);
    ASSERT_TRUE(warm.has_value());
    EXPECT_TRUE(warm->fromCache);

    ASSERT_TRUE(c.put(makePutRequest("clip", 412)).has_value());
    auto replaced = c.getFrames(request);
    ASSERT_TRUE(replaced.has_value());
    ASSERT_EQ(replaced->status, Status::Ok);
    EXPECT_FALSE(replaced->fromCache);
    EXPECT_NE(replaced->i420, first->i420);

    ArchiveGetResult local = service.get("clip");
    ASSERT_EQ(local.error, ArchiveError::None);
    auto ranges = gopRanges(local.frameHeaders,
                            local.decoded.frames.size());
    EXPECT_EQ(replaced->i420,
              packFramesI420(local.decoded, ranges[0].firstFrame,
                             ranges[0].frameCount));
    server.stop();
    std::remove(path.c_str());
}

// --- client retry -----------------------------------------------------

TEST(ClusterClientRetry, BoundedRetryAbsorbsBackpressure)
{
    std::string path = tempPath("retry");
    std::remove(path.c_str());
    ArchiveService service(path);
    ASSERT_EQ(service.open(true), ArchiveError::None);
    VappServerConfig config;
    config.queueCapacity = 1;
    config.workers = 1;
    VappServer server(service, config);
    ASSERT_TRUE(server.start());

    // Freeze the drain and fill the one queue slot, so the next
    // request is answered Status::Retry deterministically.
    server.setDrainPaused(true);
    VappClient filler;
    ASSERT_TRUE(filler.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(filler.send(Opcode::Stat, Bytes{}));

    // Give the event loop a moment to admit the filler's request.
    for (int i = 0; i < 100 && server.queueDepth() == 0; ++i)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1));
    ASSERT_EQ(server.queueDepth(), 1u);

    const u64 retries_before = counterValue("client.retries");

    VappClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
    // No retry policy: the backpressure answer surfaces as-is.
    auto rejected = c.stat();
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(rejected->status, Status::Retry);

    RetryPolicy policy;
    policy.maxRetries = 10;
    policy.initialBackoffMs = 2;
    policy.maxBackoffMs = 64;
    policy.jitterSeed = 7;
    c.setRetryPolicy(policy);
    // Unfreeze the drain while the retrying call is backing off.
    std::thread unpauser([&server] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(30));
        server.setDrainPaused(false);
    });
    auto eventually = c.stat();
    unpauser.join();
    ASSERT_TRUE(eventually.has_value());
    EXPECT_EQ(eventually->status, Status::Ok);
    if (telemetry::kEnabled)
        EXPECT_GT(counterValue("client.retries"), retries_before);
    // The filler's parked response still arrives (nothing lost).
    auto parked = filler.receive();
    ASSERT_TRUE(parked.has_value());
    EXPECT_EQ(parked->kind, static_cast<u8>(Status::Ok));
    server.stop();
    std::remove(path.c_str());
}

// --- re-key across the cluster ----------------------------------------

TEST_F(ClusterLoopback, RekeyedRecordsReadBackThroughTheRouter)
{
    // Cache off: every routed read after the re-key must travel the
    // full BCH + decrypt path, not a stale cached decode.
    VappServerConfig base;
    base.cacheBytes = 0;
    startCluster(2, base);

    const Bytes old_key(32, 0x5F);
    const Bytes new_key(32, 0xA3);
    ClusterRouter r = router();

    // Three encrypted clips, spread over the ring by name.
    std::vector<std::string> names;
    std::map<std::string, Bytes> before;
    for (u64 seed : {301, 302, 303}) {
        const std::string name = "clip" + std::to_string(seed);
        names.push_back(name);
        PutRequest put = makePutRequest(name, seed);
        put.key = old_key;
        put.cipherMode = static_cast<u8>(CipherMode::CTR);
        put.keyId = 1;
        put.ivSeed = seed;
        auto stored = r.put(put);
        ASSERT_TRUE(stored.has_value());
        ASSERT_EQ(stored->status, Status::Ok);

        GetFramesRequest request;
        request.name = name;
        request.gop = 0;
        request.key = old_key;
        auto got = r.getFrames(request);
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(got->status, Status::Ok);
        before[name] = got->i420;
    }

    // Rotate every shard to the new key epoch.
    EncryptionConfig new_enc;
    new_enc.mode = CipherMode::CTR;
    new_enc.key = new_key;
    new_enc.keyId = 2;
    new_enc.masterIv[0] = 0x42;
    u64 rekeyed = 0;
    for (u32 i = 0; i < kShards; ++i) {
        RekeyReport report = services_[i]->rekey(old_key, new_enc);
        EXPECT_EQ(report.keyMismatches, 0u);
        EXPECT_EQ(report.skipped, 0u);
        rekeyed += report.videos;
    }
    EXPECT_EQ(rekeyed, names.size());

    for (const std::string &name : names) {
        // Routed read under the new key: byte-exact with the
        // pre-rotation read — zero precise-data loss.
        GetFramesRequest request;
        request.name = name;
        request.gop = 0;
        request.key = new_key;
        auto got = r.getFrames(request);
        ASSERT_TRUE(got.has_value()) << name;
        ASSERT_EQ(got->status, Status::Ok) << name;
        EXPECT_EQ(got->i420, before.at(name)) << name;

        // The stale key is refused, not garbled.
        request.key = old_key;
        auto stale = r.getFrames(request);
        ASSERT_TRUE(stale.has_value());
        EXPECT_EQ(stale->status, Status::KeyRequired);

        // Injected routed reads stay bit-exact with a shard-local
        // read at the same seed — inside the 0.1 dB parity bar.
        request.key = new_key;
        request.injectRawBer = 1e-3;
        request.seed = 77;
        request.conceal = true;
        auto noisy = r.getFrames(request);
        ASSERT_TRUE(noisy.has_value());
        ASSERT_TRUE(noisy->status == Status::Ok ||
                    noisy->status == Status::Partial);

        ArchiveGetOptions local;
        local.key = new_key;
        local.injectRawBer = 1e-3;
        local.seed = 77;
        local.conceal = true;
        ArchiveGetResult reference =
            services_[r.ownerOf(name)]->get(name, local);
        ASSERT_EQ(reference.error, ArchiveError::None);
        auto ranges = gopRanges(reference.frameHeaders,
                                reference.decoded.frames.size());
        ASSERT_FALSE(ranges.empty());
        EXPECT_EQ(noisy->i420,
                  packFramesI420(reference.decoded,
                                 ranges[0].firstFrame,
                                 ranges[0].frameCount))
            << name;
    }
}

// --- scrub scheduler --------------------------------------------------

TEST(ClusterScrub, BudgetedSchedulerDefersAndStaysUnderBudget)
{
    std::string path = tempPath("scrub_budget");
    std::remove(path.c_str());
    ArchiveService service(path);
    ASSERT_EQ(service.open(true), ArchiveError::None);
    const std::vector<std::string> names = {"a", "b", "c", "d"};
    for (std::size_t i = 0; i < names.size(); ++i)
        ASSERT_EQ(service.put(names[i],
                              makePrepared(500 + i), {}),
                  ArchiveError::None);

    // Measure each video's correction cost once (and leave every
    // image clean). The fixed seed makes the drift process
    // stationary: each later sweep re-ages identically, so these
    // costs are exactly what the scheduler will see.
    ScrubOptions options;
    options.ageRawBer = 1e-4;
    options.seed = 99;
    u64 total = 0, per_video_max = 0;
    for (const std::string &name : names) {
        ScrubReport report = service.scrubVideo(name, options);
        ASSERT_EQ(report.cells.blocksUncorrectable, 0u);
        ASSERT_EQ(report.streamsMiscorrected, 0u);
        total += report.cells.bitsCorrected;
        per_video_max = std::max(per_video_max,
                                 report.cells.bitsCorrected);
    }
    ASSERT_GT(total, 0u);

    ScrubSchedulerConfig config;
    config.ageRawBer = options.ageRawBer;
    config.seed = options.seed;
    // One video fits, the whole sweep does not: every interval
    // must defer work.
    config.correctionBudget = per_video_max + 1;
    ASSERT_LT(config.correctionBudget, total);
    ScrubScheduler scheduler(service, config);

    // Learning phase: run intervals until every video's cost is
    // known. Unlearned videos predict zero, so these intervals may
    // overshoot — that is the documented learning overrun.
    while (scheduler.videosScrubbed() < names.size())
        scheduler.runInterval();
    const u64 learning_overruns = scheduler.overruns();

    // Steady state: with exact cost predictions, every interval's
    // corrections stay within the budget — the acceptance bar.
    for (int i = 0; i < 12; ++i) {
        const u64 bits_before = scheduler.bitsCorrected();
        scheduler.runInterval();
        EXPECT_LE(scheduler.bitsCorrected() - bits_before,
                  config.correctionBudget);
    }
    EXPECT_EQ(scheduler.overruns(), learning_overruns);
    EXPECT_GT(scheduler.deferrals(), 0u);
    // Round-robin: the sweep keeps visiting every video.
    EXPECT_GE(scheduler.videosScrubbed(), names.size() * 2);
    std::remove(path.c_str());
}

TEST(ClusterScrub, DeferredWorkIsChargedToTheIntervalThatRunsIt)
{
    std::string path = tempPath("scrub_carry");
    std::remove(path.c_str());
    ArchiveService service(path);
    ASSERT_EQ(service.open(true), ArchiveError::None);
    const std::vector<std::string> names = {"a", "b", "c", "d"};
    for (std::size_t i = 0; i < names.size(); ++i)
        ASSERT_EQ(service.put(names[i],
                              makePrepared(520 + i), {}),
                  ArchiveError::None);

    ScrubOptions options;
    options.ageRawBer = 1e-3;
    options.seed = 11;
    u64 total = 0, per_video_max = 0;
    for (const std::string &name : names) {
        ScrubReport report = service.scrubVideo(name, options);
        ASSERT_GT(report.cells.bitsCorrected, 0u) << name;
        total += report.cells.bitsCorrected;
        per_video_max = std::max(per_video_max,
                                 report.cells.bitsCorrected);
    }

    ScrubSchedulerConfig config;
    config.ageRawBer = options.ageRawBer;
    config.seed = options.seed;
    config.correctionBudget = per_video_max + 1;
    ASSERT_LT(config.correctionBudget, total);
    ScrubScheduler scheduler(service, config);
    const u64 hist_before =
        telemetry::globalRegistry()
            .histogram("cluster.scrub.interval_corrections")
            .sum();

    std::vector<std::string> visit_order;
    scheduler.onScrubbed = [&](const std::string &name) {
        visit_order.push_back(name);
    };

    u64 learning_sum = 0;
    while (scheduler.videosScrubbed() < names.size()) {
        const u64 before = scheduler.bitsCorrected();
        scheduler.runInterval();
        learning_sum += scheduler.bitsCorrected() - before;
    }
    const std::size_t learned = visit_order.size();

    u64 interval_sum = 0;
    for (int i = 0; i < 12; ++i) {
        const u64 before = scheduler.bitsCorrected();
        scheduler.runInterval();
        const u64 delta = scheduler.bitsCorrected() - before;
        interval_sum += delta;
        // Attribution: an interval is charged only for work it ran,
        // and what it runs never exceeds the budget by more than the
        // single video that trips the predictive gate.
        EXPECT_LE(delta, config.correctionBudget + per_video_max)
            << "interval " << i;
    }

    // The per-interval deltas (and the interval histogram) tile the
    // total exactly: nothing is retro-charged to an earlier interval
    // or double-counted by the carry.
    EXPECT_EQ(learning_sum + interval_sum, scheduler.bitsCorrected());
    if (telemetry::kEnabled) {
        EXPECT_EQ(telemetry::globalRegistry()
                          .histogram(
                              "cluster.scrub.interval_corrections")
                          .sum() -
                      hist_before,
                  scheduler.bitsCorrected());
    }

    // The budget deferred work every steady-state interval, and the
    // deferred videos really ran (and were charged) later.
    EXPECT_GT(scheduler.deferrals(), 0u);
    EXPECT_GT(scheduler.carriedCorrections(), 0u);
    EXPECT_LE(scheduler.carriedCorrections(),
              scheduler.bitsCorrected());

    // A deferred video heads the next interval: the flattened visit
    // order stays a strict round-robin rotation — every window of
    // |names| consecutive visits covers |names| distinct videos, so
    // no video is skipped or revisited early by the carry.
    ASSERT_GE(visit_order.size(), learned + names.size());
    for (std::size_t i = 0; i + names.size() <= visit_order.size();
         ++i) {
        std::set<std::string> window(
            visit_order.begin() +
                static_cast<std::ptrdiff_t>(i),
            visit_order.begin() +
                static_cast<std::ptrdiff_t>(i + names.size()));
        EXPECT_EQ(window.size(), names.size())
            << "window at " << i;
    }
    std::remove(path.c_str());
}

TEST(ClusterScrub, BackgroundThreadSweepsAndStopsCleanly)
{
    std::string path = tempPath("scrub_thread");
    std::remove(path.c_str());
    ArchiveService service(path);
    ASSERT_EQ(service.open(true), ArchiveError::None);
    ASSERT_EQ(service.put("clip", makePrepared(510), {}),
              ArchiveError::None);

    ScrubSchedulerConfig config;
    config.intervalMs = 5;
    config.ageRawBer = 1e-4;
    config.seed = 3;
    ScrubScheduler scheduler(service, config);
    std::atomic<u64> invalidations{0};
    scheduler.onScrubbed = [&](const std::string &name) {
        EXPECT_EQ(name, "clip");
        invalidations.fetch_add(1);
    };
    scheduler.start();
    for (int i = 0;
         i < 400 && scheduler.intervalsCompleted() < 3; ++i)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(5));
    scheduler.stop();
    EXPECT_GE(scheduler.intervalsCompleted(), 3u);
    EXPECT_GE(scheduler.videosScrubbed(), 3u);
    EXPECT_EQ(invalidations.load(), scheduler.videosScrubbed());
    // Unbudgeted: nothing deferred, nothing overrun.
    EXPECT_EQ(scheduler.deferrals(), 0u);
    EXPECT_EQ(scheduler.overruns(), 0u);
    // The archive still reads clean after repeated scrubbing.
    EXPECT_EQ(service.get("clip").error, ArchiveError::None);
    std::remove(path.c_str());
}

} // namespace
} // namespace videoapp
