/**
 * @file
 * Quality metric tests: identity values, known distortions,
 * monotonicity with noise level, and cross-metric consistency.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quality/bdrate.h"
#include "quality/metrics.h"
#include "quality/psnr.h"
#include "quality/ssim.h"
#include "quality/vif.h"
#include "video/synthetic.h"

namespace videoapp {
namespace {

Video
addNoise(const Video &v, double sigma, u64 seed)
{
    Rng rng(seed);
    Video out = v;
    for (auto &frame : out.frames)
        for (auto &p : frame.y().data()) {
            double nv = p + rng.nextGaussian() * sigma;
            p = static_cast<u8>(std::clamp(nv, 0.0, 255.0));
        }
    return out;
}

class QualityFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        video_ = generateSynthetic(tinySpec(42));
    }

    Video video_;
};

TEST_F(QualityFixture, IdentityPsnrIsCapped)
{
    EXPECT_DOUBLE_EQ(psnrVideo(video_, video_), kPsnrCap);
}

TEST_F(QualityFixture, IdentitySsimIsOne)
{
    EXPECT_NEAR(ssimVideo(video_, video_), 1.0, 1e-9);
    EXPECT_NEAR(msssimVideo(video_, video_), 1.0, 1e-9);
}

TEST_F(QualityFixture, IdentityVifpIsOne)
{
    EXPECT_NEAR(vifpVideo(video_, video_), 1.0, 1e-6);
}

TEST(Psnr, KnownUniformErrorValue)
{
    // A constant offset of 1 everywhere gives MSE 1 -> 48.13 dB.
    Frame a(32, 32), b(32, 32);
    for (auto &p : a.y().data())
        p = 100;
    for (auto &p : b.y().data())
        p = 101;
    EXPECT_NEAR(meanSquaredError(a.y(), b.y()), 1.0, 1e-12);
    EXPECT_NEAR(psnrFrame(a, b), 48.1308, 1e-3);
}

TEST(Psnr, MseToPsnrEdgeCases)
{
    EXPECT_DOUBLE_EQ(mseToPsnr(0.0), kPsnrCap);
    EXPECT_NEAR(mseToPsnr(255.0 * 255.0), 0.0, 1e-9);
}

TEST_F(QualityFixture, AllMetricsDecreaseWithNoise)
{
    Video light = addNoise(video_, 2.0, 1);
    Video heavy = addNoise(video_, 12.0, 2);

    EXPECT_GT(psnrVideo(video_, light), psnrVideo(video_, heavy));
    EXPECT_GT(ssimVideo(video_, light), ssimVideo(video_, heavy));
    EXPECT_GT(msssimVideo(video_, light), msssimVideo(video_, heavy));
    EXPECT_GT(vifpVideo(video_, light), vifpVideo(video_, heavy));
}

TEST_F(QualityFixture, SsimBounded)
{
    Video heavy = addNoise(video_, 40.0, 3);
    double s = ssimVideo(video_, heavy);
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
    double ms = msssimVideo(video_, heavy);
    EXPECT_GE(ms, 0.0);
    EXPECT_LE(ms, 1.0);
}

TEST_F(QualityFixture, VifpBoundedBelowOneForDistortion)
{
    Video noisy = addNoise(video_, 8.0, 4);
    double v = vifpVideo(video_, noisy);
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
}

TEST_F(QualityFixture, LocalisedDamageScoresWorseThanNothing)
{
    // Corrupt one 16x16 block badly.
    Video damaged = video_;
    for (int y = 16; y < 32; ++y)
        for (int x = 16; x < 32; ++x)
            damaged.frames[5].y().at(x, y) = 0;
    EXPECT_LT(psnrVideo(video_, damaged), kPsnrCap);
    EXPECT_LT(ssimVideo(video_, damaged), 1.0);
}

TEST_F(QualityFixture, ReportFormatsAllMetrics)
{
    Video noisy = addNoise(video_, 5.0, 6);
    QualityReport report = measureQuality(video_, noisy);
    EXPECT_GT(report.psnr, 20.0);
    EXPECT_LT(report.psnr, 50.0);
    EXPECT_GT(report.ssim, 0.0);
    EXPECT_GT(report.msssim, 0.0);
    EXPECT_GT(report.vifp, 0.0);
    std::string text = report.toString();
    EXPECT_NE(text.find("PSNR"), std::string::npos);
    EXPECT_NE(text.find("VIFP"), std::string::npos);
}

TEST_F(QualityFixture, CheapModeSkipsExpensiveMetrics)
{
    Video noisy = addNoise(video_, 5.0, 7);
    QualityReport report = measureQuality(video_, noisy, false);
    EXPECT_GT(report.psnr, 0.0);
    EXPECT_DOUBLE_EQ(report.msssim, 0.0);
    EXPECT_DOUBLE_EQ(report.vifp, 0.0);
}

TEST(BdRate, IdenticalCurvesGiveZero)
{
    std::vector<RdPoint> curve = {{100, 30}, {200, 33}, {400, 36},
                                  {800, 39}};
    auto rate = bdRate(curve, curve);
    auto psnr = bdPsnr(curve, curve);
    ASSERT_TRUE(rate.has_value());
    ASSERT_TRUE(psnr.has_value());
    EXPECT_NEAR(*rate, 0.0, 1e-9);
    EXPECT_NEAR(*psnr, 0.0, 1e-9);
}

TEST(BdRate, UniformPsnrShiftMeasuredExactly)
{
    std::vector<RdPoint> ref = {{100, 30}, {200, 33}, {400, 36},
                                {800, 39}};
    std::vector<RdPoint> test = ref;
    for (auto &p : test)
        p.psnr += 1.0;
    auto psnr = bdPsnr(ref, test);
    ASSERT_TRUE(psnr.has_value());
    EXPECT_NEAR(*psnr, 1.0, 1e-6);
}

TEST(BdRate, UniformRateScaleMeasuredExactly)
{
    std::vector<RdPoint> ref = {{100, 30}, {200, 33}, {400, 36},
                                {800, 39}};
    std::vector<RdPoint> test = ref;
    for (auto &p : test)
        p.bitrate *= 1.15; // 15% more bits everywhere
    auto rate = bdRate(ref, test);
    ASSERT_TRUE(rate.has_value());
    EXPECT_NEAR(*rate, 0.15, 1e-6);
}

TEST(BdRate, RejectsDegenerateInput)
{
    std::vector<RdPoint> three = {{100, 30}, {200, 33}, {400, 36}};
    EXPECT_FALSE(bdRate(three, three).has_value());
    std::vector<RdPoint> disjoint_a = {{1, 1}, {2, 2}, {3, 3},
                                       {4, 4}};
    std::vector<RdPoint> disjoint_b = {{100, 30}, {200, 33},
                                       {400, 36}, {800, 39}};
    EXPECT_FALSE(bdPsnr(disjoint_a, disjoint_b).has_value());
    std::vector<RdPoint> zero_rate = {{0, 30}, {200, 33}, {400, 36},
                                      {800, 39}};
    EXPECT_FALSE(bdRate(zero_rate, zero_rate).has_value());
}

TEST(BdRate, CubicFitRecoversPolynomial)
{
    // y = 2 - x + 0.5 x^2 + 0.25 x^3 sampled at 6 points.
    std::vector<double> xs = {-2, -1, 0, 1, 2, 3};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2 - x + 0.5 * x * x + 0.25 * x * x * x);
    auto c = fitCubic(xs, ys);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_NEAR(c[0], 2.0, 1e-9);
    EXPECT_NEAR(c[1], -1.0, 1e-9);
    EXPECT_NEAR(c[2], 0.5, 1e-9);
    EXPECT_NEAR(c[3], 0.25, 1e-9);
}

TEST(Ssim, DownsampleHalvesDimensions)
{
    Plane p(32, 48, 100);
    Plane d = downsample2x(p);
    EXPECT_EQ(d.width(), 16);
    EXPECT_EQ(d.height(), 24);
    EXPECT_EQ(d.at(3, 3), 100);
}

} // namespace
} // namespace videoapp
