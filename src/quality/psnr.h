/**
 * @file
 * Peak signal-to-noise ratio, the paper's primary quality metric.
 */

#ifndef VIDEOAPP_QUALITY_PSNR_H_
#define VIDEOAPP_QUALITY_PSNR_H_

#include "video/frame.h"

namespace videoapp {

/** PSNR is capped at this value when the planes are identical. */
inline constexpr double kPsnrCap = 100.0;

/** Mean squared error between two equally sized planes. */
double meanSquaredError(const Plane &a, const Plane &b);

/** Luma PSNR between two frames in dB (capped at kPsnrCap). */
double psnrFrame(const Frame &a, const Frame &b);

/**
 * Average per-frame luma PSNR over a sequence, the convention the
 * paper follows ("average value across the frames"). Sequences must
 * have equal length and dimensions.
 */
double psnrVideo(const Video &a, const Video &b);

/** Convert an MSE value to PSNR dB for 8-bit content. */
double mseToPsnr(double mse);

} // namespace videoapp

#endif // VIDEOAPP_QUALITY_PSNR_H_
