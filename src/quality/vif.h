/**
 * @file
 * Pixel-domain Visual Information Fidelity (VIFP).
 *
 * Implements the multi-scale pixel-domain variant of Sheikh & Bovik's
 * VIF, the fourth metric the VQMT tool reports. Each scale models the
 * reference as a Gaussian source passed through a gain+noise channel
 * and measures the ratio of mutual informations with and without the
 * distortion channel.
 */

#ifndef VIDEOAPP_QUALITY_VIF_H_
#define VIDEOAPP_QUALITY_VIF_H_

#include "video/frame.h"

namespace videoapp {

/** VIFP between reference plane @p ref and distorted plane @p dist. */
double vifpPlane(const Plane &ref, const Plane &dist);

/** Luma VIFP of a frame pair (reference first). */
double vifpFrame(const Frame &ref, const Frame &dist);

/** Average per-frame luma VIFP over a sequence (reference first). */
double vifpVideo(const Video &ref, const Video &dist);

} // namespace videoapp

#endif // VIDEOAPP_QUALITY_VIF_H_
