/**
 * @file
 * Unified quality-metric facade over PSNR / SSIM / MS-SSIM / VIFP,
 * mirroring the report produced by the VQMT tool the paper used.
 */

#ifndef VIDEOAPP_QUALITY_METRICS_H_
#define VIDEOAPP_QUALITY_METRICS_H_

#include <string>

#include "video/frame.h"

namespace videoapp {

/** All four metrics for one video pair (averaged across frames). */
struct QualityReport
{
    double psnr = 0.0;
    double ssim = 0.0;
    double msssim = 0.0;
    double vifp = 0.0;

    std::string toString() const;
};

/**
 * Compute all metrics. @p with_expensive controls whether MS-SSIM and
 * VIFP are computed (they dominate runtime for large suites).
 */
QualityReport measureQuality(const Video &reference, const Video &test,
                             bool with_expensive = true);

} // namespace videoapp

#endif // VIDEOAPP_QUALITY_METRICS_H_
