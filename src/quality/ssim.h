/**
 * @file
 * Structural similarity metrics: SSIM and multi-scale SSIM.
 *
 * Implemented per Wang et al. (2004) with the standard 11x11 Gaussian
 * window (sigma 1.5) and the MS-SSIM 5-scale weight vector. The paper
 * reports that its importance heuristic tracks these metrics as well
 * as PSNR; the metrics tests reproduce that correlation.
 */

#ifndef VIDEOAPP_QUALITY_SSIM_H_
#define VIDEOAPP_QUALITY_SSIM_H_

#include "video/frame.h"

namespace videoapp {

/** Mean SSIM between two equally sized planes, in [-1, 1]. */
double ssimPlane(const Plane &a, const Plane &b);

/** Luma SSIM of a frame pair. */
double ssimFrame(const Frame &a, const Frame &b);

/** Average per-frame luma SSIM over a sequence. */
double ssimVideo(const Video &a, const Video &b);

/**
 * Multi-scale SSIM with up to 5 dyadic scales (fewer if the planes
 * are too small for the 11x11 window at deeper scales).
 */
double msssimPlane(const Plane &a, const Plane &b);

/** Luma MS-SSIM of a frame pair. */
double msssimFrame(const Frame &a, const Frame &b);

/** Average per-frame luma MS-SSIM over a sequence. */
double msssimVideo(const Video &a, const Video &b);

/** Downsample a plane by 2x with a 2x2 box filter (shared helper). */
Plane downsample2x(const Plane &p);

} // namespace videoapp

#endif // VIDEOAPP_QUALITY_SSIM_H_
