#include "quality/ssim.h"

#include <array>
#include <cassert>
#include <cmath>
#include <vector>

namespace videoapp {

namespace {

constexpr int kWindow = 11;
constexpr double kSigma = 1.5;
constexpr double kC1 = (0.01 * 255) * (0.01 * 255);
constexpr double kC2 = (0.03 * 255) * (0.03 * 255);

const std::array<double, kWindow> &
gaussianKernel()
{
    static const std::array<double, kWindow> kernel = [] {
        std::array<double, kWindow> k{};
        double sum = 0.0;
        for (int i = 0; i < kWindow; ++i) {
            double d = i - kWindow / 2;
            k[i] = std::exp(-d * d / (2 * kSigma * kSigma));
            sum += k[i];
        }
        for (auto &v : k)
            v /= sum;
        return k;
    }();
    return kernel;
}

/** Separable Gaussian filter; output is valid-region only. */
std::vector<double>
gaussianFilter(const std::vector<double> &img, int w, int h,
               int &out_w, int &out_h)
{
    const auto &k = gaussianKernel();
    out_w = w - kWindow + 1;
    out_h = h - kWindow + 1;
    if (out_w <= 0 || out_h <= 0) {
        out_w = out_h = 0;
        return {};
    }

    // Horizontal pass.
    std::vector<double> tmp(static_cast<std::size_t>(out_w) * h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < out_w; ++x) {
            double s = 0.0;
            for (int i = 0; i < kWindow; ++i)
                s += k[i] * img[static_cast<std::size_t>(y) * w + x + i];
            tmp[static_cast<std::size_t>(y) * out_w + x] = s;
        }
    }
    // Vertical pass.
    std::vector<double> out(static_cast<std::size_t>(out_w) * out_h);
    for (int y = 0; y < out_h; ++y) {
        for (int x = 0; x < out_w; ++x) {
            double s = 0.0;
            for (int i = 0; i < kWindow; ++i)
                s += k[i] *
                     tmp[static_cast<std::size_t>(y + i) * out_w + x];
            out[static_cast<std::size_t>(y) * out_w + x] = s;
        }
    }
    return out;
}

std::vector<double>
toDouble(const Plane &p)
{
    std::vector<double> out(p.data().size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = p.data()[i];
    return out;
}

/** Per-window luminance/contrast/structure products for one scale. */
struct SsimSums
{
    double meanSsim = 1.0;     // full SSIM (with luminance term)
    double meanCs = 1.0;       // contrast*structure only (for MS-SSIM)
    bool valid = false;
};

SsimSums
ssimPass(const Plane &pa, const Plane &pb)
{
    assert(pa.sameSize(pb));
    int w = pa.width(), h = pa.height();
    auto a = toDouble(pa);
    auto b = toDouble(pb);

    std::vector<double> aa(a.size()), bb(a.size()), ab(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        aa[i] = a[i] * a[i];
        bb[i] = b[i] * b[i];
        ab[i] = a[i] * b[i];
    }

    int ow, oh;
    auto mu_a = gaussianFilter(a, w, h, ow, oh);
    SsimSums sums;
    if (ow == 0)
        return sums;
    auto mu_b = gaussianFilter(b, w, h, ow, oh);
    auto s_aa = gaussianFilter(aa, w, h, ow, oh);
    auto s_bb = gaussianFilter(bb, w, h, ow, oh);
    auto s_ab = gaussianFilter(ab, w, h, ow, oh);

    double total_ssim = 0.0, total_cs = 0.0;
    std::size_t n = mu_a.size();
    for (std::size_t i = 0; i < n; ++i) {
        double ma = mu_a[i], mb = mu_b[i];
        double va = s_aa[i] - ma * ma;
        double vb = s_bb[i] - mb * mb;
        double cov = s_ab[i] - ma * mb;
        double lum = (2 * ma * mb + kC1) / (ma * ma + mb * mb + kC1);
        double cs = (2 * cov + kC2) / (va + vb + kC2);
        total_ssim += lum * cs;
        total_cs += cs;
    }
    sums.meanSsim = total_ssim / n;
    sums.meanCs = total_cs / n;
    sums.valid = true;
    return sums;
}

} // namespace

Plane
downsample2x(const Plane &p)
{
    int w = p.width() / 2, h = p.height() / 2;
    Plane out(std::max(w, 1), std::max(h, 1));
    for (int y = 0; y < out.height(); ++y) {
        for (int x = 0; x < out.width(); ++x) {
            int sx = 2 * x, sy = 2 * y;
            int sum = p.atClamped(sx, sy) + p.atClamped(sx + 1, sy) +
                      p.atClamped(sx, sy + 1) +
                      p.atClamped(sx + 1, sy + 1);
            out.at(x, y) = static_cast<u8>((sum + 2) / 4);
        }
    }
    return out;
}

double
ssimPlane(const Plane &a, const Plane &b)
{
    auto sums = ssimPass(a, b);
    return sums.valid ? sums.meanSsim : 1.0;
}

double
ssimFrame(const Frame &a, const Frame &b)
{
    return ssimPlane(a.y(), b.y());
}

double
ssimVideo(const Video &a, const Video &b)
{
    assert(a.frames.size() == b.frames.size());
    if (a.frames.empty())
        return 1.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < a.frames.size(); ++i)
        sum += ssimFrame(a.frames[i], b.frames[i]);
    return sum / a.frames.size();
}

double
msssimPlane(const Plane &a, const Plane &b)
{
    // Standard MS-SSIM exponents (Wang et al. 2003).
    static const double weights[5] = {0.0448, 0.2856, 0.3001, 0.2363,
                                      0.1333};
    Plane pa = a, pb = b;
    double result = 1.0;
    double used_weight = 0.0;
    for (int scale = 0; scale < 5; ++scale) {
        auto sums = ssimPass(pa, pb);
        if (!sums.valid)
            break;
        bool last = scale == 4 || pa.width() / 2 < kWindow ||
                    pa.height() / 2 < kWindow;
        double term = last ? sums.meanSsim : sums.meanCs;
        // Negative CS values can occur for badly damaged content;
        // clamp to a small positive number before exponentiation.
        term = term < 1e-6 ? 1e-6 : term;
        result *= std::pow(term, weights[scale]);
        used_weight += weights[scale];
        if (last)
            break;
        pa = downsample2x(pa);
        pb = downsample2x(pb);
    }
    // Renormalise if fewer than 5 scales fit the image.
    if (used_weight > 0 && used_weight < 1.0)
        result = std::pow(result, 1.0 / used_weight);
    return result;
}

double
msssimFrame(const Frame &a, const Frame &b)
{
    return msssimPlane(a.y(), b.y());
}

double
msssimVideo(const Video &a, const Video &b)
{
    assert(a.frames.size() == b.frames.size());
    if (a.frames.empty())
        return 1.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < a.frames.size(); ++i)
        sum += msssimFrame(a.frames[i], b.frames[i]);
    return sum / a.frames.size();
}

} // namespace videoapp
