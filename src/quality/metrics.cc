#include "quality/metrics.h"

#include <cstdio>

#include "quality/psnr.h"
#include "quality/ssim.h"
#include "quality/vif.h"

namespace videoapp {

std::string
QualityReport::toString() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "PSNR %.2f dB  SSIM %.4f  MS-SSIM %.4f  VIFP %.4f",
                  psnr, ssim, msssim, vifp);
    return buf;
}

QualityReport
measureQuality(const Video &reference, const Video &test,
               bool with_expensive)
{
    QualityReport report;
    report.psnr = psnrVideo(reference, test);
    report.ssim = ssimVideo(reference, test);
    if (with_expensive) {
        report.msssim = msssimVideo(reference, test);
        report.vifp = vifpVideo(reference, test);
    }
    return report;
}

} // namespace videoapp
