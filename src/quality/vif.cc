#include "quality/vif.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "quality/ssim.h"

namespace videoapp {

namespace {

constexpr double kSigmaNsq = 2.0; // HVS internal neuron noise variance

struct ScaleInfo
{
    double num = 0.0; // information in the distorted image
    double den = 0.0; // information in the reference image
};

std::vector<double>
boxFilter(const std::vector<double> &img, int w, int h, int win,
          int &ow, int &oh)
{
    ow = w - win + 1;
    oh = h - win + 1;
    if (ow <= 0 || oh <= 0) {
        ow = oh = 0;
        return {};
    }
    double inv = 1.0 / (win * win);
    std::vector<double> tmp(static_cast<std::size_t>(ow) * h);
    for (int y = 0; y < h; ++y) {
        double s = 0.0;
        for (int i = 0; i < win; ++i)
            s += img[static_cast<std::size_t>(y) * w + i];
        tmp[static_cast<std::size_t>(y) * ow] = s;
        for (int x = 1; x < ow; ++x) {
            s += img[static_cast<std::size_t>(y) * w + x + win - 1] -
                 img[static_cast<std::size_t>(y) * w + x - 1];
            tmp[static_cast<std::size_t>(y) * ow + x] = s;
        }
    }
    std::vector<double> out(static_cast<std::size_t>(ow) * oh);
    for (int x = 0; x < ow; ++x) {
        double s = 0.0;
        for (int i = 0; i < win; ++i)
            s += tmp[static_cast<std::size_t>(i) * ow + x];
        out[x] = s * inv;
        for (int y = 1; y < oh; ++y) {
            s += tmp[static_cast<std::size_t>(y + win - 1) * ow + x] -
                 tmp[static_cast<std::size_t>(y - 1) * ow + x];
            out[static_cast<std::size_t>(y) * ow + x] = s * inv;
        }
    }
    return out;
}

std::vector<double>
toDouble(const Plane &p)
{
    std::vector<double> out(p.data().size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = p.data()[i];
    return out;
}

ScaleInfo
vifScale(const Plane &pr, const Plane &pd, int win)
{
    ScaleInfo info;
    int w = pr.width(), h = pr.height();
    auto r = toDouble(pr);
    auto d = toDouble(pd);

    std::vector<double> rr(r.size()), dd(r.size()), rd(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
        rr[i] = r[i] * r[i];
        dd[i] = d[i] * d[i];
        rd[i] = r[i] * d[i];
    }

    int ow, oh;
    auto mu_r = boxFilter(r, w, h, win, ow, oh);
    if (ow == 0)
        return info;
    auto mu_d = boxFilter(d, w, h, win, ow, oh);
    auto s_rr = boxFilter(rr, w, h, win, ow, oh);
    auto s_dd = boxFilter(dd, w, h, win, ow, oh);
    auto s_rd = boxFilter(rd, w, h, win, ow, oh);

    for (std::size_t i = 0; i < mu_r.size(); ++i) {
        double var_r = s_rr[i] - mu_r[i] * mu_r[i];
        double var_d = s_dd[i] - mu_d[i] * mu_d[i];
        double cov = s_rd[i] - mu_r[i] * mu_d[i];
        if (var_r < 0) var_r = 0;
        if (var_d < 0) var_d = 0;

        // Channel estimate: d = g*r + v, var(v) = sv.
        double g = var_r > 1e-10 ? cov / var_r : 0.0;
        double sv = var_d - g * cov;
        if (g < 0) {
            sv = var_d;
            g = 0;
        }
        if (sv < 1e-10)
            sv = 1e-10;

        info.num += std::log2(1.0 + g * g * var_r /
                                        (sv + kSigmaNsq));
        info.den += std::log2(1.0 + var_r / kSigmaNsq);
    }
    return info;
}

} // namespace

double
vifpPlane(const Plane &ref, const Plane &dist)
{
    assert(ref.sameSize(dist));
    Plane pr = ref, pd = dist;
    double num = 0.0, den = 0.0;
    for (int scale = 0; scale < 4; ++scale) {
        int win = (1 << (4 - scale)) + 1; // 17, 9, 5, 3
        auto info = vifScale(pr, pd, win);
        num += info.num;
        den += info.den;
        if (pr.width() / 2 < win || pr.height() / 2 < win)
            break;
        pr = downsample2x(pr);
        pd = downsample2x(pd);
    }
    if (den <= 0.0)
        return 1.0;
    double v = num / den;
    return v < 0.0 ? 0.0 : v;
}

double
vifpFrame(const Frame &ref, const Frame &dist)
{
    return vifpPlane(ref.y(), dist.y());
}

double
vifpVideo(const Video &ref, const Video &dist)
{
    assert(ref.frames.size() == dist.frames.size());
    if (ref.frames.empty())
        return 1.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < ref.frames.size(); ++i)
        sum += vifpFrame(ref.frames[i], dist.frames[i]);
    return sum / ref.frames.size();
}

} // namespace videoapp
