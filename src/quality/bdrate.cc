#include "quality/bdrate.h"

#include <algorithm>
#include <cmath>

namespace videoapp {

namespace {

/** Evaluate the integral of a cubic's antiderivative at x. */
double
cubicIntegralAt(const std::vector<double> &c, double x)
{
    return c[0] * x + c[1] * x * x / 2 + c[2] * x * x * x / 3 +
           c[3] * x * x * x * x / 4;
}

/** Mean of the fitted cubic over [lo, hi]. */
double
cubicMean(const std::vector<double> &c, double lo, double hi)
{
    return (cubicIntegralAt(c, hi) - cubicIntegralAt(c, lo)) /
           (hi - lo);
}

/**
 * Average gap between two curves y(x): fit cubics to both point
 * sets and integrate the difference over the overlapping x range.
 */
std::optional<double>
averageCurveGap(const std::vector<double> &x_ref,
                const std::vector<double> &y_ref,
                const std::vector<double> &x_test,
                const std::vector<double> &y_test)
{
    if (x_ref.size() < 4 || x_test.size() < 4)
        return std::nullopt;
    double lo = std::max(*std::min_element(x_ref.begin(), x_ref.end()),
                         *std::min_element(x_test.begin(),
                                           x_test.end()));
    double hi = std::min(*std::max_element(x_ref.begin(), x_ref.end()),
                         *std::max_element(x_test.begin(),
                                           x_test.end()));
    if (hi <= lo)
        return std::nullopt;
    auto c_ref = fitCubic(x_ref, y_ref);
    auto c_test = fitCubic(x_test, y_test);
    if (c_ref.empty() || c_test.empty())
        return std::nullopt;
    return cubicMean(c_test, lo, hi) - cubicMean(c_ref, lo, hi);
}

} // namespace

std::vector<double>
fitCubic(const std::vector<double> &xs, const std::vector<double> &ys)
{
    const int n = 4;
    // Normal equations A c = b with A[i][j] = sum x^(i+j).
    double a[n][n] = {};
    double b[n] = {};
    for (std::size_t k = 0; k < xs.size(); ++k) {
        double pow_i = 1.0;
        for (int i = 0; i < n; ++i) {
            double pow_ij = pow_i;
            for (int j = 0; j < n; ++j) {
                a[i][j] += pow_ij;
                pow_ij *= xs[k];
            }
            b[i] += pow_i * ys[k];
            pow_i *= xs[k];
        }
    }

    // Gaussian elimination with partial pivoting.
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int row = col + 1; row < n; ++row)
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        if (std::abs(a[pivot][col]) < 1e-12)
            return {};
        if (pivot != col) {
            for (int j = 0; j < n; ++j)
                std::swap(a[col][j], a[pivot][j]);
            std::swap(b[col], b[pivot]);
        }
        for (int row = col + 1; row < n; ++row) {
            double f = a[row][col] / a[col][col];
            for (int j = col; j < n; ++j)
                a[row][j] -= f * a[col][j];
            b[row] -= f * b[col];
        }
    }
    std::vector<double> c(n);
    for (int i = n - 1; i >= 0; --i) {
        double s = b[i];
        for (int j = i + 1; j < n; ++j)
            s -= a[i][j] * c[static_cast<std::size_t>(j)];
        c[static_cast<std::size_t>(i)] = s / a[i][i];
    }
    return c;
}

std::optional<double>
bdPsnr(const std::vector<RdPoint> &reference,
       const std::vector<RdPoint> &test)
{
    std::vector<double> xr, yr, xt, yt;
    for (const auto &p : reference) {
        if (p.bitrate <= 0)
            return std::nullopt;
        xr.push_back(std::log10(p.bitrate));
        yr.push_back(p.psnr);
    }
    for (const auto &p : test) {
        if (p.bitrate <= 0)
            return std::nullopt;
        xt.push_back(std::log10(p.bitrate));
        yt.push_back(p.psnr);
    }
    return averageCurveGap(xr, yr, xt, yt);
}

std::optional<double>
bdRate(const std::vector<RdPoint> &reference,
       const std::vector<RdPoint> &test)
{
    // Swap axes: fit log-rate as a function of PSNR.
    std::vector<double> xr, yr, xt, yt;
    for (const auto &p : reference) {
        if (p.bitrate <= 0)
            return std::nullopt;
        xr.push_back(p.psnr);
        yr.push_back(std::log10(p.bitrate));
    }
    for (const auto &p : test) {
        if (p.bitrate <= 0)
            return std::nullopt;
        xt.push_back(p.psnr);
        yt.push_back(std::log10(p.bitrate));
    }
    auto gap = averageCurveGap(xr, yr, xt, yt);
    if (!gap)
        return std::nullopt;
    return std::pow(10.0, *gap) - 1.0;
}

} // namespace videoapp
