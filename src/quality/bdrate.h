/**
 * @file
 * Bjøntegaard delta metrics (BD-Rate / BD-PSNR).
 *
 * The standard way to compare two encoders: fit third-order
 * polynomials through each encoder's (log bitrate, PSNR) points and
 * integrate the gap. BD-Rate is the average bitrate difference at
 * equal quality (negative = the test encoder needs fewer bits);
 * BD-PSNR is the average quality difference at equal bitrate. Used
 * by the entropy-coder ablation to express the CABAC/CAVLC gap the
 * same way the literature the paper cites does (Marpe et al.).
 */

#ifndef VIDEOAPP_QUALITY_BDRATE_H_
#define VIDEOAPP_QUALITY_BDRATE_H_

#include <optional>
#include <vector>

namespace videoapp {

/** One rate-distortion point. */
struct RdPoint
{
    double bitrate; // any consistent unit (bits, kbps, ...)
    double psnr;    // dB
};

/**
 * BD-PSNR of @p test against @p reference in dB (positive = test is
 * better at equal rate). Requires >= 4 points per curve and an
 * overlapping rate range; nullopt otherwise.
 */
std::optional<double> bdPsnr(const std::vector<RdPoint> &reference,
                             const std::vector<RdPoint> &test);

/**
 * BD-Rate of @p test against @p reference as a fraction (e.g. -0.12
 * = the test encoder needs 12% fewer bits at equal quality).
 */
std::optional<double> bdRate(const std::vector<RdPoint> &reference,
                             const std::vector<RdPoint> &test);

/**
 * Least-squares cubic fit y = c0 + c1 x + c2 x^2 + c3 x^3.
 * Exposed for tests. @return empty on singular systems.
 */
std::vector<double> fitCubic(const std::vector<double> &xs,
                             const std::vector<double> &ys);

} // namespace videoapp

#endif // VIDEOAPP_QUALITY_BDRATE_H_
