#include "quality/psnr.h"

#include <cassert>
#include <cmath>

namespace videoapp {

double
meanSquaredError(const Plane &a, const Plane &b)
{
    assert(a.sameSize(b));
    const auto &da = a.data();
    const auto &db = b.data();
    double sum = 0.0;
    for (std::size_t i = 0; i < da.size(); ++i) {
        double d = static_cast<double>(da[i]) - db[i];
        sum += d * d;
    }
    return da.empty() ? 0.0 : sum / da.size();
}

double
mseToPsnr(double mse)
{
    if (mse <= 0.0)
        return kPsnrCap;
    double psnr = 10.0 * std::log10(255.0 * 255.0 / mse);
    return psnr > kPsnrCap ? kPsnrCap : psnr;
}

double
psnrFrame(const Frame &a, const Frame &b)
{
    return mseToPsnr(meanSquaredError(a.y(), b.y()));
}

double
psnrVideo(const Video &a, const Video &b)
{
    assert(a.frames.size() == b.frames.size());
    if (a.frames.empty())
        return kPsnrCap;
    double sum = 0.0;
    for (std::size_t i = 0; i < a.frames.size(); ++i)
        sum += psnrFrame(a.frames[i], b.frames[i]);
    return sum / a.frames.size();
}

} // namespace videoapp
