#include "codec/gop.h"

#include <cassert>

namespace videoapp {

std::vector<FramePlan>
planGop(int frame_count, const GopConfig &config)
{
    assert(frame_count > 0);
    const int gop = config.gopSize > 0 ? config.gopSize : 1;
    const int nb = config.bFrames >= 0 ? config.bFrames : 0;

    std::vector<FramePlan> plan;
    plan.reserve(frame_count);

    int prev_anchor_enc = -1; // encode index of the last anchor
    int display = 0;
    while (display < frame_count) {
        // Next anchor position: nb B-frames ahead, clamped to the
        // end of the sequence and snapped to I-frame positions.
        int anchor = display == 0 ? 0 : display + nb;
        if (anchor >= frame_count)
            anchor = frame_count - 1;
        // If an I-frame boundary falls inside this mini-GOP, make
        // the anchor land on it.
        for (int d = display; d <= anchor; ++d) {
            if (d > 0 && d % gop == 0) {
                anchor = d;
                break;
            }
        }

        // Emit the anchor first (encode order).
        FramePlan anchor_plan;
        anchor_plan.displayIdx = anchor;
        anchor_plan.type =
            (anchor % gop == 0) ? FrameType::I : FrameType::P;
        anchor_plan.ref0 =
            anchor_plan.type == FrameType::I ? -1 : prev_anchor_enc;
        anchor_plan.isReference = true;
        int anchor_enc = static_cast<int>(plan.size());
        plan.push_back(anchor_plan);

        // Then the B-frames between the previous anchor and this one.
        int prev_b_enc = -1;
        for (int d = display; d < anchor; ++d) {
            FramePlan b;
            b.displayIdx = d;
            b.type = FrameType::B;
            if (config.bRefs && prev_b_enc >= 0)
                b.ref0 = prev_b_enc; // chain through earlier B
            else
                b.ref0 = prev_anchor_enc;
            b.ref1 = anchor_enc;
            b.isReference = false; // may be flipped below
            int enc = static_cast<int>(plan.size());
            if (config.bRefs)
                prev_b_enc = enc;
            plan.push_back(b);
        }

        // Mark B-frames that ended up referenced.
        if (config.bRefs) {
            for (auto &p : plan)
                p.isReference = false;
            for (const auto &p : plan) {
                if (p.ref0 >= 0)
                    plan[p.ref0].isReference = true;
                if (p.ref1 >= 0)
                    plan[p.ref1].isReference = true;
            }
            // Anchors always stay references.
            for (auto &p : plan)
                if (p.type != FrameType::B)
                    p.isReference = true;
        }

        prev_anchor_enc = anchor_enc;
        display = anchor + 1;
    }

    return plan;
}

} // namespace videoapp
