/**
 * @file
 * CRF-style rate control (Section 6.3): a constant-rate-factor
 * quality target mapped to per-MB quantisation parameters, spending
 * fewer bits on high-activity content the way real encoders do
 * ("the encoder will encode fast moving objects more aggressively").
 */

#ifndef VIDEOAPP_CODEC_RATE_CONTROL_H_
#define VIDEOAPP_CODEC_RATE_CONTROL_H_

#include "codec/types.h"
#include "video/frame.h"

namespace videoapp {

/** The paper's three quality targets. */
inline constexpr int kCrfVeryHigh = 16;
inline constexpr int kCrfHigh = 20;
inline constexpr int kCrfStandard = 24;

class RateControl
{
  public:
    explicit RateControl(int crf) : crf_(crf) {}

    /** Base QP of a frame: CRF plus the frame-type offset. */
    int frameBaseQp(FrameType type) const;

    /**
     * Enable average-bitrate tracking: @p kbps at @p fps. The
     * controller reacts to the running bits-vs-budget ratio with a
     * bounded QP offset (x264's ABR spirit).
     */
    void setBitrateTarget(int kbps, double fps);

    /** Report the coded size of a finished frame (payload bits). */
    void frameDone(u64 bits);

    /** Current ABR offset added on top of the CRF QP. */
    int abrOffset() const { return abrOffset_; }

    /**
     * QP for the MB at (@p mbx, @p mby): the frame base adjusted by
     * the MB's texture activity relative to @p avg_activity.
     */
    int mbQp(FrameType type, const Plane &source, int mbx, int mby,
             double avg_activity) const;

    /** Lagrangian lambda for mode decisions at @p qp. */
    static double lambdaFor(int qp);

    /** Luma variance of the 16x16 MB at (@p mbx, @p mby). */
    static double mbActivity(const Plane &source, int mbx, int mby);

    /** Mean MB activity over the whole plane. */
    static double averageActivity(const Plane &source);

    int crf() const { return crf_; }

  private:
    int crf_;
    double bitsPerFrameTarget_ = 0.0; // 0 = CRF-only mode
    u64 bitsProduced_ = 0;
    u64 framesDone_ = 0;
    int abrOffset_ = 0;
};

} // namespace videoapp

#endif // VIDEOAPP_CODEC_RATE_CONTROL_H_
