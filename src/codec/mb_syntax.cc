#include "codec/mb_syntax.h"

#include "codec/intra.h"
#include "codec/intra4.h"

#include <algorithm>
#include <cstdlib>

namespace videoapp {

namespace {

/** Clamp decoded coefficient magnitudes (encoder caps at 2048 too). */
constexpr i32 kMaxCoeff = 2048;
/** Clamp decoded motion vector components. */
constexpr i32 kMaxMvComponent = 1024;

/** Partition rectangles of an MB in coding order. */
std::vector<PartitionGeom>
mbRects(const MbCoding &mb)
{
    if (mb.partition != Partition::P8x8)
        return partitionGeom(mb.partition);
    std::vector<PartitionGeom> rects;
    for (int i = 0; i < 4; ++i) {
        auto sub = subPartitionGeom(mb.subs[i], (i % 2) * 8,
                                    (i / 2) * 8);
        rects.insert(rects.end(), sub.begin(), sub.end());
    }
    return rects;
}

/** Index of @p mode among the three modes that are not @p pred. */
int
remainingModeIndex(IntraMode mode, IntraMode pred)
{
    int idx = 0;
    for (int m = 0; m < kIntraModeCount; ++m) {
        if (static_cast<IntraMode>(m) == pred)
            continue;
        if (static_cast<IntraMode>(m) == mode)
            return idx;
        ++idx;
    }
    return 0; // unreachable for mode != pred
}

IntraMode
modeFromRemaining(int rem, IntraMode pred)
{
    int idx = 0;
    for (int m = 0; m < kIntraModeCount; ++m) {
        if (static_cast<IntraMode>(m) == pred)
            continue;
        if (idx == rem)
            return static_cast<IntraMode>(m);
        ++idx;
    }
    return IntraMode::DC;
}

IntraMode
predictedIntraMode(const MbGrid &grid, const MbPosition &pos)
{
    bool left = grid.leftAvail(pos.mbx, pos.mby, pos.sliceFirstRow);
    bool up = grid.upAvail(pos.mbx, pos.mby, pos.sliceFirstRow);
    IntraMode left_mode = IntraMode::DC;
    IntraMode up_mode = IntraMode::DC;
    if (left) {
        const MbState &s = grid.at(pos.mbx - 1, pos.mby);
        left = s.intra;
        left_mode = s.intraMode;
    }
    if (up) {
        const MbState &s = grid.at(pos.mbx, pos.mby - 1);
        up = s.intra;
        up_mode = s.intraMode;
    }
    return predictIntraMode(left, left_mode, up, up_mode);
}

void
encodeResidual(SyntaxEncoder &enc, const std::array<i16, 16> &coeffs)
{
    std::array<i16, 16> s{};
    int last = -1;
    for (int i = 0; i < 16; ++i) {
        s[i] = coeffs[kZigzag4x4[i]];
        if (s[i] != 0)
            last = i;
    }
    // A coded block always has a nonzero coefficient.
    for (int i = 0; i < 15 && i <= last; ++i) {
        bool sig = s[i] != 0;
        enc.flag(ctx::kSig + i, sig);
        if (sig) {
            bool is_last = i == last;
            enc.flag(ctx::kLast + i, is_last);
            if (is_last)
                break;
        }
    }
    // Position 15, when reached, is inferred significant.

    for (int i = last; i >= 0; --i) {
        if (s[i] == 0)
            continue;
        u32 mag = static_cast<u32>(std::abs(s[i]));
        enc.uegk(ctx::kLevel, ctx::kLevel + 1, 14, 0, mag - 1);
        enc.bypass(s[i] < 0 ? 1u : 0u);
    }
}

std::array<i16, 16>
decodeResidual(SyntaxDecoder &dec)
{
    std::array<int, 16> positions{};
    int count = 0;
    for (int i = 0; i < 16; ++i) {
        bool sig;
        bool is_last = false;
        if (i < 15) {
            sig = dec.flag(ctx::kSig + i) != 0;
            if (sig)
                is_last = dec.flag(ctx::kLast + i) != 0;
        } else {
            sig = true; // inferred
        }
        if (sig)
            positions[count++] = i;
        if (is_last)
            break;
    }

    std::array<i16, 16> scanned{};
    for (int k = count - 1; k >= 0; --k) {
        u32 mag = dec.uegk(ctx::kLevel, ctx::kLevel + 1, 14, 0) + 1;
        if (mag > static_cast<u32>(kMaxCoeff))
            dec.noteViolation(); // beyond the encoder's level cap
        i32 value = static_cast<i32>(
            std::min<u32>(mag, static_cast<u32>(kMaxCoeff)));
        if (dec.bypass())
            value = -value;
        scanned[positions[k]] = static_cast<i16>(value);
    }

    std::array<i16, 16> coeffs{};
    for (int i = 0; i < 16; ++i)
        coeffs[kZigzag4x4[i]] = scanned[i];
    return coeffs;
}

void
updateGridCell(MbGrid &grid, const MbPosition &pos, const MbCoding &mb)
{
    MbState &cell = grid.at(pos.mbx, pos.mby);
    cell.valid = true;
    cell.skip = mb.skip;
    cell.intra = mb.intra;
    cell.intraMode = mb.intraMode;
    cell.intra4 = mb.intra && mb.intra4;
    cell.intra4Modes = mb.intra4Modes;
    cell.mvL0 = MotionVector{};
    cell.mvL1 = MotionVector{};
    if (!mb.intra && !mb.motions.empty()) {
        // Only coded fields may reach the grid: the decoder never
        // sees the unused list of a uni-directional MB, so storing
        // it would desynchronise the predictor state.
        const MotionInfo &m0 = mb.motions[0];
        if (mb.skip || m0.direction != BiDirection::L1)
            cell.mvL0 = m0.mv;
        if (!mb.skip && m0.direction != BiDirection::L0)
            cell.mvL1 = m0.mvL1;
    }
    cell.codedLuma = false;
    cell.codedChroma = false;
    for (int blk = 0; blk < 16; ++blk)
        cell.codedLuma |= mb.coded[blk];
    for (int blk = 16; blk < 24; ++blk)
        cell.codedChroma |= mb.coded[blk];
}

} // namespace

/**
 * Predicted intra4 mode of block @p blk (raster in the MB),
 * following the H.264 most-probable-mode rule: min of the left and
 * above blocks' modes, DC when a neighbour is missing or its MB is
 * not intra4x4. In-MB neighbours read @p mb (already decided
 * blocks); across MBs the grid supplies neighbour state.
 */
Intra4Mode
predictedIntra4BlockMode(const MbGrid &grid, const MbPosition &pos,
                         const MbCoding &mb, int blk)
{
    int bx = blk % 4, by = blk / 4;

    auto mb_block_mode = [](const MbState &cell, int b,
                            bool &is_intra4) {
        is_intra4 = cell.valid && cell.intra && cell.intra4;
        return is_intra4 ? static_cast<Intra4Mode>(
                               cell.intra4Modes[b] %
                               kIntra4ModeCount)
                         : Intra4Mode::DC;
    };

    bool left_avail = false, above_avail = false;
    Intra4Mode left_mode = Intra4Mode::DC;
    Intra4Mode above_mode = Intra4Mode::DC;

    if (bx > 0) {
        left_avail = true;
        left_mode = static_cast<Intra4Mode>(
            mb.intra4Modes[by * 4 + bx - 1] % kIntra4ModeCount);
    } else if (grid.leftAvail(pos.mbx, pos.mby, pos.sliceFirstRow)) {
        left_avail = true;
        bool is_intra4;
        left_mode = mb_block_mode(grid.at(pos.mbx - 1, pos.mby),
                                  by * 4 + 3, is_intra4);
    }

    if (by > 0) {
        above_avail = true;
        above_mode = static_cast<Intra4Mode>(
            mb.intra4Modes[(by - 1) * 4 + bx] % kIntra4ModeCount);
    } else if (grid.upAvail(pos.mbx, pos.mby, pos.sliceFirstRow)) {
        above_avail = true;
        bool is_intra4;
        above_mode = mb_block_mode(grid.at(pos.mbx, pos.mby - 1),
                                   3 * 4 + bx, is_intra4);
    }

    return predictIntra4Mode(left_avail, left_mode, above_avail,
                             above_mode);
}

MotionVector
mvPredictorForRect(const MbGrid &grid, const MbPosition &pos,
                   std::size_t rect_index, const MbCoding &mb, bool l1)
{
    if (rect_index == 0)
        return grid.predictMv(pos.mbx, pos.mby, pos.sliceFirstRow, l1);
    const MotionInfo &prev = mb.motions[rect_index - 1];
    return l1 ? prev.mvL1 : prev.mv;
}

void
encodeMb(SyntaxEncoder &enc, const MbCoding &mb, const MbPosition &pos,
         MbGrid &grid, int &prev_qp)
{
    const bool inter_frame = pos.frameType != FrameType::I;

    if (inter_frame) {
        enc.flag(ctx::kSkip +
                     grid.skipCtx(pos.mbx, pos.mby, pos.sliceFirstRow),
                 mb.skip ? 1 : 0);
        if (mb.skip) {
            updateGridCell(grid, pos, mb);
            return;
        }
        enc.flag(ctx::kIntraFlag + grid.intraCtx(pos.mbx, pos.mby,
                                                 pos.sliceFirstRow),
                 mb.intra ? 1 : 0);
    }

    if (mb.intra) {
        enc.flag(ctx::kIntra4, mb.intra4 ? 1 : 0);
        if (mb.intra4) {
            // Per-block most-probable-mode coding (H.264 style).
            for (int blk = 0; blk < 16; ++blk) {
                Intra4Mode pred = predictedIntra4BlockMode(grid, pos,
                                                           mb, blk);
                auto mode = static_cast<Intra4Mode>(
                    mb.intra4Modes[blk] % kIntra4ModeCount);
                bool match = mode == pred;
                enc.flag(ctx::kIntra4Mode, match ? 1 : 0);
                if (!match) {
                    u32 rem = static_cast<u32>(mode) <
                                      static_cast<u32>(pred)
                                  ? static_cast<u32>(mode)
                                  : static_cast<u32>(mode) - 1;
                    enc.bypass((rem >> 2) & 1);
                    enc.bypass((rem >> 1) & 1);
                    enc.bypass(rem & 1);
                }
            }
        } else {
            IntraMode pred = predictedIntraMode(grid, pos);
            bool match = mb.intraMode == pred;
            enc.flag(ctx::kIntraMode, match ? 1 : 0);
            if (!match) {
                int rem = remainingModeIndex(mb.intraMode, pred);
                enc.flag(ctx::kIntraMode + 1, rem > 0 ? 1 : 0);
                if (rem > 0)
                    enc.bypass(static_cast<u32>(rem - 1));
            }
        }
    } else {
        // Partition tree.
        enc.flag(ctx::kPartition,
                 mb.partition != Partition::P16x16 ? 1 : 0);
        if (mb.partition != Partition::P16x16) {
            enc.flag(ctx::kPartition + 1,
                     mb.partition != Partition::P16x8 ? 1 : 0);
            if (mb.partition != Partition::P16x8)
                enc.flag(ctx::kPartition + 2,
                         mb.partition == Partition::P8x8 ? 1 : 0);
        }
        if (mb.partition == Partition::P8x8) {
            for (int i = 0; i < 4; ++i) {
                SubPartition s = mb.subs[i];
                enc.flag(ctx::kSubPartition,
                         s != SubPartition::S8x8 ? 1 : 0);
                if (s != SubPartition::S8x8) {
                    enc.flag(ctx::kSubPartition + 1,
                             s != SubPartition::S8x4 ? 1 : 0);
                    if (s != SubPartition::S8x4)
                        enc.flag(ctx::kSubPartition + 2,
                                 s == SubPartition::S4x4 ? 1 : 0);
                }
            }
        }
        if (pos.frameType == FrameType::B) {
            enc.flag(ctx::kBiDirection,
                     mb.direction != BiDirection::L0 ? 1 : 0);
            if (mb.direction != BiDirection::L0)
                enc.flag(ctx::kBiDirection + 1,
                         mb.direction == BiDirection::Bi ? 1 : 0);
        }

        // Motion vector differences, predictively coded.
        for (std::size_t i = 0; i < mb.motions.size(); ++i) {
            const MotionInfo &motion = mb.motions[i];
            if (motion.direction != BiDirection::L1) {
                MotionVector pred =
                    mvPredictorForRect(grid, pos, i, mb, false);
                MotionVector mvd = motion.mv - pred;
                enc.sevlc(ctx::kMvdX, ctx::kMvdX + 1, 8, 2, mvd.x);
                enc.sevlc(ctx::kMvdY, ctx::kMvdY + 1, 8, 2, mvd.y);
            }
            if (motion.direction != BiDirection::L0) {
                MotionVector pred =
                    mvPredictorForRect(grid, pos, i, mb, true);
                MotionVector mvd = motion.mvL1 - pred;
                enc.sevlc(ctx::kMvdX + 2, ctx::kMvdX + 3, 8, 2, mvd.x);
                enc.sevlc(ctx::kMvdY + 2, ctx::kMvdY + 3, 8, 2, mvd.y);
            }
        }
    }

    // Delta QP (predictive: relative to the previous MB's QP).
    enc.sevlc(ctx::kQpDelta, ctx::kQpDelta + 1, 6, 0, mb.qp - prev_qp);
    prev_qp = mb.qp;

    // Coded block pattern: per-8x8 luma + per-component chroma, then
    // per-4x4 flags inside coded groups.
    bool luma8[4];
    for (int g = 0; g < 4; ++g) {
        int gx = g % 2, gy = g / 2;
        luma8[g] = false;
        for (int sy = 0; sy < 2; ++sy)
            for (int sx = 0; sx < 2; ++sx)
                luma8[g] |= mb.coded[(gy * 2 + sy) * 4 + gx * 2 + sx];
        enc.flag(ctx::kCbf, luma8[g] ? 1 : 0);
    }
    bool chroma_any[2];
    for (int comp = 0; comp < 2; ++comp) {
        chroma_any[comp] = false;
        for (int sub = 0; sub < 4; ++sub)
            chroma_any[comp] |= mb.coded[16 + comp * 4 + sub];
        enc.flag(ctx::kCbf + 1, chroma_any[comp] ? 1 : 0);
    }
    for (int g = 0; g < 4; ++g) {
        if (!luma8[g])
            continue;
        int gx = g % 2, gy = g / 2;
        for (int sy = 0; sy < 2; ++sy)
            for (int sx = 0; sx < 2; ++sx) {
                int blk = (gy * 2 + sy) * 4 + gx * 2 + sx;
                enc.flag(ctx::kCbf + 2, mb.coded[blk] ? 1 : 0);
            }
    }
    for (int comp = 0; comp < 2; ++comp) {
        if (!chroma_any[comp])
            continue;
        for (int sub = 0; sub < 4; ++sub)
            enc.flag(ctx::kCbf + 3,
                     mb.coded[16 + comp * 4 + sub] ? 1 : 0);
    }

    // Residuals.
    for (int blk = 0; blk < 24; ++blk)
        if (mb.coded[blk])
            encodeResidual(enc, mb.coeffs[blk]);

    updateGridCell(grid, pos, mb);
}

MbCoding
decodeMb(SyntaxDecoder &dec, const MbPosition &pos, MbGrid &grid,
         int &prev_qp)
{
    MbCoding mb;
    mb.qp = prev_qp;
    const bool inter_frame = pos.frameType != FrameType::I;

    if (inter_frame) {
        mb.skip = dec.flag(ctx::kSkip + grid.skipCtx(pos.mbx, pos.mby,
                                                     pos.sliceFirstRow))
                  != 0;
        if (mb.skip) {
            // Skip: 16x16, predicted motion, no residual.
            mb.intra = false;
            MotionInfo motion;
            motion.rect = {0, 0, 16, 16};
            motion.mv = grid.predictMv(pos.mbx, pos.mby,
                                       pos.sliceFirstRow, false);
            motion.direction = BiDirection::L0;
            mb.motions.push_back(motion);
            updateGridCell(grid, pos, mb);
            return mb;
        }
        mb.intra = dec.flag(ctx::kIntraFlag +
                            grid.intraCtx(pos.mbx, pos.mby,
                                          pos.sliceFirstRow)) != 0;
    } else {
        mb.intra = true;
    }

    if (mb.intra) {
        mb.intra4 = dec.flag(ctx::kIntra4) != 0;
        if (mb.intra4) {
            for (int blk = 0; blk < 16; ++blk) {
                Intra4Mode pred = predictedIntra4BlockMode(grid, pos,
                                                           mb, blk);
                if (dec.flag(ctx::kIntra4Mode)) {
                    mb.intra4Modes[blk] = static_cast<u8>(pred);
                } else {
                    // Three statements: `a | b` does not sequence
                    // its operands.
                    u32 b2 = dec.bypass();
                    u32 b1 = dec.bypass();
                    u32 b0 = dec.bypass();
                    u32 rem = (b2 << 2) | (b1 << 1) | b0;
                    u32 mode = rem < static_cast<u32>(pred)
                                   ? rem
                                   : rem + 1;
                    mb.intra4Modes[blk] = static_cast<u8>(
                        mode % kIntra4ModeCount);
                }
            }
        } else {
            IntraMode pred = predictedIntraMode(grid, pos);
            if (dec.flag(ctx::kIntraMode)) {
                mb.intraMode = pred;
            } else {
                int rem = 0;
                if (dec.flag(ctx::kIntraMode + 1))
                    rem = 1 + static_cast<int>(dec.bypass());
                mb.intraMode = modeFromRemaining(rem, pred);
            }
        }
    } else {
        if (dec.flag(ctx::kPartition) == 0) {
            mb.partition = Partition::P16x16;
        } else if (dec.flag(ctx::kPartition + 1) == 0) {
            mb.partition = Partition::P16x8;
        } else if (dec.flag(ctx::kPartition + 2) == 0) {
            mb.partition = Partition::P8x16;
        } else {
            mb.partition = Partition::P8x8;
        }
        if (mb.partition == Partition::P8x8) {
            for (int i = 0; i < 4; ++i) {
                if (dec.flag(ctx::kSubPartition) == 0)
                    mb.subs[i] = SubPartition::S8x8;
                else if (dec.flag(ctx::kSubPartition + 1) == 0)
                    mb.subs[i] = SubPartition::S8x4;
                else if (dec.flag(ctx::kSubPartition + 2) == 0)
                    mb.subs[i] = SubPartition::S4x8;
                else
                    mb.subs[i] = SubPartition::S4x4;
            }
        }
        mb.direction = BiDirection::L0;
        if (pos.frameType == FrameType::B) {
            if (dec.flag(ctx::kBiDirection))
                mb.direction = dec.flag(ctx::kBiDirection + 1)
                                   ? BiDirection::Bi
                                   : BiDirection::L1;
        }

        auto clamp_mv = [&dec](i32 v) {
            if (v < -kMaxMvComponent || v > kMaxMvComponent)
                dec.noteViolation(); // encoders never emit these
            return static_cast<i16>(
                std::clamp<i32>(v, -kMaxMvComponent, kMaxMvComponent));
        };

        std::vector<PartitionGeom> rects = mbRects(mb);
        mb.motions.reserve(rects.size());
        for (std::size_t i = 0; i < rects.size(); ++i) {
            MotionInfo motion;
            motion.rect = rects[i];
            motion.direction = mb.direction;
            if (mb.direction != BiDirection::L1) {
                MotionVector pred =
                    mvPredictorForRect(grid, pos, i, mb, false);
                i32 dx = dec.sevlc(ctx::kMvdX, ctx::kMvdX + 1, 8, 2);
                i32 dy = dec.sevlc(ctx::kMvdY, ctx::kMvdY + 1, 8, 2);
                motion.mv = {clamp_mv(pred.x + dx),
                             clamp_mv(pred.y + dy)};
            }
            if (mb.direction != BiDirection::L0) {
                MotionVector pred =
                    mvPredictorForRect(grid, pos, i, mb, true);
                i32 dx =
                    dec.sevlc(ctx::kMvdX + 2, ctx::kMvdX + 3, 8, 2);
                i32 dy =
                    dec.sevlc(ctx::kMvdY + 2, ctx::kMvdY + 3, 8, 2);
                motion.mvL1 = {clamp_mv(pred.x + dx),
                               clamp_mv(pred.y + dy)};
            }
            mb.motions.push_back(motion);
        }
    }

    i32 qp_delta = dec.sevlc(ctx::kQpDelta, ctx::kQpDelta + 1, 6, 0);
    if (prev_qp + qp_delta < kMinQp || prev_qp + qp_delta > kMaxQp)
        dec.noteViolation(); // QP left the legal range: desync
    mb.qp = clampQp(prev_qp + qp_delta);
    prev_qp = mb.qp;

    bool luma8[4];
    for (int g = 0; g < 4; ++g)
        luma8[g] = dec.flag(ctx::kCbf) != 0;
    bool chroma_any[2];
    for (int comp = 0; comp < 2; ++comp)
        chroma_any[comp] = dec.flag(ctx::kCbf + 1) != 0;
    for (int g = 0; g < 4; ++g) {
        if (!luma8[g])
            continue;
        int gx = g % 2, gy = g / 2;
        for (int sy = 0; sy < 2; ++sy)
            for (int sx = 0; sx < 2; ++sx) {
                int blk = (gy * 2 + sy) * 4 + gx * 2 + sx;
                mb.coded[blk] = dec.flag(ctx::kCbf + 2) != 0;
            }
    }
    for (int comp = 0; comp < 2; ++comp) {
        if (!chroma_any[comp])
            continue;
        for (int sub = 0; sub < 4; ++sub)
            mb.coded[16 + comp * 4 + sub] =
                dec.flag(ctx::kCbf + 3) != 0;
    }

    for (int blk = 0; blk < 24; ++blk)
        if (mb.coded[blk])
            mb.coeffs[blk] = decodeResidual(dec);

    updateGridCell(grid, pos, mb);
    return mb;
}

} // namespace videoapp
