/**
 * @file
 * Syntax-element coding layer: one macroblock syntax, two entropy
 * backends.
 *
 * The MB coder speaks in semantic operations (context-conditioned
 * flags, unary/Exp-Golomb hybrid magnitudes, bypass bits). The CABAC
 * backend maps them onto the adaptive binary arithmetic coder with a
 * per-slice context table; the CAVLC backend maps them onto plain
 * variable-length codes with no adaptive state, reproducing the
 * error-tolerance/compression trade-off of H.264's two entropy
 * coders (Section 2.3.4).
 */

#ifndef VIDEOAPP_CODEC_SYNTAX_H_
#define VIDEOAPP_CODEC_SYNTAX_H_

#include <memory>
#include <vector>

#include "codec/arith.h"
#include "common/bitstream.h"

namespace videoapp {

/** Entropy coder selection (encoder configuration). */
enum class EntropyKind : u8 { CABAC = 0, CAVLC = 1 };

const char *entropyKindName(EntropyKind kind);

/**
 * Context identifiers. Contexts are allocated per slice and reset at
 * slice boundaries, which is what lets a decoder resynchronise at the
 * next slice after corruption (Section 3).
 */
namespace ctx {

inline constexpr int kSkip = 0;        // 3: by neighbour skip count
inline constexpr int kIntraFlag = 3;   // 3: by neighbour intra count
inline constexpr int kIntraMode = 6;   // 2 bins
inline constexpr int kPartition = 8;   // 3 tree bins
inline constexpr int kSubPartition = 11; // 3 tree bins
inline constexpr int kBiDirection = 14;  // 2 bins
inline constexpr int kMvdX = 16;       // 5: activity + prefix position
inline constexpr int kMvdY = 21;       // 5
inline constexpr int kQpDelta = 26;    // 3
inline constexpr int kCbf = 29;        // 4: luma/chroma x neighbour cbf
inline constexpr int kSig = 33;        // 15 coefficient positions
inline constexpr int kLast = 48;       // 15
inline constexpr int kLevel = 63;      // 10
inline constexpr int kIntra4 = 73;     // intra16 vs intra4x4
inline constexpr int kIntra4Mode = 74; // per-block predicted-mode flag
inline constexpr int kCount = 75;

} // namespace ctx

/**
 * Abstract syntax encoder. The non-virtual value helpers are built
 * on the two primitive operations so both backends share
 * binarisation logic where it matters (CABAC) and can override where
 * the format differs (CAVLC uses direct Exp-Golomb).
 */
class SyntaxEncoder
{
  public:
    virtual ~SyntaxEncoder() = default;

    /** One context-conditioned binary decision. */
    virtual void flag(int ctx_id, u32 bit) = 0;

    /** One equiprobable bit (signs, suffixes). */
    virtual void bypass(u32 bit) = 0;

    /**
     * Unsigned magnitude: truncated-unary prefix of up to
     * @p max_prefix context-coded bins (first bin uses @p ctx_first,
     * the rest @p ctx_rest), then an order-@p k Exp-Golomb suffix in
     * bypass bins when the prefix saturates.
     */
    virtual void uegk(int ctx_first, int ctx_rest, int max_prefix,
                      int k, u32 value);

    /** Signed value: uegk magnitude plus sign bypass (0 = positive). */
    void sevlc(int ctx_first, int ctx_rest, int max_prefix, int k,
               i32 value);

    /** Finish the slice and return its payload bytes. */
    virtual Bytes finishSlice() = 0;

    /** Approximate bits produced in the current slice. */
    virtual std::size_t bitsProduced() const = 0;

  protected:
    void encodeExpGolomb(u32 value, int k);
};

/** Abstract syntax decoder (mirrors SyntaxEncoder). */
class SyntaxDecoder
{
  public:
    virtual ~SyntaxDecoder() = default;

    virtual u32 flag(int ctx_id) = 0;
    virtual u32 bypass() = 0;
    virtual u32 uegk(int ctx_first, int ctx_rest, int max_prefix,
                     int k);
    i32 sevlc(int ctx_first, int ctx_rest, int max_prefix, int k);

    /**
     * True once the decoder has consumed clearly more data than the
     * slice window holds — one desync signal error concealment acts
     * on. A small overrun margin absorbs the arithmetic coder's
     * normal lookahead so clean slices never trip it.
     */
    virtual bool exhausted() const = 0;

    /**
     * Record a syntax violation: a decoded value hit a clamp or
     * length cap that well-formed streams never reach (callers add
     * semantic checks such as out-of-range QP). Together with
     * exhausted(), this is the corruption-detection signal.
     */
    void noteViolation() { violation_ = true; }

    /** Any violation or window overrun so far? */
    bool
    sawCorruption() const
    {
        return violation_ || exhausted();
    }

  protected:
    bool violation_ = false;

  protected:
    u32 decodeExpGolomb(int k);
};

/** CABAC backend: arithmetic coding + adaptive contexts. */
class CabacEncoder : public SyntaxEncoder
{
  public:
    CabacEncoder();

    void flag(int ctx_id, u32 bit) override;
    void bypass(u32 bit) override;
    Bytes finishSlice() override;
    std::size_t bitsProduced() const override;

  private:
    ArithEncoder arith_;
    std::vector<BinContext> contexts_;
};

class CabacDecoder : public SyntaxDecoder
{
  public:
    CabacDecoder(const Bytes &data, std::size_t offset,
                 std::size_t length);

    u32 flag(int ctx_id) override;
    u32 bypass() override;
    bool exhausted() const override;

  private:
    ArithDecoder arith_;
    std::size_t windowBytes_;
    std::vector<BinContext> contexts_;
};

/** CAVLC-style backend: static variable-length codes, no contexts. */
class CavlcEncoder : public SyntaxEncoder
{
  public:
    void flag(int ctx_id, u32 bit) override;
    void bypass(u32 bit) override;
    void uegk(int ctx_first, int ctx_rest, int max_prefix, int k,
              u32 value) override;
    Bytes finishSlice() override;
    std::size_t bitsProduced() const override;

  private:
    friend class SyntaxEncoder;
    BitWriter writer_;
};

class CavlcDecoder : public SyntaxDecoder
{
  public:
    CavlcDecoder(const Bytes &data, std::size_t offset,
                 std::size_t length);

    u32 flag(int ctx_id) override;
    u32 bypass() override;
    u32 uegk(int ctx_first, int ctx_rest, int max_prefix,
             int k) override;
    bool exhausted() const override;

  private:
    friend class SyntaxDecoder;
    BitReader reader_;
    std::size_t endBit_;
};

/** Factory for the configured backend (fresh slice state). */
std::unique_ptr<SyntaxEncoder> makeSyntaxEncoder(EntropyKind kind);
std::unique_ptr<SyntaxDecoder> makeSyntaxDecoder(EntropyKind kind,
                                                 const Bytes &data,
                                                 std::size_t offset,
                                                 std::size_t length);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_SYNTAX_H_
