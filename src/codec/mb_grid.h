/**
 * @file
 * Per-frame macroblock neighbour state shared by encoder and
 * decoder.
 *
 * Every context selection and every metadata prediction (median
 * motion vectors, intra-mode prediction, delta-QP chains) reads
 * neighbour state from this grid; using one implementation on both
 * sides is what guarantees bit-exact encoder/decoder parity — and it
 * is exactly this shared state that bit flips desynchronise,
 * producing the paper's coding-error propagation (Figure 2).
 */

#ifndef VIDEOAPP_CODEC_MB_GRID_H_
#define VIDEOAPP_CODEC_MB_GRID_H_

#include <array>
#include <vector>

#include "codec/types.h"

namespace videoapp {

/** Decoded state of one macroblock, as neighbours see it. */
struct MbState
{
    bool valid = false;   // already coded in the current slice
    bool skip = false;
    bool intra = false;
    IntraMode intraMode = IntraMode::DC;
    bool intra4 = false;
    std::array<u8, 16> intra4Modes{};
    MotionVector mvL0;
    MotionVector mvL1;
    bool codedLuma = false;
    bool codedChroma = false;
};

class MbGrid
{
  public:
    MbGrid(int mb_width, int mb_height);

    /** Reset all state (new frame). */
    void reset();

    MbState &at(int mbx, int mby);
    const MbState &at(int mbx, int mby) const;

    int mbWidth() const { return mbWidth_; }
    int mbHeight() const { return mbHeight_; }

    /**
     * Neighbour availability. @p slice_first_row is the first MB row
     * of the current slice: prediction never crosses a slice
     * boundary (Section 8, slices).
     */
    bool leftAvail(int mbx, int mby, int slice_first_row) const;
    bool upAvail(int mbx, int mby, int slice_first_row) const;
    bool upRightAvail(int mbx, int mby, int slice_first_row) const;
    bool upLeftAvail(int mbx, int mby, int slice_first_row) const;

    /**
     * H.264-style median motion vector predictor from the left, up
     * and up-right neighbours (up-left substitutes a missing
     * up-right). Intra or unavailable candidates contribute (0,0);
     * when only the left neighbour exists, its vector is used
     * directly. @p l1 selects the L1 vectors (B-frames).
     */
    MotionVector predictMv(int mbx, int mby, int slice_first_row,
                           bool l1) const;

    /** Context increments derived from neighbour state. */
    int skipCtx(int mbx, int mby, int slice_first_row) const;
    int intraCtx(int mbx, int mby, int slice_first_row) const;

  private:
    int mbWidth_;
    int mbHeight_;
    std::vector<MbState> cells_;
};

} // namespace videoapp

#endif // VIDEOAPP_CODEC_MB_GRID_H_
