/**
 * @file
 * Inter prediction: quarter-pel motion estimation and compensation
 * over partitioned macroblocks, plus the reference-area accounting
 * that produces the paper's compensation dependency weights
 * (Section 4.1, Figure 4).
 *
 * Motion vectors are in QUARTER-pel units (H.264's native MV
 * resolution). Half-sample positions use the H.264 6-tap filter
 * (1, -5, 20, 20, -5, 1)/32; quarter samples average the nearest
 * half/integer positions. Estimation runs an integer-pel diamond
 * search followed by half- then quarter-pel refinements, the
 * classic three-stage strategy.
 */

#ifndef VIDEOAPP_CODEC_INTER_H_
#define VIDEOAPP_CODEC_INTER_H_

#include <vector>

#include "codec/types.h"
#include "video/frame.h"

namespace videoapp {

/**
 * Sample @p reference at half-pel coordinates (@p x2, @p y2), each
 * in half-pel units. Integer positions read directly; half
 * positions interpolate with the 6-tap filter (edge-clamped).
 */
u8 sampleHalfPel(const Plane &reference, int x2, int y2);

/**
 * Sample @p reference at quarter-pel coordinates (@p x4, @p y4).
 * Quarter positions average the two nearest half/integer samples
 * (H.264's bilinear quarter-sample rule).
 */
u8 sampleQuarterPel(const Plane &reference, int x4, int y4);

/** Sub-pel precision of motion search/compensation. */
enum class SubPel : u8 { Full = 0, Half = 1, Quarter = 2 };

/** SAD between a source rect and a (quarter-pel) reference window. */
long sadRectQuarterPel(const Plane &source, int sx, int sy, int w,
                       int h, const Plane &reference,
                       const MotionVector &mv);

/** Result of a motion search (mv in quarter-pel units). */
struct MotionSearchResult
{
    MotionVector mv;
    long sad = 0;
};

/**
 * Three-stage search for the rectangle (@p sx, @p sy, @p w, @p h)
 * in @p reference: integer diamond around @p predictor, then half-
 * and quarter-pel refinements as @p sub_pel allows. @p range bounds
 * the vector in full pixels.
 */
MotionSearchResult motionSearch(const Plane &source, int sx, int sy,
                                int w, int h, const Plane &reference,
                                const MotionVector &predictor,
                                int range,
                                SubPel sub_pel = SubPel::Quarter);

/**
 * Write the motion-compensated prediction for the rectangle at
 * absolute pixel position (@p dx, @p dy) into @p out (row-major
 * w*h). @p mv is in quarter-pel units; reads are edge-clamped.
 */
void compensateRect(const Plane &reference, int dx, int dy, int w,
                    int h, const MotionVector &mv, u8 *out);

/** Average two predictions into @p out (bi-prediction). */
void averagePredictions(const u8 *a, const u8 *b, int count, u8 *out);

/** Weighted reference-area contribution of one source macroblock. */
struct AreaDependency
{
    int mbx, mby;
    int pixels;
};

/**
 * For the compensated rectangle at absolute (@p dx, @p dy), size
 * @p w x @p h, with quarter-pel motion vector @p mv into a frame of
 * @p width x @p height: how many referenced pixels fall into each
 * source MB (after edge clamping). Fractional positions reference
 * the 6-tap footprint, so the counted region grows by the filter
 * support; counts are normalised by the caller against their total.
 */
std::vector<AreaDependency> referenceAreas(int dx, int dy, int w,
                                           int h,
                                           const MotionVector &mv,
                                           int width, int height);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_INTER_H_
