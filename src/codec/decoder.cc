#include "codec/decoder.h"

#include <algorithm>

#include "codec/deblock.h"
#include "codec/mb_grid.h"
#include "codec/mb_syntax.h"
#include "codec/reconstruct.h"

namespace videoapp {

namespace {

/** Conceal one MB: copy co-located pixels from @p ref (gray if
 * absent) and mark the grid cell as a zero-motion placeholder. */
void
concealMb(Frame &recon, const Frame *ref, MbGrid &grid, int mbx,
          int mby, std::vector<MbCoding> &codings, int mbw)
{
    int x0 = mbx * 16, y0 = mby * 16;
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            recon.y().at(x0 + x, y0 + y) =
                ref ? ref->y().at(x0 + x, y0 + y) : 128;
    int cx0 = mbx * 8, cy0 = mby * 8;
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            recon.u().at(cx0 + x, cy0 + y) =
                ref ? ref->u().at(cx0 + x, cy0 + y) : 128;
            recon.v().at(cx0 + x, cy0 + y) =
                ref ? ref->v().at(cx0 + x, cy0 + y) : 128;
        }
    }
    MbState &cell = grid.at(mbx, mby);
    cell = MbState{};
    cell.valid = true;
    cell.skip = true;
    MbCoding placeholder;
    placeholder.skip = true;
    MotionInfo motion;
    motion.rect = {0, 0, 16, 16};
    placeholder.motions.push_back(motion);
    codings[static_cast<std::size_t>(mby) * mbw + mbx] =
        std::move(placeholder);
}

} // namespace

Video
decodeVideo(const EncodedVideo &coded, const DecodeOptions &options,
            DecodeStats *stats)
{
    const int width = coded.header.width;
    const int height = coded.header.height;
    const int mbw = coded.mbWidth();
    const int mbh = coded.mbHeight();

    Video out;
    out.fps = coded.header.fps;
    if (width <= 0 || height <= 0 || width % 16 || height % 16)
        return out;
    out.frames.assign(coded.header.frameCount,
                      Frame(width, height));

    std::vector<Frame> recons;
    recons.reserve(coded.frameHeaders.size());
    MbGrid grid(mbw, mbh);

    const std::size_t frame_count = std::min(
        coded.frameHeaders.size(), coded.payloads.size());
    for (std::size_t enc_idx = 0; enc_idx < frame_count; ++enc_idx) {
        const FrameHeader &header = coded.frameHeaders[enc_idx];
        const Bytes &payload = coded.payloads[enc_idx];

        // Resolve references; malformed indices become null (the
        // reconstruction then predicts neutral gray, never faults).
        auto ref_at = [&](i32 idx) -> const Frame * {
            if (idx < 0 || static_cast<std::size_t>(idx) >= enc_idx)
                return nullptr;
            return &recons[static_cast<std::size_t>(idx)];
        };
        const Frame *ref0 = ref_at(header.ref0);
        const Frame *ref1 = ref_at(header.ref1);

        Frame recon(width, height);
        grid.reset();
        std::vector<MbCoding> codings(
            static_cast<std::size_t>(mbw) * mbh);
        std::vector<int> slice_first_rows;

        for (const SliceRecord &slice : header.slices) {
            // Malformed (or deliberately corrupted) headers may
            // point outside the MB grid entirely; skip such slices.
            if (slice.firstMb >= static_cast<u32>(mbw * mbh))
                continue;
            // Clamp the slice window into the payload.
            std::size_t offset =
                std::min<std::size_t>(slice.byteOffset,
                                      payload.size());
            std::size_t length = std::min<std::size_t>(
                slice.byteLength, payload.size() - offset);
            auto dec = makeSyntaxDecoder(coded.header.entropy,
                                         payload, offset, length);

            int first_row = static_cast<int>(
                std::min<u32>(slice.firstMb, mbw * mbh) /
                static_cast<u32>(mbw));
            slice_first_rows.push_back(first_row);
            int prev_qp = clampQp(header.qpBase);

            u32 mb_count = std::min<u32>(
                slice.mbCount,
                static_cast<u32>(mbw * mbh) - slice.firstMb);
            bool concealing = false;
            for (u32 k = 0; k < mb_count; ++k) {
                u32 mb_idx = slice.firstMb + k;
                int mbx = static_cast<int>(mb_idx) % mbw;
                int mby = static_cast<int>(mb_idx) / mbw;
                if (stats)
                    ++stats->totalMbs;
                if (concealing) {
                    concealMb(recon, ref0, grid, mbx, mby, codings,
                              mbw);
                    if (stats)
                        ++stats->concealedMbs;
                    continue;
                }
                MbPosition pos{mbx, mby, first_row, header.type};
                MbCoding mb = decodeMb(*dec, pos, grid, prev_qp);
                MbAvail avail;
                avail.left = grid.leftAvail(mbx, mby, first_row);
                avail.up = grid.upAvail(mbx, mby, first_row);
                avail.upLeft =
                    grid.upLeftAvail(mbx, mby, first_row);
                avail.upRight =
                    grid.upRightAvail(mbx, mby, first_row);
                reconstructMb(recon, mb, mbx, mby, ref0, ref1,
                              avail);
                codings[mb_idx] = std::move(mb);
                if (options.concealErrors && dec->sawCorruption())
                    concealing = true;
            }
        }

        if (coded.header.deblocking())
            deblockFrame(recon, codings, mbw, mbh,
                         slice_first_rows);

        if (header.displayIdx < out.frames.size())
            out.frames[header.displayIdx] = recon;
        recons.push_back(std::move(recon));
    }
    return out;
}

} // namespace videoapp
