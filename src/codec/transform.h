/**
 * @file
 * The H.264 4x4 integer transform and quantisation (Section 2.3.2,
 * "transformation" and "quantization" coding tasks).
 *
 * Uses the standard core transform Cf and the MF/V multiplier tables
 * of the H.264 reference model, so quantisation behaviour (and hence
 * residual statistics feeding the entropy coder) matches real
 * encoders. The DC Hadamard pass of Intra16x16 is omitted; this only
 * affects compression of flat MBs, not the dependency structure.
 */

#ifndef VIDEOAPP_CODEC_TRANSFORM_H_
#define VIDEOAPP_CODEC_TRANSFORM_H_

#include <array>

#include "common/types.h"

namespace videoapp {

/** A 4x4 block of residual samples (row major). */
using Residual4x4 = std::array<i16, 16>;

/** Forward transform + quantisation at @p qp. @p intra picks the
 * rounding offset (f = 2^qbits/3 intra, /6 inter). */
Residual4x4 forwardQuant4x4(const Residual4x4 &residual, int qp,
                            bool intra);

/** Dequantisation + inverse transform back to the pixel domain. */
Residual4x4 inverseQuant4x4(const Residual4x4 &levels, int qp);

/** True if any quantised level is nonzero. */
bool anyNonZero(const Residual4x4 &levels);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_TRANSFORM_H_
