#include "codec/rate_control.h"

#include <algorithm>
#include <cmath>

namespace videoapp {

int
RateControl::frameBaseQp(FrameType type) const
{
    int qp = crf_ + abrOffset_;
    switch (type) {
      case FrameType::I:
        qp -= 3; // anchors deserve quality: everything references them
        break;
      case FrameType::P:
        break;
      case FrameType::B:
        qp += 2; // rarely referenced; spend less
        break;
    }
    return clampQp(qp);
}

void
RateControl::setBitrateTarget(int kbps, double fps)
{
    if (kbps <= 0 || fps <= 0) {
        bitsPerFrameTarget_ = 0.0;
        return;
    }
    bitsPerFrameTarget_ = 1000.0 * kbps / fps;
}

void
RateControl::frameDone(u64 bits)
{
    if (bitsPerFrameTarget_ <= 0.0)
        return;
    bitsProduced_ += bits;
    ++framesDone_;
    double target = bitsPerFrameTarget_ * framesDone_;
    double ratio = static_cast<double>(bitsProduced_) / target;
    // QP moves ~6 per doubling of size, so log2 of the overshoot
    // ratio is the natural correction; damp and clamp it.
    abrOffset_ = std::clamp(
        static_cast<int>(std::lround(4.0 * std::log2(ratio))), -10,
        10);
}

double
RateControl::mbActivity(const Plane &source, int mbx, int mby)
{
    int x0 = mbx * kMbSize, y0 = mby * kMbSize;
    double sum = 0, sum_sq = 0;
    for (int y = 0; y < kMbSize; ++y) {
        for (int x = 0; x < kMbSize; ++x) {
            double v = source.at(x0 + x, y0 + y);
            sum += v;
            sum_sq += v * v;
        }
    }
    const double n = kMbSize * kMbSize;
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    return var > 0 ? var : 0;
}

double
RateControl::averageActivity(const Plane &source)
{
    int mbw = source.width() / kMbSize;
    int mbh = source.height() / kMbSize;
    double total = 0;
    for (int y = 0; y < mbh; ++y)
        for (int x = 0; x < mbw; ++x)
            total += mbActivity(source, x, y);
    return (mbw != 0 && mbh != 0) ? total / (mbw * mbh) : 0;
}

int
RateControl::mbQp(FrameType type, const Plane &source, int mbx,
                  int mby, double avg_activity) const
{
    int qp = frameBaseQp(type);
    // Adaptive quantisation in the x264 spirit: QP follows the log
    // ratio of local to average activity, clamped to a small window.
    double act = mbActivity(source, mbx, mby);
    double ratio = (act + 1.0) / (avg_activity + 1.0);
    int offset = static_cast<int>(
        std::lround(1.5 * std::log2(ratio)));
    offset = std::clamp(offset, -3, 3);
    return clampQp(qp + offset);
}

double
RateControl::lambdaFor(int qp)
{
    return 0.85 * std::pow(2.0, (qp - 12) / 3.0);
}

} // namespace videoapp
