#include "codec/container.h"

namespace videoapp {

namespace {

constexpr u32 kMagic = 0x56415031; // "VAP1"

void
putU16(Bytes &out, u16 v)
{
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v));
}

void
putU32(Bytes &out, u32 v)
{
    putU16(out, static_cast<u16>(v >> 16));
    putU16(out, static_cast<u16>(v));
}

void
putU64(Bytes &out, u64 v)
{
    putU32(out, static_cast<u32>(v >> 32));
    putU32(out, static_cast<u32>(v));
}

struct ByteCursor
{
    const Bytes *data;
    std::size_t pos = 0;
    bool ok = true;

    u8
    u8v()
    {
        if (pos >= data->size()) {
            ok = false;
            return 0;
        }
        return (*data)[pos++];
    }

    u16
    u16v()
    {
        // Two statements: the evaluation order of a|b is unspecified.
        u16 hi = u8v();
        u16 lo = u8v();
        return static_cast<u16>(hi << 8 | lo);
    }

    u32
    u32v()
    {
        u32 hi = u16v();
        return hi << 16 | u16v();
    }

    u64
    u64v()
    {
        u64 hi = u32v();
        return hi << 32 | u32v();
    }
};

void
serializeFrameHeader(Bytes &out, const FrameHeader &fh)
{
    putU16(out, fh.displayIdx);
    out.push_back(static_cast<u8>(fh.type));
    out.push_back(fh.qpBase);
    putU32(out, static_cast<u32>(fh.ref0));
    putU32(out, static_cast<u32>(fh.ref1));
    out.push_back(static_cast<u8>(fh.slices.size()));
    for (const auto &s : fh.slices) {
        putU32(out, s.firstMb);
        putU32(out, s.mbCount);
        putU32(out, s.byteOffset);
        putU32(out, s.byteLength);
    }
    putU16(out, static_cast<u16>(fh.pivots.size()));
    for (const auto &p : fh.pivots) {
        putU64(out, p.bitOffset);
        out.push_back(p.schemeT);
    }
}

bool
deserializeFrameHeader(ByteCursor &in, FrameHeader &fh)
{
    fh.displayIdx = in.u16v();
    fh.type = static_cast<FrameType>(in.u8v());
    fh.qpBase = in.u8v();
    fh.ref0 = static_cast<i32>(in.u32v());
    fh.ref1 = static_cast<i32>(in.u32v());
    u8 slices = in.u8v();
    fh.slices.resize(slices);
    for (auto &s : fh.slices) {
        s.firstMb = in.u32v();
        s.mbCount = in.u32v();
        s.byteOffset = in.u32v();
        s.byteLength = in.u32v();
    }
    u16 pivots = in.u16v();
    fh.pivots.resize(pivots);
    for (auto &p : fh.pivots) {
        p.bitOffset = in.u64v();
        p.schemeT = in.u8v();
    }
    return in.ok;
}

} // namespace

u64
EncodedVideo::payloadBits() const
{
    u64 total = 0;
    for (const auto &p : payloads)
        total += p.size() * 8;
    return total;
}

u64
EncodedVideo::headerBits() const
{
    return serializeHeaders(*this).size() * 8;
}

Bytes
serializeHeaders(const EncodedVideo &video)
{
    Bytes out;
    putU32(out, kMagic);
    putU16(out, video.header.width);
    putU16(out, video.header.height);
    // fps as fixed-point 16.16.
    putU32(out, static_cast<u32>(video.header.fps * 65536.0));
    out.push_back(static_cast<u8>(video.header.entropy));
    putU16(out, video.header.frameCount);
    out.push_back(video.header.slicesPerFrame);
    out.push_back(video.header.flags);
    putU16(out, static_cast<u16>(video.frameHeaders.size()));
    for (const auto &fh : video.frameHeaders)
        serializeFrameHeader(out, fh);
    return out;
}

Bytes
serialize(const EncodedVideo &video)
{
    Bytes out = serializeHeaders(video);
    putU16(out, static_cast<u16>(video.payloads.size()));
    for (const auto &p : video.payloads) {
        putU64(out, p.size());
        out.insert(out.end(), p.begin(), p.end());
    }
    return out;
}

namespace {

/** Parse the serializeHeaders() section at the cursor. */
bool
parseHeaders(ByteCursor &in, EncodedVideo &video)
{
    if (in.u32v() != kMagic || !in.ok)
        return false;
    video.header.width = in.u16v();
    video.header.height = in.u16v();
    video.header.fps = in.u32v() / 65536.0;
    video.header.entropy = static_cast<EntropyKind>(in.u8v());
    video.header.frameCount = in.u16v();
    video.header.slicesPerFrame = in.u8v();
    video.header.flags = in.u8v();

    u16 frames = in.u16v();
    video.frameHeaders.resize(frames);
    for (auto &fh : video.frameHeaders) {
        if (!deserializeFrameHeader(in, fh))
            return false;
    }
    return in.ok;
}

} // namespace

std::optional<EncodedVideo>
deserializeHeaders(const Bytes &blob)
{
    ByteCursor in{&blob};
    EncodedVideo video;
    if (!parseHeaders(in, video))
        return std::nullopt;
    return video;
}

std::optional<EncodedVideo>
deserialize(const Bytes &blob)
{
    ByteCursor in{&blob};
    EncodedVideo video;
    if (!parseHeaders(in, video))
        return std::nullopt;

    u16 payloads = in.u16v();
    video.payloads.resize(payloads);
    for (auto &p : video.payloads) {
        u64 size = in.u64v();
        // Compare against the remaining bytes: `pos + size` could
        // wrap for adversarial 64-bit sizes.
        if (!in.ok || size > blob.size() - in.pos)
            return std::nullopt;
        p.assign(blob.begin() + static_cast<std::ptrdiff_t>(in.pos),
                 blob.begin() +
                     static_cast<std::ptrdiff_t>(in.pos + size));
        in.pos += size;
    }
    if (!in.ok)
        return std::nullopt;
    return video;
}

} // namespace videoapp
