#include "codec/types.h"

#include <algorithm>

namespace videoapp {

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::I: return "I";
      case FrameType::P: return "P";
      case FrameType::B: return "B";
    }
    return "?";
}

MotionVector
medianMv(const MotionVector &a, const MotionVector &b,
         const MotionVector &c)
{
    auto med = [](i16 x, i16 y, i16 z) {
        return std::max(std::min(x, y),
                        std::min(std::max(x, y), z));
    };
    return {med(a.x, b.x, c.x), med(a.y, b.y, c.y)};
}

std::vector<PartitionGeom>
partitionGeom(Partition p)
{
    switch (p) {
      case Partition::P16x16:
        return {{0, 0, 16, 16}};
      case Partition::P16x8:
        return {{0, 0, 16, 8}, {0, 8, 16, 8}};
      case Partition::P8x16:
        return {{0, 0, 8, 16}, {8, 0, 8, 16}};
      case Partition::P8x8:
        return {{0, 0, 8, 8}, {8, 0, 8, 8}, {0, 8, 8, 8},
                {8, 8, 8, 8}};
    }
    return {};
}

std::vector<PartitionGeom>
subPartitionGeom(SubPartition s, int bx, int by)
{
    switch (s) {
      case SubPartition::S8x8:
        return {{bx, by, 8, 8}};
      case SubPartition::S8x4:
        return {{bx, by, 8, 4}, {bx, by + 4, 8, 4}};
      case SubPartition::S4x8:
        return {{bx, by, 4, 8}, {bx + 4, by, 4, 8}};
      case SubPartition::S4x4:
        return {{bx, by, 4, 4}, {bx + 4, by, 4, 4},
                {bx, by + 4, 4, 4}, {bx + 4, by + 4, 4, 4}};
    }
    return {};
}

int
clampQp(int qp)
{
    return std::clamp(qp, kMinQp, kMaxQp);
}

} // namespace videoapp
