#include "codec/arith.h"

namespace videoapp {

namespace {

constexpr u32 kTopValue = 1u << 24;

} // namespace

ArithEncoder::ArithEncoder()
    : low_(0), range_(0xFFFFFFFFu), cache_(0), cacheSize_(1)
{
}

void
ArithEncoder::shiftLow()
{
    if (static_cast<u32>(low_ >> 32) != 0 ||
        static_cast<u32>(low_) < 0xFF000000u) {
        u8 carry = static_cast<u8>(low_ >> 32);
        // Emit the cached byte (plus carry) and any pending 0xFF run.
        while (cacheSize_ != 0) {
            out_.push_back(static_cast<u8>(cache_ + carry));
            cache_ = 0xFF;
            --cacheSize_;
        }
        cache_ = static_cast<u8>(low_ >> 24);
    }
    ++cacheSize_;
    low_ = (low_ << 8) & 0xFFFFFFFFull;
}

void
ArithEncoder::encodeBin(BinContext &ctx, u32 bin)
{
    u32 bound = (range_ >> kProbBits) * ctx.prob;
    if (bin == 0) {
        range_ = bound;
    } else {
        low_ += bound;
        range_ -= bound;
    }
    ctx.update(bin);
    while (range_ < kTopValue) {
        range_ <<= 8;
        shiftLow();
    }
}

void
ArithEncoder::encodeBypass(u32 bin)
{
    range_ >>= 1;
    if (bin != 0)
        low_ += range_;
    while (range_ < kTopValue) {
        range_ <<= 8;
        shiftLow();
    }
}

Bytes
ArithEncoder::finish()
{
    for (int i = 0; i < 5; ++i)
        shiftLow();
    Bytes result;
    result.swap(out_);
    // The first byte emitted is always the initial zero cache; drop
    // it (the decoder compensates by priming with 5 reads of which
    // the first is likewise synthetic).
    if (!result.empty())
        result.erase(result.begin());
    low_ = 0;
    range_ = 0xFFFFFFFFu;
    cache_ = 0;
    cacheSize_ = 1;
    return result;
}

ArithDecoder::ArithDecoder(const Bytes &data, std::size_t offset,
                           std::size_t length)
    : data_(&data), begin_(offset), pos_(offset),
      end_(offset + length), range_(0xFFFFFFFFu), code_(0)
{
    for (int i = 0; i < 4; ++i)
        code_ = (code_ << 8) | nextByte();
}

u8
ArithDecoder::nextByte()
{
    if (pos_ >= end_ || pos_ >= data_->size()) {
        ++pos_;
        return 0;
    }
    return (*data_)[pos_++];
}

u32
ArithDecoder::decodeBin(BinContext &ctx)
{
    u32 bound = (range_ >> kProbBits) * ctx.prob;
    u32 bin;
    if (code_ < bound) {
        bin = 0;
        range_ = bound;
    } else {
        bin = 1;
        code_ -= bound;
        range_ -= bound;
    }
    ctx.update(bin);
    while (range_ < kTopValue) {
        range_ <<= 8;
        code_ = (code_ << 8) | nextByte();
    }
    return bin;
}

u32
ArithDecoder::decodeBypass()
{
    range_ >>= 1;
    u32 bin = 0;
    if (code_ >= range_) {
        code_ -= range_;
        bin = 1;
    }
    while (range_ < kTopValue) {
        range_ <<= 8;
        code_ = (code_ << 8) | nextByte();
    }
    return bin;
}

} // namespace videoapp
