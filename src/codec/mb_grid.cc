#include "codec/mb_grid.h"

#include <cassert>

namespace videoapp {

MbGrid::MbGrid(int mb_width, int mb_height)
    : mbWidth_(mb_width), mbHeight_(mb_height),
      cells_(static_cast<std::size_t>(mb_width) * mb_height)
{
}

void
MbGrid::reset()
{
    for (auto &c : cells_)
        c = MbState{};
}

MbState &
MbGrid::at(int mbx, int mby)
{
    assert(mbx >= 0 && mbx < mbWidth_ && mby >= 0 && mby < mbHeight_);
    return cells_[static_cast<std::size_t>(mby) * mbWidth_ + mbx];
}

const MbState &
MbGrid::at(int mbx, int mby) const
{
    assert(mbx >= 0 && mbx < mbWidth_ && mby >= 0 && mby < mbHeight_);
    return cells_[static_cast<std::size_t>(mby) * mbWidth_ + mbx];
}

bool
MbGrid::leftAvail(int mbx, int mby, int slice_first_row) const
{
    (void)slice_first_row;
    return mbx > 0 && at(mbx - 1, mby).valid;
}

bool
MbGrid::upAvail(int mbx, int mby, int slice_first_row) const
{
    return mby > slice_first_row && at(mbx, mby - 1).valid;
}

bool
MbGrid::upRightAvail(int mbx, int mby, int slice_first_row) const
{
    return mby > slice_first_row && mbx + 1 < mbWidth_ &&
           at(mbx + 1, mby - 1).valid;
}

bool
MbGrid::upLeftAvail(int mbx, int mby, int slice_first_row) const
{
    return mby > slice_first_row && mbx > 0 &&
           at(mbx - 1, mby - 1).valid;
}

MotionVector
MbGrid::predictMv(int mbx, int mby, int slice_first_row, bool l1) const
{
    auto vec = [l1](const MbState &s) {
        return l1 ? s.mvL1 : s.mvL0;
    };

    bool a_avail = leftAvail(mbx, mby, slice_first_row);
    bool b_avail = upAvail(mbx, mby, slice_first_row);
    bool c_avail = upRightAvail(mbx, mby, slice_first_row);
    int c_dx = 1;
    if (!c_avail && upLeftAvail(mbx, mby, slice_first_row)) {
        c_avail = true;
        c_dx = -1;
    }

    // Candidates; intra neighbours count as zero vectors.
    MotionVector a{}, b{}, c{};
    if (a_avail && !at(mbx - 1, mby).intra)
        a = vec(at(mbx - 1, mby));
    if (b_avail && !at(mbx, mby - 1).intra)
        b = vec(at(mbx, mby - 1));
    if (c_avail && !at(mbx + c_dx, mby - 1).intra)
        c = vec(at(mbx + c_dx, mby - 1));

    // H.264 special case: with no row above, inherit the left MV.
    if (a_avail && !b_avail && !c_avail)
        return a;

    return medianMv(a, b, c);
}

int
MbGrid::skipCtx(int mbx, int mby, int slice_first_row) const
{
    int ctx = 0;
    if (leftAvail(mbx, mby, slice_first_row) &&
        !at(mbx - 1, mby).skip)
        ++ctx;
    if (upAvail(mbx, mby, slice_first_row) && !at(mbx, mby - 1).skip)
        ++ctx;
    return ctx;
}

int
MbGrid::intraCtx(int mbx, int mby, int slice_first_row) const
{
    int ctx = 0;
    if (leftAvail(mbx, mby, slice_first_row) && at(mbx - 1, mby).intra)
        ++ctx;
    if (upAvail(mbx, mby, slice_first_row) && at(mbx, mby - 1).intra)
        ++ctx;
    return ctx;
}

} // namespace videoapp
