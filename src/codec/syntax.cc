#include "codec/syntax.h"

#include <cassert>

namespace videoapp {

namespace {

/** Cap on decoded magnitudes: corrupted streams must stay bounded. */
constexpr u32 kMaxDecodedValue = 1u << 20;
/** Cap on Exp-Golomb prefix length during decode. */
constexpr int kMaxEgPrefix = 24;

} // namespace

const char *
entropyKindName(EntropyKind kind)
{
    return kind == EntropyKind::CABAC ? "CABAC" : "CAVLC";
}

// --- Shared binarisation ------------------------------------------------

void
SyntaxEncoder::encodeExpGolomb(u32 value, int k)
{
    // Order-k Exp-Golomb in bypass bins (H.264 UEGk suffix).
    while (value >= (1u << k)) {
        bypass(1);
        value -= 1u << k;
        ++k;
        if (k > 30)
            break; // unreachable for capped values; safety net
    }
    bypass(0);
    for (int i = k - 1; i >= 0; --i)
        bypass((value >> i) & 1u);
}

u32
SyntaxDecoder::decodeExpGolomb(int k)
{
    u32 value = 0;
    int count = 0;
    while (bypass() == 1) {
        value += 1u << k;
        ++k;
        if (++count > kMaxEgPrefix) {
            // Well-formed streams never reach this prefix length.
            noteViolation();
            break;
        }
    }
    for (int i = k - 1; i >= 0; --i)
        value += bypass() << i;
    if (value > kMaxDecodedValue) {
        noteViolation();
        return kMaxDecodedValue;
    }
    return value;
}

void
SyntaxEncoder::uegk(int ctx_first, int ctx_rest, int max_prefix, int k,
                    u32 value)
{
    int prefix = static_cast<int>(
        value < static_cast<u32>(max_prefix) ? value : max_prefix);
    for (int i = 0; i < prefix; ++i)
        flag(i == 0 ? ctx_first : ctx_rest, 1);
    if (prefix < max_prefix)
        flag(prefix == 0 ? ctx_first : ctx_rest, 0);
    else
        encodeExpGolomb(value - max_prefix, k);
}

u32
SyntaxDecoder::uegk(int ctx_first, int ctx_rest, int max_prefix, int k)
{
    int prefix = 0;
    while (prefix < max_prefix &&
           flag(prefix == 0 ? ctx_first : ctx_rest) == 1)
        ++prefix;
    if (prefix < max_prefix)
        return static_cast<u32>(prefix);
    u32 value = static_cast<u32>(max_prefix) + decodeExpGolomb(k);
    return value > kMaxDecodedValue ? kMaxDecodedValue : value;
}

void
SyntaxEncoder::sevlc(int ctx_first, int ctx_rest, int max_prefix, int k,
                     i32 value)
{
    u32 mag = static_cast<u32>(value < 0 ? -value : value);
    uegk(ctx_first, ctx_rest, max_prefix, k, mag);
    if (mag != 0)
        bypass(value < 0 ? 1u : 0u);
}

i32
SyntaxDecoder::sevlc(int ctx_first, int ctx_rest, int max_prefix, int k)
{
    u32 mag = uegk(ctx_first, ctx_rest, max_prefix, k);
    if (mag == 0)
        return 0;
    return bypass() ? -static_cast<i32>(mag) : static_cast<i32>(mag);
}

// --- CABAC backend -------------------------------------------------------

CabacEncoder::CabacEncoder()
    : contexts_(ctx::kCount)
{
}

void
CabacEncoder::flag(int ctx_id, u32 bit)
{
    assert(ctx_id >= 0 && ctx_id < ctx::kCount);
    arith_.encodeBin(contexts_[ctx_id], bit);
}

void
CabacEncoder::bypass(u32 bit)
{
    arith_.encodeBypass(bit);
}

Bytes
CabacEncoder::finishSlice()
{
    Bytes out = arith_.finish();
    // Fresh contexts for the next slice (per-slice reset, which is
    // what allows the decoder to resynchronise after corruption).
    contexts_.assign(ctx::kCount, BinContext{});
    return out;
}

std::size_t
CabacEncoder::bitsProduced() const
{
    return arith_.bitsProduced();
}

CabacDecoder::CabacDecoder(const Bytes &data, std::size_t offset,
                           std::size_t length)
    : arith_(data, offset, length), windowBytes_(length),
      contexts_(ctx::kCount)
{
}

u32
CabacDecoder::flag(int ctx_id)
{
    assert(ctx_id >= 0 && ctx_id < ctx::kCount);
    return arith_.decodeBin(contexts_[ctx_id]);
}

u32
CabacDecoder::bypass()
{
    return arith_.decodeBypass();
}

bool
CabacDecoder::exhausted() const
{
    // The range decoder legitimately looks ahead a few bytes; only
    // a clear overrun indicates desync.
    return arith_.bytesConsumed() > windowBytes_ + 8;
}

// --- CAVLC backend ---------------------------------------------------------

void
CavlcEncoder::flag(int ctx_id, u32 bit)
{
    (void)ctx_id; // no adaptive state: this is what buys resilience
    writer_.writeBit(bit);
}

void
CavlcEncoder::bypass(u32 bit)
{
    writer_.writeBit(bit);
}

void
CavlcEncoder::uegk(int ctx_first, int ctx_rest, int max_prefix, int k,
                   u32 value)
{
    (void)ctx_first;
    (void)ctx_rest;
    (void)max_prefix;
    // Plain order-k Exp-Golomb codeword, H.264 ue(v) style.
    encodeExpGolomb(value, k);
}

Bytes
CavlcEncoder::finishSlice()
{
    writer_.alignToByte();
    return writer_.take();
}

std::size_t
CavlcEncoder::bitsProduced() const
{
    return writer_.bitCount();
}

CavlcDecoder::CavlcDecoder(const Bytes &data, std::size_t offset,
                           std::size_t length)
    : reader_(data, offset * 8), endBit_((offset + length) * 8)
{
}

u32
CavlcDecoder::flag(int ctx_id)
{
    (void)ctx_id;
    if (reader_.position() >= endBit_)
        return 0;
    return reader_.readBit();
}

u32
CavlcDecoder::bypass()
{
    if (reader_.position() >= endBit_)
        return 0;
    return reader_.readBit();
}

u32
CavlcDecoder::uegk(int ctx_first, int ctx_rest, int max_prefix, int k)
{
    (void)ctx_first;
    (void)ctx_rest;
    (void)max_prefix;
    return decodeExpGolomb(k);
}

bool
CavlcDecoder::exhausted() const
{
    return reader_.position() > endBit_ + 64;
}

// --- Factories -----------------------------------------------------------------

std::unique_ptr<SyntaxEncoder>
makeSyntaxEncoder(EntropyKind kind)
{
    if (kind == EntropyKind::CABAC)
        return std::make_unique<CabacEncoder>();
    return std::make_unique<CavlcEncoder>();
}

std::unique_ptr<SyntaxDecoder>
makeSyntaxDecoder(EntropyKind kind, const Bytes &data,
                  std::size_t offset, std::size_t length)
{
    if (kind == EntropyKind::CABAC)
        return std::make_unique<CabacDecoder>(data, offset, length);
    return std::make_unique<CavlcDecoder>(data, offset, length);
}

} // namespace videoapp
