#include "codec/encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "codec/deblock.h"
#include "codec/intra.h"
#include "codec/intra4.h"
#include "codec/inter.h"
#include "codec/mb_grid.h"
#include "codec/mb_syntax.h"
#include "codec/reconstruct.h"
#include "codec/transform.h"
#include "simd/dispatch.h"

namespace videoapp {

namespace {

/** Pointer to the pixel (x, y) of a plane. */
inline const u8 *
planePtr(const Plane &p, int x, int y)
{
    return p.data().data() + static_cast<std::size_t>(y) * p.width() +
           x;
}

/** Rough bit cost of coding a motion vector difference. */
double
mvdBits(const MotionVector &mvd)
{
    auto bits = [](int v) {
        return 2.0 * std::log2(std::abs(v) + 1.0) + 1.0;
    };
    return bits(mvd.x) + bits(mvd.y);
}

/** Quantise the residual of one prediction; fills coeffs/coded. */
void
quantiseMb(MbCoding &mb, const Frame &src, int mbx, int mby,
           const u8 luma_pred[256], const u8 u_pred[64],
           const u8 v_pred[64], bool skip_luma = false)
{
    const simd::SimdKernels &k = simd::simdKernels();
    int x0 = mbx * 16, y0 = mby * 16;
    for (int blk = 0; !skip_luma && blk < 16; ++blk) {
        int bx = (blk % 4) * 4, by = (blk / 4) * 4;
        Residual4x4 res{};
        k.residual4x4(planePtr(src.y(), x0 + bx, y0 + by),
                      src.y().width(), luma_pred + by * 16 + bx, 16,
                      res.data());
        Residual4x4 levels = forwardQuant4x4(res, mb.qp, mb.intra);
        mb.coded[blk] = anyNonZero(levels);
        mb.coeffs[blk] = mb.coded[blk] ? levels : Residual4x4{};
    }
    int qpc = chromaQp(mb.qp);
    int cx0 = mbx * 8, cy0 = mby * 8;
    for (int comp = 0; comp < 2; ++comp) {
        const Plane &plane = comp == 0 ? src.u() : src.v();
        const u8 *pred = comp == 0 ? u_pred : v_pred;
        for (int sub = 0; sub < 4; ++sub) {
            int blk = 16 + comp * 4 + sub;
            int bx = (sub % 2) * 4, by = (sub / 2) * 4;
            Residual4x4 res{};
            k.residual4x4(planePtr(plane, cx0 + bx, cy0 + by),
                          plane.width(), pred + by * 8 + bx, 8,
                          res.data());
            Residual4x4 levels = forwardQuant4x4(res, qpc, mb.intra);
            mb.coded[blk] = anyNonZero(levels);
            mb.coeffs[blk] = mb.coded[blk] ? levels : Residual4x4{};
        }
    }
}

/** Everything needed while encoding one frame. */
class FrameEncoder
{
  public:
    FrameEncoder(const EncoderConfig &config, RateControl &rc,
                 const Video &source, const FramePlan &plan,
                 int enc_idx, const std::vector<Frame> &recons)
        : config_(config), rc_(rc),
          src_(source.frames[plan.displayIdx]), plan_(plan),
          encIdx_(enc_idx),
          ref0_(plan.ref0 >= 0 ? &recons[plan.ref0] : nullptr),
          ref1_(plan.ref1 >= 0 ? &recons[plan.ref1] : nullptr),
          mbw_(src_.width() / kMbSize), mbh_(src_.height() / kMbSize),
          recon_(src_.width(), src_.height()), grid_(mbw_, mbh_),
          avgActivity_(RateControl::averageActivity(src_.y()))
    {
    }

    /** Encode the frame; returns header, payload, analysis records. */
    void
    run(FrameHeader &header, Bytes &payload, FrameRecord &record)
    {
        header.displayIdx = static_cast<u16>(plan_.displayIdx);
        header.type = plan_.type;
        header.qpBase =
            static_cast<u8>(rc_.frameBaseQp(plan_.type));
        header.ref0 = plan_.ref0;
        header.ref1 = plan_.ref1;

        record.type = plan_.type;
        record.encIdx = encIdx_;
        record.displayIdx = plan_.displayIdx;
        record.isReference = plan_.isReference;
        record.mbs.resize(static_cast<std::size_t>(mbw_) * mbh_);

        codings_.resize(static_cast<std::size_t>(mbw_) * mbh_);
        int slices = std::clamp(config_.slicesPerFrame, 1, mbh_);
        int rows_per_slice = (mbh_ + slices - 1) / slices;
        std::vector<int> slice_first_rows;
        for (int s = 0; s < slices; ++s) {
            int row0 = s * rows_per_slice;
            int row1 = std::min(mbh_, row0 + rows_per_slice);
            if (row0 >= row1)
                break;
            slice_first_rows.push_back(row0);
            encodeSlice(row0, row1, header, payload, record);
        }

        // In-loop deblocking after the whole frame (intra predicted
        // from unfiltered samples; references and output filtered).
        if (config_.deblocking)
            deblockFrame(recon_, codings_, mbw_, mbh_,
                         slice_first_rows);
    }

    Frame takeRecon() { return std::move(recon_); }

  private:
    void
    encodeSlice(int row0, int row1, FrameHeader &header,
                Bytes &payload, FrameRecord &record)
    {
        auto enc = makeSyntaxEncoder(config_.entropy);
        int prev_qp = rc_.frameBaseQp(plan_.type);

        SliceRecord slice;
        slice.firstMb = static_cast<u32>(row0 * mbw_);
        slice.mbCount = static_cast<u32>((row1 - row0) * mbw_);
        slice.byteOffset = static_cast<u32>(payload.size());

        std::vector<u64> offsets;
        offsets.reserve(slice.mbCount);
        // The coder may report nonzero bits before the first symbol
        // (pending cache bytes); measure offsets relative to that.
        const u64 bias = enc->bitsProduced();

        for (int mby = row0; mby < row1; ++mby) {
            for (int mbx = 0; mbx < mbw_; ++mbx) {
                offsets.push_back(enc->bitsProduced() - bias);
                MbPosition pos{mbx, mby, row0, plan_.type};
                MbCoding mb = decideMb(pos, prev_qp);
                int qp_before = prev_qp;
                encodeMb(*enc, mb, pos, grid_, prev_qp);
                (void)qp_before;
                reconstructMb(recon_, mb, mbx, mby, ref0_, ref1_,
                              mbAvail(pos));
                recordMb(record, pos, mb);
                codings_[static_cast<std::size_t>(mby) * mbw_ +
                         mbx] = std::move(mb);
            }
        }

        Bytes slice_bytes = enc->finishSlice();
        slice.byteLength = static_cast<u32>(slice_bytes.size());
        payload.insert(payload.end(), slice_bytes.begin(),
                       slice_bytes.end());

        // Finalise per-MB bit ranges (offsets are monotone but may
        // lag/lead the flushed byte count by the coder's cache; clamp
        // into the slice and difference them).
        u64 slice_bits = static_cast<u64>(slice.byteLength) * 8;
        u64 base_bits = static_cast<u64>(slice.byteOffset) * 8;
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            u64 begin = std::min(offsets[i], slice_bits);
            u64 end = i + 1 < offsets.size()
                          ? std::min(offsets[i + 1], slice_bits)
                          : slice_bits;
            MbRecord &mrec = record.mbs[slice.firstMb + i];
            mrec.bitOffset = base_bits + begin;
            mrec.bitLength = end - begin;
        }

        header.slices.push_back(slice);
    }

    /** Record analysis metadata (dependencies) for a decided MB. */
    void
    recordMb(FrameRecord &record, const MbPosition &pos,
             const MbCoding &mb)
    {
        MbRecord &mrec =
            record.mbs[static_cast<std::size_t>(pos.mby) * mbw_ +
                       pos.mbx];
        mrec.intra = mb.intra;
        mrec.skip = mb.skip;
        mrec.qp = static_cast<u8>(mb.qp);

        if (mb.intra) {
            bool left = grid_.leftAvail(pos.mbx, pos.mby,
                                        pos.sliceFirstRow);
            bool up =
                grid_.upAvail(pos.mbx, pos.mby, pos.sliceFirstRow);
            MbAvail avail = mbAvail(pos);
            std::vector<IntraDependency> deps =
                mb.intra4
                    ? intra4Dependencies(mb, avail.left, avail.up,
                                         avail.upLeft,
                                         avail.upRight)
                    : intraDependencies(mb.intraMode, left, up);
            for (const auto &dep : deps) {
                int nx = pos.mbx + dep.dx;
                int ny = pos.mby + dep.dy;
                if (nx < 0 || ny < 0 || nx >= mbw_ || ny >= mbh_)
                    continue;
                mrec.deps.push_back(
                    {encIdx_, static_cast<u16>(ny * mbw_ + nx),
                     static_cast<float>(dep.weight)});
            }
            return;
        }

        for (const auto &motion : mb.motions) {
            double share =
                motion.direction == BiDirection::Bi ? 0.5 : 1.0;
            // Each rectangle carries rect_area/256 of the MB's unit
            // incoming weight, split across source MBs by referenced
            // pixels (the half-pel filter footprint enlarges the
            // counted region, so normalise by the actual total).
            double rect_share =
                static_cast<double>(motion.rect.width *
                                    motion.rect.height) /
                256.0;
            auto add = [&](int ref_enc, const MotionVector &mv) {
                if (ref_enc < 0)
                    return;
                auto areas = referenceAreas(
                    pos.mbx * 16 + motion.rect.x,
                    pos.mby * 16 + motion.rect.y, motion.rect.width,
                    motion.rect.height, mv, src_.width(),
                    src_.height());
                long total = 0;
                for (const auto &area : areas)
                    total += area.pixels;
                if (total == 0)
                    return;
                for (const auto &area : areas) {
                    mrec.deps.push_back(
                        {ref_enc,
                         static_cast<u16>(area.mby * mbw_ + area.mbx),
                         static_cast<float>(
                             static_cast<double>(area.pixels) /
                             total * rect_share * share)});
                }
            };
            if (motion.direction != BiDirection::L1)
                add(plan_.ref0, motion.mv);
            if (motion.direction != BiDirection::L0)
                add(plan_.ref1, motion.mvL1);
        }
    }

    /** Slice-aware neighbour availability of the current MB. */
    MbAvail
    mbAvail(const MbPosition &pos) const
    {
        MbAvail avail;
        avail.left =
            grid_.leftAvail(pos.mbx, pos.mby, pos.sliceFirstRow);
        avail.up = grid_.upAvail(pos.mbx, pos.mby, pos.sliceFirstRow);
        avail.upLeft =
            grid_.upLeftAvail(pos.mbx, pos.mby, pos.sliceFirstRow);
        avail.upRight =
            grid_.upRightAvail(pos.mbx, pos.mby, pos.sliceFirstRow);
        return avail;
    }

    /**
     * Cost-estimate an intra4x4 candidate. Mode selection predicts
     * from the SOURCE plane (the usual fast-encoder approximation
     * for not-yet-reconstructed in-MB neighbours); the committed
     * residual is recomputed against real reconstruction in
     * reconstructIntra4Luma.
     */
    double
    estimateIntra4(const MbPosition &pos, MbCoding &mb,
                   double lambda)
    {
        const MbAvail avail = mbAvail(pos);
        const int x0 = pos.mbx * 16, y0 = pos.mby * 16;
        double cost = lambda * 2.0; // intra4 flag + overhead
        for (int blk = 0; blk < 16; ++blk) {
            int bx = blk % 4, by = blk / 4;
            int x = x0 + bx * 4, y = y0 + by * 4;
            bool left = bx > 0 || avail.left;
            bool above = by > 0 || avail.up;
            bool corner = (bx > 0 && by > 0) ||
                          (bx > 0 ? avail.up
                                  : (by > 0 ? avail.left
                                            : avail.upLeft));
            bool above_right =
                by == 0 ? (bx < 3 ? avail.up : avail.upRight)
                        : bx < 3;
            Intra4Neighbors neighbors = gatherIntra4Neighbors(
                src_.y(), x, y, left, above, corner, above_right);
            Intra4Mode predicted = predictedIntra4BlockMode(
                grid_, pos, mb, blk);

            double best_cost = 1e18;
            for (int m = 0; m < kIntra4ModeCount; ++m) {
                auto mode = static_cast<Intra4Mode>(m);
                if (!intra4ModeAvailable(mode, neighbors))
                    continue;
                u8 pred[16];
                predictIntra4(neighbors, mode, pred);
                double sad = static_cast<double>(
                    simd::simdKernels().sad4x4(
                        planePtr(src_.y(), x, y), src_.y().width(),
                        pred));
                double bits = mode == predicted ? 1.0 : 4.0;
                double c = sad + lambda * bits;
                if (c < best_cost) {
                    best_cost = c;
                    mb.intra4Modes[blk] = static_cast<u8>(m);
                }
            }
            cost += best_cost;
        }
        return cost;
    }

    /** Mode decision for one macroblock. */
    MbCoding
    decideMb(const MbPosition &pos, int prev_qp)
    {
        const int mbx = pos.mbx, mby = pos.mby;
        bool left = grid_.leftAvail(mbx, mby, pos.sliceFirstRow);
        bool up = grid_.upAvail(mbx, mby, pos.sliceFirstRow);

        int qp = rc_.mbQp(plan_.type, src_.y(), mbx, mby,
                          avgActivity_);
        double lambda = RateControl::lambdaFor(qp);

        // Try skip first in P/B frames: prediction at the predicted
        // MV whose residual quantises to nothing.
        if (plan_.type != FrameType::I && config_.allowSkip &&
            ref0_ != nullptr) {
            MbCoding skip_mb;
            skip_mb.skip = true;
            skip_mb.qp = prev_qp;
            MotionInfo motion;
            motion.rect = {0, 0, 16, 16};
            motion.mv = grid_.predictMv(mbx, mby, pos.sliceFirstRow,
                                        false);
            motion.direction = BiDirection::L0;
            skip_mb.motions.push_back(motion);
            u8 pred[256], up_[64], vp[64];
            predictMbLuma(skip_mb, mbx, mby, recon_.y(), &ref0_->y(),
                          nullptr, left, up, pred);
            predictMbChroma(skip_mb, mbx, mby, recon_.u(),
                            &ref0_->u(), nullptr, left, up, up_);
            predictMbChroma(skip_mb, mbx, mby, recon_.v(),
                            &ref0_->v(), nullptr, left, up, vp);
            quantiseMb(skip_mb, src_, mbx, mby, pred, up_, vp);
            bool all_zero = true;
            for (bool c : skip_mb.coded)
                all_zero &= !c;
            if (all_zero) {
                // Wipe the (zero) residual state and commit to skip.
                skip_mb.coded.fill(false);
                return skip_mb;
            }
        }

        // Intra candidate: best of the four 16x16 modes by SAD.
        MbCoding intra_mb;
        intra_mb.intra = true;
        intra_mb.qp = qp;
        double intra_cost = 1e18;
        for (int m = 0; m < kIntraModeCount; ++m) {
            auto mode = static_cast<IntraMode>(m);
            PredBlock<16> pred = predictLuma16(recon_.y(), mbx, mby,
                                               mode, left, up);
            double cost =
                static_cast<double>(intraSad16(src_.y(), mbx, mby,
                                               pred)) +
                lambda * 4.0;
            if (cost < intra_cost) {
                intra_cost = cost;
                intra_mb.intraMode = mode;
            }
        }
        // Intra4x4 candidate: nine directional modes per block.
        MbCoding intra4_mb;
        intra4_mb.intra = true;
        intra4_mb.intra4 = true;
        intra4_mb.qp = qp;
        double intra4_cost = 1e18;
        if (config_.intra4x4)
            intra4_cost = estimateIntra4(pos, intra4_mb, lambda);

        // Bias against intra in predicted frames (header cost and
        // the reference-chain value of inter coding).
        if (plan_.type != FrameType::I) {
            intra_cost += lambda * 8.0;
            intra4_cost += lambda * 8.0;
        }

        MbCoding best = intra_mb;
        double best_cost = intra_cost;
        if (intra4_cost < best_cost) {
            best = intra4_mb;
            best_cost = intra4_cost;
        }

        if (plan_.type != FrameType::I && ref0_ != nullptr) {
            MbCoding inter_mb = decideInter(pos, qp, lambda);
            double inter_cost = interCost(inter_mb, pos, lambda);
            if (inter_cost < best_cost) {
                best = inter_mb;
                best_cost = inter_cost;
            }
        }

        // Quantise the residual of the winner. Intra4x4 luma is
        // quantised block-by-block against the real reconstruction
        // (and written into recon_ right away; the later
        // reconstructMb call is idempotent).
        u8 pred[256] = {}, up_[64], vp[64];
        if (best.intra && best.intra4) {
            reconstructIntra4Luma(recon_.y(), best, mbx, mby,
                                  mbAvail(pos), &src_.y());
        } else {
            predictMbLuma(best, mbx, mby, recon_.y(),
                          ref0_ ? &ref0_->y() : nullptr,
                          ref1_ ? &ref1_->y() : nullptr, left, up,
                          pred);
        }
        predictMbChroma(best, mbx, mby, recon_.u(),
                        ref0_ ? &ref0_->u() : nullptr,
                        ref1_ ? &ref1_->u() : nullptr, left, up, up_);
        predictMbChroma(best, mbx, mby, recon_.v(),
                        ref0_ ? &ref0_->v() : nullptr,
                        ref1_ ? &ref1_->v() : nullptr, left, up, vp);
        quantiseMb(best, src_, mbx, mby, pred, up_, vp,
                   best.intra && best.intra4);
        return best;
    }

    /** SAD+rate cost of a decided inter MB (for intra/inter choice). */
    double
    interCost(const MbCoding &mb, const MbPosition &pos,
              double lambda)
    {
        double cost = 0;
        for (std::size_t i = 0; i < mb.motions.size(); ++i) {
            const MotionInfo &motion = mb.motions[i];
            int dx = pos.mbx * 16 + motion.rect.x;
            int dy = pos.mby * 16 + motion.rect.y;
            // SAD of the final prediction for this rect.
            u8 buf[256];
            const Plane *r0 = ref0_ ? &ref0_->y() : nullptr;
            const Plane *r1 = ref1_ ? &ref1_->y() : nullptr;
            if (motion.direction == BiDirection::Bi && r0 && r1) {
                u8 b0[256], b1[256];
                compensateRect(*r0, dx, dy, motion.rect.width,
                               motion.rect.height, motion.mv, b0);
                compensateRect(*r1, dx, dy, motion.rect.width,
                               motion.rect.height, motion.mvL1, b1);
                averagePredictions(
                    b0, b1, motion.rect.width * motion.rect.height,
                    buf);
            } else if (motion.direction == BiDirection::L1 && r1) {
                compensateRect(*r1, dx, dy, motion.rect.width,
                               motion.rect.height, motion.mvL1, buf);
            } else if (r0) {
                compensateRect(*r0, dx, dy, motion.rect.width,
                               motion.rect.height, motion.mv, buf);
            } else {
                return 1e18;
            }
            cost += static_cast<double>(simd::simdKernels().sadRect(
                planePtr(src_.y(), dx, dy), src_.y().width(), buf,
                motion.rect.width, motion.rect.width,
                motion.rect.height));
            // Rate term per vector coded.
            double vectors =
                motion.direction == BiDirection::Bi ? 2.0 : 1.0;
            cost += lambda * (6.0 * vectors + 2.0);
        }
        return cost;
    }

    /** Search one rectangle in one list; predictor-aware. */
    MotionSearchResult
    searchRect(const PartitionGeom &rect, const MbPosition &pos,
               const MotionVector &predictor, bool l1)
    {
        const Plane &ref = l1 ? ref1_->y() : ref0_->y();
        return motionSearch(src_.y(), pos.mbx * 16 + rect.x,
                            pos.mby * 16 + rect.y, rect.width,
                            rect.height, ref, predictor,
                            config_.searchRange, config_.subPel);
    }

    /**
     * Fill motions for a given set of rectangles using chained
     * predictors; returns total SAD + lambda * mvd bits.
     */
    double
    fillMotions(MbCoding &mb, const std::vector<PartitionGeom> &rects,
                const MbPosition &pos, BiDirection dir, double lambda)
    {
        mb.motions.clear();
        double cost = 0;
        for (std::size_t i = 0; i < rects.size(); ++i) {
            MotionInfo motion;
            motion.rect = rects[i];
            motion.direction = dir;
            double rect_cost = 0;
            if (dir != BiDirection::L1) {
                MotionVector pred =
                    mvPredictorForRect(grid_, pos, i, mb, false);
                auto result = searchRect(rects[i], pos, pred, false);
                motion.mv = result.mv;
                rect_cost += result.sad +
                             lambda * mvdBits(result.mv - pred);
            }
            if (dir != BiDirection::L0) {
                MotionVector pred =
                    mvPredictorForRect(grid_, pos, i, mb, true);
                auto result = searchRect(rects[i], pos, pred, true);
                motion.mvL1 = result.mv;
                rect_cost += result.sad +
                             lambda * mvdBits(result.mv - pred);
            }
            if (dir == BiDirection::Bi)
                rect_cost /= 2.0; // averaging roughly halves the error
            cost += rect_cost;
            mb.motions.push_back(motion);
        }
        return cost;
    }

    /** Inter mode decision: direction, partition, sub-partitions. */
    MbCoding
    decideInter(const MbPosition &pos, int qp, double lambda)
    {
        MbCoding mb;
        mb.qp = qp;

        // Direction at 16x16 granularity (B frames).
        BiDirection dir = BiDirection::L0;
        std::vector<PartitionGeom> whole = {{0, 0, 16, 16}};
        MbCoding probe;
        probe.qp = qp;
        double best_dir_cost =
            fillMotions(probe, whole, pos, BiDirection::L0, lambda);
        MbCoding best_probe = probe;
        if (plan_.type == FrameType::B && ref1_ != nullptr) {
            for (BiDirection d :
                 {BiDirection::L1, BiDirection::Bi}) {
                MbCoding candidate;
                candidate.qp = qp;
                double cost =
                    fillMotions(candidate, whole, pos, d, lambda) +
                    lambda * 1.0;
                if (cost < best_dir_cost) {
                    best_dir_cost = cost;
                    best_probe = candidate;
                    dir = d;
                }
            }
        }

        mb.direction = dir;
        mb.partition = Partition::P16x16;
        mb.motions = best_probe.motions;
        double best_cost = best_dir_cost;

        if (config_.partitionSearch) {
            for (Partition part : {Partition::P16x8, Partition::P8x16,
                                   Partition::P8x8}) {
                MbCoding candidate;
                candidate.qp = qp;
                candidate.direction = dir;
                candidate.partition = part;
                double cost = fillMotions(candidate,
                                          partitionGeom(part), pos,
                                          dir, lambda) +
                              lambda * 2.0 *
                                  (part == Partition::P8x8 ? 4 : 2);
                if (cost < best_cost) {
                    best_cost = cost;
                    mb = candidate;
                }
            }
        }

        if (mb.partition == Partition::P8x8 && config_.subPartitions) {
            // Refine each 8x8 independently. Rebuild the rect list
            // with the chosen sub-partitions at the end so the
            // predictor chain stays consistent.
            for (int blk = 0; blk < 4; ++blk) {
                double best_sub_cost = 1e18;
                SubPartition best_sub = SubPartition::S8x8;
                for (int s = 0; s < kSubPartitionCount; ++s) {
                    auto sub = static_cast<SubPartition>(s);
                    MbCoding candidate = mb;
                    candidate.subs[blk] = sub;
                    std::vector<PartitionGeom> rects;
                    for (int b = 0; b < 4; ++b) {
                        auto g = subPartitionGeom(candidate.subs[b],
                                                  (b % 2) * 8,
                                                  (b / 2) * 8);
                        rects.insert(rects.end(), g.begin(), g.end());
                    }
                    double cost =
                        fillMotions(candidate, rects, pos, dir,
                                    lambda) +
                        lambda * 2.0 * static_cast<double>(
                                           rects.size());
                    if (cost < best_sub_cost) {
                        best_sub_cost = cost;
                        best_sub = sub;
                    }
                }
                mb.subs[blk] = best_sub;
            }
            std::vector<PartitionGeom> rects;
            for (int b = 0; b < 4; ++b) {
                auto g = subPartitionGeom(mb.subs[b], (b % 2) * 8,
                                          (b / 2) * 8);
                rects.insert(rects.end(), g.begin(), g.end());
            }
            fillMotions(mb, rects, pos, dir, lambda);
        }
        return mb;
    }

    const EncoderConfig &config_;
    RateControl &rc_;
    const Frame &src_;
    const FramePlan &plan_;
    int encIdx_;
    const Frame *ref0_;
    const Frame *ref1_;
    int mbw_, mbh_;
    Frame recon_;
    MbGrid grid_;
    double avgActivity_;
    std::vector<MbCoding> codings_;
};

} // namespace

EncodeResult
encodeVideo(const Video &source, const EncoderConfig &config)
{
    assert(!source.frames.empty());
    assert(source.width() % 16 == 0 && source.height() % 16 == 0);

    EncodeResult result;
    auto plan = planGop(static_cast<int>(source.frames.size()),
                        config.gop);
    RateControl rc(config.crf);
    if (config.targetKbps > 0)
        rc.setBitrateTarget(config.targetKbps, source.fps);

    result.video.header.width = static_cast<u16>(source.width());
    result.video.header.height = static_cast<u16>(source.height());
    result.video.header.fps = source.fps;
    result.video.header.entropy = config.entropy;
    result.video.header.frameCount =
        static_cast<u16>(source.frames.size());
    result.video.header.slicesPerFrame =
        static_cast<u8>(std::max(config.slicesPerFrame, 1));
    result.video.header.flags = config.deblocking ? 1 : 0;

    std::vector<Frame> recons(plan.size());
    for (std::size_t enc_idx = 0; enc_idx < plan.size(); ++enc_idx) {
        FrameEncoder frame_encoder(config, rc, source, plan[enc_idx],
                                   static_cast<int>(enc_idx), recons);
        FrameHeader header;
        Bytes payload;
        FrameRecord record;
        frame_encoder.run(header, payload, record);
        recons[enc_idx] = frame_encoder.takeRecon();
        rc.frameDone(payload.size() * 8);

        result.video.frameHeaders.push_back(std::move(header));
        result.video.payloads.push_back(std::move(payload));
        result.side.frames.push_back(std::move(record));
    }

    // Reorder reconstructions into display order for callers.
    result.reconFrames.assign(source.frames.size(),
                              Frame(source.width(), source.height()));
    for (std::size_t enc_idx = 0; enc_idx < plan.size(); ++enc_idx)
        result.reconFrames[plan[enc_idx].displayIdx] =
            std::move(recons[enc_idx]);
    return result;
}

} // namespace videoapp
