/**
 * @file
 * The video decoder.
 *
 * Robustness contract (DESIGN.md): any payload bytes — including
 * arbitrarily corrupted ones — decode without crashing, producing a
 * full-length video whose damaged regions reflect the corruption.
 * Entropy state is confined to a slice, so decoding resynchronises
 * at the next slice boundary (located via the precise headers),
 * matching the paper's per-frame context reset (Section 3).
 */

#ifndef VIDEOAPP_CODEC_DECODER_H_
#define VIDEOAPP_CODEC_DECODER_H_

#include "codec/container.h"
#include "video/frame.h"

namespace videoapp {

/** Decoder behaviour switches and statistics. */
struct DecodeOptions
{
    /**
     * Error concealment: when the entropy decoder overruns its
     * slice window (a desync signal), stop parsing and conceal the
     * remaining MBs of the slice by copying co-located pixels from
     * the reference frame — the strategy production decoders use
     * for error-prone channels.
     */
    bool concealErrors = false;
};

/** Filled by decodeVideo when a stats object is supplied. */
struct DecodeStats
{
    u64 concealedMbs = 0;
    u64 totalMbs = 0;
};

/**
 * Decode @p coded into display order.
 * @return a video with header.frameCount frames; corrupted payloads
 *         yield damaged but structurally complete frames.
 */
Video decodeVideo(const EncodedVideo &coded,
                  const DecodeOptions &options = {},
                  DecodeStats *stats = nullptr);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_DECODER_H_
