/**
 * @file
 * Adaptive binary arithmetic coder (the CABAC-style engine).
 *
 * A byte-oriented range coder with 11-bit adaptive probabilities per
 * context, the same family of engine as H.264's CABAC: coding events
 * take fractional bits, probabilities adapt with every bin, and any
 * corruption of the coded bytes desynchronises both the arithmetic
 * state and the context estimates for the rest of the slice — the
 * error-propagation behaviour Section 3 of the paper studies.
 *
 * The decoder is total: reading past the end of the buffer yields
 * zero bytes, so corrupted slices decode to bounded garbage rather
 * than faulting.
 */

#ifndef VIDEOAPP_CODEC_ARITH_H_
#define VIDEOAPP_CODEC_ARITH_H_

#include <vector>

#include "common/types.h"

namespace videoapp {

/** Probability scale: contexts hold P(bin = 0) in [1, kProbMax-1]. */
inline constexpr u32 kProbBits = 11;
inline constexpr u32 kProbMax = 1u << kProbBits; // 2048
inline constexpr u16 kProbInit = kProbMax / 2;
/** Adaptation shift: smaller adapts faster. */
inline constexpr int kProbAdaptShift = 5;

/** One adaptive context (probability state). */
struct BinContext
{
    u16 prob = kProbInit;

    void
    update(u32 bin)
    {
        if (bin == 0)
            prob = static_cast<u16>(
                prob + ((kProbMax - prob) >> kProbAdaptShift));
        else
            prob = static_cast<u16>(prob - (prob >> kProbAdaptShift));
    }
};

/** Range encoder producing a byte buffer. */
class ArithEncoder
{
  public:
    ArithEncoder();

    /** Encode one bin under @p ctx and adapt it. */
    void encodeBin(BinContext &ctx, u32 bin);

    /** Encode an equiprobable (bypass) bin. */
    void encodeBypass(u32 bin);

    /** Flush and return the coded bytes; the encoder resets. */
    Bytes finish();

    /** Bits produced so far (approximate until finish). */
    std::size_t
    bitsProduced() const
    {
        return (out_.size() + cacheSize_) * 8;
    }

  private:
    void shiftLow();

    u64 low_;
    u32 range_;
    u8 cache_;
    u64 cacheSize_;
    Bytes out_;
};

/** Range decoder over a byte range. */
class ArithDecoder
{
  public:
    /** Decode from @p data starting at @p offset, @p length bytes. */
    ArithDecoder(const Bytes &data, std::size_t offset,
                 std::size_t length);

    /** Decode one bin under @p ctx and adapt it. */
    u32 decodeBin(BinContext &ctx);

    /** Decode an equiprobable (bypass) bin. */
    u32 decodeBypass();

    /** Bytes consumed from the input window so far. */
    std::size_t bytesConsumed() const { return pos_ - begin_; }

  private:
    u8 nextByte();

    const Bytes *data_;
    std::size_t begin_;
    std::size_t pos_;
    std::size_t end_;
    u32 range_;
    u32 code_;
};

} // namespace videoapp

#endif // VIDEOAPP_CODEC_ARITH_H_
