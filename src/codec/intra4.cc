#include "codec/intra4.h"

#include <algorithm>

namespace videoapp {

Intra4Neighbors
gatherIntra4Neighbors(const Plane &recon, int x, int y,
                      bool left_avail, bool above_avail,
                      bool corner_avail, bool above_right_avail)
{
    Intra4Neighbors n;
    n.leftAvail = left_avail && x > 0;
    n.aboveAvail = above_avail && y > 0;
    n.cornerAvail = corner_avail && x > 0 && y > 0;

    if (n.aboveAvail) {
        for (int i = 0; i < 4; ++i)
            n.above[static_cast<std::size_t>(i)] =
                recon.at(x + i, y - 1);
        bool ar = above_right_avail && x + 4 < recon.width();
        for (int i = 4; i < 8; ++i)
            n.above[static_cast<std::size_t>(i)] =
                ar ? recon.at(x + i, y - 1) : n.above[3];
    }
    if (n.leftAvail) {
        for (int i = 0; i < 4; ++i)
            n.left[static_cast<std::size_t>(i)] =
                recon.at(x - 1, y + i);
    }
    if (n.cornerAvail)
        n.corner = recon.at(x - 1, y - 1);
    return n;
}

bool
intra4ModeAvailable(Intra4Mode mode, const Intra4Neighbors &n)
{
    switch (mode) {
      case Intra4Mode::Vertical:
      case Intra4Mode::DiagDownLeft:
      case Intra4Mode::VerticalLeft:
        return n.aboveAvail;
      case Intra4Mode::Horizontal:
      case Intra4Mode::HorizontalUp:
        return n.leftAvail;
      case Intra4Mode::DC:
        return true;
      case Intra4Mode::DiagDownRight:
      case Intra4Mode::VerticalRight:
      case Intra4Mode::HorizontalDown:
        return n.aboveAvail && n.leftAvail && n.cornerAvail;
    }
    return false;
}

void
predictIntra4(const Intra4Neighbors &n, Intra4Mode mode, u8 out[16])
{
    if (!intra4ModeAvailable(mode, n))
        mode = Intra4Mode::DC;

    // p[i, -1]: above row, where i = -1 addresses the corner.
    auto up = [&n](int i) -> int {
        if (i < 0)
            return n.corner;
        return n.above[static_cast<std::size_t>(std::min(i, 7))];
    };
    // p[-1, i]: left column, i = -1 addresses the corner.
    auto lf = [&n](int i) -> int {
        if (i < 0)
            return n.corner;
        return n.left[static_cast<std::size_t>(std::min(i, 3))];
    };
    auto set = [out](int x, int y, int v) {
        out[y * 4 + x] = static_cast<u8>(std::clamp(v, 0, 255));
    };

    switch (mode) {
      case Intra4Mode::Vertical:
        for (int y = 0; y < 4; ++y)
            for (int x = 0; x < 4; ++x)
                set(x, y, up(x));
        break;

      case Intra4Mode::Horizontal:
        for (int y = 0; y < 4; ++y)
            for (int x = 0; x < 4; ++x)
                set(x, y, lf(y));
        break;

      case Intra4Mode::DC: {
        int sum = 0, count = 0;
        if (n.aboveAvail) {
            for (int i = 0; i < 4; ++i)
                sum += up(i);
            count += 4;
        }
        if (n.leftAvail) {
            for (int i = 0; i < 4; ++i)
                sum += lf(i);
            count += 4;
        }
        int dc = count ? (sum + count / 2) / count : 128;
        for (int i = 0; i < 16; ++i)
            out[i] = static_cast<u8>(dc);
        break;
      }

      case Intra4Mode::DiagDownLeft:
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                if (x == 3 && y == 3)
                    set(x, y, (up(6) + 3 * up(7) + 2) >> 2);
                else
                    set(x, y,
                        (up(x + y) + 2 * up(x + y + 1) +
                         up(x + y + 2) + 2) >> 2);
            }
        }
        break;

      case Intra4Mode::DiagDownRight:
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                if (x > y)
                    set(x, y,
                        (up(x - y - 2) + 2 * up(x - y - 1) +
                         up(x - y) + 2) >> 2);
                else if (x < y)
                    set(x, y,
                        (lf(y - x - 2) + 2 * lf(y - x - 1) +
                         lf(y - x) + 2) >> 2);
                else
                    set(x, y,
                        (up(0) + 2 * n.corner + lf(0) + 2) >> 2);
            }
        }
        break;

      case Intra4Mode::VerticalRight:
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                int z = 2 * x - y;
                if (z >= 0 && z % 2 == 0)
                    set(x, y,
                        (up(x - (y >> 1) - 1) + up(x - (y >> 1)) +
                         1) >> 1);
                else if (z >= 0)
                    set(x, y,
                        (up(x - (y >> 1) - 2) +
                         2 * up(x - (y >> 1) - 1) +
                         up(x - (y >> 1)) + 2) >> 2);
                else if (z == -1)
                    set(x, y,
                        (lf(0) + 2 * n.corner + up(0) + 2) >> 2);
                else
                    set(x, y,
                        (lf(y - 2 * x - 1) + 2 * lf(y - 2 * x - 2) +
                         lf(y - 2 * x - 3) + 2) >> 2);
            }
        }
        break;

      case Intra4Mode::HorizontalDown:
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                int z = 2 * y - x;
                if (z >= 0 && z % 2 == 0)
                    set(x, y,
                        (lf(y - (x >> 1) - 1) + lf(y - (x >> 1)) +
                         1) >> 1);
                else if (z >= 0)
                    set(x, y,
                        (lf(y - (x >> 1) - 2) +
                         2 * lf(y - (x >> 1) - 1) +
                         lf(y - (x >> 1)) + 2) >> 2);
                else if (z == -1)
                    set(x, y,
                        (lf(0) + 2 * n.corner + up(0) + 2) >> 2);
                else
                    set(x, y,
                        (up(x - 2 * y - 1) + 2 * up(x - 2 * y - 2) +
                         up(x - 2 * y - 3) + 2) >> 2);
            }
        }
        break;

      case Intra4Mode::VerticalLeft:
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                int i = x + (y >> 1);
                if (y % 2 == 0)
                    set(x, y, (up(i) + up(i + 1) + 1) >> 1);
                else
                    set(x, y,
                        (up(i) + 2 * up(i + 1) + up(i + 2) + 2) >>
                            2);
            }
        }
        break;

      case Intra4Mode::HorizontalUp:
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                int z = x + 2 * y;
                if (z > 5) {
                    set(x, y, lf(3));
                } else if (z == 5) {
                    set(x, y, (lf(2) + 3 * lf(3) + 2) >> 2);
                } else if (z % 2 == 0) {
                    set(x, y,
                        (lf(y + (x >> 1)) + lf(y + (x >> 1) + 1) +
                         1) >> 1);
                } else {
                    set(x, y,
                        (lf(y + (x >> 1)) +
                         2 * lf(y + (x >> 1) + 1) +
                         lf(y + (x >> 1) + 2) + 2) >> 2);
                }
            }
        }
        break;
    }
}

bool
intra4UsesAbove(Intra4Mode mode)
{
    switch (mode) {
      case Intra4Mode::Horizontal:
      case Intra4Mode::HorizontalUp:
        return false;
      default:
        return true;
    }
}

bool
intra4UsesLeft(Intra4Mode mode)
{
    switch (mode) {
      case Intra4Mode::Vertical:
      case Intra4Mode::DiagDownLeft:
      case Intra4Mode::VerticalLeft:
        return false;
      default:
        return true;
    }
}

bool
intra4UsesAboveRight(Intra4Mode mode)
{
    return mode == Intra4Mode::DiagDownLeft ||
           mode == Intra4Mode::VerticalLeft;
}

bool
intra4UsesCorner(Intra4Mode mode)
{
    return mode == Intra4Mode::DiagDownRight ||
           mode == Intra4Mode::VerticalRight ||
           mode == Intra4Mode::HorizontalDown;
}

std::vector<IntraDependency>
intra4Dependencies(const MbCoding &mb, bool left_avail,
                   bool up_avail, bool up_left_avail,
                   bool up_right_avail)
{
    // Count border samples read from each neighbour MB across the
    // twelve border blocks; interior blocks only reference pixels of
    // this MB (transitive damage stays within the node).
    double w_up = 0, w_left = 0, w_ul = 0, w_ur = 0;
    for (int blk = 0; blk < 16; ++blk) {
        int bx = blk % 4, by = blk / 4;
        auto mode = static_cast<Intra4Mode>(
            mb.intra4Modes[blk] % kIntra4ModeCount);
        if (by == 0 && up_avail && intra4UsesAbove(mode))
            w_up += 4;
        if (by == 0 && intra4UsesAboveRight(mode)) {
            if (bx < 3 && up_avail)
                w_up += 4;
            else if (bx == 3 && up_right_avail)
                w_ur += 4;
        }
        if (bx == 0 && left_avail && intra4UsesLeft(mode))
            w_left += 4;
        if (bx == 0 && by == 0 && intra4UsesCorner(mode) &&
            up_left_avail)
            w_ul += 1;
    }

    double total = w_up + w_left + w_ul + w_ur;
    std::vector<IntraDependency> deps;
    if (total <= 0)
        return deps;
    if (w_up > 0)
        deps.push_back({0, -1, w_up / total});
    if (w_left > 0)
        deps.push_back({-1, 0, w_left / total});
    if (w_ul > 0)
        deps.push_back({-1, -1, w_ul / total});
    if (w_ur > 0)
        deps.push_back({1, -1, w_ur / total});
    return deps;
}

Intra4Mode
predictIntra4Mode(bool left_avail, Intra4Mode left, bool above_avail,
                  Intra4Mode above)
{
    // H.264: min of the neighbour modes; DC when either is missing.
    Intra4Mode l = left_avail ? left : Intra4Mode::DC;
    Intra4Mode a = above_avail ? above : Intra4Mode::DC;
    if (!left_avail && !above_avail)
        return Intra4Mode::DC;
    return static_cast<Intra4Mode>(
        std::min(static_cast<u8>(l), static_cast<u8>(a)));
}

} // namespace videoapp
