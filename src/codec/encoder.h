/**
 * @file
 * The video encoder: GOP planning, mode decision, motion estimation,
 * transform/quant, entropy coding — plus the dependency capture that
 * feeds VideoApp's importance analysis (the paper integrates the
 * analysis into the encoder as a post-processing step, Section 1).
 */

#ifndef VIDEOAPP_CODEC_ENCODER_H_
#define VIDEOAPP_CODEC_ENCODER_H_

#include <vector>

#include "codec/container.h"
#include "codec/gop.h"
#include "codec/inter.h"
#include "codec/rate_control.h"
#include "video/frame.h"

namespace videoapp {

/** Encoder configuration (the paper's Section 6.3 knobs and more). */
struct EncoderConfig
{
    /** Constant rate factor: 16 / 20 / 24 in the evaluation. */
    int crf = kCrfStandard;
    /**
     * Average bitrate target in kbit/s (0 = pure CRF mode). When
     * set, a reactive rate controller trims the per-frame QP around
     * the CRF point to track the target.
     */
    int targetKbps = 0;
    GopConfig gop;
    EntropyKind entropy = EntropyKind::CABAC;
    /** Slices per frame (Section 8; 1 = the paper's conservative
     * default). */
    int slicesPerFrame = 1;
    /** Motion search range in pixels. */
    int searchRange = 16;
    /** Evaluate 16x8/8x16/8x8 partitions. */
    bool partitionSearch = true;
    /** Evaluate 8x4/4x8/4x4 sub-partitions inside 8x8. */
    bool subPartitions = true;
    /** Allow skip macroblocks. */
    bool allowSkip = true;
    /** In-loop deblocking filter (H.264-style). */
    bool deblocking = true;
    /** Sub-pel motion estimation precision (H.264 uses quarter). */
    SubPel subPel = SubPel::Quarter;
    /** Evaluate intra4x4 prediction (9 directional modes). */
    bool intra4x4 = true;
};

/** One compensation dependency: this MB reads pixels of that MB. */
struct CompDepRecord
{
    i32 refFrame = 0;  // encode-order frame index of the source
    u16 refMb = 0;     // MB index within that frame
    float weight = 0;  // damaged-area transfer fraction in [0, 1]
};

/** Analysis-side record of one coded macroblock. */
struct MbRecord
{
    u64 bitOffset = 0; // within the frame payload, bits
    u64 bitLength = 0;
    bool intra = false;
    bool skip = false;
    u8 qp = 26;
    std::vector<CompDepRecord> deps;
};

/** Analysis-side record of one coded frame (encode order). */
struct FrameRecord
{
    FrameType type = FrameType::I;
    int encIdx = 0;
    int displayIdx = 0;
    bool isReference = true;
    std::vector<MbRecord> mbs;
};

/** Side information the encoder hands to the analysis stage. */
struct EncodeSideInfo
{
    std::vector<FrameRecord> frames;
};

/** Result of encoding: the bitstream plus analysis side info. */
struct EncodeResult
{
    EncodedVideo video;
    EncodeSideInfo side;
    /**
     * The encoder's reconstructed frames in display order — the
     * "coded video without bit flips" that the paper's quality
     * measurements use as the reference. A correct decoder must
     * reproduce these bit-exactly from the clean bitstream.
     */
    std::vector<Frame> reconFrames;
};

/**
 * Encode @p source under @p config.
 * @pre source frames share dimensions, multiples of 16.
 */
EncodeResult encodeVideo(const Video &source,
                         const EncoderConfig &config);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_ENCODER_H_
