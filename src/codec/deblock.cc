#include "codec/deblock.h"

#include "codec/reconstruct.h"
#include "simd/dispatch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace videoapp {

namespace {

/** Edge-activity threshold between facing pixels, grows with QP. */
int
alphaThreshold(int qp)
{
    // Close fit of the H.264 alpha table: ~0.8 * (2^(qp/6) - 1).
    int a = static_cast<int>(0.8 * (std::pow(2.0, qp / 6.0) - 1.0));
    return std::clamp(a, 0, 255);
}

/** Side-activity threshold, linear in QP like the H.264 beta table. */
int
betaThreshold(int qp)
{
    return std::clamp(qp / 2 - 7, 0, 18);
}

/** Clipping bound for the filter delta. */
int
tcBound(int qp, int bs)
{
    int base = std::max(1, qp / 10);
    return base + (bs >= 3 ? 2 : bs == 2 ? 1 : 0);
}

/** The motion vector covering the 4x4 at (bx, by) inside the MB. */
MotionVector
mvAt(const MbCoding &mb, int bx, int by, bool l1)
{
    if (mb.intra)
        return {};
    int px = bx * 4, py = by * 4;
    for (const auto &motion : mb.motions) {
        if (px >= motion.rect.x &&
            px < motion.rect.x + motion.rect.width &&
            py >= motion.rect.y &&
            py < motion.rect.y + motion.rect.height)
            return l1 ? motion.mvL1 : motion.mv;
    }
    return {};
}

/**
 * Filter a horizontal edge above plane row @p ey: the four rows
 * across it (p1 = ey-2 .. q1 = ey+1) are contiguous in memory, so
 * the kernel runs straight over them.
 */
void
filterHorizEdge(Plane &p, int ex, int ey, int count, int qp, int bs)
{
    if (bs == 0)
        return;
    u8 *base = p.data().data();
    const std::size_t stride = p.width();
    simd::simdKernels().deblockEdge(
        base + (ey - 2) * stride + ex, base + (ey - 1) * stride + ex,
        base + ey * stride + ex, base + (ey + 1) * stride + ex, count,
        alphaThreshold(qp), betaThreshold(qp), tcBound(qp, bs));
}

/**
 * Filter a vertical edge left of plane column @p ex by gathering the
 * four columns across it into contiguous buffers and scattering the
 * filtered p0/q0 columns back.
 */
void
filterVertEdge(Plane &p, int ex, int ey, int count, int qp, int bs)
{
    if (bs == 0)
        return;
    u8 p1[16], p0[16], q0[16], q1[16];
    for (int i = 0; i < count; ++i) {
        p1[i] = p.at(ex - 2, ey + i);
        p0[i] = p.at(ex - 1, ey + i);
        q0[i] = p.at(ex, ey + i);
        q1[i] = p.at(ex + 1, ey + i);
    }
    simd::simdKernels().deblockEdge(p1, p0, q0, q1, count,
                                    alphaThreshold(qp),
                                    betaThreshold(qp), tcBound(qp, bs));
    for (int i = 0; i < count; ++i) {
        p.at(ex - 1, ey + i) = p0[i];
        p.at(ex, ey + i) = q0[i];
    }
}

} // namespace

int
boundaryStrength(const MbCoding &mb_p, int blk_p, const MbCoding &mb_q,
                 int blk_q, bool mb_edge)
{
    if (mb_p.intra || mb_q.intra)
        return mb_edge ? 4 : 3;
    if ((blk_p < 24 && mb_p.coded[blk_p]) ||
        (blk_q < 24 && mb_q.coded[blk_q]))
        return 2;
    // Motion discontinuity: vectors differ by >= 1 pel or the
    // prediction direction differs.
    if (mb_p.skip != mb_q.skip || mb_p.direction != mb_q.direction)
        return 1;
    int pbx = (blk_p % 4), pby = (blk_p / 4);
    int qbx = (blk_q % 4), qby = (blk_q / 4);
    MotionVector mp = mvAt(mb_p, pbx, pby, false);
    MotionVector mq = mvAt(mb_q, qbx, qby, false);
    if (std::abs(mp.x - mq.x) >= 4 || std::abs(mp.y - mq.y) >= 4)
        return 1; // >= one full pixel (vectors are quarter-pel)
    if (mb_p.direction != BiDirection::L0) {
        MotionVector mp1 = mvAt(mb_p, pbx, pby, true);
        MotionVector mq1 = mvAt(mb_q, qbx, qby, true);
        if (std::abs(mp1.x - mq1.x) >= 4 ||
            std::abs(mp1.y - mq1.y) >= 4)
            return 1;
    }
    return 0;
}

void
deblockFrame(Frame &recon, const std::vector<MbCoding> &codings,
             int mb_width, int mb_height,
             const std::vector<int> &slice_first_rows)
{
    auto is_slice_start_row = [&](int mby) {
        for (int row : slice_first_rows)
            if (row == mby)
                return true;
        return false;
    };

    Plane &y = recon.y();

    // Vertical edges first (filtering horizontally across them),
    // then horizontal edges, per the H.264 order. Edges lie on the
    // 4x4 grid.
    for (int mby = 0; mby < mb_height; ++mby) {
        for (int mbx = 0; mbx < mb_width; ++mbx) {
            const MbCoding &mb = codings[mby * mb_width + mbx];
            int x0 = mbx * 16, y0 = mby * 16;

            for (int bx = 0; bx < 4; ++bx) {
                bool mb_edge = bx == 0;
                if (mb_edge && mbx == 0)
                    continue;
                const MbCoding &left =
                    mb_edge ? codings[mby * mb_width + mbx - 1] : mb;
                for (int by = 0; by < 4; ++by) {
                    int blk_q = by * 4 + bx;
                    int blk_p =
                        mb_edge ? by * 4 + 3 : by * 4 + bx - 1;
                    int bs = boundaryStrength(left, blk_p, mb, blk_q,
                                              mb_edge);
                    filterVertEdge(y, x0 + bx * 4, y0 + by * 4, 4,
                                   mb.qp, bs);
                }
            }
        }
    }

    for (int mby = 0; mby < mb_height; ++mby) {
        for (int mbx = 0; mbx < mb_width; ++mbx) {
            const MbCoding &mb = codings[mby * mb_width + mbx];
            int x0 = mbx * 16, y0 = mby * 16;
            for (int by = 0; by < 4; ++by) {
                bool mb_edge = by == 0;
                if (mb_edge && (mby == 0 || is_slice_start_row(mby)))
                    continue;
                const MbCoding &up =
                    mb_edge ? codings[(mby - 1) * mb_width + mbx]
                            : mb;
                for (int bx = 0; bx < 4; ++bx) {
                    int blk_q = by * 4 + bx;
                    int blk_p =
                        mb_edge ? 3 * 4 + bx : (by - 1) * 4 + bx;
                    int bs = boundaryStrength(up, blk_p, mb, blk_q,
                                              mb_edge);
                    filterHorizEdge(y, x0 + bx * 4, y0 + by * 4, 4,
                                    mb.qp, bs);
                }
            }
        }
    }

    // Chroma: filter only macroblock edges (8x8 chroma blocks), with
    // the boundary strength of the co-located luma edge.
    for (int comp = 0; comp < 2; ++comp) {
        Plane &c = comp == 0 ? recon.u() : recon.v();
        for (int mby = 0; mby < mb_height; ++mby) {
            for (int mbx = 0; mbx < mb_width; ++mbx) {
                const MbCoding &mb = codings[mby * mb_width + mbx];
                int x0 = mbx * 8, y0 = mby * 8;
                if (mbx > 0) {
                    const MbCoding &left =
                        codings[mby * mb_width + mbx - 1];
                    for (int seg = 0; seg < 2; ++seg) {
                        int bs = boundaryStrength(
                            left, seg * 8 + 3, mb, seg * 8, true);
                        filterVertEdge(c, x0, y0 + seg * 4, 4,
                                       chromaQp(mb.qp), bs);
                    }
                }
                if (mby > 0 && !is_slice_start_row(mby)) {
                    const MbCoding &up =
                        codings[(mby - 1) * mb_width + mbx];
                    for (int seg = 0; seg < 2; ++seg) {
                        int bs = boundaryStrength(
                            up, 12 + seg * 2, mb, seg * 2, true);
                        filterHorizEdge(c, x0 + seg * 4, y0, 4,
                                        chromaQp(mb.qp), bs);
                    }
                }
            }
        }
    }
}

} // namespace videoapp
