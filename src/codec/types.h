/**
 * @file
 * Shared types of the H.264-flavoured codec: frame types, macroblock
 * modes, partitions, and motion vectors.
 *
 * The codec implements the structural features the paper's analysis
 * depends on (Section 2.3): I/P/B frames, 16x16 macroblocks with
 * motion-compensated partitions down to 4x4, 16x16 intra prediction,
 * predictive metadata coding (median motion vectors, delta QP), and
 * context-adaptive entropy coding with per-slice context reset.
 */

#ifndef VIDEOAPP_CODEC_TYPES_H_
#define VIDEOAPP_CODEC_TYPES_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace videoapp {

/** Macroblock edge length in luma pixels. */
inline constexpr int kMbSize = 16;

/** Frame types (Section 2.3.1). */
enum class FrameType : u8 { I, P, B };

/** Returns "I", "P" or "B". */
const char *frameTypeName(FrameType t);

/** 16x16 luma intra prediction modes. */
enum class IntraMode : u8 { Vertical = 0, Horizontal, DC, Plane };
inline constexpr int kIntraModeCount = 4;

/** Luma partition shapes for inter prediction. */
enum class Partition : u8 { P16x16 = 0, P16x8, P8x16, P8x8 };
inline constexpr int kPartitionCount = 4;

/** Sub-partitions of an 8x8 block (H.264 sub-macroblock types). */
enum class SubPartition : u8 { S8x8 = 0, S8x4, S4x8, S4x4 };
inline constexpr int kSubPartitionCount = 4;

/** Prediction direction for B macroblocks. */
enum class BiDirection : u8 { L0 = 0, L1, Bi };

/**
 * Motion vector in QUARTER-PEL units (x = 4 means one full pixel).
 * Half-sample positions are interpolated with the H.264 6-tap
 * filter, quarter samples bilinearly; see codec/inter.h.
 */
struct MotionVector
{
    i16 x = 0;
    i16 y = 0;

    bool operator==(const MotionVector &o) const = default;

    MotionVector
    operator+(const MotionVector &o) const
    {
        return {static_cast<i16>(x + o.x), static_cast<i16>(y + o.y)};
    }

    MotionVector
    operator-(const MotionVector &o) const
    {
        return {static_cast<i16>(x - o.x), static_cast<i16>(y - o.y)};
    }
};

/** Component-wise median of three motion vectors (H.264 MV pred). */
MotionVector medianMv(const MotionVector &a, const MotionVector &b,
                      const MotionVector &c);

/** One motion-compensated rectangle within a macroblock. */
struct PartitionGeom
{
    int x = 0;      // offset within the MB, luma pixels
    int y = 0;
    int width = kMbSize;
    int height = kMbSize;
};

/**
 * Rectangles of a luma partition shape. For P8x8 the caller expands
 * each 8x8 with subPartitionGeom().
 */
std::vector<PartitionGeom> partitionGeom(Partition p);

/** Rectangles of a sub-partition within the 8x8 at (bx, by). */
std::vector<PartitionGeom> subPartitionGeom(SubPartition s, int bx,
                                            int by);

/** Motion data for one compensated rectangle. */
struct MotionInfo
{
    PartitionGeom rect;
    MotionVector mv;         // for L0 (or the only list)
    MotionVector mvL1;       // for L1 when direction != L0
    BiDirection direction = BiDirection::L0;
};

/** Per-macroblock coding decision produced by the encoder. */
struct MbCoding
{
    bool intra = false;
    bool skip = false;

    IntraMode intraMode = IntraMode::DC;
    /** Intra MB uses per-4x4-block prediction (9 modes) instead of
     * one 16x16 mode. */
    bool intra4 = false;
    /** Intra4Mode per 4x4 luma block (raster order) when intra4. */
    std::array<u8, 16> intra4Modes{};

    Partition partition = Partition::P16x16;
    std::array<SubPartition, 4> subs{SubPartition::S8x8,
                                     SubPartition::S8x8,
                                     SubPartition::S8x8,
                                     SubPartition::S8x8};
    BiDirection direction = BiDirection::L0;

    /** All compensated rectangles with their motion vectors. */
    std::vector<MotionInfo> motions;

    /** Quantisation parameter used for this MB. */
    int qp = 26;

    /** Quantised coefficients: 16 luma 4x4 blocks + 8 chroma. */
    std::array<std::array<i16, 16>, 24> coeffs{};
    /** Per 4x4 block: any nonzero coefficient? */
    std::array<bool, 24> coded{};
};

/** Zigzag scan order for 4x4 blocks. */
inline constexpr std::array<u8, 16> kZigzag4x4 = {
    0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15};

/** Valid QP range (H.264 luma). */
inline constexpr int kMinQp = 0;
inline constexpr int kMaxQp = 51;

/** Clamp a QP into the valid range. */
int clampQp(int qp);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_TYPES_H_
