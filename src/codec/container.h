/**
 * @file
 * The coded-video container: stream header, per-frame headers with
 * slice records and error-correction pivots, and the per-frame MB
 * payloads.
 *
 * The split mirrors the paper's storage model (Section 4.4): frame
 * headers — including the pivot table — are small, stored precisely
 * (BCH-16 class), and let the decoder locate every slice even when
 * payload bits are corrupted. Payload bytes are the approximate part.
 */

#ifndef VIDEOAPP_CODEC_CONTAINER_H_
#define VIDEOAPP_CODEC_CONTAINER_H_

#include <optional>
#include <vector>

#include "codec/gop.h"
#include "codec/syntax.h"
#include "codec/types.h"
#include "common/types.h"

namespace videoapp {

/** One slice of a frame: a run of MB rows with its payload window. */
struct SliceRecord
{
    u32 firstMb = 0;
    u32 mbCount = 0;
    /** Byte offset of the slice payload within the frame payload. */
    u32 byteOffset = 0;
    u32 byteLength = 0;
};

/**
 * A pivot (Figure 6): from payload bit @p bitOffset onward, the MB
 * payload is protected with scheme BCH-@p schemeT (0 = none). Stored
 * in the precise frame header.
 */
struct PivotRecord
{
    u64 bitOffset = 0;
    u8 schemeT = 0;
};

/** Precisely stored per-frame header. */
struct FrameHeader
{
    u16 displayIdx = 0;
    FrameType type = FrameType::I;
    u8 qpBase = 26;
    /** Encode-order indices of the reference frames (-1 = none). */
    i32 ref0 = -1;
    i32 ref1 = -1;
    std::vector<SliceRecord> slices;
    std::vector<PivotRecord> pivots;
};

/** Precisely stored stream-level header. */
struct StreamHeader
{
    u16 width = 0;
    u16 height = 0;
    double fps = 50.0;
    EntropyKind entropy = EntropyKind::CABAC;
    u16 frameCount = 0;
    u8 slicesPerFrame = 1;
    /** Bit 0: in-loop deblocking enabled. */
    u8 flags = 0;

    bool deblocking() const { return flags & 1; }
};

/** A fully encoded video: headers plus per-frame payload bytes. */
struct EncodedVideo
{
    StreamHeader header;
    /** Frame headers in encode order. */
    std::vector<FrameHeader> frameHeaders;
    /** MB payload per frame, encode order (the approximate bits). */
    std::vector<Bytes> payloads;

    /** Total payload size in bits. */
    u64 payloadBits() const;

    /** Exact serialised size of all precise headers, in bits. */
    u64 headerBits() const;

    int mbWidth() const { return header.width / kMbSize; }
    int mbHeight() const { return header.height / kMbSize; }
    int mbPerFrame() const { return mbWidth() * mbHeight(); }
};

/** Serialise headers + payloads into one self-contained blob. */
Bytes serialize(const EncodedVideo &video);

/** Parse a blob produced by serialize(); nullopt on malformed data. */
std::optional<EncodedVideo> deserialize(const Bytes &blob);

/** Serialise only the precise parts (for header-size accounting). */
Bytes serializeHeaders(const EncodedVideo &video);

/**
 * Parse a blob produced by serializeHeaders(): the precise layout
 * with empty payloads. Used by archives, which persist headers and
 * payload placement separately from the approximate payload bits.
 */
std::optional<EncodedVideo> deserializeHeaders(const Bytes &blob);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_CONTAINER_H_
