/**
 * @file
 * 4x4 intra prediction: the nine H.264 directional modes.
 *
 * Intra4x4 macroblocks predict each 4x4 luma block from its
 * immediate reconstructed neighbours — including earlier blocks of
 * the same macroblock — giving much better detail coding than the
 * 16x16 modes and a finer-grained spatial dependency structure.
 * Prediction inputs are the 13 standard samples: four above (A-D),
 * four above-right (E-H, replicated from D when unavailable), four
 * left (I-L) and the corner (M).
 */

#ifndef VIDEOAPP_CODEC_INTRA4_H_
#define VIDEOAPP_CODEC_INTRA4_H_

#include <array>
#include <vector>

#include "codec/intra.h"
#include "codec/types.h"
#include "video/frame.h"

namespace videoapp {

/** The nine 4x4 intra modes, H.264 numbering. */
enum class Intra4Mode : u8 {
    Vertical = 0,
    Horizontal = 1,
    DC = 2,
    DiagDownLeft = 3,
    DiagDownRight = 4,
    VerticalRight = 5,
    HorizontalDown = 6,
    VerticalLeft = 7,
    HorizontalUp = 8,
};
inline constexpr int kIntra4ModeCount = 9;

/** Neighbour samples of one 4x4 block, with availability. */
struct Intra4Neighbors
{
    std::array<u8, 8> above{}; // A-D then E-H (maybe replicated)
    std::array<u8, 4> left{};  // I-L
    u8 corner = 128;           // M
    bool aboveAvail = false;
    bool leftAvail = false;
    bool cornerAvail = false;
};

/**
 * Gather the neighbours of the 4x4 block whose top-left pixel is
 * (@p x, @p y) in @p recon. The three availability flags describe
 * which regions have been reconstructed (the caller derives them
 * from block position and slice/frame boundaries);
 * @p above_right_avail controls E-H (replicated from D otherwise).
 */
Intra4Neighbors gatherIntra4Neighbors(const Plane &recon, int x,
                                      int y, bool left_avail,
                                      bool above_avail,
                                      bool corner_avail,
                                      bool above_right_avail);

/** Is @p mode usable with this neighbour availability? */
bool intra4ModeAvailable(Intra4Mode mode,
                         const Intra4Neighbors &neighbors);

/**
 * Predict one 4x4 block (@p out row-major). Unavailable modes fall
 * back to DC, which itself falls back to 128 — total for corrupted
 * streams.
 */
void predictIntra4(const Intra4Neighbors &neighbors, Intra4Mode mode,
                   u8 out[16]);

/**
 * Most probable mode for a block given its left and above
 * neighbouring blocks' modes (DC when a neighbour is missing or not
 * intra4x4 — the H.264 rule).
 */
Intra4Mode predictIntra4Mode(bool left_avail, Intra4Mode left,
                             bool above_avail, Intra4Mode above);

/** Which border sample groups a mode reads. */
bool intra4UsesAbove(Intra4Mode mode);
bool intra4UsesLeft(Intra4Mode mode);
bool intra4UsesAboveRight(Intra4Mode mode);
bool intra4UsesCorner(Intra4Mode mode);

/**
 * Neighbour-MB dependency weights of an intra4x4 macroblock
 * (Section 4.1 semantics: a unit of incoming damage distributed
 * over the contributing neighbour MBs in proportion to referenced
 * border samples). Only the border blocks reach outside the MB;
 * availability flags follow reconstructIntra4Luma.
 */
std::vector<IntraDependency> intra4Dependencies(const MbCoding &mb,
                                                bool left_avail,
                                                bool up_avail,
                                                bool up_left_avail,
                                                bool up_right_avail);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_INTRA4_H_
