/**
 * @file
 * Intra prediction: 16x16 luma modes (Vertical, Horizontal, DC,
 * Plane) and 8x8 chroma DC, predicting from reconstructed neighbour
 * pixels within the same frame — the spatial dependences that feed
 * the compensation edges of the VideoApp graph for intra MBs.
 */

#ifndef VIDEOAPP_CODEC_INTRA_H_
#define VIDEOAPP_CODEC_INTRA_H_

#include <array>
#include <vector>

#include "codec/types.h"
#include "video/frame.h"

namespace videoapp {

/** A 16x16 (or 8x8 for chroma) prediction block. */
template <int N>
using PredBlock = std::array<u8, static_cast<std::size_t>(N) * N>;

/**
 * Predict the 16x16 luma block at MB position (@p mbx, @p mby) from
 * the reconstructed plane @p recon. Unavailable neighbours (frame or
 * slice boundary, controlled by @p left_avail / @p up_avail) fall
 * back per the H.264 rules (DC uses 128 when nothing is available).
 */
PredBlock<16> predictLuma16(const Plane &recon, int mbx, int mby,
                            IntraMode mode, bool left_avail,
                            bool up_avail);

/** Predict an 8x8 chroma block with the DC rule. */
PredBlock<8> predictChromaDc(const Plane &recon, int mbx, int mby,
                             bool left_avail, bool up_avail);

/**
 * Sum of absolute differences between the source 16x16 at
 * (@p mbx, @p mby) and a candidate prediction; the encoder's intra
 * mode selection cost.
 */
long intraSad16(const Plane &source, int mbx, int mby,
                const PredBlock<16> &prediction);

/**
 * Which neighbour MBs a given intra mode reads pixels from, with the
 * paper's area-proportional weights (Section 4.1: "distribute the
 * weight of 1 across all MBs proportionally to the number of pixels
 * they contribute").
 */
struct IntraDependency
{
    /** dx, dy in MB units (e.g. {-1, 0} = left MB) and weight. */
    int dx, dy;
    double weight;
};

std::vector<IntraDependency> intraDependencies(IntraMode mode,
                                               bool left_avail,
                                               bool up_avail);

/**
 * Most probable intra mode given decoded neighbour modes (predictive
 * metadata coding: the bitstream codes "is it the predicted mode",
 * then a correction — corrupting a neighbour corrupts this chain).
 */
IntraMode predictIntraMode(bool left_avail, IntraMode left,
                           bool up_avail, IntraMode up);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_INTRA_H_
