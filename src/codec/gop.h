/**
 * @file
 * Group-of-pictures planning: frame types, display/encode order, and
 * reference assignment (Section 2.3.1). Includes the Section 8
 * encoder knobs: number of B-frames between anchors and whether
 * B-frames may be used as references (unreferenced frames are dead
 * ends for error propagation, which polarises importance).
 */

#ifndef VIDEOAPP_CODEC_GOP_H_
#define VIDEOAPP_CODEC_GOP_H_

#include <vector>

#include "codec/types.h"

namespace videoapp {

/** GOP shape configuration. */
struct GopConfig
{
    /** Distance between I-frames in display order. */
    int gopSize = 48;
    /** Consecutive B-frames between anchors (0 = IPPP...). */
    int bFrames = 2;
    /** May B-frames be referenced by other B-frames? */
    bool bRefs = false;
};

/** One frame's plan, produced in encode order. */
struct FramePlan
{
    int displayIdx = 0;
    FrameType type = FrameType::I;
    /**
     * References as indices into the encode-order sequence
     * (-1 = none). P uses ref0; B uses ref0 (past) and ref1
     * (future in display order).
     */
    int ref0 = -1;
    int ref1 = -1;
    /** Will any later frame reference this one? */
    bool isReference = true;
};

/**
 * Plan @p frame_count frames under @p config. The result is in
 * encode order; every frame's references appear earlier in the
 * list (the property that makes the compensation graph a DAG).
 */
std::vector<FramePlan> planGop(int frame_count,
                               const GopConfig &config);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_GOP_H_
