#include "codec/inter.h"

#include "simd/dispatch.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>

namespace videoapp {

namespace {

u8
clampPixel(int v)
{
    return static_cast<u8>(std::clamp(v, 0, 255));
}

/** 6-tap H.264 half-sample filter over six consecutive samples. */
int
sixTap(int a, int b, int c, int d, int e, int f)
{
    return a - 5 * b + 20 * c + 20 * d - 5 * e + f;
}

/** Horizontal half-sample at integer row y, between ix and ix+1. */
int
halfHorizontal(const Plane &ref, int ix, int y)
{
    return sixTap(ref.atClamped(ix - 2, y), ref.atClamped(ix - 1, y),
                  ref.atClamped(ix, y), ref.atClamped(ix + 1, y),
                  ref.atClamped(ix + 2, y), ref.atClamped(ix + 3, y));
}

/** Vertical half-sample at integer column x, between iy and iy+1. */
int
halfVertical(const Plane &ref, int x, int iy)
{
    return sixTap(ref.atClamped(x, iy - 2), ref.atClamped(x, iy - 1),
                  ref.atClamped(x, iy), ref.atClamped(x, iy + 1),
                  ref.atClamped(x, iy + 2), ref.atClamped(x, iy + 3));
}

/** Largest block the contiguous prediction buffers accommodate. */
constexpr int kMaxRectSide = 16;

/**
 * True when every sample the six-tap interpolation of a w x h block
 * anchored at quarter-pel (base_x4, base_y4) touches — including the
 * +1 half-pel neighbour of quarter positions — lies strictly inside
 * the plane, so atClamped degenerates to at and the row kernels can
 * run without per-pixel clamping.
 */
bool
interiorWindow(const Plane &ref, int base_x4, int base_y4, int w,
               int h)
{
    int ix = base_x4 >> 2, iy = base_y4 >> 2;
    return ix >= 2 && iy >= 2 && ix + w + 5 < ref.width() &&
           iy + h + 5 < ref.height();
}

/**
 * Fill @p out (contiguous, stride w) with w x h half-pel samples at
 * half-coordinates (hx + 2x, hy + 2y) via the active kernel table.
 * @p p00 addresses integer coordinate (0, 0) of a buffer in which
 * every sample the six-tap filters touch is in bounds — either the
 * reference plane itself (interior windows) or a clamped border
 * patch in translated coordinates.
 */
void
buildHalfRect(const u8 *p00, int stride, int hx, int hy, int w,
              int h, u8 *out)
{
    const int ix = hx >> 1, iy = hy >> 1;
    const bool fx = hx & 1, fy = hy & 1;
    const u8 *base =
        p00 + static_cast<std::ptrdiff_t>(iy) * stride + ix;
    const simd::SimdKernels &k = simd::simdKernels();

    if (!fx && !fy) {
        for (int y = 0; y < h; ++y)
            std::memcpy(out + y * w, base + y * stride,
                        static_cast<std::size_t>(w));
    } else if (fx && !fy) {
        for (int y = 0; y < h; ++y)
            k.halfHRow(base + y * stride, w, out + y * w);
    } else if (!fx && fy) {
        for (int y = 0; y < h; ++y)
            k.halfVRow(base + y * stride, stride, w, out + y * w);
    } else {
        // Centre (j) position: raw vertical half-samples, then the
        // 32-bit horizontal six-tap.
        i16 raw[kMaxRectSide + 6];
        for (int y = 0; y < h; ++y) {
            k.halfVRowRaw(base + y * stride - 2, stride, w + 6, raw);
            k.sixTapHRowI16(raw + 2, w, out + y * w);
        }
    }
}

/**
 * Fill @p out (contiguous, stride w) with the motion-compensated
 * prediction anchored at quarter-pel (base_x4, base_y4), matching
 * sampleQuarterPel sample for sample. Coordinates address the
 * buffer behind @p p00 (see buildHalfRect).
 * @pre w, h <= kMaxRectSide and the window is in bounds.
 */
void
buildPredRect(const u8 *p00, int stride, int base_x4, int base_y4,
              int w, int h, u8 *out)
{
    const int hx = base_x4 >> 1, hy = base_y4 >> 1;
    const bool qx = base_x4 & 1, qy = base_y4 & 1;
    if (!qx && !qy) {
        buildHalfRect(p00, stride, hx, hy, w, h, out);
        return;
    }
    u8 a[kMaxRectSide * kMaxRectSide];
    u8 b[kMaxRectSide * kMaxRectSide];
    buildHalfRect(p00, stride, hx, hy, w, h, a);
    if (qx && !qy)
        buildHalfRect(p00, stride, hx + 1, hy, w, h, b);
    else if (!qx && qy)
        buildHalfRect(p00, stride, hx, hy + 1, w, h, b);
    else // diagonal: average the two diagonal half neighbours
        buildHalfRect(p00, stride, hx + 1, hy + 1, w, h, b);
    simd::simdKernels().averageU8(a, b, w * h, out);
}

/** Patch side for a clamped border window: w + 6-tap support + the
 * +1 integer column/row quarter offsets can add. */
constexpr int kPatchSide = kMaxRectSide + 7;

/**
 * Gather the (ax..ax+cols-1) x (ay..ay+rows-1) integer window of
 * @p ref into @p patch (stride cols) with border clamping, so
 * patch[j * cols + i] == ref.atClamped(ax + i, ay + j).
 */
void
fillClampedPatch(const Plane &ref, int ax, int ay, int cols,
                 int rows, u8 *patch)
{
    const int rw = ref.width(), rh = ref.height();
    const u8 *data = ref.data().data();
    for (int j = 0; j < rows; ++j) {
        const u8 *row =
            data +
            static_cast<std::size_t>(std::clamp(ay + j, 0, rh - 1)) *
                rw;
        u8 *dst = patch + static_cast<std::size_t>(j) * cols;
        int i = 0;
        for (; i < cols && ax + i < 0; ++i)
            dst[i] = row[0];
        int run = std::min(cols, rw - ax) - i;
        if (run > 0) {
            std::memcpy(dst + i, row + ax + i,
                        static_cast<std::size_t>(run));
            i += run;
        }
        for (; i < cols; ++i)
            dst[i] = row[rw - 1];
    }
}

/**
 * buildPredRect for windows that spill past the plane border: gather
 * a clamped integer patch once, then interpolate inside it with the
 * same kernels. Bit-exact with the per-sample sampleQuarterPel
 * fallback because each patch byte equals atClamped of the original
 * coordinate.
 * @pre w, h <= kMaxRectSide.
 */
void
buildPredRectClamped(const Plane &ref, int base_x4, int base_y4,
                     int w, int h, u8 *out)
{
    const int ax = (base_x4 >> 2) - 2, ay = (base_y4 >> 2) - 2;
    const int cols = w + 7, rows = h + 7;
    u8 patch[kPatchSide * kPatchSide];
    fillClampedPatch(ref, ax, ay, cols, rows, patch);
    buildPredRect(patch, cols, base_x4 - 4 * ax, base_y4 - 4 * ay, w,
                  h, out);
}

} // namespace

u8
sampleHalfPel(const Plane &reference, int x2, int y2)
{
    // Floor-divide the half-pel coordinates (they may be negative).
    int ix = x2 >> 1, iy = y2 >> 1;
    bool half_x = x2 & 1, half_y = y2 & 1;

    if (!half_x && !half_y)
        return reference.atClamped(ix, iy);
    if (half_x && !half_y)
        return clampPixel((halfHorizontal(reference, ix, iy) + 16) >>
                          5);
    if (!half_x && half_y)
        return clampPixel((halfVertical(reference, ix, iy) + 16) >> 5);

    // Centre position: 6-tap horizontally over vertical half
    // samples (the H.264 j position).
    int v[6];
    for (int k = -2; k <= 3; ++k)
        v[k + 2] = halfVertical(reference, ix + k, iy);
    return clampPixel(
        (sixTap(v[0], v[1], v[2], v[3], v[4], v[5]) + 512) >> 10);
}

u8
sampleQuarterPel(const Plane &reference, int x4, int y4)
{
    bool quarter_x = x4 & 1, quarter_y = y4 & 1;
    int hx = x4 >> 1, hy = y4 >> 1; // floor in half-pel units

    if (!quarter_x && !quarter_y)
        return sampleHalfPel(reference, hx, hy);
    if (quarter_x && !quarter_y) {
        int a = sampleHalfPel(reference, hx, hy);
        int b = sampleHalfPel(reference, hx + 1, hy);
        return static_cast<u8>((a + b + 1) >> 1);
    }
    if (!quarter_x && quarter_y) {
        int a = sampleHalfPel(reference, hx, hy);
        int b = sampleHalfPel(reference, hx, hy + 1);
        return static_cast<u8>((a + b + 1) >> 1);
    }
    // Diagonal quarter: average the two diagonal half neighbours
    // (the H.264 e/g/p/r positions).
    int a = sampleHalfPel(reference, hx, hy);
    int b = sampleHalfPel(reference, hx + 1, hy + 1);
    return static_cast<u8>((a + b + 1) >> 1);
}

long
sadRectQuarterPel(const Plane &source, int sx, int sy, int w, int h,
                  const Plane &reference, const MotionVector &mv)
{
    const simd::SimdKernels &k = simd::simdKernels();
    const int src_stride = source.width();
    const u8 *src = source.data().data() +
                    static_cast<std::size_t>(sy) * src_stride + sx;
    int base_x = 4 * sx + mv.x;
    int base_y = 4 * sy + mv.y;
    if ((mv.x & 3) == 0 && (mv.y & 3) == 0) {
        // Integer path: direct SAD when the window is in bounds,
        // scalar clamped loop at the frame border.
        int rx = base_x >> 2, ry = base_y >> 2;
        if (rx >= 0 && ry >= 0 && rx + w <= reference.width() &&
            ry + h <= reference.height()) {
            const u8 *ref = reference.data().data() +
                            static_cast<std::size_t>(ry) *
                                reference.width() +
                            rx;
            return k.sadRect(src, src_stride, ref,
                             reference.width(), w, h);
        }
        if (w <= kMaxRectSide && h <= kMaxRectSide) {
            u8 patch[kMaxRectSide * kMaxRectSide];
            fillClampedPatch(reference, rx, ry, w, h, patch);
            return k.sadRect(src, src_stride, patch, w, w, h);
        }
        long sad = 0;
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                sad += std::abs(
                    static_cast<int>(source.at(sx + x, sy + y)) -
                    reference.atClamped(rx + x, ry + y));
        return sad;
    }
    if (w <= kMaxRectSide && h <= kMaxRectSide) {
        u8 pred[kMaxRectSide * kMaxRectSide];
        if (interiorWindow(reference, base_x, base_y, w, h))
            buildPredRect(reference.data().data(),
                          reference.width(), base_x, base_y, w, h,
                          pred);
        else
            buildPredRectClamped(reference, base_x, base_y, w, h,
                                 pred);
        return k.sadRect(src, src_stride, pred, w, w, h);
    }
    long sad = 0;
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            sad += std::abs(
                static_cast<int>(source.at(sx + x, sy + y)) -
                sampleQuarterPel(reference, base_x + 4 * x,
                                 base_y + 4 * y));
    return sad;
}

MotionSearchResult
motionSearch(const Plane &source, int sx, int sy, int w, int h,
             const Plane &reference, const MotionVector &predictor,
             int range, SubPel sub_pel)
{
    const int range4 = 4 * range; // bound in quarter-pel units
    auto clamp_mv = [range4](int v) {
        return std::clamp(v, -range4, range4);
    };
    auto eval = [&](const MotionVector &mv) {
        return sadRectQuarterPel(source, sx, sy, w, h, reference,
                                 mv);
    };

    // Stage 1: integer-pel diamond from the (rounded) predictor.
    MotionVector best{
        static_cast<i16>(clamp_mv(predictor.x & ~3)),
        static_cast<i16>(clamp_mv(predictor.y & ~3))};
    long best_sad = eval(best);

    if (!(best.x == 0 && best.y == 0)) {
        long zero_sad = eval({0, 0});
        if (zero_sad < best_sad) {
            best = {0, 0};
            best_sad = zero_sad;
        }
    }

    static const int large[4][2] = {{8, 0}, {-8, 0}, {0, 8}, {0, -8}};
    static const int small_d[4][2] = {{4, 0}, {-4, 0}, {0, 4},
                                      {0, -4}};
    for (int iter = 0; iter < 64; ++iter) {
        MotionVector centre = best;
        for (const auto &d : large) {
            MotionVector cand{
                static_cast<i16>(clamp_mv(centre.x + d[0])),
                static_cast<i16>(clamp_mv(centre.y + d[1]))};
            if (cand == best)
                continue;
            long sad = eval(cand);
            if (sad < best_sad) {
                best_sad = sad;
                best = cand;
            }
        }
        if (best == centre)
            break;
    }
    for (const auto &d : small_d) {
        MotionVector cand{static_cast<i16>(clamp_mv(best.x + d[0])),
                          static_cast<i16>(clamp_mv(best.y + d[1]))};
        long sad = eval(cand);
        if (sad < best_sad) {
            best_sad = sad;
            best = cand;
        }
    }

    // Stages 2 and 3: half-pel then quarter-pel refinement.
    auto refine = [&](int step) {
        MotionVector centre = best;
        for (int dy = -step; dy <= step; dy += step) {
            for (int dx = -step; dx <= step; dx += step) {
                if (dx == 0 && dy == 0)
                    continue;
                MotionVector cand{
                    static_cast<i16>(clamp_mv(centre.x + dx)),
                    static_cast<i16>(clamp_mv(centre.y + dy))};
                long sad = eval(cand);
                if (sad < best_sad) {
                    best_sad = sad;
                    best = cand;
                }
            }
        }
    };
    if (sub_pel >= SubPel::Half)
        refine(2);
    if (sub_pel >= SubPel::Quarter)
        refine(1);

    return {best, best_sad};
}

void
compensateRect(const Plane &reference, int dx, int dy, int w, int h,
               const MotionVector &mv, u8 *out)
{
    int base_x = 4 * dx + mv.x;
    int base_y = 4 * dy + mv.y;
    if ((mv.x & 3) == 0 && (mv.y & 3) == 0) {
        int rx = base_x >> 2, ry = base_y >> 2;
        if (rx >= 0 && ry >= 0 && rx + w <= reference.width() &&
            ry + h <= reference.height()) {
            const u8 *ref = reference.data().data() +
                            static_cast<std::size_t>(ry) *
                                reference.width() +
                            rx;
            for (int y = 0; y < h; ++y)
                std::memcpy(out + y * w,
                            ref + static_cast<std::size_t>(y) *
                                      reference.width(),
                            static_cast<std::size_t>(w));
            return;
        }
        if (w <= kMaxRectSide && h <= kMaxRectSide) {
            fillClampedPatch(reference, rx, ry, w, h, out);
            return;
        }
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                out[y * w + x] = reference.atClamped(rx + x, ry + y);
        return;
    }
    if (w <= kMaxRectSide && h <= kMaxRectSide) {
        if (interiorWindow(reference, base_x, base_y, w, h))
            buildPredRect(reference.data().data(), reference.width(),
                          base_x, base_y, w, h, out);
        else
            buildPredRectClamped(reference, base_x, base_y, w, h,
                                 out);
        return;
    }
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            out[y * w + x] = sampleQuarterPel(
                reference, base_x + 4 * x, base_y + 4 * y);
}

void
averagePredictions(const u8 *a, const u8 *b, int count, u8 *out)
{
    simd::simdKernels().averageU8(a, b, count, out);
}

std::vector<AreaDependency>
referenceAreas(int dx, int dy, int w, int h, const MotionVector &mv,
               int width, int height)
{
    // Integer part of the reference window, expanded by the 6-tap
    // support when the vector has a fractional component (quarter
    // samples interpolate between half samples, so the footprint is
    // the half-sample one).
    bool frac_x = mv.x & 3, frac_y = mv.y & 3;
    int x0 = (4 * dx + mv.x) >> 2;
    int y0 = (4 * dy + mv.y) >> 2;
    int left = frac_x ? 2 : 0, right = frac_x ? 3 : 0;
    int top = frac_y ? 2 : 0, bottom = frac_y ? 3 : 0;

    std::map<std::pair<int, int>, int> counts;
    for (int y = -top; y < h + bottom; ++y) {
        int sy = std::clamp(y0 + y, 0, height - 1);
        for (int x = -left; x < w + right; ++x) {
            int sx = std::clamp(x0 + x, 0, width - 1);
            ++counts[{sx / kMbSize, sy / kMbSize}];
        }
    }
    std::vector<AreaDependency> out;
    out.reserve(counts.size());
    for (const auto &[key, pixels] : counts)
        out.push_back({key.first, key.second, pixels});
    return out;
}

} // namespace videoapp
