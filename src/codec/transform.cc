#include "codec/transform.h"

#include "simd/dispatch.h"

namespace videoapp {

// The transform, quantisation tables and reference loops moved to
// src/simd/kernels_scalar.cc as dispatch-table oracles; these entry
// points just call through the active table.

Residual4x4
forwardQuant4x4(const Residual4x4 &residual, int qp, bool intra)
{
    Residual4x4 levels{};
    simd::simdKernels().forwardQuant4x4(residual.data(), qp, intra,
                                        levels.data());
    return levels;
}

Residual4x4
inverseQuant4x4(const Residual4x4 &levels, int qp)
{
    Residual4x4 out{};
    simd::simdKernels().inverseQuant4x4(levels.data(), qp,
                                        out.data());
    return out;
}

bool
anyNonZero(const Residual4x4 &levels)
{
    for (i16 v : levels)
        if (v != 0)
            return true;
    return false;
}

} // namespace videoapp
