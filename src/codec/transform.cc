#include "codec/transform.h"

#include <cstdlib>

namespace videoapp {

namespace {

// Quantisation multiplier tables of the H.264 reference model.
// Rows: qp % 6. Columns: coefficient position class (a, b, c).
constexpr int kMf[6][3] = {
    {13107, 5243, 8066}, {11916, 4660, 7490}, {10082, 4194, 6554},
    {9362, 3647, 5825},  {8192, 3355, 5243},  {7282, 2893, 4559},
};

constexpr int kV[6][3] = {
    {10, 16, 13}, {11, 18, 14}, {13, 20, 16},
    {14, 23, 18}, {16, 25, 20}, {18, 29, 23},
};

/** Position class within the 4x4: 0 = a, 1 = b, 2 = c. */
constexpr int
posClass(int i, int j)
{
    bool even_i = (i & 1) == 0;
    bool even_j = (j & 1) == 0;
    if (even_i && even_j)
        return 0;
    if (!even_i && !even_j)
        return 1;
    return 2;
}

/** Core forward transform: W = Cf X Cf^T. */
void
coreForward(const Residual4x4 &in, int out[16])
{
    int tmp[16];
    // Rows: Cf applied to each row of X (as column vectors of X^T).
    for (int i = 0; i < 4; ++i) {
        int a = in[4 * i], b = in[4 * i + 1];
        int c = in[4 * i + 2], d = in[4 * i + 3];
        int s0 = a + d, s1 = b + c, s2 = b - c, s3 = a - d;
        tmp[4 * i] = s0 + s1;
        tmp[4 * i + 1] = 2 * s3 + s2;
        tmp[4 * i + 2] = s0 - s1;
        tmp[4 * i + 3] = s3 - 2 * s2;
    }
    // Columns.
    for (int j = 0; j < 4; ++j) {
        int a = tmp[j], b = tmp[4 + j], c = tmp[8 + j], d = tmp[12 + j];
        int s0 = a + d, s1 = b + c, s2 = b - c, s3 = a - d;
        out[j] = s0 + s1;
        out[4 + j] = 2 * s3 + s2;
        out[8 + j] = s0 - s1;
        out[12 + j] = s3 - 2 * s2;
    }
}

/** Core inverse transform with final >>6 rounding. */
void
coreInverse(const int in[16], Residual4x4 &out)
{
    int tmp[16];
    for (int i = 0; i < 4; ++i) {
        int a = in[4 * i], b = in[4 * i + 1];
        int c = in[4 * i + 2], d = in[4 * i + 3];
        int s0 = a + c, s1 = a - c;
        int s2 = (b >> 1) - d, s3 = b + (d >> 1);
        tmp[4 * i] = s0 + s3;
        tmp[4 * i + 1] = s1 + s2;
        tmp[4 * i + 2] = s1 - s2;
        tmp[4 * i + 3] = s0 - s3;
    }
    for (int j = 0; j < 4; ++j) {
        int a = tmp[j], b = tmp[4 + j], c = tmp[8 + j], d = tmp[12 + j];
        int s0 = a + c, s1 = a - c;
        int s2 = (b >> 1) - d, s3 = b + (d >> 1);
        out[j] = static_cast<i16>((s0 + s3 + 32) >> 6);
        out[4 + j] = static_cast<i16>((s1 + s2 + 32) >> 6);
        out[8 + j] = static_cast<i16>((s1 - s2 + 32) >> 6);
        out[12 + j] = static_cast<i16>((s0 - s3 + 32) >> 6);
    }
}

} // namespace

Residual4x4
forwardQuant4x4(const Residual4x4 &residual, int qp, bool intra)
{
    int w[16];
    coreForward(residual, w);

    Residual4x4 levels{};
    const int qbits = 15 + qp / 6;
    const int f = (1 << qbits) / (intra ? 3 : 6);
    const int rem = qp % 6;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            int idx = 4 * i + j;
            int mf = kMf[rem][posClass(i, j)];
            int v = w[idx];
            int mag = (std::abs(v) * mf + f) >> qbits;
            // Clamp to a sane range so entropy coding of corrupt
            // streams stays bounded.
            if (mag > 2048)
                mag = 2048;
            levels[idx] = static_cast<i16>(v < 0 ? -mag : mag);
        }
    }
    return levels;
}

Residual4x4
inverseQuant4x4(const Residual4x4 &levels, int qp)
{
    int w[16];
    const int shift = qp / 6;
    const int rem = qp % 6;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            int idx = 4 * i + j;
            int v = kV[rem][posClass(i, j)];
            w[idx] = (levels[idx] * v) << shift;
        }
    }
    Residual4x4 out{};
    coreInverse(w, out);
    return out;
}

bool
anyNonZero(const Residual4x4 &levels)
{
    for (i16 v : levels)
        if (v != 0)
            return true;
    return false;
}

} // namespace videoapp
