/**
 * @file
 * In-loop deblocking filter (H.264-style, simplified).
 *
 * Applied to a fully reconstructed frame before it becomes a
 * reference: block-transform codecs create visible discontinuities
 * at 4x4 block edges, and filtering them in-loop improves both the
 * output and every frame predicted from it. Intra prediction uses
 * the unfiltered samples (as in H.264), so the filter runs as a
 * whole-frame pass after reconstruction on both encoder and decoder.
 *
 * Boundary strength follows the H.264 rules in spirit: strongest
 * across intra macroblock edges, then edges with coded residual,
 * then motion discontinuities; smooth regions pass untouched. The
 * filter never crosses slice boundaries, preserving slice error
 * independence.
 */

#ifndef VIDEOAPP_CODEC_DEBLOCK_H_
#define VIDEOAPP_CODEC_DEBLOCK_H_

#include <vector>

#include "codec/types.h"
#include "video/frame.h"

namespace videoapp {

/**
 * Filter @p recon in place. @p codings holds the frame's macroblock
 * decisions in scan order (one per MB); @p slice_first_rows lists
 * the first MB row of every slice (edges at those rows are not
 * filtered).
 */
void deblockFrame(Frame &recon, const std::vector<MbCoding> &codings,
                  int mb_width, int mb_height,
                  const std::vector<int> &slice_first_rows);

/**
 * Boundary strength between two 4x4 luma blocks (H.264-flavoured):
 * 4 intra MB edge, 3 intra inner edge, 2 coded residual on either
 * side, 1 motion discontinuity, 0 skip filtering. Exposed for tests.
 */
int boundaryStrength(const MbCoding &mb_p, int blk_p,
                     const MbCoding &mb_q, int blk_q, bool mb_edge);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_DEBLOCK_H_
