/**
 * @file
 * Macroblock syntax: the exact sequence of entropy-coded decisions
 * per MB, mirrored between encodeMb() and decodeMb().
 *
 * The layout follows H.264's structure (Section 2.3.3): header
 * (skip / intra flag / partitioning / prediction metadata with
 * predictive coding), delta QP, coded-block pattern, then the
 * quantised transform coefficients with significance maps.
 */

#ifndef VIDEOAPP_CODEC_MB_SYNTAX_H_
#define VIDEOAPP_CODEC_MB_SYNTAX_H_

#include "codec/intra4.h"
#include "codec/mb_grid.h"
#include "codec/syntax.h"
#include "codec/types.h"

namespace videoapp {

/** Position/slice context handed to the MB syntax routines. */
struct MbPosition
{
    int mbx = 0;
    int mby = 0;
    int sliceFirstRow = 0;
    FrameType frameType = FrameType::I;
};

/**
 * Entropy-encode @p mb. @p prev_qp is the running QP predictor of
 * the slice; updated to this MB's QP when the MB codes one.
 * The grid cell for this MB is updated.
 */
void encodeMb(SyntaxEncoder &enc, const MbCoding &mb,
              const MbPosition &pos, MbGrid &grid, int &prev_qp);

/**
 * Parse one MB. Never fails: corrupted input produces an arbitrary
 * but bounded MbCoding (all magnitudes clamped, loops bounded),
 * which is the decoder-robustness contract of DESIGN.md.
 */
MbCoding decodeMb(SyntaxDecoder &dec, const MbPosition &pos,
                  MbGrid &grid, int &prev_qp);

/**
 * Reconstruct the motion vectors of @p mb's partition rectangles
 * from the coded motion-vector differences @p mvds (in coding
 * order); shared by encoder (to compute mvds) and decoder (to apply
 * them). Exposed for tests.
 */
MotionVector mvPredictorForRect(const MbGrid &grid,
                                const MbPosition &pos,
                                std::size_t rect_index,
                                const MbCoding &mb, bool l1);

/**
 * Predicted intra4x4 mode of block @p blk (raster order within the
 * MB): the H.264 most-probable-mode rule over the left and above
 * blocks, DC when a neighbour is missing or not intra4x4. Used by
 * both the syntax coder and the encoder's mode costing.
 */
Intra4Mode predictedIntra4BlockMode(const MbGrid &grid,
                                    const MbPosition &pos,
                                    const MbCoding &mb, int blk);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_MB_SYNTAX_H_
