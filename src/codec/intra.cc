#include "codec/intra.h"

#include <algorithm>
#include <cstdlib>

#include "simd/dispatch.h"

namespace videoapp {

namespace {

u8
clampPixel(int v)
{
    return static_cast<u8>(std::clamp(v, 0, 255));
}

template <int N>
PredBlock<N>
predictBlock(const Plane &recon, int x0, int y0, IntraMode mode,
             bool left_avail, bool up_avail)
{
    PredBlock<N> out{};

    // Effective mode after availability fallbacks.
    IntraMode eff = mode;
    if (eff == IntraMode::Vertical && !up_avail)
        eff = IntraMode::DC;
    if (eff == IntraMode::Horizontal && !left_avail)
        eff = IntraMode::DC;
    if (eff == IntraMode::Plane && (!left_avail || !up_avail))
        eff = IntraMode::DC;

    switch (eff) {
      case IntraMode::Vertical:
        for (int y = 0; y < N; ++y)
            for (int x = 0; x < N; ++x)
                out[y * N + x] = recon.at(x0 + x, y0 - 1);
        break;
      case IntraMode::Horizontal:
        for (int y = 0; y < N; ++y)
            for (int x = 0; x < N; ++x)
                out[y * N + x] = recon.at(x0 - 1, y0 + y);
        break;
      case IntraMode::DC: {
        int sum = 0, count = 0;
        if (up_avail) {
            for (int x = 0; x < N; ++x)
                sum += recon.at(x0 + x, y0 - 1);
            count += N;
        }
        if (left_avail) {
            for (int y = 0; y < N; ++y)
                sum += recon.at(x0 - 1, y0 + y);
            count += N;
        }
        u8 dc = count ? static_cast<u8>((sum + count / 2) / count)
                      : 128;
        out.fill(dc);
        break;
      }
      case IntraMode::Plane: {
        // H.264 plane prediction fitted from the border pixels.
        int h = 0, v = 0;
        for (int i = 1; i <= N / 2; ++i) {
            h += i * (recon.at(x0 + N / 2 - 1 + i, y0 - 1) -
                      recon.at(x0 + N / 2 - 1 - i, y0 - 1));
            v += i * (recon.at(x0 - 1, y0 + N / 2 - 1 + i) -
                      recon.at(x0 - 1, y0 + N / 2 - 1 - i));
        }
        int scale = N == 16 ? 5 : 17; // per-size slope scaling
        int b = (scale * h + 32) >> 6;
        int c = (scale * v + 32) >> 6;
        int a = 16 * (recon.at(x0 - 1, y0 + N - 1) +
                      recon.at(x0 + N - 1, y0 - 1));
        for (int y = 0; y < N; ++y)
            for (int x = 0; x < N; ++x)
                out[y * N + x] = clampPixel(
                    (a + b * (x - (N / 2 - 1)) + c * (y - (N / 2 - 1)) +
                     16) >> 5);
        break;
      }
    }
    return out;
}

} // namespace

PredBlock<16>
predictLuma16(const Plane &recon, int mbx, int mby, IntraMode mode,
              bool left_avail, bool up_avail)
{
    return predictBlock<16>(recon, mbx * 16, mby * 16, mode,
                            left_avail, up_avail);
}

PredBlock<8>
predictChromaDc(const Plane &recon, int mbx, int mby, bool left_avail,
                bool up_avail)
{
    return predictBlock<8>(recon, mbx * 8, mby * 8, IntraMode::DC,
                           left_avail, up_avail);
}

long
intraSad16(const Plane &source, int mbx, int mby,
           const PredBlock<16> &prediction)
{
    int x0 = mbx * 16, y0 = mby * 16;
    const u8 *src = source.data().data() +
                    static_cast<std::size_t>(y0) * source.width() + x0;
    return simd::simdKernels().sadRect(src, source.width(),
                                       prediction.data(), 16, 16, 16);
}

std::vector<IntraDependency>
intraDependencies(IntraMode mode, bool left_avail, bool up_avail)
{
    IntraMode eff = mode;
    if (eff == IntraMode::Vertical && !up_avail)
        eff = IntraMode::DC;
    if (eff == IntraMode::Horizontal && !left_avail)
        eff = IntraMode::DC;
    if (eff == IntraMode::Plane && (!left_avail || !up_avail))
        eff = IntraMode::DC;

    switch (eff) {
      case IntraMode::Vertical:
        return {{0, -1, 1.0}};
      case IntraMode::Horizontal:
        return {{-1, 0, 1.0}};
      case IntraMode::DC:
        if (left_avail && up_avail)
            return {{-1, 0, 0.5}, {0, -1, 0.5}};
        if (left_avail)
            return {{-1, 0, 1.0}};
        if (up_avail)
            return {{0, -1, 1.0}};
        return {};
      case IntraMode::Plane:
        // 16 pixels above + 16 left + 1 corner = 33 contributors.
        return {{0, -1, 16.0 / 33}, {-1, 0, 16.0 / 33},
                {-1, -1, 1.0 / 33}};
    }
    return {};
}

IntraMode
predictIntraMode(bool left_avail, IntraMode left, bool up_avail,
                 IntraMode up)
{
    // H.264-style: the minimum of the neighbour modes, DC fallback.
    if (left_avail && up_avail)
        return static_cast<IntraMode>(
            std::min(static_cast<u8>(left), static_cast<u8>(up)));
    if (left_avail)
        return left;
    if (up_avail)
        return up;
    return IntraMode::DC;
}

} // namespace videoapp
