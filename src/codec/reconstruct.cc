#include "codec/reconstruct.h"

#include <algorithm>
#include <array>

#include "codec/intra.h"
#include "codec/intra4.h"
#include "codec/inter.h"
#include "codec/transform.h"
#include "simd/dispatch.h"

namespace videoapp {

namespace {

/** Pointer to the pixel (x, y) of a plane. */
inline u8 *
planePtr(Plane &p, int x, int y)
{
    return p.data().data() + static_cast<std::size_t>(y) * p.width() +
           x;
}

inline const u8 *
planePtr(const Plane &p, int x, int y)
{
    return p.data().data() + static_cast<std::size_t>(y) * p.width() +
           x;
}

/** Fill an inter prediction rectangle, handling direction and
 * missing references. */
void
interRect(const MotionInfo &motion, int base_x, int base_y,
          const Plane *ref0, const Plane *ref1, int scale, u8 *mb_buf,
          int stride)
{
    // Rectangle in plane coordinates (chroma: halved geometry).
    int rx = motion.rect.x / scale;
    int ry = motion.rect.y / scale;
    int rw = std::max(motion.rect.width / scale, 1);
    int rh = std::max(motion.rect.height / scale, 1);
    int dx = base_x + rx;
    int dy = base_y + ry;
    MotionVector mv0{static_cast<i16>(motion.mv.x / scale),
                     static_cast<i16>(motion.mv.y / scale)};
    MotionVector mv1{static_cast<i16>(motion.mvL1.x / scale),
                     static_cast<i16>(motion.mvL1.y / scale)};

    std::array<u8, 256> p0{}, p1{};
    auto fill = [&](const Plane *ref, const MotionVector &mv, u8 *out) {
        if (ref) {
            compensateRect(*ref, dx, dy, rw, rh, mv, out);
        } else {
            for (int i = 0; i < rw * rh; ++i)
                out[i] = 128; // corrupted stream: neutral prediction
        }
    };

    const u8 *src = p0.data();
    switch (motion.direction) {
      case BiDirection::L0:
        fill(ref0, mv0, p0.data());
        break;
      case BiDirection::L1:
        fill(ref1, mv1, p0.data());
        break;
      case BiDirection::Bi:
        fill(ref0, mv0, p0.data());
        fill(ref1, mv1, p1.data());
        averagePredictions(p0.data(), p1.data(), rw * rh, p0.data());
        break;
    }
    for (int y = 0; y < rh; ++y)
        for (int x = 0; x < rw; ++x)
            mb_buf[(ry + y) * stride + rx + x] = src[y * rw + x];
}

} // namespace

int
chromaQp(int luma_qp)
{
    static const int kTable[22] = {29, 30, 31, 32, 32, 33, 34, 34,
                                   35, 35, 36, 36, 37, 37, 37, 38,
                                   38, 38, 39, 39, 39, 39};
    int qp = clampQp(luma_qp);
    if (qp < 30)
        return qp;
    return kTable[qp - 30];
}

void
predictMbLuma(const MbCoding &mb, int mbx, int mby,
              const Plane &recon_y, const Plane *ref0_y,
              const Plane *ref1_y, bool left_avail, bool up_avail,
              u8 out[256])
{
    if (mb.intra) {
        PredBlock<16> pred = predictLuma16(recon_y, mbx, mby,
                                           mb.intraMode, left_avail,
                                           up_avail);
        std::copy(pred.begin(), pred.end(), out);
        return;
    }
    for (const auto &motion : mb.motions)
        interRect(motion, mbx * 16, mby * 16, ref0_y, ref1_y, 1, out,
                  16);
}

void
predictMbChroma(const MbCoding &mb, int mbx, int mby,
                const Plane &recon_c, const Plane *ref0_c,
                const Plane *ref1_c, bool left_avail, bool up_avail,
                u8 out[64])
{
    if (mb.intra) {
        PredBlock<8> pred = predictChromaDc(recon_c, mbx, mby,
                                            left_avail, up_avail);
        std::copy(pred.begin(), pred.end(), out);
        return;
    }
    for (const auto &motion : mb.motions)
        interRect(motion, mbx * 8, mby * 8, ref0_c, ref1_c, 2, out, 8);
}

void
reconstructIntra4Luma(Plane &recon_y, MbCoding &mb, int mbx, int mby,
                      const MbAvail &avail, const Plane *source)
{
    const int x0 = mbx * 16, y0 = mby * 16;
    for (int blk = 0; blk < 16; ++blk) {
        int bx = blk % 4, by = blk / 4;
        int x = x0 + bx * 4, y = y0 + by * 4;

        // Availability of this block's neighbour regions.
        bool left = bx > 0 || avail.left;
        bool above = by > 0 || avail.up;
        bool corner;
        if (bx > 0 && by > 0)
            corner = true;
        else if (bx > 0) // top row, corner is in the up MB
            corner = avail.up;
        else if (by > 0) // left column, corner is in the left MB
            corner = avail.left;
        else
            corner = avail.upLeft;
        bool above_right;
        if (by == 0)
            above_right = bx < 3 ? avail.up : avail.upRight;
        else
            above_right = bx < 3; // in-MB, already reconstructed

        Intra4Neighbors neighbors = gatherIntra4Neighbors(
            recon_y, x, y, left, above, corner, above_right);
        u8 pred[16];
        predictIntra4(neighbors,
                      static_cast<Intra4Mode>(
                          mb.intra4Modes[blk] % kIntra4ModeCount),
                      pred);

        const simd::SimdKernels &k = simd::simdKernels();
        if (source) {
            Residual4x4 res{};
            k.residual4x4(planePtr(*source, x, y), source->width(),
                          pred, 4, res.data());
            Residual4x4 levels = forwardQuant4x4(res, mb.qp, true);
            mb.coded[blk] = anyNonZero(levels);
            mb.coeffs[blk] = mb.coded[blk] ? levels : Residual4x4{};
        }

        Residual4x4 res{};
        if (mb.coded[blk])
            res = inverseQuant4x4(mb.coeffs[blk], mb.qp);
        k.reconstruct4x4(pred, 4, res.data(), planePtr(recon_y, x, y),
                         recon_y.width());
    }
}

void
reconstructMb(Frame &recon, const MbCoding &mb, int mbx, int mby,
              const Frame *ref0, const Frame *ref1,
              const MbAvail &avail)
{
    const bool left_avail = avail.left;
    const bool up_avail = avail.up;

    // Luma.
    if (mb.intra && mb.intra4) {
        // Sequential per-block reconstruction with the coefficients
        // already in mb (idempotent; see header).
        MbCoding &mutable_mb = const_cast<MbCoding &>(mb);
        reconstructIntra4Luma(recon.y(), mutable_mb, mbx, mby, avail,
                              nullptr);
    } else {
        u8 pred[256];
        predictMbLuma(mb, mbx, mby, recon.y(),
                      ref0 ? &ref0->y() : nullptr,
                      ref1 ? &ref1->y() : nullptr, left_avail,
                      up_avail, pred);
        int x0 = mbx * 16, y0 = mby * 16;
        const simd::SimdKernels &k = simd::simdKernels();
        for (int blk = 0; blk < 16; ++blk) {
            int bx = (blk % 4) * 4;
            int by = (blk / 4) * 4;
            Residual4x4 res{};
            if (mb.coded[blk])
                res = inverseQuant4x4(mb.coeffs[blk], mb.qp);
            k.reconstruct4x4(pred + by * 16 + bx, 16, res.data(),
                             planePtr(recon.y(), x0 + bx, y0 + by),
                             recon.y().width());
        }
    }

    // Chroma (U then V; coefficient blocks 16..19 and 20..23).
    int qpc = chromaQp(mb.qp);
    for (int comp = 0; comp < 2; ++comp) {
        Plane &plane = comp == 0 ? recon.u() : recon.v();
        const Plane *r0 = ref0 ? (comp == 0 ? &ref0->u() : &ref0->v())
                               : nullptr;
        const Plane *r1 = ref1 ? (comp == 0 ? &ref1->u() : &ref1->v())
                               : nullptr;
        u8 cpred[64];
        predictMbChroma(mb, mbx, mby, plane, r0, r1, left_avail,
                        up_avail, cpred);
        int cx0 = mbx * 8, cy0 = mby * 8;
        const simd::SimdKernels &k = simd::simdKernels();
        for (int sub = 0; sub < 4; ++sub) {
            int blk = 16 + comp * 4 + sub;
            int bx = (sub % 2) * 4;
            int by = (sub / 2) * 4;
            Residual4x4 res{};
            if (mb.coded[blk])
                res = inverseQuant4x4(mb.coeffs[blk], qpc);
            k.reconstruct4x4(cpred + (by * 8 + bx), 8, res.data(),
                             planePtr(plane, cx0 + bx, cy0 + by),
                             plane.width());
        }
    }
}

} // namespace videoapp
