/**
 * @file
 * Shared macroblock prediction and reconstruction.
 *
 * The encoder (after its mode decision) and the decoder (after
 * parsing) both turn an MbCoding into pixels through these
 * functions, guaranteeing that the encoder's reference frames are
 * bit-exactly what the decoder reconstructs.
 */

#ifndef VIDEOAPP_CODEC_RECONSTRUCT_H_
#define VIDEOAPP_CODEC_RECONSTRUCT_H_

#include "codec/types.h"
#include "video/frame.h"

namespace videoapp {

/** H.264 chroma QP derived from the luma QP. */
int chromaQp(int luma_qp);

/**
 * Build the 16x16 luma prediction for @p mb at (@p mbx, @p mby).
 * Intra modes read reconstructed neighbours of @p recon_y; inter
 * rectangles read @p ref0_y / @p ref1_y (either may be null when the
 * frame type has no such list — missing references predict 128,
 * keeping corrupted streams total).
 */
void predictMbLuma(const MbCoding &mb, int mbx, int mby,
                   const Plane &recon_y, const Plane *ref0_y,
                   const Plane *ref1_y, bool left_avail,
                   bool up_avail, u8 out[256]);

/**
 * Build one 8x8 chroma prediction (@p recon_c / refs are the same
 * component's planes). Inter motion vectors are halved.
 */
void predictMbChroma(const MbCoding &mb, int mbx, int mby,
                     const Plane &recon_c, const Plane *ref0_c,
                     const Plane *ref1_c, bool left_avail,
                     bool up_avail, u8 out[64]);

/** Neighbour availability of a macroblock (slice-aware). */
struct MbAvail
{
    bool left = false;
    bool up = false;
    bool upLeft = false;
    bool upRight = false;
};

/**
 * Apply @p mb's residual on top of its prediction and write the
 * reconstructed pixels into @p recon.
 */
void reconstructMb(Frame &recon, const MbCoding &mb, int mbx, int mby,
                   const Frame *ref0, const Frame *ref1,
                   const MbAvail &avail);

/**
 * Intra4x4 luma reconstruction: sequentially predict each 4x4 block
 * from already-reconstructed neighbours (including earlier blocks
 * of this MB), add the residual, and write @p recon_y.
 *
 * With @p source set (encoder path) the residual is computed from
 * the source pixels and quantised into @p mb (coeffs/coded filled);
 * with @p source null (decoder path, and the encoder's later
 * reconstructMb call) the existing coefficients are applied. The
 * function is idempotent once coefficients are fixed, which is what
 * keeps encoder and decoder bit-exact.
 */
void reconstructIntra4Luma(Plane &recon_y, MbCoding &mb, int mbx,
                           int mby, const MbAvail &avail,
                           const Plane *source);

} // namespace videoapp

#endif // VIDEOAPP_CODEC_RECONSTRUCT_H_
