#include "storage/bch.h"

#include "common/telemetry.h"
#include "simd/dispatch.h"

#include <array>
#include <atomic>
#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

namespace videoapp {

namespace {

/**
 * Multiply two polynomials with GF(2^10) coefficients (used only to
 * build minimal polynomials, whose products have 0/1 coefficients).
 */
std::vector<u16>
polyMulField(const std::vector<u16> &a, const std::vector<u16> &b,
             const Gf1024 &gf)
{
    std::vector<u16> out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i])
            continue;
        for (std::size_t j = 0; j < b.size(); ++j) {
            if (b[j])
                out[i + j] ^= gf.mul(a[i], b[j]);
        }
    }
    return out;
}

/** Minimal polynomial over GF(2) of alpha^s (product over the coset). */
std::vector<u8>
minimalPoly(int s, const Gf1024 &gf)
{
    // Cyclotomic coset of s under doubling mod 1023.
    std::set<int> coset;
    int e = s % Gf1024::kOrder;
    while (!coset.count(e)) {
        coset.insert(e);
        e = (2 * e) % Gf1024::kOrder;
    }

    std::vector<u16> poly{1};
    for (int c : coset) {
        // Multiply by (x + alpha^c).
        std::vector<u16> factor{gf.alphaPow(c), 1};
        poly = polyMulField(poly, factor, gf);
    }

    std::vector<u8> out(poly.size());
    for (std::size_t i = 0; i < poly.size(); ++i) {
        assert(poly[i] <= 1 && "minimal polynomial must be binary");
        out[i] = static_cast<u8>(poly[i]);
    }
    return out;
}

/** Multiply two GF(2) polynomials. */
std::vector<u8>
polyMulBinary(const std::vector<u8> &a, const std::vector<u8> &b)
{
    std::vector<u8> out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i])
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= (a[i] & b[j]);
    }
    return out;
}

/*
 * Packed parity register layout ("stream order"): register index i
 * holds the coefficient of x^(parity-1-i) — i.e. index 0 is the
 * highest-degree parity coefficient, exactly the order in which
 * parity bits appear in the systematic codeword. Index i lives in
 * word i/64 at bit 63 - i%64 (MSB first), matching the codeword
 * byte packing, so the register can be copied straight into the
 * output. Bits at index >= parity stay zero by construction: the
 * stream-left shift pulls zeros in from beyond the register and the
 * XOR masks never set them.
 */

/** Shift the stream-ordered register left by one bit. */
inline void
shiftLeft1(u64 *reg, int words)
{
    for (int w = 0; w < words - 1; ++w)
        reg[w] = (reg[w] << 1) | (reg[w + 1] >> 63);
    reg[words - 1] <<= 1;
}

/** Shift the stream-ordered register left by one byte. */
inline void
shiftLeft8(u64 *reg, int words)
{
    for (int w = 0; w < words - 1; ++w)
        reg[w] = (reg[w] << 8) | (reg[w + 1] >> 56);
    reg[words - 1] <<= 8;
}

/** Load packed MSB-first bytes into MSB-first u64 words. */
inline u64
loadWordBe(const u8 *bytes, std::size_t available)
{
    u64 w = 0;
    for (std::size_t j = 0; j < 8; ++j) {
        w <<= 8;
        if (j < available)
            w |= bytes[j];
    }
    return w;
}

/** Largest t the Chien term arrays are sized for. */
constexpr int kMaxT = 58;

/**
 * The GF(1024) antilog table widened to i32 for the vectorized Chien
 * scan (the AVX2 gather reads 32-bit elements), with one padding
 * entry so an 8-lane gather whose tail lanes are masked off still
 * stays in bounds.
 */
const i32 *
paddedAlogI32()
{
    static const std::array<i32, Gf1024::kOrder + 1> table = [] {
        std::array<i32, Gf1024::kOrder + 1> t{};
        const Gf1024 &gf = Gf1024::instance();
        for (int i = 0; i < Gf1024::kOrder; ++i)
            t[static_cast<std::size_t>(i)] = gf.alphaPow(i);
        t[Gf1024::kOrder] = 0;
        return t;
    }();
    return table.data();
}

} // namespace

BchCode::BchCode(int t, int data_bits)
    : t_(t), k_(data_bits)
{
    assert(t >= 1);
    const Gf1024 &gf = Gf1024::instance();

    // g(x) = lcm of minimal polynomials of alpha^1 .. alpha^{2t}.
    // Track which exponents are already covered by an included coset.
    std::set<int> covered;
    gen_ = {1};
    for (int s = 1; s <= 2 * t; ++s) {
        if (covered.count(s % Gf1024::kOrder))
            continue;
        int e = s % Gf1024::kOrder;
        while (!covered.count(e)) {
            covered.insert(e);
            e = (2 * e) % Gf1024::kOrder;
        }
        gen_ = polyMulBinary(gen_, minimalPoly(s, gf));
    }
    parity_ = static_cast<int>(gen_.size()) - 1;

    assert(k_ + parity_ <= Gf1024::kOrder &&
           "shortened length exceeds the natural code length");

    // Pack g in stream order: genMask_ index i = gen_[parity-1-i].
    parityWords_ = (parity_ + 63) / 64;
    genMask_.assign(parityWords_, 0);
    for (int i = 0; i < parity_; ++i) {
        if (gen_[parity_ - 1 - i])
            genMask_[i / 64] |= 1ull << (63 - i % 64);
    }

    // Byte-step table: byteTable_[v] is the register after feeding
    // the 8 bits of v into a zero register bit-serially. The CRC
    // identity R' = (R << 8) ^ T[data_byte ^ top8(R)] then advances
    // eight data bits per lookup.
    byteTable_.assign(256 * static_cast<std::size_t>(parityWords_),
                      0);
    for (int v = 0; v < 256; ++v) {
        u64 *entry =
            &byteTable_[static_cast<std::size_t>(v) * parityWords_];
        for (int bit = 7; bit >= 0; --bit) {
            u64 fb = ((static_cast<u64>(v) >> bit) & 1) ^
                     (entry[0] >> 63);
            shiftLeft1(entry, parityWords_);
            if (fb) {
                for (int w = 0; w < parityWords_; ++w)
                    entry[w] ^= genMask_[w];
            }
        }
    }

    // Per-byte syndrome table: one XOR of a 2t-entry row folds a
    // whole received byte into all syndromes at once. Built from the
    // 8 per-bit contribution vectors of each byte position with the
    // subset-DP  T[v] = T[v & (v-1)] ^ T[lowest set bit of v].
    const int n = k_ + parity_;
    const std::size_t nbytes = codewordBytes();
    const std::size_t row = static_cast<std::size_t>(2 * t_);
    syndTable_.assign(nbytes * 256 * row, 0);
    std::vector<u16> bit_contrib(8 * row);
    for (std::size_t p = 0; p < nbytes; ++p) {
        u16 *table = &syndTable_[p * 256 * row];
        std::fill(bit_contrib.begin(), bit_contrib.end(), 0);
        for (int b = 0; b < 8; ++b) {
            int j = static_cast<int>(p) * 8 + (7 - b);
            if (j >= n)
                continue; // pad bit: contributes nothing
            int e = (n - 1 - j) % Gf1024::kOrder;
            int acc = e;
            for (std::size_t i = 0; i < row; ++i) {
                bit_contrib[static_cast<std::size_t>(b) * row + i] =
                    gf.alphaPow(acc);
                acc += e;
                if (acc >= Gf1024::kOrder)
                    acc -= Gf1024::kOrder;
            }
        }
        for (int v = 1; v < 256; ++v) {
            const u16 *lower = &table[static_cast<std::size_t>(
                                          v & (v - 1)) *
                                      row];
            const u16 *bit =
                &bit_contrib[static_cast<std::size_t>(
                                 __builtin_ctz(
                                     static_cast<unsigned>(v))) *
                             row];
            u16 *out = &table[static_cast<std::size_t>(v) * row];
            for (std::size_t i = 0; i < row; ++i)
                out[i] = lower[i] ^ bit[i];
        }
    }
}

void
BchCode::parityOf(const u8 *data, std::size_t bit_count,
                  u64 *reg) const
{
    for (int w = 0; w < parityWords_; ++w)
        reg[w] = 0;

    const std::size_t full_bytes = bit_count / 8;
    for (std::size_t b = 0; b < full_bytes; ++b) {
        u64 f = (data[b] ^ (reg[0] >> 56)) & 0xff;
        shiftLeft8(reg, parityWords_);
        const u64 *entry = &byteTable_[f * parityWords_];
        for (int w = 0; w < parityWords_; ++w)
            reg[w] ^= entry[w];
    }
    // Tail bits (only when dataBits() is not byte aligned).
    for (std::size_t i = full_bytes * 8; i < bit_count; ++i) {
        u64 d = (data[i / 8] >> (7 - i % 8)) & 1;
        u64 fb = d ^ (reg[0] >> 63);
        shiftLeft1(reg, parityWords_);
        if (fb) {
            for (int w = 0; w < parityWords_; ++w)
                reg[w] ^= genMask_[w];
        }
    }
}

void
BchCode::encodeBytes(const u8 *data, u8 *codeword) const
{
    assert(k_ % 8 == 0 &&
           "packed byte encoding needs byte-aligned data length");

    u64 reg[16];
    parityOf(data, static_cast<std::size_t>(k_), reg);

    const std::size_t data_bytes = static_cast<std::size_t>(k_) / 8;
    for (std::size_t b = 0; b < data_bytes; ++b)
        codeword[b] = data[b];
    const std::size_t parity_bytes = codewordBytes() - data_bytes;
    for (std::size_t b = 0; b < parity_bytes; ++b)
        codeword[data_bytes + b] = static_cast<u8>(
            reg[b / 8] >> (56 - 8 * (b % 8)));
}

BitVec
BchCode::encode(const BitVec &data) const
{
    assert(static_cast<int>(data.size()) == k_);

    Bytes packed = packBits(data);
    u64 reg[16];
    parityOf(packed.data(), static_cast<std::size_t>(k_), reg);

    BitVec codeword(k_ + parity_);
    for (int i = 0; i < k_; ++i)
        codeword[i] = data[i];
    for (int i = 0; i < parity_; ++i)
        codeword[k_ + i] = static_cast<u8>(
            (reg[i / 64] >> (63 - i % 64)) & 1);
    return codeword;
}

BchCode::DecodeResult
BchCode::decodeBytes(u8 *codeword) const
{
    const Gf1024 &gf = Gf1024::instance();
    const int n = k_ + parity_;
    const std::size_t nbytes = codewordBytes();

    // Syndromes S_i = r(alpha^i), i = 1..2t: fold each received
    // byte into all 2t syndromes with one precomputed row XOR (pad
    // bits beyond n are zeroed inside the table).
    const std::size_t row = static_cast<std::size_t>(2 * t_);
    std::vector<u16> synd(row, 0);
    simd::simdKernels().foldSyndromes(codeword, nbytes,
                                      syndTable_.data(), row,
                                      synd.data());

    VA_TELEM_COUNT("storage.bch.blocks_decoded", 1);

    bool all_zero = true;
    for (u16 s : synd) {
        if (s) {
            all_zero = false;
            break;
        }
    }
    if (all_zero) {
        VA_TELEM_COUNT("storage.bch.blocks_clean", 1);
        return {true, 0};
    }

    // Berlekamp-Massey: find the error locator polynomial C(x).
    std::vector<u16> c{1}, b{1};
    int l = 0, m = 1;
    u16 bb = 1;
    for (int step = 0; step < 2 * t_; ++step) {
        u16 d = synd[step];
        for (int i = 1; i <= l && i < static_cast<int>(c.size()); ++i) {
            if (c[i] && synd[step - i])
                d ^= gf.mul(c[i], synd[step - i]);
        }
        if (d == 0) {
            ++m;
        } else if (2 * l <= step) {
            std::vector<u16> temp = c;
            u16 coeff = gf.div(d, bb);
            if (c.size() < b.size() + m)
                c.resize(b.size() + m, 0);
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (b[i])
                    c[i + m] ^= gf.mul(coeff, b[i]);
            }
            l = step + 1 - l;
            b = temp;
            bb = d;
            m = 1;
        } else {
            u16 coeff = gf.div(d, bb);
            if (c.size() < b.size() + m)
                c.resize(b.size() + m, 0);
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (b[i])
                    c[i + m] ^= gf.mul(coeff, b[i]);
            }
            ++m;
        }
    }

    if (l > t_) {
        VA_TELEM_COUNT("storage.bch.blocks_uncorrectable", 1);
        return {false, 0}; // more errors than the code can locate
    }

    // Chien search restricted to the shortened positions, stopping
    // once all l roots are found (a degree-l locator has no more).
    // Evaluated in the log domain: C(alpha^{-e}) = sum_i c_i *
    // alpha^{-i*e}, so each nonzero coefficient keeps a running
    // exponent bumped by -i per position — one antilog lookup per
    // term instead of a field multiply.
    u16 constant = 0;
    int nterms = 0;
    i32 term_acc[2 * kMaxT + 1];
    i32 term_step[2 * kMaxT + 1];
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (!c[i])
            continue;
        if (i == 0) {
            constant = c[i];
            continue;
        }
        term_acc[nterms] = gf.log(c[i]);
        term_step[nterms] =
            Gf1024::kOrder -
            static_cast<int>(i) % Gf1024::kOrder;
        ++nterms;
    }
    i32 roots[kMaxT];
    int found = simd::simdKernels().chienScan(
        term_acc, term_step, nterms, constant, paddedAlogI32(), n, l,
        roots);

    if (found != l) {
        VA_TELEM_COUNT("storage.bch.blocks_uncorrectable", 1);
        return {false, 0}; // locator has roots outside the block
    }

    // Root exponent e locates the error at stored position n-1-e.
    for (int i = 0; i < found; ++i) {
        int pos = n - 1 - roots[i];
        codeword[pos / 8] ^= static_cast<u8>(0x80u >> (pos % 8));
    }
    VA_TELEM_COUNT("storage.bch.bits_corrected",
                   static_cast<u64>(l));
    return {true, l};
}

BchCode::DecodeResult
BchCode::decode(BitVec &codeword) const
{
    const int n = k_ + parity_;
    assert(static_cast<int>(codeword.size()) == n);

    Bytes packed = packBits(codeword);
    DecodeResult result = decodeBytes(packed.data());
    if (result.ok && result.corrected > 0)
        codeword = unpackBits(packed, static_cast<std::size_t>(n));
    return result;
}

BitVec
BchCode::encodeReference(const BitVec &data) const
{
    assert(static_cast<int>(data.size()) == k_);

    // Systematic encoding: remainder of data(x) * x^parity divided by
    // g(x), computed with the standard LFSR formulation. data[0] is
    // the highest-degree information coefficient.
    BitVec lfsr(parity_, 0);
    for (int i = 0; i < k_; ++i) {
        u8 feedback = data[i] ^ lfsr[parity_ - 1];
        for (int j = parity_ - 1; j > 0; --j)
            lfsr[j] = (lfsr[j - 1] ^ (feedback & gen_[j])) & 1;
        lfsr[0] = feedback & gen_[0];
    }

    BitVec codeword(k_ + parity_);
    for (int i = 0; i < k_; ++i)
        codeword[i] = data[i];
    // lfsr[parity-1] is the highest-degree parity coefficient; store
    // parity MSB-first to match the data convention.
    for (int i = 0; i < parity_; ++i)
        codeword[k_ + i] = lfsr[parity_ - 1 - i];
    return codeword;
}

BchCode::DecodeResult
BchCode::decodeReference(BitVec &codeword) const
{
    const Gf1024 &gf = Gf1024::instance();
    const int n = k_ + parity_;
    assert(static_cast<int>(codeword.size()) == n);

    // Syndromes S_i = r(alpha^i). Stored bit j is the coefficient of
    // x^(n-1-j).
    std::vector<u16> synd(2 * t_, 0);
    for (int j = 0; j < n; ++j) {
        if (!codeword[j])
            continue;
        int exp = n - 1 - j;
        for (int i = 1; i <= 2 * t_; ++i)
            synd[i - 1] ^= gf.alphaPow(i * exp);
    }

    bool all_zero = true;
    for (u16 s : synd) {
        if (s) {
            all_zero = false;
            break;
        }
    }
    if (all_zero)
        return {true, 0};

    // Berlekamp-Massey: find the error locator polynomial C(x).
    std::vector<u16> c{1}, b{1};
    int l = 0, m = 1;
    u16 bb = 1;
    for (int step = 0; step < 2 * t_; ++step) {
        // Discrepancy.
        u16 d = synd[step];
        for (int i = 1; i <= l && i < static_cast<int>(c.size()); ++i) {
            if (c[i] && synd[step - i])
                d ^= gf.mul(c[i], synd[step - i]);
        }
        if (d == 0) {
            ++m;
        } else if (2 * l <= step) {
            std::vector<u16> temp = c;
            u16 coeff = gf.div(d, bb);
            if (c.size() < b.size() + m)
                c.resize(b.size() + m, 0);
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (b[i])
                    c[i + m] ^= gf.mul(coeff, b[i]);
            }
            l = step + 1 - l;
            b = temp;
            bb = d;
            m = 1;
        } else {
            u16 coeff = gf.div(d, bb);
            if (c.size() < b.size() + m)
                c.resize(b.size() + m, 0);
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (b[i])
                    c[i + m] ^= gf.mul(coeff, b[i]);
            }
            ++m;
        }
    }

    if (l > t_)
        return {false, 0}; // more errors than the code can locate

    // Chien search restricted to the shortened positions. The error
    // with polynomial exponent e corresponds to stored index n-1-e
    // and is a root of C at alpha^{-e}.
    std::vector<int> error_positions;
    for (int e = 0; e < n; ++e) {
        u16 x = gf.alphaPow(-e);
        // Evaluate C at x by Horner.
        u16 val = 0;
        for (int i = static_cast<int>(c.size()) - 1; i >= 0; --i) {
            val = gf.mul(val, x);
            val ^= c[i];
        }
        if (val == 0)
            error_positions.push_back(n - 1 - e);
    }

    if (static_cast<int>(error_positions.size()) != l)
        return {false, 0}; // locator has roots outside the block

    for (int pos : error_positions)
        codeword[pos] ^= 1;
    return {true, l};
}

const BchCode &
cachedBchCode(int t, int data_bits)
{
    // Lock-free fast path for the archive's standard geometry
    // (512-bit cells): scrub and store loops hit this per cell, so
    // repeat lookups must not contend on the cache mutex.
    static std::atomic<const BchCode *> fast[kMaxT + 1] = {};
    const bool fast_key = data_bits == 512 && t >= 1 && t <= kMaxT;
    if (fast_key) {
        const BchCode *code = fast[t].load(std::memory_order_acquire);
        if (code)
            return *code;
    }

    static std::mutex mutex;
    static std::map<std::pair<int, int>, std::unique_ptr<BchCode>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(t, data_bits);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache
                 .emplace(key,
                          std::make_unique<BchCode>(t, data_bits))
                 .first;
    if (fast_key)
        fast[t].store(it->second.get(), std::memory_order_release);
    return *it->second;
}

Bytes
packBits(const BitVec &bits)
{
    Bytes out((bits.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i])
            out[i / 8] |= static_cast<u8>(0x80u >> (i % 8));
    }
    return out;
}

BitVec
unpackBits(const Bytes &bytes, std::size_t bit_count)
{
    BitVec out(bit_count, 0);
    for (std::size_t i = 0; i < bit_count; ++i) {
        std::size_t byte = i / 8;
        if (byte < bytes.size())
            out[i] = (bytes[byte] >> (7 - i % 8)) & 1;
    }
    return out;
}

} // namespace videoapp
