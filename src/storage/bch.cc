#include "storage/bch.h"

#include <cassert>
#include <set>

namespace videoapp {

namespace {

/**
 * Multiply two polynomials with GF(2^10) coefficients (used only to
 * build minimal polynomials, whose products have 0/1 coefficients).
 */
std::vector<u16>
polyMulField(const std::vector<u16> &a, const std::vector<u16> &b,
             const Gf1024 &gf)
{
    std::vector<u16> out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i])
            continue;
        for (std::size_t j = 0; j < b.size(); ++j) {
            if (b[j])
                out[i + j] ^= gf.mul(a[i], b[j]);
        }
    }
    return out;
}

/** Minimal polynomial over GF(2) of alpha^s (product over the coset). */
std::vector<u8>
minimalPoly(int s, const Gf1024 &gf)
{
    // Cyclotomic coset of s under doubling mod 1023.
    std::set<int> coset;
    int e = s % Gf1024::kOrder;
    while (!coset.count(e)) {
        coset.insert(e);
        e = (2 * e) % Gf1024::kOrder;
    }

    std::vector<u16> poly{1};
    for (int c : coset) {
        // Multiply by (x + alpha^c).
        std::vector<u16> factor{gf.alphaPow(c), 1};
        poly = polyMulField(poly, factor, gf);
    }

    std::vector<u8> out(poly.size());
    for (std::size_t i = 0; i < poly.size(); ++i) {
        assert(poly[i] <= 1 && "minimal polynomial must be binary");
        out[i] = static_cast<u8>(poly[i]);
    }
    return out;
}

/** Multiply two GF(2) polynomials. */
std::vector<u8>
polyMulBinary(const std::vector<u8> &a, const std::vector<u8> &b)
{
    std::vector<u8> out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i])
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= (a[i] & b[j]);
    }
    return out;
}

} // namespace

BchCode::BchCode(int t, int data_bits)
    : t_(t), k_(data_bits)
{
    assert(t >= 1);
    const Gf1024 &gf = Gf1024::instance();

    // g(x) = lcm of minimal polynomials of alpha^1 .. alpha^{2t}.
    // Track which exponents are already covered by an included coset.
    std::set<int> covered;
    gen_ = {1};
    for (int s = 1; s <= 2 * t; ++s) {
        if (covered.count(s % Gf1024::kOrder))
            continue;
        int e = s % Gf1024::kOrder;
        while (!covered.count(e)) {
            covered.insert(e);
            e = (2 * e) % Gf1024::kOrder;
        }
        gen_ = polyMulBinary(gen_, minimalPoly(s, gf));
    }
    parity_ = static_cast<int>(gen_.size()) - 1;

    assert(k_ + parity_ <= Gf1024::kOrder &&
           "shortened length exceeds the natural code length");
}

BitVec
BchCode::encode(const BitVec &data) const
{
    assert(static_cast<int>(data.size()) == k_);

    // Systematic encoding: remainder of data(x) * x^parity divided by
    // g(x), computed with the standard LFSR formulation. data[0] is
    // the highest-degree information coefficient.
    BitVec lfsr(parity_, 0);
    for (int i = 0; i < k_; ++i) {
        u8 feedback = data[i] ^ lfsr[parity_ - 1];
        for (int j = parity_ - 1; j > 0; --j)
            lfsr[j] = (lfsr[j - 1] ^ (feedback & gen_[j])) & 1;
        lfsr[0] = feedback & gen_[0];
    }

    BitVec codeword(k_ + parity_);
    for (int i = 0; i < k_; ++i)
        codeword[i] = data[i];
    // lfsr[parity-1] is the highest-degree parity coefficient; store
    // parity MSB-first to match the data convention.
    for (int i = 0; i < parity_; ++i)
        codeword[k_ + i] = lfsr[parity_ - 1 - i];
    return codeword;
}

BchCode::DecodeResult
BchCode::decode(BitVec &codeword) const
{
    const Gf1024 &gf = Gf1024::instance();
    const int n = k_ + parity_;
    assert(static_cast<int>(codeword.size()) == n);

    // Syndromes S_i = r(alpha^i). Stored bit j is the coefficient of
    // x^(n-1-j).
    std::vector<u16> synd(2 * t_, 0);
    bool any = false;
    for (int j = 0; j < n; ++j) {
        if (!codeword[j])
            continue;
        int exp = n - 1 - j;
        for (int i = 1; i <= 2 * t_; ++i)
            synd[i - 1] ^= gf.alphaPow(i * exp);
        any = true;
    }
    (void)any;

    bool all_zero = true;
    for (u16 s : synd) {
        if (s) {
            all_zero = false;
            break;
        }
    }
    if (all_zero)
        return {true, 0};

    // Berlekamp-Massey: find the error locator polynomial C(x).
    std::vector<u16> c{1}, b{1};
    int l = 0, m = 1;
    u16 bb = 1;
    for (int step = 0; step < 2 * t_; ++step) {
        // Discrepancy.
        u16 d = synd[step];
        for (int i = 1; i <= l && i < static_cast<int>(c.size()); ++i) {
            if (c[i] && synd[step - i])
                d ^= gf.mul(c[i], synd[step - i]);
        }
        if (d == 0) {
            ++m;
        } else if (2 * l <= step) {
            std::vector<u16> temp = c;
            u16 coeff = gf.div(d, bb);
            if (c.size() < b.size() + m)
                c.resize(b.size() + m, 0);
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (b[i])
                    c[i + m] ^= gf.mul(coeff, b[i]);
            }
            l = step + 1 - l;
            b = temp;
            bb = d;
            m = 1;
        } else {
            u16 coeff = gf.div(d, bb);
            if (c.size() < b.size() + m)
                c.resize(b.size() + m, 0);
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (b[i])
                    c[i + m] ^= gf.mul(coeff, b[i]);
            }
            ++m;
        }
    }

    if (l > t_)
        return {false, 0}; // more errors than the code can locate

    // Chien search restricted to the shortened positions. The error
    // with polynomial exponent e corresponds to stored index n-1-e
    // and is a root of C at alpha^{-e}.
    std::vector<int> error_positions;
    for (int e = 0; e < n; ++e) {
        u16 x = gf.alphaPow(-e);
        // Evaluate C at x by Horner.
        u16 val = 0;
        for (int i = static_cast<int>(c.size()) - 1; i >= 0; --i) {
            val = gf.mul(val, x);
            val ^= c[i];
        }
        if (val == 0)
            error_positions.push_back(n - 1 - e);
    }

    if (static_cast<int>(error_positions.size()) != l)
        return {false, 0}; // locator has roots outside the block

    for (int pos : error_positions)
        codeword[pos] ^= 1;
    return {true, l};
}

Bytes
packBits(const BitVec &bits)
{
    Bytes out((bits.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i])
            out[i / 8] |= static_cast<u8>(0x80u >> (i % 8));
    }
    return out;
}

BitVec
unpackBits(const Bytes &bytes, std::size_t bit_count)
{
    BitVec out(bit_count, 0);
    for (std::size_t i = 0; i < bit_count; ++i) {
        std::size_t byte = i / 8;
        if (byte < bytes.size())
            out[i] = (bytes[byte] >> (7 - i % 8)) & 1;
    }
    return out;
}

} // namespace videoapp
