#include "storage/approx_store.h"

#include <algorithm>
#include <cstring>

#include "common/telemetry.h"
#include "storage/error_injector.h"

namespace videoapp {

Bytes
ModeledChannel::roundTrip(const Bytes &data, const EccScheme &scheme,
                          Rng &rng) const
{
    Bytes out = data;
    std::vector<BitPos> damaged =
        injectErrorsProtected(out, scheme, rawBer_, rng);
    VA_TELEM_COUNT("storage.model.streams_stored", 1);
    VA_TELEM_COUNT("storage.model.bits_damaged",
                   static_cast<u64>(damaged.size()));
    return out;
}

RealBchChannel::RealBchChannel(double raw_ber)
    : rawBer_(raw_ber)
{
}

RealBchChannel::RealBchChannel(const McPcm &pcm, double seconds)
    : rawBer_(pcm.rawBitErrorRate(seconds)), pcm_(&pcm),
      ageSeconds_(seconds)
{
}

Bytes
RealBchChannel::roundTrip(const Bytes &data, const EccScheme &scheme,
                          Rng &rng) const
{
    if (scheme.isNone()) {
        Bytes out = data;
        if (pcm_)
            out = pcm_->storeAndRead(out, ageSeconds_, rng);
        else
            injectErrors(out, rawBer_, rng);
        return out;
    }

    const BchCode &code = cachedBchCode(scheme.t);
    const std::size_t data_bytes =
        static_cast<std::size_t>(code.dataBits()) / 8;
    Bytes out(data.size(), 0);

    // Blocks are 512 data bits = 64 bytes, so each maps to a whole
    // byte range of the payload; encode/decode straight from packed
    // bytes (the word-parallel hot path), no per-bit gathering.
    Bytes block(data_bytes, 0);
    Bytes stored(code.codewordBytes(), 0);
    for (std::size_t start = 0; start < data.size();
         start += data_bytes) {
        std::size_t nb =
            std::min<std::size_t>(data_bytes, data.size() - start);
        std::copy(data.begin() + static_cast<std::ptrdiff_t>(start),
                  data.begin() +
                      static_cast<std::ptrdiff_t>(start + nb),
                  block.begin());
        std::fill(block.begin() + static_cast<std::ptrdiff_t>(nb),
                  block.end(), 0); // zero pad the last block

        code.encodeBytes(block.data(), stored.data());
        if (pcm_)
            stored = pcm_->storeAndRead(stored, ageSeconds_, rng);
        else
            injectErrors(stored, rawBer_, rng);

        auto result = code.decodeBytes(stored.data());
        (void)result; // failed blocks keep their raw errors
        VA_TELEM_COUNT("storage.channel.blocks_stored", 1);
        // The channel still holds the pre-noise block, so a decode
        // that "succeeded" onto the wrong data is detectable here
        // (the decoder itself cannot know).
        VA_TELEM_COUNT("storage.channel.blocks_miscorrected",
                       (result.ok &&
                        std::memcmp(stored.data(), block.data(),
                                    data_bytes) != 0)
                           ? u64{1}
                           : u64{0});

        std::copy(stored.begin(),
                  stored.begin() + static_cast<std::ptrdiff_t>(nb),
                  out.begin() + static_cast<std::ptrdiff_t>(start));
    }
    return out;
}

CellImage
exportCellImage(const Bytes &data, const EccScheme &scheme)
{
    CellImage image;
    image.payloadBytes = data.size();
    image.schemeT = scheme.t;
    if (scheme.isNone()) {
        image.cells = data;
        return image;
    }

    const BchCode &code = cachedBchCode(scheme.t);
    const std::size_t data_bytes =
        static_cast<std::size_t>(code.dataBits()) / 8;
    const std::size_t cw_bytes = code.codewordBytes();
    const std::size_t blocks =
        data.empty() ? 0 : (data.size() + data_bytes - 1) / data_bytes;
    image.cells.resize(blocks * cw_bytes);

    Bytes block(data_bytes, 0);
    for (std::size_t b = 0; b < blocks; ++b) {
        std::size_t start = b * data_bytes;
        std::size_t nb =
            std::min<std::size_t>(data_bytes, data.size() - start);
        std::copy(data.begin() + static_cast<std::ptrdiff_t>(start),
                  data.begin() +
                      static_cast<std::ptrdiff_t>(start + nb),
                  block.begin());
        std::fill(block.begin() + static_cast<std::ptrdiff_t>(nb),
                  block.end(), 0); // zero pad the last block
        code.encodeBytes(block.data(),
                         image.cells.data() + b * cw_bytes);
        VA_TELEM_COUNT("storage.cells.blocks_encoded", 1);
    }
    return image;
}

namespace {

/** Shared walk of readCellImage / scrubCellImage. */
Bytes
decodeCellImage(CellImage &image, CellReadStats *stats, bool repair)
{
    if (image.schemeT == 0) {
        if (stats)
            stats->blocksRead += image.cells.empty() ? 0 : 1;
        Bytes out = image.cells;
        out.resize(static_cast<std::size_t>(image.payloadBytes), 0);
        return out;
    }

    const BchCode &code = cachedBchCode(image.schemeT);
    const std::size_t data_bytes =
        static_cast<std::size_t>(code.dataBits()) / 8;
    const std::size_t cw_bytes = code.codewordBytes();
    const std::size_t payload =
        static_cast<std::size_t>(image.payloadBytes);
    Bytes out(payload, 0);

    Bytes codeword(cw_bytes, 0);
    std::size_t start = 0;
    for (std::size_t b = 0; b * cw_bytes + cw_bytes <=
                            image.cells.size() && start < payload;
         ++b, start += data_bytes) {
        const u8 *cells = image.cells.data() + b * cw_bytes;
        std::copy(cells, cells + cw_bytes, codeword.begin());
        auto result = code.decodeBytes(codeword.data());
        if (stats) {
            ++stats->blocksRead;
            if (result.ok && result.corrected > 0) {
                ++stats->blocksCorrected;
                stats->bitsCorrected +=
                    static_cast<u64>(result.corrected);
            }
            if (!result.ok)
                ++stats->blocksUncorrectable;
        }
        if (repair && result.ok && result.corrected > 0)
            std::copy(codeword.begin(), codeword.end(),
                      image.cells.begin() +
                          static_cast<std::ptrdiff_t>(b * cw_bytes));
        std::size_t nb = std::min(data_bytes, payload - start);
        std::copy(codeword.begin(),
                  codeword.begin() + static_cast<std::ptrdiff_t>(nb),
                  out.begin() + static_cast<std::ptrdiff_t>(start));
    }
    return out;
}

} // namespace

Bytes
readCellImage(const CellImage &image, CellReadStats *stats)
{
    // decodeCellImage only mutates the image when repairing.
    return decodeCellImage(const_cast<CellImage &>(image), stats,
                           false);
}

Bytes
scrubCellImage(CellImage &image, CellReadStats *stats)
{
    return decodeCellImage(image, stats, true);
}

void
degradeCellImage(CellImage &image, double raw_ber, Rng &rng)
{
    if (image.schemeT == 0) {
        injectErrors(image.cells, raw_ber, rng);
        return;
    }
    // Block by block, in block order: the same injectErrors sequence
    // RealBchChannel(raw_ber) consumes, so archive reads reproduce
    // the in-memory round trip bit for bit at equal seeds.
    const BchCode &code = cachedBchCode(image.schemeT);
    const std::size_t cw_bits = code.codewordBytes() * 8;
    for (std::size_t start = 0; start + cw_bits / 8 <=
                                image.cells.size();
         start += cw_bits / 8)
        injectErrorsInRange(image.cells, start * 8,
                            start * 8 + cw_bits, raw_ber, rng);
}

void
degradeCellImage(CellImage &image, const McPcm &pcm, double seconds,
                 Rng &rng)
{
    if (image.schemeT == 0) {
        image.cells = pcm.storeAndRead(image.cells, seconds, rng);
        return;
    }
    const BchCode &code = cachedBchCode(image.schemeT);
    const std::size_t cw_bytes = code.codewordBytes();
    Bytes block(cw_bytes, 0);
    for (std::size_t start = 0;
         start + cw_bytes <= image.cells.size(); start += cw_bytes) {
        std::copy(image.cells.begin() +
                      static_cast<std::ptrdiff_t>(start),
                  image.cells.begin() +
                      static_cast<std::ptrdiff_t>(start + cw_bytes),
                  block.begin());
        Bytes aged = pcm.storeAndRead(block, seconds, rng);
        std::copy(aged.begin(), aged.end(),
                  image.cells.begin() +
                      static_cast<std::ptrdiff_t>(start));
    }
}

u64
parityBitsFor(u64 payload_bits, const EccScheme &scheme)
{
    if (scheme.isNone() || payload_bits == 0)
        return 0;
    u64 blocks = (payload_bits + kEccBlockBits - 1) / kEccBlockBits;
    return blocks * static_cast<u64>(scheme.parityBits());
}

void
StorageAccountant::addStream(u64 payload_bits, const EccScheme &scheme)
{
    payloadBits_ += payload_bits;
    parityBits_ += parityBitsFor(payload_bits, scheme);
}

void
StorageAccountant::addPreciseBits(u64 bits)
{
    addStream(bits, kEccPrecise);
}

u64
StorageAccountant::cells() const
{
    return (storedBits() + bitsPerCell_ - 1) / bitsPerCell_;
}

double
StorageAccountant::cellsPerPixel(u64 pixels) const
{
    if (pixels == 0)
        return 0.0;
    return static_cast<double>(cells()) / pixels;
}

double
StorageAccountant::eccOverheadFraction() const
{
    if (storedBits() == 0)
        return 0.0;
    return static_cast<double>(parityBits_) / storedBits();
}

} // namespace videoapp
