#include "storage/approx_store.h"

#include <algorithm>

#include "common/bitstream.h"

#include "storage/error_injector.h"

namespace videoapp {

Bytes
ModeledChannel::roundTrip(const Bytes &data, const EccScheme &scheme,
                          Rng &rng) const
{
    Bytes out = data;
    injectErrorsProtected(out, scheme, rawBer_, rng);
    return out;
}

RealBchChannel::RealBchChannel(double raw_ber)
    : rawBer_(raw_ber)
{
}

RealBchChannel::RealBchChannel(const McPcm &pcm, double seconds)
    : rawBer_(pcm.rawBitErrorRate(seconds)), pcm_(&pcm),
      ageSeconds_(seconds)
{
}

const BchCode &
RealBchChannel::codeFor(int t) const
{
    auto it = codes_.find(t);
    if (it == codes_.end())
        it = codes_.emplace(t, std::make_unique<BchCode>(t)).first;
    return *it->second;
}

Bytes
RealBchChannel::roundTrip(const Bytes &data, const EccScheme &scheme,
                          Rng &rng) const
{
    if (scheme.isNone()) {
        Bytes out = data;
        if (pcm_)
            out = pcm_->storeAndRead(out, ageSeconds_, rng);
        else
            injectErrors(out, rawBer_, rng);
        return out;
    }

    const BchCode &code = codeFor(scheme.t);
    const std::size_t payload_bits = data.size() * 8;
    Bytes out(data.size(), 0);

    BitVec block(code.dataBits(), 0);
    for (std::size_t start = 0; start < payload_bits;
         start += code.dataBits()) {
        std::size_t n =
            std::min<std::size_t>(code.dataBits(), payload_bits - start);
        // Gather payload bits (zero padded in the last block).
        std::fill(block.begin(), block.end(), 0);
        for (std::size_t i = 0; i < n; ++i)
            block[i] = getBit(data, start + i);

        BitVec codeword = code.encode(block);
        Bytes stored = packBits(codeword);
        if (pcm_)
            stored = pcm_->storeAndRead(stored, ageSeconds_, rng);
        else
            injectErrors(stored, rawBer_, rng);
        BitVec received = unpackBits(stored, codeword.size());

        auto result = code.decode(received);
        (void)result; // failed blocks keep their raw errors

        for (std::size_t i = 0; i < n; ++i) {
            if (received[i]) {
                std::size_t p = start + i;
                out[p / 8] |= static_cast<u8>(0x80u >> (p % 8));
            }
        }
    }
    return out;
}

u64
parityBitsFor(u64 payload_bits, const EccScheme &scheme)
{
    if (scheme.isNone() || payload_bits == 0)
        return 0;
    u64 blocks = (payload_bits + kEccBlockBits - 1) / kEccBlockBits;
    return blocks * static_cast<u64>(scheme.parityBits());
}

void
StorageAccountant::addStream(u64 payload_bits, const EccScheme &scheme)
{
    payloadBits_ += payload_bits;
    parityBits_ += parityBitsFor(payload_bits, scheme);
}

void
StorageAccountant::addPreciseBits(u64 bits)
{
    addStream(bits, kEccPrecise);
}

u64
StorageAccountant::cells() const
{
    return (storedBits() + bitsPerCell_ - 1) / bitsPerCell_;
}

double
StorageAccountant::cellsPerPixel(u64 pixels) const
{
    if (pixels == 0)
        return 0.0;
    return static_cast<double>(cells()) / pixels;
}

double
StorageAccountant::eccOverheadFraction() const
{
    if (storedBits() == 0)
        return 0.0;
    return static_cast<double>(parityBits_) / storedBits();
}

} // namespace videoapp
