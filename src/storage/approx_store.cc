#include "storage/approx_store.h"

#include <algorithm>
#include <cstring>

#include "common/telemetry.h"
#include "storage/error_injector.h"

namespace videoapp {

Bytes
ModeledChannel::roundTrip(const Bytes &data, const EccScheme &scheme,
                          Rng &rng) const
{
    Bytes out = data;
    std::vector<BitPos> damaged =
        injectErrorsProtected(out, scheme, rawBer_, rng);
    VA_TELEM_COUNT("storage.model.streams_stored", 1);
    VA_TELEM_COUNT("storage.model.bits_damaged",
                   static_cast<u64>(damaged.size()));
    return out;
}

RealBchChannel::RealBchChannel(double raw_ber)
    : rawBer_(raw_ber)
{
}

RealBchChannel::RealBchChannel(const McPcm &pcm, double seconds)
    : rawBer_(pcm.rawBitErrorRate(seconds)), pcm_(&pcm),
      ageSeconds_(seconds)
{
}

Bytes
RealBchChannel::roundTrip(const Bytes &data, const EccScheme &scheme,
                          Rng &rng) const
{
    if (scheme.isNone()) {
        Bytes out = data;
        if (pcm_)
            out = pcm_->storeAndRead(out, ageSeconds_, rng);
        else
            injectErrors(out, rawBer_, rng);
        return out;
    }

    const BchCode &code = cachedBchCode(scheme.t);
    const std::size_t data_bytes =
        static_cast<std::size_t>(code.dataBits()) / 8;
    Bytes out(data.size(), 0);

    // Blocks are 512 data bits = 64 bytes, so each maps to a whole
    // byte range of the payload; encode/decode straight from packed
    // bytes (the word-parallel hot path), no per-bit gathering.
    Bytes block(data_bytes, 0);
    Bytes stored(code.codewordBytes(), 0);
    for (std::size_t start = 0; start < data.size();
         start += data_bytes) {
        std::size_t nb =
            std::min<std::size_t>(data_bytes, data.size() - start);
        std::copy(data.begin() + static_cast<std::ptrdiff_t>(start),
                  data.begin() +
                      static_cast<std::ptrdiff_t>(start + nb),
                  block.begin());
        std::fill(block.begin() + static_cast<std::ptrdiff_t>(nb),
                  block.end(), 0); // zero pad the last block

        code.encodeBytes(block.data(), stored.data());
        if (pcm_)
            stored = pcm_->storeAndRead(stored, ageSeconds_, rng);
        else
            injectErrors(stored, rawBer_, rng);

        auto result = code.decodeBytes(stored.data());
        (void)result; // failed blocks keep their raw errors
        VA_TELEM_COUNT("storage.channel.blocks_stored", 1);
        // The channel still holds the pre-noise block, so a decode
        // that "succeeded" onto the wrong data is detectable here
        // (the decoder itself cannot know).
        VA_TELEM_COUNT("storage.channel.blocks_miscorrected",
                       (result.ok &&
                        std::memcmp(stored.data(), block.data(),
                                    data_bytes) != 0)
                           ? u64{1}
                           : u64{0});

        std::copy(stored.begin(),
                  stored.begin() + static_cast<std::ptrdiff_t>(nb),
                  out.begin() + static_cast<std::ptrdiff_t>(start));
    }
    return out;
}

u64
parityBitsFor(u64 payload_bits, const EccScheme &scheme)
{
    if (scheme.isNone() || payload_bits == 0)
        return 0;
    u64 blocks = (payload_bits + kEccBlockBits - 1) / kEccBlockBits;
    return blocks * static_cast<u64>(scheme.parityBits());
}

void
StorageAccountant::addStream(u64 payload_bits, const EccScheme &scheme)
{
    payloadBits_ += payload_bits;
    parityBits_ += parityBitsFor(payload_bits, scheme);
}

void
StorageAccountant::addPreciseBits(u64 bits)
{
    addStream(bits, kEccPrecise);
}

u64
StorageAccountant::cells() const
{
    return (storedBits() + bitsPerCell_ - 1) / bitsPerCell_;
}

double
StorageAccountant::cellsPerPixel(u64 pixels) const
{
    if (pixels == 0)
        return 0.0;
    return static_cast<double>(cells()) / pixels;
}

double
StorageAccountant::eccOverheadFraction() const
{
    if (storedBits() == 0)
        return 0.0;
    return static_cast<double>(parityBits_) / storedBits();
}

} // namespace videoapp
