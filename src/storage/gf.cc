#include "storage/gf.h"

namespace videoapp {

Gf1024::Gf1024()
{
    u32 x = 1;
    for (int i = 0; i < kOrder; ++i) {
        alog_[i] = static_cast<u16>(x);
        log_[x] = i;
        x <<= 1;
        if (x & kFieldSize)
            x ^= kPrimitivePoly;
    }
    log_[0] = -1; // undefined; never read for valid inputs
}

const Gf1024 &
Gf1024::instance()
{
    static const Gf1024 gf;
    return gf;
}

} // namespace videoapp
