/**
 * @file
 * Arithmetic over GF(2^10), the field underlying the BCH codes the
 * paper's storage substrate uses (10 parity bits per corrected error
 * over 512-bit blocks implies codes shortened from n = 1023).
 */

#ifndef VIDEOAPP_STORAGE_GF_H_
#define VIDEOAPP_STORAGE_GF_H_

#include <array>

#include "common/types.h"

namespace videoapp {

/**
 * GF(2^10) with primitive polynomial x^10 + x^3 + 1. Elements are
 * 10-bit integers; multiplication uses log/antilog tables built once.
 */
class Gf1024
{
  public:
    static constexpr int kM = 10;
    static constexpr int kFieldSize = 1 << kM;   // 1024
    static constexpr int kOrder = kFieldSize - 1; // 1023
    static constexpr u32 kPrimitivePoly = 0x409;  // x^10 + x^3 + 1

    Gf1024();

    /** alpha^i for i taken mod the group order. */
    u16
    alphaPow(int i) const
    {
        int e = i % kOrder;
        if (e < 0)
            e += kOrder;
        return alog_[e];
    }

    /** Discrete log of nonzero @p a. */
    int
    log(u16 a) const
    {
        return log_[a];
    }

    u16
    mul(u16 a, u16 b) const
    {
        if (a == 0 || b == 0)
            return 0;
        return alog_[(log_[a] + log_[b]) % kOrder];
    }

    u16
    inv(u16 a) const
    {
        // a must be nonzero.
        return alog_[(kOrder - log_[a]) % kOrder];
    }

    u16
    div(u16 a, u16 b) const
    {
        if (a == 0)
            return 0;
        return alog_[(log_[a] - log_[b] + kOrder) % kOrder];
    }

    /** The process-wide instance (tables are immutable). */
    static const Gf1024 &instance();

  private:
    std::array<u16, kOrder> alog_;
    std::array<int, kFieldSize> log_;
};

} // namespace videoapp

#endif // VIDEOAPP_STORAGE_GF_H_
