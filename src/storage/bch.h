/**
 * @file
 * Binary BCH encoder/decoder over GF(2^10), shortened to 512-bit data
 * blocks — the error correction family of the paper's Figure 8
 * ("BCH-X" corrects X errors in a 512-bit PCM block plus 10*X bits of
 * self-correcting code metadata).
 *
 * Encoding is systematic (data bits followed by parity bits), so the
 * storage layer can locate payload bits without decoding. Decoding is
 * the classic pipeline: syndromes, Berlekamp-Massey, Chien search.
 *
 * The hot path operates on packed 64-bit words: encoding runs a
 * byte-at-a-time table-driven LFSR over the packed parity register,
 * and decoding scans the received word for set bits with ctz instead
 * of walking one byte per bit. The one-byte-per-bit BitVec API is
 * kept at the boundary (and as bit-serial reference implementations
 * that the packed path is validated against in tests).
 */

#ifndef VIDEOAPP_STORAGE_BCH_H_
#define VIDEOAPP_STORAGE_BCH_H_

#include <vector>

#include "common/types.h"
#include "storage/gf.h"

namespace videoapp {

/** Bit vector with one byte per bit; small and simple for 672 bits. */
using BitVec = std::vector<u8>;

/**
 * A t-error-correcting BCH code over GF(2^10) shortened to @p data_bits
 * information bits.
 */
class BchCode
{
  public:
    /**
     * @param t Correction capability (1..58 keeps deg g <= 580).
     * @param data_bits Shortened data length (default 512, the PCM
     *        block size used throughout the paper).
     */
    explicit BchCode(int t, int data_bits = 512);

    int t() const { return t_; }
    int dataBits() const { return k_; }
    int parityBits() const { return parity_; }
    int codewordBits() const { return k_ + parity_; }

    /** Parity storage overhead relative to the data bits. */
    double
    overhead() const
    {
        return static_cast<double>(parity_) / k_;
    }

    /**
     * Systematic encode. @p data must have dataBits() entries of 0/1.
     * @return codeword of codewordBits() bits (data then parity).
     */
    BitVec encode(const BitVec &data) const;

    /** Decode result. */
    struct DecodeResult
    {
        /** False when the decoder detected an uncorrectable block. */
        bool ok = false;
        /** Number of bit errors corrected (valid when ok). */
        int corrected = 0;
    };

    /**
     * Correct @p codeword in place. Any pattern of <= t errors is
     * corrected; heavier patterns are either detected (ok = false,
     * codeword unchanged) or miscorrected, exactly like real
     * hardware.
     */
    DecodeResult decode(BitVec &codeword) const;

    /** Bytes of a packed codeword (MSB-first, zero pad bits). */
    std::size_t
    codewordBytes() const
    {
        return (static_cast<std::size_t>(k_ + parity_) + 7) / 8;
    }

    /**
     * Word-parallel systematic encode straight from packed bytes
     * (the storage hot path; requires dataBits() % 8 == 0).
     * @p data holds dataBits() bits MSB-first; @p codeword receives
     * codewordBytes() bytes laid out exactly like
     * packBits(encode(...)).
     */
    void encodeBytes(const u8 *data, u8 *codeword) const;

    /** Word-parallel decode of a packed codeword, in place. */
    DecodeResult decodeBytes(u8 *codeword) const;

    /**
     * Bit-serial encode (the original one-byte-per-bit formulation).
     * Kept as the validation oracle for the packed path and as the
     * perf baseline; produces identical codewords.
     */
    BitVec encodeReference(const BitVec &data) const;

    /** Bit-serial decode; identical behaviour to decode(). */
    DecodeResult decodeReference(BitVec &codeword) const;

    /** The generator polynomial coefficients (GF(2), low degree first). */
    const std::vector<u8> &generator() const { return gen_; }

  private:
    /**
     * Parity of @p bit_count data bits from packed @p data into the
     * stream-ordered register @p reg (see bch.cc for the layout).
     */
    void parityOf(const u8 *data, std::size_t bit_count,
                  u64 *reg) const;

    int t_;
    int k_;
    int parity_;
    std::vector<u8> gen_; // generator polynomial over GF(2)

    // Packed-LFSR state derived from gen_ at construction.
    int parityWords_ = 0;    // 64-bit words in the parity register
    std::vector<u64> genMask_;   // g packed in stream order
    std::vector<u64> byteTable_; // 256 * parityWords_ remainders

    // Per-byte syndrome contributions: syndTable_[(p * 256 + v) * 2t
    // + i] is the contribution of byte value v at codeword byte p to
    // syndrome S_{i+1}; pad bits beyond codewordBits() contribute
    // zero, matching the bit-serial skip.
    std::vector<u16> syndTable_;
};

/**
 * Process-wide shared code cache: generator polynomial and LFSR
 * tables are built once per (t, data_bits) and reused by every
 * channel and bench. Thread safe.
 */
const BchCode &cachedBchCode(int t, int data_bits = 512);

/** Pack a BitVec (0/1 per byte) into bytes, MSB first. */
Bytes packBits(const BitVec &bits);

/** Unpack @p bit_count bits from @p bytes into a BitVec. */
BitVec unpackBits(const Bytes &bytes, std::size_t bit_count);

} // namespace videoapp

#endif // VIDEOAPP_STORAGE_BCH_H_
