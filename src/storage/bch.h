/**
 * @file
 * Binary BCH encoder/decoder over GF(2^10), shortened to 512-bit data
 * blocks — the error correction family of the paper's Figure 8
 * ("BCH-X" corrects X errors in a 512-bit PCM block plus 10*X bits of
 * self-correcting code metadata).
 *
 * Encoding is systematic (data bits followed by parity bits), so the
 * storage layer can locate payload bits without decoding. Decoding is
 * the classic pipeline: syndromes, Berlekamp-Massey, Chien search.
 */

#ifndef VIDEOAPP_STORAGE_BCH_H_
#define VIDEOAPP_STORAGE_BCH_H_

#include <vector>

#include "common/types.h"
#include "storage/gf.h"

namespace videoapp {

/** Bit vector with one byte per bit; small and simple for 672 bits. */
using BitVec = std::vector<u8>;

/**
 * A t-error-correcting BCH code over GF(2^10) shortened to @p data_bits
 * information bits.
 */
class BchCode
{
  public:
    /**
     * @param t Correction capability (1..58 keeps deg g <= 580).
     * @param data_bits Shortened data length (default 512, the PCM
     *        block size used throughout the paper).
     */
    explicit BchCode(int t, int data_bits = 512);

    int t() const { return t_; }
    int dataBits() const { return k_; }
    int parityBits() const { return parity_; }
    int codewordBits() const { return k_ + parity_; }

    /** Parity storage overhead relative to the data bits. */
    double
    overhead() const
    {
        return static_cast<double>(parity_) / k_;
    }

    /**
     * Systematic encode. @p data must have dataBits() entries of 0/1.
     * @return codeword of codewordBits() bits (data then parity).
     */
    BitVec encode(const BitVec &data) const;

    /** Decode result. */
    struct DecodeResult
    {
        /** False when the decoder detected an uncorrectable block. */
        bool ok = false;
        /** Number of bit errors corrected (valid when ok). */
        int corrected = 0;
    };

    /**
     * Correct @p codeword in place. Any pattern of <= t errors is
     * corrected; heavier patterns are either detected (ok = false,
     * codeword unchanged) or miscorrected, exactly like real
     * hardware.
     */
    DecodeResult decode(BitVec &codeword) const;

    /** The generator polynomial coefficients (GF(2), low degree first). */
    const std::vector<u8> &generator() const { return gen_; }

  private:
    int t_;
    int k_;
    int parity_;
    std::vector<u8> gen_; // generator polynomial over GF(2)
};

/** Pack a BitVec (0/1 per byte) into bytes, MSB first. */
Bytes packBits(const BitVec &bits);

/** Unpack @p bit_count bits from @p bytes into a BitVec. */
BitVec unpackBits(const Bytes &bytes, std::size_t bit_count);

} // namespace videoapp

#endif // VIDEOAPP_STORAGE_BCH_H_
