/**
 * @file
 * The approximate store: streams of bits written to MLC PCM under a
 * chosen error-correction scheme each, plus the density accounting
 * used by Figure 11.
 *
 * Two channel implementations share one interface:
 *  - RealBchChannel: systematic BCH encode, per-cell PCM noise (or
 *    uniform raw bit errors), full syndrome decode. Ground truth.
 *  - ModeledChannel: the closed-form equivalent (block error counts
 *    binomially distributed; correctable blocks come back clean).
 * The model is validated against the real channel in tests and used
 * for the large Monte Carlo sweeps.
 */

#ifndef VIDEOAPP_STORAGE_APPROX_STORE_H_
#define VIDEOAPP_STORAGE_APPROX_STORE_H_

#include "common/rng.h"
#include "storage/bch.h"
#include "storage/ecc_model.h"
#include "storage/pcm.h"

namespace videoapp {

/**
 * Abstract storage channel: what a stream looks like after living on
 * the substrate for one scrub interval under a given ECC scheme.
 */
class StorageChannel
{
  public:
    virtual ~StorageChannel() = default;

    /** Store @p data, age, read, correct; return the payload. */
    virtual Bytes roundTrip(const Bytes &data, const EccScheme &scheme,
                            Rng &rng) const = 0;
};

/** Closed-form channel at a fixed raw bit error rate. */
class ModeledChannel : public StorageChannel
{
  public:
    explicit ModeledChannel(double raw_ber = kPcmRawBer)
        : rawBer_(raw_ber)
    {}

    Bytes roundTrip(const Bytes &data, const EccScheme &scheme,
                    Rng &rng) const override;

    double rawBer() const { return rawBer_; }

  private:
    double rawBer_;
};

/**
 * Bit-true channel: real BCH codec over blocks, errors injected
 * either uniformly at @p raw_ber or through a cell-level PCM model.
 */
class RealBchChannel : public StorageChannel
{
  public:
    /** Uniform raw bit errors at @p raw_ber. */
    explicit RealBchChannel(double raw_ber = kPcmRawBer);

    /** Cell-accurate noise via @p pcm aged @p seconds. */
    RealBchChannel(const McPcm &pcm, double seconds);

    Bytes roundTrip(const Bytes &data, const EccScheme &scheme,
                    Rng &rng) const override;

  private:
    // Codes come from the process-wide cachedBchCode() cache, so
    // channels stay stateless and trials can share one channel
    // across threads (a lazily filled per-channel map raced once
    // Monte Carlo trials ran concurrently).
    double rawBer_;
    const McPcm *pcm_ = nullptr;
    double ageSeconds_ = 0.0;
};

/**
 * Accumulates stored streams and reports the density metrics of
 * Figure 11: storage cells per encoded pixel.
 */
class StorageAccountant
{
  public:
    explicit StorageAccountant(int bits_per_cell = 3)
        : bitsPerCell_(bits_per_cell)
    {}

    /** Record a stream of @p payload_bits under @p scheme. */
    void addStream(u64 payload_bits, const EccScheme &scheme);

    /** Record precisely stored bits (headers; BCH-16 class). */
    void addPreciseBits(u64 bits);

    u64 payloadBits() const { return payloadBits_; }
    u64 parityBits() const { return parityBits_; }

    /** Total stored bits including parity. */
    u64 storedBits() const { return payloadBits_ + parityBits_; }

    /** MLC cells used. */
    u64 cells() const;

    /** Cells per pixel for a video of @p pixels pixels. */
    double cellsPerPixel(u64 pixels) const;

    /** Fraction of stored bits that are ECC parity. */
    double eccOverheadFraction() const;

  private:
    int bitsPerCell_;
    u64 payloadBits_ = 0;
    u64 parityBits_ = 0;
};

/** Parity bits required to protect @p payload_bits under @p scheme. */
u64 parityBitsFor(u64 payload_bits, const EccScheme &scheme);

// --- cell images -------------------------------------------------------
//
// A CellImage is the raw bit content of the MLC PCM cells backing one
// stream: the concatenated packed BCH codewords (payload verbatim for
// the unprotected scheme). Exporting an image at put time and
// persisting it makes an on-disk archive *be* the modeled device —
// reads, aging and scrubbing all operate on exactly the bits a real
// substrate would hold, and a degraded image round-trips through the
// same word-packed BCH decoder as the in-memory channels.

/** One stream's worth of modeled PCM cells. */
struct CellImage
{
    /** Packed codeword blocks (or the raw payload when schemeT = 0). */
    Bytes cells;
    /** Size in bytes of the payload the image encodes. */
    u64 payloadBytes = 0;
    /** BCH correction capability (0 = unprotected). */
    int schemeT = 0;
};

/** Decode statistics of one pass over a cell image. */
struct CellReadStats
{
    u64 blocksRead = 0;
    /** Blocks the decoder repaired (>= 1 bit corrected). */
    u64 blocksCorrected = 0;
    u64 bitsCorrected = 0;
    u64 blocksUncorrectable = 0;

    void
    merge(const CellReadStats &o)
    {
        blocksRead += o.blocksRead;
        blocksCorrected += o.blocksCorrected;
        bitsCorrected += o.bitsCorrected;
        blocksUncorrectable += o.blocksUncorrectable;
    }
};

/** BCH-encode @p data into the cells it would occupy under
 * @p scheme (the write half of RealBchChannel::roundTrip). */
CellImage exportCellImage(const Bytes &data, const EccScheme &scheme);

/**
 * Decode the payload back out of a (possibly degraded) image without
 * modifying it. Uncorrectable blocks keep their raw errors, exactly
 * like the in-memory channel.
 */
Bytes readCellImage(const CellImage &image,
                    CellReadStats *stats = nullptr);

/**
 * Scrub pass: decode every block and rewrite corrected codewords in
 * place, restoring the image to its error-free content wherever the
 * code could repair it. Returns the decoded payload.
 */
Bytes scrubCellImage(CellImage &image, CellReadStats *stats = nullptr);

/**
 * Age the image with uniform raw bit errors at @p raw_ber. Errors
 * are injected block by block in block order, consuming @p rng
 * exactly like RealBchChannel(raw_ber), so export + degrade + read
 * is bit-identical to the in-memory round trip at the same seed.
 */
void degradeCellImage(CellImage &image, double raw_ber, Rng &rng);

/** Age the image cell-accurately through @p pcm for @p seconds. */
void degradeCellImage(CellImage &image, const McPcm &pcm,
                      double seconds, Rng &rng);

} // namespace videoapp

#endif // VIDEOAPP_STORAGE_APPROX_STORE_H_
