#include "storage/ecc_model.h"

#include <cmath>

#include "common/stats.h"

namespace videoapp {

double
EccScheme::blockFailureRate(double raw_ber) const
{
    if (isNone())
        return 1.0; // no block abstraction; callers use the raw rate
    return binomialTailAbove(blockBits(), raw_ber, t);
}

double
EccScheme::effectiveBitErrorRate(double raw_ber) const
{
    if (isNone())
        return raw_ber;

    // When correction fails the block keeps its raw errors; condition
    // on failure (> t errors). The dominant failure term is exactly
    // t+1 errors, of which a fraction land in the payload. We
    // approximate E[errors | failure] with t+1, uniformly placed.
    double p_fail = blockFailureRate(raw_ber);
    double errors_in_data =
        (t + 1.0) * kEccBlockBits / blockBits();
    return p_fail * errors_in_data / kEccBlockBits;
}

std::string
EccScheme::name() const
{
    if (isNone())
        return "None";
    return "BCH-" + std::to_string(t);
}

std::vector<EccScheme>
figure8Schemes()
{
    return {EccScheme{6}, EccScheme{7}, EccScheme{8}, EccScheme{9},
            EccScheme{10}, EccScheme{11}, EccScheme{16}};
}

EccScheme
weakestSchemeFor(double target_ber, double raw_ber)
{
    if (raw_ber <= target_ber)
        return kEccNone;
    EccScheme best = kEccPrecise;
    // Search the full ladder, weakest first.
    for (int t = 1; t <= 16; ++t) {
        EccScheme s{t};
        if (s.effectiveBitErrorRate(raw_ber) <= target_ber)
            return s;
    }
    return best;
}

} // namespace videoapp
