#include "storage/error_injector.h"

#include <algorithm>
#include <unordered_set>

#include "common/bitstream.h"

namespace videoapp {

namespace {

/** Draw @p count distinct positions in [begin, end). */
std::vector<BitPos>
distinctPositions(BitPos begin, BitPos end, std::size_t count,
                  Rng &rng)
{
    std::size_t range = end - begin;
    count = std::min(count, range);
    std::vector<BitPos> out;
    out.reserve(count);
    if (count * 3 < range) {
        // Sparse: rejection sampling on a hash set.
        std::unordered_set<BitPos> seen;
        while (seen.size() < count) {
            BitPos p = begin + rng.nextBelow(range);
            if (seen.insert(p).second)
                out.push_back(p);
        }
    } else {
        // Dense: partial Fisher-Yates over the whole range.
        std::vector<BitPos> all(range);
        for (std::size_t i = 0; i < range; ++i)
            all[i] = begin + i;
        for (std::size_t i = 0; i < count; ++i) {
            std::size_t j = i + rng.nextBelow(range - i);
            std::swap(all[i], all[j]);
            out.push_back(all[i]);
        }
    }
    return out;
}

} // namespace

std::vector<BitPos>
injectErrors(Bytes &data, double rate, Rng &rng)
{
    return injectErrorsInRange(data, 0, data.size() * 8, rate, rng);
}

std::vector<BitPos>
injectErrorCount(Bytes &data, std::size_t count, Rng &rng)
{
    auto positions = distinctPositions(0, data.size() * 8, count, rng);
    for (BitPos p : positions)
        flipBit(data, p);
    return positions;
}

std::vector<BitPos>
injectErrorsInRange(Bytes &data, BitPos begin, BitPos end, double rate,
                    Rng &rng)
{
    end = std::min(end, data.size() * 8);
    if (begin >= end || rate <= 0.0)
        return {};
    u64 n = end - begin;
    u64 count = rng.nextBinomial(n, rate);
    auto positions =
        distinctPositions(begin, end, static_cast<std::size_t>(count),
                          rng);
    for (BitPos p : positions)
        flipBit(data, p);
    return positions;
}

std::vector<BitPos>
injectErrorsProtected(Bytes &data, const EccScheme &scheme,
                      double raw_ber, Rng &rng)
{
    if (scheme.isNone())
        return injectErrors(data, raw_ber, rng);

    std::vector<BitPos> flipped;
    const std::size_t payload_bits = data.size() * 8;
    const std::size_t block_payload =
        static_cast<std::size_t>(kEccBlockBits);
    const int block_total = scheme.blockBits();

    for (std::size_t block_start = 0; block_start < payload_bits;
         block_start += block_payload) {
        std::size_t this_payload =
            std::min(block_payload, payload_bits - block_start);
        // The last block is still a full codeword (padded), so the
        // error count is always drawn over blockBits() bits.
        u64 errors = rng.nextBinomial(block_total, raw_ber);
        if (errors <= static_cast<u64>(scheme.t))
            continue; // corrected

        // Uncorrectable: raw errors stay. Place them uniformly over
        // the codeword; only payload hits damage data.
        auto in_block = distinctPositions(
            0, static_cast<std::size_t>(block_total),
            static_cast<std::size_t>(errors), rng);
        for (BitPos p : in_block) {
            if (p < this_payload) {
                BitPos abs = block_start + p;
                flipBit(data, abs);
                flipped.push_back(abs);
            }
        }
    }
    return flipped;
}

} // namespace videoapp
