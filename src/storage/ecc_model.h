/**
 * @file
 * Analytic model of the BCH protection schemes (paper Figure 8 and
 * Table 1): storage overhead and uncorrectable error rates for
 * 512-bit blocks on a substrate with a given raw bit error rate.
 */

#ifndef VIDEOAPP_STORAGE_ECC_MODEL_H_
#define VIDEOAPP_STORAGE_ECC_MODEL_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace videoapp {

/** Raw bit error rate of the paper's 8-level PCM substrate. */
inline constexpr double kPcmRawBer = 1e-3;

/** Data bits per protected storage block. */
inline constexpr int kEccBlockBits = 512;

/** Parity bits per corrected error (GF(2^10) BCH). */
inline constexpr int kEccBitsPerError = 10;

/**
 * One error correction level: a BCH-t code, or no protection (t = 0).
 */
struct EccScheme
{
    int t = 0;

    bool isNone() const { return t == 0; }

    /** Parity bits added per 512-bit block. */
    int parityBits() const { return kEccBitsPerError * t; }

    /** Total stored bits per block. */
    int blockBits() const { return kEccBlockBits + parityBits(); }

    /** Fractional storage overhead (Figure 8, left axis). */
    double
    overhead() const
    {
        return static_cast<double>(parityBits()) / kEccBlockBits;
    }

    /**
     * Probability that a block has more errors than the code
     * corrects (Figure 8, right axis), for raw BER @p raw_ber.
     */
    double blockFailureRate(double raw_ber = kPcmRawBer) const;

    /**
     * Effective post-correction bit error rate seen by the payload:
     * expected erroneous data bits per data bit. For t = 0 this is
     * the raw rate itself.
     */
    double effectiveBitErrorRate(double raw_ber = kPcmRawBer) const;

    std::string name() const;

    bool operator==(const EccScheme &o) const { return t == o.t; }
};

/** No protection: data exposed to the raw substrate error rate. */
inline constexpr EccScheme kEccNone{0};
/** The precise-storage scheme (10^-16 class), used for headers. */
inline constexpr EccScheme kEccPrecise{16};

/** The scheme ladder evaluated in Figure 8. */
std::vector<EccScheme> figure8Schemes();

/**
 * Weakest scheme from the Figure 8 ladder (including "none") whose
 * effective bit error rate is at or below @p target_ber.
 */
EccScheme weakestSchemeFor(double target_ber,
                           double raw_ber = kPcmRawBer);

} // namespace videoapp

#endif // VIDEOAPP_STORAGE_ECC_MODEL_H_
