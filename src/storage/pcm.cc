#include "storage/pcm.h"

#include <cmath>

namespace videoapp {

namespace {

/** Standard normal upper-tail probability Q(z). */
double
qFunction(double z)
{
    return 0.5 * std::erfc(z / std::sqrt(2.0));
}

/** Inverse of qFunction by bisection (z in [0, 40]). */
double
qInverse(double p)
{
    double lo = 0.0, hi = 40.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (qFunction(mid) > p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

u32
grayEncode(u32 v)
{
    return v ^ (v >> 1);
}

u32
grayDecode(u32 g)
{
    u32 v = 0;
    while (g) {
        v ^= g;
        g >>= 1;
    }
    return v;
}

McPcm::McPcm(const PcmConfig &config)
    : config_(config)
{
    // Calibration. A symbol error occurs when the analog level moves
    // past the midpoint between adjacent levels (distance 0.5 in
    // level units after biasing). Interior levels err on two sides,
    // edge levels on one:
    //   symbolErrorRate = 2 (M-1)/M * Q(0.5 / sigma_total)
    // With Gray coding an adjacent-level error flips one of the
    // bitsPerCell bits:
    //   rawBer = symbolErrorRate / bitsPerCell
    // At the scrub interval, drift noise is calibrated equal to
    // write noise (the equalisation of Guo et al.), so
    // sigma_total = sqrt(2) * sigma_write there.
    int m = levels();
    double edge_factor = 2.0 * (m - 1) / m;
    double q_target =
        config_.targetRawBer * config_.bitsPerCell / edge_factor;
    double z = qInverse(q_target);
    double sigma_total_at_scrub = 0.5 / z;
    writeSigma_ = sigma_total_at_scrub / std::sqrt(2.0);

    // Drift sigma grows with log10 of elapsed time (normalised to
    // 1 second); nu is chosen so that at the scrub interval the
    // drift sigma equals the write sigma.
    driftNu_ = writeSigma_ / std::log10(1.0 + config_.scrubSeconds);
}

double
McPcm::totalSigma(double seconds) const
{
    double drift_sigma =
        driftNu_ * std::log10(1.0 + (seconds < 0 ? 0 : seconds));
    return std::sqrt(writeSigma_ * writeSigma_ +
                     drift_sigma * drift_sigma);
}

double
McPcm::rawBitErrorRate(double seconds) const
{
    int m = levels();
    double edge_factor = 2.0 * (m - 1) / m;
    double ser = edge_factor * qFunction(0.5 / totalSigma(seconds));
    return ser / config_.bitsPerCell;
}

double
McPcm::rawBitErrorRateForLevels(int bits_per_cell,
                                double seconds) const
{
    int m = 1 << bits_per_cell;
    // Same physical noise, level spacing rescaled to fit m levels
    // into the window the calibrated cell divides into levels()-1
    // gaps.
    double sigma = totalSigma(seconds) *
                   static_cast<double>(m - 1) / (levels() - 1);
    double edge_factor = 2.0 * (m - 1) / m;
    double ser = edge_factor * qFunction(0.5 / sigma);
    return ser / bits_per_cell;
}

Bytes
McPcm::storeAndRead(const Bytes &data, double seconds, Rng &rng) const
{
    const int bpc = config_.bitsPerCell;
    const int m = levels();
    const double sigma = totalSigma(seconds);

    Bytes out(data.size(), 0);
    const std::size_t total_bits = data.size() * 8;

    std::size_t bit = 0;
    while (bit < total_bits) {
        // Gather up to bitsPerCell bits into one symbol.
        u32 symbol = 0;
        int got = 0;
        for (; got < bpc && bit + got < total_bits; ++got) {
            std::size_t p = bit + got;
            u32 b = (data[p / 8] >> (7 - p % 8)) & 1u;
            symbol = (symbol << 1) | b;
        }
        if (got < bpc)
            symbol <<= (bpc - got); // zero-pad the last cell

        // Write the level whose Gray code is the symbol, perturb,
        // read back. Adjacent levels then differ in exactly one
        // payload bit.
        int level = static_cast<int>(grayDecode(symbol));
        double analog = level + rng.nextGaussian() * sigma;
        int read_level = static_cast<int>(std::lround(analog));
        if (read_level < 0)
            read_level = 0;
        if (read_level >= m)
            read_level = m - 1;
        u32 read_symbol = grayEncode(static_cast<u32>(read_level));

        for (int i = 0; i < got; ++i) {
            std::size_t p = bit + i;
            u32 b = (read_symbol >> (bpc - 1 - i)) & 1u;
            if (b)
                out[p / 8] |= static_cast<u8>(0x80u >> (p % 8));
        }
        bit += got;
    }
    return out;
}

} // namespace videoapp
