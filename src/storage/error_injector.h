/**
 * @file
 * Monte Carlo bit-error injection (Section 6.4 of the paper).
 *
 * Models the uncorrected errors a protected or unprotected stream
 * experiences on the PCM substrate. Error counts follow the binomial
 * distribution over the stream's bits; positions are uniform.
 */

#ifndef VIDEOAPP_STORAGE_ERROR_INJECTOR_H_
#define VIDEOAPP_STORAGE_ERROR_INJECTOR_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "storage/ecc_model.h"

namespace videoapp {

/**
 * Flip each bit of @p data independently with probability @p rate
 * (binomial count + uniform distinct positions).
 * @return the flipped bit positions.
 */
std::vector<BitPos> injectErrors(Bytes &data, double rate, Rng &rng);

/** Flip exactly @p count random distinct bits. */
std::vector<BitPos> injectErrorCount(Bytes &data, std::size_t count,
                                     Rng &rng);

/**
 * Fast modeled ECC channel: expose @p data to raw bit errors at
 * @p raw_ber as if stored in 512-bit BCH-protected blocks with
 * @p scheme. Blocks whose error count is within the correction
 * capability come back clean; heavier blocks keep the raw errors
 * that landed in their payload portion (parity-bit errors don't
 * damage payload). Statistically equivalent to the real
 * encode/corrupt/decode path (validated in tests) but orders of
 * magnitude faster, enabling the paper's 30-run Monte Carlo sweeps.
 * @return flipped payload bit positions.
 */
std::vector<BitPos> injectErrorsProtected(Bytes &data,
                                          const EccScheme &scheme,
                                          double raw_ber, Rng &rng);

/**
 * Restrict injection to the bit range [@p begin, @p end) of @p data,
 * flipping each bit with probability @p rate. Used by the Figure 9
 * bin experiments, which corrupt one importance bin at a time.
 */
std::vector<BitPos> injectErrorsInRange(Bytes &data, BitPos begin,
                                        BitPos end, double rate,
                                        Rng &rng);

} // namespace videoapp

#endif // VIDEOAPP_STORAGE_ERROR_INJECTOR_H_
