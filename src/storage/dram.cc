#include "storage/dram.h"

#include <algorithm>
#include <cmath>

#include "storage/error_injector.h"

namespace videoapp {

namespace {

/** Standard normal CDF. */
double
phi(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

/** Inverse standard normal CDF by bisection. */
double
phiInverse(double p)
{
    double lo = -40.0, hi = 40.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (phi(mid) < p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

ApproxDram::ApproxDram()
{
    // Calibrate the log-normal retention population through two
    // anchor points: P(fail | 64 ms) = 1e-15 and
    // P(fail | 100 s) = 1e-4.
    const double t1 = kDramStandardRefresh, p1 = 1e-15;
    const double t2 = 100.0, p2 = 1e-4;
    double z1 = phiInverse(p1);
    double z2 = phiInverse(p2);
    sigma_ = (std::log(t2) - std::log(t1)) / (z2 - z1);
    mu_ = std::log(t1) - z1 * sigma_;
}

double
ApproxDram::bitErrorRate(double refresh_seconds) const
{
    if (refresh_seconds <= 0)
        return 0.0;
    double z = (std::log(refresh_seconds) - mu_) / sigma_;
    return std::clamp(phi(z), 0.0, 1.0);
}

Bytes
ApproxDram::storeAndRead(const Bytes &data, double refresh_seconds,
                         Rng &rng) const
{
    Bytes out = data;
    injectErrors(out, bitErrorRate(refresh_seconds), rng);
    return out;
}

} // namespace videoapp
