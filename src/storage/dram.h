/**
 * @file
 * Approximate DRAM substrate (related work: Flikker, Sparkk —
 * Section 9 of the paper).
 *
 * DRAM approximation trades refresh power for retention errors:
 * lengthening the refresh interval lets weak cells leak before they
 * are recharged. Retention times across cells follow a heavy-tailed
 * (log-normal) distribution, so the bit error rate rises smoothly
 * with the refresh interval. This model lets the VideoApp pipeline
 * run on a refresh-approximated DRAM instead of MLC PCM: the same
 * importance-partitioned streams, with refresh interval (power) as
 * the density... er, energy knob.
 */

#ifndef VIDEOAPP_STORAGE_DRAM_H_
#define VIDEOAPP_STORAGE_DRAM_H_

#include "common/rng.h"
#include "common/types.h"

namespace videoapp {

/** Standard DRAM refresh interval (JEDEC 64 ms). */
inline constexpr double kDramStandardRefresh = 0.064;

/**
 * Refresh-approximated DRAM: per-bit retention failures with a
 * log-normal retention-time population, calibrated so the standard
 * 64 ms refresh is effectively error-free (~1e-15) and a 100 s
 * refresh reaches ~1e-4 — the regime the Flikker-family papers
 * explore.
 */
class ApproxDram
{
  public:
    ApproxDram();

    /** Per-bit error probability for @p refresh_seconds. */
    double bitErrorRate(double refresh_seconds) const;

    /**
     * Relative refresh power vs the standard interval (refresh
     * energy scales inversely with the interval).
     */
    double
    refreshPowerFraction(double refresh_seconds) const
    {
        return kDramStandardRefresh / refresh_seconds;
    }

    /** Store @p data and read it back after one refresh interval. */
    Bytes storeAndRead(const Bytes &data, double refresh_seconds,
                       Rng &rng) const;

  private:
    double mu_;    // log-normal location of retention times
    double sigma_; // log-normal scale
};

} // namespace videoapp

#endif // VIDEOAPP_STORAGE_DRAM_H_
