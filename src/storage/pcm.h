/**
 * @file
 * Multi-level cell phase-change memory model.
 *
 * Follows the substrate of Guo et al. [5] as the paper adopts it
 * (Section 2.2/6.2): 8 resistance levels per cell (3 bits), level
 * ranges biased so that write/read circuit noise and time-dependent
 * resistance drift contribute equal error probability at the
 * scrubbing interval (3 months by default), yielding a raw bit error
 * rate of 1e-3. Levels are Gray-coded so the dominant adjacent-level
 * confusion flips a single bit.
 */

#ifndef VIDEOAPP_STORAGE_PCM_H_
#define VIDEOAPP_STORAGE_PCM_H_

#include "common/rng.h"
#include "common/types.h"

namespace videoapp {

/** Seconds in the default scrubbing interval (3 months). */
inline constexpr double kDefaultScrubSeconds = 90.0 * 24 * 3600;

/** Configuration of the MLC PCM substrate. */
struct PcmConfig
{
    int bitsPerCell = 3;                      // 8 levels
    double scrubSeconds = kDefaultScrubSeconds;
    /** Target raw BER at the scrub interval after level biasing. */
    double targetRawBer = 1e-3;
};

/**
 * Behavioural cell model. Calibration places half the error budget in
 * write/read (time-independent Gaussian level noise) and half in
 * drift (noise growing with log time), reproducing the equalisation
 * of Guo et al.
 */
class McPcm
{
  public:
    explicit McPcm(const PcmConfig &config = {});

    int levels() const { return 1 << config_.bitsPerCell; }
    int bitsPerCell() const { return config_.bitsPerCell; }

    /** Analytic raw bit error rate after @p seconds since writing. */
    double rawBitErrorRate(double seconds) const;

    /** Raw BER at the configured scrub interval (the design point). */
    double
    rawBitErrorRate() const
    {
        return rawBitErrorRate(config_.scrubSeconds);
    }

    /**
     * Store @p data into cells and read it back after @p seconds,
     * with per-cell write noise and drift sampled from @p rng. The
     * returned vector has the same size; errors appear as flipped
     * bits (Gray-adjacent level confusions).
     */
    Bytes storeAndRead(const Bytes &data, double seconds,
                       Rng &rng) const;

    /** Cells needed to hold @p bits of data. */
    u64
    cellsFor(u64 bits) const
    {
        return (bits + config_.bitsPerCell - 1) / config_.bitsPerCell;
    }

    /** The calibrated per-component noise sigma (level units). */
    double writeSigma() const { return writeSigma_; }
    double driftNu() const { return driftNu_; }

    /**
     * Raw BER this cell's physical noise would give with a
     * different level count in the same resistance window
     * (Section 2.2's density/reliability design trade-off): with
     * 2^b levels the level spacing shrinks by (2^b - 1)/(levels-1),
     * magnifying the effective noise accordingly.
     */
    double rawBitErrorRateForLevels(int bits_per_cell,
                                    double seconds) const;

  private:
    double totalSigma(double seconds) const;

    PcmConfig config_;
    double writeSigma_;
    double driftNu_;
};

/**
 * A single-level-cell reference substrate: 1 bit per cell, error
 * rates negligible (1e-16 class) — the paper's SLC density baseline.
 */
struct SlcPcm
{
    static constexpr int kBitsPerCell = 1;
    static constexpr double kRawBer = 1e-16;

    static u64 cellsFor(u64 bits) { return bits; }
};

/** Gray-encode a symbol (used by cell <-> bit mapping; exposed for
 * tests). */
u32 grayEncode(u32 v);

/** Inverse of grayEncode. */
u32 grayDecode(u32 g);

} // namespace videoapp

#endif // VIDEOAPP_STORAGE_PCM_H_
