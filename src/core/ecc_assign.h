/**
 * @file
 * Mapping macroblock importance to error-correction schemes
 * (Section 4.4 / 7.2, Table 1), and the budgeted assignment
 * optimiser that derives such a table from measured quality-loss
 * curves.
 */

#ifndef VIDEOAPP_CORE_ECC_ASSIGN_H_
#define VIDEOAPP_CORE_ECC_ASSIGN_H_

#include <string>
#include <vector>

#include "storage/ecc_model.h"

namespace videoapp {

/**
 * A table of importance-class thresholds to ECC schemes. Class i
 * contains MBs with importance <= 2^i (Figure 10's class axis).
 */
class EccAssignment
{
  public:
    struct Entry
    {
        int maxClass;     // applies to classes <= maxClass
        EccScheme scheme;
    };

    EccAssignment() = default;

    /** @p entries must be ascending in maxClass. @p fallback covers
     * classes above the last entry. */
    EccAssignment(std::vector<Entry> entries, EccScheme fallback);

    /** The paper's Table 1. */
    static EccAssignment paperTable1();

    /** Uniform protection (the paper's baseline design). */
    static EccAssignment uniform(EccScheme scheme);

    /** Scheme for an importance value. */
    EccScheme schemeFor(double importance) const;

    /** Scheme for an importance class index. */
    EccScheme schemeForClass(int cls) const;

    const std::vector<Entry> &entries() const { return entries_; }
    EccScheme fallback() const { return fallback_; }

    std::string toString() const;

  private:
    std::vector<Entry> entries_;
    EccScheme fallback_ = kEccPrecise;
};

/** One measured point of a cumulative quality-loss curve. */
struct ClassCurvePoint
{
    double errorRate;
    double lossDb; // positive dB of quality lost
};

/** Measured behaviour of one importance class (Figure 10). */
struct ClassCurve
{
    int cls = 0;
    /** Cumulative loss when all MBs of class <= cls see errorRate. */
    std::vector<ClassCurvePoint> points;
    /** Cumulative fraction of stream bits in classes <= cls. */
    double cumulativeStorage = 0.0;
};

/**
 * The Section 7.2 optimiser: distribute @p budget_db proportionally
 * to each class's storage share, then give every class the weakest
 * scheme whose post-correction error rate keeps that class's
 * incremental quality loss within its share.
 */
EccAssignment optimizeAssignment(const std::vector<ClassCurve> &curves,
                                 double budget_db,
                                 double raw_ber = kPcmRawBer);

/** Interpolate a cumulative-loss curve at @p error_rate
 * (log-linear; 0 below the measured range). Exposed for tests. */
double interpolateLoss(const std::vector<ClassCurvePoint> &points,
                       double error_rate);

/**
 * The Section 7.2.1 alternative strategy: instead of spending a
 * fixed quality budget, approximate a class only when the storage
 * it saves beats what deterministic compression would buy for the
 * same quality loss. @p compression_db_per_fraction is the
 * compression trade-off slope — the paper measures 0.4-0.6 dB lost
 * per 10-15% storage saved by encoding coarser, i.e. about 4 dB per
 * unit storage fraction.
 */
EccAssignment optimizeAssignmentConservative(
    const std::vector<ClassCurve> &curves,
    double compression_db_per_fraction = 4.0,
    double raw_ber = kPcmRawBer);

} // namespace videoapp

#endif // VIDEOAPP_CORE_ECC_ASSIGN_H_
