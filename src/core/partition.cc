#include "core/partition.h"

#include <algorithm>
#include <cassert>

#include "common/bitstream.h"

namespace videoapp {

void
assignPivots(EncodedVideo &video, const EncodeSideInfo &side,
             const ImportanceMap &importance,
             const EccAssignment &assignment)
{
    assert(video.frameHeaders.size() == side.frames.size());
    const std::size_t mb_per_frame =
        static_cast<std::size_t>(video.mbPerFrame());

    for (std::size_t f = 0; f < video.frameHeaders.size(); ++f) {
        FrameHeader &header = video.frameHeaders[f];
        header.pivots.clear();
        const FrameRecord &frame = side.frames[f];

        int current_t = -1;
        for (const SliceRecord &slice : header.slices) {
            u32 end = std::min<u32>(slice.firstMb + slice.mbCount,
                                    static_cast<u32>(mb_per_frame));
            for (u32 m = slice.firstMb; m < end; ++m) {
                EccScheme scheme = assignment.schemeFor(
                    importance.values[f][m]);
                if (scheme.t != current_t) {
                    header.pivots.push_back(
                        {frame.mbs[m].bitOffset,
                         static_cast<u8>(scheme.t)});
                    current_t = scheme.t;
                }
            }
        }
        // Zero-length frames (or all-skip) still need one pivot so
        // the extraction walk is total.
        if (header.pivots.empty())
            header.pivots.push_back({0, 16});
    }
}

namespace {

/** Walk a frame's pivot segments as [begin, end) bit ranges. */
template <typename Fn>
void
forEachSegment(const FrameHeader &header, u64 payload_bits, Fn &&fn)
{
    for (std::size_t p = 0; p < header.pivots.size(); ++p) {
        u64 begin = std::min(header.pivots[p].bitOffset, payload_bits);
        u64 end = p + 1 < header.pivots.size()
                      ? std::min(header.pivots[p + 1].bitOffset,
                                 payload_bits)
                      : payload_bits;
        if (end > begin)
            fn(static_cast<int>(header.pivots[p].schemeT), begin,
               end);
    }
}

} // namespace

StreamSet
extractStreams(const EncodedVideo &video)
{
    std::map<int, BitWriter> writers;
    for (std::size_t f = 0; f < video.frameHeaders.size(); ++f) {
        const Bytes &payload = video.payloads[f];
        u64 payload_bits = payload.size() * 8;
        forEachSegment(video.frameHeaders[f], payload_bits,
                       [&](int t, u64 begin, u64 end) {
                           BitWriter &w = writers[t];
                           for (u64 bit = begin; bit < end; ++bit)
                               w.writeBit(getBit(payload, bit));
                       });
    }

    StreamSet out;
    for (auto &[t, writer] : writers) {
        out.bitLength[t] = writer.bitCount();
        out.data[t] = writer.take();
    }
    return out;
}

EncodedVideo
mergeStreams(const EncodedVideo &layout, const StreamSet &streams)
{
    EncodedVideo out = layout;
    std::map<int, BitReader> readers;
    for (const auto &[t, bytes] : streams.data)
        readers.emplace(t, BitReader(bytes));

    for (std::size_t f = 0; f < out.frameHeaders.size(); ++f) {
        Bytes &payload = out.payloads[f];
        u64 payload_bits = payload.size() * 8;
        // Clear and refill from the streams.
        std::fill(payload.begin(), payload.end(), 0);
        forEachSegment(
            out.frameHeaders[f], payload_bits,
            [&](int t, u64 begin, u64 end) {
                auto it = readers.find(t);
                for (u64 bit = begin; bit < end; ++bit) {
                    u32 v = it == readers.end() ? 0
                                                : it->second.readBit();
                    if (v)
                        payload[bit / 8] |= static_cast<u8>(
                            0x80u >> (bit % 8));
                }
            });
    }
    return out;
}

} // namespace videoapp
