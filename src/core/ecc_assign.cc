#include "core/ecc_assign.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/importance.h"

namespace videoapp {

EccAssignment::EccAssignment(std::vector<Entry> entries,
                             EccScheme fallback)
    : entries_(std::move(entries)), fallback_(fallback)
{
    for (std::size_t i = 1; i < entries_.size(); ++i)
        assert(entries_[i - 1].maxClass < entries_[i].maxClass);
}

EccAssignment
EccAssignment::paperTable1()
{
    return EccAssignment(
        {
            {2, kEccNone},        // importance <= 4
            {10, EccScheme{6}},   // ... <= 2^10
            {13, EccScheme{7}},
            {16, EccScheme{8}},
            {20, EccScheme{9}},
            {26, EccScheme{10}},
        },
        EccScheme{10});
}

EccAssignment
EccAssignment::uniform(EccScheme scheme)
{
    return EccAssignment({}, scheme);
}

EccScheme
EccAssignment::schemeFor(double importance) const
{
    return schemeForClass(ImportanceMap::classOf(importance));
}

EccScheme
EccAssignment::schemeForClass(int cls) const
{
    for (const Entry &e : entries_)
        if (cls <= e.maxClass)
            return e.scheme;
    return fallback_;
}

std::string
EccAssignment::toString() const
{
    std::string out;
    int prev = 0;
    for (const Entry &e : entries_) {
        out += std::to_string(prev) + "-" +
               std::to_string(e.maxClass) + ": " + e.scheme.name() +
               "; ";
        prev = e.maxClass + 1;
    }
    out += std::to_string(prev) + "+: " + fallback_.name();
    return out;
}

double
interpolateLoss(const std::vector<ClassCurvePoint> &points,
                double error_rate)
{
    if (points.empty() || error_rate <= 0)
        return 0.0;
    // Points are ascending in errorRate.
    if (error_rate <= points.front().errorRate) {
        // Below the measured range the loss scales ~linearly with
        // the error rate (few, independent flips).
        return points.front().lossDb * error_rate /
               points.front().errorRate;
    }
    if (error_rate >= points.back().errorRate)
        return points.back().lossDb;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (error_rate <= points[i].errorRate) {
            double x0 = std::log(points[i - 1].errorRate);
            double x1 = std::log(points[i].errorRate);
            double t = (std::log(error_rate) - x0) / (x1 - x0);
            return points[i - 1].lossDb +
                   t * (points[i].lossDb - points[i - 1].lossDb);
        }
    }
    return points.back().lossDb;
}

EccAssignment
optimizeAssignment(const std::vector<ClassCurve> &curves,
                   double budget_db, double raw_ber)
{
    std::vector<EccAssignment::Entry> entries;
    double prev_storage = 0.0;
    const std::vector<ClassCurvePoint> *prev_points = nullptr;
    int min_t = 0; // classes are nested: strength must not decrease

    for (const ClassCurve &curve : curves) {
        double share = std::max(
            curve.cumulativeStorage - prev_storage, 0.0);
        double limit = budget_db * share;

        // Weakest scheme whose incremental loss fits the limit.
        EccScheme chosen = kEccPrecise;
        auto incremental_loss = [&](double rate) {
            double cum = interpolateLoss(curve.points, rate);
            double prev =
                prev_points ? interpolateLoss(*prev_points, rate)
                            : 0.0;
            return std::max(cum - prev, 0.0);
        };
        // Ladder: none, then BCH-1..16.
        if (incremental_loss(raw_ber) <= limit) {
            chosen = kEccNone;
        } else {
            for (int t = 1; t <= 16; ++t) {
                EccScheme s{t};
                if (incremental_loss(
                        s.effectiveBitErrorRate(raw_ber)) <= limit) {
                    chosen = s;
                    break;
                }
            }
        }
        // Class i+1 strictly contains class i's failure modes; a
        // weaker scheme than the previous class's would contradict
        // the nesting (it can only appear through Monte Carlo noise
        // in the incremental subtraction). Enforce monotonicity.
        chosen.t = std::max(chosen.t, min_t);
        min_t = chosen.t;

        entries.push_back({curve.cls, chosen});
        prev_storage = curve.cumulativeStorage;
        prev_points = &curve.points;
    }

    // Fallback for classes above the measured range: strongest
    // approximate scheme seen, upgraded to the last chosen one.
    EccScheme fallback =
        entries.empty() ? kEccPrecise : entries.back().scheme;
    return EccAssignment(std::move(entries), fallback);
}

EccAssignment
optimizeAssignmentConservative(const std::vector<ClassCurve> &curves,
                               double compression_db_per_fraction,
                               double raw_ber)
{
    std::vector<EccAssignment::Entry> entries;
    double prev_storage = 0.0;
    const std::vector<ClassCurvePoint> *prev_points = nullptr;
    int min_t = 0;

    for (const ClassCurve &curve : curves) {
        double share = std::max(
            curve.cumulativeStorage - prev_storage, 0.0);

        auto incremental_loss = [&](double rate) {
            double cum = interpolateLoss(curve.points, rate);
            double prev =
                prev_points ? interpolateLoss(*prev_points, rate)
                            : 0.0;
            return std::max(cum - prev, 0.0);
        };

        // Weakest scheme whose quality cost beats compression for
        // the storage it saves relative to precise protection.
        const double precise_overhead = kEccPrecise.overhead();
        EccScheme chosen = kEccPrecise;
        for (int t = 0; t <= 16; ++t) {
            EccScheme s{t};
            double rate = s.isNone()
                              ? raw_ber
                              : s.effectiveBitErrorRate(raw_ber);
            double saved_fraction =
                share * (precise_overhead - s.overhead()) /
                (1.0 + precise_overhead);
            double cost = incremental_loss(rate);
            // Approximation must be a clear win: compression would
            // lose compression_db_per_fraction * saved_fraction dB
            // for the same storage reduction.
            if (cost <=
                compression_db_per_fraction * saved_fraction) {
                chosen = s;
                break;
            }
        }

        chosen.t = std::max(chosen.t, min_t);
        min_t = chosen.t;
        entries.push_back({curve.cls, chosen});
        prev_storage = curve.cumulativeStorage;
        prev_points = &curve.points;
    }

    EccScheme fallback =
        entries.empty() ? kEccPrecise : entries.back().scheme;
    return EccAssignment(std::move(entries), fallback);
}

} // namespace videoapp
