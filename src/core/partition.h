/**
 * @file
 * Pivot derivation and stream partitioning (Sections 4.4 and 5.3).
 *
 * assignPivots() turns per-MB importance plus an ECC assignment into
 * the per-frame pivot tables of Figure 6 (stored in the precise
 * frame headers). extractStreams() then splits the payload into one
 * stream per ECC level using ONLY the pivots — exactly the
 * information a real storage system would have — and mergeStreams()
 * reassembles payloads from (possibly corrupted) streams the same
 * way.
 */

#ifndef VIDEOAPP_CORE_PARTITION_H_
#define VIDEOAPP_CORE_PARTITION_H_

#include <map>

#include "codec/encoder.h"
#include "core/ecc_assign.h"
#include "graph/importance.h"

namespace videoapp {

/**
 * Fill every frame header's pivot table from the importance map and
 * the assignment. Within a slice the importance order is monotone,
 * so at most one pivot per scheme appears per slice; the code
 * nevertheless emits a pivot at every scheme change, so it stays
 * correct even for hand-crafted non-monotone inputs.
 */
void assignPivots(EncodedVideo &video, const EncodeSideInfo &side,
                  const ImportanceMap &importance,
                  const EccAssignment &assignment);

/** One reliability-partitioned stream per ECC level. */
struct StreamSet
{
    /** Keyed by scheme t (0 = unprotected). Byte-padded payloads. */
    std::map<int, Bytes> data;
    /** Exact bit length of each stream (without byte padding). */
    std::map<int, u64> bitLength;
};

/** Split payload bits into streams according to the pivot tables. */
StreamSet extractStreams(const EncodedVideo &video);

/**
 * Rebuild per-frame payloads from @p streams using @p layout's pivot
 * tables (the inverse of extractStreams, tolerant of corrupted
 * stream contents — only lengths matter for placement).
 */
EncodedVideo mergeStreams(const EncodedVideo &layout,
                          const StreamSet &streams);

} // namespace videoapp

#endif // VIDEOAPP_CORE_PARTITION_H_
