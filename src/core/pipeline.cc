#include "core/pipeline.h"

#include "common/parallel.h"
#include "common/telemetry.h"
#include "quality/psnr.h"
#include "simd/dispatch.h"

namespace videoapp {

u64
PreparedVideo::payloadBits() const
{
    u64 total = 0;
    for (const auto &[t, bits] : streams.bitLength)
        total += bits;
    return total;
}

u64
PreparedVideo::headerBits() const
{
    return enc.video.headerBits();
}

PreparedVideo
prepareVideo(const Video &source, const EncoderConfig &config,
             const EccAssignment &assignment)
{
    PreparedVideo prepared;
    simd::simdNoteStage("prepare");
    {
        VA_TELEM_SCOPE("pipeline.encode");
        prepared.enc = encodeVideo(source, config);
    }
    {
        VA_TELEM_SCOPE("pipeline.importance");
        prepared.importance =
            computeImportance(prepared.enc.side, prepared.enc.video);
    }
    prepared.assignment = assignment;
    {
        VA_TELEM_SCOPE("pipeline.assign_pivots");
        assignPivots(prepared.enc.video, prepared.enc.side,
                     prepared.importance, assignment);
    }
    {
        VA_TELEM_SCOPE("pipeline.extract_streams");
        prepared.streams = extractStreams(prepared.enc.video);
    }
    VA_TELEM_COUNT("pipeline.videos_prepared", 1);
    return prepared;
}

void
repartition(PreparedVideo &prepared, const EccAssignment &assignment)
{
    prepared.assignment = assignment;
    {
        VA_TELEM_SCOPE("pipeline.assign_pivots");
        assignPivots(prepared.enc.video, prepared.enc.side,
                     prepared.importance, assignment);
    }
    {
        VA_TELEM_SCOPE("pipeline.extract_streams");
        prepared.streams = extractStreams(prepared.enc.video);
    }
}

StreamPolicy
policyFor(const StreamSet &streams,
          const std::optional<EncryptionConfig> &encryption)
{
    std::vector<int> scheme_ts;
    scheme_ts.reserve(streams.data.size());
    for (const auto &[t, data] : streams.data)
        scheme_ts.push_back(t);
    StreamCipher cipher = StreamCipher::Plaintext;
    u32 key_id = 0;
    u8 min_t = 0;
    if (encryption) {
        cipher = streamCipherOf(encryption->mode);
        key_id = encryption->keyId;
        min_t = encryption->encryptMinT;
    }
    return buildStreamPolicy(scheme_ts, cipher, key_id, min_t);
}

StorageOutcome
storeAndRetrieve(const PreparedVideo &prepared,
                 const StorageChannel &channel, Rng &rng,
                 const std::optional<EncryptionConfig> &encryption)
{
    StorageOutcome outcome;
    simd::simdNoteStage("store_retrieve");

    const StreamPolicy policy =
        policyFor(prepared.streams, encryption);
    std::unique_ptr<StreamCryptor> cryptor;
    if (encryption) {
        cryptor = std::make_unique<StreamCryptor>(
            encryption->mode, encryption->key, encryption->masterIv);
    }

    // Store each reliability stream with its own scheme, in
    // parallel. Per-stream child generators are seeded from @p rng
    // in stream order before the loop and results merged in stream
    // order after it, so the outcome is identical at any thread
    // count (and to the sequential run with the same seed).
    struct StreamWork
    {
        int t = 0;
        const Bytes *data = nullptr;
        u64 seed = 0;
        Bytes read;
        u64 storedBits = 0;
    };
    std::vector<StreamWork> work;
    work.reserve(prepared.streams.data.size());
    for (const auto &[t, data] : prepared.streams.data) {
        StreamWork w;
        w.t = t;
        w.data = &data;
        w.seed = rng.next();
        work.push_back(std::move(w));
    }

    {
        VA_TELEM_SCOPE("pipeline.store_streams");
        parallelFor(work.size(), [&](std::size_t i) {
            StreamWork &w = work[i];
            EccScheme scheme{w.t};
            Rng stream_rng(w.seed);
            const bool encrypted =
                cryptor != nullptr && policy.encrypts(w.t);
            Bytes to_store = *w.data;
            if (encrypted)
                to_store = cryptor->encryptStream(
                    static_cast<u32>(w.t), to_store);

            Bytes read =
                channel.roundTrip(to_store, scheme, stream_rng);

            if (encrypted)
                read = cryptor->decryptStream(static_cast<u32>(w.t),
                                              read, w.data->size());
            // The selective-encryption saving is the plaintext
            // counter's share of the two (only meaningful when an
            // encryption config is present at all). Two call sites,
            // not a ternary name: VA_TELEM_COUNT caches the counter
            // in a per-callsite static.
            if (cryptor != nullptr && encrypted)
                VA_TELEM_COUNT("crypto.bytes_encrypted",
                               w.data->size());
            else if (cryptor != nullptr)
                VA_TELEM_COUNT("crypto.bytes_plaintext",
                               w.data->size());
            w.read = std::move(read);
            w.storedBits =
                to_store.size() * 8; // stored (padded) size
        });
    }
    VA_TELEM_COUNT("pipeline.streams_stored", work.size());

    StreamSet retrieved;
    StorageAccountant accountant(3);
    for (StreamWork &w : work) {
        retrieved.data[w.t] = std::move(w.read);
        retrieved.bitLength[w.t] =
            prepared.streams.bitLength.at(w.t);
        accountant.addStream(w.storedBits, EccScheme{w.t});
    }
    accountant.addPreciseBits(prepared.headerBits());

    outcome.decoded = decodeStreams(prepared.enc.video, retrieved);

    // Quality against the error-free reconstruction, averaged per
    // frame as the paper does.
    Video reference;
    reference.fps = outcome.decoded.fps;
    reference.frames = prepared.enc.reconFrames;
    {
        VA_TELEM_SCOPE("pipeline.quality_psnr");
        outcome.psnrVsReference =
            psnrVideo(reference, outcome.decoded);
    }

    u64 pixels = static_cast<u64>(prepared.enc.video.header.width) *
                 prepared.enc.video.header.height *
                 prepared.enc.video.header.frameCount;
    outcome.cellsPerPixel = accountant.cellsPerPixel(pixels);
    outcome.eccOverheadFraction = accountant.eccOverheadFraction();
    outcome.payloadBits = accountant.payloadBits();
    outcome.parityBits = accountant.parityBits();
    outcome.headerBits = prepared.headerBits();
    return outcome;
}

Video
decodeStreams(const EncodedVideo &layout, const StreamSet &streams,
              const DecodeOptions &options)
{
    EncodedVideo merged;
    simd::simdNoteStage("decode");
    {
        VA_TELEM_SCOPE("pipeline.merge_streams");
        merged = mergeStreams(layout, streams);
    }
    VA_TELEM_SCOPE("pipeline.decode");
    return decodeVideo(merged, options);
}

double
densityCellsPerPixel(const PreparedVideo &prepared, u64 pixel_count,
                     int bits_per_cell)
{
    StorageAccountant accountant(bits_per_cell);
    for (const auto &[t, data] : prepared.streams.data)
        accountant.addStream(data.size() * 8, EccScheme{t});
    accountant.addPreciseBits(prepared.headerBits());
    return accountant.cellsPerPixel(pixel_count);
}

} // namespace videoapp
