/**
 * @file
 * Quality-scalable (layered) video coding — the extension the paper
 * sketches in its related work: "videos could be also encoded in a
 * layered way, where each layer refines the quality produced by the
 * previous (scalable video coding). Our work focuses on
 * approximation within a layer, and is trivially extensible to
 * multiple layers by adding another dimension of approximation."
 *
 * The base layer is a normal encoding at a coarser quality; the
 * enhancement layer encodes the reconstruction residual (offset to
 * the 128-centred pixel domain) and refines the base on decode.
 * Losing enhancement bits degrades gracefully toward base quality,
 * so the enhancement layer tolerates far weaker protection — the
 * cross-layer approximation dimension of Guo et al., combined with
 * VideoApp's within-layer analysis.
 */

#ifndef VIDEOAPP_CORE_SVC_H_
#define VIDEOAPP_CORE_SVC_H_

#include "codec/decoder.h"
#include "codec/encoder.h"

namespace videoapp {

/** Configuration of a two-layer scalable encoding. */
struct ScalableConfig
{
    /** Base layer settings; crf is typically coarse. */
    EncoderConfig base;
    /** Enhancement layer settings; crf controls refinement depth. */
    EncoderConfig enhancement;

    /** Paper-style default: base at CRF+8, enhancement at CRF. */
    static ScalableConfig forQuality(int crf);
};

/** Both layers, each a full independently-analysable encoding. */
struct ScalableEncodeResult
{
    EncodeResult base;
    EncodeResult enhancement;

    u64
    totalPayloadBits() const
    {
        return base.video.payloadBits() +
               enhancement.video.payloadBits();
    }
};

/** Encode @p source into base + enhancement layers. */
ScalableEncodeResult encodeScalable(const Video &source,
                                    const ScalableConfig &config);

/**
 * Decode: base alone (when @p enhancement is null) or base refined
 * by the enhancement residual. Either layer's payload may be
 * corrupted; decoding is total.
 */
Video decodeScalable(const EncodedVideo &base,
                     const EncodedVideo *enhancement);

/** The residual video the enhancement layer encodes (exposed for
 * tests): clamp(source - base_recon + 128). */
Video residualVideo(const Video &source, const Video &base_recon);

/** Apply a decoded residual onto a base reconstruction. */
Video applyResidual(const Video &base, const Video &residual);

} // namespace videoapp

#endif // VIDEOAPP_CORE_SVC_H_
