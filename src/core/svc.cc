#include "core/svc.h"

#include <algorithm>
#include <cassert>

namespace videoapp {

namespace {

u8
clampPixel(int v)
{
    return static_cast<u8>(std::clamp(v, 0, 255));
}

/** Per-plane residual with +128 offset. */
Plane
planeResidual(const Plane &source, const Plane &base)
{
    Plane out(source.width(), source.height());
    for (int y = 0; y < source.height(); ++y)
        for (int x = 0; x < source.width(); ++x)
            out.at(x, y) = clampPixel(source.at(x, y) -
                                      base.at(x, y) + 128);
    return out;
}

Plane
planeApply(const Plane &base, const Plane &residual)
{
    Plane out(base.width(), base.height());
    for (int y = 0; y < base.height(); ++y)
        for (int x = 0; x < base.width(); ++x)
            out.at(x, y) = clampPixel(base.at(x, y) +
                                      residual.at(x, y) - 128);
    return out;
}

} // namespace

ScalableConfig
ScalableConfig::forQuality(int crf)
{
    ScalableConfig config;
    config.base.crf = clampQp(crf + 8);
    config.enhancement.crf = crf;
    // The residual layer has little temporal coherence left; short
    // GOPs with no B frames decode it cheaply.
    config.enhancement.gop.bFrames = 0;
    return config;
}

Video
residualVideo(const Video &source, const Video &base_recon)
{
    assert(source.frames.size() == base_recon.frames.size());
    Video out;
    out.fps = source.fps;
    out.frames.reserve(source.frames.size());
    for (std::size_t i = 0; i < source.frames.size(); ++i) {
        Frame frame(source.width(), source.height());
        frame.y() = planeResidual(source.frames[i].y(),
                                  base_recon.frames[i].y());
        frame.u() = planeResidual(source.frames[i].u(),
                                  base_recon.frames[i].u());
        frame.v() = planeResidual(source.frames[i].v(),
                                  base_recon.frames[i].v());
        out.frames.push_back(std::move(frame));
    }
    return out;
}

Video
applyResidual(const Video &base, const Video &residual)
{
    assert(base.frames.size() == residual.frames.size());
    Video out;
    out.fps = base.fps;
    out.frames.reserve(base.frames.size());
    for (std::size_t i = 0; i < base.frames.size(); ++i) {
        Frame frame(base.width(), base.height());
        frame.y() = planeApply(base.frames[i].y(),
                               residual.frames[i].y());
        frame.u() = planeApply(base.frames[i].u(),
                               residual.frames[i].u());
        frame.v() = planeApply(base.frames[i].v(),
                               residual.frames[i].v());
        out.frames.push_back(std::move(frame));
    }
    return out;
}

ScalableEncodeResult
encodeScalable(const Video &source, const ScalableConfig &config)
{
    ScalableEncodeResult result;
    result.base = encodeVideo(source, config.base);

    Video base_recon;
    base_recon.fps = source.fps;
    base_recon.frames = result.base.reconFrames;

    Video residual = residualVideo(source, base_recon);
    result.enhancement = encodeVideo(residual, config.enhancement);
    return result;
}

Video
decodeScalable(const EncodedVideo &base,
               const EncodedVideo *enhancement)
{
    Video base_video = decodeVideo(base);
    if (enhancement == nullptr)
        return base_video;
    Video residual = decodeVideo(*enhancement);
    if (residual.frames.size() != base_video.frames.size() ||
        residual.width() != base_video.width() ||
        residual.height() != base_video.height())
        return base_video; // mismatched layers: fall back to base
    return applyResidual(base_video, residual);
}

} // namespace videoapp
