/**
 * @file
 * The end-to-end approximate video storage pipeline:
 *
 *   encode -> importance analysis -> pivots -> stream partitioning
 *   [-> encryption] -> MLC PCM storage with per-stream ECC
 *   [-> decryption] -> reassembly -> decode -> quality measurement
 *
 * This is the system of the paper's Figure 11 evaluation; the
 * prepare/store split lets Monte Carlo experiments reuse one
 * encoding across many storage trials (Section 6.4's 30 runs).
 */

#ifndef VIDEOAPP_CORE_PIPELINE_H_
#define VIDEOAPP_CORE_PIPELINE_H_

#include <memory>
#include <optional>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/ecc_assign.h"
#include "core/partition.h"
#include "crypto/stream_crypto.h"
#include "graph/importance.h"
#include "policy/stream_policy.h"
#include "storage/approx_store.h"

namespace videoapp {

/** Everything derived from the source once, reusable across trials. */
struct PreparedVideo
{
    EncodeResult enc;
    ImportanceMap importance;
    EccAssignment assignment;
    StreamSet streams;

    /** Total approximate payload bits across streams. */
    u64 payloadBits() const;
    /** Precise (header) bits, stored at the BCH-16 class. */
    u64 headerBits() const;
};

/**
 * Encode @p source and run the full VideoApp analysis under
 * @p assignment, producing partitioned streams ready for storage.
 */
PreparedVideo prepareVideo(const Video &source,
                           const EncoderConfig &config,
                           const EccAssignment &assignment);

/** Re-partition an already prepared video under a new assignment
 * (reuses the encoding and importance analysis). */
void repartition(PreparedVideo &prepared,
                 const EccAssignment &assignment);

/** Result of one storage round trip. */
struct StorageOutcome
{
    /** Average PSNR of the retrieved video against the error-free
     * decoded video (the paper's quality-loss reference). */
    double psnrVsReference = 0.0;
    /** Storage density: MLC cells per encoded pixel (Figure 11). */
    double cellsPerPixel = 0.0;
    /** Fraction of stored bits that are ECC parity. */
    double eccOverheadFraction = 0.0;
    u64 payloadBits = 0;
    u64 parityBits = 0;
    u64 headerBits = 0;
    /** The retrieved video (for further metrics). */
    Video decoded;
};

/** Optional encryption wrapping for the stored streams. */
struct EncryptionConfig
{
    CipherMode mode = CipherMode::CTR;
    Bytes key;
    AesBlock masterIv{};
    /** Key-management handle persisted by archives (not the key). */
    u32 keyId = 0;
    /** Selective encryption: only streams with scheme t >= this are
     * encrypted (ascending t is ascending importance). 0 encrypts
     * every stream — the byte-compatible default. */
    u8 encryptMinT = 0;
};

/**
 * The per-stream policy @p encryption implies for @p streams: the
 * single place the importance partition is turned into cipher and
 * shedding treatment. Every consumer (pipeline round trips, archive
 * put, the serving layer) derives its per-stream decisions from this
 * record rather than re-deriving them from the config.
 */
StreamPolicy policyFor(
    const StreamSet &streams,
    const std::optional<EncryptionConfig> &encryption);

/**
 * Store all streams through @p channel (each under its assigned
 * scheme; headers are precise by construction), retrieve, decode and
 * measure. @p encryption, when set, encrypts each stream before
 * storage and decrypts after retrieval (Section 5.3).
 *
 * Streams are stored concurrently on the parallelFor pool: @p rng is
 * consumed only to seed one child generator per stream (in stream
 * order, before the parallel region), so the outcome is bit-identical
 * at any thread count.
 */
StorageOutcome storeAndRetrieve(
    const PreparedVideo &prepared, const StorageChannel &channel,
    Rng &rng,
    const std::optional<EncryptionConfig> &encryption = std::nullopt);

/** Density accounting only (no simulation): cells per pixel for the
 * prepared video's assignment, on @p bits_per_cell MLC. */
double densityCellsPerPixel(const PreparedVideo &prepared,
                            u64 pixel_count, int bits_per_cell = 3);

/**
 * The read half of the pipeline as a standalone entry point:
 * reassemble @p streams against @p layout's pivot tables and decode.
 * @p layout only contributes the precise parts (headers and payload
 * sizes) — exactly what an archive record persists, so a restarted
 * process can decode a stored video from its record alone.
 */
Video decodeStreams(const EncodedVideo &layout,
                    const StreamSet &streams,
                    const DecodeOptions &options = {});

/** Scheme of stream @p t as an EccScheme. */
inline EccScheme
schemeOfStream(int t)
{
    return EccScheme{t};
}

} // namespace videoapp

#endif // VIDEOAPP_CORE_PIPELINE_H_
