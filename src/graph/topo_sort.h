/**
 * @file
 * Topological sorting of dependency graphs (step 3/7 of the paper's
 * importance algorithm, Section 4.3).
 */

#ifndef VIDEOAPP_GRAPH_TOPO_SORT_H_
#define VIDEOAPP_GRAPH_TOPO_SORT_H_

#include <cstdint>
#include <vector>

namespace videoapp {

/** Adjacency-list graph over nodes 0..n-1 with weighted edges. */
struct WeightedDag
{
    struct Edge
    {
        std::uint32_t to;
        float weight;
    };

    explicit WeightedDag(std::size_t nodes) : adjacency(nodes) {}

    std::size_t nodeCount() const { return adjacency.size(); }

    void
    addEdge(std::uint32_t from, std::uint32_t to, float weight)
    {
        adjacency[from].push_back({to, weight});
    }

    /** Outgoing edges (damage flows from node to its dependents). */
    std::vector<std::vector<Edge>> adjacency;
};

/**
 * Kahn topological sort. @return node ids in an order where every
 * edge goes forward; empty if the graph has a cycle (which would
 * indicate a broken dependency capture — encoded video dependences
 * always follow encode order).
 */
std::vector<std::uint32_t> topologicalSort(const WeightedDag &dag);

/**
 * The paper's backward accumulation (steps 2-4 / 6-8): initialise
 * each node's importance to @p init (per node), then walk the
 * topological order backwards adding the weighted sum of each
 * node's children. @return the accumulated importance per node.
 */
std::vector<double> accumulateImportance(
    const WeightedDag &dag, const std::vector<double> &init);

} // namespace videoapp

#endif // VIDEOAPP_GRAPH_TOPO_SORT_H_
