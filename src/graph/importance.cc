#include "graph/importance.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "graph/topo_sort.h"

namespace videoapp {

namespace {

/** Flat node id for (frame, mb). */
std::uint32_t
nodeId(std::size_t frame, std::size_t mb, std::size_t mb_per_frame)
{
    return static_cast<std::uint32_t>(frame * mb_per_frame + mb);
}

/** Compensation graph: edges source-MB -> dependent-MB. */
WeightedDag
buildCompensationGraph(const EncodeSideInfo &side,
                       std::size_t mb_per_frame)
{
    WeightedDag dag(side.frames.size() * mb_per_frame);
    for (std::size_t f = 0; f < side.frames.size(); ++f) {
        const FrameRecord &frame = side.frames[f];
        for (std::size_t m = 0; m < frame.mbs.size(); ++m) {
            for (const CompDepRecord &dep : frame.mbs[m].deps) {
                dag.addEdge(nodeId(static_cast<std::size_t>(
                                       dep.refFrame),
                                   dep.refMb, mb_per_frame),
                            nodeId(f, m, mb_per_frame), dep.weight);
            }
        }
    }
    return dag;
}

/**
 * Coding-chain accumulation (steps 5-8, Section 4.2): within each
 * slice, an error in MB i damages every subsequent MB through
 * entropy desync and metadata misprediction — a weight-1 chain in
 * scan order, i.e. a suffix sum walked from the slice tail. Slices
 * are independent, so frames run on the parallelFor pool; the
 * per-chain additions happen in the same order as the equivalent
 * coding-DAG backward walk, keeping results bit-identical to the
 * sequential graph formulation.
 */
void
accumulateCodingChains(std::vector<std::vector<double>> &values,
                       const EncodedVideo &video,
                       std::size_t mb_per_frame)
{
    std::size_t frames =
        std::min(values.size(), video.frameHeaders.size());
    parallelFor(frames, [&](std::size_t f) {
        std::vector<double> &out = values[f];
        for (const SliceRecord &slice :
             video.frameHeaders[f].slices) {
            u32 end = std::min<u32>(slice.firstMb + slice.mbCount,
                                    static_cast<u32>(mb_per_frame));
            for (u32 m = end; m-- > slice.firstMb + 1;)
                out[m - 1] += out[m];
        }
    });
}

ImportanceMap
toMap(const std::vector<double> &flat, std::size_t frames,
      std::size_t mb_per_frame)
{
    ImportanceMap map;
    map.values.resize(frames);
    for (std::size_t f = 0; f < frames; ++f) {
        map.values[f].assign(
            flat.begin() +
                static_cast<std::ptrdiff_t>(f * mb_per_frame),
            flat.begin() +
                static_cast<std::ptrdiff_t>((f + 1) * mb_per_frame));
    }
    return map;
}

} // namespace

double
ImportanceMap::maxImportance() const
{
    double best = 0;
    for (const auto &frame : values)
        for (double v : frame)
            best = std::max(best, v);
    return best;
}

double
ImportanceMap::minImportance() const
{
    double best = 1e300;
    for (const auto &frame : values)
        for (double v : frame)
            best = std::min(best, v);
    return values.empty() ? 0.0 : best;
}

int
ImportanceMap::classOf(double importance)
{
    if (importance <= 1.0)
        return 0;
    return static_cast<int>(std::ceil(std::log2(importance)));
}

ImportanceMap
computeCompensationImportance(const EncodeSideInfo &side,
                              const EncodedVideo &video)
{
    (void)video;
    const std::size_t mb_per_frame =
        side.frames.empty() ? 0 : side.frames[0].mbs.size();
    WeightedDag comp = buildCompensationGraph(side, mb_per_frame);
    std::vector<double> init(comp.nodeCount(), 1.0);
    auto flat = accumulateImportance(comp, init);
    return toMap(flat, side.frames.size(), mb_per_frame);
}

ImportanceMap
computeImportance(const EncodeSideInfo &side, const EncodedVideo &video)
{
    const std::size_t mb_per_frame =
        side.frames.empty() ? 0 : side.frames[0].mbs.size();

    // Steps 1-4: compensation graph, importance 1 at every node.
    WeightedDag comp = buildCompensationGraph(side, mb_per_frame);
    std::vector<double> init(comp.nodeCount(), 1.0);
    std::vector<double> comp_importance =
        accumulateImportance(comp, init);

    // Steps 5-8: coding chains seeded with compensation importance.
    ImportanceMap map =
        toMap(comp_importance, side.frames.size(), mb_per_frame);
    accumulateCodingChains(map.values, video, mb_per_frame);
    return map;
}

ImportanceMap
computeImportanceStreaming(const EncodeSideInfo &side,
                           const EncodedVideo &video)
{
    const std::size_t frames = side.frames.size();
    const std::size_t mb_per_frame =
        frames == 0 ? 0 : side.frames[0].mbs.size();

    // GOP windows by display index: window k holds the frames whose
    // display position lies in [display(I_k), display(I_{k+1})).
    // With open GOPs the B frames at a window's tail reference the
    // NEXT window's I frame, so the windows share exactly that I
    // frame. Importance accumulation is linear, so processing
    // windows in reverse and seeding the shared I frame with its
    // already-accumulated importance is exact — this is the
    // bounded-memory streaming evaluation of Section 4.3.1 (run
    // back-to-front here for exactness; a live encoder would keep
    // one window of lookahead instead).
    std::vector<int> i_frame_displays;
    std::vector<std::size_t> i_frame_enc;
    for (std::size_t f = 0; f < frames; ++f) {
        if (side.frames[f].type == FrameType::I) {
            i_frame_displays.push_back(side.frames[f].displayIdx);
            i_frame_enc.push_back(f);
        }
    }
    if (i_frame_displays.empty())
        return computeImportance(side, video); // degenerate input

    auto window_of = [&](int display) {
        std::size_t w = 0;
        while (w + 1 < i_frame_displays.size() &&
               display >= i_frame_displays[w + 1])
            ++w;
        return w;
    };

    const std::size_t window_count = i_frame_displays.size();
    std::vector<std::vector<std::size_t>> members(window_count);
    for (std::size_t f = 0; f < frames; ++f)
        members[window_of(side.frames[f].displayIdx)].push_back(f);

    std::vector<std::vector<double>> comp_importance(frames);

    for (std::size_t w = window_count; w-- > 0;) {
        // Node set: this window's members plus the next window's I
        // frame (referenced by this window's tail B frames).
        std::vector<std::size_t> node_frames = members[w];
        bool has_extra = w + 1 < window_count;
        if (has_extra)
            node_frames.push_back(i_frame_enc[w + 1]);

        std::vector<std::size_t> local_of(frames, SIZE_MAX);
        for (std::size_t i = 0; i < node_frames.size(); ++i)
            local_of[node_frames[i]] = i;

        WeightedDag comp(node_frames.size() * mb_per_frame);
        auto add_frame_edges = [&](std::size_t f,
                                   bool self_edges_only,
                                   bool defer_self_edges) {
            const FrameRecord &frame = side.frames[f];
            for (std::size_t m = 0; m < frame.mbs.size(); ++m) {
                for (const CompDepRecord &dep : frame.mbs[m].deps) {
                    std::size_t rf =
                        static_cast<std::size_t>(dep.refFrame);
                    bool self = rf == f;
                    if (self_edges_only && !self)
                        continue;
                    if (defer_self_edges && self)
                        continue;
                    if (local_of[rf] == SIZE_MAX)
                        continue;
                    comp.addEdge(
                        static_cast<std::uint32_t>(
                            local_of[rf] * mb_per_frame +
                            dep.refMb),
                        static_cast<std::uint32_t>(
                            local_of[f] * mb_per_frame + m),
                        dep.weight);
                }
            }
        };
        for (std::size_t f : members[w]) {
            // A shared I frame's internal (intra) edges must be
            // applied exactly once, in the window processed last
            // (the earlier-display one), so the internal
            // propagation also amplifies the later window's
            // contributions. Defer them here; they are added below
            // when this I is the extra of window w-1.
            bool defer = f == i_frame_enc[w] && w > 0;
            add_frame_edges(f, false, defer);
        }
        if (has_extra)
            add_frame_edges(i_frame_enc[w + 1], true, false);

        std::vector<double> init(node_frames.size() * mb_per_frame,
                                 1.0);
        if (has_extra) {
            // Seed the shared I frame with its importance from the
            // (already processed) next window.
            const auto &seed =
                comp_importance[i_frame_enc[w + 1]];
            std::size_t base =
                local_of[i_frame_enc[w + 1]] * mb_per_frame;
            for (std::size_t m = 0; m < mb_per_frame; ++m)
                init[base + m] = seed[m];
        }

        std::vector<double> result =
            accumulateImportance(comp, init);
        for (std::size_t f : node_frames) {
            std::size_t base = local_of[f] * mb_per_frame;
            comp_importance[f].assign(
                result.begin() + static_cast<std::ptrdiff_t>(base),
                result.begin() +
                    static_cast<std::ptrdiff_t>(base +
                                                mb_per_frame));
        }
    }

    // Steps 5-8: the coding chain, independently per slice.
    ImportanceMap map;
    map.values = std::move(comp_importance);
    accumulateCodingChains(map.values, video, mb_per_frame);
    return map;
}

} // namespace videoapp
