/**
 * @file
 * VideoApp's macroblock importance computation (Section 4.3).
 *
 * Importance of an MB = the number of MBs (weighted by damaged area)
 * to which an error originating in that MB propagates, through
 * compensation dependences (pixel-domain: motion compensation and
 * intra prediction) and coding dependences (entropy context +
 * predictive metadata, a weight-1 chain over the rest of the slice).
 *
 * The two graphs are processed in sequence exactly as the paper's
 * 8-step algorithm: compensation importance first, which then seeds
 * the coding pass — because compensation damage can follow coding
 * damage but not vice versa (Figure 5).
 */

#ifndef VIDEOAPP_GRAPH_IMPORTANCE_H_
#define VIDEOAPP_GRAPH_IMPORTANCE_H_

#include <vector>

#include "codec/container.h"
#include "codec/encoder.h"

namespace videoapp {

/** Per-frame, per-MB importance values. */
struct ImportanceMap
{
    /** importance[frameEncIdx][mbIdx], always >= 1. */
    std::vector<std::vector<double>> values;

    double maxImportance() const;
    double minImportance() const;

    /** Importance class: smallest i with importance <= 2^i. */
    static int classOf(double importance);
};

/**
 * Build both dependency graphs from the encoder's side info and run
 * the two-phase accumulation. @p video provides slice geometry (the
 * coding chain restarts at each slice).
 */
ImportanceMap computeImportance(const EncodeSideInfo &side,
                                const EncodedVideo &video);

/**
 * The compensation-only importance (after step 4, before the coding
 * pass); exposed for experiments that separate the two effects
 * (Section 3's coding vs. compensation error discussion).
 */
ImportanceMap computeCompensationImportance(const EncodeSideInfo &side,
                                            const EncodedVideo &video);

/**
 * Streaming implementation (Section 4.3.1): "steps 1-4 do not need
 * to be performed on the entire graph at once, but ... can be
 * independently performed on each connected component between two
 * I-frames", and the coding pass per frame. This version walks the
 * encode-order sequence one closed GOP window at a time with
 * bounded working memory, producing results identical to
 * computeImportance() (verified by tests).
 */
ImportanceMap computeImportanceStreaming(const EncodeSideInfo &side,
                                         const EncodedVideo &video);

} // namespace videoapp

#endif // VIDEOAPP_GRAPH_IMPORTANCE_H_
