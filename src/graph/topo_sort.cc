#include "graph/topo_sort.h"

#include <cassert>

namespace videoapp {

std::vector<std::uint32_t>
topologicalSort(const WeightedDag &dag)
{
    const std::size_t n = dag.nodeCount();
    std::vector<std::uint32_t> in_degree(n, 0);
    for (const auto &edges : dag.adjacency)
        for (const auto &e : edges)
            ++in_degree[e.to];

    std::vector<std::uint32_t> order;
    order.reserve(n);
    // Queue of ready nodes; vector-as-stack keeps it allocation-lean.
    std::vector<std::uint32_t> ready;
    for (std::uint32_t v = 0; v < n; ++v)
        if (in_degree[v] == 0)
            ready.push_back(v);

    while (!ready.empty()) {
        std::uint32_t v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (const auto &e : dag.adjacency[v]) {
            if (--in_degree[e.to] == 0)
                ready.push_back(e.to);
        }
    }
    if (order.size() != n)
        return {}; // cycle
    return order;
}

std::vector<double>
accumulateImportance(const WeightedDag &dag,
                     const std::vector<double> &init)
{
    assert(init.size() == dag.nodeCount());
    std::vector<std::uint32_t> order = topologicalSort(dag);
    assert(!order.empty() || dag.nodeCount() == 0);

    std::vector<double> importance = init;
    // Backwards over the topological order: children are finalised
    // before their parents are updated.
    for (std::size_t i = order.size(); i-- > 0;) {
        std::uint32_t v = order[i];
        double sum = 0.0;
        for (const auto &e : dag.adjacency[v])
            sum += e.weight * importance[e.to];
        importance[v] += sum;
    }
    return importance;
}

} // namespace videoapp
