/**
 * @file
 * The VAPP archive container: a versioned on-disk format that makes
 * the paper's storage layout durable. One file holds many videos;
 * each video record keeps the precise parts (stream/frame headers
 * with pivot tables, per-stream ECC level and length metadata,
 * AES mode/key-id/nonce metadata) next to the raw MLC PCM cell
 * images of its partitioned streams, so a written archive *is* the
 * modeled device — reopening it and decoding goes through the same
 * BCH/decrypt/merge pipeline as an in-memory round trip.
 *
 * Layout (all integers big-endian, matching codec/container.cc):
 *
 *   superblock (32 bytes, offset 0)
 *     u32 magic "VAPA"        u32 formatVersion
 *     u64 directoryOffset     u64 directoryLength
 *     u32 directoryCrc        u32 superblockCrc (bytes 0..27)
 *   records (one per video, back to back)
 *     meta  — CRC-protected precise metadata (see .cc): headers,
 *             crypto (with a key-check value since version 2),
 *             per-stream shape, and (version 2) the StreamPolicy
 *     cells — per-stream cell images, NOT checksummed: these are the
 *             approximate bits, and degrading them is the point
 *   directory (at directoryOffset)
 *     u32 videoCount, then per video: name, record offset/length,
 *     meta length, meta CRC
 *     (version 3) u32 replicaCount, then per replica: name and the
 *     held precise-meta blob inline — replica blobs a shard holds
 *     for its ring peers are small and CRC-covered by the directory
 *     CRC, and persisting them is what lets a dead peer be rebuilt
 *     after every process that held them in memory has restarted
 *
 * Versioning rules: the major format version is bumped on any
 * incompatible layout change; readers reject files whose version is
 * newer than kVappFormatVersion and accept older ones. Record meta
 * is length-prefixed, so future minor additions can append fields
 * that old readers skip.
 *
 * Every reader path is total: bad magic, short reads, CRC
 * mismatches and malformed counts return ArchiveError values, never
 * crash (fuzzed in tests/archive_test.cc).
 */

#ifndef VIDEOAPP_ARCHIVE_VAPP_CONTAINER_H_
#define VIDEOAPP_ARCHIVE_VAPP_CONTAINER_H_

#include <map>
#include <optional>
#include <string>

#include "codec/container.h"
#include "crypto/stream_crypto.h"
#include "policy/stream_policy.h"
#include "storage/approx_store.h"

namespace videoapp {

/** "VAPA" — distinct from the codec blob's "VAP1". */
inline constexpr u32 kVappMagic = 0x56415041;

/** Current container format version. Version 2 added the optional
 * key-check value in the crypto section and the per-stream policy
 * record; version 3 added the held-replica section in the directory.
 * Older files still parse, and writers emit the oldest version that
 * can represent the archive (no replicas held → version 2 layout). */
inline constexpr u32 kVappFormatVersion = 3;

/** Oldest format version readers still accept. */
inline constexpr u32 kVappMinFormatVersion = 1;

/** Why an archive operation failed. */
enum class ArchiveError
{
    None,
    Io,           // cannot open/read/write/rename the file
    BadMagic,     // not a VAPP archive
    BadVersion,   // written by a newer format revision
    ShortRead,    // file truncated mid-structure
    CrcMismatch,  // precise metadata failed its integrity check
    Malformed,    // counts/offsets inconsistent with the file
    NotFound,     // no such video in the archive
    KeyRequired,  // record is encrypted and no key was supplied
    KeyMismatch,  // supplied key fails the record's key check
};

/** Stable name for logs and CLI messages. */
const char *archiveErrorName(ArchiveError error);

/** One reliability stream of an archived video. */
struct StreamRecord
{
    /** BCH correction capability (0 = unprotected). */
    int schemeT = 0;
    /** Exact payload bit length (pre byte-padding). */
    u64 bitLength = 0;
    /** Plaintext byte size (trims cipher padding after decrypt). */
    u64 trueBytes = 0;
    /** CRC of the pristine cells at put time; scrub compares the
     * repaired image against it to detect miscorrections. */
    u32 cellsCrc = 0;
    /** The modeled PCM cells holding this stream. */
    CellImage image;
};

/** One archived video: the precise metadata plus its cell images. */
struct VideoRecord
{
    /** Precise layout: headers, pivots, per-frame payload sizes.
     * Payload bytes are zero-filled placeholders (only their sizes
     * are persisted); real content lives in the stream images. */
    EncodedVideo layout;
    /** Set when the streams were encrypted before storage. */
    std::optional<StreamCryptoMeta> crypto;
    /** Per-stream treatment record (absent on version-1 records). */
    std::optional<StreamPolicy> policy;
    /** Streams in ascending schemeT order. */
    std::vector<StreamRecord> streams;

    u64 payloadBytes() const;
    u64 cellBytes() const;
};

/** An in-memory archive: what one VAPP file holds. */
struct Archive
{
    u32 version = kVappFormatVersion;
    /** Keyed (and serialized) by name, sorted. */
    std::map<std::string, VideoRecord> videos;
    /** Replica precise-meta blobs held on behalf of ring peers
     * (cluster tier). Serialized only when non-empty, which bumps
     * the written file to version 3. */
    std::map<std::string, Bytes> replicas;
};

// --- precise-metadata blobs (replication) ------------------------------

/** One stream's precise metadata (everything but the cells). */
struct StreamMeta
{
    int schemeT = 0;
    u64 bitLength = 0;
    u64 trueBytes = 0;
    /** Payload bytes held by the stream's cell image. */
    u64 payloadBytes = 0;
    /** Byte length of the cell image (shape, not content). */
    u64 cellLength = 0;
    u32 cellsCrc = 0;
};

/**
 * A record's precise metadata as a standalone value: the CRC-checked
 * small part of a video record (layout, crypto, per-stream shape),
 * with the approximate cell images deliberately absent. This is the
 * unit of cluster replication — the blob a shard ships to its ring
 * successors so a damaged owner record can be repaired without ever
 * copying the (large, single-copy, ECC-protected) cells.
 */
struct RecordMeta
{
    EncodedVideo layout;
    std::optional<StreamCryptoMeta> crypto;
    std::optional<StreamPolicy> policy;
    std::vector<StreamMeta> streams;
};

/** Serialize @p record's precise metadata (the container's on-disk
 * record-meta encoding, reused verbatim as the replication blob). */
Bytes serializeRecordMeta(const VideoRecord &record);

/**
 * Parse a precise-meta blob. Total like every container reader.
 * @p payload_bound caps the claimed per-frame payload total so a
 * hostile blob cannot drive allocation (pass the enclosing record
 * length when parsing from a container, or a transport cap when
 * parsing a replication blob).
 */
ArchiveError parseRecordMeta(const Bytes &meta, RecordMeta &out,
                             u64 payload_bound);

/** Serialize to the container byte layout documented above. */
Bytes serializeArchive(const Archive &archive);

/** Parse a container blob. @p out is valid only on None. */
ArchiveError parseArchive(const Bytes &blob, Archive &out);

/** Read and parse @p path. */
ArchiveError readArchive(const std::string &path, Archive &out);

/**
 * Serialize and write @p path atomically (temp file in the same
 * directory, then rename), so a crashed writer never leaves a
 * half-written archive behind.
 */
ArchiveError writeArchive(const Archive &archive,
                          const std::string &path);

} // namespace videoapp

#endif // VIDEOAPP_ARCHIVE_VAPP_CONTAINER_H_
